/**
 * @file
 * adtrace_check -- validate a Chrome trace_event JSON file emitted by
 * the observability layer. Parses the document back (no grepping),
 * asserts the traceEvents array exists with at least --min-events
 * entries, that every event carries the required fields (name, ph,
 * ts, plus dur for complete events and args.frame for stage spans),
 * and that every --require=NAME span name is present. Exit status 0
 * on success, 1 with a diagnostic otherwise -- the obs_smoke ctest
 * chains this after an adrun --trace run.
 *
 * With --flight the file is validated as a flight-recorder
 * post-mortem dump instead: the schema (version, reason, per-stream
 * event arrays), per-stream monotone non-decreasing timestamps,
 * span nesting per (stream, track), the recorded/dropped/retained
 * conservation, and every --require=NAME event name.
 *
 * Usage:
 *   adtrace_check <trace.json> [--min-events=N] [--require=NAME]...
 *   adtrace_check --flight <flight.json> [--min-events=N]
 *                 [--require=NAME]...
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace {

using ad::obs::json::Value;

int
fail(const std::string& message)
{
    std::fprintf(stderr, "adtrace_check: %s\n", message.c_str());
    return 1;
}

/** Fetch a required numeric field of an object. */
const Value*
numberField(const Value& obj, const char* key)
{
    const Value* v = obj.find(key);
    return v && v->isNumber() ? v : nullptr;
}

const std::set<std::string> kFlightKinds = {
    "span", "metric", "transition", "admission", "mark", "perf"};

/** Validate one flight dump; returns the process exit status. */
int
checkFlight(const std::string& path, long minEvents,
            const std::vector<std::string>& required)
{
    std::string error;
    const auto doc = ad::obs::json::parseFile(path, &error);
    if (!doc)
        return fail("'" + path + "' is not valid JSON: " + error);
    if (!doc->isObject())
        return fail("top-level value is not an object");
    const Value* flight = doc->find("flight");
    if (!flight || !flight->isObject())
        return fail("missing flight object");
    if (!numberField(*flight, "version"))
        return fail("flight lacks a numeric version");
    const Value* reason = flight->find("reason");
    if (!reason || !reason->isString())
        return fail("flight lacks a string reason");
    if (!numberField(*flight, "trigger_frame") ||
        !numberField(*flight, "trigger_stream"))
        return fail("flight lacks trigger_frame/trigger_stream");
    const Value* streams = flight->find("streams");
    if (!streams || !streams->isArray())
        return fail("missing flight.streams array");

    std::size_t totalEvents = 0;
    std::set<std::string> names;
    for (std::size_t s = 0; s < streams->asArray().size(); ++s) {
        const Value& stream = streams->asArray()[s];
        const std::string where = "stream " + std::to_string(s);
        if (!stream.isObject())
            return fail(where + " is not an object");
        const Value* recorded = numberField(stream, "recorded");
        const Value* dropped = numberField(stream, "dropped");
        if (!numberField(stream, "stream") || !recorded || !dropped)
            return fail(where +
                        " lacks stream/recorded/dropped numbers");
        const Value* events = stream.find("events");
        if (!events || !events->isArray())
            return fail(where + " lacks an events array");
        const auto& arr = events->asArray();
        if (recorded->asNumber() !=
            dropped->asNumber() + static_cast<double>(arr.size()))
            return fail(where + ": recorded != dropped + retained");

        double lastT = -std::numeric_limits<double>::infinity();
        // Per-track stack of open span end times: a new span must
        // either start after the top ends (sibling) or end within
        // it (child); anything else is a partial overlap.
        std::map<long, std::vector<double>> openEnds;
        constexpr double eps = 1e-9;
        for (std::size_t i = 0; i < arr.size(); ++i) {
            const Value& e = arr[i];
            const std::string at =
                where + " event " + std::to_string(i);
            if (!e.isObject())
                return fail(at + " is not an object");
            const Value* kind = e.find("kind");
            const Value* name = e.find("name");
            const Value* t = numberField(e, "t_ms");
            if (!kind || !kind->isString() ||
                !kFlightKinds.count(kind->asString()))
                return fail(at + " has a missing or unknown kind");
            if (!name || !name->isString())
                return fail(at + " lacks a string name");
            if (!t)
                return fail(at + " lacks a numeric t_ms");
            if (!numberField(e, "frame"))
                return fail(at + " lacks a numeric frame");
            if (t->asNumber() < lastT - eps)
                return fail(at + " breaks timestamp monotonicity (" +
                            std::to_string(t->asNumber()) + " after " +
                            std::to_string(lastT) + ")");
            lastT = std::max(lastT, t->asNumber());
            if (kind->asString() == "span") {
                const Value* dur = numberField(e, "dur_ms");
                const Value* track = numberField(e, "track");
                if (!dur || dur->asNumber() < 0)
                    return fail(at + " span lacks a valid dur_ms");
                if (!track)
                    return fail(at + " span lacks a track");
                const double start = t->asNumber();
                const double end = start + dur->asNumber();
                auto& stack =
                    openEnds[static_cast<long>(track->asNumber())];
                while (!stack.empty() && start >= stack.back() - eps)
                    stack.pop_back();
                if (!stack.empty() && end > stack.back() + eps)
                    return fail(at + " span overlaps its enclosing "
                                     "span without nesting");
                stack.push_back(end);
            }
            names.insert(name->asString());
            ++totalEvents;
        }
    }

    if (static_cast<long>(totalEvents) < minEvents)
        return fail("only " + std::to_string(totalEvents) +
                    " flight events, expected at least " +
                    std::to_string(minEvents));
    for (const auto& want : required)
        if (!names.count(want))
            return fail("required event '" + want +
                        "' missing from flight dump");

    std::printf(
        "adtrace_check: %s ok (flight dump, %zu streams, %zu events, "
        "%zu names)\n",
        path.c_str(), streams->asArray().size(), totalEvents,
        names.size());
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string path;
    long minEvents = 1;
    bool flightMode = false;
    std::vector<std::string> required;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--min-events=", 0) == 0)
            minEvents = std::strtol(arg.c_str() + 13, nullptr, 10);
        else if (arg.rfind("--require=", 0) == 0)
            required.push_back(arg.substr(10));
        else if (arg == "--flight")
            flightMode = true;
        else if (path.empty())
            path = arg;
        else
            return fail("unexpected argument '" + arg + "'");
    }
    if (path.empty())
        return fail("usage: adtrace_check [--flight] <trace.json> "
                    "[--min-events=N] [--require=NAME]...");
    if (flightMode)
        return checkFlight(path, minEvents, required);

    std::string error;
    const auto doc = ad::obs::json::parseFile(path, &error);
    if (!doc)
        return fail("'" + path + "' is not valid JSON: " + error);
    if (!doc->isObject())
        return fail("top-level value is not an object");

    const Value* events = doc->find("traceEvents");
    if (!events || !events->isArray())
        return fail("missing traceEvents array");
    const auto& arr = events->asArray();
    if (static_cast<long>(arr.size()) < minEvents)
        return fail("only " + std::to_string(arr.size()) +
                    " events, expected at least " +
                    std::to_string(minEvents));

    std::set<std::string> names;
    for (std::size_t i = 0; i < arr.size(); ++i) {
        const Value& e = arr[i];
        const std::string where = "event " + std::to_string(i);
        if (!e.isObject())
            return fail(where + " is not an object");
        const Value* name = e.find("name");
        const Value* ph = e.find("ph");
        const Value* ts = e.find("ts");
        if (!name || !name->isString())
            return fail(where + " lacks a string name");
        if (!ph || !ph->isString())
            return fail(where + " lacks a ph field");
        if (!ts || !ts->isNumber())
            return fail(where + " lacks a numeric ts");
        const std::string& phase = ph->asString();
        if (phase != "X" && phase != "B" && phase != "E")
            return fail(where + " has unsupported phase '" + phase +
                        "'");
        if (phase == "X") {
            const Value* dur = e.find("dur");
            if (!dur || !dur->isNumber())
                return fail(where + " is complete (X) but lacks dur");
        }
        const Value* args = e.find("args");
        if (!args || !args->find("frame") ||
            !args->find("frame")->isNumber())
            return fail(where + " lacks args.frame");
        names.insert(name->asString());
    }

    for (const auto& want : required)
        if (!names.count(want))
            return fail("required span '" + want +
                        "' missing from trace");

    std::printf("adtrace_check: %s ok (%zu events, %zu span names)\n",
                path.c_str(), arr.size(), names.size());
    return 0;
}
