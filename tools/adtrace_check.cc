/**
 * @file
 * adtrace_check -- validate a Chrome trace_event JSON file emitted by
 * the observability layer. Parses the document back (no grepping),
 * asserts the traceEvents array exists with at least --min-events
 * entries, that every event carries the required fields (name, ph,
 * ts, plus dur for complete events and args.frame for stage spans),
 * and that every --require=NAME span name is present. Exit status 0
 * on success, 1 with a diagnostic otherwise -- the obs_smoke ctest
 * chains this after an adrun --trace run.
 *
 * Usage:
 *   adtrace_check <trace.json> [--min-events=N] [--require=NAME]...
 */

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace {

using ad::obs::json::Value;

int
fail(const std::string& message)
{
    std::fprintf(stderr, "adtrace_check: %s\n", message.c_str());
    return 1;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string path;
    long minEvents = 1;
    std::vector<std::string> required;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--min-events=", 0) == 0)
            minEvents = std::strtol(arg.c_str() + 13, nullptr, 10);
        else if (arg.rfind("--require=", 0) == 0)
            required.push_back(arg.substr(10));
        else if (path.empty())
            path = arg;
        else
            return fail("unexpected argument '" + arg + "'");
    }
    if (path.empty())
        return fail("usage: adtrace_check <trace.json> "
                    "[--min-events=N] [--require=NAME]...");

    std::string error;
    const auto doc = ad::obs::json::parseFile(path, &error);
    if (!doc)
        return fail("'" + path + "' is not valid JSON: " + error);
    if (!doc->isObject())
        return fail("top-level value is not an object");

    const Value* events = doc->find("traceEvents");
    if (!events || !events->isArray())
        return fail("missing traceEvents array");
    const auto& arr = events->asArray();
    if (static_cast<long>(arr.size()) < minEvents)
        return fail("only " + std::to_string(arr.size()) +
                    " events, expected at least " +
                    std::to_string(minEvents));

    std::set<std::string> names;
    for (std::size_t i = 0; i < arr.size(); ++i) {
        const Value& e = arr[i];
        const std::string where = "event " + std::to_string(i);
        if (!e.isObject())
            return fail(where + " is not an object");
        const Value* name = e.find("name");
        const Value* ph = e.find("ph");
        const Value* ts = e.find("ts");
        if (!name || !name->isString())
            return fail(where + " lacks a string name");
        if (!ph || !ph->isString())
            return fail(where + " lacks a ph field");
        if (!ts || !ts->isNumber())
            return fail(where + " lacks a numeric ts");
        const std::string& phase = ph->asString();
        if (phase != "X" && phase != "B" && phase != "E")
            return fail(where + " has unsupported phase '" + phase +
                        "'");
        if (phase == "X") {
            const Value* dur = e.find("dur");
            if (!dur || !dur->isNumber())
                return fail(where + " is complete (X) but lacks dur");
        }
        const Value* args = e.find("args");
        if (!args || !args->find("frame") ||
            !args->find("frame")->isNumber())
            return fail(where + " lacks args.frame");
        names.insert(name->asString());
    }

    for (const auto& want : required)
        if (!names.count(want))
            return fail("required span '" + want +
                        "' missing from trace");

    std::printf("adtrace_check: %s ok (%zu events, %zu span names)\n",
                path.c_str(), arr.size(), names.size());
    return 0;
}
