/**
 * @file
 * adrun -- end-to-end pipeline runner with per-frame CSV logging.
 * Drives a scenario through the measured-mode pipeline and emits one
 * CSV row per frame (stage latencies, localization status, track and
 * detection counts), the raw material for offline latency analysis
 * exactly like the paper's Figure 6/7 characterization.
 *
 * Usage:
 *   adrun [--scenario=highway|urban] [--frames=100]
 *         [--resolution=HHD|KITTI|HD] [--seed=1] [--csv=out.csv]
 *         [--det-input=160] [--summary] [--nn.threads=N]
 *         [--nn.precision=fp32|int8] [--nn.fuse=1] [--nn.arena=1]
 *         [--pipeline.async=0] [--pipeline.depth=2]
 *         [--pipeline.seed=0]
 *         [--trace <file>] [--metrics] [--obs.trace_nn]
 *         [--obs.budget_ms=100] [--obs.perf] [--flight-dump[=file]]
 *         [--metrics-json=live.json]
 *         [--faults=0.1] [--fault.*=...] [--governor] [--gov.*=...]
 *
 * The flight recorder is always on: the last --obs.flight_capacity
 * events per stream are retained in bounded rings, auto-dumped as
 * JSON on deadline miss or SAFE_STOP entry, and dumped at exit with
 * --flight-dump. --obs.perf samples hardware counters over every
 * stage span (portable fallback when perf_event_open is
 * unavailable); --metrics-json exports live snapshots adtop renders.
 *
 * --nn.threads drives the parallel NN kernel layer in every engine:
 * 0 (the default) resolves to hardware concurrency, 1 restores the
 * exact serial behavior. Outputs are bitwise-identical either way.
 *
 * --nn.precision=int8 lowers the DET and TRA networks to the
 * quantized int8 kernel path (per-channel weights, calibrated
 * activations; see DESIGN.md "Quantized inference"). Deterministic at
 * any thread count, accuracy-checked by bench_ext_quant_accuracy.
 *
 * --nn.fuse / --nn.arena (both default 1) control the graph-lowering
 * pass (fused conv+activation epilogues, direct convolutions) and the
 * static arena memory planner for the DET/TRA networks. Both are pure
 * optimizations with bitwise-identical outputs; turn one off to A/B
 * the unfused or allocating reference path (DESIGN.md "Fused lowering
 * and the arena planner").
 *
 * --pipeline.async=1 runs frames through the frame-graph executor
 * (src/pipeline/frame_graph.hh): stages of up to --pipeline.depth
 * consecutive frames overlap on the shared worker pool, raising
 * throughput toward 1/max(stage) while per-frame outputs stay
 * bitwise-identical to the serial path at depth 1 and deterministic
 * at every depth (--pipeline.seed perturbs only dispatch order; see
 * docs/DESIGN.md "Async frame-graph execution").
 *
 * --trace writes a Chrome trace_event JSON (chrome://tracing /
 * Perfetto) with per-stage spans carrying frame ids; --metrics dumps
 * the metric registry (per-stage latency summaries, NN per-layer
 * FLOPs/bytes, thread-pool counters, deadline-violation attribution)
 * to stderr at exit. Both are zero-cost when off and perturb no
 * outputs when on (see tests/test_trace.cc determinism test).
 *
 * --faults=<intensity in [0,1]> injects a seeded, reproducible mix of
 * frame drops, sensor corruption, virtual latency spikes and transient
 * stage failures; individual `fault.*` keys override the mix.
 * --governor enables the graceful-degradation state machine
 * (NOMINAL -> DEGRADED -> TRACKING_ONLY -> SAFE_STOP); `gov.*` keys
 * tune it. The contract both sides implement is documented in
 * docs/OPERATING_MODES.md.
 */

#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/time.hh"
#include "nn/kernel_context.hh"
#include "nn/network.hh"
#include "obs/obs.hh"
#include "pipeline/pipeline.hh"
#include "sensors/scenario.hh"
#include "slam/mapping.hh"

namespace {

using namespace ad;

sensors::Resolution
parseResolution(const std::string& name)
{
    if (name == "HHD")
        return sensors::Resolution::HHD;
    if (name == "KITTI")
        return sensors::Resolution::Kitti;
    if (name == "HD")
        return sensors::Resolution::HD;
    fatal("unknown --resolution '", name, "'");
}

/** Every key adrun itself reads, plus the obs/fault/governor sets. */
std::vector<std::string>
knownKeys()
{
    std::vector<std::string> keys = {
        "scenario", "frames",    "resolution", "seed",      "csv",
        "det-input", "det-width", "summary",    "length",
        "nn.threads", "nn.precision", "nn.fuse", "nn.arena",
        "pipeline.async", "pipeline.depth", "pipeline.seed"};
    for (const auto& k : obs::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k : pipeline::FaultInjectorParams::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k : pipeline::GovernorParams::knownConfigKeys())
        keys.push_back(k);
    return keys;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ad;
    const Config cfg = Config::fromArgs(argc, argv);
    cfg.warnUnknownKeys(knownKeys());
    const obs::ObsOptions obsOpt = obs::setupFromConfig(cfg);
    const int frames = cfg.getInt("frames", 100);
    Rng rng(cfg.getInt("seed", 1));

    sensors::ScenarioParams sp;
    sp.roadLength = cfg.getDouble("length", 300.0);
    const std::string name = cfg.getString("scenario", "highway");
    sensors::Scenario scenario =
        name == "urban" ? sensors::makeUrbanScenario(rng, sp)
                        : sensors::makeHighwayScenario(rng, sp);
    sensors::Camera camera(
        parseResolution(cfg.getString("resolution", "HHD")));

    std::fprintf(stderr, "surveying prior map...\n");
    const slam::PriorMap map =
        slam::buildPriorMap(scenario.world, camera, 1);

    pipeline::PipelineParams params;
    params.detector.inputSize = cfg.getInt("det-input", 160);
    params.detector.width = cfg.getDouble("det-width", 0.25);
    params.trackerPool.tracker.cropSize = 32;
    params.trackerPool.tracker.width = 0.1;
    params.laneCenterY = scenario.world.road().laneCenter(1);
    params.motionPlanner.cruiseSpeed = scenario.ego.speed;
    // 0 = hardware concurrency (PipelineParams uses 0 as "no
    // override", so resolve the knob before handing it down).
    params.nnThreads =
        nn::resolveKernelThreads(cfg.getInt("nn.threads", 0));
    params.nnPrecision =
        nn::parsePrecision(cfg.getString("nn.precision", "fp32"));
    params.nnFuse = cfg.getBool("nn.fuse", true);
    params.nnArena = cfg.getBool("nn.arena", true);
    params.async = cfg.getBool("pipeline.async", false);
    params.asyncDepth = cfg.getInt("pipeline.depth", 2);
    params.scheduleSeed = static_cast<std::uint64_t>(
        cfg.getInt("pipeline.seed", 0));
    params.deadline.budgetMs = obsOpt.budgetMs;
    params.deadline.logViolations = obsOpt.any();
    params.faults = pipeline::FaultInjectorParams::fromConfig(cfg);
    params.governor =
        pipeline::GovernorParams::fromConfig(cfg, obsOpt.budgetMs);
    pipeline::Pipeline pipe(&map, &camera, nullptr, params);

    Pose2 ego = scenario.ego.pose;
    pipe.reset(ego, {scenario.ego.speed, 0},
               {sp.roadLength - 10, params.laneCenterY});

    std::ofstream csvFile;
    std::ostream* csv = nullptr;
    const std::string csvPath = cfg.getString("csv");
    if (!csvPath.empty()) {
        csvFile.open(csvPath);
        if (!csvFile)
            fatal("cannot write '", csvPath, "'");
        csv = &csvFile;
    } else if (!cfg.getBool("summary", false)) {
        csv = &std::cout;
    }
    if (csv)
        *csv << "frame,det_ms,tra_ms,loc_ms,fusion_ms,motplan_ms,"
                "e2e_ms,localized,relocalized,detections,tracks,"
                "mode,dropped\n";

    obs::MetricsSnapshotter snapshotter(
        obs::metrics(), obs::SnapshotOptions{
                            obsOpt.metricsJsonPath,
                            obsOpt.metricsJsonIntervalMs});
    Stopwatch runClock;

    // One CSV row per committed frame. Async outputs trail their
    // submissions by up to pipeline.depth frames, so rows are keyed
    // by the output's own frame id, not the loop index.
    const auto writeRow = [&](const pipeline::FrameOutput& out) {
        if (!csv)
            return;
        const auto& l = out.latencies;
        *csv << out.frameId << ',' << l.detMs << ',' << l.traMs << ','
             << l.locMs << ',' << l.fusionMs << ',' << l.motPlanMs
             << ',' << l.endToEndMs() << ',' << out.localization.ok
             << ',' << out.localization.relocalized << ','
             << out.detections.size() << ',' << out.tracks.size()
             << ',' << pipeline::modeName(out.mode) << ','
             << out.frameDropped << '\n';
    };

    sensors::World world = scenario.world;
    for (int i = 0; i < frames; ++i) {
        world.step(0.1);
        ego.pos.x += scenario.ego.speed * 0.1;
        if (ego.pos.x > world.road().length - 20)
            ego.pos.x = 20;
        const sensors::Frame frame = camera.render(world, ego);
        // submitFrame runs serially unless --pipeline.async is set.
        for (const auto& out :
             pipe.submitFrame(frame.image, 0.1, scenario.ego.speed))
            writeRow(out);
        snapshotter.maybeWrite(runClock.elapsedMs());
    }
    for (const auto& out : pipe.drainAsync())
        writeRow(out);

    std::fprintf(stderr, "\n%d frames processed\n", frames);
    std::fprintf(stderr, "DET     %s\n",
                 pipe.detLatency().summary().toString().c_str());
    std::fprintf(stderr, "TRA     %s\n",
                 pipe.traLatency().summary().toString().c_str());
    std::fprintf(stderr, "LOC     %s\n",
                 pipe.locLatency().summary().toString().c_str());
    std::fprintf(stderr, "E2E     %s\n",
                 pipe.endToEndLatency().summary().toString().c_str());
    if (pipe.asyncEnabled())
        std::fprintf(
            stderr, "PIPELINED %s\n",
            pipe.pipelinedLatency().summary().toString().c_str());

    const auto& watchdog = pipe.deadlineMonitor();
    std::fprintf(stderr, "%s", watchdog.report().c_str());
    if (const auto* injector = pipe.faultInjector())
        std::fprintf(stderr, "%s", injector->report().c_str());
    if (const auto* governor = pipe.governor())
        std::fprintf(stderr, "%s", governor->report().c_str());

    if (obsOpt.metricsDump) {
        auto& reg = obs::metrics();
        // The NN compute inventory next to the measured latencies.
        nn::profileToMetrics(pipe.detector().profile(), reg);
        reg.counter("deadline.frames").add(watchdog.framesObserved());
        reg.counter("deadline.violations").add(watchdog.violations());
        const auto& byStage = watchdog.violationsByStage();
        for (std::size_t i = 0; i < obs::kStageCount; ++i)
            reg.counter(std::string("deadline.violations.") +
                        obs::stageName(static_cast<obs::Stage>(i)))
                .add(byStage[i]);
        reg.gauge("deadline.budget_ms").set(watchdog.params().budgetMs);
        reg.gauge("deadline.worst_overrun_ms")
            .set(watchdog.worstOverrunMs());
        if (const auto* injector = pipe.faultInjector()) {
            const auto& c = injector->counts();
            reg.counter("faults.drops").add(c.drops);
            reg.counter("faults.noise").add(c.noisy);
            reg.counter("faults.blackouts").add(c.blackouts);
            reg.counter("faults.spikes").add(c.spikes);
            reg.counter("faults.det_fails").add(c.detFails);
            reg.counter("faults.loc_fails").add(c.locFails);
            reg.counter("faults.tra_fails").add(c.traFails);
        }
    }
    if (!obsOpt.metricsJsonPath.empty() &&
        snapshotter.writeNow(runClock.elapsedMs()))
        std::fprintf(stderr, "metrics-json: wrote %d snapshots to %s\n",
                     snapshotter.snapshotsWritten(),
                     snapshotter.path().c_str());
    obs::finish(obsOpt);
    return 0;
}
