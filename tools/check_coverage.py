#!/usr/bin/env python3
"""Line-coverage gate over a gcov-instrumented build.

Runs gcov (JSON intermediate format) over every .gcda the test suite
left in a -DAD_COVERAGE=ON build tree, aggregates executed/executable
lines per source file under src/, and fails if total line coverage
drops below the floor recorded in tools/coverage_baseline.txt. The
floor is a ratchet: raise it when coverage genuinely improves, never
lower it to make a regression pass.

Only the stdlib and the gcov binary (part of gcc) are used -- no
gcovr/lcov dependency.

Usage:
    tools/check_coverage.py BUILD_DIR [--baseline=FILE] [--gcov=BIN]
                            [--print-files]

Exits nonzero when coverage is below the baseline, when no coverage
data is found, or when gcov output cannot be parsed.
"""

import argparse
import gzip
import json
import pathlib
import subprocess
import sys
import tempfile


def find_gcda(build_dir):
    """Every .gcda (runtime counters) under the build tree."""
    return sorted(build_dir.rglob("*.gcda"))


def run_gcov(gcov, gcda_files, scratch):
    """Run gcov in JSON mode; returns the .gcov.json.gz paths.

    gcov writes one json.gz per input into the working directory, so
    everything runs inside a scratch dir to keep the build tree
    clean. Batched to keep command lines bounded.
    """
    batch = 400
    for i in range(0, len(gcda_files), batch):
        chunk = [str(p) for p in gcda_files[i:i + batch]]
        proc = subprocess.run(
            [gcov, "--json-format"] + chunk,
            cwd=scratch, stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE, text=True)
        if proc.returncode != 0:
            print(f"check_coverage: gcov failed: {proc.stderr}",
                  file=sys.stderr)
            sys.exit(1)
    return sorted(pathlib.Path(scratch).glob("*.gcov.json.gz"))


def accumulate(json_paths, repo_root):
    """Per-file {executable, executed} line sets from gcov JSON.

    Line sets (not counts) are unioned across translation units: a
    header inlined into many TUs counts each line once, executed if
    any TU executed it -- the same semantics gcovr uses.
    """
    per_file = {}
    for path in json_paths:
        with gzip.open(path, "rt") as f:
            doc = json.load(f)
        for unit in doc.get("files", []):
            name = pathlib.Path(unit["file"])
            if not name.is_absolute():
                name = (repo_root / name).resolve()
            try:
                rel = name.resolve().relative_to(repo_root)
            except ValueError:
                continue  # system/third-party header.
            if rel.parts[:1] != ("src",):
                continue
            entry = per_file.setdefault(
                str(rel), {"executable": set(), "executed": set()})
            for line in unit.get("lines", []):
                num = line["line_number"]
                entry["executable"].add(num)
                if line["count"] > 0:
                    entry["executed"].add(num)
    return per_file


def read_baseline(path):
    """The coverage floor: first non-comment line, a percentage."""
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            return float(line)
    print(f"check_coverage: no baseline value in {path}",
          file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("build_dir", type=pathlib.Path)
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=None)
    parser.add_argument("--gcov", default="gcov")
    parser.add_argument("--print-files", action="store_true",
                        help="per-file coverage table")
    args = parser.parse_args()

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    baseline_path = args.baseline or (
        repo_root / "tools" / "coverage_baseline.txt")
    floor = read_baseline(baseline_path)

    gcda = find_gcda(args.build_dir)
    if not gcda:
        print(f"check_coverage: no .gcda files under "
              f"{args.build_dir} (build with -DAD_COVERAGE=ON and "
              "run the tests first)", file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory() as scratch:
        json_paths = run_gcov(args.gcov, gcda, scratch)
        per_file = accumulate(json_paths, repo_root)

    if not per_file:
        print("check_coverage: gcov produced no data for src/",
              file=sys.stderr)
        return 1

    total_exec = 0
    total_lines = 0
    rows = []
    for name in sorted(per_file):
        entry = per_file[name]
        lines = len(entry["executable"])
        hit = len(entry["executed"] & entry["executable"])
        total_lines += lines
        total_exec += hit
        rows.append((name, hit, lines))
    if args.print_files:
        for name, hit, lines in rows:
            pct = 100.0 * hit / lines if lines else 0.0
            print(f"{pct:6.1f}%  {hit:6d}/{lines:<6d}  {name}")

    pct = 100.0 * total_exec / total_lines if total_lines else 0.0
    print(f"line coverage: {total_exec}/{total_lines} = {pct:.2f}% "
          f"(floor {floor:.2f}%)")
    if pct < floor:
        print(f"check_coverage: FAIL: {pct:.2f}% < baseline floor "
              f"{floor:.2f}% -- new code needs tests (or the floor "
              "in tools/coverage_baseline.txt is stale)",
              file=sys.stderr)
        return 1
    print("check_coverage: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
