#!/usr/bin/env python3
"""Schema validator for the checked-in BENCH_*.json artifacts.

The bench harnesses (bench_micro_kernels, bench_ext_serve_scale,
bench_ext_quant_accuracy, bench_ext_pipeline_overlap) write
machine-readable artifacts that back
speedup/accuracy claims in DESIGN.md. CI runs this script against the
checked-in copies so a harness refactor cannot silently change an
artifact's shape (or drop the acceptance-bar fields) without the diff
showing up here.

Usage:
    tools/check_bench_json.py [FILE...]

With no arguments, validates every BENCH_*.json in the repository
root. Exits nonzero listing every violation; prints one OK line per
valid file. Only the stdlib is used.
"""

import json
import pathlib
import sys


class Checker:
    """Accumulates violations for one artifact."""

    def __init__(self, path):
        self.path = path
        self.errors = []

    def fail(self, msg):
        self.errors.append(f"{self.path}: {msg}")

    def require(self, obj, key, kinds, ctx=""):
        """Key present and of one of `kinds`; returns the value or None."""
        where = f"{ctx}.{key}" if ctx else key
        if not isinstance(obj, dict) or key not in obj:
            self.fail(f'missing "{where}"')
            return None
        val = obj[key]
        # bool is an int subclass; reject it where a number is expected.
        if isinstance(val, bool) and bool not in kinds:
            self.fail(f'"{where}" must be {kinds}, got bool')
            return None
        if not isinstance(val, tuple(kinds)):
            self.fail(f'"{where}" must be {kinds}, '
                      f"got {type(val).__name__}")
            return None
        return val

    def number(self, obj, key, ctx="", minimum=None):
        val = self.require(obj, key, [int, float], ctx)
        if val is not None and minimum is not None and val < minimum:
            self.fail(f'"{ctx}.{key}" = {val} < {minimum}')
        return val

    def rows(self, obj, key, min_rows=1, ctx=""):
        val = self.require(obj, key, [list], ctx)
        if val is None:
            return []
        if len(val) < min_rows:
            self.fail(f'"{key}" has {len(val)} rows, need >= {min_rows}')
        bad = [i for i, r in enumerate(val) if not isinstance(r, dict)]
        if bad:
            self.fail(f'"{key}" rows {bad} are not objects')
            return [r for r in val if isinstance(r, dict)]
        return val


def check_gemm(c, doc):
    """BENCH_gemm.json: the kernel-layer scaling sweep."""
    c.require(doc, "kernel", [str])
    for key in ("m", "n", "k"):
        c.number(doc, key, minimum=1)
    c.require(doc, "baseline", [str])
    c.number(doc, "baseline_ms", minimum=0)
    for i, row in enumerate(c.rows(doc, "results")):
        ctx = f"results[{i}]"
        c.number(row, "threads", ctx, minimum=1)
        c.number(row, "ms", ctx, minimum=0)
        c.number(row, "speedup_vs_baseline", ctx, minimum=0)
    c.require(doc, "int8_isa", [str])
    for i, row in enumerate(c.rows(doc, "int8_results")):
        ctx = f"int8_results[{i}]"
        c.number(row, "threads", ctx, minimum=1)
        c.number(row, "ms", ctx, minimum=0)
        c.number(row, "speedup_vs_fp32_packed", ctx, minimum=0)


def check_serve(c, doc):
    """BENCH_serve.json: the multi-stream serving scaling sweep."""
    c.require(doc, "engine", [str])
    c.number(doc, "frames_per_stream", minimum=1)
    c.number(doc, "budget_ms", minimum=0)
    for i, row in enumerate(c.rows(doc, "rows")):
        ctx = f"rows[{i}]"
        streams = c.number(row, "streams", ctx, minimum=1)
        frames = doc.get("frames_per_stream")
        admitted = c.number(row, "admitted", ctx, minimum=0)
        shed = c.number(row, "shed", ctx, minimum=0)
        for key in ("p50_ms", "p99_ms", "p9999_ms", "goodput_fps",
                    "shed_rate", "mean_batch_size"):
            c.number(row, key, ctx, minimum=0)
        c.require(row, "mode", [str], ctx)
        # Per-stream SLO summary (worst burn rate / window p99 across
        # streams, mean goodput ratio). worst_p99_ms may be the -1
        # sentinel when no stream's window resolved a p99.
        slo = c.require(row, "slo", [dict], ctx)
        if slo is not None:
            c.number(slo, "worst_burn_rate", f"{ctx}.slo", minimum=0)
            c.number(slo, "worst_p99_ms", f"{ctx}.slo", minimum=-1)
            ratio = c.number(slo, "mean_goodput_ratio", f"{ctx}.slo",
                             minimum=0)
            if ratio is not None and ratio > 1.0:
                c.fail(f"{ctx}.slo.mean_goodput_ratio {ratio} > 1")
        # Frame conservation: nothing admitted or shed beyond what
        # arrived (coasted frames absorb the remainder).
        if None not in (streams, frames, admitted, shed):
            arrived = streams * frames
            if admitted + shed > arrived:
                c.fail(f"{ctx}: admitted {admitted} + shed {shed} "
                       f"> arrived {arrived}")
    check_serve_overhead(c, doc)


def check_serve_overhead(c, doc):
    """The flight-recorder overhead block of BENCH_serve.json."""
    overhead = c.require(doc, "flight_overhead", [dict])
    if overhead is None:
        return
    c.number(overhead, "on_ms", "flight_overhead", minimum=0)
    c.number(overhead, "off_ms", "flight_overhead", minimum=0)
    pct = c.number(overhead, "overhead_pct", "flight_overhead",
                   minimum=0)
    # ISSUE 7 acceptance bar: recording costs < 5 % of the measured
    # serving run it instruments.
    if pct is not None and pct >= 5.0:
        c.fail(f"flight_overhead.overhead_pct {pct} >= 5")


def check_quant(c, doc):
    """BENCH_quant.json: the int8 accuracy/latency sweep.

    Beyond shape, this re-asserts the acceptance bars the artifact
    exists to document: kernel speedup >= 1.8x at 512^3, DET IoU
    degradation <= 2%, bitwise-deterministic int8 path.
    """
    c.require(doc, "int8_isa", [str])
    gemm = c.require(doc, "gemm", [dict])
    if gemm is not None:
        speedup = c.number(gemm, "serial_speedup", "gemm", minimum=0)
        if speedup is not None and speedup < 1.8:
            c.fail(f"gemm.serial_speedup {speedup} < 1.8")
        for i, row in enumerate(c.rows(gemm, "rows", ctx="gemm")):
            ctx = f"gemm.rows[{i}]"
            c.number(row, "threads", ctx, minimum=1)
            c.number(row, "fp32_ms", ctx, minimum=0)
            c.number(row, "int8_ms", ctx, minimum=0)
    det = c.require(doc, "determinism", [dict])
    if det is not None:
        for key in ("gemm_bitwise_identical", "det_boxes_identical"):
            val = c.require(det, key, [bool], "determinism")
            if val is False:
                c.fail(f"determinism.{key} is false")
    acc = c.require(doc, "det", [dict])
    if acc is not None:
        degradation = c.number(acc, "iou_degradation", "det")
        if degradation is not None and degradation > 0.02:
            c.fail(f"det.iou_degradation {degradation} > 0.02")
        for key in ("frames", "fp32_detections", "int8_detections"):
            c.number(acc, key, "det", minimum=0)
        for key in ("fp32_dnn_ms", "int8_dnn_ms", "dnn_speedup"):
            c.number(acc, key, "det", minimum=0)
    tra = c.require(doc, "tra", [dict])
    if tra is not None:
        c.number(tra, "mean_center_error_px", "tra", minimum=0)
        c.number(tra, "dnn_speedup", "tra", minimum=0)
    fusion = c.require(doc, "fusion", [dict])
    if fusion is not None:
        layers_fused = c.number(fusion, "layers_fused", "fusion",
                                minimum=0)
        if layers_fused is not None and layers_fused < 1:
            c.fail(f"fusion.layers_fused {layers_fused} < 1")
        c.number(fusion, "direct_convs", "fusion", minimum=0)
        for key in ("det_unfused_ms", "det_fused_ms",
                    "det_int8_unfused_ms", "det_int8_fused_ms"):
            c.number(fusion, key, "fusion", minimum=0)
        det_speedup = c.number(fusion, "det_speedup", "fusion",
                               minimum=0)
        if det_speedup is not None and det_speedup < 1.0:
            c.fail(f"fusion.det_speedup {det_speedup} < 1.0 "
                   "(fused path slower than unfused)")
        c.number(fusion, "det_int8_speedup", "fusion", minimum=0)
        identical = c.require(fusion, "bitwise_identical", [bool],
                              "fusion")
        if identical is False:
            c.fail("fusion.bitwise_identical is false")
        arena = c.require(fusion, "arena", [dict], "fusion")
        if arena is not None:
            for key in ("det_arena_bytes", "det_arena_values"):
                val = c.number(arena, key, "fusion.arena", minimum=0)
                if val is not None and val < 1:
                    c.fail(f"fusion.arena.{key} {val} < 1")
            allocs = c.number(arena, "alloc_events_per_frame",
                              "fusion.arena", minimum=0)
            if allocs is not None and allocs != 0:
                c.fail("fusion.arena.alloc_events_per_frame "
                       f"{allocs} != 0 (planned path allocates)")
    serve = c.require(doc, "serve", [dict])
    if serve is not None:
        for cell in ("fp32", "int8"):
            obj = c.require(serve, cell, [dict], "serve")
            if obj is not None:
                c.number(obj, "goodput_fps", f"serve.{cell}", minimum=0)
                c.number(obj, "p99_ms", f"serve.{cell}", minimum=0)
        c.number(serve, "goodput_ratio", "serve", minimum=0)


def check_pipeline(c, doc):
    """BENCH_pipeline.json: the frame-graph pipelining sweep.

    Beyond shape, re-asserts the ISSUE 8 acceptance bars: async
    depth >= 2 sustains >= 1.3x serial virtual throughput, the paced
    p99.99 pipelined latency holds the 100 ms budget at every depth,
    and every row is bitwise-reproducible (depth 1 vs the serial
    path, all depths across schedule seeds).
    """
    c.number(doc, "frames_paced", minimum=1)
    c.number(doc, "frames_saturated", minimum=1)
    budget = c.number(doc, "budget_ms", minimum=0)
    stages = c.require(doc, "stage_mean_ms", [dict])
    if stages is not None:
        for key in ("det", "tra", "loc", "fusion", "motplan"):
            c.number(stages, key, "stage_mean_ms", minimum=0)
    serial = c.require(doc, "serial", [dict])
    if serial is not None:
        c.number(serial, "throughput_fps", "serial", minimum=0)
        c.number(serial, "virtual_makespan_ms", "serial", minimum=0)
        p9999 = c.number(serial, "p9999_pipelined_ms", "serial",
                         minimum=0)
        if None not in (p9999, budget) and p9999 > budget:
            c.fail(f"serial.p9999_pipelined_ms {p9999} > budget "
                   f"{budget}")
    depths = set()
    for i, row in enumerate(c.rows(doc, "rows", min_rows=3)):
        ctx = f"rows[{i}]"
        depth = c.number(row, "depth", ctx, minimum=1)
        if depth is not None:
            depths.add(depth)
        c.number(row, "throughput_fps", ctx, minimum=0)
        speedup = c.number(row, "speedup_vs_serial", ctx, minimum=0)
        if (None not in (depth, speedup) and depth >= 2
                and speedup < 1.3):
            c.fail(f"{ctx}: depth {depth} speedup_vs_serial "
                   f"{speedup} < 1.3")
        p9999 = c.number(row, "p9999_pipelined_ms", ctx, minimum=0)
        if None not in (p9999, budget) and p9999 > budget:
            c.fail(f"{ctx}: p9999_pipelined_ms {p9999} > budget "
                   f"{budget}")
        c.number(row, "e2e_p9999_ms", ctx, minimum=0)
        c.number(row, "deadline_misses", ctx, minimum=0)
        identical = c.require(row, "bitwise_identical", [bool], ctx)
        if identical is False:
            c.fail(f"{ctx}: bitwise_identical is false")
    # The acceptance claim covers depths 1-3 specifically.
    for depth in (1, 2, 3):
        if depth not in depths:
            c.fail(f'"rows" has no entry for depth {depth}')


def check_fleet(c, doc):
    """BENCH_fleet.json: the fleet shard-scaling sweep.

    Beyond shape, re-asserts the ISSUE 9 acceptance bars: every
    multi-shard row at >= 512 streams (there must be at least one)
    holds the admitted fleet-wide p99.99 inside the budget, 1->4
    shard goodput at 512 streams is >= 0.8x linear, and the
    triple-run migration log and fleet summary are bitwise
    identical (over a non-empty migration log).
    """
    c.require(doc, "engine", [str])
    c.number(doc, "horizon_ms", minimum=1)
    budget = c.number(doc, "budget_ms", minimum=0)
    tail_rows = 0
    for i, row in enumerate(c.rows(doc, "rows", min_rows=3)):
        ctx = f"rows[{i}]"
        shards = c.number(row, "shards", ctx, minimum=1)
        streams = c.number(row, "streams", ctx, minimum=1)
        admitted = c.number(row, "admitted", ctx, minimum=0)
        shed = c.number(row, "shed", ctx, minimum=0)
        arrived = c.number(row, "arrived", ctx, minimum=0)
        p9999 = c.number(row, "p9999_ms", ctx, minimum=0)
        for key in ("streams_admitted", "goodput_fps",
                    "total_goodput_fps", "shed_rate", "epochs",
                    "migrations", "fleet_escalations"):
            c.number(row, key, ctx, minimum=0)
        if None not in (admitted, shed, arrived):
            if admitted + shed > arrived:
                c.fail(f"{ctx}: admitted {admitted} + shed {shed} "
                       f"> arrived {arrived}")
        # The fleet-scale tail bar: >= 512 streams over >= 2 shards
        # must hold the paper's budget at the admitted tier.
        if None not in (shards, streams, p9999, budget):
            if shards >= 2 and streams >= 512:
                tail_rows += 1
                if p9999 > budget:
                    c.fail(f"{ctx}: p9999_ms {p9999} > budget "
                           f"{budget} at {streams} streams x "
                           f"{shards} shards")
        shard_rows = c.rows(row, "shard_rows", ctx=ctx)
        if shards is not None and len(shard_rows) != shards:
            c.fail(f"{ctx}: shard_rows has {len(shard_rows)} "
                   f"entries, expected {shards}")
        for k, srow in enumerate(shard_rows):
            sctx = f"{ctx}.shard_rows[{k}]"
            for key in ("shard", "streams_final", "p9999_ms",
                        "goodput_fps", "burn_rate", "migrations_in",
                        "migrations_out"):
                c.number(srow, key, sctx, minimum=0)
    if tail_rows == 0:
        c.fail('"rows" has no multi-shard entry at >= 512 streams')
    scaling = c.require(doc, "scaling", [dict])
    if scaling is not None:
        c.number(scaling, "goodput_1shard_fps", "scaling", minimum=0)
        c.number(scaling, "goodput_4shard_fps", "scaling", minimum=0)
        ratio = c.number(scaling, "ratio_vs_linear", "scaling",
                         minimum=0)
        if ratio is not None and ratio < 0.8:
            c.fail(f"scaling.ratio_vs_linear {ratio} < 0.8")
    det = c.require(doc, "determinism", [dict])
    if det is not None:
        for key in ("migration_log_identical", "summary_identical"):
            val = c.require(det, key, [bool], "determinism")
            if val is False:
                c.fail(f"determinism.{key} is false")
        moves = c.number(det, "migrations", "determinism", minimum=0)
        if moves is not None and moves < 1:
            c.fail("determinism.migrations is 0 (the identity check "
                   "ran over an empty migration log)")


def check_map(c, doc):
    """BENCH_map.json: the map-service scaling sweep.

    Beyond shape, re-asserts the ISSUE 10 acceptance bars: every
    prefetch-on row has zero steady-state cold-tile stalls while the
    no-prefetch baseline at >= 256 vehicles stalls steadily, demand
    p99 holds the budget at >= 256 vehicles with prefetch on, the
    update loop ends with strictly less map error than a frozen map
    over a transport that compresses, and the triple-run version log
    and summary are bitwise identical over a non-empty log.
    """
    c.number(doc, "horizon_ms", minimum=1)
    budget = c.number(doc, "budget_ms", minimum=0)
    prefetch_rows = 0
    latency_rows = 0
    baseline_steady = 0
    for i, row in enumerate(c.rows(doc, "rows", min_rows=4)):
        ctx = f"rows[{i}]"
        vehicles = c.number(row, "vehicles", ctx, minimum=1)
        prefetch = c.require(row, "prefetch", [bool], ctx)
        frames = c.number(row, "frames", ctx, minimum=1)
        warm = c.number(row, "warm", ctx, minimum=0)
        stalled = c.number(row, "stalled", ctx, minimum=0)
        steady = c.number(row, "steady_stalls", ctx, minimum=0)
        cold = c.number(row, "cold_starts", ctx, minimum=0)
        p99 = c.number(row, "demand_p99_ms", ctx, minimum=0)
        for key in ("prefetch_issued", "prefetch_late",
                    "stale_reads", "hit_rate", "fetch_p99_ms",
                    "stall_p99_ms", "cache_hits", "cache_misses"):
            c.number(row, key, ctx, minimum=0)
        ratio = c.number(row, "compression_ratio", ctx, minimum=0)
        if ratio is not None and ratio <= 1.0:
            c.fail(f"{ctx}: compression_ratio {ratio} <= 1")
        # Frame conservation and the stall split (coasted frames
        # absorb the remainder of warm + stalled).
        if None not in (frames, warm, stalled):
            if warm + stalled > frames:
                c.fail(f"{ctx}: warm {warm} + stalled {stalled} "
                       f"> frames {frames}")
        if None not in (steady, cold, stalled):
            if steady + cold != stalled:
                c.fail(f"{ctx}: steady {steady} + cold {cold} "
                       f"!= stalled {stalled}")
        if None in (vehicles, prefetch, steady, p99, budget):
            continue
        if prefetch:
            prefetch_rows += 1
            # The headline zero bar: pose-driven prefetch leaves no
            # steady-state cold-tile stalls at any fleet size.
            if steady != 0:
                c.fail(f"{ctx}: steady_stalls {steady} != 0 with "
                       "prefetch on")
            if vehicles >= 256:
                latency_rows += 1
                if p99 > budget:
                    c.fail(f"{ctx}: demand_p99_ms {p99} > budget "
                           f"{budget} at {vehicles} vehicles")
        elif vehicles >= 256:
            baseline_steady += steady
    if prefetch_rows == 0:
        c.fail('"rows" has no prefetch-on entry')
    if latency_rows == 0:
        c.fail('"rows" has no prefetch-on entry at >= 256 vehicles')
    if baseline_steady == 0:
        c.fail("no-prefetch baseline at >= 256 vehicles has zero "
               "steady stalls (the zero bar proves nothing)")
    conv = c.require(doc, "convergence", [dict])
    if conv is not None:
        err_on = c.number(conv, "final_err_updates_on",
                          "convergence", minimum=0)
        err_off = c.number(conv, "final_err_updates_off",
                           "convergence", minimum=0)
        if None not in (err_on, err_off) and err_on >= err_off:
            c.fail(f"convergence: final_err_updates_on {err_on} >= "
                   f"final_err_updates_off {err_off}")
        c.number(conv, "peak_err_bits", "convergence", minimum=0)
        for key in ("updates_pushed", "updates_merged"):
            val = c.number(conv, key, "convergence", minimum=0)
            if val is not None and val < 1:
                c.fail(f"convergence.{key} is 0 (the update loop "
                       "never ran)")
        ratio = c.number(conv, "compression_ratio", "convergence",
                         minimum=0)
        if ratio is not None and ratio <= 1.0:
            c.fail(f"convergence.compression_ratio {ratio} <= 1")
        if c.require(conv, "pass", [bool], "convergence") is False:
            c.fail("convergence.pass is false")
    det = c.require(doc, "determinism", [dict])
    if det is not None:
        for key in ("version_log_identical", "summary_identical"):
            val = c.require(det, key, [bool], "determinism")
            if val is False:
                c.fail(f"determinism.{key} is false")
        epochs = c.number(det, "merge_epochs", "determinism",
                          minimum=0)
        if epochs is not None and epochs < 1:
            c.fail("determinism.merge_epochs is 0 (the identity "
                   "check ran over an empty version log)")


CHECKERS = {
    "BENCH_gemm.json": check_gemm,
    "BENCH_fleet.json": check_fleet,
    "BENCH_map.json": check_map,
    "BENCH_serve.json": check_serve,
    "BENCH_quant.json": check_quant,
    "BENCH_pipeline.json": check_pipeline,
}


def check_file(path):
    c = Checker(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        c.fail(str(e))
        return c.errors
    if not isinstance(doc, dict):
        c.fail("top level is not an object")
        return c.errors
    checker = CHECKERS.get(path.name)
    if checker is None:
        c.fail(f"no schema registered for {path.name}; add one to "
               "tools/check_bench_json.py")
        return c.errors
    checker(c, doc)
    return c.errors


def main(argv):
    root = pathlib.Path(__file__).resolve().parent.parent
    if len(argv) > 1:
        paths = [pathlib.Path(a) for a in argv[1:]]
    else:
        paths = sorted(root.glob("BENCH_*.json"))
    if not paths:
        print("check_bench_json: no BENCH_*.json artifacts found",
              file=sys.stderr)
        return 1
    failures = 0
    for path in paths:
        errors = check_file(path)
        if errors:
            failures += 1
            for e in errors:
                print(f"FAIL {e}", file=sys.stderr)
        else:
            print(f"OK   {path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
