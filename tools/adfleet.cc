/**
 * @file
 * adfleet -- fleet-scale sharded serving runner. Plays a
 * scenario-replay arrival tape (bursts, diurnal ramps, stragglers,
 * hot blocks; see fleet/loadgen.hh) through `serve.shards`
 * MultiStreamServer engine replicas co-simulated in lockstep
 * rebalancing epochs, with slack-aware stream migration and
 * fleet-wide degradation arbitration (fleet/fleet.hh), and reports
 * fleet plus per-shard serving outcomes.
 *
 * Usage:
 *   adfleet [--serve.shards=2] [--fleet.loadgen.streams=64]
 *           [--fleet.loadgen.horizon-ms=10000]
 *           [--fleet.loadgen.burst-p=0.05] [...]
 *           [--fleet.rebalance.period-ms=1000]
 *           [--fleet.admit.max-streams-per-shard=0]
 *           [--fleet.parallel=0]
 *           [--deadline-ms=100] [--queue-depth=1] [--batch-max=8]
 *           [--window-ms=6] [--admission=1] [--seed=29]
 *           [--engine.fixed-ms=8] [--engine.marginal-ms=9]
 *           [--fleet-json=out.json] [--summary] [--metrics]
 *   adfleet --check=out.json
 *
 * --fleet-json writes a machine-readable fleet report (fleet
 * aggregates, per-shard rows, the migration log); --check parses one
 * back, validates its structure, the fleet and per-shard frame
 * conservation invariants (arrived == admitted + coasted + shed;
 * each shard's injected == completions + sheds) and migration-log
 * sanity, and exits nonzero on any violation. The adfleet smoke
 * fixture in tools/CMakeLists.txt runs exactly that pair.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "fleet/fleet.hh"
#include "obs/json.hh"
#include "obs/obs.hh"

namespace {

using namespace ad;

std::vector<std::string>
knownKeys()
{
    std::vector<std::string> keys = {
        "deadline-ms", "queue-depth", "batch-max",
        "window-ms",   "admission",   "seed",
        "engine.fixed-ms", "engine.marginal-ms",
        "engine.jitter",   "engine.spike-p",
        "slo.window",  "slo.target-miss-rate",
        "fleet-json",  "summary",     "check"};
    for (const auto& k : fleet::FleetParams::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k : fleet::RebalanceParams::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k : fleet::LoadGenParams::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k : obs::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k : pipeline::GovernorParams::knownConfigKeys())
        keys.push_back(k);
    return keys;
}

void
writeReport(const std::string& path, const fleet::FleetReport& r)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write '", path, "'");
    const auto& q = r.admittedLatency;
    out << "{\n"
        << "  \"shards\": " << r.shards << ",\n"
        << "  \"streams\": " << r.streamsRequested << ",\n"
        << "  \"streams_admitted\": " << r.streamsAdmitted << ",\n"
        << "  \"arrived\": " << r.framesArrived << ",\n"
        << "  \"admitted\": " << r.framesAdmitted << ",\n"
        << "  \"degraded\": " << r.framesDegraded << ",\n"
        << "  \"coasted\": " << r.framesCoasted << ",\n"
        << "  \"shed\": " << r.framesShed << ",\n"
        << "  \"deadline_misses\": " << r.deadlineMisses << ",\n"
        << "  \"p50_ms\": " << q.p50 << ",\n"
        << "  \"p99_ms\": " << q.p99 << ",\n"
        << "  \"p9999_ms\": " << q.p9999 << ",\n"
        << "  \"worst_ms\": " << q.worst << ",\n"
        << "  \"goodput_fps\": " << r.goodputFps << ",\n"
        << "  \"total_goodput_fps\": " << r.totalGoodputFps << ",\n"
        << "  \"shed_rate\": " << r.shedRate << ",\n"
        << "  \"duration_ms\": " << r.durationMs << ",\n"
        << "  \"epochs\": " << r.epochs << ",\n"
        << "  \"migrations\": " << r.migrations << ",\n"
        << "  \"fleet_escalations\": " << r.fleetEscalations << ",\n"
        << "  \"shard_rows\": [";
    for (std::size_t i = 0; i < r.shardRows.size(); ++i) {
        const auto& row = r.shardRows[i];
        out << (i ? "," : "") << "\n    {\"shard\": " << row.shard
            << ", \"streams_final\": " << row.streamsFinal
            << ", \"injected\": " << row.arrivalsInjected
            << ", \"completions\": " << row.completions
            << ", \"sheds\": " << row.sheds
            << ", \"batches\": " << row.batches
            << ", \"p9999_ms\": " << row.admittedLatency.p9999
            << ", \"goodput_fps\": " << row.goodputFps
            << ", \"burn_rate\": " << row.burnRate
            << ", \"migrations_in\": " << row.migrationsIn
            << ", \"migrations_out\": " << row.migrationsOut << "}";
    }
    out << "\n  ],\n"
        << "  \"migration_log\": [";
    for (std::size_t i = 0; i < r.migrationLog.size(); ++i) {
        const auto& m = r.migrationLog[i];
        out << (i ? "," : "") << "\n    {\"epoch\": " << m.epoch
            << ", \"t_ms\": " << m.tMs
            << ", \"stream\": " << m.stream
            << ", \"from\": " << m.fromShard
            << ", \"to\": " << m.toShard << "}";
    }
    out << "\n  ]\n"
        << "}\n";
    std::fprintf(stderr, "fleet report: %s\n", path.c_str());
}

/** Validate a --fleet-json report; returns the process exit code. */
int
checkReport(const std::string& path)
{
    std::string err;
    const auto doc = obs::json::parseFile(path, &err);
    if (!doc) {
        std::fprintf(stderr, "adfleet --check: %s: %s\n", path.c_str(),
                     err.c_str());
        return 1;
    }
    if (!doc->isObject()) {
        std::fprintf(stderr, "adfleet --check: %s: not an object\n",
                     path.c_str());
        return 1;
    }
    int failures = 0;
    auto number = [&](const char* key) -> double {
        const auto* v = doc->find(key);
        if (!v || !v->isNumber()) {
            std::fprintf(stderr,
                         "adfleet --check: missing numeric \"%s\"\n",
                         key);
            ++failures;
            return 0.0;
        }
        return v->asNumber();
    };
    const double shards = number("shards");
    const double streams = number("streams");
    const double streamsAdmitted = number("streams_admitted");
    const double arrived = number("arrived");
    const double admitted = number("admitted");
    const double coasted = number("coasted");
    const double shed = number("shed");
    const double migrations = number("migrations");
    number("p9999_ms");
    number("goodput_fps");
    number("epochs");
    number("fleet_escalations");
    if (failures)
        return 1;
    if (shards < 1 || streamsAdmitted > streams) {
        std::fprintf(stderr,
                     "adfleet --check: implausible shards/streams\n");
        ++failures;
    }
    if (admitted + coasted + shed != arrived) {
        std::fprintf(stderr,
                     "adfleet --check: conservation violated: "
                     "admitted %.0f + coasted %.0f + shed %.0f != "
                     "arrived %.0f\n",
                     admitted, coasted, shed, arrived);
        ++failures;
    }
    const auto* rows = doc->find("shard_rows");
    if (!rows || !rows->isArray() ||
        static_cast<double>(rows->asArray().size()) != shards) {
        std::fprintf(
            stderr,
            "adfleet --check: \"shard_rows\" must have one row "
            "per shard\n");
        ++failures;
    } else {
        double injectedTotal = 0.0;
        double streamsFinal = 0.0;
        for (std::size_t i = 0; i < rows->asArray().size(); ++i) {
            const auto& row = rows->asArray()[i];
            auto field = [&](const char* key) -> double {
                const auto* v = row.isObject() ? row.find(key)
                                               : nullptr;
                if (!v || !v->isNumber()) {
                    std::fprintf(stderr,
                                 "adfleet --check: shard_rows[%zu] "
                                 "lacks numeric \"%s\"\n",
                                 i, key);
                    ++failures;
                    return 0.0;
                }
                return v->asNumber();
            };
            const double injected = field("injected");
            const double completions = field("completions");
            const double sheds = field("sheds");
            field("burn_rate");
            field("p9999_ms");
            // Migrations only move quiescent streams, so every
            // arrival injected into a shard is resolved on it.
            if (injected != completions + sheds) {
                std::fprintf(stderr,
                             "adfleet --check: shard_rows[%zu]: "
                             "injected %.0f != completions %.0f + "
                             "sheds %.0f\n",
                             i, injected, completions, sheds);
                ++failures;
            }
            injectedTotal += injected;
            streamsFinal += field("streams_final");
        }
        if (injectedTotal != arrived) {
            std::fprintf(stderr,
                         "adfleet --check: per-shard injected sums "
                         "to %.0f, arrived is %.0f\n",
                         injectedTotal, arrived);
            ++failures;
        }
        if (streamsFinal != streamsAdmitted) {
            std::fprintf(stderr,
                         "adfleet --check: resident streams %.0f != "
                         "admitted %.0f\n",
                         streamsFinal, streamsAdmitted);
            ++failures;
        }
    }
    const auto* log = doc->find("migration_log");
    if (!log || !log->isArray() ||
        static_cast<double>(log->asArray().size()) != migrations) {
        std::fprintf(stderr,
                     "adfleet --check: \"migration_log\" must have "
                     "one entry per migration\n");
        ++failures;
    } else {
        for (std::size_t i = 0; i < log->asArray().size(); ++i) {
            const auto& m = log->asArray()[i];
            const auto* from = m.isObject() ? m.find("from") : nullptr;
            const auto* to = m.isObject() ? m.find("to") : nullptr;
            const auto* stream =
                m.isObject() ? m.find("stream") : nullptr;
            if (!from || !to || !stream || !from->isNumber() ||
                !to->isNumber() || !stream->isNumber() ||
                from->asNumber() == to->asNumber() ||
                from->asNumber() < 0 || from->asNumber() >= shards ||
                to->asNumber() < 0 || to->asNumber() >= shards ||
                stream->asNumber() < 0 ||
                stream->asNumber() >= streams) {
                std::fprintf(stderr,
                             "adfleet --check: migration_log[%zu] "
                             "is not a valid move\n",
                             i);
                ++failures;
            }
        }
    }
    if (failures)
        return 1;
    std::fprintf(stderr, "adfleet --check: %s OK\n", path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ad;
    const Config cfg = Config::fromArgs(argc, argv);
    cfg.warnUnknownKeys(knownKeys());

    const std::string checkPath = cfg.getString("check");
    if (!checkPath.empty())
        return checkReport(checkPath);

    const obs::ObsOptions obsOpt = obs::setupFromConfig(cfg);

    const fleet::LoadGenParams lp = fleet::LoadGenParams::fromConfig(cfg);
    const fleet::ScenarioLoadGen load(lp);

    fleet::FleetParams fp = fleet::FleetParams::fromConfig(cfg);
    serve::ServeParams& sp = fp.serve;
    // The serve template's camera period is the loadgen's: frame
    // deadlines and admission math must agree with the tape.
    sp.stream.framePeriodMs = lp.periodMs;
    sp.stream.deadlineMs = cfg.getDouble("deadline-ms", 100.0);
    sp.stream.queueDepth = cfg.getInt("queue-depth", 1);
    sp.batch.maxBatch = cfg.getInt("batch-max", 8);
    sp.batch.maxWaitMs = cfg.getDouble("window-ms", 6.0);
    sp.admission.enabled = cfg.getBool("admission", true);
    sp.seed = static_cast<std::uint64_t>(cfg.getInt("seed", 29));
    sp.governor =
        pipeline::GovernorParams::fromConfig(cfg, sp.stream.deadlineMs);
    sp.governor.enabled = true;
    sp.governor.budgetMs = sp.stream.deadlineMs;
    sp.slo.windowFrames = cfg.getInt("slo.window", sp.slo.windowFrames);
    sp.slo.targetMissRate =
        cfg.getDouble("slo.target-miss-rate", sp.slo.targetMissRate);

    fp.engine.fixedMs = cfg.getDouble("engine.fixed-ms",
                                      fp.engine.fixedMs);
    fp.engine.marginalMs =
        cfg.getDouble("engine.marginal-ms", fp.engine.marginalMs);
    fp.engine.jitterSigma =
        cfg.getDouble("engine.jitter", fp.engine.jitterSigma);
    fp.engine.spikeP = cfg.getDouble("engine.spike-p",
                                     fp.engine.spikeP);
    fp.engine.seed = sp.seed * 2654435761u + 1;

    fleet::ShardedServer server(fp, load);
    const fleet::FleetReport report = server.run();

    if (cfg.getBool("summary", false) || obsOpt.any())
        std::fprintf(stderr, "%s", report.toString().c_str());

    const std::string jsonPath = cfg.getString("fleet-json");
    if (!jsonPath.empty())
        writeReport(jsonPath, report);

    if (!obsOpt.metricsJsonPath.empty()) {
        obs::MetricsSnapshotter snapshotter(
            obs::metrics(), obs::SnapshotOptions{
                                obsOpt.metricsJsonPath,
                                obsOpt.metricsJsonIntervalMs});
        if (snapshotter.writeNow(report.durationMs))
            std::fprintf(stderr, "metrics-json: wrote snapshot to %s\n",
                         snapshotter.path().c_str());
    }

    obs::finish(obsOpt);
    return 0;
}
