/**
 * @file
 * adtop -- live text view of a running tool's metrics snapshot.
 *
 * adrun/adserve export the metric registry to a JSON file at a fixed
 * interval (--metrics-json, atomic rename). adtop renders that file
 * as two tables: per-stream serving state (arrivals, admissions,
 * sheds, deadline misses, SLO window percentiles, miss-budget burn
 * rate, goodput, slack) and per-stage pipeline state (latency
 * quantiles plus perf-counter IPC / cache behavior when sampled).
 * With --follow it re-reads the file on an interval and redraws, a
 * minimal `top` for the serving machine; --once prints a single
 * frame (the smoke-test mode).
 *
 * Usage:
 *   adtop <metrics.json> [--once] [--follow] [--interval-ms=N]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hh"

namespace {

using ad::obs::json::Value;

/** One stream's row, assembled from labeled metrics. */
struct StreamRow
{
    double arrived = 0, admitted = 0, shed = 0, misses = 0;
    double p50 = -1, p99 = -1, p999 = -1;
    double burn = 0, goodput = 0, slack = 0;
    bool any = false;
};

/**
 * Split "serve.latency_ms{stream=3}" into its base name and stream
 * id; returns false for unlabeled names.
 */
bool
splitStreamLabel(const std::string& key, std::string* base, int* id)
{
    const auto open = key.find("{stream=");
    if (open == std::string::npos || key.back() != '}')
        return false;
    *base = key.substr(0, open);
    *id = std::atoi(key.c_str() + open + 8);
    return true;
}

/** Base name's suffix after the tool's metric prefix ("serve."). */
std::string
suffixOf(const std::string& base)
{
    const auto dot = base.find('.');
    return dot == std::string::npos ? base : base.substr(dot + 1);
}

double
histField(const Value& h, const char* field)
{
    const Value* v = h.find(field);
    return v && v->isNumber() ? v->asNumber() : 0.0;
}

int
render(const std::string& path)
{
    std::string error;
    const auto doc = ad::obs::json::parseFile(path, &error);
    if (!doc || !doc->isObject()) {
        std::fprintf(stderr, "adtop: cannot read '%s': %s\n",
                     path.c_str(), error.c_str());
        return 1;
    }
    // Accept both the snapshot envelope and a bare registry dump.
    const Value* metrics = doc->find("metrics");
    if (!metrics)
        metrics = &*doc;
    const Value* counters = metrics->find("counters");
    const Value* gauges = metrics->find("gauges");
    const Value* histograms = metrics->find("histograms");
    if (!counters || !gauges || !histograms) {
        std::fprintf(stderr, "adtop: '%s' is not a metrics snapshot\n",
                     path.c_str());
        return 1;
    }

    const Value* seq = doc->find("seq");
    const Value* nowMs = doc->find("now_ms");
    std::printf("adtop: %s", path.c_str());
    if (seq && seq->isNumber() && nowMs && nowMs->isNumber())
        std::printf("  (snapshot %ld at %.1f ms)",
                    static_cast<long>(seq->asNumber()),
                    nowMs->asNumber());
    std::printf("\n");

    std::map<int, StreamRow> rows;
    std::string base;
    int id = 0;
    for (const auto& [key, v] : counters->asObject()) {
        if (!splitStreamLabel(key, &base, &id) || !v.isNumber())
            continue;
        StreamRow& r = rows[id];
        r.any = true;
        const std::string f = suffixOf(base);
        if (f == "frames_arrived")
            r.arrived = v.asNumber();
        else if (f == "frames_admitted")
            r.admitted = v.asNumber();
        else if (f == "frames_shed")
            r.shed = v.asNumber();
        else if (f == "deadline_misses")
            r.misses = v.asNumber();
    }
    for (const auto& [key, v] : gauges->asObject()) {
        if (!splitStreamLabel(key, &base, &id) || !v.isNumber())
            continue;
        StreamRow& r = rows[id];
        r.any = true;
        const std::string f = suffixOf(base);
        if (f == "slo.p50_ms")
            r.p50 = v.asNumber();
        else if (f == "slo.p99_ms")
            r.p99 = v.asNumber();
        else if (f == "slo.p999_ms")
            r.p999 = v.asNumber();
        else if (f == "slo.burn_rate")
            r.burn = v.asNumber();
        else if (f == "slo.goodput_ratio")
            r.goodput = v.asNumber();
        else if (f == "slack_ms")
            r.slack = v.asNumber();
    }

    if (!rows.empty()) {
        std::printf("%-7s %8s %8s %6s %6s %8s %8s %8s %6s %6s %7s\n",
                    "stream", "arrived", "admitted", "shed", "miss",
                    "p50ms", "p99ms", "p99.9ms", "burn", "good",
                    "slack");
        for (const auto& [sid, r] : rows) {
            if (!r.any)
                continue;
            std::printf("%-7d %8.0f %8.0f %6.0f %6.0f %8.2f %8.2f "
                        "%8.2f %6.2f %6.2f %7.1f\n",
                        sid, r.arrived, r.admitted, r.shed, r.misses,
                        r.p50, r.p99, r.p999, r.burn, r.goodput,
                        r.slack);
        }
    }

    // Stage table: pipeline latency histograms plus perf samples.
    bool header = false;
    for (const auto& [key, v] : histograms->asObject()) {
        const bool pipelineStage =
            key.rfind("pipeline.", 0) == 0 &&
            key.size() > 3 && key.compare(key.size() - 3, 3, "_ms") == 0;
        const bool perfClock =
            key.rfind("perf.", 0) == 0 &&
            key.size() > 14 &&
            key.compare(key.size() - 14, 14, ".task_clock_ms") == 0;
        if ((!pipelineStage && !perfClock) || !v.isObject())
            continue;
        if (!header) {
            std::printf("%-28s %8s %8s %8s %8s %8s\n", "stage",
                        "count", "mean", "p50", "p99", "worst");
            header = true;
        }
        std::printf("%-28s %8.0f %8.3f %8.3f %8.3f %8.3f\n",
                    key.c_str(), histField(v, "count"),
                    histField(v, "mean"), histField(v, "p50"),
                    histField(v, "p99"), histField(v, "worst"));
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string path;
    bool follow = false;
    long intervalMs = 1000;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--follow")
            follow = true;
        else if (arg == "--once")
            follow = false;
        else if (arg.rfind("--interval-ms=", 0) == 0)
            intervalMs = std::strtol(arg.c_str() + 14, nullptr, 10);
        else if (path.empty())
            path = arg;
        else {
            std::fprintf(stderr, "adtop: unexpected argument '%s'\n",
                         arg.c_str());
            return 1;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr,
                     "usage: adtop <metrics.json> [--once] [--follow] "
                     "[--interval-ms=N]\n");
        return 1;
    }
    if (intervalMs < 1)
        intervalMs = 1;

    while (true) {
        if (follow)
            std::printf("\033[2J\033[H"); // clear + home.
        const int status = render(path);
        if (!follow)
            return status;
        std::fflush(stdout);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(intervalMs));
    }
}
