/**
 * @file
 * admap -- prior-map utility. Builds maps by survey-driving a
 * synthetic scenario, inspects their storage characteristics (the
 * Section 2.4.3 constraint), shards them into on-disk tile stores and
 * answers radius queries.
 *
 * Usage:
 *   admap --cmd=build --scenario=highway --out=road.adm [--seed=1]
 *         [--lane=1] [--length=600]
 *   admap --cmd=info --map=road.adm
 *   admap --cmd=tile --map=road.adm --dir=tiles [--tile-size=50]
 *   admap --cmd=query --map=road.adm --x=100 --y=5 --radius=30
 */

#include <cstdio>
#include <fstream>

#include "common/config.hh"
#include "common/logging.hh"
#include "sensors/scenario.hh"
#include "slam/mapping.hh"
#include "slam/tiled_store.hh"
#include "vehicle/storage.hh"

namespace {

using namespace ad;

slam::PriorMap
loadMap(const Config& cfg)
{
    const std::string path = cfg.getString("map");
    if (path.empty())
        fatal("--map=<file> is required");
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open map file '", path, "'");
    return slam::PriorMap::load(is);
}

int
cmdBuild(const Config& cfg)
{
    const std::string out = cfg.getString("out");
    if (out.empty())
        fatal("--out=<file> is required");
    Rng rng(cfg.getInt("seed", 1));
    sensors::ScenarioParams sp;
    sp.roadLength = cfg.getDouble("length", 600.0);
    const std::string name = cfg.getString("scenario", "highway");
    const sensors::Scenario scenario =
        name == "urban" ? sensors::makeUrbanScenario(rng, sp)
                        : sensors::makeHighwayScenario(rng, sp);
    sensors::Camera camera(sensors::Resolution::HHD);

    std::printf("surveying %s scenario (%.0f m road)...\n",
                name.c_str(), sp.roadLength);
    const slam::PriorMap map = slam::buildPriorMap(
        scenario.world, camera, cfg.getInt("lane", 1));

    std::ofstream os(out, std::ios::binary);
    if (!os)
        fatal("cannot write '", out, "'");
    map.save(os);
    std::printf("wrote %zu map points (%.1f KB) to %s\n", map.size(),
                map.storageBytes() / 1e3, out.c_str());
    return 0;
}

int
cmdInfo(const Config& cfg)
{
    const slam::PriorMap map = loadMap(cfg);
    int elevated = 0;
    double minX = 1e18;
    double maxX = -1e18;
    for (const auto& p : map.points()) {
        elevated += p.height > 0.3f;
        minX = std::min(minX, p.pos.x);
        maxX = std::max(maxX, p.pos.x);
    }
    const double extentKm = (maxX - minX) / 1e3;
    const double bytesPerKm =
        extentKm > 0 ? map.storageBytes() / extentKm : 0;

    std::printf("map points        %zu\n", map.size());
    std::printf("serialized size   %.1f KB\n",
                map.storageBytes() / 1e3);
    std::printf("x extent          %.2f km\n", extentKm);
    std::printf("density           %.1f points/m, %.1f KB/km\n",
                map.pointsPerMeter(), bytesPerKm / 1e3);
    std::printf("elevated points   %.1f%% (landmark boards)\n",
                100.0 * elevated / std::max<std::size_t>(1, map.size()));

    vehicle::MapStorageModel storage;
    std::printf("US extrapolation  %.2f TB at this density (paper's "
                "dense prior maps: 41 TB,\n                  %.0fx "
                "denser than sparse ORB)\n",
                storage.usMapTb(bytesPerKm),
                storage.densityRatioVsPaper(std::max(1.0, bytesPerKm)));
    return 0;
}

int
cmdTile(const Config& cfg)
{
    const slam::PriorMap map = loadMap(cfg);
    const std::string dir = cfg.getString("dir");
    if (dir.empty())
        fatal("--dir=<directory> is required");
    slam::TiledStoreParams params;
    params.tileSize = cfg.getDouble("tile-size", 50.0);
    slam::TiledMapStore store(dir, params);
    store.build(map);
    std::printf("sharded %zu points into %llu tiles (%.1f KB on disk) "
                "under %s\n", map.size(),
                static_cast<unsigned long long>(
                    store.stats().tilesOnDisk),
                store.stats().bytesOnDisk / 1e3, dir.c_str());
    return 0;
}

int
cmdQuery(const Config& cfg)
{
    const slam::PriorMap map = loadMap(cfg);
    const double x = cfg.getDouble("x", 0);
    const double y = cfg.getDouble("y", 0);
    const double radius = cfg.getDouble("radius", 30.0);
    const auto hits = map.queryRadius({x, y}, radius);
    std::printf("%zu map points within %.1f m of (%.1f, %.1f)\n",
                hits.size(), radius, x, y);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ad;
    const Config cfg = Config::fromArgs(argc, argv);
    const std::string cmd = cfg.getString("cmd");
    if (cmd == "build")
        return cmdBuild(cfg);
    if (cmd == "info")
        return cmdInfo(cfg);
    if (cmd == "tile")
        return cmdTile(cfg);
    if (cmd == "query")
        return cmdQuery(cfg);
    fatal("unknown --cmd '", cmd,
          "' (expected build, info, tile or query)");
}
