/**
 * @file
 * adserve -- multi-stream serving-layer runner. Plays N vehicle
 * streams through the ad_serve stack (bounded ingestion queues,
 * deadline-aware admission control, cross-stream batched inference)
 * and reports per-run serving outcomes: admitted-stream latency
 * quantiles, goodput, shed rate, batching efficiency and governor
 * mode residency.
 *
 * Usage:
 *   adserve [--streams=8] [--frames=200] [--period-ms=100]
 *           [--deadline-ms=100] [--queue-depth=1]
 *           [--batch-max=8] [--window-ms=6] [--admission=1]
 *           [--stagger=1] [--seed=29]
 *           [--engine.fixed-ms=8] [--engine.marginal-ms=9]
 *           [--measured] [--det-input=64] [--det-width=0.05]
 *           [--nn.threads=0] [--nn.precision=fp32|int8] [--nn.fuse=1]
 *           [--serve-json=out.json] [--summary]
 *           [--metrics] [--trace <file>] [--metrics-json=live.json]
 *           [--flight-dump[=file]] [--slo.window=2048]
 *           [--slo.target-miss-rate=1e-4]
 *   adserve --check=out.json
 *
 * Every run keeps per-stream SLO accounts (rolling-window
 * p50/p99/p99.9, miss-budget burn rate, goodput ratio) that land in
 * the JSON report's "slo" array, the per-stream metric gauges and
 * the admission controller's slack estimate. The flight recorder
 * keeps one bounded ring per stream and dumps a post-mortem on
 * deadline miss or SAFE_STOP (see docs/TRACING.md).
 *
 * The default engine is the seeded cost model (bit-reproducible,
 * sweeps in milliseconds). --measured swaps in NnBatchEngine: real
 * Network::forwardBatch calls over the shared ThreadPool, timed with
 * a wall clock -- the serving policies under genuine multithreaded
 * kernels. --nn.precision=int8 additionally lowers the measured
 * network to the quantized kernel path (nn/quant.hh) after a seeded
 * calibration pass -- the serving-layer configuration the
 * bench_ext_quant_accuracy goodput comparison runs.
 *
 * --serve-json writes a machine-readable run report; --check parses
 * one back (obs/json.hh), validates its structure and the frame
 * conservation invariant, and exits nonzero on any violation. The
 * adserve smoke fixture in tools/CMakeLists.txt runs exactly that
 * pair.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "nn/fusion.hh"
#include "nn/kernel_context.hh"
#include "nn/models.hh"
#include "nn/quant.hh"
#include "nn/tensor.hh"
#include "obs/json.hh"
#include "obs/obs.hh"
#include "serve/serve.hh"

namespace {

using namespace ad;

std::vector<std::string>
knownKeys()
{
    std::vector<std::string> keys = {
        "streams",     "frames",       "period-ms", "deadline-ms",
        "queue-depth", "batch-max",    "window-ms", "admission",
        "stagger",     "seed",         "measured",  "det-input",
        "det-width",   "nn.threads",   "nn.precision", "nn.fuse",
        "serve-json",  "summary",
        "check",       "engine.fixed-ms", "engine.marginal-ms",
        "engine.jitter", "engine.spike-p",
        "slo.window",  "slo.target-miss-rate"};
    for (const auto& k : obs::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k : pipeline::GovernorParams::knownConfigKeys())
        keys.push_back(k);
    return keys;
}

void
writeReport(const std::string& path, const serve::ServeParams& sp,
            std::int64_t framesPerStream, const char* engine,
            const serve::ServeReport& r)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write '", path, "'");
    const auto& q = r.admittedLatency;
    out << "{\n"
        << "  \"streams\": " << sp.streams << ",\n"
        << "  \"frames_per_stream\": " << framesPerStream << ",\n"
        << "  \"engine\": \"" << engine << "\",\n"
        << "  \"batch_max\": " << sp.batch.maxBatch << ",\n"
        << "  \"window_ms\": " << sp.batch.maxWaitMs << ",\n"
        << "  \"admission\": " << (sp.admission.enabled ? 1 : 0)
        << ",\n"
        << "  \"arrived\": " << r.framesArrived << ",\n"
        << "  \"admitted\": " << r.framesAdmitted << ",\n"
        << "  \"degraded\": " << r.framesDegraded << ",\n"
        << "  \"coasted\": " << r.framesCoasted << ",\n"
        << "  \"shed\": " << r.framesShed << ",\n"
        << "  \"deadline_misses\": " << r.deadlineMisses << ",\n"
        << "  \"p50_ms\": " << q.p50 << ",\n"
        << "  \"p99_ms\": " << q.p99 << ",\n"
        << "  \"p9999_ms\": " << q.p9999 << ",\n"
        << "  \"worst_ms\": " << q.worst << ",\n"
        << "  \"goodput_fps\": " << r.goodputFps << ",\n"
        << "  \"total_goodput_fps\": " << r.totalGoodputFps << ",\n"
        << "  \"shed_rate\": " << r.shedRate << ",\n"
        << "  \"batches\": " << r.batches << ",\n"
        << "  \"mean_batch_size\": " << r.meanBatchSize << ",\n"
        << "  \"mean_batch_wait_ms\": " << r.meanBatchWaitMs << ",\n"
        << "  \"pressure_escalations\": " << r.pressureEscalations
        << ",\n"
        << "  \"duration_ms\": " << r.durationMs << ",\n"
        << "  \"slo\": [";
    for (std::size_t i = 0; i < r.streamSlo.size(); ++i) {
        const auto& s = r.streamSlo[i];
        out << (i ? "," : "") << "\n    {\"stream\": " << i
            << ", \"window\": " << s.window
            << ", \"p50_ms\": " << s.p50Ms
            << ", \"p99_ms\": " << s.p99Ms
            << ", \"p999_ms\": " << s.p999Ms
            << ", \"miss_rate\": " << s.missRate
            << ", \"burn_rate\": " << s.burnRate
            << ", \"goodput_ratio\": " << s.goodputRatio
            << ", \"misses\": " << s.misses
            << ", \"total\": " << s.total << "}";
    }
    out << "\n  ]\n"
        << "}\n";
    std::fprintf(stderr, "serve report: %s\n", path.c_str());
}

/** Validate a --serve-json report; returns the process exit code. */
int
checkReport(const std::string& path)
{
    std::string err;
    const auto doc = obs::json::parseFile(path, &err);
    if (!doc) {
        std::fprintf(stderr, "adserve --check: %s: %s\n", path.c_str(),
                     err.c_str());
        return 1;
    }
    if (!doc->isObject()) {
        std::fprintf(stderr, "adserve --check: %s: not an object\n",
                     path.c_str());
        return 1;
    }
    int failures = 0;
    auto number = [&](const char* key) -> double {
        const auto* v = doc->find(key);
        if (!v || !v->isNumber()) {
            std::fprintf(stderr,
                         "adserve --check: missing numeric \"%s\"\n",
                         key);
            ++failures;
            return 0.0;
        }
        return v->asNumber();
    };
    const double streams = number("streams");
    const double frames = number("frames_per_stream");
    const double arrived = number("arrived");
    const double admitted = number("admitted");
    const double coasted = number("coasted");
    const double shed = number("shed");
    number("p9999_ms");
    number("goodput_fps");
    number("shed_rate");
    if (failures)
        return 1;
    if (arrived != streams * frames) {
        std::fprintf(stderr,
                     "adserve --check: arrived %.0f != streams x "
                     "frames %.0f\n",
                     arrived, streams * frames);
        ++failures;
    }
    if (admitted + coasted + shed != arrived) {
        std::fprintf(stderr,
                     "adserve --check: conservation violated: "
                     "admitted %.0f + coasted %.0f + shed %.0f != "
                     "arrived %.0f\n",
                     admitted, coasted, shed, arrived);
        ++failures;
    }
    const auto* slo = doc->find("slo");
    if (!slo || !slo->isArray()) {
        std::fprintf(stderr,
                     "adserve --check: missing \"slo\" array\n");
        ++failures;
    } else {
        if (static_cast<double>(slo->asArray().size()) != streams) {
            std::fprintf(stderr,
                         "adserve --check: slo has %zu entries, "
                         "expected %.0f\n",
                         slo->asArray().size(), streams);
            ++failures;
        }
        static const char* kSloFields[] = {
            "stream",    "window",       "p50_ms", "p99_ms",
            "p999_ms",   "miss_rate",    "burn_rate",
            "goodput_ratio", "misses",   "total"};
        for (std::size_t i = 0; i < slo->asArray().size(); ++i) {
            const auto& entry = slo->asArray()[i];
            for (const char* field : kSloFields) {
                const auto* v =
                    entry.isObject() ? entry.find(field) : nullptr;
                if (!v || !v->isNumber()) {
                    std::fprintf(stderr,
                                 "adserve --check: slo[%zu] lacks "
                                 "numeric \"%s\"\n",
                                 i, field);
                    ++failures;
                }
            }
            if (!entry.isObject())
                continue;
            const auto* misses = entry.find("misses");
            const auto* total = entry.find("total");
            if (misses && total && misses->isNumber() &&
                total->isNumber() &&
                misses->asNumber() > total->asNumber()) {
                std::fprintf(stderr,
                             "adserve --check: slo[%zu] misses "
                             "exceed total\n",
                             i);
                ++failures;
            }
        }
    }
    if (failures)
        return 1;
    std::fprintf(stderr, "adserve --check: %s OK\n", path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ad;
    const Config cfg = Config::fromArgs(argc, argv);
    cfg.warnUnknownKeys(knownKeys());

    const std::string checkPath = cfg.getString("check");
    if (!checkPath.empty())
        return checkReport(checkPath);

    const obs::ObsOptions obsOpt = obs::setupFromConfig(cfg);
    const std::int64_t frames = cfg.getInt("frames", 200);

    serve::ServeParams sp;
    sp.streams = cfg.getInt("streams", 8);
    sp.stream.framePeriodMs = cfg.getDouble("period-ms", 100.0);
    sp.stream.deadlineMs = cfg.getDouble("deadline-ms", 100.0);
    sp.stream.queueDepth = cfg.getInt("queue-depth", 1);
    sp.batch.maxBatch = cfg.getInt("batch-max", 8);
    sp.batch.maxWaitMs = cfg.getDouble("window-ms", 6.0);
    sp.admission.enabled = cfg.getBool("admission", true);
    sp.stagger = cfg.getBool("stagger", true);
    sp.seed = static_cast<std::uint64_t>(cfg.getInt("seed", 29));
    sp.governor =
        pipeline::GovernorParams::fromConfig(cfg, sp.stream.deadlineMs);
    // The per-stream governors are the admission controller's
    // degradation actuators; they are always on in the server.
    sp.governor.enabled = true;
    sp.governor.budgetMs = sp.stream.deadlineMs;
    sp.slo.windowFrames = cfg.getInt("slo.window", sp.slo.windowFrames);
    sp.slo.targetMissRate =
        cfg.getDouble("slo.target-miss-rate", sp.slo.targetMissRate);

    serve::ServeReport report;
    const char* engineName = "modeled";
    if (cfg.getBool("measured", false)) {
        engineName = "measured";
        const int inputSize = cfg.getInt("det-input", 64);
        const double width = cfg.getDouble("det-width", 0.05);
        nn::Network net = nn::buildNetwork(
            nn::detectorSpec(inputSize, width));
        Rng weightRng(7);
        nn::initDetectorWeights(net, weightRng);
        if (nn::parsePrecision(cfg.getString("nn.precision", "fp32")) ==
            nn::Precision::Int8) {
            engineName = "measured-int8";
            // Seeded calibration at the same input distribution the
            // engine will serve (uniform [0, 1] frames).
            std::vector<nn::Tensor> samples;
            Rng calRng(sp.seed ^ 0xAD0C0DE5ULL);
            for (int s = 0; s < 2; ++s) {
                nn::Tensor t(1, inputSize, inputSize);
                for (std::size_t i = 0; i < t.size(); ++i)
                    t.data()[i] =
                        static_cast<float>(calRng.uniform());
                samples.push_back(std::move(t));
            }
            nn::quantizeNetwork(net, samples);
        }
        // Graph lowering (the `nn.fuse` knob). The batched engine
        // runs forwardBatch, which has no single-caller arena, so
        // there is no nn.arena knob here -- fusion alone applies.
        if (cfg.getBool("nn.fuse", true))
            nn::lowerNetwork(net, {1, inputSize, inputSize});
        // One distinct input per stream so batching order is visible
        // to the checksum.
        std::vector<nn::Tensor> inputs;
        Rng inputRng(sp.seed);
        for (int s = 0; s < sp.streams; ++s) {
            nn::Tensor t(1, inputSize, inputSize);
            for (std::size_t i = 0; i < t.size(); ++i)
                t.data()[i] =
                    static_cast<float>(inputRng.uniform(0.0, 1.0));
            inputs.push_back(std::move(t));
        }
        serve::NnBatchEngine engine(
            net, std::move(inputs),
            nn::resolveKernelThreads(cfg.getInt("nn.threads", 0)));
        serve::MultiStreamServer server(sp, engine);
        report = server.run(frames);
        std::fprintf(stderr, "output checksum: %a\n",
                     engine.outputChecksum());
    } else {
        serve::ModeledEngineParams ep;
        ep.fixedMs = cfg.getDouble("engine.fixed-ms", ep.fixedMs);
        ep.marginalMs =
            cfg.getDouble("engine.marginal-ms", ep.marginalMs);
        ep.jitterSigma = cfg.getDouble("engine.jitter", ep.jitterSigma);
        ep.spikeP = cfg.getDouble("engine.spike-p", ep.spikeP);
        ep.seed = sp.seed * 2654435761u + 1;
        serve::ModeledBatchEngine engine(ep);
        serve::MultiStreamServer server(sp, engine);
        report = server.run(frames);
    }

    if (cfg.getBool("summary", false) || obsOpt.any())
        std::fprintf(stderr, "%s", report.toString().c_str());

    const std::string jsonPath = cfg.getString("serve-json");
    if (!jsonPath.empty())
        writeReport(jsonPath, sp, frames, engineName, report);

    // The serving run is virtual-clocked, so periodic snapshots make
    // no sense; publish one end-of-run snapshot stamped with the
    // virtual duration instead.
    if (!obsOpt.metricsJsonPath.empty()) {
        obs::MetricsSnapshotter snapshotter(
            obs::metrics(), obs::SnapshotOptions{
                                obsOpt.metricsJsonPath,
                                obsOpt.metricsJsonIntervalMs});
        if (snapshotter.writeNow(report.durationMs))
            std::fprintf(stderr, "metrics-json: wrote snapshot to %s\n",
                         snapshotter.path().c_str());
    }

    obs::finish(obsOpt);
    return 0;
}
