/**
 * @file
 * admapserve -- multi-vehicle tiled map-service runner. Plays the
 * fleet loadgen's arrival tape through the map-service co-sim
 * (mapserve/sim.hh): every vehicle's localization frames page prior-
 * map tiles from the shared TileServer (bounded per-vehicle queues,
 * cross-vehicle batching, deadline-aware admission, server-side LRU
 * cache), with pose-driven prefetch, compressed tile transport and
 * crowd-sourced delta updates under illumination drift.
 *
 * Usage:
 *   admapserve [--fleet.loadgen.streams=64]
 *              [--fleet.loadgen.horizon-ms=10000]
 *              [--mapserve.client.prefetch=1]
 *              [--mapserve.client.horizon-ms=3000]
 *              [--mapserve.server.cache-tiles=64]
 *              [--mapserve.drift-per-min=0.2] [...]
 *              [--map-json=out.json] [--summary] [--metrics]
 *   admapserve --check=out.json
 *
 * --map-json writes a machine-readable report; --check parses one
 * back and validates structure plus the conservation invariants
 * (frames = warm + stalled + coasted; every submitted request is
 * served, shed or evicted; cache hits + misses = served; merged
 * updates never exceed pushed ones) and exits nonzero on any
 * violation. The admapserve smoke fixture runs exactly that pair.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "mapserve/sim.hh"
#include "obs/json.hh"
#include "obs/obs.hh"

namespace {

using namespace ad;

std::vector<std::string>
knownKeys()
{
    std::vector<std::string> keys = {"map-json", "summary", "check"};
    for (const auto& k : mapserve::MapServeSimParams::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k : mapserve::TileServerParams::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k : mapserve::MapClientParams::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k : fleet::LoadGenParams::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k : obs::knownConfigKeys())
        keys.push_back(k);
    return keys;
}

/** FNV-1a over the version-stamp log (determinism fingerprint). */
std::uint64_t
logFnv(const std::string& s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

void
writeReport(const std::string& path, const mapserve::MapServeReport& r)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write '", path, "'");
    out << "{\n"
        << "  \"vehicles\": " << r.vehicles << ",\n"
        << "  \"frames\": " << r.frames << ",\n"
        << "  \"warm\": " << r.framesWarm << ",\n"
        << "  \"stalled\": " << r.framesStalled << ",\n"
        << "  \"coasted\": " << r.framesCoasted << ",\n"
        << "  \"steady_stalls\": " << r.steadyStalls << ",\n"
        << "  \"cold_starts\": " << r.coldStarts << ",\n"
        << "  \"prefetch_issued\": " << r.prefetchIssued << ",\n"
        << "  \"prefetch_shed\": " << r.prefetchShed << ",\n"
        << "  \"prefetch_late\": " << r.prefetchLate << ",\n"
        << "  \"stale_reads\": " << r.staleReads << ",\n"
        << "  \"stale_refreshes\": " << r.staleRefreshes << ",\n"
        << "  \"updates_pushed\": " << r.updatesPushed << ",\n"
        << "  \"updates_merged\": " << r.server.updatesMerged << ",\n"
        << "  \"merge_epochs\": " << r.server.mergeEpochs << ",\n"
        << "  \"tiles_merged\": " << r.server.tilesMerged << ",\n"
        << "  \"submitted\": " << r.server.submitted << ",\n"
        << "  \"served\": " << r.server.served << ",\n"
        << "  \"admission_shed\": " << r.server.admissionShed << ",\n"
        << "  \"queue_evictions\": " << r.server.queueEvictions
        << ",\n"
        << "  \"batches\": " << r.server.batches << ",\n"
        << "  \"cache_hits\": " << r.server.cacheHits << ",\n"
        << "  \"cache_misses\": " << r.server.cacheMisses << ",\n"
        << "  \"bytes_served\": " << r.server.bytesServed << ",\n"
        << "  \"raw_bytes\": " << r.server.rawBytes << ",\n"
        << "  \"compression_ratio\": " << r.compressionRatio << ",\n"
        << "  \"hit_rate\": " << r.prefetchHitRate << ",\n"
        << "  \"fetch_p50_ms\": " << r.fetchLatency.p50 << ",\n"
        << "  \"fetch_p99_ms\": " << r.fetchLatency.p99 << ",\n"
        << "  \"demand_p99_ms\": " << r.demandLatency.p99 << ",\n"
        << "  \"stall_p99_ms\": " << r.stallMs.p99 << ",\n"
        << "  \"peak_err_bits\": " << r.peakErrBits << ",\n"
        << "  \"final_err_bits\": " << r.finalErrBits << ",\n"
        << "  \"duration_ms\": " << r.durationMs << ",\n"
        << "  \"version_log_fnv\": " << logFnv(r.versionLog) << "\n"
        << "}\n";
    std::fprintf(stderr, "map report: %s\n", path.c_str());
}

/** Validate a --map-json report; returns the process exit code. */
int
checkReport(const std::string& path)
{
    std::string err;
    const auto doc = obs::json::parseFile(path, &err);
    if (!doc) {
        std::fprintf(stderr, "admapserve --check: %s: %s\n",
                     path.c_str(), err.c_str());
        return 1;
    }
    if (!doc->isObject()) {
        std::fprintf(stderr, "admapserve --check: %s: not an object\n",
                     path.c_str());
        return 1;
    }
    int failures = 0;
    auto number = [&](const char* key) -> double {
        const auto* v = doc->find(key);
        if (!v || !v->isNumber()) {
            std::fprintf(
                stderr,
                "admapserve --check: missing numeric \"%s\"\n", key);
            ++failures;
            return 0.0;
        }
        return v->asNumber();
    };
    const double vehicles = number("vehicles");
    const double frames = number("frames");
    const double warm = number("warm");
    const double stalled = number("stalled");
    const double coasted = number("coasted");
    const double steady = number("steady_stalls");
    const double cold = number("cold_starts");
    const double submitted = number("submitted");
    const double served = number("served");
    const double admissionShed = number("admission_shed");
    const double evicted = number("queue_evictions");
    const double cacheHits = number("cache_hits");
    const double cacheMisses = number("cache_misses");
    const double bytes = number("bytes_served");
    const double raw = number("raw_bytes");
    const double pushed = number("updates_pushed");
    const double merged = number("updates_merged");
    number("batches");
    number("fetch_p99_ms");
    number("hit_rate");
    number("version_log_fnv");
    if (failures)
        return 1;
    if (vehicles < 1 || frames < 1) {
        std::fprintf(stderr,
                     "admapserve --check: implausible vehicle/frame "
                     "counts\n");
        ++failures;
    }
    if (warm + stalled + coasted != frames) {
        std::fprintf(stderr,
                     "admapserve --check: frame conservation "
                     "violated: warm %.0f + stalled %.0f + coasted "
                     "%.0f != frames %.0f\n",
                     warm, stalled, coasted, frames);
        ++failures;
    }
    if (steady + cold != stalled) {
        std::fprintf(stderr,
                     "admapserve --check: stall split violated: "
                     "steady %.0f + cold %.0f != stalled %.0f\n",
                     steady, cold, stalled);
        ++failures;
    }
    if (served + admissionShed + evicted != submitted) {
        std::fprintf(stderr,
                     "admapserve --check: request conservation "
                     "violated: served %.0f + shed %.0f + evicted "
                     "%.0f != submitted %.0f\n",
                     served, admissionShed, evicted, submitted);
        ++failures;
    }
    if (cacheHits + cacheMisses != served) {
        std::fprintf(stderr,
                     "admapserve --check: cache accounting violated: "
                     "%.0f + %.0f != served %.0f\n",
                     cacheHits, cacheMisses, served);
        ++failures;
    }
    if (served > 0 && (bytes <= 0 || raw < bytes)) {
        std::fprintf(stderr,
                     "admapserve --check: compression accounting "
                     "violated: bytes %.0f raw %.0f\n",
                     bytes, raw);
        ++failures;
    }
    if (merged > pushed) {
        std::fprintf(stderr,
                     "admapserve --check: merged %.0f > pushed %.0f\n",
                     merged, pushed);
        ++failures;
    }
    if (failures)
        return 1;
    std::fprintf(stderr, "admapserve --check: %s OK\n", path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ad;
    const Config cfg = Config::fromArgs(argc, argv);
    cfg.warnUnknownKeys(knownKeys());

    const std::string checkPath = cfg.getString("check");
    if (!checkPath.empty())
        return checkReport(checkPath);

    const obs::ObsOptions obsOpt = obs::setupFromConfig(cfg);

    const fleet::LoadGenParams lp =
        fleet::LoadGenParams::fromConfig(cfg);
    const fleet::ScenarioLoadGen load(lp);

    const mapserve::MapServeSimParams sp =
        mapserve::MapServeSimParams::fromConfig(cfg);

    mapserve::MapServeSim sim(sp, load);
    const mapserve::MapServeReport report = sim.run();

    if (cfg.getBool("summary", false) || obsOpt.any())
        std::fprintf(stderr, "%s", report.toString().c_str());

    const std::string jsonPath = cfg.getString("map-json");
    if (!jsonPath.empty())
        writeReport(jsonPath, report);

    if (!obsOpt.metricsJsonPath.empty()) {
        obs::MetricsSnapshotter snapshotter(
            obs::metrics(), obs::SnapshotOptions{
                                obsOpt.metricsJsonPath,
                                obsOpt.metricsJsonIntervalMs});
        if (snapshotter.writeNow(report.durationMs))
            std::fprintf(stderr, "metrics: %s\n",
                         obsOpt.metricsJsonPath.c_str());
    }
    return 0;
}
