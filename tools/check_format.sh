#!/usr/bin/env bash
# Check-only formatting gate: runs clang-format (via git-clang-format)
# over the C++ lines the current branch changes relative to a merge
# base and fails if they drift from .clang-format. Never rewrites
# anything, and never judges untouched history -- the tree predates
# the formatter, so only new work is held to it.
#
# Usage: tools/check_format.sh [BASE]
#   BASE defaults to origin/main (falls back to main, then HEAD~1).
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
    echo "check_format: clang-format not found; skipping" >&2
    exit 0
fi

base="${1:-}"
if [ -z "$base" ]; then
    for candidate in origin/main main "HEAD~1"; do
        if git rev-parse --verify --quiet "$candidate" >/dev/null; then
            base="$candidate"
            break
        fi
    done
fi
merge_base=$(git merge-base "$base" HEAD 2>/dev/null || echo "$base")

changed=$(git diff --name-only --diff-filter=ACMR "$merge_base" -- \
    '*.cc' '*.hh')
if [ -z "$changed" ]; then
    echo "check_format: no C++ changes vs $merge_base"
    exit 0
fi

# git-clang-format scopes the check to the changed lines of the
# changed files; plain clang-format --dry-run would judge whole files
# (including untouched legacy code) and is kept as the fallback for
# environments that ship clang-format without the git helper.
if command -v git-clang-format >/dev/null 2>&1; then
    out=$(git clang-format --diff "$merge_base" -- $changed || true)
    if [ -z "$out" ] || grep -qE \
        "no modified files to format|did not modify" <<<"$out"; then
        echo "check_format: OK ($(echo "$changed" | wc -l) files vs" \
            "$merge_base)"
        exit 0
    fi
    echo "$out"
    echo "check_format: formatting drift on changed lines (see diff" \
        "above); run 'git clang-format $merge_base' to fix" >&2
    exit 1
fi

status=0
for f in $changed; do
    if ! clang-format --dry-run -Werror "$f" 2>/dev/null; then
        echo "check_format: $f differs from .clang-format" >&2
        status=1
    fi
done
[ $status -eq 0 ] && echo "check_format: OK (whole-file fallback)"
exit $status
