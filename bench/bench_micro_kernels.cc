/**
 * @file
 * Microbenchmarks (google-benchmark) for the hot kernels underneath
 * the pipeline engines: GEMM and convolution (the DNN engine), oFAST
 * detection and rBRIEF description (feature extraction), descriptor
 * matching, NMS, and the two motion planners. These quantify where
 * measured-mode cycles go and guard against performance regressions.
 *
 * On top of the google-benchmark suite, main() runs a fixed GEMM
 * scaling sweep (seed blocked kernel vs packed kernel at 1/2/4/8
 * threads) and records it to BENCH_gemm.json (override the location
 * with --gemm-json=PATH), the artifact backing the
 * parallel-kernel-layer speedup claim in DESIGN.md. The sweep also
 * times the int8 GEMM (nn/gemm_int8.hh) at the same shape and thread
 * counts and records the int8-vs-fp32-packed speedup alongside. The
 * resolved output path is printed when the sweep completes.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>

#include "common/random.hh"
#include "common/time.hh"
#include "detect/yolo.hh"
#include "nn/gemm.hh"
#include "nn/gemm_int8.hh"
#include "nn/layers.hh"
#include "nn/models.hh"
#include "nn/quant.hh"
#include "nn/sparse.hh"
#include "planning/conformal.hh"
#include "planning/lattice.hh"
#include "vision/orb.hh"
#include "vision/spatial_matcher.hh"

namespace {

using namespace ad;

void
BM_Gemm(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    std::vector<float> a(n * n);
    std::vector<float> b(n * n);
    std::vector<float> c(n * n, 0.0f);
    for (auto& v : a)
        v = static_cast<float>(rng.uniform(-1, 1));
    for (auto& v : b)
        v = static_cast<float>(rng.uniform(-1, 1));
    for (auto _ : state) {
        nn::gemm(n, n, n, a.data(), b.data(), c.data());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void
BM_GemmBlockedReference(benchmark::State& state)
{
    // The seed (pre-packing) kernel, kept as the speedup baseline.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    std::vector<float> a(n * n);
    std::vector<float> b(n * n);
    std::vector<float> c(n * n, 0.0f);
    for (auto& v : a)
        v = static_cast<float>(rng.uniform(-1, 1));
    for (auto& v : b)
        v = static_cast<float>(rng.uniform(-1, 1));
    for (auto _ : state) {
        nn::gemmBlockedReference(n, n, n, a.data(), b.data(), c.data());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBlockedReference)->Arg(64)->Arg(128)->Arg(256);

void
BM_GemmParallel(benchmark::State& state)
{
    // The packed kernel sharded over the pool: range(0) = matrix
    // order, range(1) = nn.threads.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const int threads = static_cast<int>(state.range(1));
    const nn::KernelContext ctx = nn::kernelContext(threads);
    Rng rng(1);
    std::vector<float> a(n * n);
    std::vector<float> b(n * n);
    std::vector<float> c(n * n, 0.0f);
    for (auto& v : a)
        v = static_cast<float>(rng.uniform(-1, 1));
    for (auto& v : b)
        v = static_cast<float>(rng.uniform(-1, 1));
    for (auto _ : state) {
        nn::gemm(n, n, n, a.data(), b.data(), c.data(), ctx);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
    state.counters["threads"] = threads;
}
BENCHMARK(BM_GemmParallel)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->Args({512, 8});

void
BM_GemmInt8(benchmark::State& state)
{
    // The quantized kernel at the fp32-packed shapes: A pre-widened
    // to int16 (the layer does this once for static weights), B int8.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    std::vector<std::int16_t> a(n * n);
    std::vector<std::int8_t> b(n * n);
    std::vector<std::int32_t> c(n * n, 0);
    for (auto& v : a)
        v = static_cast<std::int16_t>(rng.uniformInt(-127, 127));
    for (auto& v : b)
        v = static_cast<std::int8_t>(rng.uniformInt(-127, 127));
    for (auto _ : state) {
        nn::gemmInt8(n, n, n, a.data(), b.data(), c.data());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
    state.SetLabel(nn::int8KernelIsa());
}
BENCHMARK(BM_GemmInt8)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void
BM_QuantConv2D(benchmark::State& state)
{
    // fp32 Conv2D vs its quantized replacement at the same shape
    // (compare against BM_Conv2D at the same channel count).
    const int channels = static_cast<int>(state.range(0));
    nn::Conv2D conv("bench", channels, channels, 3, 1, 1);
    Rng rng(2);
    for (auto& w : conv.weights())
        w = static_cast<float>(rng.uniform(-0.1, 0.1));
    nn::Tensor in(channels, 56, 56);
    for (std::size_t i = 0; i < in.size(); ++i)
        in.data()[i] = static_cast<float>(rng.uniform(0, 1));
    const nn::QuantConv2D qconv(conv, nn::quantizeScale(1.0f));
    for (auto _ : state) {
        nn::Tensor out = qconv.forward(in);
        benchmark::DoNotOptimize(out.data());
    }
    const auto p = conv.profile({channels, 56, 56});
    state.SetItemsProcessed(state.iterations() * p.flops);
}
BENCHMARK(BM_QuantConv2D)->Arg(16)->Arg(64);

void
BM_Conv2D(benchmark::State& state)
{
    const int channels = static_cast<int>(state.range(0));
    nn::Conv2D conv("bench", channels, channels, 3, 1, 1);
    Rng rng(2);
    for (auto& w : conv.weights())
        w = static_cast<float>(rng.uniform(-0.1, 0.1));
    nn::Tensor in(channels, 56, 56);
    for (auto _ : state) {
        nn::Tensor out = conv.forward(in);
        benchmark::DoNotOptimize(out.data());
    }
    const auto p = conv.profile({channels, 56, 56});
    state.SetItemsProcessed(state.iterations() * p.flops);
}
BENCHMARK(BM_Conv2D)->Arg(16)->Arg(64);

void
BM_Conv2DThenActivation(benchmark::State& state)
{
    // The unfused baseline for BM_Conv2DFusedActivation: Conv2D
    // forward materializes an intermediate, then a standalone
    // Activation layer makes a second pass over it.
    const int channels = static_cast<int>(state.range(0));
    nn::Conv2D conv("bench", channels, channels, 3, 1, 1);
    nn::Activation act("act", 0.1f);
    Rng rng(2);
    for (auto& w : conv.weights())
        w = static_cast<float>(rng.uniform(-0.1, 0.1));
    nn::Tensor in(channels, 56, 56);
    for (std::size_t i = 0; i < in.size(); ++i)
        in.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    for (auto _ : state) {
        nn::Tensor mid = conv.forward(in);
        nn::Tensor out = act.forward(mid);
        benchmark::DoNotOptimize(out.data());
    }
    const auto p = conv.profile({channels, 56, 56});
    state.SetItemsProcessed(state.iterations() * p.flops);
}
BENCHMARK(BM_Conv2DThenActivation)->Arg(16)->Arg(64);

void
BM_Conv2DFusedActivation(benchmark::State& state)
{
    // The lowering pass's fused form: LeakyReLU folded into the conv
    // epilogue, no intermediate tensor and no second memory pass.
    const int channels = static_cast<int>(state.range(0));
    nn::Conv2D conv("bench", channels, channels, 3, 1, 1);
    conv.fuseActivation(0.1f);
    Rng rng(2);
    for (auto& w : conv.weights())
        w = static_cast<float>(rng.uniform(-0.1, 0.1));
    nn::Tensor in(channels, 56, 56);
    for (std::size_t i = 0; i < in.size(); ++i)
        in.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    for (auto _ : state) {
        nn::Tensor out = conv.forward(in);
        benchmark::DoNotOptimize(out.data());
    }
    const auto p = conv.profile({channels, 56, 56});
    state.SetItemsProcessed(state.iterations() * p.flops);
}
BENCHMARK(BM_Conv2DFusedActivation)->Arg(16)->Arg(64);

void
BM_Conv1x1(benchmark::State& state)
{
    // 1x1 convolution via im2col (range(1)=0) vs the direct path
    // (range(1)=1) that feeds the input to GEMM without unfolding.
    const int channels = static_cast<int>(state.range(0));
    const bool direct = state.range(1) != 0;
    nn::Conv2D conv("bench", channels, channels, 1, 1, 0);
    conv.setDirectConv(direct);
    Rng rng(2);
    for (auto& w : conv.weights())
        w = static_cast<float>(rng.uniform(-0.1, 0.1));
    nn::Tensor in(channels, 56, 56);
    for (std::size_t i = 0; i < in.size(); ++i)
        in.data()[i] = static_cast<float>(rng.uniform(0, 1));
    for (auto _ : state) {
        nn::Tensor out = conv.forward(in);
        benchmark::DoNotOptimize(out.data());
    }
    const auto p = conv.profile({channels, 56, 56});
    state.SetItemsProcessed(state.iterations() * p.flops);
    state.SetLabel(direct ? "direct" : "im2col");
}
BENCHMARK(BM_Conv1x1)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1});

void
BM_ConvSmallSpatial(benchmark::State& state)
{
    // 3x3 convolution on a tiny spatial extent (the deep trunk of the
    // DET head, where the im2col unfold dominates the arithmetic):
    // im2col (range(1)=0) vs the scalar direct loop (range(1)=1).
    const int size = static_cast<int>(state.range(0));
    const bool direct = state.range(1) != 0;
    const int channels = 64;
    nn::Conv2D conv("bench", channels, channels, 3, 1, 1);
    conv.setDirectConv(direct);
    Rng rng(2);
    for (auto& w : conv.weights())
        w = static_cast<float>(rng.uniform(-0.1, 0.1));
    nn::Tensor in(channels, size, size);
    for (std::size_t i = 0; i < in.size(); ++i)
        in.data()[i] = static_cast<float>(rng.uniform(0, 1));
    for (auto _ : state) {
        nn::Tensor out = conv.forward(in);
        benchmark::DoNotOptimize(out.data());
    }
    const auto p = conv.profile({channels, size, size});
    state.SetItemsProcessed(state.iterations() * p.flops);
    state.SetLabel(direct ? "direct" : "im2col");
}
BENCHMARK(BM_ConvSmallSpatial)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1});

void
BM_DetectorForward(benchmark::State& state)
{
    detect::DetectorParams dp;
    dp.inputSize = static_cast<int>(state.range(0));
    dp.width = 0.25;
    detect::YoloDetector detector(dp);
    Image frame(640, 360, 80);
    frame.fillRect(BBox(280, 160, 60, 40), 230);
    for (auto _ : state) {
        auto dets = detector.detect(frame);
        benchmark::DoNotOptimize(dets.data());
    }
}
BENCHMARK(BM_DetectorForward)->Arg(128)->Arg(224);

void
BM_FastDetect(benchmark::State& state)
{
    Rng rng(3);
    Image img(static_cast<int>(state.range(0)),
              static_cast<int>(state.range(0)) * 9 / 16, 80);
    for (int y = 0; y < img.height(); ++y)
        for (int x = 0; x < img.width(); ++x)
            img.at(x, y) = static_cast<std::uint8_t>(
                80 + rng.uniformInt(-20, 20));
    vision::FastParams params;
    for (auto _ : state) {
        auto kps = vision::detectFast(img, params);
        benchmark::DoNotOptimize(kps.data());
    }
    state.SetItemsProcessed(state.iterations() * img.size());
}
BENCHMARK(BM_FastDetect)->Arg(640)->Arg(1280);

void
BM_OrbExtract(benchmark::State& state)
{
    Rng rng(4);
    Image img(640, 360, 80);
    for (int i = 0; i < 300; ++i)
        img.fillRect(BBox(rng.uniform(0, 600), rng.uniform(0, 330),
                          rng.uniform(4, 30), rng.uniform(4, 30)),
                     static_cast<std::uint8_t>(rng.uniformInt(40, 200)));
    vision::OrbExtractor orb;
    for (auto _ : state) {
        auto features = orb.extract(img);
        benchmark::DoNotOptimize(features.data());
    }
}
BENCHMARK(BM_OrbExtract);

void
BM_DescriptorMatch(benchmark::State& state)
{
    Rng rng(5);
    const auto makeDescs = [&rng](int n) {
        std::vector<vision::Descriptor> d(n);
        for (auto& desc : d)
            for (auto& word : desc.words)
                word = rng();
        return d;
    };
    const auto a = makeDescs(static_cast<int>(state.range(0)));
    const auto b = makeDescs(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto matches = vision::matchDescriptors(a, b, 80, 0.9);
        benchmark::DoNotOptimize(matches.data());
    }
    state.SetItemsProcessed(state.iterations() * a.size() * b.size());
}
BENCHMARK(BM_DescriptorMatch)->Arg(256)->Arg(1024);

void
BM_SpatialVsBruteMatch(benchmark::State& state)
{
    // The projection-guided matcher's speed advantage over brute
    // force at localization-scale candidate counts.
    Rng rng(15);
    const int n = static_cast<int>(state.range(0));
    std::vector<vision::Feature> features;
    std::vector<vision::ProjectedCandidate> candidates;
    for (int i = 0; i < n; ++i) {
        vision::Feature f;
        f.kp.x = static_cast<float>(rng.uniform(0, 1240));
        f.kp.y = static_cast<float>(rng.uniform(0, 370));
        for (auto& w : f.desc.words)
            w = rng();
        features.push_back(f);
        vision::ProjectedCandidate c;
        c.u = f.kp.x + static_cast<float>(rng.uniform(-10, 10));
        c.v = f.kp.y + static_cast<float>(rng.uniform(-10, 10));
        c.desc = f.desc;
        candidates.push_back(c);
    }
    const vision::SpatialMatcher matcher(features, 1242, 375);
    for (auto _ : state) {
        auto matches = matcher.match(candidates);
        benchmark::DoNotOptimize(matches.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SpatialVsBruteMatch)->Arg(256)->Arg(1024);

void
BM_SparseVsDenseFc(benchmark::State& state)
{
    Rng rng(16);
    nn::FullyConnected dense("fc", 2048, 1024);
    for (auto& w : dense.weights())
        w = static_cast<float>(rng.normal(0.0, 0.02));
    const float threshold = static_cast<float>(state.range(0)) / 1000.0f;
    const nn::SparseFullyConnected sparse("s", dense, threshold);
    nn::Tensor x(2048, 1, 1);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(rng.uniform(0, 1));
    for (auto _ : state) {
        nn::Tensor y = sparse.forward(x);
        benchmark::DoNotOptimize(y.data());
    }
    state.counters["density"] = sparse.density();
}
BENCHMARK(BM_SparseVsDenseFc)->Arg(0)->Arg(20)->Arg(40);

void
BM_Nms(benchmark::State& state)
{
    Rng rng(6);
    std::vector<detect::Detection> dets(state.range(0));
    for (auto& d : dets) {
        d.box = BBox(rng.uniform(0, 600), rng.uniform(0, 300), 40, 30);
        d.confidence = rng.uniform(0.1, 1.0);
    }
    for (auto _ : state) {
        auto kept = detect::nonMaxSuppression(dets, 0.5);
        benchmark::DoNotOptimize(kept.data());
    }
}
BENCHMARK(BM_Nms)->Arg(64)->Arg(512);

void
BM_ConformalPlan(benchmark::State& state)
{
    std::vector<planning::PredictedObstacle> obstacles;
    Rng rng(7);
    for (int i = 0; i < state.range(0); ++i)
        obstacles.push_back({{rng.uniform(5, 60), rng.uniform(0, 10)},
                             {rng.uniform(-5, 5), 0},
                             1.5});
    const Pose2 start(0, 5.25, 0);
    for (auto _ : state) {
        auto traj = planning::planConformal(start, 5.25, obstacles);
        benchmark::DoNotOptimize(traj.points.data());
    }
}
BENCHMARK(BM_ConformalPlan)->Arg(0)->Arg(8)->Arg(32);

void
BM_LatticePlan(benchmark::State& state)
{
    std::vector<planning::Obstacle> obstacles;
    Rng rng(8);
    for (int i = 0; i < state.range(0); ++i)
        obstacles.push_back({{rng.uniform(5, 35), rng.uniform(-15, 15)},
                             1.0});
    for (auto _ : state) {
        auto traj = planning::planLattice(Pose2(0, 0, 0), {40, 0},
                                          obstacles);
        benchmark::DoNotOptimize(traj.points.data());
    }
}
BENCHMARK(BM_LatticePlan)->Arg(0)->Arg(20);

void
runGemmScalingSweep(const char* path)
{
    constexpr std::size_t n = 512;
    constexpr int reps = 3;
    Rng rng(1);
    std::vector<float> a(n * n);
    std::vector<float> b(n * n);
    std::vector<float> c(n * n);
    for (auto& v : a)
        v = static_cast<float>(rng.uniform(-1, 1));
    for (auto& v : b)
        v = static_cast<float>(rng.uniform(-1, 1));
    std::vector<std::int16_t> qa(n * n);
    std::vector<std::int8_t> qb(n * n);
    std::vector<std::int32_t> qc(n * n);
    for (auto& v : qa)
        v = static_cast<std::int16_t>(rng.uniformInt(-127, 127));
    for (auto& v : qb)
        v = static_cast<std::int8_t>(rng.uniformInt(-127, 127));

    const auto bestOf = [&](const std::function<void()>& fn) {
        double best = 0;
        for (int r = 0; r < reps; ++r) {
            std::fill(c.begin(), c.end(), 0.0f);
            Stopwatch watch;
            fn();
            const double ms = watch.elapsedMs();
            if (r == 0 || ms < best)
                best = ms;
        }
        return best;
    };

    const double baselineMs = bestOf([&] {
        nn::gemmBlockedReference(n, n, n, a.data(), b.data(), c.data());
    });

    std::FILE* f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"kernel\": \"sgemm\",\n");
    std::fprintf(f, "  \"m\": %zu, \"n\": %zu, \"k\": %zu,\n", n, n, n);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"baseline\": \"gemmBlockedReference\",\n");
    std::fprintf(f, "  \"baseline_ms\": %.3f,\n", baselineMs);
    std::fprintf(f, "  \"results\": [\n");
    const int threadCounts[] = {1, 2, 4, 8};
    double fp32SerialMs = 0;
    bool first = true;
    for (const int threads : threadCounts) {
        const nn::KernelContext ctx = nn::kernelContext(threads);
        const double ms = bestOf([&] {
            nn::gemm(n, n, n, a.data(), b.data(), c.data(), ctx);
        });
        if (threads == 1)
            fp32SerialMs = ms;
        if (!first)
            std::fprintf(f, ",\n");
        first = false;
        std::fprintf(f,
                     "    {\"threads\": %d, \"ms\": %.3f, "
                     "\"speedup_vs_baseline\": %.2f}",
                     threads, ms, baselineMs / ms);
        std::printf("gemm %zux%zux%zu threads=%d: %.3f ms "
                    "(%.2fx vs seed kernel)\n",
                    n, n, n, threads, ms, baselineMs / ms);
    }
    std::fprintf(f, "\n  ],\n");

    // The quantized kernel at the same shape: speedups are quoted
    // against the fp32 packed serial kernel (the production fp32
    // path), not the seed baseline.
    std::fprintf(f, "  \"int8_isa\": \"%s\",\n", nn::int8KernelIsa());
    std::fprintf(f, "  \"int8_results\": [\n");
    first = true;
    for (const int threads : threadCounts) {
        const nn::KernelContext ctx = nn::kernelContext(threads);
        const double ms = bestOf([&] {
            nn::gemmInt8(n, n, n, qa.data(), qb.data(), qc.data(), ctx);
        });
        if (!first)
            std::fprintf(f, ",\n");
        first = false;
        std::fprintf(f,
                     "    {\"threads\": %d, \"ms\": %.3f, "
                     "\"speedup_vs_fp32_packed\": %.2f}",
                     threads, ms, fp32SerialMs / ms);
        std::printf("gemm-int8 %zux%zux%zu threads=%d: %.3f ms "
                    "(%.2fx vs fp32 packed serial, isa=%s)\n",
                    n, n, n, threads, ms, fp32SerialMs / ms,
                    nn::int8KernelIsa());
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    char resolved[4096];
    if (path[0] != '/' && ::realpath(path, resolved))
        std::printf("wrote gemm scaling sweep to %s\n", resolved);
    else
        std::printf("wrote gemm scaling sweep to %s\n", path);
}

} // namespace

int
main(int argc, char** argv)
{
    // --gemm-json=PATH redirects the scaling artifact away from the
    // CWD; it is ours, not google-benchmark's, so strip it from argv
    // before benchmark::Initialize sees (and rejects) it.
    std::string gemmJsonPath = "BENCH_gemm.json";
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--gemm-json=", 0) == 0)
            gemmJsonPath = arg.substr(12);
        else
            argv[kept++] = argv[i];
    }
    argc = kept;
    argv[argc] = nullptr;

    // The JSON sweep runs first so the scaling artifact is produced
    // even when --benchmark_filter excludes the GEMM benches.
    runGemmScalingSweep(gemmJsonPath.c_str());
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
