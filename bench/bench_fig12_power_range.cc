/**
 * @file
 * Reproduces Figure 12: total system power and the corresponding
 * driving-range reduction for the Figure 11 configurations, assuming
 * eight cameras each served by a replica of the computing engines,
 * the 41 TB US prior map's storage draw, and the cooling load that
 * removes the added heat (Sections 2.4.4-2.4.5).
 *
 * Paper anchors: GPU-heavy configurations draw >1 kW and cut driving
 * range by up to ~12%; FPGA/ASIC designs keep the impact near or
 * under 5% (ASIC ~2-3%).
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ad;
    using namespace ad::pipeline;
    bench::printHeader("Figure 12",
                       "system power and driving-range reduction per "
                       "configuration (8 cameras)");

    Rng rng(12);
    SystemModel model;

    std::printf("%-28s %10s %10s %10s %10s %8s\n", "configuration",
                "compute(W)", "storage(W)", "cooling(W)", "total(W)",
                "range%");
    for (const auto& config : bench::paperConfigs()) {
        const auto a = model.assess(config, 2000, rng);
        std::printf("%-28s %10.0f %10.0f %10.0f %10.0f %8.2f%s\n",
                    config.name().c_str(), a.power.computeW,
                    a.power.storageW, a.power.coolingW,
                    a.power.totalW(), a.rangeReductionPct,
                    a.rangeReductionPct > 10.0
                        ? "  <- over 10% line"
                        : (a.rangeReductionPct <= 5.0
                               ? "  <- within 5% line"
                               : ""));
    }

    SystemConfig gpu;
    gpu.det = gpu.tra = gpu.loc = accel::Platform::Gpu;
    SystemConfig asic;
    asic.det = asic.tra = asic.loc = accel::Platform::Asic;
    const auto g = model.assess(gpu, 1000, rng);
    const auto a = model.assess(asic, 1000, rng);
    std::printf("\nall-GPU: %.0f W -> -%.1f%% range (paper: up to "
                "~12%%); all-ASIC: %.0f W -> -%.1f%%\n(paper: ~2%%). "
                "The cooling load magnifies every IT watt by %.0f%% "
                "(Finding 5).\n",
                g.power.totalW(), g.rangeReductionPct, a.power.totalW(),
                a.rangeReductionPct,
                100.0 / model.powerModel().params().coolingCop);
    return 0;
}
