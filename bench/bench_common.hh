/**
 * @file
 * Shared helpers for the figure-reproduction benches: the ordered
 * configuration list of Figures 11/12 (platform assignments for
 * DET/TRA/LOC) and small printing utilities.
 */

#ifndef AD_BENCH_COMMON_HH
#define AD_BENCH_COMMON_HH

#include <cstdio>
#include <vector>

#include "pipeline/system_model.hh"

namespace ad::bench {

/**
 * The configuration axis of Figures 11 and 12: representative
 * platform assignments from all-CPU through the paper's fastest
 * accelerated design, ordered roughly by aggressiveness of
 * acceleration.
 */
inline std::vector<pipeline::SystemConfig>
paperConfigs()
{
    using accel::Platform;
    const auto mk = [](Platform d, Platform t, Platform l) {
        pipeline::SystemConfig c;
        c.det = d;
        c.tra = t;
        c.loc = l;
        return c;
    };
    return {
        mk(Platform::Cpu, Platform::Cpu, Platform::Cpu),
        mk(Platform::Gpu, Platform::Gpu, Platform::Cpu),
        mk(Platform::Gpu, Platform::Gpu, Platform::Gpu),
        mk(Platform::Gpu, Platform::Gpu, Platform::Asic),
        mk(Platform::Fpga, Platform::Fpga, Platform::Fpga),
        mk(Platform::Fpga, Platform::Fpga, Platform::Asic),
        mk(Platform::Asic, Platform::Asic, Platform::Fpga),
        mk(Platform::Asic, Platform::Asic, Platform::Asic),
        mk(Platform::Gpu, Platform::Asic, Platform::Asic),
    };
}

/** Print the standard bench header. */
inline void
printHeader(const char* figure, const char* caption)
{
    std::printf("==========================================================\n");
    std::printf("%s -- %s\n", figure, caption);
    std::printf("==========================================================\n");
}

} // namespace ad::bench

#endif // AD_BENCH_COMMON_HH
