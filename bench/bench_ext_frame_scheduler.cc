/**
 * @file
 * Extension bench (beyond the paper's figures): the frame-service
 * view of the Section 2.4.1 performance constraint. Frames arrive at
 * 10 fps; each configuration serves them with its modeled end-to-end
 * latency distribution; we report deadline misses, drops (saturation)
 * and achieved frame rate -- plus per-frame energy.
 *
 * This makes Finding 4 operational: a configuration that is feasible
 * on mean latency but not at the tail (e.g.\ LOC on the CPU) does not
 * merely miss an SLO on paper -- its relocalization spikes queue
 * subsequent frames and cluster misses, while truly tail-feasible
 * designs run miss-free.
 */

#include <cstdio>

#include "bench_common.hh"
#include "pipeline/scheduler.hh"
#include "vehicle/energy.hh"

int
main()
{
    using namespace ad;
    using namespace ad::pipeline;
    bench::printHeader("Extension",
                       "frame scheduling at 10 fps: deadline misses, "
                       "drops, energy");

    Rng rng(21);
    SystemModel model;
    vehicle::EnergyModel energy;
    constexpr int kFrames = 20000;

    std::printf("%-28s %9s %8s %8s %9s %11s\n", "configuration",
                "miss rate", "drops", "fps", "J/frame", "Wh/mile");
    for (const auto& config : bench::paperConfigs()) {
        // Build a per-frame sampler from the end-to-end structure.
        const accel::Workload w =
            accel::standardWorkloadRef().scaled(config.resolutionScale);
        const auto det = accel::platformModel(config.det)
                             .latency(accel::Component::Det, w);
        const auto tra = accel::platformModel(config.tra)
                             .latency(accel::Component::Tra, w);
        const auto loc = accel::platformModel(config.loc)
                             .latency(accel::Component::Loc, w);
        const auto sampler = [&]() {
            const double perception =
                std::max(loc.sample(rng),
                         det.sample(rng) + tra.sample(rng));
            return perception + 0.15; // FUSION + MOTPLAN glue
        };

        const auto stats =
            simulateSchedule(sampler, kFrames, SchedulerParams{});
        const auto assessment = model.assess(config, 1000, rng);
        const auto e =
            energy.report(assessment.power.totalW(), 10.0, 100.0);

        std::printf("%-28s %8.2f%% %8d %8.2f %9.1f %11.1f\n",
                    config.name().c_str(), 100.0 * stats.missRate(),
                    stats.framesDropped, stats.achievedFps,
                    e.joulesPerFrame, e.whPerMile);
    }

    std::printf("\nthe all-CPU system saturates (it drives on stale "
                "frames); the GPU+LOC:CPU design\nmisses in bursts "
                "whenever relocalization spikes queue frames; "
                "tail-feasible designs\nrun miss-free at the full "
                "camera rate.\n");
    return 0;
}
