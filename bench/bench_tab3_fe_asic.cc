/**
 * @file
 * Reproduces Table 3: the feature-extraction ASIC's post-synthesis
 * specification (ARM 45 nm, 4 GHz, 21.97 mW, 6539.9 um^2) and its
 * modeled FE latency across camera resolutions, including the
 * LUT-trigonometry design choice that buys the 4x latency reduction
 * the paper reports for the ASIC implementation.
 */

#include <cstdio>

#include "accel/models.hh"
#include "bench_common.hh"
#include "sensors/camera.hh"

int
main()
{
    using namespace ad;
    using accel::Component;
    bench::printHeader("Table 3",
                       "feature-extraction ASIC specification");

    const auto spec = accel::feAsicSpec();
    std::printf("technology   %s\n", spec.technology);
    std::printf("area         %.1f um^2\n", spec.areaUm2);
    std::printf("clock rate   %.0f GHz (%.2f ns/cycle)\n", spec.clockGhz,
                1.0 / spec.clockGhz);
    std::printf("power        %.2f mW\n", spec.powerMw);

    accel::AsicModel asic;
    const auto& w = accel::standardWorkloadRef();
    constexpr double kKittiPixels = 1242.0 * 375.0;

    std::printf("\nmodeled FE-engine latency (LOC minus the %.2f ms "
                "host share):\n", w.locOthersCpuMs);
    std::printf("%-14s %12s %12s\n", "resolution", "LUT trig(ms)",
                "naive trig(ms)");
    for (const auto r : sensors::allResolutions()) {
        const auto rs = sensors::resolutionSpec(r);
        const auto scaled = w.scaled(
            rs.width * static_cast<double>(rs.height) / kKittiPixels);
        accel::AsicModel::Options lut;
        lut.lutTrig = true;
        asic.setOptions(lut);
        const double fast =
            asic.baseLatencyMs(Component::Loc, scaled) -
            scaled.locOthersCpuMs;
        accel::AsicModel::Options naive;
        naive.lutTrig = false;
        asic.setOptions(naive);
        const double slow =
            asic.baseLatencyMs(Component::Loc, scaled) -
            scaled.locOthersCpuMs;
        std::printf("%-14s %12.2f %12.2f\n", rs.name, fast, slow);
    }
    std::printf("\nLUT sin/cos/atan2 delivers the paper's 4x FE "
                "latency reduction (Section 4.2.3).\n");
    return 0;
}
