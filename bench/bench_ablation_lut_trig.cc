/**
 * @file
 * Ablation: LUT-based trigonometry in feature extraction. The paper's
 * FPGA design gains 1.5x and its ASIC 4x by replacing sin/cos/atan2
 * with lookup tables (Sections 4.2.2-4.2.3). This bench shows (a) the
 * modeled platform factors, and (b) a *measured* software analogue:
 * the orientation stage of our real oFAST implementation with LUT vs
 * libm atan2 on this host.
 *
 * Usage: bench_ablation_lut_trig [--frames=6]
 */

#include <cstdio>

#include "accel/models.hh"
#include "bench_common.hh"
#include "common/config.hh"
#include "common/time.hh"
#include "sensors/camera.hh"
#include "sensors/scenario.hh"
#include "vision/orb.hh"

int
main(int argc, char** argv)
{
    using namespace ad;
    const Config cfg = Config::fromArgs(argc, argv);
    const int frames = cfg.getInt("frames", 6);
    bench::printHeader("Ablation", "LUT trigonometry in feature "
                       "extraction");

    // (a) Modeled hardware factors.
    const auto& w = accel::standardWorkloadRef();
    accel::FpgaModel fpga;
    accel::AsicModel asic;
    const double fpgaLut =
        fpga.baseLatencyMs(accel::Component::Loc, w) - w.locOthersCpuMs;
    accel::FpgaModel::Options fo;
    fo.lutTrig = false;
    fpga.setOptions(fo);
    const double fpgaNaive =
        fpga.baseLatencyMs(accel::Component::Loc, w) - w.locOthersCpuMs;
    const double asicLut =
        asic.baseLatencyMs(accel::Component::Loc, w) - w.locOthersCpuMs;
    accel::AsicModel::Options ao;
    ao.lutTrig = false;
    asic.setOptions(ao);
    const double asicNaive =
        asic.baseLatencyMs(accel::Component::Loc, w) - w.locOthersCpuMs;

    std::printf("modeled FE latency (standard workload):\n");
    std::printf("  FPGA: LUT %.2f ms vs naive %.2f ms -> %.2fx "
                "(paper: 1.5x)\n", fpgaLut, fpgaNaive,
                fpgaNaive / fpgaLut);
    std::printf("  ASIC: LUT %.3f ms vs naive %.3f ms -> %.2fx "
                "(paper: 4x)\n", asicLut, asicNaive,
                asicNaive / asicLut);

    // (b) Measured software analogue on rendered frames.
    Rng rng(42);
    sensors::ScenarioParams sp;
    sp.roadLength = 120.0;
    const sensors::Scenario sc = sensors::makeUrbanScenario(rng, sp);
    sensors::Camera camera(sensors::Resolution::HD);

    double lutMs = 0;
    double naiveMs = 0;
    std::size_t features = 0;
    for (int i = 0; i < frames; ++i) {
        const Pose2 ego(10.0 + 5.0 * i,
                        sc.world.road().laneCenter(1), 0.0);
        const sensors::Frame frame = camera.render(sc.world, ego);
        for (const auto mode :
             {vision::TrigMode::Lut, vision::TrigMode::Naive}) {
            vision::OrbParams op;
            op.fast.trigMode = mode;
            const vision::OrbExtractor orb(op);
            Stopwatch watch;
            const auto f = orb.extract(frame.image);
            const double ms = watch.elapsedMs();
            if (mode == vision::TrigMode::Lut) {
                lutMs += ms;
                features += f.size();
            } else {
                naiveMs += ms;
            }
        }
    }
    std::printf("\nmeasured software ORB on this host (%d HD frames, "
                "%zu features/frame avg):\n", frames,
                features / frames);
    std::printf("  LUT atan2   %.1f ms total\n", lutMs);
    std::printf("  libm atan2  %.1f ms total (%.2fx)\n", naiveMs,
                naiveMs / lutMs);
    std::printf("(in software the orientation stage is a small slice "
                "of FE, so the measured gap is\nmodest; in the "
                "hardware pipelines the trigonometric unit sits on "
                "the critical path,\nwhich is what the modeled "
                "factors capture)\n");
    return 0;
}
