/**
 * @file
 * Ablation: double buffering in the FPGA DNN engine (Figure 8). The
 * paper's design prefetches each layer's weights while the previous
 * layer computes; without it, transfer and compute serialize. The
 * effect is largest where transfer and compute are balanced, and
 * small where one side dominates (DET is compute-bound on the DSPs;
 * TRA is transfer-bound on its 436 MB FC weights).
 */

#include <algorithm>
#include <cstdio>

#include "accel/models.hh"
#include "bench_common.hh"
#include "sensors/camera.hh"

int
main()
{
    using namespace ad;
    using accel::Component;
    bench::printHeader("Ablation",
                       "FPGA double buffering (layer-by-layer "
                       "weight prefetch)");

    const auto& w = accel::standardWorkloadRef();
    constexpr double kKittiPixels = 1242.0 * 375.0;

    std::printf("%-18s %-6s %14s %14s %9s\n", "resolution", "engine",
                "buffered(ms)", "serialized(ms)", "penalty");
    for (const auto r :
         {sensors::Resolution::Kitti, sensors::Resolution::FHD}) {
        const auto rs = sensors::resolutionSpec(r);
        const auto scaled = w.scaled(
            rs.width * static_cast<double>(rs.height) / kKittiPixels);
        for (const auto c : {Component::Det, Component::Tra}) {
            accel::FpgaModel fpga;
            const double buffered = fpga.baseLatencyMs(c, scaled);
            accel::FpgaModel::Options opts;
            opts.doubleBuffering = false;
            fpga.setOptions(opts);
            const double serialized = fpga.baseLatencyMs(c, scaled);
            std::printf("%-18s %-6s %14.1f %14.1f %8.1f%%\n", rs.name,
                        accel::componentName(c), buffered, serialized,
                        (serialized / buffered - 1.0) * 100.0);
        }
    }

    // The Figure 8 schedule in detail: the five most expensive layers
    // of each engine at KITTI scale.
    std::printf("\nper-layer schedule (top 5 layers by time, KITTI "
                "scale):\n");
    for (const auto c : {Component::Det, Component::Tra}) {
        accel::FpgaModel fpga;
        auto schedule = fpga.schedule(c, w);
        std::sort(schedule.begin(), schedule.end(),
                  [](const auto& a, const auto& b) {
                      return a.layerMs > b.layerMs;
                  });
        std::printf("  %s:\n", accel::componentName(c));
        for (std::size_t i = 0; i < schedule.size() && i < 5; ++i) {
            const auto& e = schedule[i];
            std::printf("    %-14s compute %8.1f ms, transfer %8.1f "
                        "ms -> %s-bound\n", e.layer.c_str(),
                        e.computeMs, e.transferMs,
                        e.transferBound ? "transfer" : "compute");
        }
    }

    std::printf("\nDET hides its (small) weight traffic almost "
                "entirely behind compute; TRA's FC\nlayers are "
                "transfer-bound, so buffering only hides the conv "
                "compute. Both match\nthe paper's design rationale "
                "for prefetching into double buffers (Section "
                "4.2.2).\n");
    return 0;
}
