/**
 * @file
 * Extension bench: the *accuracy* side of Section 5.4, measured on
 * the real detector. The paper motivates higher-resolution cameras
 * with prior work showing up to ~10% accuracy gains; here we render
 * the same scene at each camera resolution (with the detector's
 * network input scaled proportionally, as in Figure 13's latency
 * sweep) and measure recall over planted objects at increasing
 * distances. Higher resolution keeps distant-object recall -- the
 * reason the latency wall of Figure 13 (QHD infeasible) is a real
 * accuracy loss, not just a convenience loss.
 *
 * Usage: bench_ext_resolution_accuracy [--trials=8]
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "common/config.hh"
#include "detect/yolo.hh"
#include "sensors/camera.hh"

int
main(int argc, char** argv)
{
    using namespace ad;
    const Config cfg = Config::fromArgs(argc, argv);
    const int trials = cfg.getInt("trials", 8);
    bench::printHeader("Extension",
                       "measured detection recall vs camera "
                       "resolution (real detector)");

    // Resolutions under test with proportionally scaled network
    // inputs (as the paper does for Figure 13). Kept below FHD so the
    // measured sweep completes quickly on one core.
    struct Case
    {
        sensors::Resolution res;
        int netInput;
    };
    const std::vector<Case> cases = {
        {sensors::Resolution::HHD, 160},
        {sensors::Resolution::Kitti, 224},
        {sensors::Resolution::HD, 320},
    };
    const std::vector<double> distances = {12, 20, 32, 48, 70};

    std::printf("%-14s %8s", "resolution", "net-in");
    for (const double d : distances)
        std::printf("  %5.0fm", d);
    std::printf("   overall recall\n");

    Rng rng(5);
    for (const auto& c : cases) {
        sensors::Camera camera(c.res);
        detect::DetectorParams dp;
        dp.inputSize = c.netInput;
        dp.width = 0.25;
        detect::YoloDetector detector(dp);

        std::printf("%-14s %8d", sensors::resolutionSpec(c.res).name,
                    c.netInput);
        int totalHits = 0;
        int totalTrials = 0;
        for (const double distance : distances) {
            int hits = 0;
            for (int t = 0; t < trials; ++t) {
                sensors::World world;
                sensors::Actor car;
                car.cls = sensors::ObjectClass::Vehicle;
                car.motion = sensors::MotionKind::Stationary;
                const double lane =
                    world.road().laneCenter(rng.uniformInt(0, 2));
                car.pose = Pose2(50.0 + distance, lane, 0);
                world.addActor(car);
                const Pose2 ego(50.0, world.road().laneCenter(1), 0);
                const auto frame = camera.render(world, ego);
                if (frame.truth.empty())
                    continue;
                const auto dets = detector.detect(frame.image);
                for (const auto& d : dets) {
                    if (d.box.iou(frame.truth[0].box) > 0.3) {
                        ++hits;
                        break;
                    }
                }
            }
            totalHits += hits;
            totalTrials += trials;
            std::printf("  %4.0f%%", 100.0 * hits / trials);
        }
        std::printf("   %5.1f%%\n",
                    100.0 * totalHits / std::max(1, totalTrials));
    }

    std::printf("\nhigher camera resolution preserves recall at "
                "distance -- the accuracy incentive\nthat makes Figure "
                "13's compute wall a real constraint (Section 5.4).\n");
    return 0;
}
