/**
 * @file
 * Reproduces Figure 2: driving-range reduction of a Chevy Bolt from
 * the computing engine alone (left half) and from the entire system in
 * aggregate -- computing + 41 TB storage + the cooling load that
 * removes the added heat (right half) -- for the CPU+FPGA, CPU+GPU and
 * CPU+3GPUs configurations.
 *
 * Paper anchors: CPU+3GPUs ~= 1 kW computing alone -> ~6% range loss;
 * the entire system nearly doubles the power, reaching ~11.5%.
 */

#include <cstdio>

#include "accel/calibration.hh"
#include "bench_common.hh"
#include "vehicle/power.hh"
#include "vehicle/range.hh"

int
main()
{
    using namespace ad;
    using accel::Platform;
    bench::printHeader("Figure 2",
                       "driving range reduction: computing engine "
                       "alone vs entire system");

    struct Config
    {
        const char* name;
        double computeW;
    };
    const double cpu = accel::devicePowerFullUtilWatts(Platform::Cpu);
    const double gpu = accel::devicePowerFullUtilWatts(Platform::Gpu);
    const double fpga = accel::devicePowerFullUtilWatts(Platform::Fpga);
    const Config configs[] = {
        {"CPU+FPGA", cpu + fpga},
        {"CPU+GPU", cpu + gpu},
        {"CPU+3GPUs", cpu + 3 * gpu},
    };

    vehicle::VehiclePowerModel power;
    vehicle::EvRangeModel ev;
    constexpr double storageTb = 41.0;

    std::printf("%-10s | %-28s | %-28s\n", "",
                "computing engine alone", "entire system in aggregate");
    std::printf("%-10s | %10s %16s | %10s %16s\n", "config", "power(W)",
                "range loss (%)", "power(W)", "range loss (%)");
    for (const auto& c : configs) {
        const double aloneW = c.computeW;
        const double alonePct = ev.rangeReductionPct(aloneW);
        const auto full = power.systemPower(c.computeW, storageTb);
        const double fullPct = ev.rangeReductionPct(full.totalW());
        std::printf("%-10s | %10.0f %16.2f | %10.0f %16.2f\n", c.name,
                    aloneW, alonePct, full.totalW(), fullPct);
    }

    const auto worst = power.systemPower(configs[2].computeW, storageTb);
    std::printf("\nmagnification: storage %.0f W + cooling %.0f W nearly "
                "double the %.0f W computing draw\n",
                worst.storageW, worst.coolingW, worst.computeW);
    std::printf("paper anchors: CPU+3GPUs ~6%% alone, ~11.5%% in "
                "aggregate; reproduced %.1f%% / %.1f%%\n",
                ev.rangeReductionPct(configs[2].computeW),
                ev.rangeReductionPct(worst.totalW()));
    return 0;
}
