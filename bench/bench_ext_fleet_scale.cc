/**
 * @file
 * Extension bench: fleet-scale shard sweep. One machine serves a few
 * dozen vehicles inside the paper's tail constraint (p99.99 <=
 * 100 ms, Section 2.4.2); a fleet operator signs up thousands. This
 * sweep measures what sharding the serving stack over engine
 * replicas buys: shards {1, 2, 4} x streams {64 .. 4096} over one
 * scenario-replay tape (bursts, diurnal ramp, stragglers, and a hot
 * block aimed at one shard -- the tape is generated per stream count
 * only, so every shard count serves the identical arrival sequence).
 *
 * Claims under test (ISSUE 9 acceptance, enforced here and in
 * tools/check_bench_json.py):
 *
 *  - tail: every multi-shard row at >= 512 streams holds the
 *    admitted fleet-wide p99.99 inside the budget -- admission sheds
 *    what the replicas cannot serve, it never serves frames late;
 *  - scaling: at 512 streams, 4-shard goodput is >= 0.8x linear
 *    (4x the 1-shard goodput) -- replicas are independent, so
 *    goodput scales with the engine count, less only the hot-block
 *    skew the rebalancer has to chase;
 *  - determinism: three runs of the same seeded scenario produce
 *    bitwise-identical migration logs and fleet summaries.
 *
 * Emits BENCH_fleet.json (override with --fleet-json=PATH): one row
 * per (shards, streams) with fleet-wide and per-shard p99.99 /
 * goodput / migration counts, plus the scaling and determinism
 * sections. Fully virtual-clocked.
 *
 * Usage:
 *   bench_ext_fleet_scale [--horizon-ms=8000] [--budget-ms=100]
 *                         [--seed=29] [--fleet-json=PATH]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/config.hh"
#include "fleet/fleet.hh"

namespace {

using namespace ad;

fleet::LoadGenParams
scenario(int streams, double horizonMs, std::uint64_t seed)
{
    fleet::LoadGenParams lp;
    lp.streams = streams;
    lp.horizonMs = horizonMs;
    lp.seed = seed;
    lp.burstP = 0.03;
    lp.rampAmplitude = 0.2;
    lp.rampPeriodMs = horizonMs;
    lp.stragglerFraction = 0.05;
    // The hot block runs modulo 4 regardless of the shard count
    // under test, so the tape is identical across shard counts; at
    // 4 shards the whole block lands on shard 1 (round-robin), the
    // hot-shard case the rebalancer has to drain.
    lp.hotModulus = 4;
    lp.hotResidue = 1;
    lp.hotFactor = 4.0;
    lp.hotStartMs = 0.25 * horizonMs;
    lp.hotEndMs = 0.75 * horizonMs;
    return lp;
}

fleet::FleetParams
fleetParams(int shards, double budgetMs, std::uint64_t seed)
{
    fleet::FleetParams fp;
    fp.shards = shards;
    fp.serve.stream.deadlineMs = budgetMs;
    fp.serve.seed = seed;
    fp.serve.governor.enabled = true;
    fp.serve.governor.budgetMs = budgetMs;
    fp.engine.seed = seed * 2654435761u + 1;
    fp.rebalance.periodMs = 500.0;
    return fp;
}

struct SweepRow
{
    int shards = 0;
    int streams = 0;
    fleet::FleetReport report;
};

void
writeJson(const char* path, const std::vector<SweepRow>& rows,
          double horizonMs, double budgetMs, std::uint64_t seed,
          double goodput1, double goodput4, double scalingRatio,
          bool scalingPass, bool tailPass, int tailRows,
          bool logIdentical, bool summaryIdentical,
          std::int64_t determinismMigrations)
{
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"fleet_scale\",\n"
                 "  \"engine\": \"modeled\",\n"
                 "  \"horizon_ms\": %.1f,\n"
                 "  \"budget_ms\": %.1f,\n"
                 "  \"seed\": %llu,\n  \"rows\": [",
                 horizonMs, budgetMs,
                 static_cast<unsigned long long>(seed));
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SweepRow& r = rows[i];
        const auto& rep = r.report;
        std::fprintf(
            f,
            "%s\n    {\"shards\": %d, \"streams\": %d, "
            "\"streams_admitted\": %d, "
            "\"arrived\": %lld, \"admitted\": %lld, "
            "\"shed\": %lld, \"deadline_misses\": %lld, "
            "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
            "\"p9999_ms\": %.3f, \"worst_ms\": %.3f, "
            "\"goodput_fps\": %.3f, \"total_goodput_fps\": %.3f, "
            "\"shed_rate\": %.6f, \"epochs\": %lld, "
            "\"migrations\": %lld, \"fleet_escalations\": %lld, "
            "\"shard_rows\": [",
            i ? "," : "", r.shards, r.streams, rep.streamsAdmitted,
            static_cast<long long>(rep.framesArrived),
            static_cast<long long>(rep.framesAdmitted),
            static_cast<long long>(rep.framesShed),
            static_cast<long long>(rep.deadlineMisses),
            rep.admittedLatency.p50, rep.admittedLatency.p99,
            rep.admittedLatency.p9999, rep.admittedLatency.worst,
            rep.goodputFps, rep.totalGoodputFps, rep.shedRate,
            static_cast<long long>(rep.epochs),
            static_cast<long long>(rep.migrations),
            static_cast<long long>(rep.fleetEscalations));
        for (std::size_t k = 0; k < rep.shardRows.size(); ++k) {
            const auto& row = rep.shardRows[k];
            std::fprintf(
                f,
                "%s{\"shard\": %d, \"streams_final\": %d, "
                "\"p9999_ms\": %.3f, \"goodput_fps\": %.3f, "
                "\"burn_rate\": %.4f, \"migrations_in\": %lld, "
                "\"migrations_out\": %lld}",
                k ? ", " : "", row.shard, row.streamsFinal,
                row.admittedLatency.p9999, row.goodputFps,
                row.burnRate,
                static_cast<long long>(row.migrationsIn),
                static_cast<long long>(row.migrationsOut));
        }
        std::fprintf(f, "]}");
    }
    std::fprintf(
        f,
        "\n  ],\n"
        "  \"scaling\": {\"streams\": 512, "
        "\"goodput_1shard_fps\": %.3f, "
        "\"goodput_4shard_fps\": %.3f, "
        "\"ratio_vs_linear\": %.4f, \"bar\": 0.8, \"pass\": %s},\n"
        "  \"determinism\": {\"runs\": 3, "
        "\"migration_log_identical\": %s, "
        "\"summary_identical\": %s, \"migrations\": %lld},\n"
        "  \"acceptance\": {\"tail_rows_checked\": %d, "
        "\"tail_pass\": %s, \"scaling_pass\": %s, "
        "\"determinism_pass\": %s}\n}\n",
        goodput1, goodput4, scalingRatio,
        scalingPass ? "true" : "false",
        logIdentical ? "true" : "false",
        summaryIdentical ? "true" : "false",
        static_cast<long long>(determinismMigrations), tailRows,
        tailPass ? "true" : "false", scalingPass ? "true" : "false",
        (logIdentical && summaryIdentical) ? "true" : "false");
    std::fclose(f);
    char resolved[4096];
    if (path[0] != '/' && ::realpath(path, resolved))
        std::printf("wrote fleet sweep to %s\n", resolved);
    else
        std::printf("wrote fleet sweep to %s\n", path);
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    cfg.warnUnknownKeys({"horizon-ms", "budget-ms", "seed",
                         "fleet-json"});
    const double horizonMs = cfg.getDouble("horizon-ms", 8000.0);
    const double budgetMs = cfg.getDouble("budget-ms", 100.0);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cfg.getInt("seed", 29));
    const std::string jsonPath =
        cfg.getString("fleet-json", "BENCH_fleet.json");

    bench::printHeader(
        "Fleet shard-scaling sweep (extension)",
        "sharded serving over engine replicas with slack-aware "
        "rebalancing, scenario-replay load, modeled engines");
    std::printf("horizon %.0f ms, budget %.0f ms, seed %llu\n\n",
                horizonMs, budgetMs,
                static_cast<unsigned long long>(seed));
    std::printf("%7s %8s %10s %10s %9s %7s %7s %7s\n", "shards",
                "streams", "p99.99 ms", "goodput", "shed %", "moves",
                "escal", "epochs");

    // 32 streams at 4 shards is ~8 per shard: near engine capacity,
    // the regime where the hot block makes one shard diverge and the
    // rebalancer actually moves streams. From 64 up every shard is
    // saturated and admission (not migration) carries the tail.
    const int shardCounts[] = {1, 2, 4};
    const int streamCounts[] = {32, 64, 256, 512, 1024, 4096};
    std::vector<SweepRow> rows;
    double goodput1 = 0.0, goodput4 = 0.0;
    bool tailPass = true;
    int tailRows = 0;
    for (const int streams : streamCounts) {
        const fleet::ScenarioLoadGen load(
            scenario(streams, horizonMs, seed));
        for (const int shards : shardCounts) {
            fleet::ShardedServer server(
                fleetParams(shards, budgetMs, seed), load);
            SweepRow row;
            row.shards = shards;
            row.streams = streams;
            row.report = server.run();
            const auto& r = row.report;
            std::printf(
                "%7d %8d %10.3f %10.3f %9.2f %7lld %7lld %7lld%s\n",
                shards, streams, r.admittedLatency.p9999,
                r.goodputFps, 100.0 * r.shedRate,
                static_cast<long long>(r.migrations),
                static_cast<long long>(r.fleetEscalations),
                static_cast<long long>(r.epochs),
                r.admittedLatency.p9999 <= budgetMs
                    ? "  [meets tail]"
                    : "");
            if (shards >= 2 && streams >= 512) {
                ++tailRows;
                if (r.admittedLatency.p9999 > budgetMs)
                    tailPass = false;
            }
            if (streams == 512 && shards == 1)
                goodput1 = r.goodputFps;
            if (streams == 512 && shards == 4)
                goodput4 = r.goodputFps;
            rows.push_back(std::move(row));
        }
    }

    const double scalingRatio =
        goodput1 > 0.0 ? goodput4 / (4.0 * goodput1) : 0.0;
    const bool scalingPass = scalingRatio >= 0.8;
    std::printf("\nscaling at 512 streams: 1 shard %.3f fps, "
                "4 shards %.3f fps -> %.4fx linear %s\n",
                goodput1, goodput4, scalingRatio,
                scalingPass ? "[>= 0.8 bar]" : "[BELOW 0.8 bar]");

    // Determinism: the same seeded scenario three times over must
    // produce bitwise-identical migration logs and fleet summaries.
    // Uses the near-capacity hot-shard config so the log being
    // compared is non-empty -- determinism over no migrations would
    // prove nothing.
    std::vector<std::string> logs, summaries;
    std::int64_t determinismMigrations = 0;
    {
        fleet::LoadGenParams lp = scenario(32, horizonMs, seed);
        lp.hotFactor = 6.0;
        const fleet::ScenarioLoadGen load(lp);
        for (int run = 0; run < 3; ++run) {
            fleet::ShardedServer server(
                fleetParams(4, budgetMs, seed), load);
            const fleet::FleetReport r = server.run();
            logs.push_back(r.migrationLogString());
            summaries.push_back(r.summaryString());
            determinismMigrations = r.migrations;
        }
    }
    const bool logIdentical = logs[0] == logs[1] &&
                              logs[1] == logs[2] &&
                              determinismMigrations > 0;
    const bool summaryIdentical =
        summaries[0] == summaries[1] && summaries[1] == summaries[2];
    std::printf("determinism over 3 runs: migration log %s (%lld "
                "moves), summary %s\n",
                logIdentical ? "identical" : "DIVERGED",
                static_cast<long long>(determinismMigrations),
                summaryIdentical ? "identical" : "DIVERGED");

    const bool tailOk = tailPass && tailRows > 0;
    std::printf(
        "\nverdict: %s\n",
        (tailOk && scalingPass && logIdentical && summaryIdentical)
            ? "PASS: multi-shard rows at >= 512 streams hold the "
              "admitted p99.99 budget, 1->4 shard goodput is >= "
              "0.8x linear, and the fleet is bit-reproducible"
            : "FAIL: a fleet acceptance bar was missed");

    writeJson(jsonPath.c_str(), rows, horizonMs, budgetMs, seed,
              goodput1, goodput4, scalingRatio, scalingPass, tailOk,
              tailRows, logIdentical, summaryIdentical,
              determinismMigrations);
    return (tailOk && scalingPass && logIdentical && summaryIdentical)
               ? 0
               : 1;
}
