/**
 * @file
 * Reproduces Figure 11: end-to-end mean and 99.99th-percentile latency
 * of the full system across platform-assignment configurations. The
 * end-to-end latency composes as max(LOC, DET + TRA) + FUSION +
 * MOTPLAN because detection/tracking and localization run in parallel
 * (Figure 1).
 *
 * Paper anchors: all-CPU tails at ~9.1 s; the best accelerated design
 * (DET:GPU TRA:ASIC LOC:ASIC) reaches 16.1 ms; some configurations
 * meet 100 ms on mean latency but fail at the tail (Finding 4); the
 * headline tail reductions are 169x (GPU), 10x (FPGA), 93x (ASIC).
 *
 * --threads=N shrinks CPU-assigned engines by the parallel kernel
 * layer's modeled Amdahl speedup (SystemConfig::cpuThreads); the
 * default 1 reproduces the paper's single-socket anchors.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/config.hh"
#include "obs/obs.hh"

int
main(int argc, char** argv)
{
    using namespace ad;
    using namespace ad::pipeline;
    const Config cfg = Config::fromArgs(argc, argv);
    {
        auto known = obs::knownConfigKeys();
        known.push_back("threads");
        cfg.warnUnknownKeys(known);
    }
    const obs::ObsOptions obsOpt = obs::setupFromConfig(cfg);
    const int threads = cfg.getInt("threads", 1);
    bench::printHeader("Figure 11",
                       "end-to-end latency across configurations "
                       "(100 ms budget)");
    if (threads > 1)
        std::printf("(CPU engines modeled with %d kernel-layer "
                    "threads)\n", threads);

    Rng rng(11);
    SystemModel model;
    constexpr int kSamples = 200000;

    std::printf("%-28s %10s %12s  %s\n", "configuration", "mean(ms)",
                "p99.99(ms)", "meets 100 ms?");
    double cpuTail = 0;
    double bestTail = 1e18;
    std::string bestName;
    for (auto config : bench::paperConfigs()) {
        config.cpuThreads = threads;
        obs::TraceSpan span(obs::tracer(), config.name(), "fig11");
        const auto s = model.sampleEndToEnd(config, kSamples, rng);
        if (obs::metricsEnabled()) {
            obs::metrics()
                .gauge("fig11." + config.name() + ".p9999_ms")
                .set(s.p9999);
        }
        if (config.det == accel::Platform::Cpu &&
            config.loc == accel::Platform::Cpu)
            cpuTail = s.p9999;
        if (s.p9999 < bestTail) {
            bestTail = s.p9999;
            bestName = config.name();
        }
        const char* verdict =
            s.p9999 <= 100.0
                ? "yes"
                : (s.mean <= 100.0 ? "NO -- mean-only (misleading!)"
                                   : "no");
        std::printf("%-28s %10.1f %12.1f  %s\n", config.name().c_str(),
                    s.mean, s.p9999, verdict);
    }

    std::printf("\nall-CPU tail: %.0f ms (paper: ~9100 ms)\n", cpuTail);
    std::printf("best accelerated design: %s at %.1f ms "
                "(paper: 16.1 ms)\n", bestName.c_str(), bestTail);

    std::printf("\nheadline tail-latency reductions vs all-CPU:\n");
    for (const auto p : {accel::Platform::Gpu, accel::Platform::Fpga,
                         accel::Platform::Asic}) {
        SystemConfig c;
        c.det = c.tra = c.loc = p;
        c.cpuThreads = threads;
        const auto s = model.sampleEndToEnd(c, kSamples, rng);
        std::printf("  all-%-5s %8.1f ms -> %6.0fx (paper: %s)\n",
                    accel::platformName(p), s.p9999, cpuTail / s.p9999,
                    p == accel::Platform::Gpu
                        ? "169x"
                        : (p == accel::Platform::Fpga ? "10x" : "93x"));
    }
    obs::finish(obsOpt);
    return 0;
}
