/**
 * @file
 * Extension bench: fault sweep over the modeled all-GPU pipeline with
 * the degradation governor on and off, quantifying how much of the
 * paper's predictability constraint (p99.99 <= 100 ms, Section 2.4.2)
 * graceful degradation buys back under injected DET-engine stalls.
 *
 * Fault model: per frame, with probability = intensity, the detection
 * engine stalls by a multiplicative factor (contention on the
 * accelerator, uniform x10..x14) -- enough to push a NOMINAL frame
 * past the 100 ms budget but small enough that the DEGRADED detector
 * (half input scale, quarter cost) absorbs it. The stall schedule is
 * drawn from its own seeded stream with a fixed draw count per frame,
 * and the latency-body stream is shared between the governor-on and
 * governor-off runs, so both see the identical adverse schedule and
 * the artifact is bit-reproducible run to run.
 *
 * Emits BENCH_faults.json (override with --faults-json=PATH): one row
 * per (intensity, governor) with the latency summary, budget-miss
 * rate, and per-mode residency.
 *
 * Usage:
 *   bench_ext_fault_sweep [--frames=200000] [--budget-ms=100]
 *                         [--seed=7] [--faults-json=PATH]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "pipeline/governor.hh"

namespace {

using namespace ad;

/** One sweep cell: (intensity, governor on/off) fully summarized. */
struct SweepRow
{
    double intensity = 0;
    bool governorOn = false;
    LatencySummary summary;
    double missRate = 0;
    std::uint64_t stalls = 0;
    std::array<double, pipeline::kOperatingModeCount> residencyPct{};
    std::size_t transitions = 0;
};

/**
 * Run one faulted modeled-mode sequence. Per frame the stage bodies
 * come from `bodyRng` and the stall schedule from `faultRng`; both
 * consume a fixed number of draws per frame, so the schedule is a
 * pure function of (seed, frame index) and identical whichever
 * governor policy is active.
 */
SweepRow
runSweepCell(double intensity, bool governorOn, int frames,
             double budgetMs, std::uint64_t seed)
{
    using accel::Component;
    using accel::Platform;
    const accel::Workload w = accel::standardWorkloadRef();
    const auto& gpu = accel::platformModel(Platform::Gpu);
    const auto& cpu = accel::platformModel(Platform::Cpu);
    const auto detDist = gpu.latency(Component::Det, w);
    const auto traDist = gpu.latency(Component::Tra, w);
    const auto locDist = gpu.latency(Component::Loc, w);
    const auto fusionDist = cpu.latency(Component::Fusion, w);
    const auto motDist = cpu.latency(Component::MotPlan, w);

    pipeline::GovernorParams gp;
    gp.enabled = governorOn;
    gp.budgetMs = budgetMs;
    // Modeled stalls are single-frame events: one miss is all the
    // evidence there is, so escalate immediately; the exponential
    // recovery backoff keeps re-probing misses sub-tail over long
    // runs (docs/OPERATING_MODES.md).
    gp.escalateAfterMisses = 1;
    pipeline::DegradationGovernor governor(gp);

    Rng bodyRng(seed);
    Rng faultRng(seed ^ 0x9e3779b97f4a7c15ull);

    SweepRow row;
    row.intensity = intensity;
    row.governorOn = governorOn;
    LatencyRecorder rec(static_cast<std::size_t>(frames));
    std::uint64_t misses = 0;
    for (int i = 0; i < frames; ++i) {
        // Fault stream: fixed two draws per frame.
        const bool stall = faultRng.bernoulli(intensity);
        const double stallFactor = faultRng.uniform(10.0, 14.0);

        // Latency-body stream: one congestion variate per platform,
        // then every stage body, all drawn whether or not the
        // governor later discards the DET cost.
        double z[accel::kNumPlatforms];
        for (auto& v : z)
            v = bodyRng.normal();
        const double zGpu = z[static_cast<int>(Platform::Gpu)];
        double det = detDist.sampleGivenBody(zGpu, bodyRng);
        const double tra = traDist.sampleGivenBody(zGpu, bodyRng);
        const double loc = locDist.sampleGivenBody(zGpu, bodyRng);
        const double fusion = fusionDist.sample(bodyRng);
        const double mot = motDist.sample(bodyRng);

        // Governor actuation on the DET cost: DEGRADED halves the
        // detector input (quarter cost); skipped-detection frames and
        // TRACKING_ONLY/SAFE_STOP run no detector at all, so a
        // stalled engine that does not run costs nothing.
        const pipeline::FramePlan plan =
            governorOn ? governor.plan(i) : pipeline::FramePlan{};
        if (!plan.runDet)
            det = 0;
        else if (plan.degradedDet)
            det *= 0.25;
        if (stall)
            det *= stallFactor;
        row.stalls += stall && plan.runDet;

        const double e2e = std::max(loc, det + tra) + fusion + mot;
        rec.record(e2e);
        misses += e2e > budgetMs;
        if (governorOn)
            governor.observe(i, {det, tra, loc, fusion, mot});
    }
    row.summary = rec.summary();
    row.missRate = static_cast<double>(misses) / frames;
    if (governorOn) {
        const auto& inMode = governor.framesInMode();
        for (std::size_t m = 0; m < pipeline::kOperatingModeCount; ++m)
            row.residencyPct[m] = 100.0 * inMode[m] / frames;
        row.transitions = governor.transitions().size();
    } else {
        row.residencyPct[0] = 100.0; // ungoverned = always NOMINAL.
    }
    return row;
}

void
writeJson(const char* path, const std::vector<SweepRow>& rows,
          int frames, double budgetMs, std::uint64_t seed)
{
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"fault_sweep\",\n"
                 "  \"config\": \"DET:GPU TRA:GPU LOC:GPU\",\n"
                 "  \"frames\": %d,\n  \"budget_ms\": %.1f,\n"
                 "  \"seed\": %llu,\n  \"rows\": [",
                 frames, budgetMs,
                 static_cast<unsigned long long>(seed));
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SweepRow& r = rows[i];
        std::fprintf(
            f,
            "%s\n    {\"intensity\": %.3f, \"governor\": %s, "
            "\"mean_ms\": %.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
            "\"p9999_ms\": %.3f, \"worst_ms\": %.3f, "
            "\"miss_rate\": %.6f, \"stalls\": %llu, "
            "\"transitions\": %zu, "
            "\"residency_pct\": {\"NOMINAL\": %.2f, \"DEGRADED\": "
            "%.2f, \"TRACKING_ONLY\": %.2f, \"SAFE_STOP\": %.2f}}",
            i ? "," : "", r.intensity, r.governorOn ? "true" : "false",
            r.summary.mean, r.summary.p50, r.summary.p99,
            r.summary.p9999, r.summary.worst, r.missRate,
            static_cast<unsigned long long>(r.stalls), r.transitions,
            r.residencyPct[0], r.residencyPct[1], r.residencyPct[2],
            r.residencyPct[3]);
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    char resolved[4096];
    if (path[0] != '/' && ::realpath(path, resolved))
        std::printf("wrote fault sweep to %s\n", resolved);
    else
        std::printf("wrote fault sweep to %s\n", path);
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    cfg.warnUnknownKeys(
        {"frames", "budget-ms", "seed", "faults-json"});
    const int frames = cfg.getInt("frames", 200000);
    const double budgetMs = cfg.getDouble("budget-ms", 100.0);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cfg.getInt("seed", 7));
    const std::string jsonPath =
        cfg.getString("faults-json", "BENCH_faults.json");

    bench::printHeader(
        "Fault sweep (extension)",
        "DET-stall injection vs. graceful degradation, all-GPU model");
    std::printf("%d frames per cell, budget %.0f ms, seed %llu\n\n",
                frames, budgetMs,
                static_cast<unsigned long long>(seed));
    std::printf("%9s %8s %10s %10s %10s %9s  residency N/D/T/S (%%)\n",
                "intensity", "governor", "mean ms", "p99.99 ms",
                "miss rate", "transits");

    const double intensities[] = {0.0, 0.02, 0.05, 0.1, 0.2, 0.3};
    std::vector<SweepRow> rows;
    for (const double intensity : intensities) {
        for (const bool on : {false, true}) {
            SweepRow row =
                runSweepCell(intensity, on, frames, budgetMs, seed);
            std::printf(
                "%9.2f %8s %10.3f %10.3f %10.5f %9zu  "
                "%.1f/%.1f/%.1f/%.1f%s\n",
                intensity, on ? "on" : "off", row.summary.mean,
                row.summary.p9999, row.missRate, row.transitions,
                row.residencyPct[0], row.residencyPct[1],
                row.residencyPct[2], row.residencyPct[3],
                row.summary.p9999 <= budgetMs ? "  [meets tail]" : "");
            rows.push_back(row);
        }
    }
    writeJson(jsonPath.c_str(), rows, frames, budgetMs, seed);
    return 0;
}
