/**
 * @file
 * Extension bench: multi-vehicle tiled map service. The paper's
 * Section 2.4.3 prices a US-scale prior map at ~41 TB -- no vehicle
 * carries it, so localization pages tiles from a shared map service
 * and every cold tile is a LOC stall on the critical path. This
 * sweep measures what the map tier buys: vehicle counts {32 .. 512}
 * with pose-driven prefetch on and off over one scenario-replay
 * tape per fleet size, plus a drift/update convergence pair and a
 * triple-run determinism check.
 *
 * Claims under test (ISSUE 10 acceptance, enforced here and in
 * tools/check_bench_json.py):
 *
 *  - stalls: every prefetch-on row has *zero* steady-state cold-tile
 *    stalls at the default prefetch horizon, while the prefetch-off
 *    baseline at >= 256 vehicles stalls steadily (the bar proves the
 *    prefetcher, not a trivially stall-free configuration);
 *  - latency: demand-fetch p99 -- the fetches a stalled vehicle
 *    blocks on -- stays inside the budget at >= 256 vehicles;
 *  - convergence: with appearance drift, crowd-sourced delta updates
 *    end the run with strictly less map error than a frozen map,
 *    and the compressed tile transport beats the raw encoding;
 *  - determinism: three runs of the same seeded scenario produce
 *    bitwise-identical version-stamp logs and run summaries.
 *
 * Emits BENCH_map.json (override with --map-json=PATH). Fully
 * virtual-clocked: wall time never enters any figure.
 *
 * Usage:
 *   bench_ext_map_serve [--horizon-ms=10000] [--budget-ms=1000]
 *                       [--seed=31] [--map-json=PATH]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/config.hh"
#include "fleet/loadgen.hh"
#include "mapserve/sim.hh"

namespace {

using namespace ad;

fleet::LoadGenParams
tape(int streams, double horizonMs, std::uint64_t seed)
{
    fleet::LoadGenParams lp;
    lp.streams = streams;
    lp.horizonMs = horizonMs;
    lp.seed = seed;
    return lp;
}

mapserve::MapServeSimParams
simParams(bool prefetch)
{
    mapserve::MapServeSimParams sp;
    // A fleet-sized server DRAM tier: the working set of a few
    // hundred vehicles' routes; the 41 TB store sits behind missMs.
    sp.server.cacheTiles = 256;
    sp.driftPerMin = 2.0; // keep the update loop hot in every row.
    sp.client.prefetch = prefetch;
    return sp;
}

struct SweepRow
{
    int vehicles = 0;
    bool prefetch = false;
    mapserve::MapServeReport report;
};

void
writeJson(const char* path, const std::vector<SweepRow>& rows,
          double horizonMs, double budgetMs, std::uint64_t seed,
          double errOn, double errOff, double peakErr,
          std::int64_t pushed, std::int64_t merged,
          double compression, bool convergencePass, int stallRows,
          bool stallPass, std::int64_t baselineSteady,
          int latencyRows, bool latencyPass, bool logIdentical,
          bool summaryIdentical, std::int64_t mergeEpochs)
{
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"map_serve\",\n"
                 "  \"horizon_ms\": %.1f,\n"
                 "  \"budget_ms\": %.1f,\n"
                 "  \"seed\": %llu,\n  \"rows\": [",
                 horizonMs, budgetMs,
                 static_cast<unsigned long long>(seed));
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SweepRow& r = rows[i];
        const auto& rep = r.report;
        std::fprintf(
            f,
            "%s\n    {\"vehicles\": %d, \"prefetch\": %s, "
            "\"frames\": %lld, \"warm\": %lld, \"stalled\": %lld, "
            "\"steady_stalls\": %lld, \"cold_starts\": %lld, "
            "\"prefetch_issued\": %lld, \"prefetch_late\": %lld, "
            "\"stale_reads\": %lld, \"hit_rate\": %.6f, "
            "\"fetch_p99_ms\": %.3f, \"demand_p99_ms\": %.3f, "
            "\"stall_p99_ms\": %.3f, \"cache_hits\": %lld, "
            "\"cache_misses\": %lld, \"compression_ratio\": %.4f}",
            i ? "," : "", r.vehicles, r.prefetch ? "true" : "false",
            static_cast<long long>(rep.frames),
            static_cast<long long>(rep.framesWarm),
            static_cast<long long>(rep.framesStalled),
            static_cast<long long>(rep.steadyStalls),
            static_cast<long long>(rep.coldStarts),
            static_cast<long long>(rep.prefetchIssued),
            static_cast<long long>(rep.prefetchLate),
            static_cast<long long>(rep.staleReads),
            rep.prefetchHitRate, rep.fetchLatency.p99,
            rep.demandLatency.p99, rep.stallMs.p99,
            static_cast<long long>(rep.server.cacheHits),
            static_cast<long long>(rep.server.cacheMisses),
            rep.compressionRatio);
    }
    std::fprintf(
        f,
        "\n  ],\n"
        "  \"convergence\": {\"drift_per_min\": 2.0, "
        "\"final_err_updates_on\": %.4f, "
        "\"final_err_updates_off\": %.4f, "
        "\"peak_err_bits\": %.4f, \"updates_pushed\": %lld, "
        "\"updates_merged\": %lld, \"compression_ratio\": %.4f, "
        "\"pass\": %s},\n"
        "  \"determinism\": {\"runs\": 3, "
        "\"version_log_identical\": %s, "
        "\"summary_identical\": %s, \"merge_epochs\": %lld},\n"
        "  \"acceptance\": {\"stall_rows_checked\": %d, "
        "\"stall_pass\": %s, \"baseline_steady_stalls\": %lld, "
        "\"latency_rows_checked\": %d, \"latency_pass\": %s, "
        "\"convergence_pass\": %s, \"determinism_pass\": %s}\n}\n",
        errOn, errOff, peakErr, static_cast<long long>(pushed),
        static_cast<long long>(merged), compression,
        convergencePass ? "true" : "false",
        logIdentical ? "true" : "false",
        summaryIdentical ? "true" : "false",
        static_cast<long long>(mergeEpochs), stallRows,
        stallPass ? "true" : "false",
        static_cast<long long>(baselineSteady), latencyRows,
        latencyPass ? "true" : "false",
        convergencePass ? "true" : "false",
        (logIdentical && summaryIdentical) ? "true" : "false");
    std::fclose(f);
    char resolved[4096];
    if (path[0] != '/' && ::realpath(path, resolved))
        std::printf("wrote map-serve sweep to %s\n", resolved);
    else
        std::printf("wrote map-serve sweep to %s\n", path);
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    cfg.warnUnknownKeys({"horizon-ms", "budget-ms", "seed",
                         "map-json"});
    const double horizonMs = cfg.getDouble("horizon-ms", 10000.0);
    const double budgetMs = cfg.getDouble("budget-ms", 1000.0);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cfg.getInt("seed", 31));
    const std::string jsonPath =
        cfg.getString("map-json", "BENCH_map.json");

    bench::printHeader(
        "Map-service scaling sweep (extension)",
        "tiled prior-map serving with pose-driven prefetch, "
        "compressed transport and crowd-sourced delta updates");
    std::printf("horizon %.0f ms, demand p99 budget %.0f ms, "
                "seed %llu\n\n",
                horizonMs, budgetMs,
                static_cast<unsigned long long>(seed));
    std::printf("%9s %9s %8s %8s %7s %7s %12s %12s\n", "vehicles",
                "prefetch", "warm %", "steady", "cold", "late",
                "fetch p99", "demand p99");

    const int vehicleCounts[] = {32, 64, 256, 512};
    std::vector<SweepRow> rows;
    bool stallPass = true;
    int stallRows = 0;
    std::int64_t baselineSteady = 0;
    bool latencyPass = true;
    int latencyRows = 0;
    for (const int vehicles : vehicleCounts) {
        const fleet::ScenarioLoadGen load(
            tape(vehicles, horizonMs, seed));
        for (const bool prefetch : {true, false}) {
            mapserve::MapServeSim sim(simParams(prefetch), load);
            SweepRow row;
            row.vehicles = vehicles;
            row.prefetch = prefetch;
            row.report = sim.run();
            const auto& r = row.report;
            std::printf(
                "%9d %9s %7.2f%% %8lld %7lld %7lld %10.1fms "
                "%10.1fms%s\n",
                vehicles, prefetch ? "on" : "off",
                100.0 * r.prefetchHitRate,
                static_cast<long long>(r.steadyStalls),
                static_cast<long long>(r.coldStarts),
                static_cast<long long>(r.prefetchLate),
                r.fetchLatency.p99, r.demandLatency.p99,
                prefetch && r.steadyStalls == 0
                    ? "  [stall-free]"
                    : "");
            if (prefetch) {
                ++stallRows;
                if (r.steadyStalls != 0)
                    stallPass = false;
                if (vehicles >= 256) {
                    ++latencyRows;
                    if (r.demandLatency.p99 > budgetMs)
                        latencyPass = false;
                }
            } else if (vehicles >= 256) {
                baselineSteady += r.steadyStalls;
            }
            rows.push_back(std::move(row));
        }
    }
    // The zero bar proves nothing if the workload never stalls a
    // prefetch-less vehicle: the baseline must stall steadily.
    if (baselineSteady == 0)
        stallPass = false;
    std::printf("\nstall bar: %d prefetch-on rows steady-stall-free, "
                "no-prefetch baseline %lld steady stalls -> %s\n",
                stallRows, static_cast<long long>(baselineSteady),
                stallPass ? "PASS" : "FAIL");
    std::printf("latency bar: demand p99 <= %.0f ms on %d rows at "
                ">= 256 vehicles -> %s\n",
                budgetMs, latencyRows, latencyPass ? "PASS" : "FAIL");

    // Convergence: the same drifting world with the update loop on
    // and off. Updates must end with strictly less map error, over
    // a compressed transport that actually compresses.
    double errOn = 0.0, errOff = 0.0, peakErr = 0.0;
    double compression = 0.0;
    std::int64_t pushed = 0, merged = 0;
    {
        const fleet::ScenarioLoadGen load(tape(24, horizonMs, seed));
        const mapserve::MapServeReport on =
            mapserve::MapServeSim(simParams(true), load).run();
        mapserve::MapServeSimParams frozen = simParams(true);
        frozen.updates = false;
        const mapserve::MapServeReport off =
            mapserve::MapServeSim(frozen, load).run();
        errOn = on.finalErrBits;
        errOff = off.finalErrBits;
        peakErr = on.peakErrBits;
        pushed = on.updatesPushed;
        merged = on.server.updatesMerged;
        compression = on.compressionRatio;
    }
    const bool convergencePass =
        errOn < errOff && pushed > 0 && merged > 0 &&
        compression > 1.0;
    std::printf("convergence: final err %.2f bits with updates vs "
                "%.2f frozen (%lld pushed, %lld merged), %.2fx "
                "compression -> %s\n",
                errOn, errOff, static_cast<long long>(pushed),
                static_cast<long long>(merged), compression,
                convergencePass ? "PASS" : "FAIL");

    // Determinism: three runs over the same seeded tape must agree
    // bit for bit on the version-stamp log and the run summary, and
    // the compared log must be non-empty (drift keeps merges hot).
    std::vector<std::string> logs, summaries;
    std::int64_t mergeEpochs = 0;
    {
        const fleet::ScenarioLoadGen load(tape(16, horizonMs, seed));
        for (int run = 0; run < 3; ++run) {
            const mapserve::MapServeReport r =
                mapserve::MapServeSim(simParams(true), load).run();
            logs.push_back(r.versionLog);
            summaries.push_back(r.summaryString());
            mergeEpochs = r.server.mergeEpochs;
        }
    }
    const bool logIdentical = logs[0] == logs[1] &&
                              logs[1] == logs[2] &&
                              !logs[0].empty();
    const bool summaryIdentical =
        summaries[0] == summaries[1] && summaries[1] == summaries[2];
    std::printf("determinism over 3 runs: version log %s, "
                "summary %s\n",
                logIdentical ? "identical" : "DIVERGED",
                summaryIdentical ? "identical" : "DIVERGED");

    const bool pass = stallPass && latencyPass && convergencePass &&
                      logIdentical && summaryIdentical;
    std::printf(
        "\nverdict: %s\n",
        pass ? "PASS: prefetch eliminates steady-state cold-tile "
               "stalls, demand p99 holds the budget at fleet scale, "
               "updates converge the drifting map, and the service "
               "is bit-reproducible"
             : "FAIL: a map-service acceptance bar was missed");

    writeJson(jsonPath.c_str(), rows, horizonMs, budgetMs, seed,
              errOn, errOff, peakErr, pushed, merged, compression,
              convergencePass, stallRows, stallPass, baselineSteady,
              latencyRows, latencyPass, logIdentical,
              summaryIdentical, mergeEpochs);
    return pass ? 0 : 1;
}
