/**
 * @file
 * Reproduces Figure 6: mean, 99th- and 99.99th-percentile latency of
 * every algorithmic component of the end-to-end system on the
 * multicore CPU platform. Each of DET, TRA and LOC alone exceeds the
 * 100 ms end-to-end budget, identifying the three computational
 * bottlenecks; FUSION and MOTPLAN are negligible.
 *
 * Paper anchors (p99.99): DET 7734.4 ms, TRA 1334.0 ms, LOC 294.2 ms,
 * FUSION ~0.1 ms, MOTPLAN ~0.5 ms.
 *
 * --threads=N applies the parallel kernel layer's Amdahl speedup to
 * each component (accel::cpuParallelSpeedup); the default 1 is the
 * paper's measured anchor. Even generous multicore scaling leaves
 * every bottleneck engine far above the 100 ms budget.
 *
 * --int8=1 additionally applies the measured quantized-DNN speedup
 * (accel::cpuQuantizedSpeedup, anchored to BENCH_quant.json): the
 * precision lever composes with the thread lever, and still leaves
 * DET and TRA orders of magnitude over budget -- narrowing the
 * arithmetic alone does not rescue the CPU.
 */

#include <cstdio>

#include "accel/models.hh"
#include "bench_common.hh"
#include "common/config.hh"
#include "obs/obs.hh"

int
main(int argc, char** argv)
{
    using namespace ad;
    using accel::Component;
    using accel::Platform;
    const Config cfg = Config::fromArgs(argc, argv);
    {
        auto known = obs::knownConfigKeys();
        known.push_back("threads");
        known.push_back("int8");
        cfg.warnUnknownKeys(known);
    }
    const obs::ObsOptions obsOpt = obs::setupFromConfig(cfg);
    const int threads = cfg.getInt("threads", 1);
    const bool int8 = cfg.getBool("int8", false);
    bench::printHeader("Figure 6",
                       "per-component latency on the multicore CPU");
    if (threads > 1)
        std::printf("(modeled with %d kernel-layer threads)\n", threads);
    if (int8)
        std::printf("(modeled with the int8 quantized DNN path)\n");

    Rng rng(6);
    const auto& w = accel::standardWorkloadRef();
    const auto& cpu = accel::platformModel(Platform::Cpu);

    std::printf("%-8s %12s %12s %14s %s\n", "engine", "mean(ms)",
                "p99(ms)", "p99.99(ms)", "exceeds 100 ms budget?");
    for (const auto c :
         {Component::Det, Component::Tra, Component::Loc,
          Component::Fusion, Component::MotPlan}) {
        obs::TraceSpan span(obs::tracer(), accel::componentName(c),
                            "fig6");
        double speedup = accel::cpuParallelSpeedup(c, threads);
        if (int8)
            speedup *= accel::cpuQuantizedSpeedup(c);
        const auto dist = cpu.latency(c, w).scaledBy(1.0 / speedup);
        const auto s = dist.summarize(200000, rng);
        if (obs::metricsEnabled()) {
            const std::string base =
                std::string("fig6.") + accel::componentName(c);
            obs::metrics().gauge(base + ".mean_ms").set(s.mean);
            obs::metrics().gauge(base + ".p9999_ms").set(s.p9999);
        }
        std::printf("%-8s %12.1f %12.1f %14.1f %s\n",
                    accel::componentName(c), s.mean, s.p99, s.p9999,
                    s.p9999 > 100.0 ? "YES -> bottleneck" : "no");
    }

    std::printf("\nDET, TRA and LOC each exceed the end-to-end budget "
                "alone: conventional\nmulticore CPUs cannot meet the "
                "design constraints (Section 3.2).\n");
    obs::finish(obsOpt);
    return 0;
}
