/**
 * @file
 * Ablation: the warm tracker pool (Section 3.1.2). The paper launches
 * a pool of trackers at startup "to avoid the initialization
 * overhead". This bench measures, on the real implementation, the
 * cost of serving a new tracking request from a warm pool versus
 * constructing a tracker on demand (network allocation + constructed
 * weights), and the eviction path that returns trackers to the pool.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/time.hh"
#include "track/pool.hh"

int
main()
{
    using namespace ad;
    bench::printHeader("Ablation",
                       "tracker pool warm start vs on-demand "
                       "construction");

    track::TrackerParams tp;
    tp.cropSize = 63;
    tp.width = 0.25;

    Image frame(320, 240, 70);
    frame.fillRect(BBox(100, 100, 40, 40), 220);
    const BBox target(100, 100, 40, 40);

    // Cold path: construct + init per request.
    constexpr int kRequests = 8;
    Stopwatch coldWatch;
    for (int i = 0; i < kRequests; ++i) {
        track::TrackerParams p = tp;
        p.seed = 100 + i;
        track::GoturnTracker tracker(p);
        tracker.init(frame, target);
    }
    const double coldMs = coldWatch.elapsedMs() / kRequests;

    // Warm path: the pool pre-constructs instances; a request is just
    // init() on an idle tracker.
    track::PoolParams pp;
    pp.poolSize = kRequests;
    pp.tracker = tp;
    Stopwatch poolBuild;
    track::TrackerPool pool(pp);
    const double buildMs = poolBuild.elapsedMs();

    // One burst of detections: every request is served by an idle
    // tracker via init() alone (no construction, no coasting runs).
    std::vector<detect::Detection> burst;
    for (int i = 0; i < kRequests; ++i) {
        detect::Detection d;
        d.box = BBox(20.0 + i * 36, 100, 30, 30);
        d.confidence = 0.9;
        burst.push_back(d);
    }
    Stopwatch warmWatch;
    pool.update(frame, burst);
    const double warmMs = warmWatch.elapsedMs() / kRequests;

    std::printf("pool construction (one-time, %d trackers): %.1f ms\n",
                kRequests, buildMs);
    std::printf("per-request cost:\n");
    std::printf("  on-demand construction: %8.2f ms\n", coldMs);
    std::printf("  warm pool (init only):  %8.2f ms  -> %.0fx cheaper\n",
                warmMs, coldMs / warmMs);
    std::printf("\nthe pool moves tracker construction off the "
                "latency-critical frame path, exactly\nthe rationale "
                "of Section 3.1.2.\n");
    return 0;
}
