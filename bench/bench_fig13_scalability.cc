/**
 * @file
 * Reproduces Figure 13: end-to-end 99.99th-percentile latency as a
 * function of camera resolution (HHD through QHD) for the accelerated
 * configurations. Spatial work (convolutions, feature extraction)
 * scales with pixel count while the tracker's FC stack does not; the
 * paper's finding is that some GPU/ASIC configurations still meet the
 * 100 ms budget at FHD but none survive QHD (Finding 6).
 */

#include <cstdio>

#include "bench_common.hh"
#include "sensors/camera.hh"

int
main()
{
    using namespace ad;
    using namespace ad::pipeline;
    bench::printHeader("Figure 13",
                       "end-to-end p99.99 latency (ms) vs camera "
                       "resolution");

    Rng rng(13);
    SystemModel model;
    constexpr double kKittiPixels = 1242.0 * 375.0;
    constexpr int kSamples = 50000;

    // Configurations worth scaling (accelerated ones; CPU is off the
    // chart at every resolution).
    std::vector<SystemConfig> configs;
    for (const auto& c : bench::paperConfigs())
        if (c.det != accel::Platform::Cpu)
            configs.push_back(c);

    std::printf("%-28s", "configuration");
    for (const auto r : sensors::allResolutions())
        std::printf(" %11s", sensors::resolutionSpec(r).name);
    std::printf("\n");

    int meetsAtFhd = 0;
    int meetsAtQhd = 0;
    for (auto& config : configs) {
        std::printf("%-28s", config.name().c_str());
        for (const auto r : sensors::allResolutions()) {
            const auto spec = sensors::resolutionSpec(r);
            config.resolutionScale =
                spec.width * static_cast<double>(spec.height) /
                kKittiPixels;
            const auto s =
                model.sampleEndToEnd(config, kSamples, rng);
            std::printf(" %10.1f%s", s.p9999,
                        s.p9999 <= 100.0 ? " " : "*");
            if (r == sensors::Resolution::FHD && s.p9999 <= 100.0)
                ++meetsAtFhd;
            if (r == sensors::Resolution::QHD && s.p9999 <= 100.0)
                ++meetsAtQhd;
        }
        std::printf("\n");
    }

    std::printf("\n(* = exceeds the 100 ms tail budget)\n");
    std::printf("%d configurations meet the budget at FHD; %d at QHD "
                "(paper: some at FHD, none at QHD).\n",
                meetsAtFhd, meetsAtQhd);
    std::printf("computational capability, not sensing, caps the "
                "accuracy gains of higher-resolution\ncameras "
                "(Finding 6).\n");
    return 0;
}
