/**
 * @file
 * Reproduces Figure 7: the cycle breakdown of the three bottleneck
 * engines, *measured* by executing the real algorithm implementations
 * on this host -- the DNN share of DET and TRA and the
 * feature-extraction share of LOC.
 *
 * Paper anchors: DNN is 99.4% of DET and 99.0% of TRA; FE is 85.9% of
 * LOC. (Our reduced-scale nets run a shallower decode pipeline on a
 * slower host, so the exact shares shift a little; the shape -- each
 * engine overwhelmingly dominated by its accelerable kernel -- is the
 * reproduced result.)
 *
 * Usage: bench_fig7_cycle_breakdown [--frames=20]
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/config.hh"
#include "pipeline/pipeline.hh"
#include "sensors/scenario.hh"
#include "slam/mapping.hh"

int
main(int argc, char** argv)
{
    using namespace ad;
    const Config cfg = Config::fromArgs(argc, argv);
    const int frames = cfg.getInt("frames", 20);
    bench::printHeader("Figure 7",
                       "cycle breakdown of DET / TRA / LOC (measured "
                       "on this host)");

    Rng rng(7);
    sensors::ScenarioParams sp;
    sp.roadLength = 200.0;
    sp.vehicles = 6;
    sensors::Scenario scenario = sensors::makeHighwayScenario(rng, sp);
    sensors::Camera camera(sensors::Resolution::HHD);
    const slam::PriorMap map =
        slam::buildPriorMap(scenario.world, camera, 1);

    pipeline::PipelineParams params;
    params.detector.inputSize = 224;
    params.detector.width = 0.5; // deeper net: closer to paper scale
    params.trackerPool.tracker.cropSize = 63;
    params.trackerPool.tracker.width = 0.5; // paper-proportioned DNN
    params.trackerPool.alwaysRunTracker = true;
    params.laneCenterY = scenario.world.road().laneCenter(1);
    pipeline::Pipeline pipe(&map, &camera, nullptr, params);

    sensors::World world = scenario.world;
    Pose2 ego = scenario.ego.pose;
    pipe.reset(ego, {scenario.ego.speed, 0},
               {sp.roadLength - 10, params.laneCenterY});

    for (int i = 0; i < frames; ++i) {
        world.step(0.1);
        ego.pos.x += scenario.ego.speed * 0.1;
        if (ego.pos.x > world.road().length - 25)
            ego.pos.x = 25;
        const sensors::Frame frame = camera.render(world, ego);
        pipe.processFrame(frame.image, 0.1, scenario.ego.speed);
    }

    const auto& c = pipe.cycleBreakdown();
    const double detTotal = c.detDnnMs + c.detOtherMs;
    const double traTotal = c.traDnnMs + c.traOtherMs;
    const double locTotal = c.locFeMs + c.locOtherMs;

    std::printf("%-8s %-22s %10s %8s\n", "engine", "portion", "ms",
                "share");
    std::printf("%-8s %-22s %10.1f %7.1f%%\n", "DET", "DNN", c.detDnnMs,
                100.0 * c.detDnnMs / detTotal);
    std::printf("%-8s %-22s %10.1f %7.1f%%\n", "", "Others (decode/NMS)",
                c.detOtherMs, 100.0 * c.detOtherMs / detTotal);
    std::printf("%-8s %-22s %10.1f %7.1f%%\n", "TRA", "DNN", c.traDnnMs,
                100.0 * c.traDnnMs / traTotal);
    std::printf("%-8s %-22s %10.1f %7.1f%%\n", "",
                "Others (crops/assoc)", c.traOtherMs,
                100.0 * c.traOtherMs / traTotal);
    std::printf("%-8s %-22s %10.1f %7.1f%%\n", "LOC",
                "Feature Extraction", c.locFeMs,
                100.0 * c.locFeMs / locTotal);
    std::printf("%-8s %-22s %10.1f %7.1f%%\n", "",
                "Others (match/solve)", c.locOtherMs,
                100.0 * c.locOtherMs / locTotal);

    std::printf("\npaper anchors: DNN 99.4%% of DET, 99.0%% of TRA; FE "
                "85.9%% of LOC.\nThe accelerable kernels dominate -> "
                "ideal acceleration candidates (Section 3.2).\n");
    return 0;
}
