/**
 * @file
 * Ablation: EIE-style FC compression (the paper's TRA ASIC mechanism,
 * reference [23]). GOTURN's FC stack is ~436 MB of weights -- the
 * transfer-bound term that pins FPGA TRA at 536 ms. Magnitude pruning
 * plus CSR storage shrinks footprint and multiplies; this bench
 * measures, on a real (reduced-width) FC stack: density, compressed
 * size, output error, and measured forward time -- then applies each
 * compression ratio to the full-scale workload's modeled FPGA latency.
 */

#include <cstdio>

#include "accel/models.hh"
#include "bench_common.hh"
#include "common/random.hh"
#include "common/time.hh"
#include "nn/sparse.hh"

int
main()
{
    using namespace ad;
    using namespace ad::nn;
    bench::printHeader("Ablation",
                       "EIE-style FC pruning on the tracker stack");

    // A real (width-reduced) GOTURN-style FC layer to measure.
    Rng rng(9);
    const int inF = 2048;
    const int outF = 1024;
    FullyConnected dense("fc6", inF, outF);
    // Realistic trained-weight distribution: most magnitudes small.
    for (auto& w : dense.weights())
        w = static_cast<float>(rng.normal(0.0, 0.02));
    Tensor probe(inF, 1, 1);
    for (int i = 0; i < inF; ++i)
        probe.data()[i] = static_cast<float>(rng.uniform(0, 1));

    // Dense baseline timing.
    Stopwatch denseWatch;
    for (int i = 0; i < 20; ++i)
        dense.forward(probe);
    const double denseMs = denseWatch.elapsedMs() / 20;
    const double denseMb =
        dense.profile({inF, 1, 1}).weightBytes / 1e6;

    std::printf("dense baseline: %.1f MB, %.2f ms/forward (measured, "
                "%dx%d)\n\n", denseMb, denseMs, outF, inF);
    std::printf("%-10s %8s %12s %10s %12s %16s\n", "threshold",
                "density", "size (MB)", "error", "fwd (ms)",
                "FPGA TRA (ms)");

    const accel::FpgaModel fpga;
    for (const float threshold : {0.0f, 0.01f, 0.02f, 0.04f, 0.08f}) {
        const SparseFullyConnected sparse("fc6s", dense, threshold);
        const double err = pruningError(dense, threshold, probe);

        Stopwatch watch;
        for (int i = 0; i < 20; ++i)
            sparse.forward(probe);
        const double ms = watch.elapsedMs() / 20;

        // Apply this compression ratio to the full-scale workload's
        // FC layers and re-model FPGA TRA latency.
        accel::Workload w = accel::standardWorkloadRef();
        for (auto& layer : w.tra.layers) {
            if (layer.kind == LayerKind::FullyConnected) {
                layer.weightBytes = static_cast<std::uint64_t>(
                    layer.weightBytes * (sparse.compressedBytes() /
                                         (denseMb * 1e6)));
                layer.flops = static_cast<std::uint64_t>(
                    layer.flops * sparse.density());
            }
        }
        const double fpgaTra =
            fpga.baseLatencyMs(accel::Component::Tra, w);

        std::printf("%-10.2f %7.1f%% %12.2f %9.4f %12.3f %16.1f\n",
                    threshold, 100.0 * sparse.density(),
                    sparse.compressedBytes() / 1e6, err, ms, fpgaTra);
    }

    std::printf("\nnote the threshold-0 row: CSR at full density "
                "costs ~2x dense storage (4 B value +\n4 B index per "
                "weight) -- compression only pays once pruning bites. "
                "Past ~0.02 the\nnear-zero mass of the FC stack "
                "vanishes and with it most of the 436 MB transfer\n"
                "that pins FPGA TRA at 536 ms -- the compression EIE "
                "banks on to reach the paper's\n1.8 ms TRA ASIC "
                "latency (at ~0.04+ the probe error shows why "
                "retraining after\npruning is mandatory).\n");
    return 0;
}
