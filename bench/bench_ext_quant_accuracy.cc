/**
 * @file
 * Extension bench: INT8 quantized inference -- accuracy vs latency.
 * Reproduces the precision corner of the paper's accelerator study
 * (Section 4.2: the ASIC/FPGA designs win largely through narrow
 * arithmetic) on the host CPU and measures what the quantized path
 * costs in output quality:
 *
 *  - kernel: fp32 packed GEMM vs int8 GEMM at 512^3, serial and
 *    sharded (the acceptance bar: int8 >= 1.8x fp32 at 512^3);
 *  - DET: boxes from the fp32 and int8 detectors over rendered
 *    scenes -- IoU agreement between the two paths, IoU vs ground
 *    truth for each, and the DNN latency split;
 *  - TRA: fp32-vs-int8 tracker center distance over a short pursuit
 *    plus the DNN latency split;
 *  - serving: the measured NnBatchEngine multi-stream configuration
 *    (adserve --measured) run fp32 and int8 -- goodput and admitted
 *    tail latency side by side;
 *  - determinism: FNV-1a checksums of the int8 GEMM output and
 *    detector boxes at 1/2/8 threads (must be bitwise identical);
 *  - fusion: the DET network fused+arena-planned vs the unfused
 *    allocating reference in both precisions -- latency, bitwise
 *    equality at 1/2/8 threads, arena footprint (via the
 *    MetricRegistry gauges Network::plan publishes) and the
 *    steady-state allocation count, which must be zero.
 *
 * Emits BENCH_quant.json (override with --quant-json=PATH). The DNN
 * speedups measured here anchor accel::cpuQuantizedSpeedup -- the
 * modeled quantization constants cite this artifact.
 *
 * Usage:
 *   bench_ext_quant_accuracy [--quant-json=PATH] [--seed=1]
 *                            [--serve-frames=100] [--reps=5]
 */

#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/config.hh"
#include "common/random.hh"
#include "common/time.hh"
#include "detect/yolo.hh"
#include "nn/fusion.hh"
#include "nn/gemm.hh"
#include "nn/gemm_int8.hh"
#include "nn/quant.hh"
#include "obs/metrics.hh"
#include "sensors/camera.hh"
#include "serve/serve.hh"
#include "track/goturn.hh"

namespace {

using namespace ad;

std::uint64_t
fnv1a(const void* data, std::size_t bytes)
{
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

double
bestOf(int reps, const std::function<void()>& fn)
{
    double best = 0;
    for (int r = 0; r < reps; ++r) {
        Stopwatch watch;
        fn();
        const double ms = watch.elapsedMs();
        if (r == 0 || ms < best)
            best = ms;
    }
    return best;
}

/** One (threads, fp32 ms, int8 ms) row of the kernel sweep. */
struct GemmRow
{
    int threads = 1;
    double fp32Ms = 0;
    double int8Ms = 0;
};

struct GemmResults
{
    std::vector<GemmRow> rows;
    double serialSpeedup = 0; ///< the acceptance-bar number.
};

GemmResults
runGemmSweep(int reps)
{
    constexpr std::size_t n = 512;
    Rng rng(1);
    std::vector<float> a(n * n);
    std::vector<float> b(n * n);
    std::vector<float> c(n * n);
    for (auto& v : a)
        v = static_cast<float>(rng.uniform(-1, 1));
    for (auto& v : b)
        v = static_cast<float>(rng.uniform(-1, 1));
    std::vector<std::int16_t> qa(n * n);
    std::vector<std::int8_t> qb(n * n);
    for (auto& v : qa)
        v = static_cast<std::int16_t>(rng.uniformInt(-127, 127));
    for (auto& v : qb)
        v = static_cast<std::int8_t>(rng.uniformInt(-127, 127));
    std::vector<std::int32_t> qc(n * n);

    GemmResults res;
    std::printf("[gemm] %zux%zux%zu, int8 isa=%s\n", n, n, n,
                nn::int8KernelIsa());
    // Warm up caches and let the clock governor settle before the
    // first timed cell; without this the serial fp32 reading lands
    // mid-frequency-ramp and inflates the quoted speedup.
    for (int r = 0; r < 10; ++r)
        nn::gemm(n, n, n, a.data(), b.data(), c.data(),
                 nn::kernelContext(1));
    for (const int threads : {1, 2, 4, 8}) {
        const nn::KernelContext ctx = nn::kernelContext(threads);
        GemmRow row;
        row.threads = threads;
        row.fp32Ms = bestOf(reps, [&] {
            std::fill(c.begin(), c.end(), 0.0f);
            nn::gemm(n, n, n, a.data(), b.data(), c.data(), ctx);
        });
        row.int8Ms = bestOf(reps, [&] {
            std::fill(qc.begin(), qc.end(), 0);
            nn::gemmInt8(n, n, n, qa.data(), qb.data(), qc.data(), ctx);
        });
        res.rows.push_back(row);
        std::printf("  threads=%d fp32=%.3f ms int8=%.3f ms "
                    "speedup=%.2fx\n",
                    threads, row.fp32Ms, row.int8Ms,
                    row.fp32Ms / row.int8Ms);
    }
    res.serialSpeedup = res.rows[0].fp32Ms / res.rows[0].int8Ms;
    return res;
}

/** Checksums of the int8 GEMM output across thread counts. */
struct DeterminismResults
{
    std::vector<std::uint64_t> gemmChecksums; ///< at 1/2/8 threads.
    bool gemmIdentical = false;
    bool detIdentical = false;
};

std::vector<sensors::Frame>
renderScenes(sensors::Camera& camera)
{
    std::vector<sensors::Frame> frames;
    const struct
    {
        sensors::ObjectClass cls;
        double distance;
        double lateral;
    } setups[] = {
        {sensors::ObjectClass::Vehicle, 12.0, 0.0},
        {sensors::ObjectClass::Vehicle, 20.0, 1.0},
        {sensors::ObjectClass::Pedestrian, 9.0, -1.0},
        {sensors::ObjectClass::TrafficSign, 11.0, 1.5},
        {sensors::ObjectClass::Vehicle, 28.0, -0.5},
        {sensors::ObjectClass::Bicycle, 10.0, 0.5},
    };
    for (const auto& s : setups) {
        sensors::World world;
        sensors::Actor a;
        a.cls = s.cls;
        a.motion = sensors::MotionKind::Stationary;
        a.pose = Pose2(50.0 + s.distance,
                       world.road().laneCenter(1) + s.lateral, 0.0);
        if (s.cls == sensors::ObjectClass::Pedestrian) {
            a.length = 0.5;
            a.width = 0.6;
            a.height = 1.75;
        } else if (s.cls == sensors::ObjectClass::Bicycle) {
            a.length = 1.8;
            a.width = 0.8;
            a.height = 1.7;
        } else if (s.cls == sensors::ObjectClass::TrafficSign) {
            a.length = 0.8;
            a.width = 0.9;
            a.height = 2.2;
        }
        world.addActor(a);
        frames.push_back(camera.render(
            world, Pose2(50.0, world.road().laneCenter(1), 0)));
    }
    return frames;
}

struct DetResults
{
    int frames = 0;
    int fp32Dets = 0;
    int int8Dets = 0;
    double meanMatchIou = 0;  ///< int8 boxes vs fp32 boxes.
    double fp32TruthIou = 0;  ///< fp32 boxes vs ground truth.
    double int8TruthIou = 0;  ///< int8 boxes vs ground truth.
    double fp32DnnMs = 0;     ///< mean forward-pass ms per frame.
    double int8DnnMs = 0;
};

DetResults
runDetComparison(const std::vector<sensors::Frame>& frames)
{
    detect::DetectorParams dp;
    dp.inputSize = 160;
    detect::YoloDetector fp32(dp);
    dp.precision = nn::Precision::Int8;
    detect::YoloDetector int8(dp);

    DetResults res;
    res.frames = static_cast<int>(frames.size());
    double matchIouSum = 0;
    int matchCount = 0;
    double fp32Truth = 0, int8Truth = 0;
    int truthCount = 0;
    detect::DetectorTimings fp32Times, int8Times;
    for (const auto& frame : frames) {
        const auto refDets = fp32.detect(frame.image, &fp32Times);
        const auto quantDets = int8.detect(frame.image, &int8Times);
        res.fp32Dets += static_cast<int>(refDets.size());
        res.int8Dets += static_cast<int>(quantDets.size());
        for (const auto& ref : refDets) {
            double best = 0;
            for (const auto& q : quantDets)
                best = std::max(best, ref.box.iou(q.box));
            matchIouSum += best;
            ++matchCount;
        }
        for (const auto& truth : frame.truth) {
            double bestRef = 0, bestQuant = 0;
            for (const auto& d : refDets)
                bestRef = std::max(bestRef, d.box.iou(truth.box));
            for (const auto& d : quantDets)
                bestQuant = std::max(bestQuant, d.box.iou(truth.box));
            fp32Truth += bestRef;
            int8Truth += bestQuant;
            ++truthCount;
        }
    }
    res.meanMatchIou = matchCount ? matchIouSum / matchCount : 1.0;
    res.fp32TruthIou = truthCount ? fp32Truth / truthCount : 0.0;
    res.int8TruthIou = truthCount ? int8Truth / truthCount : 0.0;
    res.fp32DnnMs = fp32Times.dnnMs / static_cast<int>(frames.size());
    res.int8DnnMs = int8Times.dnnMs / static_cast<int>(frames.size());
    std::printf("[det] %d frames: match IoU %.4f (degradation %.2f%%), "
                "truth IoU fp32 %.3f int8 %.3f, dnn %.2f -> %.2f ms "
                "(%.2fx)\n",
                res.frames, res.meanMatchIou,
                100.0 * (1.0 - res.meanMatchIou), res.fp32TruthIou,
                res.int8TruthIou, res.fp32DnnMs, res.int8DnnMs,
                res.fp32DnnMs / res.int8DnnMs);
    return res;
}

bool
detDeterministicAcrossThreads(const sensors::Frame& frame)
{
    detect::DetectorParams dp;
    dp.inputSize = 160;
    dp.precision = nn::Precision::Int8;
    dp.threads = 1;
    detect::YoloDetector serial(dp);
    const auto ref = serial.detect(frame.image);
    for (const int threads : {2, 8}) {
        dp.threads = threads;
        detect::YoloDetector parallel(dp);
        const auto got = parallel.detect(frame.image);
        if (got.size() != ref.size())
            return false;
        for (std::size_t i = 0; i < ref.size(); ++i) {
            if (ref[i].box.x != got[i].box.x ||
                ref[i].box.y != got[i].box.y ||
                ref[i].box.w != got[i].box.w ||
                ref[i].box.h != got[i].box.h ||
                ref[i].confidence != got[i].confidence)
                return false;
        }
    }
    return true;
}

DeterminismResults
runDeterminism(const sensors::Frame& frame)
{
    constexpr std::size_t n = 512;
    Rng rng(3);
    std::vector<std::int16_t> qa(n * n);
    std::vector<std::int8_t> qb(n * n);
    for (auto& v : qa)
        v = static_cast<std::int16_t>(rng.uniformInt(-127, 127));
    for (auto& v : qb)
        v = static_cast<std::int8_t>(rng.uniformInt(-127, 127));

    DeterminismResults res;
    for (const int threads : {1, 2, 8}) {
        std::vector<std::int32_t> qc(n * n, 0);
        nn::gemmInt8(n, n, n, qa.data(), qb.data(), qc.data(),
                     nn::kernelContext(threads));
        res.gemmChecksums.push_back(
            fnv1a(qc.data(), qc.size() * sizeof(std::int32_t)));
    }
    res.gemmIdentical =
        res.gemmChecksums[0] == res.gemmChecksums[1] &&
        res.gemmChecksums[0] == res.gemmChecksums[2];
    res.detIdentical = detDeterministicAcrossThreads(frame);
    std::printf("[determinism] gemm checksum %016llx at 1/2/8 threads: "
                "%s; det boxes: %s\n",
                static_cast<unsigned long long>(res.gemmChecksums[0]),
                res.gemmIdentical ? "identical" : "DIVERGED",
                res.detIdentical ? "identical" : "DIVERGED");
    return res;
}

struct TraResults
{
    int steps = 0;
    double meanCenterErrorPx = 0; ///< int8 vs fp32 center distance.
    double fp32DnnMs = 0;
    double int8DnnMs = 0;
};

TraResults
runTraComparison(sensors::Camera& camera)
{
    // A short pursuit: the ego closes on a stationary vehicle, the
    // trackers follow it across frames.
    sensors::World world;
    sensors::Actor a;
    a.cls = sensors::ObjectClass::Vehicle;
    a.motion = sensors::MotionKind::Stationary;
    a.pose = Pose2(65.0, world.road().laneCenter(1), 0.0);
    world.addActor(a);
    std::vector<sensors::Frame> frames;
    for (int i = 0; i < 6; ++i)
        frames.push_back(camera.render(
            world,
            Pose2(50.0 + 0.4 * i, world.road().laneCenter(1), 0)));

    track::TrackerParams tp;
    track::GoturnTracker fp32(tp);
    tp.precision = nn::Precision::Int8;
    track::GoturnTracker int8(tp);
    fp32.init(frames[0].image, frames[0].truth[0].box);
    int8.init(frames[0].image, frames[0].truth[0].box);

    TraResults res;
    track::TrackTimings fp32Times, int8Times;
    double errSum = 0;
    for (std::size_t i = 1; i < frames.size(); ++i) {
        const BBox ref = fp32.track(frames[i].image, &fp32Times);
        const BBox got = int8.track(frames[i].image, &int8Times);
        errSum += std::hypot(ref.cx() - got.cx(), ref.cy() - got.cy());
        ++res.steps;
    }
    res.meanCenterErrorPx = errSum / res.steps;
    res.fp32DnnMs = fp32Times.dnnMs / res.steps;
    res.int8DnnMs = int8Times.dnnMs / res.steps;
    std::printf("[tra] %d steps: center error %.3f px, dnn %.2f -> "
                "%.2f ms (%.2fx)\n",
                res.steps, res.meanCenterErrorPx, res.fp32DnnMs,
                res.int8DnnMs, res.fp32DnnMs / res.int8DnnMs);
    return res;
}

/** Fused-lowering + arena-planner comparison (the nn.fuse/nn.arena
 *  knobs): DET network at the bench's 160 input in both precisions,
 *  fused+planned vs the unfused allocating reference. */
struct FusionResults
{
    std::size_t layersFused = 0;   ///< activations folded (fp32 DET).
    std::size_t directConvs = 0;   ///< convs lowered to direct.
    double detUnfusedMs = 0;       ///< fp32 forward, reference path.
    double detFusedMs = 0;         ///< fp32 forwardArena, lowered.
    double detInt8UnfusedMs = 0;
    double detInt8FusedMs = 0;
    bool bitwiseIdentical = true;  ///< fused == unfused at 1/2/8 thr.
    std::size_t detArenaBytes = 0;  ///< via MetricRegistry gauge.
    std::size_t detArenaValues = 0; ///< via MetricRegistry gauge.
    double allocEventsPerFrame = 0; ///< steady-state tensor allocs.
};

FusionResults
runFusionComparison(int reps)
{
    const int inputSize = 160;
    const auto buildDet = [&](nn::Precision precision) {
        nn::Network net = nn::buildNetwork(
            nn::detectorSpec(inputSize, 0.25,
                             sensors::kNumObjectClasses));
        Rng rng(1);
        nn::initDetectorWeights(net, rng);
        if (precision == nn::Precision::Int8) {
            std::vector<nn::Tensor> samples;
            Rng calRng(0xAD0C0DE5ULL);
            for (int s = 0; s < 2; ++s) {
                nn::Tensor t(1, inputSize, inputSize);
                for (std::size_t i = 0; i < t.size(); ++i)
                    t.data()[i] =
                        static_cast<float>(calRng.uniform());
                samples.push_back(std::move(t));
            }
            nn::quantizeNetwork(net, samples);
        }
        return net;
    };

    nn::Tensor input(1, inputSize, inputSize);
    Rng inRng(23);
    for (std::size_t i = 0; i < input.size(); ++i)
        input.data()[i] = static_cast<float>(inRng.uniform());

    FusionResults res;
    obs::metrics().setEnabled(true);
    for (const nn::Precision precision :
         {nn::Precision::Fp32, nn::Precision::Int8}) {
        nn::Network unfused = buildDet(precision);
        nn::Network fused = buildDet(precision);
        const nn::LoweringReport report =
            nn::lowerNetwork(fused, {1, inputSize, inputSize});
        fused.plan({1, inputSize, inputSize});
        if (precision == nn::Precision::Fp32) {
            res.layersFused = report.fusedActivations;
            res.directConvs = report.directConvs;
            res.detArenaBytes = static_cast<std::size_t>(
                obs::metrics().gauge("nn.det-yolo.arena_bytes")
                    .value());
            res.detArenaValues = static_cast<std::size_t>(
                obs::metrics().gauge("nn.det-yolo.arena_values")
                    .value());
        }

        // Bitwise contract at 1, 2 and max threads.
        const nn::Tensor expected = unfused.forward(input);
        for (const int threads : {1, 2, 8}) {
            const nn::KernelContext ctx = nn::kernelContext(threads);
            const nn::Tensor ref = unfused.forward(input, ctx);
            const nn::Tensor& got = fused.forwardArena(input, ctx);
            if (ref.size() != expected.size() ||
                got.size() != expected.size() ||
                std::memcmp(ref.data(), expected.data(),
                            expected.size() * sizeof(float)) != 0 ||
                std::memcmp(got.data(), expected.data(),
                            expected.size() * sizeof(float)) != 0)
                res.bitwiseIdentical = false;
        }

        // Steady-state allocation audit: after one settling frame the
        // planned path must perform zero tensor/scratch allocations.
        (void)fused.forwardArena(input);
        const std::uint64_t allocBefore = nn::allocEventCount();
        const int auditFrames = 5;
        for (int i = 0; i < auditFrames; ++i)
            (void)fused.forwardArena(input);
        res.allocEventsPerFrame +=
            static_cast<double>(nn::allocEventCount() - allocBefore) /
            auditFrames;

        // Interleave the two variants rep-by-rep so background load
        // hits both equally; best-of then cancels transient noise
        // instead of attributing it to whichever phase ran second.
        double unfusedMs = 0;
        double fusedMs = 0;
        for (int r = 0; r < reps * 4; ++r) {
            Stopwatch wu;
            (void)unfused.forward(input);
            const double u = wu.elapsedMs();
            if (r == 0 || u < unfusedMs)
                unfusedMs = u;
            Stopwatch wf;
            (void)fused.forwardArena(input);
            const double f = wf.elapsedMs();
            if (r == 0 || f < fusedMs)
                fusedMs = f;
        }
        if (precision == nn::Precision::Fp32) {
            res.detUnfusedMs = unfusedMs;
            res.detFusedMs = fusedMs;
        } else {
            res.detInt8UnfusedMs = unfusedMs;
            res.detInt8FusedMs = fusedMs;
        }
    }
    std::printf("[fusion] det@%d: fp32 %.2f -> %.2f ms (%.2fx), int8 "
                "%.2f -> %.2f ms (%.2fx); %zu fused, %zu direct, "
                "arena %zu B / %zu values, alloc/frame %.1f, bitwise "
                "%s\n",
                inputSize, res.detUnfusedMs, res.detFusedMs,
                res.detUnfusedMs / res.detFusedMs,
                res.detInt8UnfusedMs, res.detInt8FusedMs,
                res.detInt8UnfusedMs / res.detInt8FusedMs,
                res.layersFused, res.directConvs, res.detArenaBytes,
                res.detArenaValues, res.allocEventsPerFrame,
                res.bitwiseIdentical ? "identical" : "DIVERGED");
    return res;
}

struct ServeCell
{
    serve::ServeReport report;
};

ServeCell
runServeCell(nn::Precision precision, int frames, std::uint64_t seed)
{
    const int inputSize = 64;
    const double width = 0.05;
    nn::Network net =
        nn::buildNetwork(nn::detectorSpec(inputSize, width));
    Rng weightRng(7);
    nn::initDetectorWeights(net, weightRng);
    if (precision == nn::Precision::Int8) {
        std::vector<nn::Tensor> samples;
        Rng calRng(seed ^ 0xAD0C0DE5ULL);
        for (int s = 0; s < 2; ++s) {
            nn::Tensor t(1, inputSize, inputSize);
            for (std::size_t i = 0; i < t.size(); ++i)
                t.data()[i] = static_cast<float>(calRng.uniform());
            samples.push_back(std::move(t));
        }
        nn::quantizeNetwork(net, samples);
    }

    serve::ServeParams sp;
    sp.streams = 8;
    sp.seed = seed;
    sp.governor.enabled = true;
    sp.governor.budgetMs = sp.stream.deadlineMs;

    std::vector<nn::Tensor> inputs;
    Rng inputRng(sp.seed);
    for (int s = 0; s < sp.streams; ++s) {
        nn::Tensor t(1, inputSize, inputSize);
        for (std::size_t i = 0; i < t.size(); ++i)
            t.data()[i] = static_cast<float>(inputRng.uniform(0.0, 1.0));
        inputs.push_back(std::move(t));
    }
    serve::NnBatchEngine engine(net, std::move(inputs), 1);
    serve::MultiStreamServer server(sp, engine);
    ServeCell cell;
    cell.report = server.run(frames);
    return cell;
}

void
writeJson(const char* path, const GemmResults& gemm,
          const DeterminismResults& det, const DetResults& detAcc,
          const TraResults& tra, const FusionResults& fusion,
          const ServeCell& serveFp32, const ServeCell& serveInt8,
          int serveFrames, std::uint64_t seed)
{
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"quant_accuracy\",\n"
                 "  \"int8_isa\": \"%s\",\n"
                 "  \"seed\": %llu,\n",
                 nn::int8KernelIsa(),
                 static_cast<unsigned long long>(seed));
    std::fprintf(f, "  \"gemm\": {\"m\": 512, \"n\": 512, \"k\": 512, "
                    "\"serial_speedup\": %.2f, \"rows\": [",
                 gemm.serialSpeedup);
    for (std::size_t i = 0; i < gemm.rows.size(); ++i)
        std::fprintf(f,
                     "%s\n    {\"threads\": %d, \"fp32_ms\": %.3f, "
                     "\"int8_ms\": %.3f, \"speedup\": %.2f}",
                     i ? "," : "", gemm.rows[i].threads,
                     gemm.rows[i].fp32Ms, gemm.rows[i].int8Ms,
                     gemm.rows[i].fp32Ms / gemm.rows[i].int8Ms);
    std::fprintf(f, "\n  ]},\n");
    std::fprintf(
        f,
        "  \"determinism\": {\"thread_counts\": [1, 2, 8], "
        "\"gemm_checksum\": \"%016llx\", "
        "\"gemm_bitwise_identical\": %s, "
        "\"det_boxes_identical\": %s},\n",
        static_cast<unsigned long long>(det.gemmChecksums[0]),
        det.gemmIdentical ? "true" : "false",
        det.detIdentical ? "true" : "false");
    std::fprintf(
        f,
        "  \"det\": {\"frames\": %d, \"fp32_detections\": %d, "
        "\"int8_detections\": %d, \"mean_match_iou\": %.4f, "
        "\"iou_degradation\": %.4f, \"fp32_truth_iou\": %.4f, "
        "\"int8_truth_iou\": %.4f, \"fp32_dnn_ms\": %.3f, "
        "\"int8_dnn_ms\": %.3f, \"dnn_speedup\": %.2f},\n",
        detAcc.frames, detAcc.fp32Dets, detAcc.int8Dets,
        detAcc.meanMatchIou, 1.0 - detAcc.meanMatchIou,
        detAcc.fp32TruthIou, detAcc.int8TruthIou, detAcc.fp32DnnMs,
        detAcc.int8DnnMs, detAcc.fp32DnnMs / detAcc.int8DnnMs);
    std::fprintf(
        f,
        "  \"tra\": {\"steps\": %d, \"mean_center_error_px\": %.3f, "
        "\"fp32_dnn_ms\": %.3f, \"int8_dnn_ms\": %.3f, "
        "\"dnn_speedup\": %.2f},\n",
        tra.steps, tra.meanCenterErrorPx, tra.fp32DnnMs, tra.int8DnnMs,
        tra.fp32DnnMs / tra.int8DnnMs);
    std::fprintf(
        f,
        "  \"fusion\": {\"det_input\": 160, \"layers_fused\": %zu, "
        "\"direct_convs\": %zu,\n"
        "    \"det_unfused_ms\": %.3f, \"det_fused_ms\": %.3f, "
        "\"det_speedup\": %.3f,\n"
        "    \"det_int8_unfused_ms\": %.3f, \"det_int8_fused_ms\": "
        "%.3f, \"det_int8_speedup\": %.3f,\n"
        "    \"bitwise_identical\": %s,\n"
        "    \"arena\": {\"det_arena_bytes\": %zu, "
        "\"det_arena_values\": %zu, \"alloc_events_per_frame\": "
        "%.1f}},\n",
        fusion.layersFused, fusion.directConvs, fusion.detUnfusedMs,
        fusion.detFusedMs, fusion.detUnfusedMs / fusion.detFusedMs,
        fusion.detInt8UnfusedMs, fusion.detInt8FusedMs,
        fusion.detInt8UnfusedMs / fusion.detInt8FusedMs,
        fusion.bitwiseIdentical ? "true" : "false",
        fusion.detArenaBytes, fusion.detArenaValues,
        fusion.allocEventsPerFrame);
    const auto serveJson = [&](const char* name, const ServeCell& c) {
        const auto& r = c.report;
        std::fprintf(f,
                     "    \"%s\": {\"admitted\": %lld, "
                     "\"p99_ms\": %.3f, \"p9999_ms\": %.3f, "
                     "\"goodput_fps\": %.3f, \"shed_rate\": %.6f, "
                     "\"mean_batch_size\": %.3f}",
                     name, static_cast<long long>(r.framesAdmitted),
                     r.admittedLatency.p99, r.admittedLatency.p9999,
                     r.goodputFps, r.shedRate, r.meanBatchSize);
    };
    std::fprintf(f, "  \"serve\": {\"streams\": 8, "
                    "\"frames_per_stream\": %d, \"engine\": "
                    "\"measured\",\n",
                 serveFrames);
    serveJson("fp32", serveFp32);
    std::fprintf(f, ",\n");
    serveJson("int8", serveInt8);
    std::fprintf(f, ",\n    \"goodput_ratio\": %.3f\n  }\n}\n",
                 serveInt8.report.goodputFps /
                     std::max(1e-9, serveFp32.report.goodputFps));
    std::fclose(f);
    char resolved[4096];
    if (path[0] != '/' && ::realpath(path, resolved))
        std::printf("wrote quant sweep to %s\n", resolved);
    else
        std::printf("wrote quant sweep to %s\n", path);
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    cfg.warnUnknownKeys({"quant-json", "seed", "serve-frames", "reps"});
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    const int serveFrames = cfg.getInt("serve-frames", 100);
    const int reps = cfg.getInt("reps", 5);
    const std::string jsonPath =
        cfg.getString("quant-json", "BENCH_quant.json");

    bench::printHeader(
        "Quantized inference sweep (extension)",
        "int8 vs fp32: kernel speedup, DET/TRA accuracy, serving "
        "goodput, determinism");

    const GemmResults gemm = runGemmSweep(reps);

    sensors::Camera camera(sensors::Resolution::HHD);
    const auto frames = renderScenes(camera);
    const DetResults detAcc = runDetComparison(frames);
    const TraResults tra = runTraComparison(camera);
    const DeterminismResults det = runDeterminism(frames[0]);
    const FusionResults fusion = runFusionComparison(reps);

    std::printf("[serve] measured NnBatchEngine, 8 streams, %d frames "
                "per stream\n",
                serveFrames);
    const ServeCell serveFp32 =
        runServeCell(nn::Precision::Fp32, serveFrames, seed);
    const ServeCell serveInt8 =
        runServeCell(nn::Precision::Int8, serveFrames, seed);
    std::printf("  fp32: goodput %.2f fps, admitted p99.99 %.2f ms\n",
                serveFp32.report.goodputFps,
                serveFp32.report.admittedLatency.p9999);
    std::printf("  int8: goodput %.2f fps, admitted p99.99 %.2f ms\n",
                serveInt8.report.goodputFps,
                serveInt8.report.admittedLatency.p9999);

    writeJson(jsonPath.c_str(), gemm, det, detAcc, tra, fusion,
              serveFp32, serveInt8, serveFrames, seed);

    // The acceptance bars this artifact backs; fail loudly when a
    // regression breaks them so CI surfaces it.
    bool ok = true;
    if (gemm.serialSpeedup < 1.8) {
        std::fprintf(stderr,
                     "FAIL: int8 GEMM speedup %.2fx < 1.8x at 512^3\n",
                     gemm.serialSpeedup);
        ok = false;
    }
    if (1.0 - detAcc.meanMatchIou > 0.02) {
        std::fprintf(stderr,
                     "FAIL: DET IoU degradation %.2f%% > 2%%\n",
                     100.0 * (1.0 - detAcc.meanMatchIou));
        ok = false;
    }
    if (!det.gemmIdentical || !det.detIdentical) {
        std::fprintf(stderr, "FAIL: int8 path not deterministic\n");
        ok = false;
    }
    if (!fusion.bitwiseIdentical) {
        std::fprintf(stderr,
                     "FAIL: fused path diverged from unfused\n");
        ok = false;
    }
    if (fusion.detFusedMs > fusion.detUnfusedMs) {
        std::fprintf(stderr,
                     "FAIL: fused DET forward %.2f ms slower than "
                     "unfused %.2f ms\n",
                     fusion.detFusedMs, fusion.detUnfusedMs);
        ok = false;
    }
    if (fusion.allocEventsPerFrame != 0) {
        std::fprintf(stderr,
                     "FAIL: fused+arena path allocated %.1f "
                     "tensors/frame in steady state\n",
                     fusion.allocEventsPerFrame);
        ok = false;
    }
    return ok ? 0 : 1;
}
