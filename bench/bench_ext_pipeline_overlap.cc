/**
 * @file
 * Extension bench: inter-frame stage pipelining on the frame-graph
 * executor. The Figure 1 DAG gives LOC its own branch next to
 * DET->TRA, and the async executor additionally overlaps *frames*:
 * DET on frame k runs while TRA/FUSION/MOTPLAN finish frame k-1, so
 * steady-state throughput approaches 1/max(stage) instead of
 * 1/sum(stages).
 *
 * The machine this repo targets is allowed to have a single core, so
 * the bench never claims wall-clock overlap. Everything is accounted
 * on the executor's virtual timeline (docs/DESIGN.md): stage
 * durations are measured per stage as they run, and the recurrence
 *
 *   start(k, s) = max(admit(k), free(s), inputs-of-s done on k)
 *
 * yields the makespan a pipelined machine would see. The serial
 * reference is the same measured durations summed end to end.
 *
 * Two phases per depth in {1, 2, 3}, governor active throughout:
 *
 *  - paced (dt = 100 ms, the camera period): frames never queue, so
 *    the pipelined latency (commit - arrival) is the per-frame
 *    latency; its p99.99 must hold the paper's 100 ms budget.
 *  - saturated (dt = 5 ms): arrivals outrun the pipeline, the
 *    executor is bottleneck-bound, and throughput = frames /
 *    virtual makespan approaches 1/max(stage).
 *
 * Determinism is part of the acceptance: depth 1 must produce
 * bitwise-identical outputs to the serial path, and every depth must
 * produce identical outputs across schedule seeds (the virtual
 * timeline is schedule-independent). `bitwise_identical` in the JSON
 * is the AND of both checks for the row's depth.
 *
 * The detector is sized (input 256, width 0.35) so DET and LOC carry
 * comparable cost: the DAG's two branches are balanced and the ideal
 * pipelined speedup sum/max is ~2x, giving the 1.3x acceptance bar
 * real headroom rather than grazing it.
 *
 * Emits BENCH_pipeline.json (override with --pipeline-json=PATH).
 *
 * Usage:
 *   bench_ext_pipeline_overlap [--frames-paced=120]
 *       [--frames-saturated=100] [--budget-ms=100] [--seed=31]
 *       [--pipeline-json=PATH]
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/config.hh"
#include "pipeline/pipeline.hh"
#include "sensors/scenario.hh"
#include "slam/mapping.hh"

namespace {

using namespace ad;
using namespace ad::pipeline;

/** Everything shared by every run: world, map, pre-rendered frames. */
struct Course
{
    explicit Course(sensors::Scenario s) : scenario(std::move(s)) {}

    sensors::Scenario scenario;
    sensors::Camera camera{sensors::Resolution::HHD};
    slam::PriorMap map;
    planning::RoadGraph graph;
    double laneY = 0.0;
    std::vector<Image> pacedFrames;     ///< stepped at 100 ms.
    std::vector<Image> saturatedFrames; ///< stepped at 5 ms.
};

std::vector<Image>
renderFrames(const Course& course, int frames, double dt)
{
    std::vector<Image> out;
    out.reserve(static_cast<std::size_t>(frames));
    sensors::World world = course.scenario.world;
    Pose2 ego = course.scenario.ego.pose;
    for (int i = 0; i < frames; ++i) {
        world.step(dt);
        ego.pos.x += 10.0 * dt;
        out.push_back(course.camera.render(world, ego).image);
    }
    return out;
}

Course*
buildCourse(int framesPaced, int framesSaturated, std::uint64_t seed)
{
    Rng rng(seed);
    sensors::ScenarioParams sp;
    sp.roadLength = 150.0;
    sp.vehicles = 3;
    Course* c = new Course(sensors::makeUrbanScenario(rng, sp));
    c->laneY = c->scenario.world.road().laneCenter(1);

    slam::MappingParams mp;
    mp.orb.fast.maxKeypoints = 500;
    c->map = slam::buildPriorMap(c->scenario.world, c->camera, 1, mp);

    int prev = -1;
    for (double x = 0; x <= 150.0; x += 50.0) {
        const int node = c->graph.addNode({x, c->laneY});
        if (prev >= 0)
            c->graph.addBidirectional(prev, node);
        prev = node;
    }
    c->pacedFrames = renderFrames(*c, framesPaced, 0.1);
    c->saturatedFrames = renderFrames(*c, framesSaturated, 0.005);
    return c;
}

/** FNV-1a over the semantic payload of one run's outputs. */
class Checksum
{
  public:
    void
    mix(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof bits);
        mix(bits);
    }

    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            hash_ ^= (v >> (8 * i)) & 0xff;
            hash_ *= 1099511628211ull;
        }
    }

    void
    frame(const FrameOutput& out)
    {
        mix(static_cast<std::uint64_t>(out.frameId));
        mix(static_cast<std::uint64_t>(out.mode));
        mix(static_cast<std::uint64_t>(
            (out.frameDropped << 4) | (out.detRan << 3) |
            (out.detFellBack << 2) | (out.locFellBack << 1) |
            static_cast<int>(out.traCoasted)));
        mix(static_cast<std::uint64_t>(out.detections.size()));
        for (const auto& d : out.detections) {
            mix(d.box.x);
            mix(d.box.y);
            mix(d.box.w);
            mix(d.box.h);
            mix(d.confidence);
        }
        mix(static_cast<std::uint64_t>(out.tracks.size()));
        for (const auto& t : out.tracks) {
            mix(static_cast<std::uint64_t>(t.id));
            mix(t.box.x);
            mix(t.box.y);
            mix(t.box.w);
            mix(t.box.h);
            mix(t.velocityPx.x);
            mix(t.velocityPx.y);
        }
        mix(static_cast<std::uint64_t>(out.localization.ok));
        mix(static_cast<std::uint64_t>(out.localization.relocalized));
        mix(out.localization.pose.pos.x);
        mix(out.localization.pose.pos.y);
        mix(out.localization.pose.theta);
        mix(out.command.steering);
        mix(out.command.acceleration);
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 1469598103934665603ull;
};

/** One pipeline drive, summarized. */
struct RunResult
{
    std::uint64_t checksum = 0;
    double serialVirtualMs = 0; ///< sum of every stage duration.
    double makespanMs = 0; ///< virtual span arrival(0) -> last commit.
    LatencySummary pipelined;
    LatencySummary e2e;
    long long deadlineMisses = 0;
    double detMeanMs = 0, traMeanMs = 0, locMeanMs = 0;
    double fusionMeanMs = 0, motMeanMs = 0;
};

PipelineParams
benchParams(const Course& course, double budgetMs)
{
    PipelineParams p;
    p.detector.inputSize = 256;
    p.detector.width = 0.35;
    p.trackerPool.poolSize = 6;
    p.trackerPool.tracker.cropSize = 32;
    p.trackerPool.tracker.width = 0.1;
    p.motionPlanner.cruiseSpeed = 10.0;
    p.laneCenterY = course.laneY;
    p.nnThreads = 1;
    p.deadline.budgetMs = budgetMs;
    p.governor.enabled = true;
    p.governor.budgetMs = budgetMs;
    return p;
}

RunResult
runOnce(const Course& course, const std::vector<Image>& frames,
        double dt, double budgetMs, bool async, int depth,
        std::uint64_t scheduleSeed)
{
    PipelineParams p = benchParams(course, budgetMs);
    p.async = async;
    p.asyncDepth = depth;
    p.scheduleSeed = scheduleSeed;

    Pipeline pipe(&course.map, &course.camera, &course.graph, p);
    pipe.reset(course.scenario.ego.pose, {10, 0}, {140, course.laneY});

    std::vector<FrameOutput> outputs;
    outputs.reserve(frames.size());
    for (const Image& image : frames)
        for (auto& out : pipe.submitFrame(image, dt, 10.0))
            outputs.push_back(std::move(out));
    for (auto& out : pipe.drainAsync())
        outputs.push_back(std::move(out));
    std::sort(outputs.begin(), outputs.end(),
              [](const FrameOutput& a, const FrameOutput& b) {
                  return a.frameId < b.frameId;
              });

    RunResult r;
    Checksum sum;
    for (const FrameOutput& out : outputs) {
        sum.frame(out);
        const auto& lat = out.latencies;
        r.serialVirtualMs += lat.detMs + lat.traMs + lat.locMs +
                             lat.fusionMs + lat.motPlanMs;
        r.deadlineMisses += lat.endToEndMs() > budgetMs;
    }
    r.checksum = sum.value();
    r.pipelined = pipe.pipelinedLatency().summary();
    r.e2e = pipe.endToEndLatency().summary();
    if (pipe.asyncEnabled())
        r.makespanMs =
            pipe.executor()->lastCommitVirtualMs() - dt * 1000.0;
    else
        r.makespanMs = r.serialVirtualMs;
    r.detMeanMs = pipe.detLatency().summary().mean;
    r.traMeanMs = pipe.traLatency().summary().mean;
    r.locMeanMs = pipe.locLatency().summary().mean;
    r.fusionMeanMs = pipe.fusionLatency().summary().mean;
    r.motMeanMs = pipe.motPlanLatency().summary().mean;
    return r;
}

/** One JSON/console row: everything measured for one depth. */
struct DepthRow
{
    int depth = 0;
    double throughputFps = 0;
    double speedup = 0;
    double p9999PipelinedMs = 0;
    double e2eP9999Ms = 0;
    long long deadlineMisses = 0;
    bool bitwiseIdentical = false;
};

void
writeJson(const char* path, int framesPaced, int framesSaturated,
          double budgetMs, std::uint64_t seed,
          const RunResult& serialSat, const RunResult& serialPaced,
          const std::vector<DepthRow>& rows)
{
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    const double serialFps =
        serialSat.makespanMs > 0
            ? 1000.0 * framesSaturated / serialSat.makespanMs
            : 0.0;
    std::fprintf(
        f,
        "{\n  \"bench\": \"pipeline_overlap\",\n"
        "  \"det_input\": 256,\n"
        "  \"frames_paced\": %d,\n"
        "  \"frames_saturated\": %d,\n"
        "  \"budget_ms\": %.1f,\n"
        "  \"seed\": %llu,\n"
        "  \"stage_mean_ms\": {\"det\": %.3f, \"tra\": %.3f, "
        "\"loc\": %.3f, \"fusion\": %.3f, \"motplan\": %.3f},\n"
        "  \"serial\": {\"throughput_fps\": %.3f, "
        "\"virtual_makespan_ms\": %.3f, "
        "\"p9999_pipelined_ms\": %.3f, \"e2e_p9999_ms\": %.3f, "
        "\"deadline_misses\": %lld},\n"
        "  \"rows\": [",
        framesPaced, framesSaturated, budgetMs,
        static_cast<unsigned long long>(seed), serialSat.detMeanMs,
        serialSat.traMeanMs, serialSat.locMeanMs,
        serialSat.fusionMeanMs, serialSat.motMeanMs, serialFps,
        serialSat.makespanMs, serialPaced.pipelined.p9999,
        serialPaced.e2e.p9999, serialPaced.deadlineMisses);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const DepthRow& r = rows[i];
        std::fprintf(
            f,
            "%s\n    {\"depth\": %d, \"throughput_fps\": %.3f, "
            "\"speedup_vs_serial\": %.4f, "
            "\"p9999_pipelined_ms\": %.3f, \"e2e_p9999_ms\": %.3f, "
            "\"deadline_misses\": %lld, \"bitwise_identical\": %s}",
            i ? "," : "", r.depth, r.throughputFps, r.speedup,
            r.p9999PipelinedMs, r.e2eP9999Ms, r.deadlineMisses,
            r.bitwiseIdentical ? "true" : "false");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote pipeline overlap sweep to %s\n", path);
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    cfg.warnUnknownKeys({"frames-paced", "frames-saturated",
                         "budget-ms", "seed", "pipeline-json"});
    const int framesPaced = cfg.getInt("frames-paced", 120);
    const int framesSaturated = cfg.getInt("frames-saturated", 100);
    const double budgetMs = cfg.getDouble("budget-ms", 100.0);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cfg.getInt("seed", 31));
    const std::string jsonPath =
        cfg.getString("pipeline-json", "BENCH_pipeline.json");

    bench::printHeader(
        "Frame-graph pipelining sweep (extension)",
        "async executor vs serial composition on the virtual "
        "timeline, governor active");
    std::printf("%d paced + %d saturated frames per run, budget "
                "%.0f ms, seed %llu\n\n",
                framesPaced, framesSaturated, budgetMs,
                static_cast<unsigned long long>(seed));

    Course* course = buildCourse(framesPaced, framesSaturated, seed);

    // Serial references: paced for the latency bars, saturated for
    // the throughput denominator.
    const RunResult serialPaced = runOnce(
        *course, course->pacedFrames, 0.1, budgetMs, false, 1, 0);
    const RunResult serialSat =
        runOnce(*course, course->saturatedFrames, 0.005, budgetMs,
                false, 1, 0);
    std::printf("stage means (ms): det %.2f  tra %.2f  loc %.2f  "
                "fusion %.3f  motplan %.3f\n",
                serialSat.detMeanMs, serialSat.traMeanMs,
                serialSat.locMeanMs, serialSat.fusionMeanMs,
                serialSat.motMeanMs);
    const double serialFps =
        1000.0 * framesSaturated / serialSat.makespanMs;
    std::printf("serial: %.2f fps, paced p99.99 pipelined %.2f ms, "
                "%lld deadline misses\n\n",
                serialFps, serialPaced.pipelined.p9999,
                serialPaced.deadlineMisses);

    std::printf("%6s %8s %9s %12s %11s %7s %9s\n", "depth", "fps",
                "speedup", "p99.99 ppl", "p99.99 e2e", "misses",
                "bitwise");
    std::vector<DepthRow> rows;
    bool allOk = true;
    for (const int depth : {1, 2, 3}) {
        const RunResult paced = runOnce(
            *course, course->pacedFrames, 0.1, budgetMs, true, depth,
            0);
        const RunResult satA =
            runOnce(*course, course->saturatedFrames, 0.005, budgetMs,
                    true, depth, 1);
        const RunResult satB =
            runOnce(*course, course->saturatedFrames, 0.005, budgetMs,
                    true, depth, 42);

        DepthRow row;
        row.depth = depth;
        row.throughputFps =
            1000.0 * framesSaturated / satA.makespanMs;
        row.speedup = serialSat.serialVirtualMs / satA.makespanMs;
        row.p9999PipelinedMs = paced.pipelined.p9999;
        row.e2eP9999Ms = paced.e2e.p9999;
        row.deadlineMisses = paced.deadlineMisses;
        // Schedule-seed invariance at every depth; depth 1 must also
        // reproduce the serial path bit for bit.
        row.bitwiseIdentical = satA.checksum == satB.checksum &&
                               (depth != 1 ||
                                satA.checksum == serialSat.checksum);
        rows.push_back(row);
        std::printf("%6d %8.2f %8.2fx %9.2f ms %8.2f ms %7lld %9s\n",
                    depth, row.throughputFps, row.speedup,
                    row.p9999PipelinedMs, row.e2eP9999Ms,
                    row.deadlineMisses,
                    row.bitwiseIdentical ? "yes" : "NO");

        allOk = allOk && row.bitwiseIdentical &&
                row.p9999PipelinedMs <= budgetMs &&
                (depth < 2 || row.speedup >= 1.3);
    }

    std::printf(
        "\nverdict: %s\n",
        allOk ? "PASS: depth >= 2 sustains >= 1.3x serial throughput "
                "with p99.99 pipelined latency inside the budget and "
                "bitwise-reproducible outputs"
              : "FAIL: a depth missed its throughput, tail or "
                "determinism bar");

    writeJson(jsonPath.c_str(), framesPaced, framesSaturated,
              budgetMs, seed, serialSat, serialPaced, rows);
    const bool pass = allOk;
    delete course;
    return pass ? 0 : 1;
}
