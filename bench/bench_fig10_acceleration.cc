/**
 * @file
 * Reproduces Figure 10 (and prints Table 2): mean latency (10a),
 * 99.99th-percentile latency (10b) and power (10c) of the three
 * bottleneck engines across the four platforms, from the calibrated
 * mechanistic platform models, with the paper's measured values
 * alongside for comparison.
 */

#include <cstdio>

#include "accel/models.hh"
#include "bench_common.hh"

int
main()
{
    using namespace ad;
    using accel::Component;
    using accel::Platform;

    bench::printHeader("Table 2", "computing platform specifications");
    std::printf("%-6s %-30s %8s %7s %9s %10s\n", "", "model", "GHz",
                "cores", "mem(GB)", "BW(GB/s)");
    for (int p = 0; p < accel::kNumPlatforms; ++p) {
        const auto spec =
            accel::platformSpec(static_cast<Platform>(p));
        std::printf("%-6s %-30s %8.2f %7d %9.4g %10.1f\n",
                    accel::platformName(static_cast<Platform>(p)),
                    spec.model, spec.frequencyGhz, spec.cores,
                    spec.memoryGb, spec.memoryBwGBs);
    }

    Rng rng(10);
    const auto& w = accel::standardWorkloadRef();
    const Component comps[] = {Component::Det, Component::Tra,
                               Component::Loc};

    const auto printGrid = [&](const char* figure, const char* caption,
                               auto model, auto paper) {
        std::printf("\n");
        bench::printHeader(figure, caption);
        std::printf("%-11s %12s %12s %12s %12s\n", "", "CPU", "GPU",
                    "FPGA", "ASIC");
        for (const auto c : comps) {
            std::printf("%-5s model", accel::componentName(c));
            for (int p = 0; p < accel::kNumPlatforms; ++p)
                std::printf(" %12.1f",
                            model(c, static_cast<Platform>(p)));
            std::printf("\n%-5s paper", "");
            for (int p = 0; p < accel::kNumPlatforms; ++p)
                std::printf(" %12.1f",
                            paper(c, static_cast<Platform>(p)));
            std::printf("\n");
        }
    };

    printGrid("Figure 10a", "mean latency (ms) across platforms",
              [&](Component c, Platform p) {
                  return accel::platformModel(p)
                      .latency(c, w)
                      .summarize(100000, rng)
                      .mean;
              },
              [&](Component c, Platform p) {
                  return accel::paperAnchor(c, p).meanMs;
              });

    printGrid("Figure 10b",
              "99.99th-percentile latency (ms) across platforms",
              [&](Component c, Platform p) {
                  return accel::platformModel(p)
                      .latency(c, w)
                      .summarize(200000, rng)
                      .p9999;
              },
              [&](Component c, Platform p) {
                  return accel::paperAnchor(c, p).tailMs;
              });

    printGrid("Figure 10c", "power (W) across platforms",
              [&](Component c, Platform p) {
                  return accel::platformModel(p).powerWatts(c);
              },
              [&](Component c, Platform p) {
                  return accel::paperAnchor(c, p).powerW;
              });

    std::printf("\nfindings reproduced: CPUs cannot run the DNN engines "
                "in real time; FPGAs are DSP-\nlimited on DET and "
                "transfer-bound on TRA's 436 MB FC stack; only the CPU "
                "and GPU\nshow mean-vs-tail divergence on LOC "
                "(relocalization); specialized hardware is\nfar more "
                "energy efficient (Findings 1-3).\n");
    return 0;
}
