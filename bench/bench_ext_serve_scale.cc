/**
 * @file
 * Extension bench: serving-layer scale sweep. How many vehicle
 * streams can one machine serve while keeping every *admitted*
 * stream inside the paper's per-vehicle constraint (p99.99 <= 100 ms,
 * Section 2.4.2)?
 *
 * Sweeps stream count x batching window over the modeled batch
 * engine (seeded cost model: fixed + marginal per work unit,
 * lognormal jitter, rare contention spikes), comparing:
 *
 *  - "served": cross-stream batching + deadline-aware admission
 *    control + most-slack-first degradation (the ad_serve stack); and
 *  - "baseline": per-stream serial inference, no admission control
 *    (batch size 1, zero window, shedding off).
 *
 * The claim under test (ISSUE 4 acceptance): past the engine's
 * serial capacity the baseline blows the tail budget, while
 * batching + admission keeps admitted-stream p99.99 inside it at
 * strictly higher goodput -- the machine degrades by serving fewer
 * frames well instead of all frames late.
 *
 * Emits BENCH_serve.json (override with --serve-json=PATH): one row
 * per (streams, window, mode) with latency quantiles, miss/shed
 * rates, goodput and batching stats. Fully virtual-clocked: the
 * sweep is bit-reproducible and runs in seconds.
 *
 * Usage:
 *   bench_ext_serve_scale [--frames=1500] [--budget-ms=100]
 *                         [--seed=29] [--serve-json=PATH]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/config.hh"
#include "serve/serve.hh"

namespace {

using namespace ad;

/** One sweep cell, fully summarized. */
struct SweepRow
{
    int streams = 0;
    double windowMs = 0;
    bool served = false; ///< batching + admission (vs baseline).
    serve::ServeReport report;
};

SweepRow
runCell(int streams, double windowMs, bool served, int frames,
        double budgetMs, std::uint64_t seed)
{
    serve::ServeParams sp;
    sp.streams = streams;
    sp.stream.deadlineMs = budgetMs;
    sp.seed = seed;
    sp.governor.enabled = true;
    sp.governor.budgetMs = budgetMs;
    if (served) {
        sp.batch.maxWaitMs = windowMs;
    } else {
        sp.batch.maxBatch = 1;
        sp.batch.maxWaitMs = 0.0;
        sp.admission.enabled = false;
    }
    serve::ModeledEngineParams ep;
    ep.seed = seed * 2654435761u + 1;
    serve::ModeledBatchEngine engine(ep);
    serve::MultiStreamServer server(sp, engine);

    SweepRow row;
    row.streams = streams;
    row.windowMs = served ? windowMs : 0.0;
    row.served = served;
    row.report = server.run(frames);
    return row;
}

void
writeJson(const char* path, const std::vector<SweepRow>& rows,
          int frames, double budgetMs, std::uint64_t seed)
{
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"serve_scale\",\n"
                 "  \"engine\": \"modeled\",\n"
                 "  \"frames_per_stream\": %d,\n"
                 "  \"budget_ms\": %.1f,\n"
                 "  \"seed\": %llu,\n  \"rows\": [",
                 frames, budgetMs,
                 static_cast<unsigned long long>(seed));
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SweepRow& r = rows[i];
        const auto& rep = r.report;
        const double missRate =
            rep.framesAdmitted
                ? static_cast<double>(rep.deadlineMisses) /
                      rep.framesAdmitted
                : 0.0;
        std::fprintf(
            f,
            "%s\n    {\"streams\": %d, \"window_ms\": %.1f, "
            "\"mode\": \"%s\", "
            "\"admitted\": %lld, \"shed\": %lld, "
            "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
            "\"p9999_ms\": %.3f, \"worst_ms\": %.3f, "
            "\"miss_rate\": %.6f, \"goodput_fps\": %.3f, "
            "\"total_goodput_fps\": %.3f, \"shed_rate\": %.6f, "
            "\"mean_batch_size\": %.3f, "
            "\"pressure_escalations\": %lld, "
            "\"residency\": {\"NOMINAL\": %llu, \"DEGRADED\": %llu, "
            "\"TRACKING_ONLY\": %llu, \"SAFE_STOP\": %llu}}",
            i ? "," : "", r.streams, r.windowMs,
            r.served ? "served" : "baseline",
            static_cast<long long>(rep.framesAdmitted),
            static_cast<long long>(rep.framesShed),
            rep.admittedLatency.p50, rep.admittedLatency.p99,
            rep.admittedLatency.p9999, rep.admittedLatency.worst,
            missRate, rep.goodputFps, rep.totalGoodputFps,
            rep.shedRate, rep.meanBatchSize,
            static_cast<long long>(rep.pressureEscalations),
            static_cast<unsigned long long>(rep.framesInMode[0]),
            static_cast<unsigned long long>(rep.framesInMode[1]),
            static_cast<unsigned long long>(rep.framesInMode[2]),
            static_cast<unsigned long long>(rep.framesInMode[3]));
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    char resolved[4096];
    if (path[0] != '/' && ::realpath(path, resolved))
        std::printf("wrote serve sweep to %s\n", resolved);
    else
        std::printf("wrote serve sweep to %s\n", path);
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    cfg.warnUnknownKeys({"frames", "budget-ms", "seed", "serve-json"});
    const int frames = cfg.getInt("frames", 1500);
    const double budgetMs = cfg.getDouble("budget-ms", 100.0);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cfg.getInt("seed", 29));
    const std::string jsonPath =
        cfg.getString("serve-json", "BENCH_serve.json");

    bench::printHeader(
        "Serving scale sweep (extension)",
        "multi-stream batching + admission control vs per-stream "
        "serial baseline, modeled engine");
    std::printf("%d frames per stream, budget %.0f ms, seed %llu\n\n",
                frames, budgetMs,
                static_cast<unsigned long long>(seed));
    std::printf("%7s %9s %9s %10s %10s %9s %9s %7s\n", "streams",
                "mode", "window ms", "p99.99 ms", "goodput", "shed %",
                "miss %", "batch");

    const int streamCounts[] = {1, 2, 4, 8, 16, 24, 32};
    const double windows[] = {0.0, 4.0, 8.0};
    std::vector<SweepRow> rows;
    for (const int streams : streamCounts) {
        SweepRow base = runCell(streams, 0.0, false, frames, budgetMs,
                                seed);
        rows.push_back(base);
        const auto& b = base.report;
        std::printf("%7d %9s %9s %10.3f %10.3f %9.2f %9.4f %7.2f\n",
                    streams, "baseline", "-", b.admittedLatency.p9999,
                    b.goodputFps, 100.0 * b.shedRate,
                    b.framesAdmitted
                        ? 100.0 * b.deadlineMisses / b.framesAdmitted
                        : 0.0,
                    b.meanBatchSize);
        for (const double window : windows) {
            SweepRow row = runCell(streams, window, true, frames,
                                   budgetMs, seed);
            rows.push_back(row);
            const auto& r = row.report;
            std::printf(
                "%7d %9s %9.1f %10.3f %10.3f %9.2f %9.4f %7.2f%s\n",
                streams, "served", window, r.admittedLatency.p9999,
                r.goodputFps, 100.0 * r.shedRate,
                r.framesAdmitted
                    ? 100.0 * r.deadlineMisses / r.framesAdmitted
                    : 0.0,
                r.meanBatchSize,
                r.admittedLatency.p9999 <= budgetMs ? "  [meets tail]"
                                                    : "");
        }
    }

    // ISSUE 4 acceptance: at some stream count >= 8, batching +
    // admission keeps admitted p99.99 inside the budget while the
    // baseline misses it, at strictly higher goodput.
    bool accepted = false;
    int acceptedStreams = 0;
    for (const SweepRow& base : rows) {
        if (base.served || base.streams < 8)
            continue;
        if (base.report.admittedLatency.p9999 <= budgetMs)
            continue; // baseline still holds the tail here.
        for (const SweepRow& srv : rows) {
            if (!srv.served || srv.streams != base.streams)
                continue;
            if (srv.report.admittedLatency.p9999 <= budgetMs &&
                srv.report.goodputFps > base.report.goodputFps) {
                accepted = true;
                acceptedStreams = srv.streams;
                break;
            }
        }
        if (accepted)
            break;
    }
    std::printf(
        "\nverdict: %s\n",
        accepted
            ? "PASS: batching + admission holds admitted p99.99 "
              "inside the budget at >= 8 streams where the baseline "
              "misses, at strictly higher goodput"
            : "FAIL: no stream count >= 8 where batching + admission "
              "beats the baseline on both tail and goodput");
    if (accepted)
        std::printf("first such stream count: %d\n", acceptedStreams);

    writeJson(jsonPath.c_str(), rows, frames, budgetMs, seed);
    return accepted ? 0 : 1;
}
