/**
 * @file
 * Extension bench: serving-layer scale sweep. How many vehicle
 * streams can one machine serve while keeping every *admitted*
 * stream inside the paper's per-vehicle constraint (p99.99 <= 100 ms,
 * Section 2.4.2)?
 *
 * Sweeps stream count x batching window over the modeled batch
 * engine (seeded cost model: fixed + marginal per work unit,
 * lognormal jitter, rare contention spikes), comparing:
 *
 *  - "served": cross-stream batching + deadline-aware admission
 *    control + most-slack-first degradation (the ad_serve stack); and
 *  - "baseline": per-stream serial inference, no admission control
 *    (batch size 1, zero window, shedding off).
 *
 * The claim under test (ISSUE 4 acceptance): past the engine's
 * serial capacity the baseline blows the tail budget, while
 * batching + admission keeps admitted-stream p99.99 inside it at
 * strictly higher goodput -- the machine degrades by serving fewer
 * frames well instead of all frames late.
 *
 * Emits BENCH_serve.json (override with --serve-json=PATH): one row
 * per (streams, window, mode) with latency quantiles, miss/shed
 * rates, goodput, batching stats and a per-row SLO summary (worst
 * miss-budget burn rate, worst window p99, mean goodput ratio
 * across streams). Fully virtual-clocked: the sweep is
 * bit-reproducible and runs in seconds.
 *
 * A final pass measures the flight recorder's wall-clock overhead on
 * the busiest served cell (recorder armed vs disarmed, min-of-reps)
 * and records it as "flight_overhead" -- the ISSUE 7 acceptance bar
 * is < 5 %.
 *
 * Usage:
 *   bench_ext_serve_scale [--frames=1500] [--budget-ms=100]
 *                         [--seed=29] [--serve-json=PATH]
 *                         [--overhead-reps=5]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/config.hh"
#include "common/time.hh"
#include "nn/fusion.hh"
#include "nn/kernel_context.hh"
#include "nn/models.hh"
#include "nn/network.hh"
#include "nn/tensor.hh"
#include "obs/flight.hh"
#include "serve/serve.hh"

namespace {

using namespace ad;

/** One sweep cell, fully summarized. */
struct SweepRow
{
    int streams = 0;
    double windowMs = 0;
    bool served = false; ///< batching + admission (vs baseline).
    serve::ServeReport report;
};

SweepRow
runCell(int streams, double windowMs, bool served, int frames,
        double budgetMs, std::uint64_t seed)
{
    serve::ServeParams sp;
    sp.streams = streams;
    sp.stream.deadlineMs = budgetMs;
    sp.seed = seed;
    sp.governor.enabled = true;
    sp.governor.budgetMs = budgetMs;
    if (served) {
        sp.batch.maxWaitMs = windowMs;
    } else {
        sp.batch.maxBatch = 1;
        sp.batch.maxWaitMs = 0.0;
        sp.admission.enabled = false;
    }
    serve::ModeledEngineParams ep;
    ep.seed = seed * 2654435761u + 1;
    serve::ModeledBatchEngine engine(ep);
    serve::MultiStreamServer server(sp, engine);

    SweepRow row;
    row.streams = streams;
    row.windowMs = served ? windowMs : 0.0;
    row.served = served;
    row.report = server.run(frames);
    return row;
}

/** Cross-stream SLO summary of one cell's report. */
struct SloSummary
{
    double worstBurn = 0.0;
    double worstP99Ms = -1.0; ///< -1 when no window resolved a p99.
    double meanGoodput = 0.0;
};

SloSummary
summarizeSlo(const serve::ServeReport& report)
{
    SloSummary s;
    for (const auto& slo : report.streamSlo) {
        s.worstBurn = std::max(s.worstBurn, slo.burnRate);
        if (slo.p99Ms >= 0.0)
            s.worstP99Ms = std::max(s.worstP99Ms, slo.p99Ms);
        s.meanGoodput += slo.goodputRatio;
    }
    if (!report.streamSlo.empty())
        s.meanGoodput /= static_cast<double>(report.streamSlo.size());
    return s;
}

/** Flight-recorder overhead on one busy served cell. */
struct FlightOverhead
{
    double onMs = 0.0;  ///< min-of-reps wall time, recorder armed.
    double offMs = 0.0; ///< min-of-reps wall time, recorder off.
    double pct = 0.0;   ///< 100 * (on/off - 1), clamped at 0.
};

/**
 * Measure the recorder's wall-clock cost (ISSUE 7 acceptance:
 * < 5 %). The modeled engine is virtual-clocked -- near-zero wall
 * time per frame -- so measuring against it would divide the
 * recorder's fixed nanoseconds-per-event cost by almost nothing.
 * This pass instead serves the *measured* engine (real
 * Network::forwardBatch calls, the work the recorder instruments in
 * production) with the recorder armed vs disarmed, min-of-reps on
 * each side to cancel scheduler noise. The dump path is left empty
 * so trigger events cost a ring push but never touch the filesystem.
 */
FlightOverhead
measureFlightOverhead(double budgetMs, std::uint64_t seed, int reps)
{
    constexpr int kStreams = 8;
    constexpr int kFrames = 150;
    constexpr int kInputSize = 64;

    nn::Network net =
        nn::buildNetwork(nn::detectorSpec(kInputSize, 0.05));
    Rng weightRng(7);
    nn::initDetectorWeights(net, weightRng);
    nn::lowerNetwork(net, {1, kInputSize, kInputSize});
    std::vector<nn::Tensor> inputs;
    Rng inputRng(seed);
    for (int s = 0; s < kStreams; ++s) {
        nn::Tensor t(1, kInputSize, kInputSize);
        for (std::size_t i = 0; i < t.size(); ++i)
            t.data()[i] = static_cast<float>(inputRng.uniform());
        inputs.push_back(std::move(t));
    }

    auto& fl = obs::flight();
    obs::FlightParams params;
    params.streams = kStreams;
    params.capacity = 1024;
    FlightOverhead result;
    result.onMs = result.offMs = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        for (const bool on : {false, true}) {
            fl.configure(params);
            fl.setEnabled(on);
            serve::NnBatchEngine engine(
                net, inputs, nn::resolveKernelThreads(0));
            serve::ServeParams sp;
            sp.streams = kStreams;
            sp.stream.deadlineMs = budgetMs;
            sp.batch.maxWaitMs = 4.0;
            sp.seed = seed;
            sp.governor.enabled = true;
            sp.governor.budgetMs = budgetMs;
            serve::MultiStreamServer server(sp, engine);
            Stopwatch clock;
            server.run(kFrames);
            const double ms = clock.elapsedMs();
            double& slot = on ? result.onMs : result.offMs;
            slot = std::min(slot, ms);
        }
    }
    fl.setEnabled(false);
    if (result.offMs > 0.0)
        result.pct =
            std::max(0.0, 100.0 * (result.onMs / result.offMs - 1.0));
    return result;
}

void
writeJson(const char* path, const std::vector<SweepRow>& rows,
          int frames, double budgetMs, std::uint64_t seed,
          const FlightOverhead& overhead)
{
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"serve_scale\",\n"
                 "  \"engine\": \"modeled\",\n"
                 "  \"frames_per_stream\": %d,\n"
                 "  \"budget_ms\": %.1f,\n"
                 "  \"seed\": %llu,\n  \"rows\": [",
                 frames, budgetMs,
                 static_cast<unsigned long long>(seed));
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SweepRow& r = rows[i];
        const auto& rep = r.report;
        const double missRate =
            rep.framesAdmitted
                ? static_cast<double>(rep.deadlineMisses) /
                      rep.framesAdmitted
                : 0.0;
        const SloSummary slo = summarizeSlo(rep);
        std::fprintf(
            f,
            "%s\n    {\"streams\": %d, \"window_ms\": %.1f, "
            "\"mode\": \"%s\", "
            "\"admitted\": %lld, \"shed\": %lld, "
            "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
            "\"p9999_ms\": %.3f, \"worst_ms\": %.3f, "
            "\"miss_rate\": %.6f, \"goodput_fps\": %.3f, "
            "\"total_goodput_fps\": %.3f, \"shed_rate\": %.6f, "
            "\"mean_batch_size\": %.3f, "
            "\"pressure_escalations\": %lld, "
            "\"residency\": {\"NOMINAL\": %llu, \"DEGRADED\": %llu, "
            "\"TRACKING_ONLY\": %llu, \"SAFE_STOP\": %llu}, "
            "\"slo\": {\"worst_burn_rate\": %.4f, "
            "\"worst_p99_ms\": %.3f, \"mean_goodput_ratio\": %.4f}}",
            i ? "," : "", r.streams, r.windowMs,
            r.served ? "served" : "baseline",
            static_cast<long long>(rep.framesAdmitted),
            static_cast<long long>(rep.framesShed),
            rep.admittedLatency.p50, rep.admittedLatency.p99,
            rep.admittedLatency.p9999, rep.admittedLatency.worst,
            missRate, rep.goodputFps, rep.totalGoodputFps,
            rep.shedRate, rep.meanBatchSize,
            static_cast<long long>(rep.pressureEscalations),
            static_cast<unsigned long long>(rep.framesInMode[0]),
            static_cast<unsigned long long>(rep.framesInMode[1]),
            static_cast<unsigned long long>(rep.framesInMode[2]),
            static_cast<unsigned long long>(rep.framesInMode[3]),
            slo.worstBurn, slo.worstP99Ms, slo.meanGoodput);
    }
    std::fprintf(f,
                 "\n  ],\n  \"flight_overhead\": "
                 "{\"on_ms\": %.3f, \"off_ms\": %.3f, "
                 "\"overhead_pct\": %.3f}\n}\n",
                 overhead.onMs, overhead.offMs, overhead.pct);
    std::fclose(f);
    char resolved[4096];
    if (path[0] != '/' && ::realpath(path, resolved))
        std::printf("wrote serve sweep to %s\n", resolved);
    else
        std::printf("wrote serve sweep to %s\n", path);
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    cfg.warnUnknownKeys(
        {"frames", "budget-ms", "seed", "serve-json", "overhead-reps"});
    const int frames = cfg.getInt("frames", 1500);
    const double budgetMs = cfg.getDouble("budget-ms", 100.0);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cfg.getInt("seed", 29));
    const std::string jsonPath =
        cfg.getString("serve-json", "BENCH_serve.json");

    bench::printHeader(
        "Serving scale sweep (extension)",
        "multi-stream batching + admission control vs per-stream "
        "serial baseline, modeled engine");
    std::printf("%d frames per stream, budget %.0f ms, seed %llu\n\n",
                frames, budgetMs,
                static_cast<unsigned long long>(seed));
    std::printf("%7s %9s %9s %10s %10s %9s %9s %7s\n", "streams",
                "mode", "window ms", "p99.99 ms", "goodput", "shed %",
                "miss %", "batch");

    const int streamCounts[] = {1, 2, 4, 8, 16, 24, 32};
    const double windows[] = {0.0, 4.0, 8.0};
    std::vector<SweepRow> rows;
    for (const int streams : streamCounts) {
        SweepRow base = runCell(streams, 0.0, false, frames, budgetMs,
                                seed);
        rows.push_back(base);
        const auto& b = base.report;
        std::printf("%7d %9s %9s %10.3f %10.3f %9.2f %9.4f %7.2f\n",
                    streams, "baseline", "-", b.admittedLatency.p9999,
                    b.goodputFps, 100.0 * b.shedRate,
                    b.framesAdmitted
                        ? 100.0 * b.deadlineMisses / b.framesAdmitted
                        : 0.0,
                    b.meanBatchSize);
        for (const double window : windows) {
            SweepRow row = runCell(streams, window, true, frames,
                                   budgetMs, seed);
            rows.push_back(row);
            const auto& r = row.report;
            std::printf(
                "%7d %9s %9.1f %10.3f %10.3f %9.2f %9.4f %7.2f%s\n",
                streams, "served", window, r.admittedLatency.p9999,
                r.goodputFps, 100.0 * r.shedRate,
                r.framesAdmitted
                    ? 100.0 * r.deadlineMisses / r.framesAdmitted
                    : 0.0,
                r.meanBatchSize,
                r.admittedLatency.p9999 <= budgetMs ? "  [meets tail]"
                                                    : "");
        }
    }

    // ISSUE 4 acceptance: at some stream count >= 8, batching +
    // admission keeps admitted p99.99 inside the budget while the
    // baseline misses it, at strictly higher goodput.
    bool accepted = false;
    int acceptedStreams = 0;
    for (const SweepRow& base : rows) {
        if (base.served || base.streams < 8)
            continue;
        if (base.report.admittedLatency.p9999 <= budgetMs)
            continue; // baseline still holds the tail here.
        for (const SweepRow& srv : rows) {
            if (!srv.served || srv.streams != base.streams)
                continue;
            if (srv.report.admittedLatency.p9999 <= budgetMs &&
                srv.report.goodputFps > base.report.goodputFps) {
                accepted = true;
                acceptedStreams = srv.streams;
                break;
            }
        }
        if (accepted)
            break;
    }
    std::printf(
        "\nverdict: %s\n",
        accepted
            ? "PASS: batching + admission holds admitted p99.99 "
              "inside the budget at >= 8 streams where the baseline "
              "misses, at strictly higher goodput"
            : "FAIL: no stream count >= 8 where batching + admission "
              "beats the baseline on both tail and goodput");
    if (accepted)
        std::printf("first such stream count: %d\n", acceptedStreams);

    // ISSUE 7 acceptance: the flight recorder's ring pushes must
    // cost < 5 % of the serving run they instrument.
    const FlightOverhead overhead = measureFlightOverhead(
        budgetMs, seed, cfg.getInt("overhead-reps", 5));
    std::printf("\nflight recorder overhead (measured engine): "
                "%.3f ms on vs %.3f ms off (%.2f %%) %s\n",
                overhead.onMs, overhead.offMs, overhead.pct,
                overhead.pct < 5.0 ? "[within 5 % budget]"
                                   : "[EXCEEDS 5 % budget]");

    writeJson(jsonPath.c_str(), rows, frames, budgetMs, seed,
              overhead);
    return accepted ? 0 : 1;
}
