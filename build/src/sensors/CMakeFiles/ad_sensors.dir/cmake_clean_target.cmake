file(REMOVE_RECURSE
  "libad_sensors.a"
)
