# Empty compiler generated dependencies file for ad_sensors.
# This may be replaced when dependencies are built.
