file(REMOVE_RECURSE
  "CMakeFiles/ad_sensors.dir/camera.cc.o"
  "CMakeFiles/ad_sensors.dir/camera.cc.o.d"
  "CMakeFiles/ad_sensors.dir/odometry.cc.o"
  "CMakeFiles/ad_sensors.dir/odometry.cc.o.d"
  "CMakeFiles/ad_sensors.dir/scenario.cc.o"
  "CMakeFiles/ad_sensors.dir/scenario.cc.o.d"
  "CMakeFiles/ad_sensors.dir/world.cc.o"
  "CMakeFiles/ad_sensors.dir/world.cc.o.d"
  "libad_sensors.a"
  "libad_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
