
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensors/camera.cc" "src/sensors/CMakeFiles/ad_sensors.dir/camera.cc.o" "gcc" "src/sensors/CMakeFiles/ad_sensors.dir/camera.cc.o.d"
  "/root/repo/src/sensors/odometry.cc" "src/sensors/CMakeFiles/ad_sensors.dir/odometry.cc.o" "gcc" "src/sensors/CMakeFiles/ad_sensors.dir/odometry.cc.o.d"
  "/root/repo/src/sensors/scenario.cc" "src/sensors/CMakeFiles/ad_sensors.dir/scenario.cc.o" "gcc" "src/sensors/CMakeFiles/ad_sensors.dir/scenario.cc.o.d"
  "/root/repo/src/sensors/world.cc" "src/sensors/CMakeFiles/ad_sensors.dir/world.cc.o" "gcc" "src/sensors/CMakeFiles/ad_sensors.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ad_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
