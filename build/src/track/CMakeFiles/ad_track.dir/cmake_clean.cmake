file(REMOVE_RECURSE
  "CMakeFiles/ad_track.dir/goturn.cc.o"
  "CMakeFiles/ad_track.dir/goturn.cc.o.d"
  "CMakeFiles/ad_track.dir/pool.cc.o"
  "CMakeFiles/ad_track.dir/pool.cc.o.d"
  "libad_track.a"
  "libad_track.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_track.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
