file(REMOVE_RECURSE
  "libad_track.a"
)
