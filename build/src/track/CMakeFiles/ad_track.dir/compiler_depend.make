# Empty compiler generated dependencies file for ad_track.
# This may be replaced when dependencies are built.
