file(REMOVE_RECURSE
  "CMakeFiles/ad_common.dir/config.cc.o"
  "CMakeFiles/ad_common.dir/config.cc.o.d"
  "CMakeFiles/ad_common.dir/geometry.cc.o"
  "CMakeFiles/ad_common.dir/geometry.cc.o.d"
  "CMakeFiles/ad_common.dir/image.cc.o"
  "CMakeFiles/ad_common.dir/image.cc.o.d"
  "CMakeFiles/ad_common.dir/logging.cc.o"
  "CMakeFiles/ad_common.dir/logging.cc.o.d"
  "CMakeFiles/ad_common.dir/random.cc.o"
  "CMakeFiles/ad_common.dir/random.cc.o.d"
  "CMakeFiles/ad_common.dir/stats.cc.o"
  "CMakeFiles/ad_common.dir/stats.cc.o.d"
  "CMakeFiles/ad_common.dir/thread_pool.cc.o"
  "CMakeFiles/ad_common.dir/thread_pool.cc.o.d"
  "libad_common.a"
  "libad_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
