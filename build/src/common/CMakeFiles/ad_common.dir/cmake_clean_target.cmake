file(REMOVE_RECURSE
  "libad_common.a"
)
