# Empty compiler generated dependencies file for ad_common.
# This may be replaced when dependencies are built.
