file(REMOVE_RECURSE
  "CMakeFiles/ad_detect.dir/yolo.cc.o"
  "CMakeFiles/ad_detect.dir/yolo.cc.o.d"
  "libad_detect.a"
  "libad_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
