file(REMOVE_RECURSE
  "libad_detect.a"
)
