# Empty compiler generated dependencies file for ad_detect.
# This may be replaced when dependencies are built.
