file(REMOVE_RECURSE
  "CMakeFiles/ad_slam.dir/localizer.cc.o"
  "CMakeFiles/ad_slam.dir/localizer.cc.o.d"
  "CMakeFiles/ad_slam.dir/map.cc.o"
  "CMakeFiles/ad_slam.dir/map.cc.o.d"
  "CMakeFiles/ad_slam.dir/mapping.cc.o"
  "CMakeFiles/ad_slam.dir/mapping.cc.o.d"
  "CMakeFiles/ad_slam.dir/pose_solver.cc.o"
  "CMakeFiles/ad_slam.dir/pose_solver.cc.o.d"
  "CMakeFiles/ad_slam.dir/tiled_store.cc.o"
  "CMakeFiles/ad_slam.dir/tiled_store.cc.o.d"
  "libad_slam.a"
  "libad_slam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_slam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
