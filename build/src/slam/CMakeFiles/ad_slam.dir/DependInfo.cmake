
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slam/localizer.cc" "src/slam/CMakeFiles/ad_slam.dir/localizer.cc.o" "gcc" "src/slam/CMakeFiles/ad_slam.dir/localizer.cc.o.d"
  "/root/repo/src/slam/map.cc" "src/slam/CMakeFiles/ad_slam.dir/map.cc.o" "gcc" "src/slam/CMakeFiles/ad_slam.dir/map.cc.o.d"
  "/root/repo/src/slam/mapping.cc" "src/slam/CMakeFiles/ad_slam.dir/mapping.cc.o" "gcc" "src/slam/CMakeFiles/ad_slam.dir/mapping.cc.o.d"
  "/root/repo/src/slam/pose_solver.cc" "src/slam/CMakeFiles/ad_slam.dir/pose_solver.cc.o" "gcc" "src/slam/CMakeFiles/ad_slam.dir/pose_solver.cc.o.d"
  "/root/repo/src/slam/tiled_store.cc" "src/slam/CMakeFiles/ad_slam.dir/tiled_store.cc.o" "gcc" "src/slam/CMakeFiles/ad_slam.dir/tiled_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ad_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/ad_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/ad_sensors.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
