# Empty compiler generated dependencies file for ad_slam.
# This may be replaced when dependencies are built.
