file(REMOVE_RECURSE
  "libad_slam.a"
)
