
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/brief.cc" "src/vision/CMakeFiles/ad_vision.dir/brief.cc.o" "gcc" "src/vision/CMakeFiles/ad_vision.dir/brief.cc.o.d"
  "/root/repo/src/vision/fast.cc" "src/vision/CMakeFiles/ad_vision.dir/fast.cc.o" "gcc" "src/vision/CMakeFiles/ad_vision.dir/fast.cc.o.d"
  "/root/repo/src/vision/lut_trig.cc" "src/vision/CMakeFiles/ad_vision.dir/lut_trig.cc.o" "gcc" "src/vision/CMakeFiles/ad_vision.dir/lut_trig.cc.o.d"
  "/root/repo/src/vision/orb.cc" "src/vision/CMakeFiles/ad_vision.dir/orb.cc.o" "gcc" "src/vision/CMakeFiles/ad_vision.dir/orb.cc.o.d"
  "/root/repo/src/vision/spatial_matcher.cc" "src/vision/CMakeFiles/ad_vision.dir/spatial_matcher.cc.o" "gcc" "src/vision/CMakeFiles/ad_vision.dir/spatial_matcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ad_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
