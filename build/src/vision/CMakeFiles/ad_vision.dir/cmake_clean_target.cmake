file(REMOVE_RECURSE
  "libad_vision.a"
)
