# Empty dependencies file for ad_vision.
# This may be replaced when dependencies are built.
