file(REMOVE_RECURSE
  "CMakeFiles/ad_vision.dir/brief.cc.o"
  "CMakeFiles/ad_vision.dir/brief.cc.o.d"
  "CMakeFiles/ad_vision.dir/fast.cc.o"
  "CMakeFiles/ad_vision.dir/fast.cc.o.d"
  "CMakeFiles/ad_vision.dir/lut_trig.cc.o"
  "CMakeFiles/ad_vision.dir/lut_trig.cc.o.d"
  "CMakeFiles/ad_vision.dir/orb.cc.o"
  "CMakeFiles/ad_vision.dir/orb.cc.o.d"
  "CMakeFiles/ad_vision.dir/spatial_matcher.cc.o"
  "CMakeFiles/ad_vision.dir/spatial_matcher.cc.o.d"
  "libad_vision.a"
  "libad_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
