# Empty dependencies file for ad_vehicle.
# This may be replaced when dependencies are built.
