
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vehicle/energy.cc" "src/vehicle/CMakeFiles/ad_vehicle.dir/energy.cc.o" "gcc" "src/vehicle/CMakeFiles/ad_vehicle.dir/energy.cc.o.d"
  "/root/repo/src/vehicle/power.cc" "src/vehicle/CMakeFiles/ad_vehicle.dir/power.cc.o" "gcc" "src/vehicle/CMakeFiles/ad_vehicle.dir/power.cc.o.d"
  "/root/repo/src/vehicle/range.cc" "src/vehicle/CMakeFiles/ad_vehicle.dir/range.cc.o" "gcc" "src/vehicle/CMakeFiles/ad_vehicle.dir/range.cc.o.d"
  "/root/repo/src/vehicle/storage.cc" "src/vehicle/CMakeFiles/ad_vehicle.dir/storage.cc.o" "gcc" "src/vehicle/CMakeFiles/ad_vehicle.dir/storage.cc.o.d"
  "/root/repo/src/vehicle/thermal.cc" "src/vehicle/CMakeFiles/ad_vehicle.dir/thermal.cc.o" "gcc" "src/vehicle/CMakeFiles/ad_vehicle.dir/thermal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ad_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
