file(REMOVE_RECURSE
  "libad_vehicle.a"
)
