file(REMOVE_RECURSE
  "CMakeFiles/ad_vehicle.dir/energy.cc.o"
  "CMakeFiles/ad_vehicle.dir/energy.cc.o.d"
  "CMakeFiles/ad_vehicle.dir/power.cc.o"
  "CMakeFiles/ad_vehicle.dir/power.cc.o.d"
  "CMakeFiles/ad_vehicle.dir/range.cc.o"
  "CMakeFiles/ad_vehicle.dir/range.cc.o.d"
  "CMakeFiles/ad_vehicle.dir/storage.cc.o"
  "CMakeFiles/ad_vehicle.dir/storage.cc.o.d"
  "CMakeFiles/ad_vehicle.dir/thermal.cc.o"
  "CMakeFiles/ad_vehicle.dir/thermal.cc.o.d"
  "libad_vehicle.a"
  "libad_vehicle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_vehicle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
