file(REMOVE_RECURSE
  "CMakeFiles/ad_pipeline.dir/constraints.cc.o"
  "CMakeFiles/ad_pipeline.dir/constraints.cc.o.d"
  "CMakeFiles/ad_pipeline.dir/multi_camera.cc.o"
  "CMakeFiles/ad_pipeline.dir/multi_camera.cc.o.d"
  "CMakeFiles/ad_pipeline.dir/pipeline.cc.o"
  "CMakeFiles/ad_pipeline.dir/pipeline.cc.o.d"
  "CMakeFiles/ad_pipeline.dir/scheduler.cc.o"
  "CMakeFiles/ad_pipeline.dir/scheduler.cc.o.d"
  "CMakeFiles/ad_pipeline.dir/simulation.cc.o"
  "CMakeFiles/ad_pipeline.dir/simulation.cc.o.d"
  "CMakeFiles/ad_pipeline.dir/system_model.cc.o"
  "CMakeFiles/ad_pipeline.dir/system_model.cc.o.d"
  "libad_pipeline.a"
  "libad_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
