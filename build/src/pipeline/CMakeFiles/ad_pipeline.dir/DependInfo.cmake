
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/constraints.cc" "src/pipeline/CMakeFiles/ad_pipeline.dir/constraints.cc.o" "gcc" "src/pipeline/CMakeFiles/ad_pipeline.dir/constraints.cc.o.d"
  "/root/repo/src/pipeline/multi_camera.cc" "src/pipeline/CMakeFiles/ad_pipeline.dir/multi_camera.cc.o" "gcc" "src/pipeline/CMakeFiles/ad_pipeline.dir/multi_camera.cc.o.d"
  "/root/repo/src/pipeline/pipeline.cc" "src/pipeline/CMakeFiles/ad_pipeline.dir/pipeline.cc.o" "gcc" "src/pipeline/CMakeFiles/ad_pipeline.dir/pipeline.cc.o.d"
  "/root/repo/src/pipeline/scheduler.cc" "src/pipeline/CMakeFiles/ad_pipeline.dir/scheduler.cc.o" "gcc" "src/pipeline/CMakeFiles/ad_pipeline.dir/scheduler.cc.o.d"
  "/root/repo/src/pipeline/simulation.cc" "src/pipeline/CMakeFiles/ad_pipeline.dir/simulation.cc.o" "gcc" "src/pipeline/CMakeFiles/ad_pipeline.dir/simulation.cc.o.d"
  "/root/repo/src/pipeline/system_model.cc" "src/pipeline/CMakeFiles/ad_pipeline.dir/system_model.cc.o" "gcc" "src/pipeline/CMakeFiles/ad_pipeline.dir/system_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ad_common.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/ad_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/ad_track.dir/DependInfo.cmake"
  "/root/repo/build/src/slam/CMakeFiles/ad_slam.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/ad_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/planning/CMakeFiles/ad_planning.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/ad_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/vehicle/CMakeFiles/ad_vehicle.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/ad_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/ad_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ad_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
