# Empty dependencies file for ad_pipeline.
# This may be replaced when dependencies are built.
