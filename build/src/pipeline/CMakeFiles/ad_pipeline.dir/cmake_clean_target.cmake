file(REMOVE_RECURSE
  "libad_pipeline.a"
)
