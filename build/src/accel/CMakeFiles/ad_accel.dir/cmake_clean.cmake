file(REMOVE_RECURSE
  "CMakeFiles/ad_accel.dir/calibration.cc.o"
  "CMakeFiles/ad_accel.dir/calibration.cc.o.d"
  "CMakeFiles/ad_accel.dir/models.cc.o"
  "CMakeFiles/ad_accel.dir/models.cc.o.d"
  "CMakeFiles/ad_accel.dir/platform.cc.o"
  "CMakeFiles/ad_accel.dir/platform.cc.o.d"
  "CMakeFiles/ad_accel.dir/workload.cc.o"
  "CMakeFiles/ad_accel.dir/workload.cc.o.d"
  "libad_accel.a"
  "libad_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
