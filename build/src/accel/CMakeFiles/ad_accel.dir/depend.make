# Empty dependencies file for ad_accel.
# This may be replaced when dependencies are built.
