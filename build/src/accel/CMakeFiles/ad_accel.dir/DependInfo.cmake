
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/calibration.cc" "src/accel/CMakeFiles/ad_accel.dir/calibration.cc.o" "gcc" "src/accel/CMakeFiles/ad_accel.dir/calibration.cc.o.d"
  "/root/repo/src/accel/models.cc" "src/accel/CMakeFiles/ad_accel.dir/models.cc.o" "gcc" "src/accel/CMakeFiles/ad_accel.dir/models.cc.o.d"
  "/root/repo/src/accel/platform.cc" "src/accel/CMakeFiles/ad_accel.dir/platform.cc.o" "gcc" "src/accel/CMakeFiles/ad_accel.dir/platform.cc.o.d"
  "/root/repo/src/accel/workload.cc" "src/accel/CMakeFiles/ad_accel.dir/workload.cc.o" "gcc" "src/accel/CMakeFiles/ad_accel.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ad_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ad_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
