file(REMOVE_RECURSE
  "libad_accel.a"
)
