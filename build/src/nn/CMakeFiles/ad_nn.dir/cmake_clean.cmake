file(REMOVE_RECURSE
  "CMakeFiles/ad_nn.dir/gemm.cc.o"
  "CMakeFiles/ad_nn.dir/gemm.cc.o.d"
  "CMakeFiles/ad_nn.dir/layers.cc.o"
  "CMakeFiles/ad_nn.dir/layers.cc.o.d"
  "CMakeFiles/ad_nn.dir/models.cc.o"
  "CMakeFiles/ad_nn.dir/models.cc.o.d"
  "CMakeFiles/ad_nn.dir/network.cc.o"
  "CMakeFiles/ad_nn.dir/network.cc.o.d"
  "CMakeFiles/ad_nn.dir/sparse.cc.o"
  "CMakeFiles/ad_nn.dir/sparse.cc.o.d"
  "CMakeFiles/ad_nn.dir/tensor.cc.o"
  "CMakeFiles/ad_nn.dir/tensor.cc.o.d"
  "libad_nn.a"
  "libad_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
