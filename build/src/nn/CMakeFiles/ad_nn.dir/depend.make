# Empty dependencies file for ad_nn.
# This may be replaced when dependencies are built.
