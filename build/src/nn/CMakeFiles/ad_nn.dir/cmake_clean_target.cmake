file(REMOVE_RECURSE
  "libad_nn.a"
)
