# Empty compiler generated dependencies file for ad_fusion.
# This may be replaced when dependencies are built.
