file(REMOVE_RECURSE
  "CMakeFiles/ad_fusion.dir/fusion.cc.o"
  "CMakeFiles/ad_fusion.dir/fusion.cc.o.d"
  "CMakeFiles/ad_fusion.dir/kalman.cc.o"
  "CMakeFiles/ad_fusion.dir/kalman.cc.o.d"
  "libad_fusion.a"
  "libad_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
