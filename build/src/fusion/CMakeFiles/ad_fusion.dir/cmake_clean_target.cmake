file(REMOVE_RECURSE
  "libad_fusion.a"
)
