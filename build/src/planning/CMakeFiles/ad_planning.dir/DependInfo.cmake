
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/planning/conformal.cc" "src/planning/CMakeFiles/ad_planning.dir/conformal.cc.o" "gcc" "src/planning/CMakeFiles/ad_planning.dir/conformal.cc.o.d"
  "/root/repo/src/planning/control.cc" "src/planning/CMakeFiles/ad_planning.dir/control.cc.o" "gcc" "src/planning/CMakeFiles/ad_planning.dir/control.cc.o.d"
  "/root/repo/src/planning/lattice.cc" "src/planning/CMakeFiles/ad_planning.dir/lattice.cc.o" "gcc" "src/planning/CMakeFiles/ad_planning.dir/lattice.cc.o.d"
  "/root/repo/src/planning/mission.cc" "src/planning/CMakeFiles/ad_planning.dir/mission.cc.o" "gcc" "src/planning/CMakeFiles/ad_planning.dir/mission.cc.o.d"
  "/root/repo/src/planning/motion_planner.cc" "src/planning/CMakeFiles/ad_planning.dir/motion_planner.cc.o" "gcc" "src/planning/CMakeFiles/ad_planning.dir/motion_planner.cc.o.d"
  "/root/repo/src/planning/trajectory.cc" "src/planning/CMakeFiles/ad_planning.dir/trajectory.cc.o" "gcc" "src/planning/CMakeFiles/ad_planning.dir/trajectory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ad_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
