file(REMOVE_RECURSE
  "libad_planning.a"
)
