file(REMOVE_RECURSE
  "CMakeFiles/ad_planning.dir/conformal.cc.o"
  "CMakeFiles/ad_planning.dir/conformal.cc.o.d"
  "CMakeFiles/ad_planning.dir/control.cc.o"
  "CMakeFiles/ad_planning.dir/control.cc.o.d"
  "CMakeFiles/ad_planning.dir/lattice.cc.o"
  "CMakeFiles/ad_planning.dir/lattice.cc.o.d"
  "CMakeFiles/ad_planning.dir/mission.cc.o"
  "CMakeFiles/ad_planning.dir/mission.cc.o.d"
  "CMakeFiles/ad_planning.dir/motion_planner.cc.o"
  "CMakeFiles/ad_planning.dir/motion_planner.cc.o.d"
  "CMakeFiles/ad_planning.dir/trajectory.cc.o"
  "CMakeFiles/ad_planning.dir/trajectory.cc.o.d"
  "libad_planning.a"
  "libad_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
