# Empty compiler generated dependencies file for ad_planning.
# This may be replaced when dependencies are built.
