# Empty compiler generated dependencies file for admap.
# This may be replaced when dependencies are built.
