file(REMOVE_RECURSE
  "CMakeFiles/admap.dir/admap.cc.o"
  "CMakeFiles/admap.dir/admap.cc.o.d"
  "admap"
  "admap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
