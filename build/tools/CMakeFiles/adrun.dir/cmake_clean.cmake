file(REMOVE_RECURSE
  "CMakeFiles/adrun.dir/adrun.cc.o"
  "CMakeFiles/adrun.dir/adrun.cc.o.d"
  "adrun"
  "adrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
