# Empty compiler generated dependencies file for adrun.
# This may be replaced when dependencies are built.
