# Empty dependencies file for adrun.
# This may be replaced when dependencies are built.
