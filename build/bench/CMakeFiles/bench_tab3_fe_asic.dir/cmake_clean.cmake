file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_fe_asic.dir/bench_tab3_fe_asic.cc.o"
  "CMakeFiles/bench_tab3_fe_asic.dir/bench_tab3_fe_asic.cc.o.d"
  "bench_tab3_fe_asic"
  "bench_tab3_fe_asic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_fe_asic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
