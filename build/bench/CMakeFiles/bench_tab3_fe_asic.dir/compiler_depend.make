# Empty compiler generated dependencies file for bench_tab3_fe_asic.
# This may be replaced when dependencies are built.
