file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_resolution_accuracy.dir/bench_ext_resolution_accuracy.cc.o"
  "CMakeFiles/bench_ext_resolution_accuracy.dir/bench_ext_resolution_accuracy.cc.o.d"
  "bench_ext_resolution_accuracy"
  "bench_ext_resolution_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_resolution_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
