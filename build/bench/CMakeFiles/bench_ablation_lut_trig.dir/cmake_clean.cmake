file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lut_trig.dir/bench_ablation_lut_trig.cc.o"
  "CMakeFiles/bench_ablation_lut_trig.dir/bench_ablation_lut_trig.cc.o.d"
  "bench_ablation_lut_trig"
  "bench_ablation_lut_trig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lut_trig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
