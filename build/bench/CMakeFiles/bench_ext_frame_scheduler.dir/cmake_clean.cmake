file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_frame_scheduler.dir/bench_ext_frame_scheduler.cc.o"
  "CMakeFiles/bench_ext_frame_scheduler.dir/bench_ext_frame_scheduler.cc.o.d"
  "bench_ext_frame_scheduler"
  "bench_ext_frame_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_frame_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
