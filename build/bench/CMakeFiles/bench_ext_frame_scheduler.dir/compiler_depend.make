# Empty compiler generated dependencies file for bench_ext_frame_scheduler.
# This may be replaced when dependencies are built.
