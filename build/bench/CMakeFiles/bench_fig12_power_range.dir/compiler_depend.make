# Empty compiler generated dependencies file for bench_fig12_power_range.
# This may be replaced when dependencies are built.
