# Empty compiler generated dependencies file for bench_ablation_tracker_pool.
# This may be replaced when dependencies are built.
