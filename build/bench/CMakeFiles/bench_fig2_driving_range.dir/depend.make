# Empty dependencies file for bench_fig2_driving_range.
# This may be replaced when dependencies are built.
