# Empty dependencies file for bench_fig10_acceleration.
# This may be replaced when dependencies are built.
