# Empty compiler generated dependencies file for bench_ablation_sparse_fc.
# This may be replaced when dependencies are built.
