file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sparse_fc.dir/bench_ablation_sparse_fc.cc.o"
  "CMakeFiles/bench_ablation_sparse_fc.dir/bench_ablation_sparse_fc.cc.o.d"
  "bench_ablation_sparse_fc"
  "bench_ablation_sparse_fc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sparse_fc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
