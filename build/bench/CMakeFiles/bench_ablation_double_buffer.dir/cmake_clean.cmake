file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_double_buffer.dir/bench_ablation_double_buffer.cc.o"
  "CMakeFiles/bench_ablation_double_buffer.dir/bench_ablation_double_buffer.cc.o.d"
  "bench_ablation_double_buffer"
  "bench_ablation_double_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_double_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
