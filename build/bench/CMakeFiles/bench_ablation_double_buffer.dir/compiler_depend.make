# Empty compiler generated dependencies file for bench_ablation_double_buffer.
# This may be replaced when dependencies are built.
