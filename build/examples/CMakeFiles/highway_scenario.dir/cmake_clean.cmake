file(REMOVE_RECURSE
  "CMakeFiles/highway_scenario.dir/highway_scenario.cpp.o"
  "CMakeFiles/highway_scenario.dir/highway_scenario.cpp.o.d"
  "highway_scenario"
  "highway_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/highway_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
