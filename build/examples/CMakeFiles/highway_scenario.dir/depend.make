# Empty dependencies file for highway_scenario.
# This may be replaced when dependencies are built.
