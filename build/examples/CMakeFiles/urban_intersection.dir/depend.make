# Empty dependencies file for urban_intersection.
# This may be replaced when dependencies are built.
