file(REMOVE_RECURSE
  "CMakeFiles/urban_intersection.dir/urban_intersection.cpp.o"
  "CMakeFiles/urban_intersection.dir/urban_intersection.cpp.o.d"
  "urban_intersection"
  "urban_intersection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urban_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
