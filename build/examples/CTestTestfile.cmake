# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--frames=8" "--seed=1")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_highway "/root/repo/build/examples/highway_scenario" "--frames=8" "--seed=2")
set_tests_properties(example_highway PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_urban "/root/repo/build/examples/urban_intersection" "--frames=8" "--seed=3")
set_tests_properties(example_urban PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_platform_explorer "/root/repo/build/examples/platform_explorer" "--samples=500")
set_tests_properties(example_platform_explorer PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_parking_lot "/root/repo/build/examples/parking_lot")
set_tests_properties(example_parking_lot PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
