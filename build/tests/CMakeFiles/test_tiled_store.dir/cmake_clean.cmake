file(REMOVE_RECURSE
  "CMakeFiles/test_tiled_store.dir/test_tiled_store.cc.o"
  "CMakeFiles/test_tiled_store.dir/test_tiled_store.cc.o.d"
  "test_tiled_store"
  "test_tiled_store.pdb"
  "test_tiled_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tiled_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
