# Empty dependencies file for test_tiled_store.
# This may be replaced when dependencies are built.
