file(REMOVE_RECURSE
  "CMakeFiles/test_slam.dir/test_slam.cc.o"
  "CMakeFiles/test_slam.dir/test_slam.cc.o.d"
  "test_slam"
  "test_slam.pdb"
  "test_slam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
