file(REMOVE_RECURSE
  "CMakeFiles/test_multi_camera.dir/test_multi_camera.cc.o"
  "CMakeFiles/test_multi_camera.dir/test_multi_camera.cc.o.d"
  "test_multi_camera"
  "test_multi_camera.pdb"
  "test_multi_camera[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_camera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
