# Empty compiler generated dependencies file for test_multi_camera.
# This may be replaced when dependencies are built.
