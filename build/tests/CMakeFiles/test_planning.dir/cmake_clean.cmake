file(REMOVE_RECURSE
  "CMakeFiles/test_planning.dir/test_planning.cc.o"
  "CMakeFiles/test_planning.dir/test_planning.cc.o.d"
  "test_planning"
  "test_planning.pdb"
  "test_planning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
