file(REMOVE_RECURSE
  "CMakeFiles/test_spatial_matcher.dir/test_spatial_matcher.cc.o"
  "CMakeFiles/test_spatial_matcher.dir/test_spatial_matcher.cc.o.d"
  "test_spatial_matcher"
  "test_spatial_matcher.pdb"
  "test_spatial_matcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spatial_matcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
