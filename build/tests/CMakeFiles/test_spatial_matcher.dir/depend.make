# Empty dependencies file for test_spatial_matcher.
# This may be replaced when dependencies are built.
