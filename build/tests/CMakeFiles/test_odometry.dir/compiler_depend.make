# Empty compiler generated dependencies file for test_odometry.
# This may be replaced when dependencies are built.
