file(REMOVE_RECURSE
  "CMakeFiles/test_odometry.dir/test_odometry.cc.o"
  "CMakeFiles/test_odometry.dir/test_odometry.cc.o.d"
  "test_odometry"
  "test_odometry.pdb"
  "test_odometry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_odometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
