
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_track.cc" "tests/CMakeFiles/test_track.dir/test_track.cc.o" "gcc" "tests/CMakeFiles/test_track.dir/test_track.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/track/CMakeFiles/ad_track.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/ad_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/ad_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ad_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ad_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
