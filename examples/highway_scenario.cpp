/**
 * @file
 * Highway cruising, closed loop: the ego vehicle is driven by the
 * pipeline's own control output (pure pursuit + PI speed on the
 * conformal-lattice plan), perception runs on rendered frames, and the
 * example reports tracking continuity, lane keeping quality and a
 * platform comparison for the same drive under the paper's modeled
 * accelerator configurations.
 *
 * Usage: highway_scenario [--frames=150] [--seed=2]
 */

#include <cmath>
#include <cstdio>

#include "common/config.hh"
#include "pipeline/pipeline.hh"
#include "pipeline/system_model.hh"
#include "planning/control.hh"
#include "sensors/scenario.hh"
#include "slam/mapping.hh"

int
main(int argc, char** argv)
{
    using namespace ad;
    const Config cfg = Config::fromArgs(argc, argv);
    const int frames = cfg.getInt("frames", 150);
    Rng rng(cfg.getInt("seed", 2));

    std::printf("== highway scenario (closed loop) ==\n");
    sensors::ScenarioParams sp;
    sp.roadLength = 400.0;
    sp.vehicles = 10;
    sensors::Scenario scenario = sensors::makeHighwayScenario(rng, sp);
    sensors::Camera camera(sensors::Resolution::HHD);
    const slam::PriorMap map =
        slam::buildPriorMap(scenario.world, camera, 1);

    pipeline::PipelineParams params;
    params.detector.inputSize = 160;
    params.detector.width = 0.25;
    params.trackerPool.tracker.cropSize = 32;
    params.trackerPool.tracker.width = 0.1;
    params.laneCenterY = scenario.world.road().laneCenter(1);
    params.motionPlanner.cruiseSpeed = 20.0;
    pipeline::Pipeline pipe(&map, &camera, nullptr, params);

    planning::VehicleState ego;
    ego.pose = scenario.ego.pose;
    ego.speed = 15.0;
    pipe.reset(ego.pose, {ego.speed, 0},
               {scenario.world.road().length - 10, params.laneCenterY});
    // Wheel odometry feeds the localizer's motion model -- important
    // in closed loop, where steering changes the heading.
    sensors::WheelOdometry odometry(17);

    sensors::World world = scenario.world;
    double worstLaneError = 0;
    double speedSum = 0;
    int trackedFrames = 0;
    int maxTracks = 0;
    const double dt = 0.1;

    for (int i = 0; i < frames; ++i) {
        world.step(dt);
        const sensors::Frame frame = camera.render(world, ego.pose);
        const auto out = pipe.processFrame(frame.image, dt, ego.speed);

        // Close the loop: the pipeline's command drives the vehicle.
        const Pose2 prevPose = ego.pose;
        ego = planning::stepBicycleModel(ego, out.command, dt);
        pipe.feedOdometry(odometry.measure(prevPose, ego.pose, dt));
        if (ego.pose.pos.x > world.road().length - 30) {
            ego.pose.pos.x = 30; // loop the stretch
            pipe.localizer().reset(ego.pose, {ego.speed, 0});
        }

        worstLaneError = std::max(
            worstLaneError,
            std::fabs(ego.pose.pos.y - params.laneCenterY));
        speedSum += ego.speed;
        trackedFrames += !out.tracks.empty();
        maxTracks = std::max(maxTracks,
                             static_cast<int>(out.tracks.size()));
    }

    std::printf("closed-loop drive: %d frames\n", frames);
    std::printf("  worst lane error     %.2f m\n", worstLaneError);
    std::printf("  mean speed           %.1f m/s\n", speedSum / frames);
    std::printf("  frames with tracks   %d (max %d simultaneous)\n",
                trackedFrames, maxTracks);
    std::printf("  e2e latency          %s\n",
                pipe.endToEndLatency().summary().toString().c_str());

    // The same highway workload under the paper's platforms.
    std::printf("\nmodeled platform comparison (Figure 10 shape):\n");
    std::printf("  %-6s %10s %12s %8s\n", "all-on", "mean(ms)",
                "p99.99(ms)", "power(W)");
    pipeline::SystemModel model;
    for (int p = 0; p < accel::kNumPlatforms; ++p) {
        pipeline::SystemConfig c;
        c.det = c.tra = c.loc = static_cast<accel::Platform>(p);
        const auto a = model.assess(c, 30000, rng);
        std::printf("  %-6s %10.1f %12.1f %8.0f\n",
                    accel::platformName(c.det), a.meanMs, a.tailMs,
                    model.computePowerW(c));
    }
    return 0;
}
