/**
 * @file
 * Quickstart: the smallest complete use of the library.
 *
 * Builds a synthetic highway world, surveys it into a prior map, runs
 * the full end-to-end pipeline (detection, tracking, localization,
 * fusion, motion planning, control) over a camera stream, prints the
 * per-stage latency statistics the paper reports, and checks a
 * modeled accelerator configuration against all Section 2.4 design
 * constraints.
 *
 * Usage: quickstart [--frames=100] [--seed=1]
 */

#include <cstdio>

#include "common/config.hh"
#include "pipeline/constraints.hh"
#include "pipeline/pipeline.hh"
#include "sensors/scenario.hh"
#include "slam/mapping.hh"

int
main(int argc, char** argv)
{
    using namespace ad;
    const Config cfg = Config::fromArgs(argc, argv);
    const int frames = cfg.getInt("frames", 100);
    Rng rng(cfg.getInt("seed", 1));

    std::printf("== autodrive quickstart ==\n");

    // 1. A synthetic world and a camera.
    sensors::ScenarioParams sp;
    sp.roadLength = 300.0;
    sensors::Scenario scenario = sensors::makeHighwayScenario(rng, sp);
    sensors::Camera camera(sensors::Resolution::HHD);

    // 2. Survey the road into a prior map (the storage constraint's
    //    subject, Section 2.4.3).
    std::printf("surveying prior map...\n");
    const slam::PriorMap map =
        slam::buildPriorMap(scenario.world, camera, 1);
    std::printf("prior map: %zu landmarks, %.1f KB (%.1f points/m)\n",
                map.size(), map.storageBytes() / 1e3,
                map.pointsPerMeter());

    // 3. The end-to-end pipeline (measured mode, CPU-friendly scale).
    pipeline::PipelineParams params;
    params.detector.inputSize = 160;
    params.detector.width = 0.25;
    params.trackerPool.tracker.cropSize = 32;
    params.trackerPool.tracker.width = 0.1;
    params.laneCenterY = scenario.world.road().laneCenter(1);
    params.motionPlanner.cruiseSpeed = scenario.ego.speed;
    pipeline::Pipeline pipe(&map, &camera, nullptr, params);

    Pose2 ego = scenario.ego.pose;
    pipe.reset(ego, {scenario.ego.speed, 0},
               {scenario.world.road().length - 10, params.laneCenterY});

    // 4. Drive.
    sensors::World world = scenario.world;
    int localized = 0;
    int detections = 0;
    for (int i = 0; i < frames; ++i) {
        world.step(0.1);
        ego.pos.x += scenario.ego.speed * 0.1;
        if (ego.pos.x > world.road().length - 20)
            ego.pos.x = 20; // loop the stretch
        const sensors::Frame frame = camera.render(world, ego);
        const auto out = pipe.processFrame(frame.image, 0.1,
                                           scenario.ego.speed);
        localized += out.localization.ok;
        detections += static_cast<int>(out.detections.size());
    }

    std::printf("\nprocessed %d frames: %d localized, %d detections\n",
                frames, localized, detections);
    std::printf("per-stage latency (measured on this host):\n");
    std::printf("  DET     %s\n",
                pipe.detLatency().summary().toString().c_str());
    std::printf("  TRA     %s\n",
                pipe.traLatency().summary().toString().c_str());
    std::printf("  LOC     %s\n",
                pipe.locLatency().summary().toString().c_str());
    std::printf("  FUSION  %s\n",
                pipe.fusionLatency().summary().toString().c_str());
    std::printf("  MOTPLAN %s\n",
                pipe.motPlanLatency().summary().toString().c_str());
    std::printf("  E2E     %s\n",
                pipe.endToEndLatency().summary().toString().c_str());

    // 5. Check modeled accelerator designs against the paper's
    //    design constraints: the fastest design (GPU DET) trades away
    //    driving range; the all-ASIC design satisfies everything.
    pipeline::SystemModel model;
    pipeline::ConstraintChecker checker;
    const auto report = [&](const char* title,
                            const pipeline::SystemConfig& config) {
        std::printf("\nmodeled design check (%s, 8 cameras, KITTI "
                    "resolution):\n", title);
        const auto assessment = model.assess(config, 50000, rng);
        std::printf("  e2e mean %.1f ms, p99.99 %.1f ms; system %.0f W;"
                    " range -%.1f%%\n",
                    assessment.meanMs, assessment.tailMs,
                    assessment.power.totalW(),
                    assessment.rangeReductionPct);
        for (const auto& v : checker.check(assessment))
            std::printf("  [%s] %-14s %s\n", v.satisfied ? "ok" : "FAIL",
                        v.constraint.c_str(), v.detail.c_str());
    };

    pipeline::SystemConfig fastest;
    fastest.det = accel::Platform::Gpu;
    fastest.tra = accel::Platform::Asic;
    fastest.loc = accel::Platform::Asic;
    report("DET:GPU TRA:ASIC LOC:ASIC -- fastest", fastest);

    pipeline::SystemConfig frugal;
    frugal.det = accel::Platform::Asic;
    frugal.tra = accel::Platform::Asic;
    frugal.loc = accel::Platform::Asic;
    report("all-ASIC -- most efficient", frugal);
    return 0;
}
