/**
 * @file
 * Design-space explorer: sweeps all 64 platform assignments of the
 * three bottleneck engines (DET, TRA, LOC) across CPU/GPU/FPGA/ASIC,
 * evaluates each against the paper's Section 2.4 constraints at a
 * chosen camera resolution, and prints the frontier designs -- the
 * machinery behind the paper's Section 5 exploration.
 *
 * Usage: platform_explorer [--resolution=KITTI|HHD|HD|HD+|FHD|QHD]
 *                          [--cameras=8] [--samples=20000] [--seed=4]
 */

#include <cstdio>
#include <string>

#include "common/config.hh"
#include "common/logging.hh"
#include "pipeline/constraints.hh"
#include "pipeline/system_model.hh"
#include "sensors/camera.hh"

namespace {

double
resolutionScaleFor(const std::string& name)
{
    using ad::sensors::Resolution;
    const double kittiPx = 1242.0 * 375.0;
    for (const auto r :
         {Resolution::HHD, Resolution::Kitti, Resolution::HD,
          Resolution::HDPlus, Resolution::FHD, Resolution::QHD}) {
        const auto spec = ad::sensors::resolutionSpec(r);
        if (name == spec.name || name == std::string(spec.name).substr(
                                             0, name.size()))
            return spec.width * static_cast<double>(spec.height) /
                   kittiPx;
    }
    ad::fatal("unknown resolution '", name,
              "' (use HHD, KITTI, HD, HD+, FHD or QHD)");
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ad;
    using namespace ad::pipeline;
    const Config cfg = Config::fromArgs(argc, argv);
    const std::string resName = cfg.getString("resolution", "KITTI");
    const int cameras = cfg.getInt("cameras", 8);
    const int samples = cfg.getInt("samples", 20000);
    Rng rng(cfg.getInt("seed", 4));

    const double scale = resolutionScaleFor(resName);
    std::printf("== platform design-space explorer ==\n");
    std::printf("resolution %s (%.2fx KITTI pixels), %d cameras\n\n",
                resName.c_str(), scale, cameras);

    SystemModel model;
    ConstraintChecker checker;

    std::printf("%-28s %9s %11s %8s %7s %s\n", "configuration",
                "mean(ms)", "p99.99(ms)", "watts", "range%",
                "constraints");
    int feasible = 0;
    SystemAssessment best;
    bool haveBest = false;
    SystemAssessment frugal;
    bool haveFrugal = false;

    for (const auto& c : SystemModel::allConfigs(cameras, scale)) {
        const auto a = model.assess(c, samples, rng);
        std::string flags;
        for (const auto& v : checker.check(a))
            flags += v.satisfied ? '+' : '-';
        const bool ok = checker.allSatisfied(a);
        feasible += ok;
        if (ok && (!haveBest || a.tailMs < best.tailMs)) {
            best = a;
            haveBest = true;
        }
        if (ok && (!haveFrugal ||
                   a.rangeReductionPct < frugal.rangeReductionPct)) {
            frugal = a;
            haveFrugal = true;
        }
        std::printf("%-28s %9.1f %11.1f %8.0f %7.2f %s%s\n",
                    c.name().c_str(), a.meanMs, a.tailMs,
                    a.power.totalW(), a.rangeReductionPct,
                    flags.c_str(), a.meetsLatencyOnMeanOnly
                                       ? "  (mean-only!)"
                                       : "");
    }

    std::printf("\n%d of 64 configurations satisfy every Section 2.4 "
                "constraint.\n", feasible);
    if (haveBest)
        std::printf("fastest feasible: %s (p99.99 %.1f ms)\n",
                    best.config.name().c_str(), best.tailMs);
    if (haveFrugal)
        std::printf("most efficient feasible: %s (range -%.2f%%)\n",
                    frugal.config.name().c_str(),
                    frugal.rangeReductionPct);
    return 0;
}
