/**
 * @file
 * Urban street scenario: pedestrians crossing, bicycles, dense signs.
 * Demonstrates the paper's predictability story on real execution --
 * the drive deliberately breaks the localizer's motion model mid-run
 * (a GPS-style reinitialization far from the truth) to force a
 * relocalization, and wanders off the mission route to trigger a
 * MISPLAN replan. The per-frame LOC latency log shows the
 * relocalization spike that motivates tail-latency metrics.
 *
 * Usage: urban_intersection [--frames=60] [--seed=3]
 */

#include <cmath>
#include <cstdio>

#include "common/config.hh"
#include "pipeline/pipeline.hh"
#include "sensors/scenario.hh"
#include "slam/mapping.hh"

int
main(int argc, char** argv)
{
    using namespace ad;
    const Config cfg = Config::fromArgs(argc, argv);
    const int frames = cfg.getInt("frames", 60);
    Rng rng(cfg.getInt("seed", 3));

    std::printf("== urban intersection scenario ==\n");
    sensors::ScenarioParams sp;
    sp.roadLength = 250.0;
    sp.pedestrians = 5;
    sp.bicycles = 3;
    sensors::Scenario scenario = sensors::makeUrbanScenario(rng, sp);
    sensors::Camera camera(sensors::Resolution::HHD);
    const slam::PriorMap map =
        slam::buildPriorMap(scenario.world, camera, 1);
    std::printf("prior map: %zu points (%.0f KB)\n", map.size(),
                map.storageBytes() / 1e3);

    // A small road network for the mission planner.
    planning::RoadGraph graph;
    const double laneY = scenario.world.road().laneCenter(1);
    int prev = -1;
    for (double x = 0; x <= sp.roadLength; x += 50.0) {
        const int n = graph.addNode({x, laneY});
        if (prev >= 0)
            graph.addBidirectional(prev, n);
        prev = n;
    }

    pipeline::PipelineParams params;
    // Urban scenes need finer detector input: pedestrians and
    // bicycles are small (the accuracy-vs-resolution effect the
    // paper's Section 5.4 discusses).
    params.detector.inputSize = 224;
    params.detector.width = 0.25;
    params.trackerPool.tracker.cropSize = 32;
    params.trackerPool.tracker.width = 0.1;
    params.laneCenterY = laneY;
    params.motionPlanner.cruiseSpeed = 8.0;
    pipeline::Pipeline pipe(&map, &camera, &graph, params);

    Pose2 ego = scenario.ego.pose;
    const double speed = 8.0;
    pipe.reset(ego, {speed, 0}, {sp.roadLength - 10, laneY});

    sensors::World world = scenario.world;
    int relocalizations = 0;
    int pedestriansSeen = 0;
    double worstLocMs = 0;
    double normalLocSum = 0;
    int normalLocCount = 0;

    for (int i = 0; i < frames; ++i) {
        world.step(0.1);
        ego.pos.x += speed * 0.1;

        if (i == frames / 2) {
            // Break the motion model: teleport the localizer's belief
            // 80 m backward (sensor glitch / tunnel exit).
            std::printf("frame %d: corrupting pose belief by -80 m\n",
                        i);
            pipe.localizer().reset(
                Pose2(ego.pos.x - 80.0, ego.pos.y, 0.0), {speed, 0});
        }

        const sensors::Frame frame = camera.render(world, ego);
        const auto out = pipe.processFrame(frame.image, 0.1, speed);

        if (out.localization.relocalized) {
            ++relocalizations;
            std::printf("frame %d: RELOCALIZED in %.1f ms (normal "
                        "frames avg %.1f ms) -> pose error %.2f m\n",
                        i, out.latencies.locMs,
                        normalLocCount
                            ? normalLocSum / normalLocCount
                            : 0.0,
                        out.localization.pose.distanceTo(ego));
            worstLocMs = std::max(worstLocMs, out.latencies.locMs);
        } else {
            normalLocSum += out.latencies.locMs;
            ++normalLocCount;
        }
        for (const auto& t : out.tracks)
            pedestriansSeen +=
                t.cls == sensors::ObjectClass::Pedestrian;
        if (out.missionReplanned)
            std::printf("frame %d: MISPLAN replanned the route\n", i);
    }

    std::printf("\nsummary over %d frames:\n", frames);
    std::printf("  relocalizations      %d (localizer total %d)\n",
                relocalizations, pipe.localizer().relocalizationCount());
    std::printf("  pedestrian tracks    %d frame-observations\n",
                pedestriansSeen);
    std::printf("  LOC latency          %s\n",
                pipe.locLatency().summary().toString().c_str());
    const auto s = pipe.locLatency().summary();
    std::printf("  LOC tail/mean        %.2fx -- the predictability "
                "argument of Section 2.4.2\n",
                s.mean > 0 ? s.worst / s.mean : 0.0);
    return 0;
}
