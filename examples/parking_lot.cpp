/**
 * @file
 * Parking-lot maneuver: the paper's motion-planning engine uses a
 * graph-search state lattice "when the vehicle is in a large opening
 * area like parking lot or rural area" (Section 3.1.5). This example
 * plans a path through parked vehicles to a goal bay with the
 * state-lattice planner (via the MotionPlanner facade) and drives it
 * closed loop with pure pursuit on the bicycle model, replanning
 * whenever a pedestrian wanders onto the path.
 *
 * Usage: parking_lot [--seed=6]
 */

#include <cmath>
#include <cstdio>

#include "common/config.hh"
#include "common/random.hh"
#include "planning/control.hh"
#include "planning/motion_planner.hh"

int
main(int argc, char** argv)
{
    using namespace ad;
    using namespace ad::planning;
    const Config cfg = Config::fromArgs(argc, argv);
    Rng rng(cfg.getInt("seed", 6));

    std::printf("== parking lot (state-lattice planning) ==\n");

    // Parked cars in two rows with a goal bay in the far row.
    std::vector<PredictedObstacle> obstacles;
    for (int i = 0; i < 8; ++i) {
        if (i != 5) // bay 5 of the far row is free: our goal
            obstacles.push_back(
                {{10.0 + i * 6.0, 18.0}, {0, 0}, 2.2});
        if (i != 2) // a gap in the near row to drive through
            obstacles.push_back(
                {{10.0 + i * 6.0, 8.0}, {0, 0}, 2.2});
    }
    const Vec2 goal{10.0 + 5 * 6.0, 18.0};

    MotionPlannerParams mp;
    mp.lattice.cruiseSpeed = 2.5;
    mp.lattice.goalTolerance = 1.2;
    MotionPlanner planner(mp);

    MotionRequest request;
    request.start = Pose2(2.0, 2.0, 0.0);
    request.area = DrivingArea::OpenArea;
    request.goal = goal;
    request.obstacles = obstacles;

    MotionResult plan = planner.plan(request);
    if (!plan.feasible) {
        std::printf("no feasible path -- lot fully blocked\n");
        return 1;
    }
    std::printf("planned %.1f m path through the lot (%0.f node "
                "expansions)\n", plan.trajectory.length(),
                plan.costOrExpansions);

    // Drive it closed loop; halfway through, a pedestrian steps onto
    // the path and forces a replan.
    VehicleController controller;
    VehicleState ego;
    ego.pose = request.start;
    ego.speed = 0.0;
    bool pedestrianAppeared = false;
    int replans = 0;
    int steps = 0;
    double minObstacleClearance = 1e9;

    for (; steps < 2000; ++steps) {
        const double dt = 0.1;
        if (!pedestrianAppeared &&
            (ego.pose.pos - request.start.pos).norm() >
                plan.trajectory.length() * 0.3) {
            pedestrianAppeared = true;
            // Step onto the remaining path.
            const auto idx =
                plan.trajectory.closestIndex(ego.pose.pos);
            const auto blockIdx = std::min(
                idx + 4, plan.trajectory.points.size() - 1);
            PredictedObstacle ped;
            ped.pos = plan.trajectory.points[blockIdx].pos;
            ped.radius = 0.8;
            request.obstacles.push_back(ped);
            std::printf("step %d: pedestrian at (%.1f, %.1f) blocks "
                        "the path -> replanning\n", steps, ped.pos.x,
                        ped.pos.y);
            request.start = ego.pose;
            plan = planner.plan(request);
            ++replans;
            if (!plan.feasible) {
                std::printf("replanning failed\n");
                return 1;
            }
        }

        const ControlCommand cmd =
            controller.control(ego, plan.trajectory, dt);
        ego = stepBicycleModel(ego, cmd, dt);

        for (const auto& o : request.obstacles)
            minObstacleClearance =
                std::min(minObstacleClearance,
                         (ego.pose.pos - o.pos).norm() - o.radius);

        if ((ego.pose.pos - goal).norm() < 1.5 && ego.speed < 0.5)
            break;
    }

    const bool arrived = (ego.pose.pos - goal).norm() < 2.0;
    std::printf("\n%s after %d steps (%.1f s simulated)\n",
                arrived ? "ARRIVED at the goal bay" : "did not arrive",
                steps, steps * 0.1);
    std::printf("  replans              %d\n", replans);
    std::printf("  final position       (%.1f, %.1f), goal (%.1f, "
                "%.1f)\n", ego.pose.pos.x, ego.pose.pos.y, goal.x,
                goal.y);
    std::printf("  min clearance        %.2f m (vehicle center to "
                "obstacle edge)\n", minObstacleClearance);
    return arrived ? 0 : 1;
}
