/**
 * @file
 * Tests for the fusion engine: back-projection of tracked boxes into
 * world coordinates, world-frame velocity estimation, and consistency
 * with the rendering camera (render -> track -> fuse round trip).
 */

#include <gtest/gtest.h>

#include "fusion/fusion.hh"

namespace {

using namespace ad;
using namespace ad::fusion;
using sensors::Camera;
using sensors::ObjectClass;
using sensors::Resolution;

track::TrackedObject
trackAt(const Camera& cam, const Pose2& ego, const Vec2& world,
        double height, int id)
{
    // Build a track whose box bottom-center projects from the world
    // ground point.
    double u, v, depth;
    EXPECT_TRUE(cam.project(ego, world, 0.0, u, v, depth));
    const double h = cam.focal() * height / depth;
    const double w = cam.focal() * 1.8 / depth;
    track::TrackedObject t;
    t.id = id;
    t.cls = ObjectClass::Vehicle;
    t.box = BBox(u - w / 2, v - h, w, h);
    return t;
}

TEST(Fusion, BackProjectsToWorldPosition)
{
    Camera cam(Resolution::Kitti);
    FusionEngine fusion(&cam);
    const Pose2 ego(100, 5, 0.1);
    const Vec2 objWorld(125, 7);
    const auto scene = fusion.fuse({trackAt(cam, ego, objWorld, 1.5, 1)},
                                   ego, 0.1, 1.0);
    ASSERT_EQ(scene.objects.size(), 1u);
    EXPECT_NEAR(scene.objects[0].worldPos.x, objWorld.x, 0.5);
    EXPECT_NEAR(scene.objects[0].worldPos.y, objWorld.y, 0.5);
    EXPECT_NEAR(scene.objects[0].depth, (objWorld - ego.pos).norm(), 0.6);
    EXPECT_DOUBLE_EQ(scene.timestamp, 1.0);
}

TEST(Fusion, KalmanVelocityConvergesOverFrames)
{
    Camera cam(Resolution::Kitti);
    FusionEngine fusion(&cam);
    const Pose2 ego(100, 5, 0);
    // Object moves 2 m forward between frames 0.1 s apart -> 20 m/s;
    // the Kalman velocity estimate converges within a few frames.
    fusion::FusedScene scene;
    for (int i = 0; i <= 8; ++i)
        scene = fusion.fuse(
            {trackAt(cam, ego, {120.0 + 2.0 * i, 6}, 1.5, 7)}, ego,
            0.1, 0.1 * i);
    ASSERT_EQ(scene.objects.size(), 1u);
    EXPECT_NEAR(scene.objects[0].worldVelocity.x, 20.0, 3.0);
    EXPECT_NEAR(scene.objects[0].worldVelocity.y, 0.0, 2.0);
}

TEST(Fusion, RawModeDifferencesImmediately)
{
    Camera cam(Resolution::Kitti);
    fusion::FusionParams params;
    params.useKalman = false;
    FusionEngine fusion(&cam, params);
    const Pose2 ego(100, 5, 0);
    fusion.fuse({trackAt(cam, ego, {120, 6}, 1.5, 7)}, ego, 0.1, 0.0);
    const auto scene =
        fusion.fuse({trackAt(cam, ego, {122, 6}, 1.5, 7)}, ego, 0.1,
                    0.1);
    ASSERT_EQ(scene.objects.size(), 1u);
    EXPECT_NEAR(scene.objects[0].worldVelocity.x, 20.0, 3.0);
}

TEST(Fusion, KalmanSmoothsNoisierThanRaw)
{
    // Feed a stationary object with jittered measurements: the raw
    // differencer reports wild velocities, the Kalman estimate stays
    // near zero.
    Camera cam(Resolution::Kitti);
    FusionEngine smooth(&cam);
    fusion::FusionParams rawParams;
    rawParams.useKalman = false;
    FusionEngine raw(&cam, rawParams);
    ad::Rng rng(9);
    const Pose2 ego(100, 5, 0);

    double maxRawSpeed = 0;
    double maxKfSpeed = 0;
    for (int i = 0; i < 20; ++i) {
        const Vec2 jitter{rng.normal(0, 0.3), rng.normal(0, 0.3)};
        const auto track =
            trackAt(cam, ego, Vec2{120, 6} + jitter, 1.5, 4);
        const auto s1 = smooth.fuse({track}, ego, 0.1, 0.1 * i);
        const auto s2 = raw.fuse({track}, ego, 0.1, 0.1 * i);
        if (i >= 5) { // past filter warm-up
            maxKfSpeed = std::max(maxKfSpeed,
                                  s1.objects[0].worldVelocity.norm());
            maxRawSpeed = std::max(maxRawSpeed,
                                   s2.objects[0].worldVelocity.norm());
        }
    }
    EXPECT_LT(maxKfSpeed, maxRawSpeed / 2);
    EXPECT_LT(maxKfSpeed, 3.0);
}

TEST(Fusion, EgoVelocityFromPoseHistory)
{
    Camera cam(Resolution::Kitti);
    FusionEngine fusion(&cam);
    fusion.fuse({}, Pose2(100, 5, 0), 0.1, 0.0);
    const auto scene = fusion.fuse({}, Pose2(102.5, 5, 0), 0.1, 0.1);
    EXPECT_NEAR(scene.egoVelocity.x, 25.0, 1e-6);
}

TEST(Fusion, NewTrackHasZeroVelocity)
{
    Camera cam(Resolution::Kitti);
    FusionEngine fusion(&cam);
    const Pose2 ego(100, 5, 0);
    const auto scene =
        fusion.fuse({trackAt(cam, ego, {120, 6}, 1.5, 3)}, ego, 0.1, 0.0);
    ASSERT_EQ(scene.objects.size(), 1u);
    EXPECT_DOUBLE_EQ(scene.objects[0].worldVelocity.x, 0.0);
    EXPECT_DOUBLE_EQ(scene.objects[0].worldVelocity.y, 0.0);
}

TEST(Fusion, SkipsBoxesAboveHorizon)
{
    Camera cam(Resolution::Kitti);
    FusionEngine fusion(&cam);
    track::TrackedObject sky;
    sky.id = 9;
    sky.box = BBox(600, 10, 40, 40); // entirely above the horizon
    const auto scene = fusion.fuse({sky}, Pose2(0, 5, 0), 0.1, 0.0);
    EXPECT_TRUE(scene.objects.empty());
}

TEST(Fusion, ConsistentWithRenderedGroundTruth)
{
    // Render a world with a known actor, hand its GT box to fusion as
    // a track, and verify the fused world position matches the actor.
    Camera cam(Resolution::HD);
    sensors::World world;
    sensors::Actor car;
    car.cls = ObjectClass::Vehicle;
    car.motion = sensors::MotionKind::Stationary;
    car.pose = Pose2(80, world.road().laneCenter(0), 0);
    world.addActor(car);
    const Pose2 ego(50, world.road().laneCenter(1), 0);
    const auto frame = cam.render(world, ego);
    ASSERT_EQ(frame.truth.size(), 1u);

    track::TrackedObject t;
    t.id = 1;
    t.cls = ObjectClass::Vehicle;
    t.box = frame.truth[0].box;
    FusionEngine fusion(&cam);
    const auto scene = fusion.fuse({t}, ego, 0.1, 0.0);
    ASSERT_EQ(scene.objects.size(), 1u);
    EXPECT_NEAR(scene.objects[0].worldPos.x, car.pose.pos.x, 1.5);
    EXPECT_NEAR(scene.objects[0].worldPos.y, car.pose.pos.y, 1.0);
}

} // namespace
