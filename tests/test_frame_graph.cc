/**
 * @file
 * Unit tests for the frame-graph stage DAG and its pipelined
 * executor: graph validation (duplicates, dangling edges, cycles),
 * the exact virtual-timeline recurrence, admission backpressure,
 * frame-ordered admit/commit callbacks, schedule independence across
 * worker counts and dispatch seeds, stage-exception containment, and
 * cross-thread trace-span frame tagging (ScopedTraceFrame).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "obs/trace.hh"
#include "pipeline/frame_graph.hh"

namespace {

using namespace ad;
using pipeline::FrameGraph;
using pipeline::FrameGraphExecutor;

TEST(FrameGraphValidate, AcceptsTheFigure1Dataflow)
{
    FrameGraph g;
    auto nop = [](std::int64_t) { return 0.0; };
    g.addStage("SENSE", {}, nop);
    g.addStage("DET", {"SENSE"}, nop);
    g.addStage("LOC", {"SENSE"}, nop);
    g.addStage("TRA", {"SENSE", "DET"}, nop);
    g.addStage("FUSION", {"TRA", "LOC"}, nop);
    g.addStage("MOTPLAN", {"FUSION", "LOC"}, nop);
    EXPECT_FALSE(g.validate().has_value());
    const auto order = g.topologicalOrder();
    ASSERT_EQ(order.size(), 6u);
    // SENSE first, MOTPLAN last.
    EXPECT_EQ(g.stageName(order.front()), "SENSE");
    EXPECT_EQ(g.stageName(order.back()), "MOTPLAN");
}

TEST(FrameGraphValidate, RejectsDuplicateStageName)
{
    FrameGraph g;
    auto nop = [](std::int64_t) { return 0.0; };
    g.addStage("A", {}, nop);
    g.addStage("A", {}, nop);
    const auto err = g.validate();
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("duplicate"), std::string::npos);
}

TEST(FrameGraphValidate, RejectsMissingInputEdge)
{
    FrameGraph g;
    auto nop = [](std::int64_t) { return 0.0; };
    g.addStage("A", {}, nop);
    g.addStage("B", {"NOPE"}, nop);
    const auto err = g.validate();
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("NOPE"), std::string::npos);
}

TEST(FrameGraphValidate, RejectsSelfInputAndCycle)
{
    FrameGraph self;
    auto nop = [](std::int64_t) { return 0.0; };
    self.addStage("A", {"A"}, nop);
    ASSERT_TRUE(self.validate().has_value());

    FrameGraph cyc;
    cyc.addStage("A", {"C"}, nop);
    cyc.addStage("B", {"A"}, nop);
    cyc.addStage("C", {"B"}, nop);
    const auto err = cyc.validate();
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("cycle"), std::string::npos);
}

TEST(FrameGraphValidate, RejectsDuplicateEdge)
{
    FrameGraph g;
    auto nop = [](std::int64_t) { return 0.0; };
    g.addStage("A", {}, nop);
    g.addStage("B", {"A", "A"}, nop);
    ASSERT_TRUE(g.validate().has_value());
}

TEST(FrameGraphExecutorTest, RejectsInvalidGraphAtConstruction)
{
    FrameGraph g;
    g.addStage("A", {"A"}, [](std::int64_t) { return 0.0; });
    EXPECT_THROW(FrameGraphExecutor(g, {}, nullptr, nullptr),
                 std::invalid_argument);
}

/** Two-stage chain with fixed costs: the recurrence by hand. */
TEST(FrameGraphExecutorTest, VirtualTimelineMatchesRecurrence)
{
    FrameGraph g;
    g.addStage("A", {}, [](std::int64_t) { return 10.0; });
    g.addStage("B", {"A"}, [](std::int64_t) { return 20.0; });

    ThreadPool pool(2);
    FrameGraphExecutor::Params ep;
    ep.depth = 2;
    ep.pool = &pool;
    std::vector<FrameGraphExecutor::FrameTiming> timings;
    FrameGraphExecutor exec(
        g, ep, nullptr,
        [&](std::int64_t, const FrameGraphExecutor::FrameTiming& t) {
            timings.push_back(t);
        });
    for (int i = 0; i < 3; ++i)
        exec.submit(0.0);
    exec.drain();

    ASSERT_EQ(timings.size(), 3u);
    // frame 0: A 0-10, B 10-30, commit 30.
    EXPECT_DOUBLE_EQ(timings[0].stages[0].startMs, 0.0);
    EXPECT_DOUBLE_EQ(timings[0].stages[1].startMs, 10.0);
    EXPECT_DOUBLE_EQ(timings[0].commitMs, 30.0);
    // frame 1: admit 0 (depth 2), A 10-20 (A busy until 10),
    // B 30-50 (B busy until 30).
    EXPECT_DOUBLE_EQ(timings[1].admitMs, 0.0);
    EXPECT_DOUBLE_EQ(timings[1].stages[0].startMs, 10.0);
    EXPECT_DOUBLE_EQ(timings[1].stages[1].startMs, 30.0);
    EXPECT_DOUBLE_EQ(timings[1].commitMs, 50.0);
    // frame 2: admitted only at commit of frame 0 (virtual 30),
    // A 30-40, B 50-70: steady-state throughput = max stage = 20.
    EXPECT_DOUBLE_EQ(timings[2].admitMs, 30.0);
    EXPECT_DOUBLE_EQ(timings[2].stages[0].startMs, 30.0);
    EXPECT_DOUBLE_EQ(timings[2].commitMs, 70.0);
    EXPECT_DOUBLE_EQ(exec.lastCommitVirtualMs(), 70.0);
}

/** Diamond DAG: joins wait for the slower branch. */
TEST(FrameGraphExecutorTest, DiamondJoinWaitsForSlowBranch)
{
    FrameGraph g;
    g.addStage("R", {}, [](std::int64_t) { return 0.0; });
    g.addStage("X", {"R"}, [](std::int64_t) { return 10.0; });
    g.addStage("Y", {"R"}, [](std::int64_t) { return 4.0; });
    g.addStage("Z", {"X", "Y"}, [](std::int64_t) { return 2.0; });

    ThreadPool pool(3);
    FrameGraphExecutor::Params ep;
    ep.depth = 3;
    ep.pool = &pool;
    std::vector<double> commits;
    FrameGraphExecutor exec(
        g, ep, nullptr,
        [&](std::int64_t, const FrameGraphExecutor::FrameTiming& t) {
            commits.push_back(t.commitMs);
        });
    for (int i = 0; i < 3; ++i)
        exec.submit(0.0);
    exec.drain();
    // Z of frame k starts at X's end (the slow branch): 10k+10,
    // ends 10k+12.
    ASSERT_EQ(commits.size(), 3u);
    EXPECT_DOUBLE_EQ(commits[0], 12.0);
    EXPECT_DOUBLE_EQ(commits[1], 22.0);
    EXPECT_DOUBLE_EQ(commits[2], 32.0);
}

TEST(FrameGraphExecutorTest, AdmitAndCommitRunInFrameOrder)
{
    FrameGraph g;
    g.addStage("A", {}, [](std::int64_t) { return 1.0; });
    ThreadPool pool(4);
    FrameGraphExecutor::Params ep;
    ep.depth = 3;
    ep.pool = &pool;
    std::vector<std::int64_t> admits, commits;
    FrameGraphExecutor exec(
        g, ep, [&](std::int64_t f) { admits.push_back(f); },
        [&](std::int64_t f, const FrameGraphExecutor::FrameTiming&) {
            commits.push_back(f);
        });
    const int n = 20;
    for (int i = 0; i < n; ++i)
        exec.submit(static_cast<double>(i));
    exec.drain();
    ASSERT_EQ(admits.size(), static_cast<std::size_t>(n));
    ASSERT_EQ(commits.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(admits[static_cast<std::size_t>(i)], i);
        EXPECT_EQ(commits[static_cast<std::size_t>(i)], i);
    }
    EXPECT_EQ(exec.framesCommitted(), n);
}

TEST(FrameGraphExecutorTest, DepthOneSerializesFrames)
{
    FrameGraph g;
    std::atomic<int> inFlight{0};
    std::atomic<int> maxInFlight{0};
    g.addStage("A", {}, [&](std::int64_t) {
        const int now = ++inFlight;
        int seen = maxInFlight.load();
        while (now > seen &&
               !maxInFlight.compare_exchange_weak(seen, now))
            ;
        --inFlight;
        return 1.0;
    });
    ThreadPool pool(4);
    FrameGraphExecutor::Params ep;
    ep.depth = 1;
    ep.pool = &pool;
    FrameGraphExecutor exec(g, ep, nullptr, nullptr);
    for (int i = 0; i < 10; ++i)
        exec.submit(static_cast<double>(i));
    exec.drain();
    EXPECT_EQ(maxInFlight.load(), 1);
}

/**
 * The determinism backbone: a stateful stage (frame-ordered
 * accumulator feeding its own virtual cost) produces the identical
 * virtual timeline whatever the worker count or dispatch seed.
 */
TEST(FrameGraphExecutorTest, TimelineScheduleIndependent)
{
    const auto run = [](std::size_t workers, std::uint64_t seed,
                        int depth) {
        FrameGraph g;
        // Stage state evolves with frame order; any out-of-order
        // execution would change both the state stream and the costs.
        auto stateful = [state = 0.0](std::int64_t f) mutable {
            state = state * 0.5 + static_cast<double>(f % 7) + 1.0;
            return state;
        };
        g.addStage("A", {}, stateful);
        g.addStage("B", {"A"}, stateful);
        g.addStage("C", {"A"}, stateful);
        g.addStage("D", {"B", "C"}, stateful);
        ThreadPool pool(workers);
        FrameGraphExecutor::Params ep;
        ep.depth = depth;
        ep.scheduleSeed = seed;
        ep.pool = &pool;
        std::vector<double> stream;
        FrameGraphExecutor exec(
            g, ep, nullptr,
            [&](std::int64_t,
                const FrameGraphExecutor::FrameTiming& t) {
                stream.push_back(t.admitMs);
                stream.push_back(t.commitMs);
                for (const auto& s : t.stages) {
                    stream.push_back(s.startMs);
                    stream.push_back(s.durMs);
                }
            });
        for (int i = 0; i < 25; ++i)
            exec.submit(static_cast<double>(2 * i));
        exec.drain();
        return stream;
    };

    for (int depth : {1, 2, 3}) {
        const auto baseline = run(1, 0, depth);
        for (std::size_t workers : {std::size_t{2}, std::size_t{8}})
            EXPECT_EQ(run(workers, 0, depth), baseline)
                << "workers=" << workers << " depth=" << depth;
        for (std::uint64_t seed :
             {std::uint64_t{1}, std::uint64_t{42},
              std::uint64_t{0xdeadbeef}})
            EXPECT_EQ(run(4, seed, depth), baseline)
                << "seed=" << seed << " depth=" << depth;
    }
}

TEST(FrameGraphExecutorTest, ThrowingStageIsContainedAndCommits)
{
    FrameGraph g;
    g.addStage("A", {}, [](std::int64_t f) -> double {
        if (f == 1)
            throw std::runtime_error("boom");
        return 5.0;
    });
    g.addStage("B", {"A"}, [](std::int64_t) { return 1.0; });
    ThreadPool pool(2);
    FrameGraphExecutor::Params ep;
    ep.depth = 2;
    ep.pool = &pool;
    std::vector<std::int64_t> commits;
    FrameGraphExecutor exec(
        g, ep, nullptr,
        [&](std::int64_t f, const FrameGraphExecutor::FrameTiming&) {
            commits.push_back(f);
        });
    for (int i = 0; i < 3; ++i)
        exec.submit(0.0);
    exec.drain();
    EXPECT_EQ(commits, (std::vector<std::int64_t>{0, 1, 2}));
    EXPECT_EQ(exec.stageErrorCount(), 1u);
}

/**
 * ScopedTraceFrame: spans recorded inside overlapped stage tasks are
 * tagged with their own frame, not a global "current frame".
 */
TEST(FrameGraphExecutorTest, SpansCarryPerFrameIdsAcrossThreads)
{
    auto& rec = obs::tracer();
    rec.clear();
    rec.setEnabled(true);
    rec.setFrame(-1);

    FrameGraph g;
    g.addStage("A", {}, [&](std::int64_t) {
        obs::TraceSpan span(rec, "work.A");
        return 1.0;
    });
    g.addStage("B", {"A"}, [&](std::int64_t) {
        obs::TraceSpan span(rec, "work.B");
        return 1.0;
    });
    {
        ThreadPool pool(3);
        FrameGraphExecutor::Params ep;
        ep.depth = 3;
        ep.pool = &pool;
        FrameGraphExecutor exec(g, ep, nullptr, nullptr);
        for (int i = 0; i < 6; ++i)
            exec.submit(static_cast<double>(i));
        exec.drain();
    }
    rec.setEnabled(false);

    int perFrame[6] = {0, 0, 0, 0, 0, 0};
    for (const auto& ev : rec.snapshot()) {
        ASSERT_GE(ev.frame, 0) << ev.name;
        ASSERT_LT(ev.frame, 6) << ev.name;
        ++perFrame[ev.frame];
    }
    // Two spans (A and B) tagged to each of the six frames.
    for (int f = 0; f < 6; ++f)
        EXPECT_EQ(perFrame[f], 2) << "frame " << f;
    rec.clear();
}

} // namespace
