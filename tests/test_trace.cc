/**
 * @file
 * Tests for the frame-scoped tracing layer: span collection across
 * threads, frame-id tagging, Chrome trace_event JSON export (verified
 * by parsing the emitted document back, not by grepping), the
 * disabled-is-inert contract, and the acceptance-criterion determinism
 * test -- pipeline outputs are bitwise-identical with observability on
 * or off.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "pipeline/pipeline.hh"
#include "sensors/scenario.hh"
#include "slam/mapping.hh"

namespace {

using namespace ad;
using obs::TraceRecorder;
using obs::TraceSpan;

TEST(TraceRecorder, DisabledRecordsNothing)
{
    TraceRecorder rec;
    ASSERT_FALSE(rec.enabled());
    rec.record("manual", "test", 0.0, 1.0);
    {
        TraceSpan span(rec, "span");
    }
    // record() itself honors the master switch, and TraceSpan never
    // even samples the clock.
    EXPECT_EQ(rec.eventCount(), 0u);
    EXPECT_TRUE(rec.snapshot().empty());
}

TEST(TraceRecorder, NestedSpansAndFrameIds)
{
    TraceRecorder rec;
    rec.setEnabled(true);
    rec.setFrame(7);
    {
        TraceSpan outer(rec, "outer", "test");
        {
            TraceSpan inner(rec, "inner", "test");
        }
    }
    rec.record("tagged", "test", 1e9, 2.0, 99);

    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 3u);
    const auto byName = [&events](const char* name) {
        for (const auto& e : events)
            if (e.name == name)
                return e;
        ADD_FAILURE() << "span '" << name << "' missing";
        return obs::TraceEvent{};
    };
    const auto outer = byName("outer");
    const auto inner = byName("inner");
    // The inner span nests inside the outer one.
    EXPECT_LE(outer.startUs, inner.startUs);
    EXPECT_GE(outer.startUs + outer.durUs,
              inner.startUs + inner.durUs);
    // Both inherited the recorder's current frame.
    EXPECT_EQ(outer.frame, 7);
    EXPECT_EQ(inner.frame, 7);
    // An explicit frame id overrides the current frame; the manual
    // event's far-future start also sorts it last in the snapshot.
    EXPECT_EQ(byName("tagged").frame, 99);
    EXPECT_EQ(events.back().name, "tagged");

    rec.clear();
    EXPECT_EQ(rec.eventCount(), 0u);
}

TEST(TraceRecorder, SpansFromWorkerThreadsGetDistinctTids)
{
    TraceRecorder rec;
    rec.setEnabled(true);
    constexpr int kThreads = 4;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&rec, t] {
            TraceSpan span(rec, "worker" + std::to_string(t), "test");
        });
    }
    for (auto& w : workers)
        w.join();
    {
        TraceSpan span(rec, "main", "test");
    }

    const auto events = rec.snapshot();
    ASSERT_EQ(events.size(), kThreads + 1u);
    std::set<std::uint32_t> tids;
    for (const auto& e : events)
        tids.insert(e.tid);
    // Each OS thread owns its own buffer and small sequential tid.
    EXPECT_EQ(tids.size(), kThreads + 1u);
}

TEST(TraceRecorder, NnLayerSpansRequireBothSwitches)
{
    TraceRecorder rec;
    rec.setNnLayerSpans(true);
    EXPECT_FALSE(rec.nnLayerSpans()); // master switch still off.
    rec.setEnabled(true);
    EXPECT_TRUE(rec.nnLayerSpans());
    rec.setEnabled(false);
    EXPECT_FALSE(rec.nnLayerSpans());
}

TEST(TraceRecorder, ChromeTraceJsonParsesBack)
{
    TraceRecorder rec;
    rec.setEnabled(true);
    rec.setFrame(3);
    {
        TraceSpan span(rec, "DET", "stage");
    }
    // Exercise the JSON string escaper with hostile span names.
    rec.record("quote\"back\\slash", "test", 5.0, 1.5);
    rec.record("newline\ntab\t", "test", 8.0, 0.5);

    const std::string path = ::testing::TempDir() + "trace_test.json";
    ASSERT_TRUE(rec.writeChromeTrace(path));

    std::string error;
    const auto doc = obs::json::parseFile(path, &error);
    ASSERT_TRUE(doc) << error;
    std::remove(path.c_str());

    ASSERT_TRUE(doc->isObject());
    const auto* unit = doc->find("displayTimeUnit");
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->asString(), "ms");

    const auto* events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    const auto& arr = events->asArray();
    ASSERT_EQ(arr.size(), rec.eventCount());

    std::set<std::string> names;
    for (const auto& e : arr) {
        ASSERT_TRUE(e.isObject());
        EXPECT_EQ(e.find("ph")->asString(), "X");
        EXPECT_TRUE(e.find("ts")->isNumber());
        EXPECT_TRUE(e.find("dur")->isNumber());
        const auto* args = e.find("args");
        ASSERT_NE(args, nullptr);
        ASSERT_NE(args->find("frame"), nullptr);
        EXPECT_DOUBLE_EQ(args->find("frame")->asNumber(), 3.0);
        names.insert(e.find("name")->asString());
    }
    // The escaper round-trips through the parser losslessly.
    EXPECT_TRUE(names.count("DET"));
    EXPECT_TRUE(names.count("quote\"back\\slash"));
    EXPECT_TRUE(names.count("newline\ntab\t"));
}

/**
 * Acceptance criterion: enabling tracing + metrics must not perturb a
 * single pipeline output bit. Runs the same scenario through two
 * identically constructed pipelines, one fully instrumented and one
 * dark, and compares every algorithmic output exactly.
 */
class TraceDeterminismTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        // Never leak observability state into other tests.
        obs::tracer().setEnabled(false);
        obs::tracer().setNnLayerSpans(false);
        obs::tracer().clear();
        obs::metrics().setEnabled(false);
        obs::metrics().reset();
    }

    static std::vector<double>
    runPipeline(const slam::PriorMap& map, const sensors::Camera& camera,
                const sensors::Scenario& scenario)
    {
        pipeline::PipelineParams params;
        params.detector.inputSize = 128;
        params.detector.width = 0.25;
        params.trackerPool.tracker.cropSize = 32;
        params.trackerPool.tracker.width = 0.1;
        params.laneCenterY = scenario.world.road().laneCenter(1);
        params.motionPlanner.cruiseSpeed = scenario.ego.speed;
        pipeline::Pipeline pipe(&map, &camera, nullptr, params);

        sensors::World world = scenario.world;
        Pose2 ego = scenario.ego.pose;
        pipe.reset(ego, {scenario.ego.speed, 0},
                   {scenario.world.road().length - 10,
                    params.laneCenterY});

        std::vector<double> sig;
        for (int i = 0; i < 8; ++i) {
            world.step(0.1);
            ego.pos.x += scenario.ego.speed * 0.1;
            const sensors::Frame frame = camera.render(world, ego);
            const auto out =
                pipe.processFrame(frame.image, 0.1, scenario.ego.speed);
            sig.push_back(static_cast<double>(out.detections.size()));
            for (const auto& d : out.detections) {
                sig.insert(sig.end(), {d.box.x, d.box.y, d.box.w,
                                       d.box.h, d.confidence});
            }
            sig.push_back(static_cast<double>(out.tracks.size()));
            sig.push_back(out.localization.ok ? 1.0 : 0.0);
            sig.push_back(out.localization.pose.pos.x);
            sig.push_back(out.localization.pose.pos.y);
            sig.push_back(out.localization.pose.theta);
            sig.push_back(
                static_cast<double>(out.trajectory.points.size()));
            for (const auto& p : out.trajectory.points) {
                sig.insert(sig.end(),
                           {p.pos.x, p.pos.y, p.heading, p.speed});
            }
        }
        return sig;
    }
};

TEST_F(TraceDeterminismTest, OutputsBitwiseIdenticalWithObsOnOrOff)
{
    Rng rng(23);
    sensors::ScenarioParams sp;
    sp.roadLength = 120.0;
    sp.vehicles = 3;
    const sensors::Scenario scenario =
        sensors::makeUrbanScenario(rng, sp);
    const sensors::Camera camera(sensors::Resolution::HHD);
    slam::MappingParams mp;
    mp.orb.fast.maxKeypoints = 400;
    const slam::PriorMap map =
        slam::buildPriorMap(scenario.world, camera, 1, mp);

    obs::tracer().setEnabled(false);
    obs::metrics().setEnabled(false);
    const auto dark = runPipeline(map, camera, scenario);

    obs::tracer().setEnabled(true);
    obs::tracer().setNnLayerSpans(true);
    obs::metrics().setEnabled(true);
    const auto traced = runPipeline(map, camera, scenario);

    // Instrumentation actually fired...
    EXPECT_GT(obs::tracer().eventCount(), 0u);
    // ...and perturbed nothing: every output double is bit-identical.
    ASSERT_EQ(dark.size(), traced.size());
    for (std::size_t i = 0; i < dark.size(); ++i)
        ASSERT_DOUBLE_EQ(dark[i], traced[i]) << "signature index " << i;
}

} // namespace
