/**
 * @file
 * Tests for the map-service tier: the compressed tile codec (exact
 * round-trip, compression win, content checksum), the deterministic
 * synthetic world (seed purity, appearance-proportional drift), the
 * TileServer queue/batch/cache/merge machinery (freshest-request
 * drop on overflow, deadline-aware admission, cache accounting,
 * order-independent merges with a canonical version-stamp log), and
 * the fleet co-simulation end to end -- prefetch eliminating steady
 * stalls, demand fallback when prefetch is off, stale-version
 * read-after-merge refresh, parallel==serial batch decode (the TSan
 * target) and triple-run bitwise determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/config.hh"
#include "fleet/loadgen.hh"
#include "mapserve/client.hh"
#include "mapserve/server.hh"
#include "mapserve/sim.hh"
#include "mapserve/tile_codec.hh"
#include "mapserve/world.hh"

namespace {

using namespace ad;
using namespace ad::mapserve;

WorldParams
smallWorld()
{
    WorldParams wp;
    wp.worldTiles = 8;
    wp.pointsPerTile = 12;
    return wp;
}

// ------------------------------------------------------------- codec

TEST(TileCodec, RoundTripIsExact)
{
    const WorldModel world(smallWorld());
    const Tile tile = world.tileAt({3, 5}, 0.4f);
    const std::vector<std::uint8_t> bytes = encodeTile(tile);
    const Tile back = decodeTile(tile.id, 7, bytes);

    EXPECT_EQ(back.id, tile.id);
    EXPECT_EQ(back.version, 7u);
    EXPECT_EQ(back.appearance, tile.appearance);
    ASSERT_EQ(back.points.size(), tile.points.size());
    for (std::size_t i = 0; i < tile.points.size(); ++i)
        EXPECT_EQ(back.points[i], tile.points[i])
            << "point " << i << " did not round-trip";
}

TEST(TileCodec, EmptyTileRoundTrips)
{
    Tile tile;
    tile.id = {1, 2};
    tile.appearance = 0.25f;
    const Tile back = decodeTile(tile.id, 0, encodeTile(tile));
    EXPECT_EQ(back.appearance, tile.appearance);
    EXPECT_TRUE(back.points.empty());
}

TEST(TileCodec, DeltaPackingBeatsRawEncoding)
{
    // World tiles share an anchor with sparse per-point byte
    // deltas, so the wire form must undercut the fixed-width raw
    // layout -- compression is the codec's reason to exist.
    const WorldModel world(smallWorld());
    const Tile tile = world.tileAt({0, 0}, 0.0f);
    EXPECT_LT(encodeTile(tile).size(), rawTileBytes(tile));
}

TEST(TileCodec, ChecksumTracksContent)
{
    const WorldModel world(smallWorld());
    Tile a = world.tileAt({2, 2}, 0.0f);
    const Tile b = world.tileAt({2, 2}, 0.0f);
    EXPECT_EQ(tileChecksum(a), tileChecksum(b));

    a.points[0].desc.words[0] ^= 1ull; // one descriptor bit.
    EXPECT_NE(tileChecksum(a), tileChecksum(b));
}

// ------------------------------------------------------------- world

TEST(WorldModel, TilesArePureFunctionsOfTheSeed)
{
    const WorldModel a(smallWorld());
    const WorldModel b(smallWorld());
    WorldParams other = smallWorld();
    other.seed = 99;
    const WorldModel c(other);

    const TileId id{4, 7};
    EXPECT_EQ(a.tileAt(id, 0.3f), b.tileAt(id, 0.3f));
    EXPECT_NE(a.tileAt(id, 0.3f), c.tileAt(id, 0.3f));
}

TEST(WorldModel, DriftErrorGrowsWithAppearanceGap)
{
    const WorldModel world(smallWorld());
    const Tile stored = world.tileAt({1, 1}, 0.0f);

    EXPECT_EQ(world.meanHammingBits(stored, 0.0f), 0.0);
    double prev = 0.0;
    for (const float a : {0.25f, 0.5f, 0.75f, 1.0f}) {
        const double err = world.meanHammingBits(stored, a);
        EXPECT_GE(err, prev) << "error not monotone at a=" << a;
        EXPECT_LE(err, smallWorld().driftBits);
        prev = err;
    }
    EXPECT_GT(prev, 0.0);
}

// ------------------------------------------------------------ server

TileServerParams
quietServer()
{
    TileServerParams sp;
    sp.jitterSigma = 0.0; // deterministic costs for latency asserts.
    return sp;
}

TileRequest
request(int vehicle, std::int64_t seq, TileId tile, bool prefetch,
        double nowMs, double deadlineMs)
{
    TileRequest r;
    r.vehicle = vehicle;
    r.seq = seq;
    r.tile = tile;
    r.prefetch = prefetch;
    r.arrivalMs = nowMs;
    r.deadlineMs = deadlineMs;
    return r;
}

TEST(TileServer, QueueOverflowEvictsOldestPrefetch)
{
    // Freshest-request drop: a full vehicle queue sheds the oldest
    // queued *prefetch* -- the requests for where the vehicle has
    // been -- never the newly offered request.
    const WorldModel world(smallWorld());
    TileServerParams sp = quietServer();
    sp.queueDepth = 2;
    TileServer server(sp, world);

    TileRequest evicted;
    bool hadEviction = false;
    EXPECT_EQ(server.submit(request(0, 0, {0, 0}, true, 0.0, 1e6), 0.0),
              SubmitOutcome::Queued);
    EXPECT_EQ(server.submit(request(0, 1, {1, 0}, true, 0.0, 1e6), 0.0),
              SubmitOutcome::Queued);
    EXPECT_EQ(server.submit(request(0, 2, {2, 0}, false, 0.0, 1e6),
                            0.0, &evicted, &hadEviction),
              SubmitOutcome::Queued);

    EXPECT_TRUE(hadEviction);
    EXPECT_EQ(evicted.seq, 0);          // the oldest prefetch went.
    EXPECT_TRUE(evicted.prefetch);
    EXPECT_EQ(server.queuedRequests(), 2u);
    EXPECT_EQ(server.stats().queueEvictions, 1);
    EXPECT_EQ(server.stats().submitted, 3);
}

TEST(TileServer, QueueOverflowOnAllDemandEvictsOldest)
{
    const WorldModel world(smallWorld());
    TileServerParams sp = quietServer();
    sp.queueDepth = 1;
    TileServer server(sp, world);

    TileRequest evicted;
    bool hadEviction = false;
    server.submit(request(3, 0, {0, 0}, false, 0.0, 1e6), 0.0);
    EXPECT_EQ(server.submit(request(3, 1, {1, 0}, false, 0.0, 1e6),
                            0.0, &evicted, &hadEviction),
              SubmitOutcome::Queued);
    EXPECT_TRUE(hadEviction);
    EXPECT_EQ(evicted.seq, 0);
    EXPECT_FALSE(evicted.prefetch);
}

TEST(TileServer, AdmissionShedsPredictablyLatePrefetch)
{
    // A prefetch that cannot land before its deadline is pure waste;
    // a demand fetch with the same impossible deadline is admitted
    // anyway because a vehicle is stalled on it.
    const WorldModel world(smallWorld());
    TileServer server(quietServer(), world);

    EXPECT_EQ(server.submit(request(0, 0, {0, 0}, true, 0.0, 0.5), 0.0),
              SubmitOutcome::Shed);
    EXPECT_EQ(server.submit(request(0, 1, {0, 0}, false, 0.0, 0.5), 0.0),
              SubmitOutcome::Queued);
    EXPECT_EQ(server.stats().admissionShed, 1);
    EXPECT_EQ(server.stats().demand, 1);
}

TEST(TileServer, BatchServesFromCacheOnRepeat)
{
    const WorldModel world(smallWorld());
    TileServer server(quietServer(), world);
    const TileId tile{2, 3};

    server.submit(request(0, 0, tile, false, 0.0, 1e6), 0.0);
    auto first = server.dispatch(server.nextDispatchMs(0.0));
    ASSERT_TRUE(first.has_value());
    ASSERT_EQ(first->served.size(), 1u);
    EXPECT_FALSE(first->served[0].cacheHit);

    // Same tile again, after the engine frees up: a cache hit, and
    // the payload decodes to the authoritative content.
    server.submit(request(1, 0, tile, false, first->doneMs, 1e6),
                  first->doneMs);
    auto second =
        server.dispatch(server.nextDispatchMs(first->doneMs));
    ASSERT_TRUE(second.has_value());
    ASSERT_EQ(second->served.size(), 1u);
    EXPECT_TRUE(second->served[0].cacheHit);

    const Tile got = decodeTile(tile, second->served[0].version,
                                second->served[0].payload);
    EXPECT_EQ(got, server.authoritative(tile));
    EXPECT_EQ(server.stats().cacheHits, 1);
    EXPECT_EQ(server.stats().cacheMisses, 1);
    EXPECT_GT(second->doneMs, second->startMs);
}

std::vector<DeltaUpdate>
refreshBurst(const WorldModel& world, TileId tile, float appearance)
{
    const Tile live = world.tileAt(tile, appearance);
    std::vector<DeltaUpdate> updates;
    for (std::size_t i = 0; i < live.points.size(); ++i) {
        DeltaUpdate u;
        u.tile = tile;
        u.pointId = live.points[i].id;
        u.vehicle = static_cast<int>(i % 3);
        u.seq = static_cast<std::int64_t>(i);
        u.tMs = 500.0;
        u.appearance = appearance;
        u.desc = live.points[i].desc;
        updates.push_back(u);
    }
    return updates;
}

TEST(TileServer, MergeIsOrderIndependentAndBumpsVersions)
{
    const WorldModel world(smallWorld());
    const TileId tile{5, 5};
    const auto updates = refreshBurst(world, tile, 0.6f);

    TileServer a(quietServer(), world);
    TileServer b(quietServer(), world);
    for (const auto& u : updates)
        a.pushUpdate(u);
    auto reversed = updates;
    std::reverse(reversed.begin(), reversed.end());
    for (const auto& u : reversed)
        b.pushUpdate(u);

    a.merge(2000.0);
    b.merge(2000.0);

    // Same canonical log line(s), bit for bit, and the same merged
    // content regardless of push order.
    EXPECT_FALSE(a.versionLog().empty());
    EXPECT_EQ(a.versionLog(), b.versionLog());
    EXPECT_EQ(a.tileVersion(tile), 1u);
    EXPECT_EQ(tileChecksum(a.authoritative(tile)),
              tileChecksum(b.authoritative(tile)));

    // The merged tile carries the refreshed descriptors.
    const Tile merged = a.authoritative(tile);
    const Tile live = world.tileAt(tile, 0.6f);
    ASSERT_EQ(merged.points.size(), live.points.size());
    for (std::size_t i = 0; i < merged.points.size(); ++i)
        EXPECT_EQ(merged.points[i].desc, live.points[i].desc);

    // The log embeds epoch, tile, version and content checksum.
    EXPECT_NE(a.versionLog().find("epoch=1"), std::string::npos);
    EXPECT_NE(a.versionLog().find("tile=5,5"), std::string::npos);
    EXPECT_NE(a.versionLog().find("v=1"), std::string::npos);
}

TEST(TileServer, MergeInvalidatesCachedTile)
{
    const WorldModel world(smallWorld());
    TileServer server(quietServer(), world);
    const TileId tile{4, 4};

    server.submit(request(0, 0, tile, false, 0.0, 1e6), 0.0);
    const auto first = server.dispatch(server.nextDispatchMs(0.0));
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->served[0].version, 0u);

    for (const auto& u : refreshBurst(world, tile, 0.5f))
        server.pushUpdate(u);
    server.merge(1000.0);

    // Post-merge the cached version-0 copy must not be served.
    const double t = first->doneMs + 1000.0;
    server.submit(request(1, 0, tile, false, t, 1e6), t);
    const auto second = server.dispatch(server.nextDispatchMs(t));
    ASSERT_TRUE(second.has_value());
    EXPECT_FALSE(second->served[0].cacheHit);
    EXPECT_EQ(second->served[0].version, 1u);
}

// ------------------------------------------------------------ client

TEST(MapClient, LruEvictsLeastRecentlyUsed)
{
    MapClientParams cp;
    cp.cacheTiles = 2;
    MapClient client(cp);
    const WorldModel world(smallWorld());

    client.install(world.tileAt({0, 0}, 0.0f));
    client.install(world.tileAt({1, 0}, 0.0f));
    EXPECT_NE(client.find({0, 0}), nullptr); // touch: {1,0} is LRU.
    client.install(world.tileAt({2, 0}, 0.0f));

    EXPECT_EQ(client.cachedTiles(), 2u);
    EXPECT_EQ(client.peek({1, 0}), nullptr);
    EXPECT_NE(client.peek({0, 0}), nullptr);
    EXPECT_NE(client.peek({2, 0}), nullptr);
    EXPECT_EQ(client.stats().evictions, 1);
}

TEST(MapClient, InstallClearsInFlightMark)
{
    MapClient client(MapClientParams{});
    const WorldModel world(smallWorld());
    client.markInFlight({3, 3});
    EXPECT_TRUE(client.inFlight({3, 3}));
    client.install(world.tileAt({3, 3}, 0.0f));
    EXPECT_FALSE(client.inFlight({3, 3}));
}

// --------------------------------------------------------------- sim

fleet::LoadGenParams
tape(int streams, double horizonMs)
{
    fleet::LoadGenParams lp;
    lp.streams = streams;
    lp.horizonMs = horizonMs;
    return lp;
}

TEST(MapServeSim, PrefetchEliminatesSteadyStalls)
{
    const fleet::ScenarioLoadGen load(tape(32, 8000.0));

    MapServeSimParams on;
    const MapServeReport withPrefetch = MapServeSim(on, load).run();
    MapServeSimParams off;
    off.client.prefetch = false;
    const MapServeReport without = MapServeSim(off, load).run();

    // The zero-bar: with pose-driven prefetch at the default horizon
    // no vehicle ever stalls in steady state; without it, boundary
    // crossings block on cold tiles.
    EXPECT_EQ(withPrefetch.steadyStalls, 0);
    EXPECT_GT(withPrefetch.prefetchIssued, 0);
    EXPECT_GT(without.steadyStalls, 0);
    EXPECT_GT(withPrefetch.prefetchHitRate, without.prefetchHitRate);
}

TEST(MapServeSim, PrefetchMissFallsBackToDemandFetch)
{
    // With prefetch off entirely, every cold crossing must still
    // resolve through the demand path: frames are conserved, every
    // stall unblocks (stall latencies recorded for each), and the
    // demand fetches pay real latency.
    const fleet::ScenarioLoadGen load(tape(16, 6000.0));
    MapServeSimParams sp;
    sp.client.prefetch = false;
    const MapServeReport r = MapServeSim(sp, load).run();

    EXPECT_EQ(r.framesWarm + r.framesStalled + r.framesCoasted,
              r.frames);
    EXPECT_GT(r.framesStalled, 0);
    EXPECT_EQ(static_cast<std::int64_t>(r.stallMs.count),
              r.framesStalled);
    EXPECT_EQ(r.steadyStalls + r.coldStarts, r.framesStalled);
    EXPECT_GT(r.demandLatency.count, 0u);
    EXPECT_GT(r.stallMs.p99, 0.0);
    // Request conservation on the server side.
    EXPECT_EQ(r.server.served + r.server.admissionShed +
                  r.server.queueEvictions,
              r.server.submitted);
}

TEST(MapServeSim, StaleReadRefreshesAfterMerge)
{
    // Drift pushes updates, merges bump versions, and vehicles
    // holding version-stale tiles notice on their next warm hit and
    // re-fetch in the background: error converges instead of
    // ratcheting to the drift ceiling.
    const fleet::ScenarioLoadGen load(tape(24, 10000.0));
    MapServeSimParams sp;
    sp.driftPerMin = 2.0;
    const MapServeReport r = MapServeSim(sp, load).run();

    EXPECT_GT(r.updatesPushed, 0);
    EXPECT_GT(r.server.updatesMerged, 0);
    EXPECT_GT(r.server.mergeEpochs, 0);
    EXPECT_GT(r.staleReads, 0);
    EXPECT_GT(r.staleRefreshes, 0);
    EXPECT_FALSE(r.versionLog.empty());
    EXPECT_GT(r.peakErrBits, 0.0);

    // The update loop must beat the frozen map: same drift with
    // pushes disabled ends with strictly more appearance error.
    MapServeSimParams frozen = sp;
    frozen.updates = false;
    const MapServeReport f = MapServeSim(frozen, load).run();
    EXPECT_LT(r.finalErrBits, f.finalErrBits);
}

TEST(MapServeSim, UpdatesOffFreezesTheMap)
{
    const fleet::ScenarioLoadGen load(tape(8, 4000.0));
    MapServeSimParams sp;
    sp.driftPerMin = 2.0;
    sp.updates = false;
    const MapServeReport r = MapServeSim(sp, load).run();
    EXPECT_EQ(r.updatesPushed, 0);
    EXPECT_EQ(r.server.tilesMerged, 0);
    EXPECT_TRUE(r.versionLog.empty());
}

TEST(MapServeSim, ParallelDecodeMatchesSerial)
{
    // Batch decode into disjoint slots with serial installs must be
    // bitwise-identical to the fully serial path at any thread
    // count. (Run under TSan, this is also the data-race check.)
    const fleet::ScenarioLoadGen load(tape(24, 6000.0));
    MapServeSimParams serial;
    serial.driftPerMin = 2.0;
    MapServeSimParams parallel = serial;
    parallel.decodeThreads = 4;

    const MapServeReport a = MapServeSim(serial, load).run();
    const MapServeReport b = MapServeSim(parallel, load).run();
    EXPECT_EQ(a.summaryString(), b.summaryString());
    EXPECT_EQ(a.versionLog, b.versionLog);
}

TEST(MapServeSim, TripleRunBitwiseDeterminism)
{
    const fleet::ScenarioLoadGen load(tape(16, 6000.0));
    MapServeSimParams sp;
    sp.driftPerMin = 2.0;

    std::vector<std::string> summaries, logs;
    for (int run = 0; run < 3; ++run) {
        const MapServeReport r = MapServeSim(sp, load).run();
        summaries.push_back(r.summaryString());
        logs.push_back(r.versionLog);
    }
    EXPECT_EQ(summaries[0], summaries[1]);
    EXPECT_EQ(summaries[1], summaries[2]);
    EXPECT_EQ(logs[0], logs[1]);
    EXPECT_EQ(logs[1], logs[2]);
    EXPECT_FALSE(logs[0].empty());
}

// ------------------------------------------------------------ config

TEST(MapServeConfig, RegistriesAcceptTheirKeysAndFlagTypos)
{
    std::vector<std::string> known;
    for (const auto& k : MapServeSimParams::knownConfigKeys())
        known.push_back(k);
    for (const auto& k : TileServerParams::knownConfigKeys())
        known.push_back(k);
    for (const auto& k : MapClientParams::knownConfigKeys())
        known.push_back(k);

    Config clean;
    clean.set("mapserve.drift-per-min", "0.5");
    clean.set("mapserve.warmup-ms", "4000");
    clean.set("mapserve.server.cache-tiles", "128");
    clean.set("mapserve.client.horizon-ms", "2500");
    EXPECT_EQ(clean.warnUnknownKeys(known), 0);

    Config typo;
    typo.set("mapserve.server.cache-tile", "128");
    EXPECT_EQ(typo.warnUnknownKeys(known), 1);
}

TEST(MapServeConfig, FromConfigReadsEveryScope)
{
    Config cfg;
    cfg.set("mapserve.world-tiles", "16");
    cfg.set("mapserve.drift-per-min", "1.5");
    cfg.set("mapserve.server.queue-depth", "3");
    cfg.set("mapserve.client.prefetch", "0");
    const MapServeSimParams sp = MapServeSimParams::fromConfig(cfg);
    EXPECT_EQ(sp.world.worldTiles, 16);
    EXPECT_DOUBLE_EQ(sp.driftPerMin, 1.5);
    EXPECT_EQ(sp.server.queueDepth, 3);
    EXPECT_FALSE(sp.client.prefetch);
}

} // namespace
