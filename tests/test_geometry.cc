/**
 * @file
 * Tests for the 2D geometry substrate: vector algebra, SE(2) pose
 * composition/inversion round trips, angle wrapping, and bounding-box
 * IoU properties used by detection/tracking association.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/geometry.hh"
#include "common/random.hh"

namespace {

using ad::BBox;
using ad::Pose2;
using ad::Rng;
using ad::Vec2;
using ad::wrapAngle;

constexpr double kEps = 1e-9;

TEST(Vec2, Arithmetic)
{
    const Vec2 a(1, 2);
    const Vec2 b(3, -1);
    EXPECT_DOUBLE_EQ((a + b).x, 4.0);
    EXPECT_DOUBLE_EQ((a - b).y, 3.0);
    EXPECT_DOUBLE_EQ((a * 2.0).y, 4.0);
    EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
    EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
    EXPECT_DOUBLE_EQ(Vec2(3, 4).norm(), 5.0);
    EXPECT_DOUBLE_EQ(Vec2(3, 4).squaredNorm(), 25.0);
}

TEST(Vec2, NormalizedHandlesZero)
{
    EXPECT_DOUBLE_EQ(Vec2(0, 0).normalized().norm(), 0.0);
    EXPECT_NEAR(Vec2(5, 0).normalized().x, 1.0, kEps);
    EXPECT_NEAR(Vec2(2, 2).normalized().norm(), 1.0, kEps);
}

TEST(Vec2, RotationQuarterTurn)
{
    const Vec2 v = Vec2(1, 0).rotated(M_PI / 2);
    EXPECT_NEAR(v.x, 0.0, kEps);
    EXPECT_NEAR(v.y, 1.0, kEps);
}

TEST(Angle, WrapStaysInRange)
{
    for (double a = -20.0; a <= 20.0; a += 0.37) {
        const double w = wrapAngle(a);
        EXPECT_GT(w, -M_PI - kEps);
        EXPECT_LE(w, M_PI + kEps);
        EXPECT_NEAR(std::sin(w), std::sin(a), 1e-9);
        EXPECT_NEAR(std::cos(w), std::cos(a), 1e-9);
    }
}

TEST(Pose2, TransformRoundTrip)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        const Pose2 pose(rng.uniform(-50, 50), rng.uniform(-50, 50),
                         rng.uniform(-M_PI, M_PI));
        const Vec2 p(rng.uniform(-10, 10), rng.uniform(-10, 10));
        const Vec2 back = pose.inverseTransform(pose.transform(p));
        EXPECT_NEAR(back.x, p.x, 1e-9);
        EXPECT_NEAR(back.y, p.y, 1e-9);
    }
}

TEST(Pose2, ComposeWithInverseIsIdentity)
{
    Rng rng(6);
    for (int i = 0; i < 100; ++i) {
        const Pose2 pose(rng.uniform(-50, 50), rng.uniform(-50, 50),
                         rng.uniform(-M_PI, M_PI));
        const Pose2 id = pose.compose(pose.inverse());
        EXPECT_NEAR(id.pos.x, 0.0, 1e-9);
        EXPECT_NEAR(id.pos.y, 0.0, 1e-9);
        EXPECT_NEAR(wrapAngle(id.theta), 0.0, 1e-9);
    }
}

TEST(Pose2, CompositionAssociativity)
{
    const Pose2 a(1, 2, 0.3);
    const Pose2 b(-4, 0.5, -1.1);
    const Pose2 c(2, 2, 2.0);
    const Pose2 lhs = a.compose(b).compose(c);
    const Pose2 rhs = a.compose(b.compose(c));
    EXPECT_NEAR(lhs.pos.x, rhs.pos.x, 1e-9);
    EXPECT_NEAR(lhs.pos.y, rhs.pos.y, 1e-9);
    EXPECT_NEAR(wrapAngle(lhs.theta - rhs.theta), 0.0, 1e-9);
}

TEST(BBox, BasicAccessors)
{
    const BBox b(10, 20, 30, 40);
    EXPECT_DOUBLE_EQ(b.area(), 1200.0);
    EXPECT_DOUBLE_EQ(b.cx(), 25.0);
    EXPECT_DOUBLE_EQ(b.cy(), 40.0);
    EXPECT_DOUBLE_EQ(b.xmax(), 40.0);
    EXPECT_DOUBLE_EQ(b.ymax(), 60.0);
    EXPECT_TRUE(b.contains(15, 25));
    EXPECT_FALSE(b.contains(45, 25));
    EXPECT_FALSE(b.empty());
    EXPECT_TRUE(BBox().empty());
}

TEST(BBox, FromCenterInvertsCenter)
{
    const BBox b = BBox::fromCenter(50, 60, 10, 20);
    EXPECT_DOUBLE_EQ(b.cx(), 50.0);
    EXPECT_DOUBLE_EQ(b.cy(), 60.0);
    EXPECT_DOUBLE_EQ(b.w, 10.0);
}

TEST(BBox, IoUIdentityAndDisjoint)
{
    const BBox b(0, 0, 10, 10);
    EXPECT_DOUBLE_EQ(b.iou(b), 1.0);
    EXPECT_DOUBLE_EQ(b.iou(BBox(20, 20, 5, 5)), 0.0);
    EXPECT_DOUBLE_EQ(b.iou(BBox(10, 0, 10, 10)), 0.0); // touching edges
}

TEST(BBox, IoUKnownOverlap)
{
    const BBox a(0, 0, 10, 10);
    const BBox b(5, 0, 10, 10);
    // intersection 50, union 150.
    EXPECT_NEAR(a.iou(b), 50.0 / 150.0, kEps);
    EXPECT_NEAR(b.iou(a), 50.0 / 150.0, kEps); // symmetry
}

TEST(BBox, IoUPropertyBounds)
{
    Rng rng(8);
    for (int i = 0; i < 200; ++i) {
        const BBox a(rng.uniform(-20, 20), rng.uniform(-20, 20),
                     rng.uniform(0.1, 30), rng.uniform(0.1, 30));
        const BBox b(rng.uniform(-20, 20), rng.uniform(-20, 20),
                     rng.uniform(0.1, 30), rng.uniform(0.1, 30));
        const double iou = a.iou(b);
        EXPECT_GE(iou, 0.0);
        EXPECT_LE(iou, 1.0);
        EXPECT_NEAR(iou, b.iou(a), kEps);
    }
}

TEST(BBox, InflateAndClip)
{
    const BBox b(5, 5, 10, 10);
    const BBox big = b.inflated(3);
    EXPECT_DOUBLE_EQ(big.x, 2.0);
    EXPECT_DOUBLE_EQ(big.w, 16.0);
    const BBox clipped = big.clipped(12, 12);
    EXPECT_DOUBLE_EQ(clipped.x, 2.0);
    EXPECT_DOUBLE_EQ(clipped.xmax(), 12.0);
    EXPECT_DOUBLE_EQ(clipped.ymax(), 12.0);
}

TEST(BBox, IntersectEmptyWhenDisjoint)
{
    const BBox a(0, 0, 5, 5);
    const BBox c = a.intersect(BBox(10, 10, 5, 5));
    EXPECT_TRUE(c.empty());
    EXPECT_DOUBLE_EQ(c.area(), 0.0);
}

} // namespace
