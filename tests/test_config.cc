/**
 * @file
 * Tests for the key=value configuration store and its command-line
 * parser, which drive the bench harness parameter sweeps. Also the
 * knob-documentation gate: every registered config key must appear
 * in docs/CONFIG.md.
 */

#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <sstream>

#include "common/config.hh"
#include "fleet/fleet.hh"
#include "fleet/loadgen.hh"
#include "mapserve/sim.hh"
#include "obs/obs.hh"
#include "pipeline/fault_injector.hh"
#include "pipeline/governor.hh"

namespace {

using ad::Config;

TEST(Config, SetAndGet)
{
    Config cfg;
    cfg.set("frames", "100");
    cfg.set("rate", "2.5");
    cfg.set("verbose", "true");
    cfg.set("name", "kitti");
    EXPECT_TRUE(cfg.has("frames"));
    EXPECT_FALSE(cfg.has("missing"));
    EXPECT_EQ(cfg.getInt("frames", 0), 100);
    EXPECT_DOUBLE_EQ(cfg.getDouble("rate", 0.0), 2.5);
    EXPECT_TRUE(cfg.getBool("verbose", false));
    EXPECT_EQ(cfg.getString("name"), "kitti");
}

TEST(Config, DefaultsWhenMissing)
{
    Config cfg;
    EXPECT_EQ(cfg.getInt("n", 7), 7);
    EXPECT_DOUBLE_EQ(cfg.getDouble("x", 1.5), 1.5);
    EXPECT_FALSE(cfg.getBool("flag", false));
    EXPECT_EQ(cfg.getString("s", "dft"), "dft");
}

TEST(Config, BoolSpellings)
{
    Config cfg;
    for (const char* v : {"true", "1", "yes", "on"}) {
        cfg.set("k", v);
        EXPECT_TRUE(cfg.getBool("k", false)) << v;
    }
    for (const char* v : {"false", "0", "no", "off"}) {
        cfg.set("k", v);
        EXPECT_FALSE(cfg.getBool("k", true)) << v;
    }
}

TEST(Config, ParseEqualsForm)
{
    std::array<const char*, 3> argv = {"prog", "--frames=50",
                                       "--scenario=urban"};
    Config cfg = Config::fromArgs(argv.size(),
                                  const_cast<char**>(argv.data()));
    EXPECT_EQ(cfg.getInt("frames", 0), 50);
    EXPECT_EQ(cfg.getString("scenario"), "urban");
}

TEST(Config, ParseSpaceSeparatedAndFlag)
{
    std::array<const char*, 5> argv = {"prog", "--frames", "25", "--fast",
                                       "--mode=modeled"};
    Config cfg = Config::fromArgs(argv.size(),
                                  const_cast<char**>(argv.data()));
    EXPECT_EQ(cfg.getInt("frames", 0), 25);
    EXPECT_TRUE(cfg.getBool("fast", false));
    EXPECT_EQ(cfg.getString("mode"), "modeled");
}

TEST(Config, LastValueWins)
{
    std::array<const char*, 3> argv = {"prog", "--n=1", "--n=2"};
    Config cfg = Config::fromArgs(argv.size(),
                                  const_cast<char**>(argv.data()));
    EXPECT_EQ(cfg.getInt("n", 0), 2);
}

TEST(Config, WarnUnknownKeysSuggestsNearestKnownKey)
{
    const std::vector<std::string> known = {"faults", "fault.drop_p",
                                            "obs.budget_ms",
                                            "nn.threads"};
    // All keys known: nothing to warn about.
    Config clean;
    clean.set("faults", "0.1");
    clean.set("nn.threads", "4");
    EXPECT_EQ(clean.warnUnknownKeys(known), 0);

    // A near-miss spelling counts as one unknown key (and the warning
    // it prints suggests the intended key; the count is what the API
    // contract exposes).
    Config typo;
    typo.set("fault.drop-p", "0.1");
    EXPECT_EQ(typo.warnUnknownKeys(known), 1);

    // Completely alien keys still count, with no plausible suggestion.
    Config alien;
    alien.set("zzzzzzzzzzzz", "1");
    alien.set("faults", "0.2");
    EXPECT_EQ(alien.warnUnknownKeys(known), 1);
}

TEST(Config, WarnUnknownKeysCoversNnLoweringKnobs)
{
    // The lowering/planner knobs must be accepted exactly and their
    // near-miss spellings flagged (the warning suggests the intended
    // key; the count is the observable contract).
    const std::vector<std::string> known = {"nn.threads",
                                            "nn.precision", "nn.fuse",
                                            "nn.arena"};
    Config clean;
    clean.set("nn.fuse", "0");
    clean.set("nn.arena", "1");
    EXPECT_EQ(clean.warnUnknownKeys(known), 0);

    Config typo;
    typo.set("nn.fused", "0");
    typo.set("nn.arenas", "1");
    EXPECT_EQ(typo.warnUnknownKeys(known), 2);
}

TEST(Config, EveryRegisteredKnobIsDocumented)
{
    // docs/CONFIG.md is the manual's knob reference. This gate makes
    // it impossible to register a new key -- in a knownConfigKeys()
    // registry or in a tool's knownKeys() list -- without adding a
    // row there: every key below must appear verbatim (as `key`) in
    // the document.
    std::ifstream in(AD_SOURCE_DIR "/docs/CONFIG.md");
    ASSERT_TRUE(in) << "docs/CONFIG.md missing";
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string doc = buf.str();

    std::vector<std::string> keys;
    for (const auto& k : ad::obs::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k :
         ad::pipeline::FaultInjectorParams::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k :
         ad::pipeline::GovernorParams::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k : ad::fleet::FleetParams::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k : ad::fleet::RebalanceParams::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k : ad::fleet::LoadGenParams::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k :
         ad::mapserve::MapServeSimParams::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k :
         ad::mapserve::TileServerParams::knownConfigKeys())
        keys.push_back(k);
    for (const auto& k :
         ad::mapserve::MapClientParams::knownConfigKeys())
        keys.push_back(k);
    // The tool-private lists, kept in sync by hand with
    // tools/adrun.cc, tools/adserve.cc and tools/adfleet.cc
    // knownKeys().
    for (const char* k :
         {"scenario", "frames", "resolution", "seed", "csv",
          "det-input", "det-width", "summary", "length", "nn.threads",
          "nn.precision", "nn.fuse", "nn.arena", "pipeline.async",
          "pipeline.depth", "pipeline.seed"})
        keys.push_back(k);
    for (const char* k :
         {"streams", "period-ms", "deadline-ms", "queue-depth",
          "batch-max", "window-ms", "admission", "stagger", "measured",
          "serve-json", "check", "engine.fixed-ms",
          "engine.marginal-ms", "engine.jitter", "engine.spike-p",
          "slo.window", "slo.target-miss-rate"})
        keys.push_back(k);
    for (const char* k : {"fleet-json", "map-json"})
        keys.push_back(k);

    for (const auto& key : keys)
        EXPECT_NE(doc.find("`" + key + "`"), std::string::npos)
            << "knob \"" << key
            << "\" is not documented in docs/CONFIG.md";
}

} // namespace
