/**
 * @file
 * Tests for the worker pool backing the parallel NN kernel layer and
 * the tracker pool, and for parallelFor's sharding/determinism
 * contract (chunk coverage, degenerate ranges, nested calls,
 * exception propagation, shutdown robustness).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/bounded_queue.hh"
#include "common/parallel_for.hh"
#include "common/thread_pool.hh"

namespace {

using ad::parallelFor;
using ad::ThreadPool;

TEST(ThreadPool, RunsAllTasks)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroWorkersClampedToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 1u);
    std::atomic<int> counter{0};
    pool.submit([&counter] { counter.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, WaitIdleOnEmptyQueueReturns)
{
    ThreadPool pool(2);
    pool.waitIdle();
    SUCCEED();
}

TEST(ThreadPool, TasksCanSubmitFollowUps)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([&] {
        counter.fetch_add(1);
        pool.submit([&] { counter.fetch_add(10); });
    });
    // waitIdle must also cover the follow-up task queued from inside.
    pool.waitIdle();
    EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPool, ParallelSumMatchesSerial)
{
    ThreadPool pool(4);
    std::vector<long> partial(16, 0);
    for (int t = 0; t < 16; ++t) {
        pool.submit([&partial, t] {
            long s = 0;
            for (int i = t * 1000; i < (t + 1) * 1000; ++i)
                s += i;
            partial[t] = s;
        });
    }
    pool.waitIdle();
    long total = 0;
    for (long p : partial)
        total += p;
    EXPECT_EQ(total, 16000L * 15999 / 2);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] { counter.fetch_add(1); });
        pool.waitIdle();
    }
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SubmitAfterShutdownIsRejected)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    EXPECT_TRUE(pool.submit([&counter] { counter.fetch_add(1); }));
    pool.shutdown();
    EXPECT_FALSE(pool.submit([&counter] { counter.fetch_add(100); }));
    EXPECT_EQ(counter.load(), 1); // accepted task ran, rejected didn't
}

TEST(ThreadPool, ShutdownIsIdempotent)
{
    ThreadPool pool(2);
    pool.shutdown();
    pool.shutdown();
    SUCCEED();
}

TEST(ThreadPool, ThrowingTaskDoesNotWedgeThePool)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([] { throw std::runtime_error("boom"); });
    pool.submit([&counter] { counter.fetch_add(1); });
    pool.submit([] { throw 42; }); // non-std exception
    pool.submit([&counter] { counter.fetch_add(1); });
    // waitIdle must return despite the throwing tasks (the worker
    // catches, counts and keeps its active bookkeeping intact).
    pool.waitIdle();
    EXPECT_EQ(counter.load(), 2);
    EXPECT_EQ(pool.failedTaskCount(), 2u);
}

TEST(ParallelFor, EmptyRangeRunsNothing)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    parallelFor(&pool, 5, 5, 1,
                [&](std::size_t, std::size_t) { calls.fetch_add(1); });
    parallelFor(&pool, 7, 3, 1,
                [&](std::size_t, std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, GrainLargerThanRangeRunsInline)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    std::size_t seenLo = 99;
    std::size_t seenHi = 0;
    parallelFor(&pool, 2, 10, 100, [&](std::size_t lo, std::size_t hi) {
        calls.fetch_add(1);
        seenLo = lo;
        seenHi = hi;
    });
    EXPECT_EQ(calls.load(), 1); // one chunk -> caller executes inline
    EXPECT_EQ(seenLo, 2u);
    EXPECT_EQ(seenHi, 10u);
}

TEST(ParallelFor, ChunksCoverRangeExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 1013; // prime: uneven split
    std::vector<std::atomic<int>> hits(n);
    parallelFor(&pool, 0, n, 10, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, ChunkBoundariesIndependentOfWorkerCount)
{
    // The determinism foundation: shard boundaries depend only on
    // (range, maxThreads), never on pool size or scheduling.
    const auto boundsWith = [](std::size_t workers) {
        ThreadPool pool(workers);
        std::mutex m;
        std::vector<std::pair<std::size_t, std::size_t>> chunks;
        parallelFor(
            &pool, 3, 100, 7,
            [&](std::size_t lo, std::size_t hi) {
                std::lock_guard<std::mutex> lock(m);
                chunks.emplace_back(lo, hi);
            },
            4);
        std::sort(chunks.begin(), chunks.end());
        return chunks;
    };
    EXPECT_EQ(boundsWith(1), boundsWith(8));
}

TEST(ParallelFor, NestedCallFromWorkerDoesNotDeadlock)
{
    ThreadPool pool(2);
    std::atomic<int> inner{0};
    // A body that itself calls parallelFor on the same pool must not
    // deadlock: the claim-based chunk table lets the worker-thread
    // caller run every chunk no other worker steals, so progress
    // never depends on a free worker existing.
    parallelFor(&pool, 0, 8, 1, [&](std::size_t lo, std::size_t hi) {
        parallelFor(&pool, lo, hi, 1,
                    [&](std::size_t l2, std::size_t h2) {
                        inner.fetch_add(static_cast<int>(h2 - l2));
                    });
    });
    EXPECT_EQ(inner.load(), 8);
}

TEST(ParallelFor, DeeplyNestedForksComplete)
{
    ThreadPool pool(2);
    std::atomic<int> leaves{0};
    parallelFor(&pool, 0, 4, 1, [&](std::size_t lo, std::size_t hi) {
        parallelFor(&pool, lo, hi, 1, [&](std::size_t l2, std::size_t h2) {
            parallelFor(&pool, l2, h2, 1,
                        [&](std::size_t l3, std::size_t h3) {
                            leaves.fetch_add(static_cast<int>(h3 - l3));
                        });
        });
    });
    EXPECT_EQ(leaves.load(), 4);
}

TEST(ParallelFor, NullPoolRunsSerially)
{
    int calls = 0;
    parallelFor(nullptr, 0, 100, 1, [&](std::size_t lo, std::size_t hi) {
        ++calls;
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 100u);
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesBodyException)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        parallelFor(&pool, 0, 100, 1,
                    [&](std::size_t lo, std::size_t) {
                        if (lo >= 50)
                            throw std::runtime_error("shard failed");
                    }),
        std::runtime_error);
    // The pool survives and keeps serving work afterwards.
    std::atomic<int> counter{0};
    parallelFor(&pool, 0, 4, 1, [&](std::size_t lo, std::size_t hi) {
        counter.fetch_add(static_cast<int>(hi - lo));
    });
    EXPECT_EQ(counter.load(), 4);
}

TEST(ParallelFor, ShuttingDownPoolFallsBackToInline)
{
    ThreadPool pool(2);
    pool.shutdown();
    std::vector<int> hits(64, 0);
    parallelFor(&pool, 0, 64, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            ++hits[i]; // no data race possible: everything is inline
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ParallelFor, SharedWorkerPoolIsUsable)
{
    std::atomic<int> counter{0};
    parallelFor(&ad::sharedWorkerPool(), 0, 128, 4,
                [&](std::size_t lo, std::size_t hi) {
                    counter.fetch_add(static_cast<int>(hi - lo));
                });
    EXPECT_EQ(counter.load(), 128);
}

TEST(BoundedQueue, FifoOrderAndCapacity)
{
    ad::BoundedQueue<int> q(3);
    EXPECT_EQ(q.capacity(), 3u);
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_TRUE(q.tryPush(3));
    EXPECT_FALSE(q.tryPush(4)) << "push past capacity must fail";
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.peek().value_or(-1), 1);
    EXPECT_EQ(q.tryPop().value_or(-1), 1);
    EXPECT_EQ(q.tryPop().value_or(-1), 2);
    EXPECT_TRUE(q.tryPush(4)) << "pop must free a slot";
    EXPECT_EQ(q.tryPop().value_or(-1), 3);
    EXPECT_EQ(q.tryPop().value_or(-1), 4);
    EXPECT_FALSE(q.tryPop().has_value());
    EXPECT_FALSE(q.peek().has_value());
}

TEST(BoundedQueue, ZeroCapacityClampedToOne)
{
    ad::BoundedQueue<int> q(0);
    EXPECT_EQ(q.capacity(), 1u);
    EXPECT_TRUE(q.tryPush(7));
    EXPECT_FALSE(q.tryPush(8));
    EXPECT_EQ(q.tryPop().value_or(-1), 7);
}

TEST(BoundedQueue, BlockingHandoffAcrossThreads)
{
    // Producer pushes more items than the capacity, so it must block
    // on the full queue until the consumer drains; the consumer
    // blocks on the empty queue until items arrive. The test passes
    // iff both sides make progress and order is preserved.
    ad::BoundedQueue<int> q(2);
    constexpr int kItems = 100;
    std::vector<int> got;
    std::thread consumer([&] {
        while (auto v = q.pop())
            got.push_back(*v);
    });
    for (int i = 0; i < kItems; ++i)
        EXPECT_TRUE(q.push(i));
    q.close();
    consumer.join();
    ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
    for (int i = 0; i < kItems; ++i)
        EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(BoundedQueue, CloseReleasesBlockedProducer)
{
    ad::BoundedQueue<int> q(1);
    EXPECT_TRUE(q.push(1));
    std::thread closer([&] { q.close(); });
    // Full queue: this push can only return (false) via close().
    EXPECT_FALSE(q.push(2));
    closer.join();
    EXPECT_TRUE(q.closed());
    // Drain what was queued before the close, then observe the end.
    EXPECT_EQ(q.pop().value_or(-1), 1);
    EXPECT_FALSE(q.pop().has_value());
}

} // namespace
