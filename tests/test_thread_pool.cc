/**
 * @file
 * Tests for the worker pool that backs the tracker pool and the
 * measured-mode engine parallelism.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/thread_pool.hh"

namespace {

using ad::ThreadPool;

TEST(ThreadPool, RunsAllTasks)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroWorkersClampedToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 1u);
    std::atomic<int> counter{0};
    pool.submit([&counter] { counter.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, WaitIdleOnEmptyQueueReturns)
{
    ThreadPool pool(2);
    pool.waitIdle();
    SUCCEED();
}

TEST(ThreadPool, TasksCanSubmitFollowUps)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([&] {
        counter.fetch_add(1);
        pool.submit([&] { counter.fetch_add(10); });
    });
    // waitIdle must also cover the follow-up task queued from inside.
    pool.waitIdle();
    EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPool, ParallelSumMatchesSerial)
{
    ThreadPool pool(4);
    std::vector<long> partial(16, 0);
    for (int t = 0; t < 16; ++t) {
        pool.submit([&partial, t] {
            long s = 0;
            for (int i = t * 1000; i < (t + 1) * 1000; ++i)
                s += i;
            partial[t] = s;
        });
    }
    pool.waitIdle();
    long total = 0;
    for (long p : partial)
        total += p;
    EXPECT_EQ(total, 16000L * 15999 / 2);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] { counter.fetch_add(1); });
        pool.waitIdle();
    }
    EXPECT_EQ(counter.load(), 50);
}

} // namespace
