/**
 * @file
 * Tests for the metric registry and the deadline watchdog: counter
 * atomicity under parallelFor contention, gauge/histogram semantics,
 * histogram bucket bounds (survive reset, propagate across merges),
 * in-place registry reset, the snapshot exporter's envelope and
 * interval gating, thread-pool capture, dump contents, violation
 * counting against synthetic latencies and critical-path stage
 * attribution.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/parallel_for.hh"
#include "common/thread_pool.hh"
#include "obs/deadline.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/snapshot.hh"

namespace {

using namespace ad;
using obs::DeadlineMonitor;
using obs::DeadlineParams;
using obs::FrameLatencySample;
using obs::MetricRegistry;
using obs::Stage;

TEST(MetricRegistry, CounterGaugeHistogramBasics)
{
    MetricRegistry reg;
    auto& c = reg.counter("c");
    c.add();
    c.add(9);
    EXPECT_EQ(c.value(), 10u);
    // Same name resolves to the same object (call sites cache refs).
    EXPECT_EQ(&reg.counter("c"), &c);
    c.reset();
    EXPECT_EQ(c.value(), 0u);

    auto& g = reg.gauge("g");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.set(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), -1.0);

    auto& h = reg.histogram("h");
    for (int i = 1; i <= 100; ++i)
        h.record(i);
    EXPECT_EQ(h.count(), 100u);
    const auto s = h.summary();
    EXPECT_DOUBLE_EQ(s.p50, 50.0);
    EXPECT_DOUBLE_EQ(s.worst, 100.0);

    LatencyRecorder rec;
    rec.record(1000.0);
    h.mergeFrom(rec);
    EXPECT_EQ(h.count(), 101u);
    EXPECT_DOUBLE_EQ(h.summary().worst, 1000.0);

    reg.reset();
    EXPECT_EQ(reg.counter("c").value(), 0u);
    EXPECT_EQ(reg.histogram("h").count(), 0u);
}

TEST(MetricRegistry, CounterIsExactUnderParallelFor)
{
    MetricRegistry reg;
    auto& c = reg.counter("parallel");
    ThreadPool pool(4);
    constexpr std::size_t kN = 200000;
    parallelFor(&pool, 0, kN, 1024,
                [&c](std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i)
                        c.add();
                });
    // Lock-free adds from every shard, not one lost increment.
    EXPECT_EQ(c.value(), kN);
}

TEST(MetricRegistry, CaptureThreadPoolSnapshotsCounters)
{
    MetricRegistry reg;
    ThreadPool pool(2);
    parallelFor(&pool, 0, 1000, 10,
                [](std::size_t, std::size_t) {});
    reg.captureThreadPool("pool", pool);
    EXPECT_DOUBLE_EQ(reg.gauge("pool.workers").value(), 2.0);
    // The calling thread runs the first chunk itself, so the workers
    // executed some-but-not-all of the remaining chunks.
    EXPECT_GE(reg.gauge("pool.tasks_run").value(), 0.0);
    EXPECT_GE(reg.gauge("pool.peak_queue_depth").value(), 0.0);
}

TEST(MetricRegistry, TextDumpContainsEveryMetric)
{
    MetricRegistry reg;
    reg.counter("frames").add(42);
    reg.gauge("budget_ms").set(100.0);
    reg.histogram("det_ms").record(12.5);
    const std::string dump = reg.textDump();
    EXPECT_NE(dump.find("frames"), std::string::npos);
    EXPECT_NE(dump.find("42"), std::string::npos);
    EXPECT_NE(dump.find("budget_ms"), std::string::npos);
    EXPECT_NE(dump.find("det_ms"), std::string::npos);

    const std::string json = reg.jsonDump();
    EXPECT_NE(json.find("\"frames\""), std::string::npos);
}

TEST(MetricRegistry, EnabledFlagDefaultsOff)
{
    MetricRegistry reg;
    EXPECT_FALSE(reg.enabled());
    reg.setEnabled(true);
    EXPECT_TRUE(reg.enabled());
}

TEST(MetricRegistry, MergeFoldsCountersGaugesAndHistograms)
{
    MetricRegistry global;
    global.counter("frames").add(10);
    global.gauge("mode").set(1.0);
    global.histogram("latency").record(5.0);

    MetricRegistry local;
    local.counter("frames").add(32);       // existing: adds.
    local.counter("sheds").add(3);         // new: created.
    local.gauge("mode").set(2.0);          // existing: overwrites.
    local.histogram("latency").record(50.0);
    local.histogram("latency").record(500.0);

    global.merge(local);
    EXPECT_EQ(global.counter("frames").value(), 42u);
    EXPECT_EQ(global.counter("sheds").value(), 3u);
    EXPECT_DOUBLE_EQ(global.gauge("mode").value(), 2.0);
    EXPECT_EQ(global.histogram("latency").count(), 3u);
    EXPECT_DOUBLE_EQ(global.histogram("latency").summary().worst,
                     500.0);
    // The source registry is untouched.
    EXPECT_EQ(local.counter("frames").value(), 32u);
    EXPECT_EQ(local.histogram("latency").count(), 2u);
}

TEST(MetricRegistry, SelfMergeIsANoOp)
{
    MetricRegistry reg;
    reg.counter("c").add(7);
    reg.merge(reg);
    EXPECT_EQ(reg.counter("c").value(), 7u);
}

TEST(MetricRegistry, WorkerLocalRegistriesAggregateExactly)
{
    // The serving-layer pattern: each worker records into its own
    // registry on the hot path, one merge per worker at the end.
    MetricRegistry global;
    ThreadPool pool(4);
    constexpr std::size_t kN = 100000;
    std::mutex mergeMutex;
    std::size_t merges = 0;
    parallelFor(&pool, 0, kN, 1000,
                [&](std::size_t begin, std::size_t end) {
                    MetricRegistry local;
                    local.counter("work").add(end - begin);
                    local.histogram("chunk").record(
                        static_cast<double>(end - begin));
                    std::lock_guard<std::mutex> lock(mergeMutex);
                    global.merge(local);
                    ++merges;
                });
    // Not one unit lost or double-counted across worker-local
    // registries, and one histogram sample per merge.
    EXPECT_EQ(global.counter("work").value(), kN);
    EXPECT_EQ(global.histogram("chunk").count(), merges);
    EXPECT_GE(merges, 2u);
}

TEST(MetricRegistry, LabeledComposesCanonicalNames)
{
    EXPECT_EQ(obs::labeled("serve.frames", "stream", "3"),
              "serve.frames{stream=3}");
    MetricRegistry reg;
    reg.counter(obs::labeled("serve.frames", "stream", "3")).add();
    EXPECT_NE(reg.textDump().find("serve.frames{stream=3}"),
              std::string::npos);
}

TEST(Histogram, BucketCountsFollowBounds)
{
    obs::Histogram h;
    h.setBounds({1.0, 2.0, 5.0});
    h.record(0.5);  // bucket 0 (<= 1).
    h.record(1.5);  // bucket 1.
    h.record(2.0);  // bucket 1 (upper edges are inclusive).
    h.record(3.0);  // bucket 2.
    h.record(10.0); // overflow.
    EXPECT_EQ(h.bucketCounts(),
              (std::vector<std::uint64_t>{1, 2, 1, 1}));

    // reset drops samples and counts but keeps the bounds.
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 5.0}));
    EXPECT_EQ(h.bucketCounts(),
              (std::vector<std::uint64_t>{0, 0, 0, 0}));
    h.record(4.0);
    EXPECT_EQ(h.bucketCounts(),
              (std::vector<std::uint64_t>{0, 0, 1, 0}));
}

TEST(Histogram, SetBoundsRecountsHeldSamples)
{
    obs::Histogram h;
    h.record(0.5);
    h.record(7.0);
    // Bounds installed after recording: counts are rebuilt from the
    // held samples (and unsorted input is sorted).
    h.setBounds({5.0, 1.0});
    EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 5.0}));
    EXPECT_EQ(h.bucketCounts(), (std::vector<std::uint64_t>{1, 0, 1}));
}

TEST(MetricRegistry, HistogramBoundsFirstWriterWins)
{
    MetricRegistry reg;
    auto& h = reg.histogram("lat", {10.0, 20.0});
    EXPECT_EQ(h.bounds(), (std::vector<double>{10.0, 20.0}));
    // A second lookup with different bounds keeps the first set.
    auto& again = reg.histogram("lat", {1.0});
    EXPECT_EQ(&again, &h);
    EXPECT_EQ(h.bounds(), (std::vector<double>{10.0, 20.0}));
    // The plain overload resolves to the same object too.
    EXPECT_EQ(&reg.histogram("lat"), &h);
}

TEST(MetricRegistry, MergePropagatesBucketBounds)
{
    MetricRegistry worker;
    auto& wh = worker.histogram("stage_ms", {1.0, 10.0});
    wh.record(0.5);
    wh.record(5.0);

    // Merge into a registry that has never seen the histogram: the
    // created slot adopts the source's bounds and counts.
    MetricRegistry global;
    global.merge(worker);
    auto& gh = global.histogram("stage_ms");
    EXPECT_EQ(gh.bounds(), (std::vector<double>{1.0, 10.0}));
    EXPECT_EQ(gh.bucketCounts(),
              (std::vector<std::uint64_t>{1, 1, 0}));
}

TEST(MetricRegistry, MergeAfterResetPreservesBucketBounds)
{
    // The regression this guards: reset() used to destroy metric
    // objects, so a reset-then-merge lost the histogram's bucket
    // configuration (and dangled cached references).
    MetricRegistry worker;
    worker.histogram("stage_ms", {1.0, 10.0}).record(5.0);

    MetricRegistry global;
    global.merge(worker);
    global.reset();
    EXPECT_EQ(global.histogram("stage_ms").count(), 0u);
    EXPECT_EQ(global.histogram("stage_ms").bounds(),
              (std::vector<double>{1.0, 10.0}));

    global.merge(worker);
    EXPECT_EQ(global.histogram("stage_ms").count(), 1u);
    EXPECT_EQ(global.histogram("stage_ms").bucketCounts(),
              (std::vector<std::uint64_t>{0, 1, 0}));
}

TEST(MetricRegistry, ResetZeroesInPlaceKeepingCachedReferences)
{
    MetricRegistry reg;
    auto& c = reg.counter("c");
    auto& g = reg.gauge("g");
    auto& h = reg.histogram("h");
    c.add(3);
    g.set(7.0);
    h.record(1.0);

    reg.reset();
    // The same objects, observed through pre-reset references.
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(&reg.counter("c"), &c);
    EXPECT_EQ(&reg.histogram("h"), &h);

    c.add();
    EXPECT_EQ(reg.counter("c").value(), 1u);
}

TEST(MetricRegistry, JsonDumpCarriesBucketArrays)
{
    MetricRegistry reg;
    auto& h = reg.histogram("lat_ms", {1.0, 2.0});
    h.record(0.5);
    h.record(1.5);
    h.record(9.0);

    std::string error;
    const auto doc = obs::json::parse(reg.jsonDump(), &error);
    ASSERT_TRUE(doc) << error;
    const auto* hist = doc->find("histograms");
    ASSERT_TRUE(hist && hist->isObject());
    const auto* lat = hist->find("lat_ms");
    ASSERT_TRUE(lat && lat->isObject());
    const auto* buckets = lat->find("buckets");
    ASSERT_TRUE(buckets && buckets->isObject());
    const auto* bounds = buckets->find("bounds");
    const auto* counts = buckets->find("counts");
    ASSERT_TRUE(bounds && bounds->isArray());
    ASSERT_TRUE(counts && counts->isArray());
    ASSERT_EQ(bounds->asArray().size(), 2u);
    ASSERT_EQ(counts->asArray().size(), 3u);
    EXPECT_DOUBLE_EQ(counts->asArray()[0].asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(counts->asArray()[1].asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(counts->asArray()[2].asNumber(), 1.0);
}

TEST(MetricsSnapshotter, WritesEnvelopeAndHonorsInterval)
{
    const std::string path = "test_metrics_snapshot.json";
    MetricRegistry reg;
    reg.counter("frames").add(5);

    obs::MetricsSnapshotter snap(reg, {path, 100.0});
    EXPECT_TRUE(snap.maybeWrite(0.0)); // first call always writes.
    EXPECT_FALSE(snap.maybeWrite(50.0));
    reg.counter("frames").add(5);
    EXPECT_TRUE(snap.maybeWrite(150.0));
    EXPECT_EQ(snap.snapshotsWritten(), 2);

    std::string error;
    const auto doc = obs::json::parseFile(path, &error);
    ASSERT_TRUE(doc) << error;
    const auto* schema = doc->find("schema");
    ASSERT_TRUE(schema && schema->isString());
    EXPECT_EQ(schema->asString(), "ad.metrics.v1");
    const auto* seq = doc->find("seq");
    ASSERT_TRUE(seq && seq->isNumber());
    EXPECT_DOUBLE_EQ(seq->asNumber(), 1.0); // 0-based sequence.
    const auto* now = doc->find("now_ms");
    ASSERT_TRUE(now && now->isNumber());
    EXPECT_DOUBLE_EQ(now->asNumber(), 150.0);
    const auto* metrics = doc->find("metrics");
    ASSERT_TRUE(metrics && metrics->isObject());
    const auto* counters = metrics->find("counters");
    ASSERT_TRUE(counters && counters->isObject());
    const auto* frames = counters->find("frames");
    ASSERT_TRUE(frames && frames->isNumber());
    EXPECT_DOUBLE_EQ(frames->asNumber(), 10.0);

    // No stale temp file is left behind by the atomic rename.
    std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "r");
    EXPECT_EQ(tmp, nullptr);
    if (tmp)
        std::fclose(tmp);
    std::remove(path.c_str());
}

TEST(DeadlineMonitor, CountsViolationsAgainstBudget)
{
    DeadlineParams params;
    params.budgetMs = 100.0;
    DeadlineMonitor mon(params);

    // Composed e2e = max(40, 30 + 20) + 1 + 2 = 53 ms: within budget.
    mon.observe(0, {30, 20, 40, 1, 2});
    EXPECT_EQ(mon.framesObserved(), 1u);
    EXPECT_EQ(mon.violations(), 0u);

    // max(90, 80 + 45) + 5 + 5 = 135 ms: violation, DET dominates the
    // slower perception branch.
    mon.observe(1, {80, 45, 90, 5, 5});
    EXPECT_EQ(mon.violations(), 1u);
    EXPECT_DOUBLE_EQ(mon.worstOverrunMs(), 35.0);
    EXPECT_EQ(mon.worstFrame(), 1);
    EXPECT_EQ(mon.violationsByStage()[static_cast<int>(Stage::Det)], 1u);

    // max(150, 10 + 10) + 1 + 1 = 152 ms: LOC is the critical branch.
    mon.observe(2, {10, 10, 150, 1, 1});
    EXPECT_EQ(mon.violations(), 2u);
    EXPECT_DOUBLE_EQ(mon.worstOverrunMs(), 52.0);
    EXPECT_EQ(mon.worstFrame(), 2);
    EXPECT_EQ(mon.violationsByStage()[static_cast<int>(Stage::Loc)], 1u);
}

TEST(DeadlineMonitor, WorstStageFollowsCriticalPath)
{
    // LOC slower than DET+TRA: blame LOC even though DET is large.
    EXPECT_EQ(DeadlineMonitor::worstStage({40, 10, 60, 1, 1}),
              Stage::Loc);
    // DET+TRA branch dominates; TRA is its larger half.
    EXPECT_EQ(DeadlineMonitor::worstStage({20, 50, 60, 1, 1}),
              Stage::Tra);
    // A slow LOC hidden under a slower DET+TRA branch is not blamed.
    EXPECT_EQ(DeadlineMonitor::worstStage({80, 30, 90, 1, 1}),
              Stage::Det);
    // FUSION / MOTPLAN win only when individually dominant.
    EXPECT_EQ(DeadlineMonitor::worstStage({5, 5, 5, 200, 1}),
              Stage::Fusion);
    EXPECT_EQ(DeadlineMonitor::worstStage({5, 5, 5, 1, 200}),
              Stage::MotPlan);
}

TEST(DeadlineMonitor, TightBudgetSyntheticSweep)
{
    DeadlineParams params;
    params.budgetMs = 10.0;
    DeadlineMonitor mon(params);
    for (int i = 0; i < 100; ++i) {
        // Every third frame spikes DET to 3x budget.
        const double det = (i % 3 == 0) ? 30.0 : 2.0;
        mon.observe(i, {det, 1.0, 2.0, 0.1, 0.2});
    }
    EXPECT_EQ(mon.framesObserved(), 100u);
    EXPECT_EQ(mon.violations(), 34u); // frames 0, 3, ..., 99.
    EXPECT_EQ(mon.violationsByStage()[static_cast<int>(Stage::Det)],
              34u);
    EXPECT_EQ(mon.violationsByStage()[static_cast<int>(Stage::Loc)], 0u);
    // 30 + 1 + 0.1 + 0.2 = 31.3 ms against a 10 ms budget.
    EXPECT_NEAR(mon.worstOverrunMs(), 21.3, 1e-9);
}

TEST(DeadlineMonitor, ReportNamesViolationsAndStages)
{
    DeadlineParams params;
    params.budgetMs = 50.0;
    DeadlineMonitor mon(params);
    mon.observe(0, {10, 5, 12, 1, 1});
    mon.observe(1, {70, 10, 12, 1, 1});
    const std::string report = mon.report();
    EXPECT_NE(report.find("1"), std::string::npos);
    EXPECT_NE(report.find("DET"), std::string::npos);
    // All five stages appear in the attribution table.
    for (const char* stage :
         {"DET", "TRA", "LOC", "FUSION", "MOTPLAN"})
        EXPECT_NE(report.find(stage), std::string::npos) << stage;
}

TEST(DeadlineMonitor, NoViolationsReportIsQuietAboutWorstFrame)
{
    DeadlineMonitor mon;
    mon.observe(0, {10, 5, 12, 1, 1});
    EXPECT_EQ(mon.violations(), 0u);
    EXPECT_EQ(mon.worstFrame(), -1);
    EXPECT_DOUBLE_EQ(mon.worstOverrunMs(), 0.0);
}

} // namespace
