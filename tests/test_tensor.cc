/**
 * @file
 * Tests for the CHW tensor container and its image/concat conversions.
 */

#include <gtest/gtest.h>

#include "common/image.hh"
#include "nn/tensor.hh"

namespace {

using ad::Image;
using ad::nn::Tensor;

TEST(Tensor, ShapeAndAccess)
{
    Tensor t(3, 4, 5);
    EXPECT_EQ(t.channels(), 3);
    EXPECT_EQ(t.height(), 4);
    EXPECT_EQ(t.width(), 5);
    EXPECT_EQ(t.size(), 60u);
    EXPECT_EQ(t.bytes(), 240u);
    t.at(2, 3, 4) = 1.5f;
    EXPECT_FLOAT_EQ(t.at(2, 3, 4), 1.5f);
    EXPECT_FLOAT_EQ(t.at(0, 0, 0), 0.0f);
    EXPECT_EQ(t.shapeString(), "3x4x5");
}

TEST(Tensor, ChannelPlanePointers)
{
    Tensor t(2, 2, 2);
    t.at(1, 0, 0) = 9.0f;
    EXPECT_FLOAT_EQ(t.channel(1)[0], 9.0f);
    EXPECT_EQ(t.channel(1) - t.channel(0), 4);
}

TEST(Tensor, FillAndEmpty)
{
    Tensor t(1, 2, 2);
    t.fill(3.0f);
    for (int y = 0; y < 2; ++y)
        for (int x = 0; x < 2; ++x)
            EXPECT_FLOAT_EQ(t.at(0, y, x), 3.0f);
    EXPECT_TRUE(Tensor().empty());
    EXPECT_FALSE(t.empty());
}

TEST(Tensor, FromImageNormalizes)
{
    Image img(3, 2, 0);
    img.at(0, 0) = 255;
    img.at(2, 1) = 51;
    const Tensor t = Tensor::fromImage(img);
    EXPECT_EQ(t.channels(), 1);
    EXPECT_EQ(t.height(), 2);
    EXPECT_EQ(t.width(), 3);
    EXPECT_FLOAT_EQ(t.at(0, 0, 0), 1.0f);
    EXPECT_FLOAT_EQ(t.at(0, 1, 2), 0.2f);
    EXPECT_FLOAT_EQ(t.at(0, 0, 1), 0.0f);
}

TEST(Tensor, ConcatChannelsStacks)
{
    Tensor a(2, 2, 2);
    Tensor b(1, 2, 2);
    a.fill(1.0f);
    b.fill(2.0f);
    const Tensor c = Tensor::concatChannels(a, b);
    EXPECT_EQ(c.channels(), 3);
    EXPECT_FLOAT_EQ(c.at(0, 1, 1), 1.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0, 0), 1.0f);
    EXPECT_FLOAT_EQ(c.at(2, 1, 0), 2.0f);
}

} // namespace
