/**
 * @file
 * Tests for environmental rendering conditions and their system
 * effects: illumination/noise post-processing, localization
 * robustness at dusk, the map-update path under appearance change
 * (the reason Figure 5 has a "Map Update" block), and the detector's
 * honest sensitivity to low light.
 */

#include <gtest/gtest.h>

#include "detect/yolo.hh"
#include "sensors/scenario.hh"
#include "slam/localizer.hh"
#include "slam/mapping.hh"

namespace {

using namespace ad;
using namespace ad::sensors;

TEST(Conditions, IlluminationScalesPixels)
{
    World world;
    Camera cam(Resolution::HHD);
    const Pose2 ego(50, world.road().laneCenter(1), 0);
    const Frame day = cam.render(world, ego);
    RenderConditions dusk;
    dusk.illumination = 0.5;
    const Frame evening = cam.render(world, ego, dusk);
    // Sample a sky pixel and a road pixel: both halve.
    EXPECT_NEAR(evening.image.at(320, 40),
                day.image.at(320, 40) * 0.5, 1.0);
    EXPECT_NEAR(evening.image.at(320, 330),
                day.image.at(320, 330) * 0.5, 1.0);
}

TEST(Conditions, ExtraNoisePerturbsDeterministically)
{
    World world;
    Camera cam(Resolution::HHD);
    const Pose2 ego(50, world.road().laneCenter(1), 0);
    RenderConditions noisy;
    noisy.extraNoise = 10;
    const Frame a = cam.render(world, ego, noisy);
    const Frame b = cam.render(world, ego, noisy);
    // Same world time -> identical noise (reproducibility).
    int diffs = 0;
    for (int y = 0; y < a.image.height(); y += 7)
        for (int x = 0; x < a.image.width(); x += 7)
            diffs += a.image.at(x, y) != b.image.at(x, y);
    EXPECT_EQ(diffs, 0);
    // But it differs from the clean render.
    const Frame clean = cam.render(world, ego);
    int changed = 0;
    for (int y = 0; y < a.image.height(); y += 7)
        for (int x = 0; x < a.image.width(); x += 7)
            changed += a.image.at(x, y) != clean.image.at(x, y);
    EXPECT_GT(changed, 100);
}

TEST(Conditions, DetectorDegradesAtDusk)
{
    // The brightness-band detector honestly loses objects when the
    // scene darkens below its thresholds -- the accuracy-vs-sensing
    // trade the paper's Section 5.4 circles around.
    World world;
    Actor car;
    car.cls = ObjectClass::Vehicle;
    car.motion = MotionKind::Stationary;
    car.pose = Pose2(65, world.road().laneCenter(1), 0);
    world.addActor(car);
    Camera cam(Resolution::HHD);
    const Pose2 ego(50, world.road().laneCenter(1), 0);

    detect::DetectorParams dp;
    dp.inputSize = 160;
    dp.width = 0.25;
    detect::YoloDetector detector(dp);

    const Frame day = cam.render(world, ego);
    EXPECT_FALSE(detector.detect(day.image).empty());

    RenderConditions night;
    night.illumination = 0.45;
    const Frame dark = cam.render(world, ego, night);
    EXPECT_TRUE(detector.detect(dark.image).empty());
}

TEST(Conditions, LocalizationSurvivesDuskWithMapUpdate)
{
    // Survey in daylight, drive at dusk: descriptors shift. With the
    // map-update path enabled (Figure 5), refreshed descriptors keep
    // matching healthy across the drive.
    Rng rng(13);
    ScenarioParams sp;
    sp.roadLength = 150.0;
    const Scenario sc = makeHighwayScenario(rng, sp);
    Camera cam(Resolution::HHD);
    slam::PriorMap map = slam::buildPriorMap(sc.world, cam, 1);

    World drive;
    drive.road() = sc.world.road();
    for (const auto& lm : sc.world.landmarks())
        drive.landmarks().push_back(lm);

    slam::LocalizerParams lp;
    slam::Localizer loc(&map, &cam, lp, 7);
    loc.setMutableMap(&map);

    RenderConditions dusk;
    dusk.illumination = 0.75;
    Pose2 ego(15.0, drive.road().laneCenter(1), 0.0);
    loc.reset(ego, {10, 0});

    int ok = 0;
    double worstErr = 0;
    const int frames = 20;
    for (int i = 0; i < frames; ++i) {
        drive.step(0.1);
        ego.pos.x += 1.0;
        const Frame frame = cam.render(drive, ego, dusk);
        const auto r = loc.localize(frame.image, 0.1);
        ok += r.ok;
        if (r.ok)
            worstErr = std::max(worstErr, r.pose.distanceTo(ego));
    }
    EXPECT_GE(ok, frames * 2 / 3);
    EXPECT_LT(worstErr, 2.0);
}

} // namespace
