/**
 * @file
 * Tests for the accelerator platform models: the latency-distribution
 * primitives (fit/mean/tail identities), model anchoring to the
 * paper's Figure 10 grid, mechanistic workload scaling (resolution,
 * layer kinds), the Section 4.2 ablation knobs, and the paper's
 * headline speedup factors.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/models.hh"

namespace {

using namespace ad;
using namespace ad::accel;

TEST(LatencyDistribution, LognormalFitHitsTargets)
{
    for (const auto& [m, t] : {std::pair{10.0, 13.0},
                              std::pair{7150.0, 7734.4},
                              std::pair{5.5, 6.4},
                              std::pair{40.8, 294.2}}) {
        const auto d = LatencyDistribution::fit(m, t);
        EXPECT_NEAR(d.mean(), m, m * 0.01) << m;
        EXPECT_NEAR(d.tail9999(), t, t * 0.01) << t;
    }
}

TEST(LatencyDistribution, DegenerateDeterministicFit)
{
    const auto d = LatencyDistribution::fit(27.1, 27.1);
    EXPECT_NEAR(d.sigma, 0.0, 1e-9);
    EXPECT_NEAR(d.mean(), 27.1, 1e-6);
    Rng rng(1);
    EXPECT_NEAR(d.sample(rng), 27.1, 1e-6);
}

TEST(LatencyDistribution, SpikeFitHitsTargets)
{
    const auto d =
        LatencyDistribution::fit(40.8, 294.2, kLocSpikeProbability);
    EXPECT_NEAR(d.mean(), 40.8, 40.8 * 0.03);
    EXPECT_NEAR(d.tail9999(), 294.2, 294.2 * 0.05);
    EXPECT_GT(d.spikeMs, 0);
}

TEST(LatencyDistribution, SampledQuantilesMatchAnalytic)
{
    Rng rng(7);
    const auto d =
        LatencyDistribution::fit(40.8, 294.2, kLocSpikeProbability);
    const auto s = d.summarize(300000, rng);
    EXPECT_NEAR(s.mean, d.mean(), d.mean() * 0.05);
    EXPECT_NEAR(s.p9999, d.tail9999(), d.tail9999() * 0.25);
    // Heavy tail: the sampled p99.99 dwarfs the median.
    EXPECT_GT(s.p9999, 4 * s.p50);
}

TEST(LatencyDistribution, SamplesArePositive)
{
    Rng rng(3);
    const auto d = LatencyDistribution::fit(5.5, 6.4);
    for (int i = 0; i < 10000; ++i)
        ASSERT_GT(d.sample(rng), 0.0);
}

TEST(PlatformSpecs, MatchTable2)
{
    EXPECT_EQ(platformSpec(Platform::Cpu).cores, 16);
    EXPECT_DOUBLE_EQ(platformSpec(Platform::Cpu).frequencyGhz, 3.2);
    EXPECT_EQ(platformSpec(Platform::Gpu).cores, 3584);
    EXPECT_DOUBLE_EQ(platformSpec(Platform::Gpu).memoryBwGBs, 480.0);
    EXPECT_EQ(platformSpec(Platform::Fpga).cores, 256);
    EXPECT_DOUBLE_EQ(platformSpec(Platform::Fpga).memoryBwGBs, 6.4);
}

TEST(Workload, StandardMatchesFullScaleProfiles)
{
    const Workload& w = standardWorkloadRef();
    EXPECT_GT(w.det.totalFlops(), 3e9);
    EXPECT_GT(w.tra.totalWeightBytes(), 4e8); // GOTURN FC weights
    EXPECT_NEAR(w.fe.pixels / 1e6, 1.17, 0.05);
    EXPECT_EQ(w.fe.features, 1875u);
    EXPECT_NEAR(w.locOthersCpuMs, 5.75, 0.1);
}

TEST(Workload, SpatialScalingLeavesFcAlone)
{
    const Workload& w = standardWorkloadRef();
    const Workload big = w.scaled(4.0);
    EXPECT_NEAR(static_cast<double>(
                    big.det.flopsOfKind(nn::LayerKind::Conv)) /
                    w.det.flopsOfKind(nn::LayerKind::Conv),
                4.0, 0.01);
    EXPECT_EQ(big.tra.flopsOfKind(nn::LayerKind::FullyConnected),
              w.tra.flopsOfKind(nn::LayerKind::FullyConnected));
    EXPECT_EQ(big.tra.totalWeightBytes(), w.tra.totalWeightBytes());
    EXPECT_NEAR(static_cast<double>(big.fe.pixels) / w.fe.pixels, 4.0,
                0.01);
    EXPECT_EQ(big.fe.features, w.fe.features);
}

/** Every Figure 10 anchor must be reproduced by its model. */
class AnchorTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(AnchorTest, ModelReproducesPaperCell)
{
    const auto c = static_cast<Component>(std::get<0>(GetParam()));
    const auto p = static_cast<Platform>(std::get<1>(GetParam()));
    const PlatformModel& model = platformModel(p);
    const Workload& w = standardWorkloadRef();
    const PaperAnchor anchor = paperAnchor(c, p);

    // Mechanistic base latency within 6% of the paper's mean.
    EXPECT_NEAR(model.baseLatencyMs(c, w), anchor.meanMs,
                anchor.meanMs * 0.06);
    // Fitted distribution within 3% / 6% of mean / tail.
    const auto d = model.latency(c, w);
    EXPECT_NEAR(d.mean(), anchor.meanMs, anchor.meanMs * 0.03);
    EXPECT_NEAR(d.tail9999(), anchor.tailMs, anchor.tailMs * 0.06);
    // Power is the measured constant.
    EXPECT_DOUBLE_EQ(model.powerWatts(c), anchor.powerW);
}

INSTANTIATE_TEST_SUITE_P(
    Figure10Grid, AnchorTest,
    ::testing::Combine(::testing::Range(0, kNumBottlenecks),
                       ::testing::Range(0, kNumPlatforms)));

TEST(Models, HeadlineTailSpeedups)
{
    // Section 5 headline: accelerators reduce the end-to-end tail by
    // 169x (GPU), 10x (FPGA) and 93x (ASIC). End-to-end tail =
    // max(LOC, DET + TRA) since DET/TRA and LOC run in parallel.
    const Workload& w = standardWorkloadRef();
    const auto e2eTail = [&](Platform p) {
        const PlatformModel& m = platformModel(p);
        const double detTra = m.latency(Component::Det, w).tail9999() +
                              m.latency(Component::Tra, w).tail9999();
        const double loc = m.latency(Component::Loc, w).tail9999();
        return std::max(detTra, loc);
    };
    const double cpu = e2eTail(Platform::Cpu);
    EXPECT_NEAR(cpu / e2eTail(Platform::Gpu), 169.0, 25.0);
    EXPECT_NEAR(cpu / e2eTail(Platform::Fpga), 10.0, 1.5);
    EXPECT_NEAR(cpu / e2eTail(Platform::Asic), 93.0, 12.0);
}

TEST(Models, LatencyMonotoneInResolution)
{
    const Workload& w = standardWorkloadRef();
    for (int pi = 0; pi < kNumPlatforms; ++pi) {
        const auto p = static_cast<Platform>(pi);
        const PlatformModel& m = platformModel(p);
        for (int ci = 0; ci < kNumBottlenecks; ++ci) {
            const auto c = static_cast<Component>(ci);
            double prev = 0;
            for (const double r : {0.5, 1.0, 2.0, 4.0, 8.0}) {
                const double base = m.baseLatencyMs(c, w.scaled(r));
                EXPECT_GT(base, prev)
                    << platformName(p) << " " << componentName(c);
                prev = base;
            }
        }
    }
}

TEST(Models, TrackerResolutionScalingIsSubLinear)
{
    // TRA's FC stack does not grow with camera resolution, so TRA
    // latency grows sub-linearly -- unlike DET.
    const Workload& w = standardWorkloadRef();
    const Workload big = w.scaled(4.0);
    const PlatformModel& gpu = platformModel(Platform::Gpu);
    const double traRatio = gpu.baseLatencyMs(Component::Tra, big) /
                            gpu.baseLatencyMs(Component::Tra, w);
    const double detRatio = gpu.baseLatencyMs(Component::Det, big) /
                            gpu.baseLatencyMs(Component::Det, w);
    EXPECT_LT(traRatio, detRatio);
    EXPECT_NEAR(detRatio, 4.0, 0.1);
}

TEST(Models, FpgaTraIsTransferBound)
{
    // GOTURN's 436 MB FC weights dominate the FPGA schedule: with the
    // host link halved the latency nearly doubles... equivalently,
    // disabling double buffering (serializing transfer after compute)
    // adds only the smaller compute time.
    FpgaModel fpga;
    const Workload& w = standardWorkloadRef();
    const double with = fpga.baseLatencyMs(Component::Tra, w);
    FpgaModel::Options opts;
    opts.doubleBuffering = false;
    fpga.setOptions(opts);
    const double without = fpga.baseLatencyMs(Component::Tra, w);
    EXPECT_GT(without, with);
    EXPECT_LT(without / with, 1.25); // transfer-bound: modest penalty
}

TEST(Models, LutTrigAblationMatchesPaperFactors)
{
    const Workload& w = standardWorkloadRef();

    FpgaModel fpga;
    const double fpgaLut =
        fpga.baseLatencyMs(Component::Loc, w) - w.locOthersCpuMs;
    FpgaModel::Options fOpts;
    fOpts.lutTrig = false;
    fpga.setOptions(fOpts);
    const double fpgaNaive =
        fpga.baseLatencyMs(Component::Loc, w) - w.locOthersCpuMs;
    EXPECT_NEAR(fpgaNaive / fpgaLut, 1.5, 0.01); // Section 4.2.2

    AsicModel asic;
    const double asicLut =
        asic.baseLatencyMs(Component::Loc, w) - w.locOthersCpuMs;
    AsicModel::Options aOpts;
    aOpts.lutTrig = false;
    asic.setOptions(aOpts);
    const double asicNaive =
        asic.baseLatencyMs(Component::Loc, w) - w.locOthersCpuMs;
    EXPECT_NEAR(asicNaive / asicLut, 4.0, 0.01); // Section 4.2.3
}

TEST(Models, AcceleratorsAreMorePredictableThanCpu)
{
    const Workload& w = standardWorkloadRef();
    for (const auto c :
         {Component::Det, Component::Tra, Component::Loc}) {
        const auto cpu = platformModel(Platform::Cpu).latency(c, w);
        for (const auto p :
             {Platform::Fpga, Platform::Asic}) {
            const auto acc = platformModel(p).latency(c, w);
            const double cpuRatio = cpu.tail9999() / cpu.mean();
            const double accRatio = acc.tail9999() / acc.mean();
            EXPECT_LE(accRatio, cpuRatio + 1e-9)
                << componentName(c) << " " << platformName(p);
        }
    }
}

TEST(Models, FeAsicSpecMatchesTable3)
{
    const auto spec = feAsicSpec();
    EXPECT_DOUBLE_EQ(spec.clockGhz, 4.0);
    EXPECT_DOUBLE_EQ(spec.powerMw, 21.97);
    EXPECT_DOUBLE_EQ(spec.areaUm2, 6539.9);
}

TEST(Models, FusionAndMotPlanAreNegligible)
{
    const Workload& w = standardWorkloadRef();
    const PlatformModel& cpu = platformModel(Platform::Cpu);
    EXPECT_LT(cpu.latency(Component::Fusion, w).tail9999(), 0.2);
    EXPECT_LT(cpu.latency(Component::MotPlan, w).tail9999(), 0.6);
}

TEST(Models, QuantizedSpeedupMatchesMeasuredAnchors)
{
    // Amdahl over the DNN share with the measured dnn_speedup values
    // from BENCH_quant.json (DET 1.25x conv-bound, TRA 3.1x FC-bound).
    const double det = cpuQuantizedSpeedup(Component::Det);
    const double tra = cpuQuantizedSpeedup(Component::Tra);
    EXPECT_NEAR(det, 1.0 / ((1.0 - 0.994) + 0.994 / 1.25), 1e-12);
    EXPECT_NEAR(tra, 1.0 / ((1.0 - 0.99) + 0.99 / 3.1), 1e-12);
    // The composite never exceeds the within-DNN kernel speedup.
    EXPECT_GT(det, 1.0);
    EXPECT_LT(det, 1.25);
    EXPECT_GT(tra, 1.0);
    EXPECT_LT(tra, 3.1);
}

TEST(Models, QuantizedSpeedupIsUnityOffTheDnnEngines)
{
    EXPECT_DOUBLE_EQ(cpuQuantizedSpeedup(Component::Loc), 1.0);
    EXPECT_DOUBLE_EQ(cpuQuantizedSpeedup(Component::Fusion), 1.0);
    EXPECT_DOUBLE_EQ(cpuQuantizedSpeedup(Component::MotPlan), 1.0);
}

TEST(Models, QuantizationAloneDoesNotRescueTheCpu)
{
    // The Section 3.2 conclusion survives the precision lever: DET
    // and TRA tails stay far over the 100 ms budget even quantized.
    const Workload& w = standardWorkloadRef();
    const PlatformModel& cpu = platformModel(Platform::Cpu);
    for (const auto c : {Component::Det, Component::Tra}) {
        const auto scaled = cpu.latency(c, w).scaledBy(
            1.0 / cpuQuantizedSpeedup(c));
        EXPECT_GT(scaled.tail9999(), 100.0) << componentName(c);
    }
}

} // namespace
