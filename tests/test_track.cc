/**
 * @file
 * Tests for the object-tracking engine: NCC localization, single-object
 * GOTURN-style tracking across frames, the tracker pool's association /
 * eviction / warm-start behavior, and the DNN-dominated timing split.
 */

#include <gtest/gtest.h>

#include "sensors/camera.hh"
#include "track/pool.hh"

namespace {

using namespace ad;
using namespace ad::track;
using sensors::Camera;
using sensors::ObjectClass;
using sensors::Resolution;

/** Frame with one bright square at (x, y). */
Image
frameWithSquare(double x, double y, double side = 20)
{
    Image img(160, 120, 70);
    img.fillRect(BBox(x, y, side, side), 220);
    // A little texture so NCC has structure.
    for (int i = 0; i < 6; ++i)
        img.fillRect(BBox(x + 3 + 2 * i, y + 3 + i, 2, 2), 120);
    return img;
}

TEST(Ncc, FindsTemplateLocation)
{
    const Image frame = frameWithSquare(60, 40);
    const Image tmpl = frame.cropResized(BBox(60, 40, 20, 20), 20, 20);
    int bx, by;
    double score;
    nccBestOffset(frame, tmpl, bx, by, score);
    EXPECT_NEAR(bx, 60, 2);
    EXPECT_NEAR(by, 40, 2);
    EXPECT_GT(score, 0.9);
}

TEST(Ncc, FlatTemplateDoesNotCrash)
{
    Image search(40, 40, 100);
    Image tmpl(10, 10, 100);
    int bx, by;
    double score;
    nccBestOffset(search, tmpl, bx, by, score);
    EXPECT_GE(bx, 0);
    EXPECT_GE(by, 0);
}

TEST(Goturn, TracksMovingSquare)
{
    TrackerParams tp;
    tp.cropSize = 48;
    tp.width = 0.25;
    GoturnTracker tracker(tp);

    double x = 40;
    double y = 40;
    tracker.init(frameWithSquare(x, y), BBox(x, y, 20, 20));
    EXPECT_TRUE(tracker.active());

    for (int i = 0; i < 8; ++i) {
        x += 3;
        y += 1;
        const BBox box = tracker.track(frameWithSquare(x, y));
        EXPECT_NEAR(box.cx(), x + 10, 6.0) << "frame " << i;
        EXPECT_NEAR(box.cy(), y + 10, 6.0) << "frame " << i;
    }
}

TEST(Goturn, DnnDominatesTraCycles)
{
    // Figure 7: DNN is 99.0% of TRA. Assert clear dominance at
    // paper-like crop scale (the NCC refinement is the small "Others"
    // slice).
    TrackerParams tp;
    tp.cropSize = 63;
    tp.width = 0.5;
    GoturnTracker tracker(tp);
    tracker.init(frameWithSquare(40, 40), BBox(40, 40, 20, 20));
    TrackTimings timings;
    for (int i = 0; i < 3; ++i)
        tracker.track(frameWithSquare(43 + 3 * i, 41 + i), &timings);
    EXPECT_GT(timings.dnnMs / (timings.dnnMs + timings.otherMs), 0.7);
}

TEST(Goturn, FullScaleProfileIsFcHeavy)
{
    const auto p = GoturnTracker::fullScaleProfile();
    const double fcShare =
        static_cast<double>(
            p.weightBytesOfKind(nn::LayerKind::FullyConnected)) /
        static_cast<double>(p.totalWeightBytes());
    EXPECT_GT(fcShare, 0.9);
}

detect::Detection
det(double x, double y, double w, double h,
    ObjectClass cls = ObjectClass::Vehicle)
{
    detect::Detection d;
    d.box = BBox(x, y, w, h);
    d.cls = cls;
    d.confidence = 0.9;
    return d;
}

PoolParams
smallPool()
{
    PoolParams pp;
    pp.poolSize = 4;
    pp.tracker.cropSize = 32;
    pp.tracker.width = 0.1;
    return pp;
}

TEST(TrackerPool, CreatesTracksFromDetections)
{
    TrackerPool pool(smallPool());
    const Image frame = frameWithSquare(60, 40);
    pool.update(frame, {det(60, 40, 20, 20)});
    ASSERT_EQ(pool.tracks().size(), 1u);
    EXPECT_EQ(pool.tracks()[0].cls, ObjectClass::Vehicle);
    EXPECT_EQ(pool.tracks()[0].consecutiveMisses, 0);
    EXPECT_EQ(pool.idleTrackers(), 3);
}

TEST(TrackerPool, AssociatesByIouAndKeepsId)
{
    TrackerPool pool(smallPool());
    const Image frame = frameWithSquare(60, 40);
    pool.update(frame, {det(60, 40, 20, 20)});
    const int id = pool.tracks()[0].id;
    // Slightly moved detection matches the same track.
    pool.update(frameWithSquare(63, 41), {det(63, 41, 20, 20)});
    ASSERT_EQ(pool.tracks().size(), 1u);
    EXPECT_EQ(pool.tracks()[0].id, id);
    EXPECT_NEAR(pool.tracks()[0].velocityPx.x, 3.0, 1e-9);
}

TEST(TrackerPool, CoastsThroughMissedDetections)
{
    TrackerPool pool(smallPool());
    double x = 60;
    pool.update(frameWithSquare(x, 40), {det(x, 40, 20, 20)});
    // Object keeps moving but DET misses it for 3 frames.
    for (int i = 0; i < 3; ++i) {
        x += 3;
        pool.update(frameWithSquare(x, 40), {});
    }
    ASSERT_EQ(pool.tracks().size(), 1u);
    EXPECT_EQ(pool.tracks()[0].consecutiveMisses, 3);
    EXPECT_NEAR(pool.tracks()[0].box.cx(), x + 10, 8.0);
}

TEST(TrackerPool, EvictsAfterTenMisses)
{
    TrackerPool pool(smallPool());
    const Image frame = frameWithSquare(60, 40);
    pool.update(frame, {det(60, 40, 20, 20)});
    EXPECT_EQ(pool.idleTrackers(), 3);
    const Image empty(160, 120, 70);
    for (int i = 0; i < 10; ++i) {
        pool.update(empty, {});
    }
    EXPECT_TRUE(pool.tracks().empty());
    EXPECT_EQ(pool.idleTrackers(), 4); // tracker returned to the pool
}

TEST(TrackerPool, PoolExhaustionDropsExtraDetections)
{
    TrackerPool pool(smallPool()); // 4 trackers
    const Image frame(300, 120, 70);
    std::vector<detect::Detection> dets;
    for (int i = 0; i < 6; ++i)
        dets.push_back(det(10 + i * 45, 40, 20, 20));
    pool.update(frame, dets);
    EXPECT_EQ(pool.tracks().size(), 4u);
    EXPECT_EQ(pool.idleTrackers(), 0);
}

TEST(TrackerPool, DistinctObjectsGetDistinctTracks)
{
    TrackerPool pool(smallPool());
    Image frame(300, 120, 70);
    frame.fillRect(BBox(40, 40, 20, 20), 220);
    frame.fillRect(BBox(200, 40, 20, 20), 200);
    pool.update(frame, {det(40, 40, 20, 20),
                        det(200, 40, 20, 20, ObjectClass::Pedestrian)});
    ASSERT_EQ(pool.tracks().size(), 2u);
    EXPECT_NE(pool.tracks()[0].id, pool.tracks()[1].id);
}

TEST(TrackerPool, AlwaysRunModeInvokesTrackerPerObject)
{
    PoolParams pp = smallPool();
    pp.alwaysRunTracker = true;
    TrackerPool pool(pp);
    Image frame(300, 120, 70);
    frame.fillRect(BBox(40, 40, 20, 20), 220);
    frame.fillRect(BBox(200, 40, 20, 20), 220);
    pool.update(frame, {det(40, 40, 20, 20), det(200, 40, 20, 20)});
    PoolTimings timings;
    pool.update(frame, {det(40, 40, 20, 20), det(200, 40, 20, 20)},
                &timings);
    // Two live tracks -> two tracker (DNN) runs even though both
    // matched their detections.
    EXPECT_EQ(timings.trackerRuns, 2);
    EXPECT_GT(timings.tracker.dnnMs, 0.0);
}

} // namespace
