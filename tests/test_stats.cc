/**
 * @file
 * Unit and property tests for the latency-statistics substrate. The
 * paper's predictability constraint hinges on correct tail-percentile
 * computation, so the quantile math is tested exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"

namespace {

using ad::LatencyRecorder;
using ad::RunningStat;

TEST(LatencyRecorder, EmptyReturnsZeros)
{
    LatencyRecorder rec;
    EXPECT_TRUE(rec.empty());
    EXPECT_EQ(rec.count(), 0u);
    EXPECT_DOUBLE_EQ(rec.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rec.percentile(0.99), 0.0);
    EXPECT_DOUBLE_EQ(rec.worst(), 0.0);
    const auto s = rec.summary();
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.p9999, 0.0);
}

TEST(LatencyRecorder, SingleSampleIsEveryQuantile)
{
    LatencyRecorder rec;
    rec.record(42.0);
    EXPECT_DOUBLE_EQ(rec.mean(), 42.0);
    EXPECT_DOUBLE_EQ(rec.percentile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(rec.percentile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(rec.percentile(1.0), 42.0);
    EXPECT_DOUBLE_EQ(rec.worst(), 42.0);
    EXPECT_DOUBLE_EQ(rec.best(), 42.0);
}

TEST(LatencyRecorder, NearestRankOnKnownSequence)
{
    // 1..100: p50 = 50, p95 = 95, p99 = 99, p99.99 = 100.
    LatencyRecorder rec;
    for (int i = 1; i <= 100; ++i)
        rec.record(i);
    EXPECT_DOUBLE_EQ(rec.percentile(0.50), 50.0);
    EXPECT_DOUBLE_EQ(rec.percentile(0.95), 95.0);
    EXPECT_DOUBLE_EQ(rec.percentile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(rec.percentile(0.9999), 100.0);
    EXPECT_DOUBLE_EQ(rec.mean(), 50.5);
}

TEST(LatencyRecorder, OrderInvariance)
{
    std::vector<double> values = {5, 1, 9, 3, 7, 2, 8, 4, 6, 10};
    LatencyRecorder fwd;
    LatencyRecorder rev;
    for (double v : values)
        fwd.record(v);
    std::reverse(values.begin(), values.end());
    for (double v : values)
        rev.record(v);
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(fwd.percentile(q), rev.percentile(q)) << q;
}

TEST(LatencyRecorder, TailCapturesRareSpike)
{
    // 9998 fast samples and two 100x spikes: the mean barely moves but
    // p99.99 lands on a spike (nearest rank 9999 of 10000) -- the
    // paper's core argument for tail metrics (Section 2.4.2).
    LatencyRecorder rec;
    for (int i = 0; i < 9998; ++i)
        rec.record(10.0);
    rec.record(1000.0);
    rec.record(1000.0);
    EXPECT_NEAR(rec.mean(), 10.198, 0.001);
    EXPECT_DOUBLE_EQ(rec.percentile(0.99), 10.0);
    EXPECT_DOUBLE_EQ(rec.percentile(0.9999), 1000.0);
    EXPECT_DOUBLE_EQ(rec.worst(), 1000.0);
}

TEST(LatencyRecorder, MergeMatchesCombinedRecording)
{
    ad::Rng rng(7);
    LatencyRecorder a;
    LatencyRecorder b;
    LatencyRecorder all;
    for (int i = 0; i < 500; ++i) {
        const double v = rng.uniform(0.0, 50.0);
        (i % 2 ? a : b).record(v);
        all.record(v);
    }
    a.merge(b);
    for (double q : {0.1, 0.5, 0.9, 0.99})
        EXPECT_DOUBLE_EQ(a.percentile(q), all.percentile(q));
    EXPECT_DOUBLE_EQ(a.mean(), all.mean());
}

TEST(LatencyRecorder, SummaryIfAnyEmptyIsNullopt)
{
    LatencyRecorder rec;
    EXPECT_FALSE(rec.summaryIfAny().has_value());
    rec.record(3.0);
    rec.clear();
    EXPECT_FALSE(rec.summaryIfAny().has_value());
}

TEST(LatencyRecorder, SummaryIfAnySingleSample)
{
    LatencyRecorder rec;
    rec.record(42.0);
    const auto s = rec.summaryIfAny();
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->count, 1u);
    EXPECT_DOUBLE_EQ(s->mean, 42.0);
    EXPECT_DOUBLE_EQ(s->p50, 42.0);
    EXPECT_DOUBLE_EQ(s->p9999, 42.0);
    EXPECT_DOUBLE_EQ(s->worst, 42.0);
    EXPECT_DOUBLE_EQ(s->best, 42.0);
}

TEST(LatencyRecorder, MergeWithEmptyIsIdentity)
{
    LatencyRecorder rec;
    for (int i = 1; i <= 10; ++i)
        rec.record(i);
    const LatencyRecorder empty;

    // Non-empty <- empty: nothing changes.
    rec.merge(empty);
    EXPECT_EQ(rec.count(), 10u);
    EXPECT_DOUBLE_EQ(rec.percentile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(rec.mean(), 5.5);

    // Empty <- non-empty: adopts the other's samples.
    LatencyRecorder fresh;
    fresh.merge(rec);
    EXPECT_EQ(fresh.count(), 10u);
    EXPECT_DOUBLE_EQ(fresh.percentile(0.5), 5.0);
    ASSERT_TRUE(fresh.summaryIfAny().has_value());

    // Empty <- empty stays empty.
    LatencyRecorder a;
    a.merge(empty);
    EXPECT_TRUE(a.empty());
    EXPECT_FALSE(a.summaryIfAny().has_value());
}

TEST(LatencyRecorder, ClearResets)
{
    LatencyRecorder rec;
    rec.record(1.0);
    rec.record(2.0);
    rec.clear();
    EXPECT_TRUE(rec.empty());
    EXPECT_DOUBLE_EQ(rec.percentile(0.99), 0.0);
}

TEST(LatencyRecorder, SummaryConsistency)
{
    ad::Rng rng(11);
    LatencyRecorder rec;
    for (int i = 0; i < 10000; ++i)
        rec.record(rng.lognormal(1.0, 0.5));
    const auto s = rec.summary();
    EXPECT_EQ(s.count, 10000u);
    EXPECT_LE(s.best, s.p50);
    EXPECT_LE(s.p50, s.p95);
    EXPECT_LE(s.p95, s.p99);
    EXPECT_LE(s.p99, s.p9999);
    EXPECT_LE(s.p9999, s.worst);
    EXPECT_GT(s.mean, 0.0);
}

/** Property sweep: quantiles are monotone in q for arbitrary data. */
class PercentileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotoneTest, MonotoneInQuantile)
{
    ad::Rng rng(GetParam());
    LatencyRecorder rec;
    const int n = 1 + static_cast<int>(rng.uniform(0, 2000));
    for (int i = 0; i < n; ++i)
        rec.record(rng.lognormal(0.0, 1.5));
    double prev = rec.percentile(0.0);
    for (double q = 0.05; q <= 1.0; q += 0.05) {
        const double cur = rec.percentile(q);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
    EXPECT_DOUBLE_EQ(rec.percentile(1.0), rec.worst());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneTest,
                         ::testing::Range(1, 16));

TEST(RunningStat, MatchesClosedForm)
{
    RunningStat st;
    for (int i = 1; i <= 5; ++i)
        st.push(i);
    EXPECT_EQ(st.count(), 5u);
    EXPECT_DOUBLE_EQ(st.mean(), 3.0);
    EXPECT_DOUBLE_EQ(st.variance(), 2.5);
    EXPECT_DOUBLE_EQ(st.min(), 1.0);
    EXPECT_DOUBLE_EQ(st.max(), 5.0);
    EXPECT_DOUBLE_EQ(st.sum(), 15.0);
}

TEST(RunningStat, EmptyAndSingle)
{
    RunningStat st;
    EXPECT_DOUBLE_EQ(st.mean(), 0.0);
    EXPECT_DOUBLE_EQ(st.variance(), 0.0);
    st.push(7.0);
    EXPECT_DOUBLE_EQ(st.mean(), 7.0);
    EXPECT_DOUBLE_EQ(st.variance(), 0.0);
    EXPECT_DOUBLE_EQ(st.stddev(), 0.0);
}

TEST(WindowedLatencyRecorder, ExactNearestRankOnKnownWindow)
{
    ad::WindowedLatencyRecorder rec(100);
    // 1..100 in shuffled-ish order: nearest rank is order-invariant.
    for (int i = 100; i >= 1; --i)
        rec.record(i);
    EXPECT_EQ(rec.count(), 100u);
    // Nearest rank ceil(q * 100): p50 -> 50th smallest = 50.
    EXPECT_DOUBLE_EQ(rec.percentile(0.50), 50.0);
    EXPECT_DOUBLE_EQ(rec.percentile(0.90), 90.0);
    EXPECT_DOUBLE_EQ(rec.percentile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(rec.percentile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(rec.worst(), 100.0);
    EXPECT_DOUBLE_EQ(rec.mean(), 50.5);
    EXPECT_EQ(rec.countAbove(90.0), 10u);
}

TEST(WindowedLatencyRecorder, MinSamplesForMatchesClosedForm)
{
    using W = ad::WindowedLatencyRecorder;
    EXPECT_EQ(W::minSamplesFor(0.5), 2u);
    EXPECT_EQ(W::minSamplesFor(0.9), 10u);
    EXPECT_EQ(W::minSamplesFor(0.99), 100u);
    EXPECT_EQ(W::minSamplesFor(0.999), 1000u);
    EXPECT_EQ(W::minSamplesFor(1.0), 1u);
    EXPECT_EQ(W::minSamplesFor(0.0), 1u);
}

TEST(WindowedLatencyRecorder, SentinelUntilResolvable)
{
    ad::WindowedLatencyRecorder rec(4096);
    rec.record(10.0);
    // One sample resolves the max but neither p50 nor any tail.
    EXPECT_DOUBLE_EQ(rec.percentile(1.0), 10.0);
    EXPECT_DOUBLE_EQ(
        rec.percentile(0.5),
        ad::WindowedLatencyRecorder::kInsufficientSamples);
    for (int i = 0; i < 998; ++i)
        rec.record(10.0);
    // 999 samples: p99 resolves, p99.9 still needs 1000.
    EXPECT_TRUE(rec.resolvable(0.99));
    EXPECT_FALSE(rec.resolvable(0.999));
    EXPECT_DOUBLE_EQ(
        rec.percentile(0.999),
        ad::WindowedLatencyRecorder::kInsufficientSamples);
    rec.record(10.0);
    EXPECT_TRUE(rec.resolvable(0.999));
    EXPECT_DOUBLE_EQ(rec.percentile(0.999), 10.0);
}

TEST(WindowedLatencyRecorder, TailNeverResolvableBeyondCapacity)
{
    // A 100-slot window can never honestly state a p99.9.
    ad::WindowedLatencyRecorder rec(100);
    for (int i = 0; i < 5000; ++i)
        rec.record(1.0);
    EXPECT_FALSE(rec.resolvable(0.999));
    EXPECT_DOUBLE_EQ(
        rec.percentile(0.999),
        ad::WindowedLatencyRecorder::kInsufficientSamples);
}

TEST(WindowedLatencyRecorder, WindowWrapEvictsOldest)
{
    ad::WindowedLatencyRecorder rec(4);
    for (int i = 1; i <= 4; ++i)
        rec.record(i);
    for (int i = 0; i < 4; ++i)
        rec.record(100.0 + i);
    EXPECT_EQ(rec.count(), 4u);
    EXPECT_EQ(rec.totalRecorded(), 8u);
    // Only the second batch remains in the window.
    EXPECT_EQ(rec.countAbove(99.5), 4u);
    EXPECT_DOUBLE_EQ(rec.percentile(0.5), 101.0);
    EXPECT_DOUBLE_EQ(rec.worst(), 103.0);
}

TEST(WindowedLatencyRecorder, ClearEmptiesTheWindow)
{
    ad::WindowedLatencyRecorder rec(8);
    rec.record(5.0);
    rec.clear();
    EXPECT_EQ(rec.count(), 0u);
    EXPECT_DOUBLE_EQ(rec.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rec.worst(), 0.0);
    EXPECT_DOUBLE_EQ(
        rec.percentile(1.0),
        ad::WindowedLatencyRecorder::kInsufficientSamples);
}

} // namespace
