/**
 * @file
 * Tests for the fused-layer lowering pass and the arena memory
 * planner: planArena liveness-overlap properties, chain reuse,
 * fused-vs-unfused bitwise equality for the DET and TRA networks
 * (fp32 and int8, across thread counts), forwardArena-vs-forward
 * equality, the zero-allocation steady state, and direct-convolution
 * exactness.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "common/random.hh"
#include "nn/fusion.hh"
#include "nn/models.hh"
#include "nn/planner.hh"
#include "nn/quant.hh"

namespace {

using namespace ad;
using namespace ad::nn;

Tensor
randomInput(int c, int h, int w, Rng& rng)
{
    Tensor t(c, h, w);
    float* data = t.data();
    for (std::size_t i = 0; i < t.size(); ++i)
        data[i] = static_cast<float>(rng.uniform());
    return t;
}

void
expectBitwiseEqual(const Tensor& a, const Tensor& b, const char* what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                             a.size() * sizeof(float)))
        << what;
}

// --- planArena properties ----------------------------------------------

TEST(PlanArena, OverlappingValuesNeverShareBytes)
{
    Rng rng(41);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<ValueInterval> values;
        const int n = 1 + static_cast<int>(rng.uniformInt(0, 19));
        for (int i = 0; i < n; ++i) {
            ValueInterval v;
            v.start = static_cast<std::size_t>(rng.uniformInt(0, 30));
            v.end = v.start +
                    static_cast<std::size_t>(rng.uniformInt(0, 10));
            v.bytes = static_cast<std::size_t>(
                rng.uniformInt(0, 4096));
            values.push_back(v);
        }
        const ArenaPlan plan = planArena(values);
        ASSERT_EQ(plan.offset.size(), values.size());
        std::size_t peak = 0;
        for (std::size_t i = 0; i < values.size(); ++i) {
            if (values[i].bytes == 0)
                continue;
            EXPECT_EQ(plan.offset[i] % 64, 0u) << "alignment " << i;
            peak = std::max(peak,
                            plan.offset[i] + values[i].bytes);
            for (std::size_t j = i + 1; j < values.size(); ++j) {
                if (values[j].bytes == 0)
                    continue;
                const bool timeOverlap =
                    values[i].start <= values[j].end &&
                    values[j].start <= values[i].end;
                if (!timeOverlap)
                    continue;
                const bool byteOverlap =
                    plan.offset[i] <
                        plan.offset[j] + values[j].bytes &&
                    plan.offset[j] <
                        plan.offset[i] + values[i].bytes;
                ASSERT_FALSE(byteOverlap)
                    << "trial " << trial << ": values " << i
                    << " and " << j << " overlap in time and bytes";
            }
        }
        EXPECT_GE(plan.totalBytes, peak);
    }
}

TEST(PlanArena, SequentialChainReusesStorage)
{
    // A chain of 8 equal-size intermediates, each live [i, i+1]: only
    // adjacent pairs overlap, so two slots suffice -- the arena must
    // come out far below the sum of all values.
    std::vector<ValueInterval> values;
    const std::size_t bytes = 1024;
    for (std::size_t i = 0; i < 8; ++i)
        values.push_back({i, i + 1, bytes});
    const ArenaPlan plan = planArena(values);
    EXPECT_EQ(plan.totalBytes, 2 * bytes);
}

TEST(PlanArena, DeterministicForIdenticalInput)
{
    Rng rng(43);
    std::vector<ValueInterval> values;
    for (int i = 0; i < 12; ++i) {
        const auto start =
            static_cast<std::size_t>(rng.uniformInt(0, 10));
        values.push_back(
            {start, start + static_cast<std::size_t>(
                                rng.uniformInt(0, 4)),
             static_cast<std::size_t>(rng.uniformInt(1, 2048))});
    }
    const ArenaPlan a = planArena(values);
    const ArenaPlan b = planArena(values);
    EXPECT_EQ(a.offset, b.offset);
    EXPECT_EQ(a.totalBytes, b.totalBytes);
}

// --- Lowering pass -----------------------------------------------------

TEST(Lowering, FusesActivationPairsAndDropsLayers)
{
    Network net = buildNetwork(detectorSpec(64, 0.25, 4));
    Rng rng(7);
    initDetectorWeights(net, rng);
    const std::size_t before = net.layerCount();
    const LoweringReport report =
        lowerNetwork(net, {1, 64, 64});
    EXPECT_GE(report.fusedActivations, 1u);
    EXPECT_EQ(net.layerCount(),
              before - report.fusedActivations);
    // No standalone Activation may survive behind a fusable layer.
    for (std::size_t i = 0; i + 1 < net.layerCount(); ++i) {
        if (net.layer(i).kind() != LayerKind::Conv)
            continue;
        EXPECT_NE(net.layer(i + 1).kind(), LayerKind::Activation)
            << "unfused pair at layer " << i;
    }
}

/**
 * The core lowering contract: a fused+planned network computes
 * bit-identical outputs to the unfused, allocating reference at every
 * thread count, in both numeric modes, for both DNN engines'
 * topologies.
 */
TEST(Lowering, DetNetworkFusedMatchesUnfusedBitwise)
{
    for (const Precision precision :
         {Precision::Fp32, Precision::Int8}) {
        Network ref = buildNetwork(detectorSpec(64, 0.25, 4));
        Network low = buildNetwork(detectorSpec(64, 0.25, 4));
        Rng rngA(7);
        Rng rngB(7);
        initDetectorWeights(ref, rngA);
        initDetectorWeights(low, rngB);
        if (precision == Precision::Int8) {
            Rng calRng(99);
            std::vector<Tensor> samples;
            samples.push_back(randomInput(1, 64, 64, calRng));
            samples.push_back(randomInput(1, 64, 64, calRng));
            quantizeNetwork(ref, samples);
            quantizeNetwork(low, samples);
        }
        lowerNetwork(low, {1, 64, 64});
        low.plan({1, 64, 64});

        Rng inRng(11);
        const Tensor input = randomInput(1, 64, 64, inRng);
        const Tensor expected = ref.forward(input);
        for (const int threads : {1, 2, 0}) {
            const KernelContext ctx = kernelContext(threads);
            expectBitwiseEqual(ref.forward(input, ctx), expected,
                               "unfused across threads");
            expectBitwiseEqual(low.forwardArena(input, ctx),
                               expected, "fused+arena");
        }
    }
}

TEST(Lowering, TraNetworksFusedMatchUnfusedBitwise)
{
    const int crop = 32;
    Network refConv = buildNetwork(trackerConvSpec(crop, 0.1));
    Network lowConv = buildNetwork(trackerConvSpec(crop, 0.1));
    Rng rngA(5);
    Rng rngB(5);
    initTrackerWeights(refConv, rngA);
    initTrackerWeights(lowConv, rngB);
    const Shape featShape = refConv.outputShape({1, crop, crop});

    Network refFc = buildNetwork(trackerFcSpec(
        static_cast<int>(featShape.elements()), 0.1));
    Network lowFc = buildNetwork(trackerFcSpec(
        static_cast<int>(featShape.elements()), 0.1));
    Rng rngC(6);
    Rng rngD(6);
    initTrackerWeights(refFc, rngC);
    initTrackerWeights(lowFc, rngD);

    lowerNetwork(lowConv, {1, crop, crop});
    lowConv.plan({1, crop, crop});
    const Shape fcShape{2 * featShape.c, featShape.h, featShape.w};
    lowerNetwork(lowFc, fcShape);
    lowFc.plan(fcShape);

    Rng inRng(12);
    const Tensor target = randomInput(1, crop, crop, inRng);
    const Tensor search = randomInput(1, crop, crop, inRng);
    const Tensor refBoth = Tensor::concatChannels(
        refConv.forward(target), refConv.forward(search));
    const Tensor expected = refFc.forward(refBoth);

    for (const int threads : {1, 2, 0}) {
        const KernelContext ctx = kernelContext(threads);
        const Tensor tfeat = lowConv.forwardArena(target, ctx);
        const Tensor& sfeat = lowConv.forwardArena(search, ctx);
        Tensor both;
        both.assignConcat(tfeat, sfeat);
        expectBitwiseEqual(lowFc.forwardArena(both, ctx), expected,
                           "tracker fused+arena");
    }
}

// --- Zero-allocation steady state --------------------------------------

TEST(Planner, ForwardArenaAllocatesNothingAfterPlan)
{
    Network net = buildNetwork(detectorSpec(64, 0.25, 4));
    Rng rng(7);
    initDetectorWeights(net, rng);
    lowerNetwork(net, {1, 64, 64});
    net.plan({1, 64, 64});
    EXPECT_TRUE(net.planned());
    EXPECT_GT(net.arenaBytes(), 0u);

    Rng inRng(21);
    const Tensor input = randomInput(1, 64, 64, inRng);
    // One settling pass (first run after plan may still grow pack
    // buffers for this input's exact shapes).
    (void)net.forwardArena(input);
    const std::uint64_t before = allocEventCount();
    for (int i = 0; i < 5; ++i)
        (void)net.forwardArena(input);
    EXPECT_EQ(allocEventCount() - before, 0u)
        << "planned forward allocated in steady state";
}

TEST(Planner, StructuralEditDropsPlan)
{
    Network net = buildNetwork(detectorSpec(64, 0.25, 4));
    Rng rng(7);
    initDetectorWeights(net, rng);
    net.plan({1, 64, 64});
    EXPECT_TRUE(net.planned());
    net.removeLayer(net.layerCount() - 1);
    EXPECT_FALSE(net.planned());
    EXPECT_EQ(net.arenaBytes(), 0u);
}

// --- Direct convolution ------------------------------------------------

TEST(DirectConv, MatchesIm2colBitwise)
{
    Rng rng(31);
    // Negative weights and biases exercise the leaky branch and the
    // signed-zero-sensitive epilogue.
    struct Case
    {
        int inC, outC, kernel, stride, pad, size;
    };
    const Case cases[] = {
        {3, 8, 1, 1, 0, 7},   // 1x1: unfold-free B feed.
        {4, 6, 3, 1, 1, 4},   // small output: scalar direct loop.
        {2, 5, 3, 2, 1, 5},
    };
    for (const auto& c : cases) {
        for (const bool fused : {false, true}) {
            Network ref("ref");
            Network dir("dir");
            auto& rconv = ref.add<Conv2D>("conv", c.inC, c.outC,
                                          c.kernel, c.stride, c.pad);
            auto& dconv = dir.add<Conv2D>("conv", c.inC, c.outC,
                                          c.kernel, c.stride, c.pad);
            for (std::size_t i = 0; i < rconv.weights().size(); ++i) {
                const float w =
                    static_cast<float>(rng.uniform(-1.0, 1.0));
                rconv.weights()[i] = w;
                dconv.weights()[i] = w;
            }
            for (std::size_t i = 0; i < rconv.bias().size(); ++i) {
                const float b =
                    static_cast<float>(rng.uniform(-0.5, 0.5));
                rconv.bias()[i] = b;
                dconv.bias()[i] = b;
            }
            if (fused) {
                ref.add<Activation>("act", 0.1f);
                dir.add<Activation>("act", 0.1f);
                // Opt into the tiny-output scalar direct loop (off by
                // default; 1x1 is the always-on case).
                LoweringOptions opt;
                opt.directConvMaxPixels = 16;
                lowerNetwork(dir, {c.inC, c.size, c.size}, opt);
            } else {
                dconv.setDirectConv(true);
            }
            Rng inRng(17);
            Tensor input(c.inC, c.size, c.size);
            for (std::size_t i = 0; i < input.size(); ++i)
                input.data()[i] =
                    static_cast<float>(inRng.uniform(-1.0, 1.0));
            for (const int threads : {1, 0}) {
                const KernelContext ctx = kernelContext(threads);
                expectBitwiseEqual(
                    dir.forward(input, ctx), ref.forward(input, ctx),
                    "direct conv");
            }
        }
    }
}

} // namespace
