/**
 * @file
 * Tests for the degradation governor state machine: every escalation
 * and recovery transition, the hysteresis thresholds, the exponential
 * recovery backoff and its reset, forced SAFE_STOP, and the per-mode
 * actuation knobs plan() hands the pipeline.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "pipeline/governor.hh"

namespace {

using namespace ad;
using pipeline::DegradationGovernor;
using pipeline::FramePlan;
using pipeline::GovernorParams;
using pipeline::OperatingMode;

/** A latency sample whose end-to-end latency is exactly `ms`. */
obs::FrameLatencySample
sampleMs(double ms)
{
    return {ms, 0, 0, 0, 0};
}

/** Small thresholds so transitions happen within a few frames. */
GovernorParams
testParams()
{
    GovernorParams p;
    p.enabled = true;
    p.budgetMs = 100.0;
    p.escalateAfterMisses = 2;
    p.recoverAfterFrames = 3;
    p.recoveryBackoff = 2.0;
    p.maxRecoverAfterFrames = 12;
    p.backoffResetFactor = 2;
    return p;
}

/** Feed `n` frames of the given latency, returning the next frame id. */
std::int64_t
feed(DegradationGovernor& gov, std::int64_t frame, int n, double ms)
{
    for (int i = 0; i < n; ++i)
        gov.observe(frame++, sampleMs(ms));
    return frame;
}

TEST(Governor, ModeNamesMatchDocumentedContract)
{
    EXPECT_STREQ(pipeline::modeName(OperatingMode::Nominal), "NOMINAL");
    EXPECT_STREQ(pipeline::modeName(OperatingMode::Degraded),
                 "DEGRADED");
    EXPECT_STREQ(pipeline::modeName(OperatingMode::TrackingOnly),
                 "TRACKING_ONLY");
    EXPECT_STREQ(pipeline::modeName(OperatingMode::SafeStop),
                 "SAFE_STOP");
}

TEST(Governor, EscalatesOneLevelPerMissRun)
{
    DegradationGovernor gov(testParams());
    ASSERT_EQ(gov.mode(), OperatingMode::Nominal);

    // One miss is not enough (escalateAfterMisses = 2)...
    std::int64_t f = feed(gov, 0, 1, 150.0);
    EXPECT_EQ(gov.mode(), OperatingMode::Nominal);
    // ...a clean frame resets the run...
    f = feed(gov, f, 1, 50.0);
    f = feed(gov, f, 1, 150.0);
    EXPECT_EQ(gov.mode(), OperatingMode::Nominal);
    // ...and two consecutive misses escalate exactly one level.
    f = feed(gov, f, 1, 150.0);
    EXPECT_EQ(gov.mode(), OperatingMode::Degraded);

    // Each further miss run walks one more level, ending pinned at
    // SAFE_STOP (no escalation past the last level).
    f = feed(gov, f, 2, 150.0);
    EXPECT_EQ(gov.mode(), OperatingMode::TrackingOnly);
    f = feed(gov, f, 2, 150.0);
    EXPECT_EQ(gov.mode(), OperatingMode::SafeStop);
    feed(gov, f, 4, 150.0);
    EXPECT_EQ(gov.mode(), OperatingMode::SafeStop);

    ASSERT_EQ(gov.transitions().size(), 3u);
    for (const auto& t : gov.transitions())
        EXPECT_EQ(t.reason, "miss");
}

TEST(Governor, RecoversOneLevelAfterCleanRunWithHysteresis)
{
    DegradationGovernor gov(testParams());
    std::int64_t f = feed(gov, 0, 2, 150.0);
    ASSERT_EQ(gov.mode(), OperatingMode::Degraded);

    // recoverAfterFrames - 1 clean frames are not enough...
    f = feed(gov, f, 2, 50.0);
    EXPECT_EQ(gov.mode(), OperatingMode::Degraded);
    // ...and a miss resets the clean run without escalating.
    f = feed(gov, f, 1, 150.0);
    f = feed(gov, f, 2, 50.0);
    EXPECT_EQ(gov.mode(), OperatingMode::Degraded);
    // The full clean run de-escalates exactly one level.
    f = feed(gov, f, 1, 50.0);
    EXPECT_EQ(gov.mode(), OperatingMode::Nominal);
    EXPECT_EQ(gov.transitions().back().reason, "recovered");
}

TEST(Governor, FailedRecoveryBacksOffExponentiallyThenCaps)
{
    DegradationGovernor gov(testParams());
    EXPECT_EQ(gov.currentRecoverThreshold(), 3);

    // Escalate, recover, then miss again promptly: the de-escalation
    // did not hold, so the required clean run doubles.
    std::int64_t f = feed(gov, 0, 2, 150.0);
    f = feed(gov, f, 3, 50.0);
    ASSERT_EQ(gov.mode(), OperatingMode::Nominal);
    f = feed(gov, f, 2, 150.0);
    EXPECT_EQ(gov.currentRecoverThreshold(), 6);

    // Again: 6 clean frames to recover, prompt re-miss doubles to 12
    // (the configured cap).
    f = feed(gov, f, 6, 50.0);
    ASSERT_EQ(gov.mode(), OperatingMode::Nominal);
    f = feed(gov, f, 2, 150.0);
    EXPECT_EQ(gov.currentRecoverThreshold(), 12);

    // The cap holds on further failed recoveries.
    f = feed(gov, f, 12, 50.0);
    f = feed(gov, f, 2, 150.0);
    EXPECT_EQ(gov.currentRecoverThreshold(), 12);
}

TEST(Governor, SustainedNominalResetsBackoff)
{
    DegradationGovernor gov(testParams());
    std::int64_t f = feed(gov, 0, 2, 150.0);
    f = feed(gov, f, 3, 50.0);
    f = feed(gov, f, 2, 150.0);
    ASSERT_EQ(gov.currentRecoverThreshold(), 6);

    // Recover, then hold NOMINAL for backoffResetFactor x
    // recoverAfterFrames clean frames: the fault pressure has passed
    // and the threshold returns to its base value.
    f = feed(gov, f, 6, 50.0);
    ASSERT_EQ(gov.mode(), OperatingMode::Nominal);
    f = feed(gov, f, 2 * 3, 50.0);
    EXPECT_EQ(gov.currentRecoverThreshold(), 3);
}

TEST(Governor, ForceSafeStopFromAnyModeRecordsReason)
{
    DegradationGovernor gov(testParams());
    gov.forceSafeStop(17, "stale:LOC");
    EXPECT_EQ(gov.mode(), OperatingMode::SafeStop);
    ASSERT_EQ(gov.transitions().size(), 1u);
    EXPECT_EQ(gov.transitions().back().frame, 17);
    EXPECT_EQ(gov.transitions().back().from, OperatingMode::Nominal);
    EXPECT_EQ(gov.transitions().back().reason, "stale:LOC");

    // Idempotent: forcing again records nothing new.
    gov.forceSafeStop(18, "stale:LOC");
    EXPECT_EQ(gov.transitions().size(), 1u);

    // SAFE_STOP recovers through the same hysteresis as any mode.
    feed(gov, 19, 3, 50.0);
    EXPECT_EQ(gov.mode(), OperatingMode::TrackingOnly);
}

TEST(Governor, PlanActuatesTheDocumentedKnobsPerMode)
{
    GovernorParams p = testParams();
    p.degradedDetInterval = 2;
    p.trackingOnlyDetInterval = 0;
    DegradationGovernor gov(p);

    // NOMINAL: full detector every frame.
    FramePlan plan = gov.plan(0);
    EXPECT_EQ(plan.mode, OperatingMode::Nominal);
    EXPECT_TRUE(plan.runDet);
    EXPECT_FALSE(plan.degradedDet);
    EXPECT_FALSE(plan.safeStop);

    // DEGRADED: downscaled detector on every 2nd frame.
    std::int64_t f = feed(gov, 0, 2, 150.0);
    ASSERT_EQ(gov.mode(), OperatingMode::Degraded);
    EXPECT_TRUE(gov.plan(4).runDet);
    EXPECT_FALSE(gov.plan(5).runDet);
    EXPECT_TRUE(gov.plan(4).degradedDet);
    EXPECT_FALSE(gov.plan(4).safeStop);

    // TRACKING_ONLY with interval 0: detector fully off.
    f = feed(gov, f, 2, 150.0);
    ASSERT_EQ(gov.mode(), OperatingMode::TrackingOnly);
    EXPECT_FALSE(gov.plan(6).runDet);
    EXPECT_FALSE(gov.plan(7).runDet);

    // SAFE_STOP: no detection, controller told to brake.
    f = feed(gov, f, 2, 150.0);
    ASSERT_EQ(gov.mode(), OperatingMode::SafeStop);
    EXPECT_FALSE(gov.plan(8).runDet);
    EXPECT_TRUE(gov.plan(8).safeStop);
}

TEST(Governor, TrackingOnlyReseedIntervalRunsDegradedDetector)
{
    GovernorParams p = testParams();
    p.trackingOnlyDetInterval = 4;
    DegradationGovernor gov(p);
    std::int64_t f = feed(gov, 0, 2, 150.0);
    feed(gov, f, 2, 150.0);
    ASSERT_EQ(gov.mode(), OperatingMode::TrackingOnly);
    // One reseeding detection every 4 frames, downscaled.
    EXPECT_TRUE(gov.plan(8).runDet);
    EXPECT_TRUE(gov.plan(8).degradedDet);
    EXPECT_FALSE(gov.plan(9).runDet);
    EXPECT_FALSE(gov.plan(10).runDet);
    EXPECT_FALSE(gov.plan(11).runDet);
    EXPECT_TRUE(gov.plan(12).runDet);
}

TEST(Governor, FramesInModeAccountsEveryObservedFrame)
{
    DegradationGovernor gov(testParams());
    std::int64_t f = feed(gov, 0, 5, 50.0);   // NOMINAL
    f = feed(gov, f, 2, 150.0);               // escalate at end
    feed(gov, f, 3, 50.0);                    // DEGRADED, recovers
    const auto& inMode = gov.framesInMode();
    EXPECT_EQ(inMode[static_cast<std::size_t>(OperatingMode::Nominal)],
              7u);
    EXPECT_EQ(inMode[static_cast<std::size_t>(OperatingMode::Degraded)],
              3u);
    EXPECT_EQ(inMode[0] + inMode[1] + inMode[2] + inMode[3], 10u);

    const std::string report = gov.report();
    EXPECT_NE(report.find("NOMINAL"), std::string::npos);
    EXPECT_NE(report.find("transitions"), std::string::npos);
}

TEST(Governor, RequestEscalationHonorsOnlyStrictEscalations)
{
    DegradationGovernor gov(testParams());
    ASSERT_EQ(gov.mode(), OperatingMode::Nominal);

    // A request to stay or de-escalate is ignored.
    gov.requestEscalation(0, OperatingMode::Nominal, "noop");
    EXPECT_EQ(gov.mode(), OperatingMode::Nominal);
    EXPECT_TRUE(gov.transitions().empty());

    // Strict escalation transitions and records the reason.
    gov.requestEscalation(1, OperatingMode::Degraded,
                          "admission:pressure");
    EXPECT_EQ(gov.mode(), OperatingMode::Degraded);
    ASSERT_EQ(gov.transitions().size(), 1u);
    EXPECT_EQ(gov.transitions()[0].reason, "admission:pressure");

    // Multi-level jumps are allowed (shedding may cut straight to
    // tracking) but never downward.
    gov.requestEscalation(2, OperatingMode::Nominal, "downward");
    EXPECT_EQ(gov.mode(), OperatingMode::Degraded);
    gov.requestEscalation(3, OperatingMode::SafeStop, "fault");
    EXPECT_EQ(gov.mode(), OperatingMode::SafeStop);
    gov.requestEscalation(4, OperatingMode::SafeStop, "again");
    EXPECT_EQ(gov.transitions().size(), 2u);
}

TEST(Governor, RequestEscalationInterruptsCleanRun)
{
    DegradationGovernor gov(testParams());
    gov.requestEscalation(0, OperatingMode::Degraded, "pressure");
    // Two clean frames toward the three needed to recover...
    gov.observe(1, sampleMs(10));
    gov.observe(2, sampleMs(10));
    // ...an external escalation resets the clean-run count.
    gov.requestEscalation(3, OperatingMode::TrackingOnly, "pressure");
    EXPECT_EQ(gov.mode(), OperatingMode::TrackingOnly);
    gov.observe(4, sampleMs(10));
    gov.observe(5, sampleMs(10));
    EXPECT_EQ(gov.mode(), OperatingMode::TrackingOnly);
    gov.observe(6, sampleMs(10));
    EXPECT_EQ(gov.mode(), OperatingMode::Degraded);
}

TEST(Governor, RequestEscalationDuringProbeAppliesRecoveryBackoff)
{
    // External pressure arriving right after a recovery probe is the
    // same oscillation as a latency miss: the clean-run requirement
    // must back off identically (2x here).
    DegradationGovernor gov(testParams());
    gov.requestEscalation(0, OperatingMode::Degraded, "pressure");
    gov.observe(1, sampleMs(10));
    gov.observe(2, sampleMs(10));
    gov.observe(3, sampleMs(10));
    ASSERT_EQ(gov.mode(), OperatingMode::Nominal); // probing.
    EXPECT_EQ(gov.currentRecoverThreshold(), 3);

    gov.requestEscalation(4, OperatingMode::Degraded, "pressure");
    EXPECT_EQ(gov.mode(), OperatingMode::Degraded);
    EXPECT_EQ(gov.currentRecoverThreshold(), 6);
}

TEST(Governor, FromConfigReadsEveryKey)
{
    Config cfg;
    cfg.set("governor", "true");
    cfg.set("gov.budget_ms", "80");
    cfg.set("gov.escalate_misses", "3");
    cfg.set("gov.recover_frames", "10");
    cfg.set("gov.recovery_backoff", "4.0");
    cfg.set("gov.max_recover_frames", "640");
    cfg.set("gov.backoff_reset", "8");
    cfg.set("gov.det_scale", "0.75");
    cfg.set("gov.det_interval", "3");
    cfg.set("gov.tracking_det_interval", "5");
    cfg.set("gov.max_stale", "4");

    const GovernorParams p = GovernorParams::fromConfig(cfg, 100.0);
    EXPECT_TRUE(p.enabled);
    EXPECT_DOUBLE_EQ(p.budgetMs, 80.0);
    EXPECT_EQ(p.escalateAfterMisses, 3);
    EXPECT_EQ(p.recoverAfterFrames, 10);
    EXPECT_DOUBLE_EQ(p.recoveryBackoff, 4.0);
    EXPECT_EQ(p.maxRecoverAfterFrames, 640);
    EXPECT_EQ(p.backoffResetFactor, 8);
    EXPECT_DOUBLE_EQ(p.degradedDetScale, 0.75);
    EXPECT_EQ(p.degradedDetInterval, 3);
    EXPECT_EQ(p.trackingOnlyDetInterval, 5);
    EXPECT_EQ(p.maxStaleFrames, 4);

    // The watchdog budget is the default when gov.budget_ms is absent.
    Config bare;
    EXPECT_DOUBLE_EQ(GovernorParams::fromConfig(bare, 60.0).budgetMs,
                     60.0);
    EXPECT_FALSE(GovernorParams::fromConfig(bare).enabled);
}

} // namespace
