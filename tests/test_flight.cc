/**
 * @file
 * Tests for the flight recorder and the perf-counter sampler: ring
 * bounding and eviction accounting, the disabled no-op contract, the
 * dump JSON schema (parsed back, time-sorted, conservation
 * invariant), trigger policies and the auto-dump budget, name
 * truncation, perf sampling sanity and the per-thread publish/latest
 * table -- plus the ISSUE 7 acceptance test that arming the recorder
 * perturbs no pipeline output bit.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.hh"
#include "obs/flight.hh"
#include "obs/json.hh"
#include "obs/obs.hh"
#include "pipeline/pipeline.hh"
#include "sensors/scenario.hh"
#include "slam/mapping.hh"

namespace {

using namespace ad;
using obs::FlightParams;
using obs::FlightRecorder;
using obs::PerfDelta;
using obs::PerfSampler;

/** A recorder configured for unit tests (no dump file). */
FlightParams
testParams(std::size_t capacity = 8, int streams = 1)
{
    FlightParams params;
    params.streams = streams;
    params.capacity = capacity;
    return params;
}

TEST(FlightRecorder, RingIsBoundedAndCountsEvictions)
{
    FlightRecorder rec;
    rec.configure(testParams(4));
    rec.setEnabled(true);
    for (int i = 0; i < 10; ++i)
        rec.recordSpan(0, "S", i, i * 10.0, 1.0);
    EXPECT_EQ(rec.eventCount(), 4u);
    EXPECT_EQ(rec.droppedEvents(0), 6u);

    // The survivors are the four newest events, oldest first.
    std::string error;
    const auto doc = obs::json::parse(
        rec.dumpJson("test", -1, -1), &error);
    ASSERT_TRUE(doc) << error;
    const auto& events = *doc->find("flight")
                              ->find("streams")
                              ->asArray()[0]
                              .find("events");
    ASSERT_EQ(events.asArray().size(), 4u);
    EXPECT_DOUBLE_EQ(
        events.asArray()[0].find("frame")->asNumber(), 6.0);
    EXPECT_DOUBLE_EQ(
        events.asArray()[3].find("frame")->asNumber(), 9.0);
}

TEST(FlightRecorder, DisabledRecordsNothing)
{
    FlightRecorder rec;
    rec.configure(testParams());
    rec.setEnabled(false);
    rec.recordSpan(0, "S", 0, 0.0, 1.0);
    rec.recordMetric(0, "m", 0, 0.0, 1.0);
    rec.recordMark(0, "mark", 0, 0.0);
    rec.noteDeadlineMiss(0, 0, 0.0, 120.0, 20.0);
    EXPECT_EQ(rec.eventCount(), 0u);
    EXPECT_EQ(rec.triggersSeen(), 0u);
}

TEST(FlightRecorder, DumpSchemaSortsAndConserves)
{
    FlightRecorder rec;
    rec.configure(testParams(16, 2));
    rec.setEnabled(true);
    // Deliberately out of time order; the dump must sort.
    rec.recordSpan(0, "FRAME", 1, 100.0, 30.0);
    rec.recordSpan(0, "DET", 1, 100.0, 10.0, 1);
    rec.recordMetric(0, "e2e_ms", 1, 130.0, 30.0);
    rec.recordMark(0, "late", 1, 90.0);
    rec.recordTransition(1, "overrun", 1, 95.0, 0, 1, "NOMINAL",
                         "DEGRADED");
    rec.recordAdmission(1, "shed", 2, 96.0, 1.5, true);

    std::string error;
    const auto doc = obs::json::parse(
        rec.dumpJson("unit-test", 1, 0), &error);
    ASSERT_TRUE(doc) << error;
    const auto* flight = doc->find("flight");
    ASSERT_TRUE(flight);
    EXPECT_DOUBLE_EQ(flight->find("version")->asNumber(), 1.0);
    EXPECT_EQ(flight->find("reason")->asString(), "unit-test");
    EXPECT_DOUBLE_EQ(flight->find("trigger_frame")->asNumber(), 1.0);
    const auto& streams = flight->find("streams")->asArray();
    ASSERT_EQ(streams.size(), 2u);

    // Stream 0: sorted by t_ms with the longer span first at ties.
    const auto& s0 = streams[0].find("events")->asArray();
    ASSERT_EQ(s0.size(), 4u);
    EXPECT_EQ(s0[0].find("name")->asString(), "late");
    EXPECT_EQ(s0[1].find("name")->asString(), "FRAME");
    EXPECT_EQ(s0[2].find("name")->asString(), "DET");
    EXPECT_EQ(s0[3].find("name")->asString(), "e2e_ms");
    EXPECT_DOUBLE_EQ(s0[2].find("track")->asNumber(), 1.0);

    // Stream 1: the transition and admission payloads round-trip.
    const auto& s1 = streams[1].find("events")->asArray();
    ASSERT_EQ(s1.size(), 2u);
    EXPECT_EQ(s1[0].find("transition")->asString(),
              "NOMINAL>DEGRADED");
    EXPECT_EQ(s1[1].find("name")->asString(), "shed");
    EXPECT_DOUBLE_EQ(s1[1].find("cost_scale")->asNumber(), 1.5);
    EXPECT_DOUBLE_EQ(s1[1].find("degraded")->asNumber(), 1.0);

    // Conservation: recorded == dropped + retained, per stream.
    for (const auto& s : streams)
        EXPECT_DOUBLE_EQ(s.find("recorded")->asNumber(),
                         s.find("dropped")->asNumber() +
                             static_cast<double>(
                                 s.find("events")->asArray().size()));
}

TEST(FlightRecorder, LongNamesAreTruncatedNotCorrupted)
{
    FlightRecorder rec;
    rec.configure(testParams());
    rec.setEnabled(true);
    const std::string longName(60, 'x');
    rec.recordSpan(0, longName.c_str(), 0, 0.0, 1.0);

    std::string error;
    const auto doc =
        obs::json::parse(rec.dumpJson("t", -1, -1), &error);
    ASSERT_TRUE(doc) << error;
    const std::string name = doc->find("flight")
                                 ->find("streams")
                                 ->asArray()[0]
                                 .find("events")
                                 ->asArray()[0]
                                 .find("name")
                                 ->asString();
    EXPECT_LT(name.size(), longName.size());
    EXPECT_EQ(name, longName.substr(0, name.size()));
}

TEST(FlightRecorder, DeadlineMissTriggersWithinDumpBudget)
{
    const std::string path = "test_flight_auto_dump.json";
    std::remove(path.c_str());
    FlightRecorder rec;
    FlightParams params = testParams(32);
    params.dumpPath = path;
    params.maxAutoDumps = 1;
    rec.configure(params);
    rec.setEnabled(true);

    rec.recordSpan(0, "FRAME", 0, 0.0, 120.0);
    rec.noteDeadlineMiss(0, 0, 120.0, 120.0, 20.0);
    rec.noteDeadlineMiss(0, 1, 240.0, 130.0, 30.0);
    // Both misses recorded, only the first spent the dump budget.
    EXPECT_EQ(rec.triggersSeen(), 2u);
    EXPECT_EQ(rec.dumpsWritten(), 1);
    EXPECT_EQ(rec.lastDumpPath(), path);

    std::string error;
    const auto doc = obs::json::parseFile(path, &error);
    ASSERT_TRUE(doc) << error;
    EXPECT_EQ(doc->find("flight")->find("reason")->asString(),
              "deadline-miss");
    // The miss mark carries the latency and the overrun.
    const auto& events = doc->find("flight")
                             ->find("streams")
                             ->asArray()[0]
                             .find("events")
                             ->asArray();
    const auto& miss = events[events.size() - 1];
    EXPECT_EQ(miss.find("name")->asString(), "deadline.miss");
    EXPECT_DOUBLE_EQ(miss.find("value")->asNumber(), 120.0);
    EXPECT_DOUBLE_EQ(miss.find("overrun_ms")->asNumber(), 20.0);
    // Atomic publication left no temp file behind.
    std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "r");
    EXPECT_EQ(tmp, nullptr);
    if (tmp)
        std::fclose(tmp);
    std::remove(path.c_str());
}

TEST(FlightRecorder, FaultsRecordButOnlyDumpWhenArmed)
{
    const std::string path = "test_flight_fault_dump.json";
    std::remove(path.c_str());
    FlightRecorder rec;
    FlightParams params = testParams(32);
    params.dumpPath = path;
    rec.configure(params); // dumpOnFault defaults to false.
    rec.setEnabled(true);

    rec.noteFault(0, "drop_frame", 3, 300.0);
    EXPECT_EQ(rec.eventCount(), 1u);
    EXPECT_EQ(rec.dumpsWritten(), 0);

    params.dumpOnFault = true;
    rec.configure(params);
    rec.setEnabled(true);
    rec.noteFault(0, "drop_frame", 3, 300.0);
    EXPECT_EQ(rec.dumpsWritten(), 1);
    std::remove(path.c_str());
}

TEST(FlightRecorder, EnsureStreamsGrowsWithoutDroppingEvents)
{
    FlightRecorder rec;
    rec.configure(testParams(8, 1));
    rec.setEnabled(true);
    rec.recordSpan(0, "S", 0, 0.0, 1.0);
    rec.ensureStreams(4);
    rec.recordSpan(3, "S", 0, 0.0, 1.0);
    EXPECT_EQ(rec.eventCount(), 2u);
    // Shrinking never happens; re-ensuring fewer is a no-op.
    rec.ensureStreams(2);
    rec.recordSpan(3, "S", 1, 1.0, 1.0);
    EXPECT_EQ(rec.eventCount(), 3u);
}

TEST(FlightRecorder, OutOfRangeStreamsLandInTheFirstRing)
{
    FlightRecorder rec;
    rec.configure(testParams(8, 2));
    rec.setEnabled(true);
    rec.recordSpan(7, "S", 0, 0.0, 1.0);
    rec.recordSpan(-1, "S", 0, 1.0, 1.0);
    EXPECT_EQ(rec.eventCount(), 2u);
    std::string error;
    const auto doc =
        obs::json::parse(rec.dumpJson("t", -1, -1), &error);
    ASSERT_TRUE(doc) << error;
    const auto& streams =
        doc->find("flight")->find("streams")->asArray();
    EXPECT_EQ(streams[0].find("events")->asArray().size(), 2u);
    EXPECT_EQ(streams[1].find("events")->asArray().size(), 0u);
}

TEST(PerfSampler, DeltasAreSaneEitherWorld)
{
    const PerfSampler::Reading start = PerfSampler::read();
    // Burn a little CPU so the task clock must advance.
    volatile double sink = 0.0;
    for (int i = 0; i < 2000000; ++i)
        sink += static_cast<double>(i) * 1e-9;
    const PerfSampler::Reading end = PerfSampler::read();
    const PerfDelta d = PerfSampler::delta(start, end);

    EXPECT_GT(d.taskClockMs, 0.0);
    EXPECT_EQ(d.hardware, PerfSampler::threadHasHardware());
    if (d.hardware) {
        // Live counters: the loop retired real instructions.
        EXPECT_GT(d.cycles, 0.0);
        EXPECT_GT(d.instructions, 0.0);
        EXPECT_GT(d.ipc(), 0.0);
    } else {
        // Portable fallback: hardware columns read exactly zero.
        EXPECT_DOUBLE_EQ(d.cycles, 0.0);
        EXPECT_DOUBLE_EQ(d.instructions, 0.0);
        EXPECT_DOUBLE_EQ(d.ipc(), 0.0);
    }
    if (PerfSampler::forcedOff())
        EXPECT_FALSE(d.hardware);
}

TEST(PerfSampler, PublishLatestRoundTripsPerName)
{
    EXPECT_EQ(obs::latestPerfDelta("never-published"), nullptr);
    PerfDelta d;
    d.taskClockMs = 1.25;
    d.cycles = 1000.0;
    d.instructions = 2000.0;
    d.hardware = true;
    obs::publishPerfDelta("test.span", d);
    const PerfDelta* got = obs::latestPerfDelta("test.span");
    ASSERT_NE(got, nullptr);
    EXPECT_DOUBLE_EQ(got->taskClockMs, 1.25);
    EXPECT_DOUBLE_EQ(got->ipc(), 2.0);

    // Re-publishing overwrites in place (same slot, new values).
    d.taskClockMs = 2.5;
    obs::publishPerfDelta("test.span", d);
    EXPECT_EQ(obs::latestPerfDelta("test.span"), got);
    EXPECT_DOUBLE_EQ(got->taskClockMs, 2.5);
}

/**
 * ISSUE 7 acceptance: arming the flight recorder (with a deadline
 * budget tight enough that every frame records a miss mark) must not
 * perturb a single pipeline output bit.
 */
class FlightDeterminismTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        obs::flight().setEnabled(false);
        obs::flight().configure(FlightParams{});
        obs::metrics().setEnabled(false);
        obs::metrics().reset();
    }

    static std::vector<double>
    runPipeline(const slam::PriorMap& map,
                const sensors::Camera& camera,
                const sensors::Scenario& scenario)
    {
        pipeline::PipelineParams params;
        params.detector.inputSize = 128;
        params.detector.width = 0.25;
        params.trackerPool.tracker.cropSize = 32;
        params.trackerPool.tracker.width = 0.1;
        params.laneCenterY = scenario.world.road().laneCenter(1);
        params.motionPlanner.cruiseSpeed = scenario.ego.speed;
        // Impossible budget: every frame trips the miss trigger.
        params.deadline.budgetMs = 1e-6;
        pipeline::Pipeline pipe(&map, &camera, nullptr, params);

        sensors::World world = scenario.world;
        Pose2 ego = scenario.ego.pose;
        pipe.reset(ego, {scenario.ego.speed, 0},
                   {scenario.world.road().length - 10,
                    params.laneCenterY});

        std::vector<double> sig;
        for (int i = 0; i < 6; ++i) {
            world.step(0.1);
            ego.pos.x += scenario.ego.speed * 0.1;
            const sensors::Frame frame = camera.render(world, ego);
            const auto out =
                pipe.processFrame(frame.image, 0.1,
                                  scenario.ego.speed);
            sig.push_back(static_cast<double>(out.detections.size()));
            for (const auto& d : out.detections) {
                sig.insert(sig.end(), {d.box.x, d.box.y, d.box.w,
                                       d.box.h, d.confidence});
            }
            sig.push_back(static_cast<double>(out.tracks.size()));
            sig.push_back(out.localization.ok ? 1.0 : 0.0);
            sig.push_back(out.localization.pose.pos.x);
            sig.push_back(out.localization.pose.pos.y);
            sig.push_back(out.localization.pose.theta);
            sig.push_back(
                static_cast<double>(out.trajectory.points.size()));
            for (const auto& p : out.trajectory.points) {
                sig.insert(sig.end(),
                           {p.pos.x, p.pos.y, p.heading, p.speed});
            }
        }
        return sig;
    }
};

TEST_F(FlightDeterminismTest, OutputsBitwiseIdenticalRecorderOnOrOff)
{
    Rng rng(23);
    sensors::ScenarioParams sp;
    sp.roadLength = 120.0;
    sp.vehicles = 3;
    const sensors::Scenario scenario =
        sensors::makeUrbanScenario(rng, sp);
    const sensors::Camera camera(sensors::Resolution::HHD);
    slam::MappingParams mp;
    mp.orb.fast.maxKeypoints = 400;
    const slam::PriorMap map =
        slam::buildPriorMap(scenario.world, camera, 1, mp);

    obs::flight().setEnabled(false);
    const auto dark = runPipeline(map, camera, scenario);

    FlightParams params;
    params.capacity = 256; // no dumpPath: triggers never hit disk.
    obs::flight().configure(params);
    obs::flight().setEnabled(true);
    const auto armed = runPipeline(map, camera, scenario);

    // The recorder actually captured the run (spans + miss marks)...
    EXPECT_GT(obs::flight().eventCount(), 0u);
    EXPECT_GT(obs::flight().triggersSeen(), 0u);
    // ...and perturbed nothing.
    ASSERT_EQ(dark.size(), armed.size());
    for (std::size_t i = 0; i < dark.size(); ++i)
        ASSERT_DOUBLE_EQ(dark[i], armed[i]) << "signature index " << i;
}

} // namespace
