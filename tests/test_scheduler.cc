/**
 * @file
 * Tests for the real-time frame scheduler: deterministic-service
 * identities, deadline accounting, saturation/drop behavior, queueing
 * of latency spikes, and the connection to the platform models (the
 * all-CPU system cannot sustain 10 fps; accelerated systems can).
 */

#include <gtest/gtest.h>

#include "accel/models.hh"
#include "pipeline/scheduler.hh"
#include "pipeline/system_model.hh"

namespace {

using namespace ad;
using namespace ad::pipeline;

TEST(Scheduler, FastDeterministicServiceHasNoMisses)
{
    // 20 ms service against a 100 ms period: every frame served
    // immediately, response = service time. The schedule is pure
    // virtual time, so every assertion is an exact identity: the
    // last frame arrives at 99 x 100 ms and completes 20 ms later.
    const auto stats =
        simulateSchedule([] { return 20.0; }, 100, SchedulerParams{});
    EXPECT_EQ(stats.framesArrived, 100);
    EXPECT_EQ(stats.framesProcessed, 100);
    EXPECT_EQ(stats.framesDropped, 0);
    EXPECT_EQ(stats.deadlineMisses, 0);
    EXPECT_DOUBLE_EQ(stats.responseTime.mean, 20.0);
    EXPECT_DOUBLE_EQ(stats.responseTime.worst, 20.0);
    EXPECT_DOUBLE_EQ(stats.achievedFps,
                     1000.0 * 100 / (99 * 100.0 + 20.0));
}

TEST(Scheduler, ServiceEqualToPeriodJustMeets)
{
    // Completion lands exactly on the next arrival: the engine never
    // idles and never queues, so response == service == period and
    // the run spans exactly frames x period virtual milliseconds.
    const auto stats =
        simulateSchedule([] { return 100.0; }, 50, SchedulerParams{});
    EXPECT_EQ(stats.framesDropped, 0);
    EXPECT_EQ(stats.deadlineMisses, 0);
    EXPECT_DOUBLE_EQ(stats.responseTime.worst, 100.0);
    EXPECT_DOUBLE_EQ(stats.responseTime.p50, 100.0);
    EXPECT_DOUBLE_EQ(stats.achievedFps, 10.0);
}

TEST(Scheduler, SlowServiceDropsAndMisses)
{
    // 250 ms service against a 100 ms period: the engine can sustain
    // only 4 fps; most frames must be dropped or late.
    const auto stats =
        simulateSchedule([] { return 250.0; }, 100, SchedulerParams{});
    EXPECT_GT(stats.framesDropped, 40);
    EXPECT_GT(stats.missRate(), 0.5);
    EXPECT_LT(stats.achievedFps, 5.0);
    EXPECT_EQ(stats.framesProcessed + stats.framesDropped,
              stats.framesArrived);
}

TEST(Scheduler, SpikeQueuesSubsequentFrame)
{
    // One 180 ms spike in otherwise 10 ms service: the spiked frame
    // (arrives at 200, completes at 380) misses its deadline exactly
    // by 80 ms, and the next frame (arrives at 300) inherits 80 ms of
    // queueing: served 380..390, response 90 ms -- late start, no
    // miss. Exact virtual-clock values, no tolerances.
    int i = 0;
    const auto stats = simulateSchedule(
        [&i] { return ++i == 3 ? 180.0 : 10.0; }, 10,
        SchedulerParams{});
    EXPECT_EQ(stats.framesDropped, 0);
    EXPECT_EQ(stats.deadlineMisses, 1);
    EXPECT_DOUBLE_EQ(stats.responseTime.worst, 180.0);
    EXPECT_DOUBLE_EQ(stats.responseTime.p50, 10.0);
    // 8 x 10 + 90 + 180 = 350 ms over 10 frames.
    EXPECT_DOUBLE_EQ(stats.responseTime.mean, 35.0);
}

TEST(Scheduler, ZeroQueueDepthDropsWhileBusy)
{
    SchedulerParams params;
    params.queueDepth = 0;
    // 150 ms service, 100 ms period: every odd frame arrives while
    // the engine is busy and is dropped instantly -- exactly half of
    // the 100 arrivals. The last served frame arrives at 9800 ms and
    // completes at 9950 ms.
    const auto stats =
        simulateSchedule([] { return 150.0; }, 100, params);
    EXPECT_EQ(stats.framesDropped, 50);
    EXPECT_EQ(stats.framesProcessed, 50);
    // Processed frames never queue, so response == service.
    EXPECT_DOUBLE_EQ(stats.responseTime.worst, 150.0);
    EXPECT_DOUBLE_EQ(stats.responseTime.p50, 150.0);
    EXPECT_DOUBLE_EQ(stats.achievedFps,
                     1000.0 * 50 / (98 * 100.0 + 150.0));
}

TEST(Scheduler, PlatformConnectionCpuFailsAcceleratedPasses)
{
    Rng rng(3);
    SystemModel model;

    SystemConfig cpu;
    cpu.det = cpu.tra = cpu.loc = accel::Platform::Cpu;
    const accel::Workload& w = accel::standardWorkloadRef();
    const auto cpuDet =
        accel::platformModel(accel::Platform::Cpu)
            .latency(accel::Component::Det, w);
    const auto cpuStats = simulateSchedule(
        [&] { return cpuDet.sample(rng); }, 200, SchedulerParams{});
    EXPECT_GT(cpuStats.missRate(), 0.9); // 7 s service vs 100 ms period

    SystemConfig best;
    best.det = accel::Platform::Gpu;
    best.tra = accel::Platform::Asic;
    best.loc = accel::Platform::Asic;
    const auto dist = [&] {
        // End-to-end sampler from the system model's distributions.
        static Rng sampleRng(11);
        static SystemModel m;
        return m.sampleEndToEnd(best, 1, sampleRng).mean;
    };
    const auto bestStats =
        simulateSchedule(dist, 300, SchedulerParams{});
    EXPECT_EQ(bestStats.framesDropped, 0);
    EXPECT_EQ(bestStats.deadlineMisses, 0);
    // With no queueing, the run ends at 299 x 100 ms plus the last
    // service time, which the zero misses above bound inside (0,
    // 100) ms -- so the achieved rate sits in an exact virtual-clock
    // bracket around the camera rate.
    EXPECT_GT(bestStats.achievedFps, 1000.0 * 300 / (299 * 100.0 + 100.0));
    EXPECT_LT(bestStats.achievedFps, 1000.0 * 300 / (299 * 100.0));
}

TEST(Scheduler, ConservationInvariant)
{
    Rng rng(5);
    for (int trial = 0; trial < 10; ++trial) {
        const double base = rng.uniform(10.0, 300.0);
        const auto stats = simulateSchedule(
            [&] { return base * rng.lognormal(0.0, 0.4); }, 120,
            SchedulerParams{});
        EXPECT_EQ(stats.framesProcessed + stats.framesDropped,
                  stats.framesArrived);
        EXPECT_GE(stats.responseTime.worst, stats.responseTime.p50);
    }
}

} // namespace
