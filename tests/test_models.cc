/**
 * @file
 * Tests for the model zoo: spec/profile consistency between the
 * allocation-free profiler and the instantiated networks, full-scale
 * workload sanity (the numbers the accelerator models consume), and the
 * constructed-weight behavior that makes the detector functional.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "nn/models.hh"

namespace {

using namespace ad::nn;
using ad::Rng;

TEST(DetectorSpec, ShapesPropagateToGrid)
{
    const ModelSpec spec = detectorSpec(416, 1.0, 4);
    const Network net = buildNetwork(spec);
    const Shape out = net.outputShape(spec.input);
    // Five 2x pools: 416 -> 13. Head outputs 5 + numClasses channels.
    EXPECT_EQ(out.h, 13);
    EXPECT_EQ(out.w, 13);
    EXPECT_EQ(out.c, 9);
}

TEST(DetectorSpec, SpecProfileMatchesNetworkProfile)
{
    const ModelSpec spec = detectorSpec(128, 0.25, 4);
    const NetworkProfile fromSpec = specProfile(spec);
    const Network net = buildNetwork(spec);
    const NetworkProfile fromNet = net.profile(spec.input);
    ASSERT_EQ(fromSpec.layers.size(), fromNet.layers.size());
    for (std::size_t i = 0; i < fromSpec.layers.size(); ++i) {
        EXPECT_EQ(fromSpec.layers[i].flops, fromNet.layers[i].flops) << i;
        EXPECT_EQ(fromSpec.layers[i].weightBytes,
                  fromNet.layers[i].weightBytes) << i;
        EXPECT_EQ(fromSpec.layers[i].outputBytes,
                  fromNet.layers[i].outputBytes) << i;
    }
    EXPECT_EQ(fromSpec.totalFlops(), fromNet.totalFlops());
}

TEST(DetectorSpec, FullScaleWorkloadMagnitude)
{
    // Paper-scale YOLO-flavored net: multi-GFLOP per frame, conv
    // dominated. (Grayscale input, so somewhat below RGB YOLOv2.)
    const NetworkProfile p = specProfile(detectorSpec(416, 1.0, 4));
    EXPECT_GT(p.totalFlops(), 3e9);
    EXPECT_LT(p.totalFlops(), 60e9);
    const double convShare =
        static_cast<double>(p.flopsOfKind(LayerKind::Conv)) /
        static_cast<double>(p.totalFlops());
    EXPECT_GT(convShare, 0.98);
}

TEST(DetectorSpec, RejectsBadInputSize)
{
    EXPECT_EXIT(detectorSpec(100), ::testing::ExitedWithCode(1),
                "multiple of 32");
}

TEST(TrackerProfile, FcDominatesWeights)
{
    // GOTURN's signature property: FC layers carry almost all
    // parameters (the reason the paper maps TRA onto the EIE FC ASIC).
    const NetworkProfile p = trackerProfile(227, 1.0);
    const double fcWeightShare =
        static_cast<double>(p.weightBytesOfKind(LayerKind::FullyConnected)) /
        static_cast<double>(p.totalWeightBytes());
    EXPECT_GT(fcWeightShare, 0.9);
    EXPECT_GT(p.totalWeightBytes(), 100e6); // >100 MB of parameters
}

TEST(TrackerProfile, HasTwoConvBranches)
{
    const NetworkProfile p = trackerProfile(227, 1.0);
    int tgt = 0;
    int srch = 0;
    for (const auto& l : p.layers) {
        if (l.name.ends_with("-tgt"))
            ++tgt;
        if (l.name.ends_with("-srch"))
            ++srch;
    }
    EXPECT_GT(tgt, 0);
    EXPECT_EQ(tgt, srch);
}

TEST(TrackerNets, BranchAndHeadCompose)
{
    const ModelSpec convSpec = trackerConvSpec(67, 0.1);
    Network conv = buildNetwork(convSpec);
    const Shape convOut = conv.outputShape(convSpec.input);
    const ModelSpec fcSpec =
        trackerFcSpec(static_cast<int>(convOut.elements()), 0.1);
    Network fc = buildNetwork(fcSpec);

    Rng rng(3);
    initTrackerWeights(conv, rng);
    initTrackerWeights(fc, rng);

    Tensor crop(1, 67, 67);
    crop.fill(0.5f);
    const Tensor featA = conv.forward(crop);
    const Tensor featB = conv.forward(crop);
    const Tensor both = Tensor::concatChannels(featA, featB);
    const Tensor bbox = fc.forward(both);
    EXPECT_EQ(bbox.channels(), 4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(std::isfinite(bbox.at(i, 0, 0)));
}

TEST(ConstructedWeights, BrightRegionRaisesObjectness)
{
    const ModelSpec spec = detectorSpec(96, 0.25, 4);
    Network net = buildNetwork(spec);
    Rng rng(7);
    initDetectorWeights(net, rng);

    // Dark scene vs. a scene with a bright block in the upper-left.
    Tensor dark(1, 96, 96);
    dark.fill(0.25f);
    Tensor bright = dark;
    for (int y = 4; y < 36; ++y)
        for (int x = 4; x < 36; ++x)
            bright.at(0, y, x) = 0.9f;

    const Tensor outDark = net.forward(dark);
    const Tensor outBright = net.forward(bright);
    // Objectness = channel 0. Grid is 3x3 for input 96.
    EXPECT_GT(outBright.at(0, 0, 0), outDark.at(0, 0, 0) + 0.1f);
    // A far-away cell should be nearly unchanged.
    EXPECT_NEAR(outBright.at(0, 2, 2), outDark.at(0, 2, 2), 0.05f);
}

TEST(ConstructedWeights, ObjectnessTracksBrightnessMonotonically)
{
    const ModelSpec spec = detectorSpec(64, 0.25, 4);
    Network net = buildNetwork(spec);
    Rng rng(11);
    initDetectorWeights(net, rng);
    double prev = -1e9;
    for (const float level : {0.2f, 0.4f, 0.6f, 0.8f}) {
        Tensor in(1, 64, 64);
        in.fill(level);
        const double obj = net.forward(in).at(0, 0, 0);
        EXPECT_GT(obj, prev);
        prev = obj;
    }
}

TEST(NetworkProfile, AggregationIdentities)
{
    const NetworkProfile p = specProfile(detectorSpec(64, 0.25, 4));
    std::uint64_t byKind = 0;
    for (const auto kind :
         {LayerKind::Conv, LayerKind::Pool, LayerKind::Activation,
          LayerKind::FullyConnected})
        byKind += p.flopsOfKind(kind);
    EXPECT_EQ(byKind, p.totalFlops());
    EXPECT_FALSE(p.toString().empty());
}

} // namespace
