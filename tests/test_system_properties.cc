/**
 * @file
 * Cross-cutting property tests over the modeled system: invariants
 * that must hold for *every* configuration, resolution and seed --
 * monotonicity of latency in resolution, power additivity, constraint
 * consistency, distribution-shape sanity, and the feasibility
 * frontier's structure.
 */

#include <gtest/gtest.h>

#include "pipeline/constraints.hh"
#include "pipeline/system_model.hh"

namespace {

using namespace ad;
using namespace ad::pipeline;
using accel::Platform;

/** Sweep over every platform assignment. */
class AllConfigsTest : public ::testing::TestWithParam<int>
{
  protected:
    SystemConfig
    config() const
    {
        return SystemModel::allConfigs()[GetParam()];
    }
};

TEST_P(AllConfigsTest, AssessmentInvariants)
{
    Rng rng(100 + GetParam());
    SystemModel model;
    const auto a = model.assess(config(), 3000, rng);

    // Latency sanity.
    EXPECT_GT(a.meanMs, 0);
    EXPECT_GE(a.tailMs, a.meanMs * 0.9);
    EXPECT_GE(a.endToEnd.worst, a.endToEnd.p9999 * 0.999);

    // Power additivity and positivity.
    EXPECT_GT(a.power.computeW, 0);
    EXPECT_NEAR(a.power.totalW(),
                a.power.computeW + a.power.storageW + a.power.coolingW,
                1e-9);
    // Cooling is 1/COP of IT power.
    EXPECT_NEAR(a.power.coolingW, a.power.itW() / 1.3, 1e-6);

    // Range reduction consistent with power.
    EXPECT_GT(a.rangeReductionPct, 0);
    EXPECT_LT(a.rangeReductionPct, 50);

    // Constraint flags consistent with the numbers.
    EXPECT_EQ(a.meetsLatencyConstraint, a.tailMs <= 100.0);
    if (a.meetsLatencyOnMeanOnly) {
        EXPECT_LE(a.meanMs, 100.0);
        EXPECT_GT(a.tailMs, 100.0);
    }
}

TEST_P(AllConfigsTest, LatencyMonotoneInResolution)
{
    Rng rng(200 + GetParam());
    SystemModel model;
    SystemConfig c = config();
    double prev = 0;
    for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
        c.resolutionScale = scale;
        const auto s = model.sampleEndToEnd(c, 4000, rng);
        EXPECT_GT(s.mean, prev * 0.98) << "scale " << scale;
        prev = s.mean;
    }
}

TEST_P(AllConfigsTest, MoreCamerasMorePower)
{
    SystemModel model;
    SystemConfig c = config();
    c.cameras = 4;
    const double four = model.computePowerW(c);
    c.cameras = 8;
    const double eight = model.computePowerW(c);
    EXPECT_NEAR(eight, 2 * four, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Every64, AllConfigsTest,
                         ::testing::Range(0, 64));

TEST(SystemProperties, FeasibilityFrontierIsMonotoneInResolution)
{
    // If a configuration fails the latency budget at resolution r, it
    // must also fail at every higher resolution.
    Rng rng(7);
    SystemModel model;
    for (const auto& base : SystemModel::allConfigs()) {
        bool failed = false;
        for (const double scale : {0.5, 1.0, 2.5, 5.0}) {
            SystemConfig c = base;
            c.resolutionScale = scale;
            const bool meets =
                model.assess(c, 2500, rng).meetsLatencyConstraint;
            if (failed) {
                EXPECT_FALSE(meets)
                    << base.name() << " at scale " << scale;
            }
            failed = failed || !meets;
        }
    }
}

TEST(SystemProperties, ConstraintCheckerAgreesWithAssessmentFlags)
{
    Rng rng(9);
    SystemModel model;
    ConstraintChecker checker;
    for (int i = 0; i < 64; i += 7) {
        const auto a =
            model.assess(SystemModel::allConfigs()[i], 3000, rng);
        const auto verdicts = checker.check(a);
        // The performance verdict must agree with the latency flag
        // whenever the mean-rate requirement is not the binding one.
        if (a.meanMs <= 100.0) {
            EXPECT_EQ(verdicts[0].satisfied, a.meetsLatencyConstraint)
                << a.config.name();
        }
    }
}

TEST(SystemProperties, SeedIndependenceOfPowerDeterminism)
{
    // Power is deterministic; latency summaries vary only within
    // sampling noise across seeds.
    SystemModel model;
    SystemConfig c;
    c.det = Platform::Gpu;
    c.tra = Platform::Asic;
    c.loc = Platform::Asic;
    Rng r1(1);
    Rng r2(2);
    const auto a1 = model.assess(c, 40000, r1);
    const auto a2 = model.assess(c, 40000, r2);
    EXPECT_DOUBLE_EQ(a1.power.totalW(), a2.power.totalW());
    EXPECT_NEAR(a1.meanMs, a2.meanMs, a1.meanMs * 0.05);
    EXPECT_NEAR(a1.tailMs, a2.tailMs, a1.tailMs * 0.15);
}

} // namespace
