/**
 * @file
 * Tests for the image substrate: pixel access, rectangle fills, bilinear
 * sampling/resizing, crop-resize (the tracker's input path), box
 * filtering and integral-image rectangle sums.
 */

#include <gtest/gtest.h>

#include "common/image.hh"
#include "common/random.hh"

namespace {

using ad::BBox;
using ad::Image;
using ad::IntegralImage;
using ad::Rng;

TEST(Image, ConstructAndFill)
{
    Image img(8, 4, 7);
    EXPECT_EQ(img.width(), 8);
    EXPECT_EQ(img.height(), 4);
    EXPECT_EQ(img.size(), 32u);
    EXPECT_EQ(img.at(3, 2), 7);
    img.fill(200);
    EXPECT_EQ(img.at(7, 3), 200);
    EXPECT_FALSE(img.empty());
    EXPECT_TRUE(Image().empty());
}

TEST(Image, FillRectClipsToBounds)
{
    Image img(10, 10, 0);
    img.fillRect(BBox(-5, -5, 8, 8), 255);
    EXPECT_EQ(img.at(0, 0), 255);
    EXPECT_EQ(img.at(2, 2), 255);
    EXPECT_EQ(img.at(3, 3), 0);
    img.fillRect(BBox(8, 8, 100, 100), 9);
    EXPECT_EQ(img.at(9, 9), 9);
    EXPECT_EQ(img.at(7, 7), 0);
}

TEST(Image, ClampedAccess)
{
    Image img(4, 4, 0);
    img.at(0, 0) = 10;
    img.at(3, 3) = 20;
    EXPECT_EQ(img.atClamped(-5, -5), 10);
    EXPECT_EQ(img.atClamped(100, 100), 20);
}

TEST(Image, BilinearInterpolatesMidpoint)
{
    Image img(2, 1, 0);
    img.at(0, 0) = 0;
    img.at(1, 0) = 100;
    EXPECT_NEAR(img.sampleBilinear(0.5, 0.0), 50.0, 1e-9);
    EXPECT_NEAR(img.sampleBilinear(0.0, 0.0), 0.0, 1e-9);
    EXPECT_NEAR(img.sampleBilinear(1.0, 0.0), 100.0, 1e-9);
}

TEST(Image, ResizePreservesConstantImage)
{
    Image img(16, 12, 123);
    const Image small = img.resized(7, 5);
    EXPECT_EQ(small.width(), 7);
    EXPECT_EQ(small.height(), 5);
    for (int y = 0; y < 5; ++y)
        for (int x = 0; x < 7; ++x)
            EXPECT_EQ(small.at(x, y), 123);
}

TEST(Image, ResizeUpAndDownRoughlyPreservesMean)
{
    Rng rng(3);
    Image img(32, 32);
    for (int y = 0; y < 32; ++y)
        for (int x = 0; x < 32; ++x)
            img.at(x, y) = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    const double mean = img.meanIntensity();
    EXPECT_NEAR(img.resized(64, 64).meanIntensity(), mean, 4.0);
    EXPECT_NEAR(img.resized(16, 16).meanIntensity(), mean, 6.0);
}

TEST(Image, CropResizedExtractsRegion)
{
    Image img(20, 20, 0);
    img.fillRect(BBox(10, 10, 10, 10), 200);
    // Crop exactly the bright quadrant.
    const Image crop = img.cropResized(BBox(10, 10, 10, 10), 5, 5);
    for (int y = 1; y < 4; ++y)
        for (int x = 1; x < 4; ++x)
            EXPECT_GT(crop.at(x, y), 150) << x << "," << y;
    // Crop the dark quadrant.
    const Image dark = img.cropResized(BBox(0, 0, 10, 10), 5, 5);
    EXPECT_LT(dark.at(2, 2), 50);
}

TEST(Image, BoxFilterSmoothsImpulse)
{
    Image img(9, 9, 0);
    img.at(4, 4) = 255;
    const Image smooth = img.boxFiltered(1);
    EXPECT_EQ(smooth.at(4, 4), 255 / 9);
    EXPECT_EQ(smooth.at(3, 3), 255 / 9);
    EXPECT_EQ(smooth.at(0, 0), 0);
}

TEST(IntegralImage, MatchesBruteForce)
{
    Rng rng(9);
    Image img(17, 13);
    for (int y = 0; y < 13; ++y)
        for (int x = 0; x < 17; ++x)
            img.at(x, y) = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    IntegralImage integral(img);
    for (int trial = 0; trial < 100; ++trial) {
        const int x0 = rng.uniformInt(0, 16);
        const int y0 = rng.uniformInt(0, 12);
        const int x1 = rng.uniformInt(x0, 17);
        const int y1 = rng.uniformInt(y0, 13);
        std::uint64_t expect = 0;
        for (int y = y0; y < y1; ++y)
            for (int x = x0; x < x1; ++x)
                expect += img.at(x, y);
        EXPECT_EQ(integral.rectSum(x0, y0, x1, y1), expect);
    }
}

TEST(IntegralImage, EmptyAndClampedRects)
{
    Image img(4, 4, 10);
    IntegralImage integral(img);
    EXPECT_EQ(integral.rectSum(2, 2, 2, 2), 0u);
    EXPECT_EQ(integral.rectSum(3, 3, 1, 1), 0u);
    EXPECT_EQ(integral.rectSum(-10, -10, 100, 100), 160u);
}

} // namespace
