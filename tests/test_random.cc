/**
 * @file
 * Tests for the deterministic PRNG: reproducibility, distribution sanity
 * and stream-splitting independence. Whole-system reproducibility of the
 * benchmark harness rests on these properties.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.hh"

namespace {

using ad::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(1234);
    Rng b(1234);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += (a() == b());
    EXPECT_LT(equal, 5);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r(0);
    std::set<std::uint64_t> vals;
    for (int i = 0; i < 100; ++i)
        vals.insert(r());
    EXPECT_GT(vals.size(), 90u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(42);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(43);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform(-3.0, 7.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 7.0);
    }
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng r(44);
    std::set<int> seen;
    for (int i = 0; i < 10000; ++i) {
        const int v = r.uniformInt(2, 6);
        ASSERT_GE(v, 2);
        ASSERT_LE(v, 6);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng r(45);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = r.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaleAndShift)
{
    Rng r(46);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalMedianIsExpMu)
{
    Rng r(47);
    std::vector<double> v;
    const int n = 50001;
    v.reserve(n);
    for (int i = 0; i < n; ++i)
        v.push_back(r.lognormal(1.0, 0.7));
    std::nth_element(v.begin(), v.begin() + n / 2, v.end());
    EXPECT_NEAR(v[n / 2], std::exp(1.0), 0.1);
    for (double x : v)
        ASSERT_GT(x, 0.0);
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(48);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}

TEST(Rng, SplitStreamsAreDecorrelated)
{
    Rng parent(99);
    Rng childA = parent.split();
    Rng childB = parent.split();
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += (childA() == childB());
    EXPECT_LT(equal, 5);
}

TEST(Rng, SplitIsDeterministic)
{
    Rng p1(7);
    Rng p2(7);
    Rng c1 = p1.split();
    Rng c2 = p2.split();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(c1(), c2());
}

/** Property sweep over seeds: uniform() mean stays near 0.5. */
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf)
{
    Rng r(GetParam());
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0, 1, 2, 3, 1ULL << 40,
                                           0xdeadbeefULL, ~0ULL));

} // namespace
