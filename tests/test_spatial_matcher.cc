/**
 * @file
 * Tests for the projection-guided spatial matcher: grid indexing,
 * window semantics, one-to-one assignment, equivalence with brute
 * force when candidates project correctly, and superiority when the
 * scene contains distant lookalike texture.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "vision/spatial_matcher.hh"

namespace {

using namespace ad;
using namespace ad::vision;

Descriptor
randomDesc(Rng& rng)
{
    Descriptor d;
    for (auto& w : d.words)
        w = rng();
    return d;
}

Feature
featureAt(float x, float y, const Descriptor& d)
{
    Feature f;
    f.kp.x = x;
    f.kp.y = y;
    f.desc = d;
    return f;
}

TEST(SpatialMatcher, FeaturesNearRespectsRadius)
{
    Rng rng(1);
    std::vector<Feature> features = {
        featureAt(100, 100, randomDesc(rng)),
        featureAt(130, 100, randomDesc(rng)),
        featureAt(300, 300, randomDesc(rng)),
    };
    SpatialMatcher matcher(features, 640, 480);
    EXPECT_EQ(matcher.featuresNear(100, 100, 10).size(), 1u);
    EXPECT_EQ(matcher.featuresNear(100, 100, 40).size(), 2u);
    EXPECT_EQ(matcher.featuresNear(100, 100, 500).size(), 3u);
    EXPECT_TRUE(matcher.featuresNear(500, 100, 20).empty());
}

TEST(SpatialMatcher, MatchesWithinWindowOnly)
{
    Rng rng(2);
    const Descriptor d = randomDesc(rng);
    std::vector<Feature> features = {featureAt(100, 100, d)};
    SpatialMatcher matcher(features, 640, 480);

    ProjectedCandidate nearCand;
    nearCand.u = 110;
    nearCand.v = 100;
    nearCand.desc = d;
    ProjectedCandidate farCand;
    farCand.u = 400;
    farCand.v = 100;
    farCand.desc = d;

    SpatialMatchParams params;
    params.windowRadius = 48;
    const auto nearMatches = matcher.match({nearCand}, params);
    ASSERT_EQ(nearMatches.size(), 1u);
    EXPECT_EQ(nearMatches[0].featureIndex, 0);
    EXPECT_EQ(nearMatches[0].distance, 0);
    EXPECT_TRUE(matcher.match({farCand}, params).empty());
}

TEST(SpatialMatcher, OneToOneAssignmentPrefersCloserDescriptor)
{
    Rng rng(3);
    const Descriptor d = randomDesc(rng);
    Descriptor similar = d;
    similar.words[0] ^= 0xff; // 8 bits away
    std::vector<Feature> features = {featureAt(100, 100, d)};
    SpatialMatcher matcher(features, 640, 480);

    ProjectedCandidate exact;
    exact.u = 100;
    exact.v = 100;
    exact.desc = d;
    exact.tag = 1;
    ProjectedCandidate close;
    close.u = 105;
    close.v = 100;
    close.desc = similar;
    close.tag = 2;
    const auto matches = matcher.match({close, exact});
    // Only one frame feature: the exact candidate must win it.
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0].candidateIndex, 1);
    EXPECT_EQ(matches[0].distance, 0);
}

TEST(SpatialMatcher, WindowDefeatsDistantLookalike)
{
    // Two identical descriptors in the frame (repetitive texture).
    // Brute force cannot tell them apart (the ratio test kills the
    // match); the window picks the geometrically consistent one.
    Rng rng(4);
    const Descriptor d = randomDesc(rng);
    std::vector<Feature> features = {
        featureAt(100, 100, d),
        featureAt(500, 100, d), // lookalike far away
    };
    SpatialMatcher matcher(features, 640, 480);

    ProjectedCandidate cand;
    cand.u = 102;
    cand.v = 100;
    cand.desc = d;
    const auto spatial = matcher.match({cand});
    ASSERT_EQ(spatial.size(), 1u);
    EXPECT_EQ(spatial[0].featureIndex, 0);

    // Brute force over the same data: the ratio test rejects
    // (best == second best).
    const auto brute = matchDescriptors({d}, {d, d}, 64, 0.85);
    EXPECT_TRUE(brute.empty());
}

TEST(SpatialMatcher, AgreesWithBruteForceOnCleanData)
{
    // Distinct random descriptors, candidates projected exactly at
    // their features: both matchers find the same pairs.
    Rng rng(5);
    std::vector<Feature> features;
    std::vector<ProjectedCandidate> candidates;
    std::vector<Descriptor> frameDescs;
    std::vector<Descriptor> candDescs;
    for (int i = 0; i < 40; ++i) {
        const Descriptor d = randomDesc(rng);
        const float x = static_cast<float>(50 + (i % 8) * 70);
        const float y = static_cast<float>(50 + (i / 8) * 80);
        features.push_back(featureAt(x, y, d));
        frameDescs.push_back(d);
        ProjectedCandidate c;
        c.u = x + static_cast<float>(rng.uniform(-5, 5));
        c.v = y + static_cast<float>(rng.uniform(-5, 5));
        c.desc = d;
        candidates.push_back(c);
        candDescs.push_back(d);
    }
    SpatialMatcher matcher(features, 640, 480);
    const auto spatial = matcher.match(candidates);
    const auto brute = matchDescriptors(frameDescs, candDescs, 64, 0.85);
    EXPECT_EQ(spatial.size(), brute.size());
    for (const auto& m : spatial)
        EXPECT_EQ(m.featureIndex, m.candidateIndex); // identity pairs
}

TEST(SpatialMatcher, EmptyInputs)
{
    std::vector<Feature> none;
    SpatialMatcher matcher(none, 640, 480);
    EXPECT_TRUE(matcher.match({}).empty());
    ProjectedCandidate c;
    c.u = 10;
    c.v = 10;
    EXPECT_TRUE(matcher.match({c}).empty());
}

} // namespace
