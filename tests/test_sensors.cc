/**
 * @file
 * Tests for the synthetic world and camera: actor kinematics, class
 * bands, projection round trips, rendered ground truth consistency and
 * scenario construction.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sensors/camera.hh"
#include "sensors/scenario.hh"

namespace {

using namespace ad::sensors;
using ad::Pose2;
using ad::Rng;
using ad::Vec2;

TEST(World, ClassBandsRoundTrip)
{
    for (int i = 0; i < kNumObjectClasses; ++i) {
        const auto cls = static_cast<ObjectClass>(i);
        EXPECT_EQ(classFromIntensity(objectClassIntensity(cls)), cls);
        // Bands survive +-10 of render noise.
        EXPECT_EQ(classFromIntensity(objectClassIntensity(cls) + 9), cls);
        EXPECT_EQ(classFromIntensity(objectClassIntensity(cls) - 9), cls);
    }
}

TEST(World, StepMovesConstantActor)
{
    World w;
    Actor a;
    a.motion = MotionKind::Constant;
    a.pose = Pose2(0, 0, 0);
    a.speed = 10.0;
    w.addActor(a);
    w.step(0.5);
    EXPECT_NEAR(w.actors()[0].pose.pos.x, 5.0, 1e-9);
    EXPECT_NEAR(w.actors()[0].pose.pos.y, 0.0, 1e-9);
    EXPECT_NEAR(w.time(), 0.5, 1e-12);
}

TEST(World, StationaryActorStaysPut)
{
    World w;
    Actor a;
    a.motion = MotionKind::Stationary;
    a.pose = Pose2(7, 3, 1.0);
    a.speed = 99.0; // ignored
    w.addActor(a);
    w.step(10.0);
    EXPECT_NEAR(w.actors()[0].pose.pos.x, 7.0, 1e-9);
}

TEST(World, LaneKeepWrapsAroundRoad)
{
    World w;
    w.road().length = 100.0;
    Actor a;
    a.motion = MotionKind::LaneKeep;
    a.pose = Pose2(95, 1.75, 0);
    a.speed = 10.0;
    w.addActor(a);
    w.step(1.0);
    EXPECT_NEAR(w.actors()[0].pose.pos.x, 5.0, 1e-9);
}

TEST(World, CrossingActorBouncesWithinSpan)
{
    World w;
    Actor a;
    a.motion = MotionKind::Crossing;
    a.pose = Pose2(50, 0, M_PI / 2);
    a.speed = 1.0;
    a.crossingSpan = 3.0;
    w.addActor(a);
    for (int i = 0; i < 100; ++i) {
        w.step(0.25);
        const double y = w.actors()[0].pose.pos.y;
        EXPECT_GE(y, -0.3);
        EXPECT_LE(y, 3.3);
    }
}

TEST(World, IdsAreUniqueAndSequential)
{
    World w;
    const int id1 = w.addActor(Actor{});
    const int id2 = w.addActor(Actor{});
    const int lid = w.addLandmark(Landmark{});
    EXPECT_NE(id1, id2);
    EXPECT_EQ(w.actors()[0].id, id1);
    EXPECT_EQ(w.landmarks()[0].id, lid);
    EXPECT_NE(w.landmarks()[0].textureSeed, 0u);
}

TEST(Camera, ResolutionPresetsMatchPaper)
{
    EXPECT_EQ(resolutionSpec(Resolution::HD).width, 1280);
    EXPECT_EQ(resolutionSpec(Resolution::FHD).height, 1080);
    EXPECT_EQ(resolutionSpec(Resolution::QHD).width, 2560);
    EXPECT_EQ(resolutionSpec(Resolution::Kitti).width, 1242);
    // Presets sorted ascending by pixel count.
    double prev = 0;
    for (const auto r : allResolutions()) {
        const double mp = resolutionSpec(r).megapixels();
        EXPECT_GT(mp, prev);
        prev = mp;
    }
}

TEST(Camera, ProjectUnprojectGroundRoundTrip)
{
    Camera cam(Resolution::Kitti);
    const Pose2 ego(100, 5.25, 0.2);
    for (const Vec2 pt : {Vec2{120, 6}, Vec2{110, 2}, Vec2{140, 10}}) {
        double u, v, depth;
        ASSERT_TRUE(cam.project(ego, pt, 0.0, u, v, depth));
        EXPECT_GT(depth, 0.0);
        Vec2 back;
        ASSERT_TRUE(cam.unprojectGround(ego, u, v, back));
        EXPECT_NEAR(back.x, pt.x, 0.2);
        EXPECT_NEAR(back.y, pt.y, 0.2);
    }
}

TEST(Camera, PointsBehindCameraRejected)
{
    Camera cam(Resolution::Kitti);
    const Pose2 ego(100, 5, 0);
    double u, v, depth;
    EXPECT_FALSE(cam.project(ego, {90, 5}, 0.0, u, v, depth));
    Vec2 world;
    EXPECT_FALSE(cam.unprojectGround(ego, 600, 10, world)); // above horizon
}

TEST(Camera, DepthIncreasesUpTheImage)
{
    Camera cam(Resolution::Kitti);
    const Pose2 ego(0, 5, 0);
    Vec2 nearPt, farPt;
    ASSERT_TRUE(cam.unprojectGround(ego, 621, 370, nearPt));
    ASSERT_TRUE(cam.unprojectGround(ego, 621, 250, farPt));
    EXPECT_GT(farPt.x, nearPt.x);
}

TEST(Camera, RenderedFrameHasSkyRoadAndTruth)
{
    Rng rng(3);
    Scenario sc = makeHighwayScenario(rng);
    // Place a vehicle right in front of the ego.
    Actor car;
    car.cls = ObjectClass::Vehicle;
    car.motion = MotionKind::Stationary;
    car.pose = Pose2(sc.ego.pose.pos.x + 20, sc.ego.pose.pos.y, 0);
    sc.world.addActor(car);

    Camera cam(Resolution::HHD);
    const Frame frame = cam.render(sc.world, sc.ego.pose);
    EXPECT_EQ(frame.image.width(), 640);
    EXPECT_EQ(frame.image.height(), 360);

    // Sky is brighter than road asphalt.
    const double sky = frame.image.at(320, 40);
    const double road = frame.image.at(320, 330);
    EXPECT_GT(sky, 100);
    EXPECT_LT(road, 100);

    // The planted car must appear in the ground truth with a sane box.
    bool found = false;
    for (const auto& gt : frame.truth) {
        if (gt.actorId != car.id && gt.cls != ObjectClass::Vehicle)
            continue;
        if (std::fabs(gt.depth - 20.0) < 1.0) {
            found = true;
            EXPECT_GT(gt.box.w, 10);
            EXPECT_GT(gt.box.h, 5);
            // Box interior should carry the vehicle intensity band.
            const int cx = static_cast<int>(gt.box.cx());
            const int cy = static_cast<int>(gt.box.cy());
            const double val = frame.image.at(cx, cy);
            EXPECT_EQ(classFromIntensity(val), ObjectClass::Vehicle);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Camera, WorldAnchoredTextureIsStableAcrossFrames)
{
    // Render the same world from the same pose twice: identical images.
    Rng rng(5);
    Scenario sc = makeUrbanScenario(rng);
    Camera cam(Resolution::HHD);
    const Frame a = cam.render(sc.world, sc.ego.pose);
    const Frame b = cam.render(sc.world, sc.ego.pose);
    ASSERT_EQ(a.image.size(), b.image.size());
    int diffs = 0;
    for (int y = 0; y < a.image.height(); ++y)
        for (int x = 0; x < a.image.width(); ++x)
            diffs += a.image.at(x, y) != b.image.at(x, y);
    EXPECT_EQ(diffs, 0);
}

TEST(Camera, TruthOnlyContainsVisibleActors)
{
    World w;
    Actor behind;
    behind.pose = Pose2(-50, 5, 0);
    behind.motion = MotionKind::Stationary;
    w.addActor(behind);
    Camera cam(Resolution::HHD);
    const Frame frame = cam.render(w, Pose2(0, 5, 0));
    EXPECT_TRUE(frame.truth.empty());
}

TEST(Scenario, HighwayPopulatesWorld)
{
    Rng rng(7);
    const Scenario sc = makeHighwayScenario(rng);
    EXPECT_EQ(sc.name, "highway");
    EXPECT_GT(sc.world.landmarks().size(), 50u);
    int vehicles = 0;
    for (const auto& a : sc.world.actors())
        vehicles += a.cls == ObjectClass::Vehicle;
    EXPECT_GE(vehicles, 8);
    EXPECT_GT(sc.ego.speed, 0);
}

TEST(Scenario, UrbanHasPedestriansAndBicycles)
{
    Rng rng(8);
    const Scenario sc = makeUrbanScenario(rng);
    int peds = 0;
    int bikes = 0;
    for (const auto& a : sc.world.actors()) {
        peds += a.cls == ObjectClass::Pedestrian;
        bikes += a.cls == ObjectClass::Bicycle;
    }
    EXPECT_GE(peds, 3);
    EXPECT_GE(bikes, 2);
    // Urban landmarks denser than highway.
    Rng rng2(7);
    const Scenario hw = makeHighwayScenario(rng2);
    EXPECT_GT(sc.world.landmarks().size(), hw.world.landmarks().size());
}

TEST(Scenario, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    const Scenario s1 = makeUrbanScenario(a);
    const Scenario s2 = makeUrbanScenario(b);
    ASSERT_EQ(s1.world.actors().size(), s2.world.actors().size());
    for (std::size_t i = 0; i < s1.world.actors().size(); ++i) {
        EXPECT_DOUBLE_EQ(s1.world.actors()[i].pose.pos.x,
                         s2.world.actors()[i].pose.pos.x);
    }
}

} // namespace
