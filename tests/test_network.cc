/**
 * @file
 * Network-level execution tests: mixed layer types composed in one
 * graph (conv -> pool -> FC -> softmax classifier shape), profile
 * consistency through mixed stacks, and shape-mismatch error paths
 * (panic/abort on internal misuse).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/random.hh"
#include "common/thread_pool.hh"
#include "nn/kernel_context.hh"
#include "nn/network.hh"

namespace {

using namespace ad::nn;
using ad::Rng;

Network
tinyClassifier()
{
    // 1x8x8 input -> conv(4,3x3) -> relu -> avgpool(2) -> fc(10) ->
    // softmax.
    Network net("classifier");
    auto& conv = net.add<Conv2D>("conv", 1, 4, 3, 1, 1);
    Rng rng(5);
    for (auto& w : conv.weights())
        w = static_cast<float>(rng.uniform(-0.3, 0.3));
    net.add<Activation>("relu", 0.0f);
    net.add<AvgPool>("pool", 2, 2);
    auto& fc = net.add<FullyConnected>("fc", 4 * 4 * 4, 10);
    for (auto& w : fc.weights())
        w = static_cast<float>(rng.uniform(-0.2, 0.2));
    net.add<Softmax>("softmax");
    return net;
}

TEST(Network, MixedStackProducesDistribution)
{
    const Network net = tinyClassifier();
    Tensor in(1, 8, 8);
    Rng rng(7);
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
            in.at(0, y, x) = static_cast<float>(rng.uniform(0, 1));
    const Tensor out = net.forward(in);
    ASSERT_EQ(out.channels(), 10);
    float sum = 0;
    for (int i = 0; i < 10; ++i) {
        EXPECT_GT(out.at(i, 0, 0), 0.0f);
        sum += out.at(i, 0, 0);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
}

TEST(Network, OutputShapeMatchesForward)
{
    const Network net = tinyClassifier();
    const Shape out = net.outputShape({1, 8, 8});
    const Tensor result = net.forward(Tensor(1, 8, 8));
    EXPECT_EQ(out.c, result.channels());
    EXPECT_EQ(out.h, result.height());
    EXPECT_EQ(out.w, result.width());
}

TEST(Network, ProfileCoversEveryLayer)
{
    const Network net = tinyClassifier();
    const NetworkProfile p = net.profile({1, 8, 8});
    ASSERT_EQ(p.layers.size(), net.layerCount());
    for (const auto& l : p.layers) {
        EXPECT_FALSE(l.name.empty());
        EXPECT_GT(l.outputBytes, 0u);
    }
    // Conv and FC dominate the FLOPs of this stack.
    EXPECT_GT(p.flopsOfKind(LayerKind::Conv) +
                  p.flopsOfKind(LayerKind::FullyConnected),
              p.totalFlops() / 2);
}

Tensor
randomInput(Rng& rng)
{
    Tensor in(1, 8, 8);
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
            in.at(0, y, x) = static_cast<float>(rng.uniform(0, 1));
    return in;
}

void
expectBitwiseEqual(const Tensor& a, const Tensor& b)
{
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          a.size() * sizeof(float)),
              0);
}

TEST(Network, ForwardBatchMatchesSerialForwardBitwise)
{
    // The serving layer's batched path must be bitwise-identical to
    // per-stream serial inference for every batch size and thread
    // count -- batching is a scheduling decision, never a numerics
    // one (PR 1's determinism contract extended to batches).
    const Network net = tinyClassifier();
    Rng rng(11);
    std::vector<Tensor> inputs;
    for (int i = 0; i < 8; ++i)
        inputs.push_back(randomInput(rng));

    std::vector<Tensor> serial;
    for (const auto& in : inputs)
        serial.push_back(net.forward(in));

    for (const std::size_t batch : {1u, 2u, 8u}) {
        const std::vector<Tensor> ins(inputs.begin(),
                                      inputs.begin() + batch);
        // Serial context first...
        const auto outsSerial =
            net.forwardBatch(ins, KernelContext::serial());
        ASSERT_EQ(outsSerial.size(), batch);
        for (std::size_t i = 0; i < batch; ++i)
            expectBitwiseEqual(outsSerial[i], serial[i]);
        // ...then every parallel context.
        for (const std::size_t threads : {2u, 5u}) {
            ad::ThreadPool pool(threads);
            const KernelContext ctx{&pool, threads};
            const auto outs = net.forwardBatch(ins, ctx);
            ASSERT_EQ(outs.size(), batch);
            for (std::size_t i = 0; i < batch; ++i)
                expectBitwiseEqual(outs[i], serial[i]);
        }
    }
}

TEST(Network, ForwardBatchEmptyInputYieldsEmptyOutput)
{
    const Network net = tinyClassifier();
    EXPECT_TRUE(
        net.forwardBatch({}, KernelContext::serial()).empty());
}

TEST(NetworkDeathTest, ConvRejectsWrongChannelCount)
{
    Conv2D conv("c", 3, 8, 3, 1, 1);
    EXPECT_DEATH((void)conv.outputShape({2, 16, 16}),
                 "input channels");
}

TEST(NetworkDeathTest, FcRejectsWrongFeatureCount)
{
    FullyConnected fc("f", 10, 4);
    EXPECT_DEATH((void)fc.outputShape({3, 2, 2}), "expected 10");
}

TEST(NetworkDeathTest, PoolRejectsTooSmallInput)
{
    MaxPool pool("p", 4, 4);
    EXPECT_DEATH((void)pool.outputShape({1, 2, 2}), "too small");
}

} // namespace
