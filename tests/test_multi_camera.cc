/**
 * @file
 * Tests for the multi-camera perception rig: fan-rig construction,
 * per-camera replica independence, cross-camera fusion into one world
 * frame, and the replication latency model (perception = max over
 * camera replicas).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "pipeline/multi_camera.hh"
#include "sensors/scenario.hh"
#include "slam/mapping.hh"

namespace {

using namespace ad;
using namespace ad::pipeline;

MultiCameraParams
smallRig(int cameras)
{
    MultiCameraParams p = MultiCameraParams::fanRig(cameras);
    p.detector.inputSize = 160;
    p.detector.width = 0.25;
    p.trackerPool.poolSize = 4;
    p.trackerPool.tracker.cropSize = 32;
    p.trackerPool.tracker.width = 0.1;
    return p;
}

TEST(FanRig, GeneratesRequestedMounts)
{
    const auto p = MultiCameraParams::fanRig(8);
    ASSERT_EQ(p.mounts.size(), 8u);
    EXPECT_DOUBLE_EQ(p.mounts[0].yawOffset, 0.0); // forward camera
    // Symmetric fan: equal numbers of left and right heads.
    int left = 0;
    int right = 0;
    for (std::size_t i = 1; i < p.mounts.size(); ++i) {
        left += p.mounts[i].yawOffset > 0;
        right += p.mounts[i].yawOffset < 0;
    }
    EXPECT_GE(left, 3);
    EXPECT_GE(right, 3);
}

TEST(FanRig, RejectsZeroCameras)
{
    EXPECT_EXIT(MultiCameraParams::fanRig(0),
                ::testing::ExitedWithCode(1), "positive");
}

class MultiCameraTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        rng_ = new Rng(17);
        sensors::ScenarioParams sp;
        sp.roadLength = 150.0;
        sp.vehicles = 4;
        scenario_ = new sensors::Scenario(
            sensors::makeHighwayScenario(*rng_, sp));
        const sensors::Camera surveyCam(sensors::Resolution::HHD);
        map_ = new slam::PriorMap(
            slam::buildPriorMap(scenario_->world, surveyCam, 1));
    }

    static void
    TearDownTestSuite()
    {
        delete map_;
        delete scenario_;
        delete rng_;
        map_ = nullptr;
        scenario_ = nullptr;
        rng_ = nullptr;
    }

    static Rng* rng_;
    static sensors::Scenario* scenario_;
    static slam::PriorMap* map_;
};

Rng* MultiCameraTest::rng_ = nullptr;
sensors::Scenario* MultiCameraTest::scenario_ = nullptr;
slam::PriorMap* MultiCameraTest::map_ = nullptr;

TEST_F(MultiCameraTest, StepsAndLocalizes)
{
    MultiCameraRig rig(map_, smallRig(3));
    EXPECT_EQ(rig.cameraCount(), 3);
    Pose2 ego = scenario_->ego.pose;
    rig.reset(ego, {10, 0});

    sensors::World world = scenario_->world;
    int localized = 0;
    for (int i = 0; i < 6; ++i) {
        world.step(0.1);
        ego.pos.x += 1.0;
        const auto out = rig.step(world, ego, 0.1);
        localized += out.localization.ok;
        EXPECT_GT(out.endToEndMs, 0.0);
        EXPECT_EQ(out.detectionsPerCamera.size(), 3u);
    }
    EXPECT_GE(localized, 4);
    EXPECT_EQ(rig.endToEndLatency().count(), 6u);
}

TEST_F(MultiCameraTest, SideCameraSeesOffAxisActor)
{
    // Plant a vehicle to the left of the ego where only a yawed head
    // can see it; verify a non-forward camera reports the detection.
    sensors::World world;
    world.road() = scenario_->world.road();
    for (const auto& lm : scenario_->world.landmarks())
        world.landmarks().push_back(lm);

    const Pose2 ego(60, world.road().laneCenter(1), 0);
    sensors::Actor side;
    side.cls = sensors::ObjectClass::Vehicle;
    side.motion = sensors::MotionKind::Stationary;
    // 8 m ahead, 7 m to the left: at ~41 degrees off-axis, outside
    // the forward 90-degree FOV's central region but inside a yawed
    // head's view.
    side.pose = Pose2(ego.pos.x + 8.0, ego.pos.y + 7.0, 0);
    world.addActor(side);

    MultiCameraParams params = smallRig(3);
    params.mounts[1].yawOffset = 0.7;  // left head
    params.mounts[2].yawOffset = -0.7; // right head
    MultiCameraRig rig(map_, params);
    rig.reset(ego, {0, 0});
    const auto out = rig.step(world, ego, 0.1);

    EXPECT_GT(out.detectionsPerCamera[1], 0); // left head sees it
    EXPECT_EQ(out.detectionsPerCamera[2], 0); // right head cannot
}

TEST_F(MultiCameraTest, FusedObjectsLandNearTruth)
{
    sensors::World world;
    world.road() = scenario_->world.road();
    for (const auto& lm : scenario_->world.landmarks())
        world.landmarks().push_back(lm);
    const Pose2 ego(60, world.road().laneCenter(1), 0);
    sensors::Actor car;
    car.cls = sensors::ObjectClass::Vehicle;
    car.motion = sensors::MotionKind::Stationary;
    car.pose = Pose2(ego.pos.x + 18.0, ego.pos.y, 0);
    world.addActor(car);

    MultiCameraRig rig(map_, smallRig(2));
    rig.reset(ego, {0, 0});
    // Two steps: localization settles, tracks appear.
    rig.step(world, ego, 0.1);
    const auto out = rig.step(world, ego, 0.1);
    ASSERT_FALSE(out.scene.objects.empty());
    double bestErr = 1e9;
    for (const auto& obj : out.scene.objects)
        bestErr = std::min(bestErr,
                           (obj.worldPos - car.pose.pos).norm());
    EXPECT_LT(bestErr, 3.0);
}

TEST_F(MultiCameraTest, PerceptionLatencyIsMaxOverReplicas)
{
    MultiCameraRig rig(map_, smallRig(2));
    Pose2 ego = scenario_->ego.pose;
    rig.reset(ego, {10, 0});
    sensors::World world = scenario_->world;
    const auto out = rig.step(world, ego, 0.1);
    // The replica model: e2e = max(LOC, max-per-camera perception) +
    // fusion.
    EXPECT_NEAR(out.endToEndMs,
                std::max(out.locMs, out.perceptionMs) + out.fusionMs,
                1e-9);
}

} // namespace
