/**
 * @file
 * Tests for the vehicle constraint models: cooling magnification,
 * storage power, EV range reduction (the Figure 2 anchor points), the
 * gasoline MPG rule of thumb, cabin thermal behavior and prior-map
 * storage extrapolation.
 */

#include <gtest/gtest.h>

#include "vehicle/energy.hh"
#include "vehicle/power.hh"
#include "vehicle/range.hh"
#include "vehicle/storage.hh"
#include "vehicle/thermal.hh"

namespace {

using namespace ad::vehicle;

TEST(Power, CoolingOverheadIs77Percent)
{
    VehiclePowerModel model;
    // COP 1.3: a 100 W system imposes ~77 W of cooling (Section
    // 2.4.5).
    EXPECT_NEAR(model.coolingOverheadW(100.0), 76.9, 0.1);
}

TEST(Power, StorageFollowsSeagateRule)
{
    VehiclePowerModel model;
    // ~8 W per 3 TB; the paper's 41 TB US map: ~110 W (Section 5.3).
    EXPECT_NEAR(model.storagePowerW(3.0), 8.0, 1e-9);
    EXPECT_NEAR(model.storagePowerW(41.0), 109.3, 0.2);
}

TEST(Power, BreakdownAddsUp)
{
    VehiclePowerModel model;
    const PowerBreakdown b = model.systemPower(920.0, 41.0);
    EXPECT_DOUBLE_EQ(b.computeW, 920.0);
    EXPECT_NEAR(b.storageW, 109.3, 0.2);
    EXPECT_NEAR(b.coolingW, (920.0 + b.storageW) / 1.3, 1e-9);
    EXPECT_NEAR(b.totalW(), b.computeW + b.storageW + b.coolingW, 1e-9);
    // The magnification effect: total is nearly double the compute.
    EXPECT_GT(b.totalW(), 1.9 * b.computeW);
}

TEST(Range, BoltPropulsionPower)
{
    EvRangeModel ev;
    // 60 kWh / 238 mi at 56 mph ~= 14.1 kW.
    EXPECT_NEAR(ev.propulsionWatts() / 1e3, 14.1, 0.2);
}

TEST(Range, Figure2AnchorPoints)
{
    // The paper's Figure 2: 1 CPU + 3 GPUs (~920 W compute) reduces
    // range ~6% alone and ~11.5% with storage and cooling.
    EvRangeModel ev;
    VehiclePowerModel power;
    EXPECT_NEAR(ev.rangeReductionPct(920.0), 6.1, 0.5);
    const PowerBreakdown full = power.systemPower(920.0, 41.0);
    EXPECT_NEAR(ev.rangeReductionPct(full.totalW()), 11.5, 0.8);
}

TEST(Range, ReductionIsMonotoneAndBounded)
{
    EvRangeModel ev;
    double prev = 0;
    for (double w = 0; w <= 5000; w += 250) {
        const double r = ev.rangeReductionPct(w);
        EXPECT_GE(r, prev);
        EXPECT_LT(r, 100.0);
        prev = r;
    }
    EXPECT_DOUBLE_EQ(ev.rangeReductionPct(0), 0.0);
}

TEST(Range, RangeMilesConsistentWithReduction)
{
    EvRangeModel ev;
    const double miles = ev.rangeMiles(1000.0);
    const double pct = ev.rangeReductionPct(1000.0);
    EXPECT_NEAR(miles, 238.0 * (1.0 - pct / 100.0), 1e-6);
}

TEST(Mpg, RuleOfThumbMatchesPaperExample)
{
    // 400 W on a 31 MPG 2017 Audi A4: one MPG, i.e. 3.23% (Section
    // 2.4.5).
    GasMpgModel gas(31.0);
    EXPECT_NEAR(gas.mpg(400.0), 30.0, 1e-9);
    EXPECT_NEAR(gas.mpgReductionPct(400.0), 3.23, 0.01);
    EXPECT_DOUBLE_EQ(gas.mpg(0.0), 31.0);
}

TEST(Mpg, FloorsAtZero)
{
    GasMpgModel gas(20.0);
    EXPECT_DOUBLE_EQ(gas.mpg(9000.0), 0.0);
    EXPECT_DOUBLE_EQ(gas.mpgReductionPct(9000.0), 100.0);
}

TEST(Thermal, CabinPlacementIsForced)
{
    CabinThermalModel thermal;
    // +105 C ambient vs 75 C chip limit: must be in the cabin.
    EXPECT_TRUE(thermal.requiresCabinPlacement());
}

TEST(Thermal, OneKwHeatsTenDegreesPerMinute)
{
    CabinThermalModel thermal;
    EXPECT_NEAR(thermal.heatRateCPerMin(1000.0), 10.0, 1e-9);
    EXPECT_NEAR(thermal.minutesToHeatBy(1000.0, 10.0), 1.0, 1e-9);
    EXPECT_NEAR(thermal.minutesToHeatBy(500.0, 10.0), 2.0, 1e-9);
    EXPECT_GT(thermal.minutesToHeatBy(0.0, 10.0), 1e20);
}

TEST(Thermal, SteadyStateCoolingEqualsLoad)
{
    CabinThermalModel thermal;
    EXPECT_DOUBLE_EQ(thermal.requiredCoolingCapacityW(750.0), 750.0);
}

TEST(Storage, PaperImpliedDensity)
{
    MapStorageModel storage;
    // 41 TB over 4.18M miles: ~6.1 MB per km.
    EXPECT_NEAR(storage.paperImpliedBytesPerKm() / 1e6, 6.1, 0.2);
}

TEST(Storage, ExtrapolationRoundTrip)
{
    MapStorageModel storage;
    const double density = storage.paperImpliedBytesPerKm();
    EXPECT_NEAR(storage.usMapTb(density), 41.0, 0.01);
    EXPECT_NEAR(storage.densityRatioVsPaper(density), 1.0, 1e-9);
}

TEST(Energy, PerFrameAndPerMileIdentities)
{
    EnergyModel model;
    // 500 W at 10 fps: 50 J per frame.
    const auto r = model.report(500.0, 10.0, 100.0);
    EXPECT_NEAR(r.joulesPerFrame, 50.0, 1e-9);
    // 500 W at 56 mph: ~8.9 Wh per mile.
    EXPECT_NEAR(r.whPerMile, 500.0 / 56.0, 1e-9);
    EXPECT_NEAR(r.tripKwh, r.whPerMile * 100.0 / 1e3, 1e-12);
}

TEST(Energy, BatteryShareMatchesRangeMath)
{
    EnergyModel model;
    // Over the full 238-mile range, a 2.5 kW system consumes
    // 2.5 kW * (238/56) h = 10.6 kWh of the 60 kWh pack: ~17.7%.
    const auto r = model.report(2500.0);
    EXPECT_NEAR(r.batterySharePct, 2.5 * 238.0 / 56.0 / 60.0 * 100.0,
                0.01);
}

TEST(Energy, ScalesLinearlyInPower)
{
    EnergyModel model;
    const auto a = model.report(400.0);
    const auto b = model.report(800.0);
    EXPECT_NEAR(b.joulesPerFrame, 2 * a.joulesPerFrame, 1e-9);
    EXPECT_NEAR(b.whPerMile, 2 * a.whPerMile, 1e-9);
}

TEST(Storage, SparseOrbMapIsFarSmaller)
{
    // Our sparse ORB maps measure a few hundred KB per km; the
    // paper's dense prior maps are thousands of times larger.
    MapStorageModel storage;
    const double sparseBytesPerKm = 300e3;
    EXPECT_LT(storage.usMapTb(sparseBytesPerKm), 3.0);
    EXPECT_GT(storage.densityRatioVsPaper(sparseBytesPerKm), 10.0);
}

} // namespace
