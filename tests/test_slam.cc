/**
 * @file
 * Tests for the localization substrate: prior-map indexing and
 * serialization, rigid-2D/RANSAC pose solving under noise sweeps, map
 * building from a survey drive, and end-to-end localization accuracy
 * including relocalization recovery.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/parallel_for.hh"
#include "sensors/scenario.hh"
#include "slam/localizer.hh"
#include "slam/mapping.hh"

namespace {

using namespace ad;
using namespace ad::slam;
using sensors::Camera;
using sensors::Resolution;
using sensors::Scenario;
using vision::Descriptor;

Descriptor
randomDesc(Rng& rng)
{
    Descriptor d;
    for (auto& w : d.words)
        w = rng();
    return d;
}

TEST(PriorMap, InsertAndRadiusQuery)
{
    Rng rng(1);
    PriorMap map;
    map.insert({0, 0}, 1.0f, randomDesc(rng));
    map.insert({5, 0}, 1.0f, randomDesc(rng));
    map.insert({50, 0}, 1.0f, randomDesc(rng));
    EXPECT_EQ(map.size(), 3u);
    EXPECT_EQ(map.queryRadius({0, 0}, 10.0).size(), 2u);
    EXPECT_EQ(map.queryRadius({0, 0}, 100.0).size(), 3u);
    EXPECT_EQ(map.queryRadius({1000, 0}, 10.0).size(), 0u);
}

TEST(PriorMap, QueryRadiusIsExactBoundary)
{
    Rng rng(2);
    PriorMap map;
    map.insert({3, 4}, 0.0f, randomDesc(rng)); // distance 5 from origin
    EXPECT_EQ(map.queryRadius({0, 0}, 5.0).size(), 1u);
    EXPECT_EQ(map.queryRadius({0, 0}, 4.99).size(), 0u);
}

TEST(PriorMap, QueryAcrossNegativeCoordinates)
{
    Rng rng(3);
    PriorMap map;
    map.insert({-15.0, -3.0}, 0.0f, randomDesc(rng));
    map.insert({-25.0, -3.0}, 0.0f, randomDesc(rng));
    EXPECT_EQ(map.queryRadius({-15, -3}, 1.0).size(), 1u);
    EXPECT_EQ(map.queryRadius({-20, -3}, 6.0).size(), 2u);
}

TEST(PriorMap, FindSimilarUsesDescriptorGate)
{
    Rng rng(4);
    PriorMap map;
    const Descriptor d = randomDesc(rng);
    map.insert({10, 10}, 0.0f, d);
    EXPECT_GE(map.findSimilar({10.1, 10.0}, 1.0, d, 10), 0);
    Descriptor far = d;
    far.words[0] = ~far.words[0]; // 64 bits away
    EXPECT_EQ(map.findSimilar({10.1, 10.0}, 1.0, far, 10), -1);
    EXPECT_EQ(map.findSimilar({90.0, 10.0}, 1.0, d, 10), -1);
}

TEST(PriorMap, SerializationRoundTrip)
{
    Rng rng(5);
    PriorMap map;
    for (int i = 0; i < 100; ++i)
        map.insert({rng.uniform(0, 500), rng.uniform(-5, 15)},
                   static_cast<float>(rng.uniform(0, 3)), randomDesc(rng));
    std::stringstream ss;
    map.save(ss);
    const PriorMap loaded = PriorMap::load(ss);
    ASSERT_EQ(loaded.size(), map.size());
    for (std::size_t i = 0; i < map.size(); ++i) {
        EXPECT_EQ(loaded.point(i).id, map.point(i).id);
        EXPECT_DOUBLE_EQ(loaded.point(i).pos.x, map.point(i).pos.x);
        EXPECT_EQ(loaded.point(i).desc, map.point(i).desc);
        EXPECT_FLOAT_EQ(loaded.point(i).height, map.point(i).height);
    }
    // Loaded map answers queries identically.
    EXPECT_EQ(loaded.queryRadius({250, 5}, 50).size(),
              map.queryRadius({250, 5}, 50).size());
}

TEST(PriorMap, StorageBytesMatchesSerializedSize)
{
    Rng rng(6);
    PriorMap map;
    for (int i = 0; i < 37; ++i)
        map.insert({static_cast<double>(i), 0}, 0.0f, randomDesc(rng));
    std::stringstream ss;
    map.save(ss);
    EXPECT_EQ(map.storageBytes(), ss.str().size());
}

TEST(PoseSolver, ExactRecoveryFromCleanData)
{
    Rng rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        const Pose2 truth(rng.uniform(-100, 100), rng.uniform(-100, 100),
                          rng.uniform(-M_PI, M_PI));
        std::vector<Correspondence> corr;
        for (int i = 0; i < 10; ++i) {
            const Vec2 local{rng.uniform(2, 50), rng.uniform(-20, 20)};
            corr.push_back({truth.transform(local), local, 1.0});
        }
        Pose2 solved;
        ASSERT_TRUE(solveRigid2D(corr, solved));
        EXPECT_NEAR(solved.pos.x, truth.pos.x, 1e-6);
        EXPECT_NEAR(solved.pos.y, truth.pos.y, 1e-6);
        EXPECT_NEAR(wrapAngle(solved.theta - truth.theta), 0.0, 1e-6);
    }
}

TEST(PoseSolver, DegenerateInputsRejected)
{
    Pose2 pose;
    EXPECT_FALSE(solveRigid2D({}, pose));
    EXPECT_FALSE(solveRigid2D({{{1, 1}, {0, 0}, 1.0}}, pose));
    // All local points coincident: rotation unobservable.
    std::vector<Correspondence> coincident = {
        {{5, 5}, {1, 1}, 1.0}, {{5, 5}, {1, 1}, 1.0}};
    EXPECT_FALSE(solveRigid2D(coincident, pose));
}

/** Noise sweep: RANSAC recovers the pose despite outliers. */
class RansacNoiseTest : public ::testing::TestWithParam<double> {};

TEST_P(RansacNoiseTest, RecoversUnderOutlierFraction)
{
    const double outlierFraction = GetParam();
    Rng rng(11 + static_cast<std::uint64_t>(outlierFraction * 100));
    const Pose2 truth(42.0, 7.0, 0.15);
    std::vector<Correspondence> corr;
    for (int i = 0; i < 60; ++i) {
        const Vec2 local{rng.uniform(3, 60), rng.uniform(-25, 25)};
        Vec2 world = truth.transform(local);
        if (rng.uniform() < outlierFraction) {
            world.x += rng.uniform(-40, 40);
            world.y += rng.uniform(-40, 40);
        } else {
            world.x += rng.normal(0, 0.05);
            world.y += rng.normal(0, 0.05);
        }
        corr.push_back({world, local, 1.0});
    }
    RansacParams params{200, 0.5, 10};
    const RansacResult result = ransacPose(corr, params, rng);
    ASSERT_TRUE(result.ok);
    EXPECT_NEAR(result.pose.pos.x, truth.pos.x, 0.15);
    EXPECT_NEAR(result.pose.pos.y, truth.pos.y, 0.15);
    EXPECT_NEAR(wrapAngle(result.pose.theta - truth.theta), 0.0, 0.01);
    EXPECT_GE(result.inliers, 10);
}

INSTANTIATE_TEST_SUITE_P(OutlierFractions, RansacNoiseTest,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6));

TEST(RansacPose, ParallelIdenticalToSerial)
{
    // The pool-sharded counting pass must select the same hypothesis,
    // pose and inlier set as serial execution, from the same rng state.
    Rng rngA(21);
    Rng rngB(21);
    const Pose2 truth(10.0, -4.0, -0.3);
    std::vector<Correspondence> corr;
    for (int i = 0; i < 80; ++i) {
        const Vec2 local{rngA.uniform(3, 60), rngA.uniform(-25, 25)};
        Vec2 world = truth.transform(local);
        if (i % 4 == 0) {
            world.x += rngA.uniform(-30, 30);
            world.y += rngA.uniform(-30, 30);
        }
        corr.push_back({world, local, 1.0});
    }
    rngB = rngA; // identical stream position for both solves
    RansacParams params{150, 0.5, 8};
    const RansacResult serial = ransacPose(corr, params, rngA);
    const RansacResult parallel = ransacPose(
        corr, params, rngB, &ad::sharedWorkerPool(), 4);
    ASSERT_EQ(serial.ok, parallel.ok);
    ASSERT_TRUE(serial.ok);
    EXPECT_EQ(serial.pose.pos.x, parallel.pose.pos.x);
    EXPECT_EQ(serial.pose.pos.y, parallel.pose.pos.y);
    EXPECT_EQ(serial.pose.theta, parallel.pose.theta);
    EXPECT_EQ(serial.inliers, parallel.inliers);
    EXPECT_EQ(serial.inlierIndices, parallel.inlierIndices);
    // Both solvers must leave the rng at the same position too.
    EXPECT_EQ(rngA(), rngB());
}

TEST(RansacPose, FailsGracefullyOnPureNoise)
{
    Rng rng(13);
    std::vector<Correspondence> corr;
    for (int i = 0; i < 30; ++i)
        corr.push_back({{rng.uniform(-100, 100), rng.uniform(-100, 100)},
                        {rng.uniform(2, 50), rng.uniform(-20, 20)},
                        1.0});
    RansacParams params{100, 0.3, 20};
    EXPECT_FALSE(ransacPose(corr, params, rng).ok);
}

class SlamIntegrationTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        rng_ = new Rng(21);
        sensors::ScenarioParams sp;
        sp.roadLength = 200.0;
        scenario_ = new Scenario(sensors::makeHighwayScenario(*rng_, sp));
        camera_ = new Camera(Resolution::HHD);
        MappingParams mp;
        mp.orb.fast.maxKeypoints = 600;
        map_ = new PriorMap(
            buildPriorMap(scenario_->world, *camera_, 1, mp));
    }

    static void
    TearDownTestSuite()
    {
        delete map_;
        delete camera_;
        delete scenario_;
        delete rng_;
        map_ = nullptr;
        camera_ = nullptr;
        scenario_ = nullptr;
        rng_ = nullptr;
    }

    static Rng* rng_;
    static Scenario* scenario_;
    static Camera* camera_;
    static PriorMap* map_;
};

Rng* SlamIntegrationTest::rng_ = nullptr;
Scenario* SlamIntegrationTest::scenario_ = nullptr;
Camera* SlamIntegrationTest::camera_ = nullptr;
PriorMap* SlamIntegrationTest::map_ = nullptr;

TEST_F(SlamIntegrationTest, SurveyProducesDenseMap)
{
    EXPECT_GT(map_->size(), 500u);
    EXPECT_GT(map_->pointsPerMeter(), 2.0);
    // Some features anchored above ground (landmark boards).
    int elevated = 0;
    for (const auto& p : map_->points())
        elevated += p.height > 0.3f;
    EXPECT_GT(elevated, static_cast<int>(map_->size()) / 10);
}

TEST_F(SlamIntegrationTest, LocalizesDriveWithinHalfMeter)
{
    // Drive between survey poses (offset lane position) and check the
    // estimated trajectory against ground truth.
    sensors::World drive;
    drive.road() = scenario_->world.road();
    for (const auto& lm : scenario_->world.landmarks())
        drive.landmarks().push_back(lm);

    LocalizerParams lp;
    Localizer loc(map_, camera_, lp, 99);
    const double y = drive.road().laneCenter(1) + 0.6; // off-survey line
    Pose2 ego(10.0, y, 0.0);
    loc.reset(ego, {10.0, 0.0});

    int solved = 0;
    double worstErr = 0.0;
    double sumErr = 0.0;
    const int frames = 25;
    for (int i = 0; i < frames; ++i) {
        ego.pos.x += 1.0; // 10 m/s at 10 fps
        const sensors::Frame frame = camera_->render(drive, ego);
        const LocResult r = loc.localize(frame.image, 0.1);
        if (r.ok) {
            ++solved;
            const double err = r.pose.distanceTo(ego);
            worstErr = std::max(worstErr, err);
            sumErr += err;
        }
    }
    EXPECT_GE(solved, frames * 3 / 4);
    // Sub-meter localization at HHD survey resolution; the paper's
    // decimeter figure assumes survey-grade imagery, and accuracy here
    // tightens with camera resolution (pixel-quantized depth).
    EXPECT_LT(sumErr / solved, 0.5);
    EXPECT_LT(worstErr, 1.5);
}

TEST_F(SlamIntegrationTest, RelocalizationRecoversFromBadPrediction)
{
    sensors::World drive;
    drive.road() = scenario_->world.road();
    for (const auto& lm : scenario_->world.landmarks())
        drive.landmarks().push_back(lm);

    LocalizerParams lp;
    Localizer loc(map_, camera_, lp, 7);
    const Pose2 truth(60.0, drive.road().laneCenter(1), 0.0);
    // Initialize the motion model far from the truth: the narrow
    // search fails and the localizer must fall back to the wide one.
    loc.reset(Pose2(truth.pos.x - 60.0, truth.pos.y, 0.0));
    const sensors::Frame frame = camera_->render(drive, truth);
    const LocResult r = loc.localize(frame.image, 0.1);
    EXPECT_TRUE(r.relocalized);
    ASSERT_TRUE(r.ok);
    EXPECT_LT(r.pose.distanceTo(truth), 1.0);
    EXPECT_EQ(loc.relocalizationCount(), 1);
}

TEST_F(SlamIntegrationTest, RelocalizationCostsMoreThanTracking)
{
    sensors::World drive;
    drive.road() = scenario_->world.road();
    for (const auto& lm : scenario_->world.landmarks())
        drive.landmarks().push_back(lm);

    LocalizerParams lp;
    const Pose2 truth(60.0, drive.road().laneCenter(1), 0.0);
    const sensors::Frame frame = camera_->render(drive, truth);

    Localizer tracking(map_, camera_, lp, 3);
    tracking.reset(truth);
    const LocResult fast = tracking.localize(frame.image, 0.1);

    Localizer relocing(map_, camera_, lp, 3);
    relocing.reset(Pose2(truth.pos.x - 60.0, truth.pos.y, 0.0));
    const LocResult slow = relocing.localize(frame.image, 0.1);

    ASSERT_TRUE(fast.ok);
    ASSERT_TRUE(slow.ok);
    // The widened search considers more candidates -- the mechanism
    // behind LOC's heavy tail in Figure 10b.
    EXPECT_GT(slow.candidates, fast.candidates);
    EXPECT_GT(slow.timings.relocMs, 0.0);
    EXPECT_EQ(fast.timings.relocMs, 0.0);
}

TEST_F(SlamIntegrationTest, FeatureExtractionDominatesLocCycles)
{
    // Figure 7: FE is ~86% of LOC. Assert it dominates (>60%) in our
    // implementation on a representative frame.
    sensors::World drive;
    drive.road() = scenario_->world.road();
    for (const auto& lm : scenario_->world.landmarks())
        drive.landmarks().push_back(lm);

    LocalizerParams lp;
    Localizer loc(map_, camera_, lp, 5);
    Pose2 ego(30.0, drive.road().laneCenter(1), 0.0);
    loc.reset(ego, {10, 0});
    double fe = 0;
    double total = 0;
    for (int i = 0; i < 10; ++i) {
        ego.pos.x += 1.0;
        const sensors::Frame frame = camera_->render(drive, ego);
        const LocResult r = loc.localize(frame.image, 0.1);
        fe += r.timings.feMs;
        total += r.timings.totalMs;
    }
    EXPECT_GT(fe / total, 0.6);
}

} // namespace
