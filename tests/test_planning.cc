/**
 * @file
 * Tests for the planning subsystem: trajectory utilities, state-lattice
 * A* (admissibility, obstacle avoidance, budget behavior), the
 * conformal spatiotemporal lattice (lane changes around slower traffic,
 * temporal prediction, blocked-corridor stops), the rule-based mission
 * planner (routing, deviation replans) and pure-pursuit control.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "planning/conformal.hh"
#include "planning/control.hh"
#include "planning/lattice.hh"
#include "planning/mission.hh"
#include "planning/motion_planner.hh"

namespace {

using namespace ad;
using namespace ad::planning;

TEST(Trajectory, LengthAndClosest)
{
    Trajectory t;
    t.points = {{{0, 0}, 0, 1, 0}, {{3, 0}, 0, 1, 3}, {{3, 4}, 0, 1, 7}};
    EXPECT_DOUBLE_EQ(t.length(), 7.0);
    EXPECT_EQ(t.closestIndex({2.9, 0.1}), 1u);
    // Closest approach is to the vertical segment: point (3, 2).
    EXPECT_NEAR(t.distanceTo({1.5, 2.0}), 1.5, 1e-9);
    EXPECT_NEAR(t.distanceTo({3.0, 2.0}), 0.0, 1e-9);
}

TEST(Lattice, StraightLineWhenUnobstructed)
{
    LatticeStats stats;
    const Trajectory t =
        planLattice(Pose2(0, 0, 0), {20, 0}, {}, {}, &stats);
    ASSERT_TRUE(stats.found);
    ASSERT_FALSE(t.empty());
    // Path length should be near the straight-line distance.
    EXPECT_LT(t.length(), 25.0);
    EXPECT_NEAR(t.points.back().pos.x, 20.0, 2.5);
    EXPECT_NEAR(t.points.back().pos.y, 0.0, 2.5);
}

TEST(Lattice, AvoidsObstacleWall)
{
    // A wall of obstacles with a gap forces a detour through the gap.
    std::vector<Obstacle> wall;
    for (double y = -12; y <= 12; y += 1.5)
        if (std::fabs(y - 8.0) > 2.5)
            wall.push_back({{10, y}, 1.0});
    LatticeStats stats;
    const Trajectory t =
        planLattice(Pose2(0, 0, 0), {20, 0}, wall, {}, &stats);
    ASSERT_TRUE(stats.found);
    // The path must clear every obstacle.
    for (const auto& p : t.points)
        for (const auto& o : wall)
            EXPECT_GT((p.pos - o.pos).norm(), o.radius);
    // And must be longer than the straight shot.
    EXPECT_GT(t.length(), 22.0);
}

TEST(Lattice, UnreachableGoalReturnsEmpty)
{
    // Box the goal in completely.
    std::vector<Obstacle> box;
    for (double a = 0; a < 2 * M_PI; a += 0.2)
        box.push_back({{20 + 4 * std::cos(a), 4 * std::sin(a)}, 1.2});
    LatticeParams params;
    params.maxExpansions = 20000;
    LatticeStats stats;
    const Trajectory t =
        planLattice(Pose2(0, 0, 0), {20, 0}, box, params, &stats);
    EXPECT_FALSE(stats.found);
    EXPECT_TRUE(t.empty());
    EXPECT_LE(stats.expansions, params.maxExpansions);
}

TEST(Lattice, CostIncludesTurnPenalty)
{
    LatticeStats straight;
    planLattice(Pose2(0, 0, 0), {20, 0}, {}, {}, &straight);
    LatticeStats offset;
    planLattice(Pose2(0, 0, 0), {20, 10}, {}, {}, &offset);
    EXPECT_GT(offset.cost, straight.cost);
}

TEST(Conformal, KeepsLaneWhenClear)
{
    const Trajectory t = planConformal(Pose2(0, 5.25, 0), 5.25, {});
    ASSERT_FALSE(t.empty());
    for (const auto& p : t.points)
        EXPECT_NEAR(p.pos.y, 5.25, 0.1);
    EXPECT_GT(t.points.back().speed, 0);
}

TEST(Conformal, SwervesAroundStoppedVehicle)
{
    // A stopped car 20 m ahead in our lane.
    std::vector<PredictedObstacle> obstacles = {{{20, 5.25}, {0, 0}, 1.5}};
    ConformalStats stats;
    const Trajectory t =
        planConformal(Pose2(0, 5.25, 0), 5.25, obstacles, {}, &stats);
    ASSERT_FALSE(t.empty());
    EXPECT_FALSE(stats.blocked);
    // The trajectory must shift laterally near the obstacle.
    double maxOffset = 0;
    for (const auto& p : t.points)
        if (std::fabs(p.pos.x - 20) < 6)
            maxOffset = std::max(maxOffset, std::fabs(p.pos.y - 5.25));
    EXPECT_GT(maxOffset, 1.0);
    // And never get within the collision distance.
    for (const auto& p : t.points)
        EXPECT_GT((p.pos - Vec2{20, 5.25}).norm(), 1.2);
}

TEST(Conformal, TemporalPredictionIgnoresDepartingVehicle)
{
    // A vehicle currently 15 m ahead but moving away at 20 m/s will
    // not occupy any station when we arrive -> stay in lane.
    std::vector<PredictedObstacle> departing = {
        {{15, 5.25}, {20, 0}, 1.5}};
    const Trajectory t =
        planConformal(Pose2(0, 5.25, 0), 5.25, departing);
    ASSERT_FALSE(t.empty());
    for (const auto& p : t.points)
        EXPECT_NEAR(p.pos.y, 5.25, 0.3);
}

TEST(Conformal, OncomingVehicleForcesEarlierAvoidance)
{
    // A slow oncoming vehicle in our lane: the predicted encounter
    // point is closer than its current position, and it lingers in
    // the corridor long enough that swerving beats staying.
    std::vector<PredictedObstacle> oncoming = {
        {{45, 5.25}, {-5, 0}, 1.5}};
    ConformalParams params;
    params.obstacleWeight = 150.0;
    params.safeDistance = 4.5;
    const Trajectory t =
        planConformal(Pose2(0, 5.25, 0), 5.25, oncoming, params);
    ASSERT_FALSE(t.empty());
    double maxOffset = 0;
    for (const auto& p : t.points)
        maxOffset = std::max(maxOffset, std::fabs(p.pos.y - 5.25));
    EXPECT_GT(maxOffset, 1.0);
}

TEST(Conformal, SlowsBehindLeadVehicleAcrossBlockedLanes)
{
    // Slow lead directly ahead and both adjacent corridors occupied:
    // swerving is expensive, so the plan stays in lane at reduced,
    // gap-appropriate speed (car following).
    std::vector<PredictedObstacle> traffic = {
        {{18, 5.25}, {5, 0}, 1.5},   // slow lead, our lane
        {{15, 1.75}, {5, 0}, 1.5},   // right lane occupied
        {{15, 8.75}, {5, 0}, 1.5},   // left lane occupied
        {{30, 1.75}, {5, 0}, 1.5},
        {{30, 8.75}, {5, 0}, 1.5},
    };
    ConformalParams params;
    params.cruiseSpeed = 25.0;
    const Trajectory t =
        planConformal(Pose2(0, 5.25, 0), 5.25, traffic, params);
    ASSERT_FALSE(t.empty());
    // Later stations approach the lead: commanded speed well below
    // cruise and at least the lead's speed floor.
    double minSpeed = 1e9;
    for (const auto& p : t.points)
        minSpeed = std::min(minSpeed, p.speed);
    EXPECT_LT(minSpeed, 15.0);
    EXPECT_GE(minSpeed, 4.0); // never demands reversing
}

TEST(Conformal, CruisesAtFullSpeedOnFreeRoad)
{
    ConformalParams params;
    params.cruiseSpeed = 22.0;
    const Trajectory t = planConformal(Pose2(0, 5.25, 0), 5.25, {},
                                       params);
    for (const auto& p : t.points)
        EXPECT_DOUBLE_EQ(p.speed, 22.0);
}

TEST(Conformal, AdaptSpeedOffRestoresConstantProfile)
{
    std::vector<PredictedObstacle> lead = {{{18, 5.25}, {5, 0}, 1.5}};
    ConformalParams params;
    params.adaptSpeed = false;
    const Trajectory t =
        planConformal(Pose2(0, 5.25, 0), 5.25, lead, params);
    for (const auto& p : t.points)
        EXPECT_DOUBLE_EQ(p.speed, params.cruiseSpeed);
}

TEST(Conformal, FullyBlockedCorridorStops)
{
    // A wall across the whole corridor at every time step.
    std::vector<PredictedObstacle> wall;
    for (double y = 0; y <= 11; y += 1.0)
        wall.push_back({{10, y}, {0, 0}, 2.0});
    for (double y = 0; y <= 11; y += 1.0)
        wall.push_back({{15, y}, {0, 0}, 2.0});
    ConformalStats stats;
    const Trajectory t =
        planConformal(Pose2(0, 5.25, 0), 5.25, wall, {}, &stats);
    EXPECT_TRUE(stats.blocked);
    ASSERT_EQ(t.points.size(), 1u);
    EXPECT_DOUBLE_EQ(t.points[0].speed, 0.0);
}

RoadGraph
gridGraph()
{
    // 3x3 grid, 100 m spacing, bidirectional edges.
    RoadGraph g;
    for (int y = 0; y < 3; ++y)
        for (int x = 0; x < 3; ++x)
            g.addNode({x * 100.0, y * 100.0});
    for (int y = 0; y < 3; ++y)
        for (int x = 0; x < 3; ++x) {
            const int id = y * 3 + x;
            if (x < 2)
                g.addBidirectional(id, id + 1);
            if (y < 2)
                g.addBidirectional(id, id + 3);
        }
    return g;
}

TEST(Mission, RoutesShortestTimePath)
{
    const RoadGraph g = gridGraph();
    MissionPlanner planner(&g);
    const Route r = planner.plan({0, 0}, {200, 200});
    ASSERT_FALSE(r.empty());
    EXPECT_EQ(r.nodeIds.front(), 0);
    EXPECT_EQ(r.nodeIds.back(), 8);
    EXPECT_EQ(r.nodeIds.size(), 5u); // 4 edges of 100 m
    EXPECT_GT(r.travelTime, 0);
}

TEST(Mission, NoDeviationOnRoute)
{
    const RoadGraph g = gridGraph();
    MissionPlanner planner(&g);
    planner.plan({0, 0}, {200, 0});
    EXPECT_FALSE(planner.checkDeviation({50, 0}));
    EXPECT_FALSE(planner.checkDeviation({150, 3}));
    EXPECT_EQ(planner.replanCount(), 0);
}

TEST(Mission, DeviationTriggersSingleReplan)
{
    const RoadGraph g = gridGraph();
    MissionPlanner planner(&g);
    planner.plan({0, 0}, {200, 0});
    // Wander 60 m off the route: replan from here.
    EXPECT_TRUE(planner.checkDeviation({100, 60}));
    EXPECT_EQ(planner.replanCount(), 1);
    // The new route starts near the deviation point.
    EXPECT_EQ(planner.route().nodeIds.front(),
              g.nearestNode({100, 60}));
    // Back on the new route: no further replanning.
    EXPECT_FALSE(planner.checkDeviation(
        g.node(planner.route().nodeIds[0]).pos));
}

TEST(Mission, TurnPenaltyPrefersStraighterRoute)
{
    // Two routes of equal length: straight along an edge chain vs
    // zig-zag; the rule-based cost must prefer the straight one.
    RoadGraph g;
    const int a = g.addNode({0, 0});
    const int b = g.addNode({100, 0});
    const int c = g.addNode({200, 0});
    const int d = g.addNode({100, 100});
    g.addBidirectional(a, b);
    g.addBidirectional(b, c);
    g.addBidirectional(a, d);
    g.addBidirectional(d, c); // detour, same total length? longer.
    MissionPlanner planner(&g);
    const Route r = planner.plan({0, 0}, {200, 0});
    ASSERT_EQ(r.nodeIds.size(), 3u);
    EXPECT_EQ(r.nodeIds[1], b);
}

TEST(MotionPlannerFacade, StructuredAreaUsesConformal)
{
    MotionPlanner planner;
    MotionRequest req;
    req.start = Pose2(0, 5.25, 0);
    req.area = DrivingArea::Structured;
    const MotionResult result = planner.plan(req);
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(result.areaUsed, DrivingArea::Structured);
    // Conformal output: stations along +x at the cruise speed.
    ASSERT_GT(result.trajectory.points.size(), 5u);
    EXPECT_GT(result.trajectory.points.back().pos.x, 20.0);
}

TEST(MotionPlannerFacade, OpenAreaUsesLattice)
{
    MotionPlanner planner;
    MotionRequest req;
    req.start = Pose2(0, 0, 0);
    req.area = DrivingArea::OpenArea;
    req.goal = {15, 8};
    req.obstacles.push_back({{8, 4}, {0, 0}, 1.0});
    const MotionResult result = planner.plan(req);
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(result.areaUsed, DrivingArea::OpenArea);
    ASSERT_FALSE(result.trajectory.empty());
    EXPECT_NEAR(result.trajectory.points.back().pos.x, 15.0, 3.0);
    EXPECT_NEAR(result.trajectory.points.back().pos.y, 8.0, 3.0);
    // The static disc converted from the predicted obstacle is
    // respected.
    for (const auto& p : result.trajectory.points)
        EXPECT_GT((p.pos - Vec2{8, 4}).norm(), 1.0);
}

TEST(MotionPlannerFacade, BlockedStructuredCorridorReportsInfeasible)
{
    MotionPlanner planner;
    MotionRequest req;
    req.start = Pose2(0, 5.25, 0);
    req.area = DrivingArea::Structured;
    for (double y = 0; y <= 11; y += 1.0) {
        req.obstacles.push_back({{10, y}, {0, 0}, 2.0});
        req.obstacles.push_back({{15, y}, {0, 0}, 2.0});
    }
    const MotionResult result = planner.plan(req);
    EXPECT_FALSE(result.feasible);
    // Emergency stop trajectory.
    ASSERT_EQ(result.trajectory.points.size(), 1u);
    EXPECT_DOUBLE_EQ(result.trajectory.points[0].speed, 0.0);
}

TEST(Control, PurePursuitSteersTowardOffsetPath)
{
    Trajectory t;
    for (int i = 0; i <= 20; ++i)
        t.points.push_back({{i * 2.0, 3.0}, 0, 10.0, i * 0.2});
    VehicleController ctrl;
    VehicleState state;
    state.pose = Pose2(0, 0, 0);
    state.speed = 5.0;
    const ControlCommand cmd = ctrl.control(state, t, 0.1);
    EXPECT_GT(cmd.steering, 0.01); // steer left toward y = 3
    EXPECT_GT(cmd.acceleration, 0.0); // accelerate toward 10 m/s
}

TEST(Control, ConvergesToStraightPath)
{
    Trajectory t;
    for (int i = 0; i <= 100; ++i)
        t.points.push_back({{i * 2.0, 2.0}, 0, 8.0, 0.0});
    VehicleController ctrl;
    VehicleState state;
    state.pose = Pose2(0, 0, 0);
    state.speed = 8.0;
    for (int step = 0; step < 200; ++step) {
        const ControlCommand cmd = ctrl.control(state, t, 0.05);
        state = stepBicycleModel(state, cmd, 0.05);
    }
    EXPECT_NEAR(state.pose.pos.y, 2.0, 0.3);
    EXPECT_NEAR(state.speed, 8.0, 0.5);
    EXPECT_NEAR(state.pose.theta, 0.0, 0.05);
}

TEST(Control, StopsAtEndOfPath)
{
    // Short path: the controller must brake to a stop at the final
    // point instead of sailing past it at cruise speed.
    Trajectory t;
    for (int i = 0; i <= 10; ++i)
        t.points.push_back({{i * 2.0, 0.0}, 0, 8.0, 0.0});
    VehicleController ctrl;
    VehicleState state;
    state.pose = Pose2(0, 0, 0);
    state.speed = 8.0;
    double maxX = 0;
    for (int step = 0; step < 400; ++step) {
        const ControlCommand cmd = ctrl.control(state, t, 0.05);
        state = stepBicycleModel(state, cmd, 0.05);
        maxX = std::max(maxX, state.pose.pos.x);
    }
    EXPECT_LT(state.speed, 0.5);
    EXPECT_LT(maxX, 24.0);  // end of path is at x = 20
    EXPECT_NEAR(state.pose.pos.x, 20.0, 4.0);
}

TEST(Control, EmptyTrajectoryCommandsNothing)
{
    VehicleController ctrl;
    VehicleState state;
    state.speed = 10;
    const ControlCommand cmd = ctrl.control(state, Trajectory{}, 0.1);
    EXPECT_DOUBLE_EQ(cmd.steering, 0.0);
    EXPECT_DOUBLE_EQ(cmd.acceleration, 0.0);
}

TEST(Control, BicycleModelStraightLine)
{
    VehicleState state;
    state.pose = Pose2(0, 0, 0);
    state.speed = 10;
    const VehicleState next = stepBicycleModel(state, {0.0, 0.0}, 0.5);
    EXPECT_NEAR(next.pose.pos.x, 5.0, 1e-9);
    EXPECT_NEAR(next.pose.pos.y, 0.0, 1e-9);
    EXPECT_DOUBLE_EQ(next.speed, 10.0);
}

TEST(Control, BicycleModelTurnsWithSteering)
{
    VehicleState state;
    state.pose = Pose2(0, 0, 0);
    state.speed = 5;
    VehicleState s = state;
    for (int i = 0; i < 20; ++i)
        s = stepBicycleModel(s, {0.3, 0.0}, 0.1);
    EXPECT_GT(s.pose.theta, 0.2);
    EXPECT_GT(s.pose.pos.y, 0.5);
}

} // namespace
