/**
 * @file
 * Unit tests for the constant-velocity Kalman filter: convergence to
 * true velocity, variance contraction, noise rejection sweeps, and
 * the predict/update identities.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "fusion/kalman.hh"

namespace {

using ad::Rng;
using ad::Vec2;
using ad::fusion::ConstantVelocityKalman;
using ad::fusion::KalmanParams;

TEST(Kalman, InitializeSetsPositionZeroVelocity)
{
    ConstantVelocityKalman kf;
    EXPECT_FALSE(kf.initialized());
    kf.initialize({3, -4});
    EXPECT_TRUE(kf.initialized());
    EXPECT_DOUBLE_EQ(kf.position().x, 3.0);
    EXPECT_DOUBLE_EQ(kf.position().y, -4.0);
    EXPECT_DOUBLE_EQ(kf.velocity().norm(), 0.0);
}

TEST(Kalman, PredictMovesWithVelocity)
{
    ConstantVelocityKalman kf;
    kf.initialize({0, 0});
    // Teach it a velocity with clean measurements.
    for (int i = 1; i <= 20; ++i) {
        kf.predict(0.1);
        kf.update({i * 1.0, i * 0.5}); // 10 m/s, 5 m/s
    }
    EXPECT_NEAR(kf.velocity().x, 10.0, 0.5);
    EXPECT_NEAR(kf.velocity().y, 5.0, 0.3);
    const Vec2 before = kf.position();
    kf.predict(0.2);
    EXPECT_NEAR(kf.position().x, before.x + kf.velocity().x * 0.2,
                1e-9);
}

TEST(Kalman, VarianceContractsWithUpdates)
{
    ConstantVelocityKalman kf;
    kf.initialize({0, 0});
    kf.predict(0.1);
    const double before = kf.positionVariance();
    kf.update({0.1, 0});
    EXPECT_LT(kf.positionVariance(), before);
}

TEST(Kalman, UpdateWithoutInitializeInitializes)
{
    ConstantVelocityKalman kf;
    kf.update({7, 7});
    EXPECT_TRUE(kf.initialized());
    EXPECT_DOUBLE_EQ(kf.position().x, 7.0);
}

TEST(Kalman, ZeroDtPredictIsNoop)
{
    ConstantVelocityKalman kf;
    kf.initialize({1, 2});
    const double var = kf.positionVariance();
    kf.predict(0.0);
    EXPECT_DOUBLE_EQ(kf.position().x, 1.0);
    EXPECT_DOUBLE_EQ(kf.positionVariance(), var);
}

/** Noise sweep: estimation error stays bounded by measurement noise. */
class KalmanNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(KalmanNoiseSweep, TracksThroughNoise)
{
    const double noise = GetParam();
    Rng rng(static_cast<std::uint64_t>(noise * 1000) + 3);
    KalmanParams params;
    params.measurementNoise = noise;
    ConstantVelocityKalman kf(params);
    const Vec2 v{15.0, -2.0};
    kf.initialize({0, 0});
    Vec2 truth{0, 0};
    for (int i = 0; i < 60; ++i) {
        truth += v * 0.1;
        kf.predict(0.1);
        kf.update({truth.x + rng.normal(0, noise),
                   truth.y + rng.normal(0, noise)});
    }
    EXPECT_LT((kf.position() - truth).norm(), 3 * noise + 0.5);
    EXPECT_NEAR(kf.velocity().x, v.x, 3.0 * noise + 1.0);
    EXPECT_NEAR(kf.velocity().y, v.y, 3.0 * noise + 1.0);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, KalmanNoiseSweep,
                         ::testing::Values(0.1, 0.4, 1.0, 2.0));

TEST(Kalman, ManeuverIsFollowed)
{
    // Velocity reversal: the process noise lets the filter re-learn.
    ConstantVelocityKalman kf;
    kf.initialize({0, 0});
    double x = 0;
    for (int i = 0; i < 30; ++i) {
        x += 1.0;
        kf.predict(0.1);
        kf.update({x, 0});
    }
    EXPECT_NEAR(kf.velocity().x, 10.0, 1.0);
    for (int i = 0; i < 40; ++i) {
        x -= 1.0;
        kf.predict(0.1);
        kf.update({x, 0});
    }
    EXPECT_NEAR(kf.velocity().x, -10.0, 1.5);
}

} // namespace
