/**
 * @file
 * Tests for the object-detection engine: NMS behavior, end-to-end
 * detection of planted objects in rendered scenes, class banding,
 * lane-marking rejection and the DNN-dominated timing split.
 */

#include <gtest/gtest.h>

#include "detect/yolo.hh"
#include "sensors/camera.hh"
#include "sensors/scenario.hh"

namespace {

using namespace ad;
using namespace ad::detect;
using sensors::Camera;
using sensors::ObjectClass;
using sensors::Resolution;

Detection
makeDet(double x, double y, double w, double h, double conf)
{
    Detection d;
    d.box = BBox(x, y, w, h);
    d.confidence = conf;
    return d;
}

TEST(Nms, SuppressesOverlapsKeepsDistinct)
{
    std::vector<Detection> dets = {
        makeDet(0, 0, 10, 10, 0.9),
        makeDet(1, 1, 10, 10, 0.8),  // overlaps the first
        makeDet(50, 50, 10, 10, 0.7) // distinct
    };
    const auto kept = nonMaxSuppression(dets, 0.4);
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_DOUBLE_EQ(kept[0].confidence, 0.9);
    EXPECT_DOUBLE_EQ(kept[1].confidence, 0.7);
}

TEST(Nms, KeepsHighestConfidenceRegardlessOfOrder)
{
    std::vector<Detection> dets = {
        makeDet(1, 1, 10, 10, 0.5),
        makeDet(0, 0, 10, 10, 0.95),
    };
    const auto kept = nonMaxSuppression(dets, 0.4);
    ASSERT_EQ(kept.size(), 1u);
    EXPECT_DOUBLE_EQ(kept[0].confidence, 0.95);
}

TEST(Nms, EmptyInput)
{
    EXPECT_TRUE(nonMaxSuppression({}, 0.5).empty());
}

class DetectorTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        DetectorParams dp;
        dp.inputSize = 224;
        dp.width = 0.25;
        detector_ = new YoloDetector(dp);
        camera_ = new Camera(Resolution::HHD);
    }

    static void
    TearDownTestSuite()
    {
        delete detector_;
        delete camera_;
        detector_ = nullptr;
        camera_ = nullptr;
    }

    /** Render a world with one actor of the given class ahead. */
    static sensors::Frame
    frameWithActor(ObjectClass cls, double distance, double lateral = 0.0)
    {
        sensors::World world;
        sensors::Actor a;
        a.cls = cls;
        a.motion = sensors::MotionKind::Stationary;
        a.pose = Pose2(50.0 + distance,
                       world.road().laneCenter(1) + lateral, 0.0);
        if (cls == ObjectClass::Pedestrian) {
            a.length = 0.5;
            a.width = 0.6;
            a.height = 1.75;
        } else if (cls == ObjectClass::Bicycle) {
            a.length = 1.8;
            a.width = 0.8;
            a.height = 1.7;
        } else if (cls == ObjectClass::TrafficSign) {
            a.length = 0.8;
            a.width = 0.9;
            a.height = 2.2;
        }
        world.addActor(a);
        return camera_->render(world,
                               Pose2(50.0, world.road().laneCenter(1), 0));
    }

    static YoloDetector* detector_;
    static Camera* camera_;
};

YoloDetector* DetectorTest::detector_ = nullptr;
Camera* DetectorTest::camera_ = nullptr;

TEST_F(DetectorTest, DetectsVehicleAhead)
{
    const auto frame = frameWithActor(ObjectClass::Vehicle, 15.0);
    ASSERT_EQ(frame.truth.size(), 1u);
    const auto dets = detector_->detect(frame.image);
    ASSERT_FALSE(dets.empty());
    double bestIou = 0;
    for (const auto& d : dets)
        bestIou = std::max(bestIou, d.box.iou(frame.truth[0].box));
    EXPECT_GT(bestIou, 0.4);
}

TEST_F(DetectorTest, ClassifiesEachBand)
{
    for (const auto cls :
         {ObjectClass::Vehicle, ObjectClass::Pedestrian,
          ObjectClass::TrafficSign}) {
        const auto frame = frameWithActor(cls, 10.0);
        ASSERT_FALSE(frame.truth.empty());
        const auto dets = detector_->detect(frame.image);
        bool found = false;
        for (const auto& d : dets) {
            if (d.box.iou(frame.truth[0].box) > 0.3) {
                found = true;
                EXPECT_EQ(d.cls, cls) << sensors::objectClassName(cls);
            }
        }
        EXPECT_TRUE(found) << sensors::objectClassName(cls);
    }
}

TEST_F(DetectorTest, EmptyRoadYieldsNoDetections)
{
    sensors::World world;
    const auto frame = camera_->render(
        world, Pose2(50.0, world.road().laneCenter(1), 0));
    const auto dets = detector_->detect(frame.image);
    EXPECT_TRUE(dets.empty());
}

TEST_F(DetectorTest, LaneMarkingsDoNotFire)
{
    // A road with markings but no actors -- and the ego positioned so
    // markings dominate the lower image.
    sensors::World world;
    world.road().lanes = 4;
    const auto frame = camera_->render(
        world, Pose2(100.0, world.road().laneCenter(2), 0));
    const auto dets = detector_->detect(frame.image);
    EXPECT_TRUE(dets.empty());
}

TEST_F(DetectorTest, DnnDominatesDetCycles)
{
    // Figure 7: the DNN is 99.4% of DET. Assert clear dominance.
    const auto frame = frameWithActor(ObjectClass::Vehicle, 15.0);
    DetectorTimings timings;
    for (int i = 0; i < 5; ++i)
        detector_->detect(frame.image, &timings);
    EXPECT_GT(timings.dnnMs / timings.totalMs, 0.80);
}

TEST_F(DetectorTest, ConfidenceWithinUnitRange)
{
    const auto frame = frameWithActor(ObjectClass::Vehicle, 12.0);
    for (const auto& d : detector_->detect(frame.image)) {
        EXPECT_GT(d.confidence, 0.0);
        EXPECT_LE(d.confidence, 1.0);
    }
}

TEST(DetectorProfile, FullScaleMatchesPaperMagnitude)
{
    const auto p = YoloDetector::fullScaleProfile();
    EXPECT_GT(p.totalFlops(), 3e9);
    EXPECT_EQ(p.inputShape.h, 416);
}

TEST(DetectorProfile, ScalesWithInputSize)
{
    DetectorParams small;
    small.inputSize = 128;
    DetectorParams big;
    big.inputSize = 256;
    const YoloDetector a(small);
    const YoloDetector b(big);
    // 2x input -> ~4x conv FLOPs.
    const double ratio = static_cast<double>(b.profile().totalFlops()) /
                         static_cast<double>(a.profile().totalFlops());
    EXPECT_NEAR(ratio, 4.0, 0.5);
}

} // namespace
