/**
 * @file
 * Closed-loop simulation tests: the complete system driving itself --
 * lane keeping, collision-free progress, localization health with
 * odometry in the loop, and metric accounting invariants.
 */

#include <gtest/gtest.h>

#include "pipeline/simulation.hh"

namespace {

using namespace ad;
using namespace ad::pipeline;

class SimulationTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        rng_ = new Rng(51);
        sensors::ScenarioParams sp;
        sp.roadLength = 250.0;
        sp.vehicles = 4;
        scenario_ = new sensors::Scenario(
            sensors::makeHighwayScenario(*rng_, sp));
        // Slow the scenario traffic so the ego (cruising below
        // highway speed for CPU-frugality) is never rear-ended --
        // actors are not reactive.
        for (auto& a : scenario_->world.actors())
            if (a.motion == sensors::MotionKind::LaneKeep)
                a.speed = 6.0;
        scenario_->ego.speed = 8.0;
        camera_ = new sensors::Camera(sensors::Resolution::HHD);
        map_ = new slam::PriorMap(
            slam::buildPriorMap(scenario_->world, *camera_, 1));
    }

    static void
    TearDownTestSuite()
    {
        delete map_;
        delete camera_;
        delete scenario_;
        delete rng_;
        map_ = nullptr;
        camera_ = nullptr;
        scenario_ = nullptr;
        rng_ = nullptr;
    }

    static SimulationParams
    simParams()
    {
        SimulationParams p;
        p.pipeline.detector.inputSize = 160;
        p.pipeline.detector.width = 0.25;
        p.pipeline.trackerPool.tracker.cropSize = 32;
        p.pipeline.trackerPool.tracker.width = 0.1;
        p.pipeline.laneCenterY =
            scenario_->world.road().laneCenter(1);
        p.pipeline.motionPlanner.cruiseSpeed = 9.0;
        return p;
    }

    static Rng* rng_;
    static sensors::Scenario* scenario_;
    static sensors::Camera* camera_;
    static slam::PriorMap* map_;
};

Rng* SimulationTest::rng_ = nullptr;
sensors::Scenario* SimulationTest::scenario_ = nullptr;
sensors::Camera* SimulationTest::camera_ = nullptr;
slam::PriorMap* SimulationTest::map_ = nullptr;

TEST_F(SimulationTest, DrivesCollisionFreeAndKeepsLane)
{
    Simulation sim(*scenario_, map_, camera_, nullptr, simParams());
    sim.run(40);
    const auto& m = sim.metrics();
    EXPECT_EQ(m.frames, 40);
    EXPECT_EQ(m.collisionFrames, 0);
    EXPECT_GT(m.distanceTraveled, 15.0);
    EXPECT_LT(m.maxLaneError, 1.6);
    EXPECT_GE(m.localizedFrames, m.frames * 2 / 3);
    EXPECT_LT(m.maxLocalizationError, 2.0);
    EXPECT_GT(m.meanSpeed, 3.0);
}

TEST_F(SimulationTest, MetricsAccountingInvariants)
{
    Simulation sim(*scenario_, map_, camera_, nullptr, simParams());
    sim.run(10);
    const auto& m = sim.metrics();
    EXPECT_LE(m.localizedFrames, m.frames);
    EXPECT_LE(m.collisionFrames, m.frames);
    EXPECT_GE(m.minActorClearance, 0.0);
    EXPECT_GE(m.maxLaneError, 0.0);
    // e2e recorder saw every frame.
    EXPECT_EQ(sim.pipeline().endToEndLatency().count(), 10u);
}

TEST_F(SimulationTest, OdometryImprovesOrMatchesLocalization)
{
    SimulationParams with = simParams();
    with.useOdometry = true;
    Simulation a(*scenario_, map_, camera_, nullptr, with);
    a.run(25);

    SimulationParams without = simParams();
    without.useOdometry = false;
    Simulation b(*scenario_, map_, camera_, nullptr, without);
    b.run(25);

    // Odometry prediction never does worse on relocalization count.
    EXPECT_LE(a.metrics().relocalizations,
              b.metrics().relocalizations + 1);
    EXPECT_GE(a.metrics().localizedFrames,
              b.metrics().localizedFrames - 2);
}

TEST_F(SimulationTest, StepReturnsLiveFrameOutput)
{
    Simulation sim(*scenario_, map_, camera_, nullptr, simParams());
    const FrameOutput out = sim.step();
    EXPECT_FALSE(out.trajectory.empty());
    EXPECT_GT(out.latencies.endToEndMs(), 0.0);
}

} // namespace
