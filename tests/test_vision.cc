/**
 * @file
 * Tests for the ORB feature-extraction substrate: LUT trigonometry vs
 * libm, FAST segment test on synthetic corners, Harris ranking,
 * orientation, rBRIEF descriptor invariances, pyramid extraction and
 * descriptor matching.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "vision/orb.hh"

namespace {

using namespace ad::vision;
using ad::Image;
using ad::Rng;

/** Render a bright axis-aligned square on a dark background. */
Image
squareImage(int size, int x0, int y0, int side)
{
    Image img(size, size, 40);
    img.fillRect(ad::BBox(x0, y0, side, side), 220);
    return img;
}

/** Add uniform noise so FAST has texture to work with. */
void
addNoise(Image& img, Rng& rng, int amplitude)
{
    for (int y = 0; y < img.height(); ++y)
        for (int x = 0; x < img.width(); ++x) {
            const int v = img.at(x, y) + rng.uniformInt(-amplitude,
                                                        amplitude);
            img.at(x, y) = static_cast<std::uint8_t>(std::clamp(v, 0, 255));
        }
}

TEST(LutTrig, BinRoundTrip)
{
    const TrigTables& t = TrigTables::instance();
    for (int bin = 0; bin < kOrientationBins; ++bin) {
        EXPECT_EQ(TrigTables::binOf(t.angleOf(bin)), bin);
        EXPECT_NEAR(t.sinOf(bin), std::sin(t.angleOf(bin)), 1e-6);
        EXPECT_NEAR(t.cosOf(bin), std::cos(t.angleOf(bin)), 1e-6);
    }
}

TEST(LutTrig, Atan2BinMatchesNaiveWithinOneBin)
{
    const TrigTables& t = TrigTables::instance();
    Rng rng(5);
    int mismatchedByMore = 0;
    for (int i = 0; i < 2000; ++i) {
        const float x = static_cast<float>(rng.uniform(-100, 100));
        const float y = static_cast<float>(rng.uniform(-100, 100));
        const int lut = t.atan2Bin(y, x);
        const int naive = naiveAtan2Bin(y, x);
        const int diff = std::abs(lut - naive);
        const int circDiff = std::min(diff, kOrientationBins - diff);
        if (circDiff > 1)
            ++mismatchedByMore;
    }
    // The LUT quantization may flip a borderline angle into the
    // neighboring bin but never further.
    EXPECT_EQ(mismatchedByMore, 0);
}

TEST(LutTrig, Atan2BinQuadrants)
{
    const TrigTables& t = TrigTables::instance();
    EXPECT_EQ(t.atan2Bin(0.0f, 1.0f), 0);                       // +x
    EXPECT_EQ(t.atan2Bin(1.0f, 0.0f), kOrientationBins / 4);    // +y
    EXPECT_EQ(t.atan2Bin(0.0f, -1.0f), kOrientationBins / 2);   // -x
    EXPECT_EQ(t.atan2Bin(-1.0f, 0.0f), 3 * kOrientationBins / 4);
    EXPECT_EQ(t.atan2Bin(0.0f, 0.0f), 0); // degenerate input
}

TEST(Fast, DetectsSquareCorners)
{
    Image img = squareImage(64, 24, 24, 16);
    FastParams params;
    params.threshold = 30;
    const auto kps = detectFast(img, params);
    ASSERT_FALSE(kps.empty());
    // Every detection should be near one of the four square corners.
    for (const auto& kp : kps) {
        const double dx1 = std::min(std::abs(kp.x - 24), std::abs(kp.x - 40));
        const double dy1 = std::min(std::abs(kp.y - 24), std::abs(kp.y - 40));
        EXPECT_LT(dx1, 5.0);
        EXPECT_LT(dy1, 5.0);
    }
}

TEST(Fast, FlatImageHasNoCorners)
{
    Image img(64, 64, 128);
    FastParams params;
    const auto kps = detectFast(img, params);
    EXPECT_TRUE(kps.empty());
}

TEST(Fast, SegmentTestNeedsContiguousArc)
{
    // A single bright pixel at the circle is not a corner; a bright
    // half-plane is.
    Image img(16, 16, 100);
    EXPECT_FALSE(fastSegmentTest(img, 8, 8, 20));
    for (int y = 0; y < 16; ++y)
        for (int x = 9; x < 16; ++x)
            img.at(x, y) = 200;
    // Center pixel on the dark side, right half bright -> arc of
    // brighter pixels spans ~7 of 16... extend to a corner shape.
    for (int y = 9; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            img.at(x, y) = 200;
    EXPECT_TRUE(fastSegmentTest(img, 8, 8, 20));
}

TEST(Fast, ThresholdSweepMonotone)
{
    Rng rng(17);
    Image img = squareImage(96, 30, 30, 30);
    addNoise(img, rng, 8);
    std::size_t prev = SIZE_MAX;
    for (int threshold : {10, 25, 45, 70}) {
        FastParams params;
        params.threshold = threshold;
        params.cellSize = 4;
        const auto kps = detectFast(img, params);
        EXPECT_LE(kps.size(), prev) << "threshold " << threshold;
        prev = kps.size();
    }
}

TEST(Fast, OpCountsAccumulate)
{
    Image img = squareImage(64, 20, 20, 24);
    FastParams params;
    FastOpCounts counts;
    detectFast(img, params, &counts);
    EXPECT_GT(counts.pixelsTested, 0u);
    EXPECT_GE(counts.candidates, counts.keypoints);
    const auto before = counts.pixelsTested;
    detectFast(img, params, &counts);
    EXPECT_EQ(counts.pixelsTested, 2 * before);
}

TEST(Harris, CornerBeatsEdgeAndFlat)
{
    Image img = squareImage(64, 24, 24, 16);
    const float corner = harrisResponse(img, 24, 24);
    const float edge = harrisResponse(img, 32, 24);   // on the top edge
    const float flat = harrisResponse(img, 10, 10);
    EXPECT_GT(corner, edge);
    EXPECT_GT(corner, flat);
    EXPECT_NEAR(flat, 0.0f, 1.0f);
}

TEST(Orientation, PointsTowardBrightMass)
{
    // Bright half-plane to the right: centroid points along +x (bin 0).
    Image img(64, 64, 30);
    for (int y = 0; y < 64; ++y)
        for (int x = 32; x < 64; ++x)
            img.at(x, y) = 220;
    const int bin = intensityCentroidBin(img, 32, 32, TrigMode::Lut);
    EXPECT_EQ(bin, 0);
    // Bright below: +y direction.
    Image img2(64, 64, 30);
    for (int y = 32; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            img2.at(x, y) = 220;
    EXPECT_EQ(intensityCentroidBin(img2, 32, 32, TrigMode::Lut),
              kOrientationBins / 4);
}

TEST(Orientation, LutAndNaiveAgree)
{
    Rng rng(23);
    Image img(64, 64);
    addNoise(img, rng, 120);
    int disagreements = 0;
    for (int i = 0; i < 50; ++i) {
        const int x = rng.uniformInt(16, 48);
        const int y = rng.uniformInt(16, 48);
        const int a = intensityCentroidBin(img, x, y, TrigMode::Lut);
        const int b = intensityCentroidBin(img, x, y, TrigMode::Naive);
        const int diff = std::abs(a - b);
        if (std::min(diff, kOrientationBins - diff) > 1)
            ++disagreements;
    }
    EXPECT_EQ(disagreements, 0);
}

TEST(Brief, DescriptorDeterministic)
{
    Rng rng(31);
    Image img(64, 64);
    addNoise(img, rng, 120);
    Keypoint kp;
    kp.x = 32;
    kp.y = 32;
    kp.orientationBin = 3;
    const Descriptor d1 = describeKeypoint(img, kp);
    const Descriptor d2 = describeKeypoint(img, kp);
    EXPECT_EQ(d1, d2);
    EXPECT_EQ(d1.hamming(d2), 0);
}

TEST(Brief, DistinctPatchesDiffer)
{
    Rng rng(32);
    Image img(128, 64);
    addNoise(img, rng, 120);
    Keypoint a;
    a.x = 32;
    a.y = 32;
    Keypoint b;
    b.x = 96;
    b.y = 32;
    const Descriptor da = describeKeypoint(img, a);
    const Descriptor db = describeKeypoint(img, b);
    // Random texture: expect near-50% bit disagreement.
    EXPECT_GT(da.hamming(db), 60);
}

TEST(Brief, HammingProperties)
{
    Descriptor zero;
    Descriptor ones;
    ones.words = {~0ULL, ~0ULL, ~0ULL, ~0ULL};
    EXPECT_EQ(zero.hamming(ones), 256);
    EXPECT_EQ(zero.hamming(zero), 0);
    Descriptor one;
    one.words = {1, 0, 0, 0};
    EXPECT_EQ(zero.hamming(one), 1);
    EXPECT_EQ(one.hamming(zero), 1);
}

TEST(Brief, RotationInvarianceOnRotatedPatch)
{
    // Describe a textured patch, then rotate the image 90 degrees and
    // describe the same physical point with the rotated orientation:
    // descriptors should be much closer than chance (~128 bits).
    Rng rng(33);
    Image img(65, 65);
    addNoise(img, rng, 120);
    img = img.boxFiltered(1); // correlated texture survives rotation

    // Rotate image content by -90 degrees: (x, y) -> (y, w-1-x); the
    // intensity-centroid orientation of the same physical point drops
    // by a quarter turn, i.e.\ bin 0 -> bin 24.
    Image rot(65, 65);
    for (int y = 0; y < 65; ++y)
        for (int x = 0; x < 65; ++x)
            rot.at(y, 64 - x) = img.at(x, y);

    Keypoint kp;
    kp.x = 32;
    kp.y = 32;
    kp.orientationBin = 0;
    const Descriptor d0 = describeKeypoint(img, kp);
    Keypoint kpRot;
    kpRot.x = 32;
    kpRot.y = 32;
    kpRot.orientationBin = 3 * kOrientationBins / 4;
    const Descriptor d90 = describeKeypoint(rot, kpRot);
    EXPECT_LT(d0.hamming(d90), 70);
}

TEST(Orb, ExtractsFeaturesWithLevel0Coordinates)
{
    Rng rng(41);
    Image img = squareImage(256, 100, 100, 60);
    addNoise(img, rng, 6);
    OrbExtractor orb;
    OrbProfile profile;
    const auto features = orb.extract(img, &profile);
    ASSERT_GT(features.size(), 4u);
    for (const auto& f : features) {
        EXPECT_GE(f.kp.x, 0);
        EXPECT_LT(f.kp.x, 256);
        EXPECT_GE(f.kp.y, 0);
        EXPECT_LT(f.kp.y, 256);
    }
    EXPECT_GT(profile.pixelsProcessed, 256u * 256u); // pyramid > level 0
    EXPECT_EQ(profile.brief.descriptors, features.size());
    EXPECT_EQ(profile.brief.binaryTests, features.size() * 256u);
}

TEST(Orb, MatcherFindsIdentityMatches)
{
    Rng rng(42);
    Image img(256, 128);
    addNoise(img, rng, 120);
    img = img.boxFiltered(1);
    OrbExtractor orb;
    const auto features = orb.extract(img);
    ASSERT_GT(features.size(), 10u);
    std::vector<Descriptor> descs;
    for (const auto& f : features)
        descs.push_back(f.desc);
    const auto matches = matchDescriptors(descs, descs, 64, 1.01);
    // Self-matching: every descriptor matches itself at distance 0.
    ASSERT_EQ(matches.size(), descs.size());
    for (const auto& m : matches) {
        EXPECT_EQ(m.indexA, m.indexB);
        EXPECT_EQ(m.distance, 0);
    }
}

TEST(Orb, MatcherRespectsMaxDistance)
{
    std::vector<Descriptor> a(1);
    std::vector<Descriptor> b(1);
    b[0].words = {~0ULL, ~0ULL, 0, 0}; // distance 128
    EXPECT_TRUE(matchDescriptors(a, b, 64, 0.8).empty());
    EXPECT_EQ(matchDescriptors(a, b, 200, 0.8).size(), 1u);
}

TEST(Orb, MatcherEmptyInputs)
{
    std::vector<Descriptor> a(3);
    std::vector<Descriptor> none;
    EXPECT_TRUE(matchDescriptors(a, none).empty());
    EXPECT_TRUE(matchDescriptors(none, a).empty());
}

} // namespace
