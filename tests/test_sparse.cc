/**
 * @file
 * Tests for the EIE-style sparse fully connected engine: exactness at
 * zero threshold, monotone compression, bounded pruning error, CSR
 * accounting, and the FPGA-latency consequence of compression (the
 * mechanism behind the paper's TRA ASIC numbers).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/models.hh"
#include "common/random.hh"
#include "nn/sparse.hh"

namespace {

using namespace ad;
using namespace ad::nn;

void
fillDense(FullyConnected& fc, Rng& rng, double zeroFraction = 0.0)
{
    for (auto& w : fc.weights())
        w = rng.bernoulli(zeroFraction)
                ? 0.0f
                : static_cast<float>(rng.normal(0.0, 0.5));
    for (auto& b : fc.bias())
        b = static_cast<float>(rng.normal(0.0, 0.1));
}

Tensor
randomInput(int n, Rng& rng)
{
    Tensor t(n, 1, 1);
    for (int i = 0; i < n; ++i)
        t.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    return t;
}

TEST(SparseFc, ZeroThresholdIsExact)
{
    Rng rng(1);
    FullyConnected dense("dense", 64, 32);
    fillDense(dense, rng);
    const SparseFullyConnected sparse("s", dense, 0.0f);
    const Tensor x = randomInput(64, rng);
    const Tensor a = dense.forward(x);
    const Tensor b = sparse.forward(x);
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(a.data()[i], b.data()[i], 1e-5);
    EXPECT_DOUBLE_EQ(sparse.density(), 1.0);
}

TEST(SparseFc, ExplicitZerosAreDropped)
{
    Rng rng(2);
    FullyConnected dense("dense", 100, 50);
    fillDense(dense, rng, 0.7);
    const SparseFullyConnected sparse("s", dense, 0.0f);
    EXPECT_NEAR(sparse.density(), 0.3, 0.05);
    // Still exact: only exact zeros were dropped.
    const Tensor x = randomInput(100, rng);
    const Tensor a = dense.forward(x);
    const Tensor b = sparse.forward(x);
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(a.data()[i], b.data()[i], 1e-5);
}

TEST(SparseFc, DensityMonotoneInThreshold)
{
    Rng rng(3);
    FullyConnected dense("dense", 128, 64);
    fillDense(dense, rng);
    double prev = 1.1;
    for (const float t : {0.0f, 0.2f, 0.5f, 1.0f}) {
        const SparseFullyConnected sparse("s", dense, t);
        EXPECT_LT(sparse.density(), prev);
        prev = sparse.density();
    }
}

TEST(SparseFc, PruningErrorGrowsButStaysBoundedForSmallThresholds)
{
    Rng rng(4);
    FullyConnected dense("dense", 256, 128);
    fillDense(dense, rng);
    const Tensor probe = randomInput(256, rng);
    const double e1 = pruningError(dense, 0.05f, probe);
    const double e2 = pruningError(dense, 0.3f, probe);
    EXPECT_LE(e1, e2 + 1e-12);
    EXPECT_LT(e1, 0.05); // tiny weights contribute little
    EXPECT_NEAR(pruningError(dense, 0.0f, probe), 0.0, 1e-5);
}

TEST(SparseFc, ProfileReportsCompressedCosts)
{
    Rng rng(5);
    FullyConnected dense("dense", 100, 40);
    fillDense(dense, rng, 0.8);
    const SparseFullyConnected sparse("s", dense, 0.0f);
    const auto dp = dense.profile({100, 1, 1});
    const auto sp = sparse.profile({100, 1, 1});
    EXPECT_LT(sp.flops, dp.flops / 2);
    EXPECT_LT(sp.weightBytes, dp.weightBytes);
    EXPECT_EQ(sp.flops, 2 * sparse.nonZeros());
    EXPECT_EQ(sp.kind, LayerKind::FullyConnected);
}

TEST(SparseFc, CompressionCutsFpgaTransferLatency)
{
    // The system-level payoff: compressing the tracker's FC stack
    // shrinks its weight footprint, and since FPGA TRA is
    // transfer-bound (Figure 10 analysis), the modeled latency drops
    // nearly proportionally.
    accel::Workload w = accel::standardWorkloadRef();
    const accel::FpgaModel fpga;
    const double before =
        fpga.baseLatencyMs(accel::Component::Tra, w);
    // Emulate 10x FC compression in the workload profile.
    for (auto& layer : w.tra.layers) {
        if (layer.kind == LayerKind::FullyConnected) {
            layer.weightBytes /= 10;
            layer.flops /= 10;
        }
    }
    const double after = fpga.baseLatencyMs(accel::Component::Tra, w);
    EXPECT_LT(after, before * 0.25);
}

TEST(SparseFc, ParallelForwardBitwiseEqualsSerial)
{
    ad::Rng rng(31);
    ad::nn::FullyConnected dense("fc", 300, 170);
    for (auto& w : dense.weights())
        w = static_cast<float>(rng.normal(0.0, 0.1));
    for (auto& b : dense.bias())
        b = static_cast<float>(rng.uniform(-0.5, 0.5));
    const ad::nn::SparseFullyConnected sparse("s", dense, 0.05f);
    ad::nn::Tensor x(300, 1, 1);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    const ad::nn::Tensor serial = sparse.forward(x);
    for (const int threads : {2, 8}) {
        const ad::nn::Tensor parallel =
            sparse.forward(x, ad::nn::kernelContext(threads));
        for (std::size_t i = 0; i < serial.size(); ++i)
            ASSERT_EQ(serial.data()[i], parallel.data()[i])
                << "at " << i << " with " << threads << " threads";
    }
}

TEST(SparseFc, RejectsNegativeThreshold)
{
    Rng rng(6);
    FullyConnected dense("dense", 8, 4);
    fillDense(dense, rng);
    EXPECT_EXIT(SparseFullyConnected("s", dense, -1.0f),
                ::testing::ExitedWithCode(1), "threshold");
}

} // namespace
