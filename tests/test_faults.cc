/**
 * @file
 * Tests for the fault-injection layer: sensor-corruption primitives,
 * the fixed-draw-count fault schedule (a pure function of seed and
 * frame index), config composition, and the acceptance-criterion
 * determinism test -- a faulted, governed pipeline run is bit-identical
 * across repeats and across nn.threads for a fixed fault seed.
 *
 * The determinism run uses the virtual-spike trick: the governor
 * budget is far above any real stage latency and the injected spikes
 * are far above the budget, so budget misses -- and therefore every
 * governor transition -- are decided purely by the deterministic fault
 * schedule, never by wall-clock noise.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/config.hh"
#include "pipeline/fault_injector.hh"
#include "pipeline/pipeline.hh"
#include "sensors/corruption.hh"
#include "sensors/scenario.hh"
#include "slam/mapping.hh"

namespace {

using namespace ad;
using pipeline::FaultInjector;
using pipeline::FaultInjectorParams;
using pipeline::FaultPlan;

TEST(Corruption, PixelNoiseIsSeedDeterministic)
{
    Image a(32, 24, 128);
    Image b(32, 24, 128);
    Rng rngA(7);
    Rng rngB(7);
    sensors::addPixelNoise(a, rngA, 25.0);
    sensors::addPixelNoise(b, rngB, 25.0);

    bool changed = false;
    for (int y = 0; y < a.height(); ++y) {
        for (int x = 0; x < a.width(); ++x) {
            ASSERT_EQ(a.at(x, y), b.at(x, y));
            changed = changed || a.at(x, y) != 128;
        }
    }
    EXPECT_TRUE(changed);

    // A different seed produces a different noise field.
    Image c(32, 24, 128);
    Rng rngC(8);
    sensors::addPixelNoise(c, rngC, 25.0);
    bool differs = false;
    for (int y = 0; y < a.height() && !differs; ++y)
        for (int x = 0; x < a.width() && !differs; ++x)
            differs = a.at(x, y) != c.at(x, y);
    EXPECT_TRUE(differs);
}

TEST(Corruption, BlackoutAndBand)
{
    Image img(16, 16, 200);
    sensors::blackoutBand(img, 0.25, 0.5, 10);
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            EXPECT_EQ(img.at(x, y), y >= 4 && y < 12 ? 10 : 200);

    sensors::blackout(img);
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            EXPECT_EQ(img.at(x, y), 0);
}

TEST(FaultInjectorTest, ScheduleIsPureFunctionOfSeedAndFrame)
{
    const FaultInjectorParams params =
        FaultInjectorParams::scaledMix(0.5, 99);
    FaultInjector a(params);
    FaultInjector b(params);
    for (int i = 0; i < 500; ++i) {
        const FaultPlan pa = a.planFrame();
        const FaultPlan pb = b.planFrame();
        EXPECT_EQ(pa.dropFrame, pb.dropFrame);
        EXPECT_EQ(pa.blackout, pb.blackout);
        EXPECT_DOUBLE_EQ(pa.noiseSigma, pb.noiseSigma);
        EXPECT_EQ(pa.noiseSeed, pb.noiseSeed);
        EXPECT_EQ(pa.detFail, pb.detFail);
        EXPECT_EQ(pa.locFail, pb.locFail);
        EXPECT_EQ(pa.traFail, pb.traFail);
        for (std::size_t s = 0; s < obs::kStageCount; ++s)
            EXPECT_DOUBLE_EQ(pa.spikeMs[s], pb.spikeMs[s]);
    }
    EXPECT_EQ(a.counts().frames, 500u);
    EXPECT_GT(a.counts().spikes, 0u);
}

TEST(FaultInjectorTest, DrawCountIsIndependentOfProbabilities)
{
    // Changing one fault's probability must not shift which frames
    // the *other* faults land on: the per-frame draw count is fixed.
    FaultInjectorParams base = FaultInjectorParams::scaledMix(0.5, 4);
    FaultInjectorParams noNoise = base;
    noNoise.noiseProb = 0;
    FaultInjector a(base);
    FaultInjector b(noNoise);
    for (int i = 0; i < 500; ++i) {
        const FaultPlan pa = a.planFrame();
        const FaultPlan pb = b.planFrame();
        EXPECT_EQ(pa.dropFrame, pb.dropFrame) << "frame " << i;
        EXPECT_EQ(pa.detFail, pb.detFail) << "frame " << i;
        for (std::size_t s = 0; s < obs::kStageCount; ++s)
            EXPECT_DOUBLE_EQ(pa.spikeMs[s], pb.spikeMs[s]);
    }
}

TEST(FaultInjectorTest, DisabledInjectorPlansNothing)
{
    FaultInjector inj(FaultInjectorParams::scaledMix(0.0, 1));
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(inj.planFrame().any());
    EXPECT_EQ(inj.counts().frames, 100u);
    EXPECT_EQ(inj.counts().drops + inj.counts().spikes, 0u);
}

TEST(FaultInjectorTest, FromConfigComposesIntensityAndOverrides)
{
    Config cfg;
    cfg.set("faults", "0.5");
    cfg.set("fault.noise_p", "0");
    cfg.set("fault.spike_ms", "200");
    cfg.set("fault.seed", "11");
    const FaultInjectorParams p = FaultInjectorParams::fromConfig(cfg);
    EXPECT_TRUE(p.enabled);
    EXPECT_EQ(p.seed, 11u);
    EXPECT_DOUBLE_EQ(p.dropProb, 0.05 * 0.5);   // from the mix
    EXPECT_DOUBLE_EQ(p.noiseProb, 0.0);         // overridden
    EXPECT_DOUBLE_EQ(p.spikeMs, 200.0);         // overridden

    Config off;
    EXPECT_FALSE(FaultInjectorParams::fromConfig(off).enabled);

    Config single;
    single.set("fault.drop_p", "0.1");
    EXPECT_TRUE(FaultInjectorParams::fromConfig(single).enabled);
}

/**
 * Acceptance criterion: a faulted, governed run is bit-identical for
 * a fixed fault seed -- across repeats and across nn.threads.
 */
class FaultDeterminismTest : public ::testing::Test
{
  protected:
    static std::vector<double>
    runPipeline(const slam::PriorMap& map, const sensors::Camera& camera,
                const sensors::Scenario& scenario, int nnThreads)
    {
        pipeline::PipelineParams params;
        params.detector.inputSize = 128;
        params.detector.width = 0.25;
        params.trackerPool.tracker.cropSize = 32;
        params.trackerPool.tracker.width = 0.1;
        params.laneCenterY = scenario.world.road().laneCenter(1);
        params.motionPlanner.cruiseSpeed = scenario.ego.speed;
        params.nnThreads = nnThreads;

        // Aggressive fault mix, seeded.
        params.faults.enabled = true;
        params.faults.seed = 5;
        params.faults.dropProb = 0.15;
        params.faults.noiseProb = 0.3;
        params.faults.blackoutProb = 0.1;
        params.faults.detFailProb = 0.2;
        params.faults.locFailProb = 0.1;
        params.faults.traFailProb = 0.1;
        // Virtual-spike trick: the budget dwarfs every real latency
        // and the spikes dwarf the budget, so misses (and therefore
        // mode transitions) depend only on the fault schedule.
        params.faults.spikeProb = 0.5;
        params.faults.spikeMs = 1e5;
        params.governor.enabled = true;
        params.governor.budgetMs = 1e4;
        params.governor.escalateAfterMisses = 1;
        params.governor.recoverAfterFrames = 2;
        params.governor.maxStaleFrames = 3;

        pipeline::Pipeline pipe(&map, &camera, nullptr, params);

        sensors::World world = scenario.world;
        Pose2 ego = scenario.ego.pose;
        pipe.reset(ego, {scenario.ego.speed, 0},
                   {scenario.world.road().length - 10,
                    params.laneCenterY});

        std::vector<double> sig;
        for (int i = 0; i < 12; ++i) {
            world.step(0.1);
            ego.pos.x += scenario.ego.speed * 0.1;
            const sensors::Frame frame = camera.render(world, ego);
            const auto out =
                pipe.processFrame(frame.image, 0.1, scenario.ego.speed);
            sig.push_back(static_cast<double>(out.mode));
            sig.push_back(out.frameDropped ? 1.0 : 0.0);
            sig.push_back(out.detRan ? 1.0 : 0.0);
            sig.push_back(out.detFellBack ? 1.0 : 0.0);
            sig.push_back(out.locFellBack ? 1.0 : 0.0);
            sig.push_back(out.traCoasted ? 1.0 : 0.0);
            sig.push_back(static_cast<double>(out.detections.size()));
            for (const auto& d : out.detections) {
                sig.insert(sig.end(), {d.box.x, d.box.y, d.box.w,
                                       d.box.h, d.confidence});
            }
            sig.push_back(static_cast<double>(out.tracks.size()));
            for (const auto& t : out.tracks) {
                sig.insert(sig.end(), {t.box.x, t.box.y, t.box.w,
                                       t.box.h});
            }
            sig.push_back(out.localization.ok ? 1.0 : 0.0);
            sig.push_back(out.localization.pose.pos.x);
            sig.push_back(out.localization.pose.pos.y);
            sig.push_back(out.localization.pose.theta);
            sig.push_back(out.command.steering);
            sig.push_back(out.command.acceleration);
        }
        // The run must actually have exercised faults and transitions.
        EXPECT_GT(pipe.faultInjector()->counts().spikes, 0u);
        EXPECT_FALSE(pipe.governor()->transitions().empty());
        return sig;
    }

    static void
    expectIdentical(const std::vector<double>& a,
                    const std::vector<double>& b)
    {
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            ASSERT_DOUBLE_EQ(a[i], b[i]) << "signature index " << i;
    }
};

TEST_F(FaultDeterminismTest, FaultedRunIsBitIdenticalAcrossRepeatsAndThreads)
{
    Rng rng(23);
    sensors::ScenarioParams sp;
    sp.roadLength = 120.0;
    sp.vehicles = 3;
    const sensors::Scenario scenario =
        sensors::makeUrbanScenario(rng, sp);
    const sensors::Camera camera(sensors::Resolution::HHD);
    slam::MappingParams mp;
    mp.orb.fast.maxKeypoints = 400;
    const slam::PriorMap map =
        slam::buildPriorMap(scenario.world, camera, 1, mp);

    const auto first = runPipeline(map, camera, scenario, 1);
    const auto repeat = runPipeline(map, camera, scenario, 1);
    expectIdentical(first, repeat);

    const auto threaded = runPipeline(map, camera, scenario, 4);
    expectIdentical(first, threaded);
}

TEST_F(FaultDeterminismTest, SafeStopBrakesAndRecovers)
{
    // Pure-governor path on the measured pipeline: a burst of huge
    // virtual spikes must drive the mode to SAFE_STOP with a braking
    // command, and a calm stretch must recover toward NOMINAL.
    Rng rng(3);
    sensors::ScenarioParams sp;
    sp.roadLength = 120.0;
    sp.vehicles = 2;
    const sensors::Scenario scenario =
        sensors::makeHighwayScenario(rng, sp);
    const sensors::Camera camera(sensors::Resolution::HHD);
    slam::MappingParams mp;
    mp.orb.fast.maxKeypoints = 400;
    const slam::PriorMap map =
        slam::buildPriorMap(scenario.world, camera, 1, mp);

    pipeline::PipelineParams params;
    params.detector.inputSize = 128;
    params.detector.width = 0.25;
    params.trackerPool.tracker.cropSize = 32;
    params.trackerPool.tracker.width = 0.1;
    params.laneCenterY = scenario.world.road().laneCenter(1);
    params.motionPlanner.cruiseSpeed = scenario.ego.speed;
    params.faults.enabled = true;
    params.faults.seed = 5;
    params.faults.spikeProb = 1.0; // every frame spikes...
    params.faults.spikeMs = 1e5;   // ...far past the budget.
    params.governor.enabled = true;
    params.governor.budgetMs = 1e4;
    params.governor.escalateAfterMisses = 1;
    params.governor.recoverAfterFrames = 2;
    pipeline::Pipeline pipe(&map, &camera, nullptr, params);

    sensors::World world = scenario.world;
    Pose2 ego = scenario.ego.pose;
    pipe.reset(ego, {scenario.ego.speed, 0},
               {scenario.world.road().length - 10, params.laneCenterY});

    const auto step = [&] {
        world.step(0.1);
        ego.pos.x += scenario.ego.speed * 0.1;
        const sensors::Frame frame = camera.render(world, ego);
        return pipe.processFrame(frame.image, 0.1, scenario.ego.speed);
    };

    // Three straight misses walk NOMINAL -> ... -> SAFE_STOP; the
    // fourth frame executes the SAFE_STOP plan.
    for (int i = 0; i < 3; ++i)
        step();
    ASSERT_EQ(pipe.governor()->mode(),
              pipeline::OperatingMode::SafeStop);
    const auto stopped = step();
    EXPECT_EQ(stopped.mode, pipeline::OperatingMode::SafeStop);
    EXPECT_DOUBLE_EQ(stopped.command.steering, 0.0);
    EXPECT_LT(stopped.command.acceleration, 0.0);
    EXPECT_FALSE(stopped.detRan);
    EXPECT_TRUE(stopped.traCoasted);
    EXPECT_EQ(pipe.deadlineMonitor().violations(), 4u);

    // Calm: stop injecting (the injector is already constructed, so
    // rebuild the pipeline-equivalent by just observing recovery off
    // a clean latency stream is not possible here; instead verify the
    // recovery path on the governor directly).
    pipeline::DegradationGovernor calm(params.governor);
    calm.forceSafeStop(0, "test");
    for (int i = 0; i < 6; ++i)
        calm.observe(i + 1, {1, 1, 1, 1, 1});
    EXPECT_EQ(calm.mode(), pipeline::OperatingMode::Nominal);
}

} // namespace
