/**
 * @file
 * Tests for the fleet layer: the scenario-replay load generator
 * (determinism, partition invariance, the bit-exact plain-mode
 * arrival arithmetic), the stream-handoff ownership protocol (the
 * double-dispatch races the token turns into crashes), and the
 * ShardedServer end to end -- conservation, triple-run bitwise
 * determinism of the migration log and fleet summary, the
 * shards=1 == MultiStreamServer equivalence, hot-shard rebalancing,
 * global admission, fleet degradation arbitration, parallel==serial
 * stepping, and a measured-engine (NnBatchEngine) fleet (the TSan
 * target).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "fleet/fleet.hh"
#include "nn/kernel_context.hh"
#include "nn/models.hh"
#include "serve/serve.hh"

namespace {

using namespace ad;
using namespace ad::fleet;
using namespace ad::serve;

// ------------------------------------------------------------ loadgen

LoadGenParams
plainLoad(int streams, double horizonMs)
{
    LoadGenParams lp;
    lp.streams = streams;
    lp.horizonMs = horizonMs;
    return lp;
}

TEST(ScenarioLoadGen, PlainModeReproducesServeArithmetic)
{
    // With every scenario ingredient off, the tape is exactly the
    // serving layer's arrival pattern: phase = period * i / N, then
    // repeated addition of the period -- bit-identical doubles, which
    // is what the shards=1 equivalence leans on.
    LoadGenParams lp = plainLoad(5, 0.0);
    lp.framesPerStream = 40;
    const ScenarioLoadGen load(lp);

    EXPECT_EQ(load.totalArrivals(), 5 * 40);
    for (int i = 0; i < lp.streams; ++i) {
        EXPECT_EQ(load.framesForStream(i), 40);
        EXPECT_EQ(load.phaseMs(i), lp.periodMs * i / lp.streams);
    }
    std::vector<double> next(5);
    for (int i = 0; i < 5; ++i)
        next[static_cast<std::size_t>(i)] = load.phaseMs(i);
    for (const ArrivalEvent& a : load.schedule()) {
        EXPECT_EQ(a.tMs,
                  next[static_cast<std::size_t>(a.stream)]);
        next[static_cast<std::size_t>(a.stream)] += lp.periodMs;
    }
}

TEST(ScenarioLoadGen, TapeIsSortedAndDeterministic)
{
    LoadGenParams lp = plainLoad(16, 4000.0);
    lp.burstP = 0.1;
    lp.stragglerFraction = 0.25;
    lp.rampAmplitude = 0.3;
    lp.hotModulus = 4;
    lp.hotResidue = 1;
    lp.hotStartMs = 1000.0;
    lp.hotEndMs = 3000.0;
    const ScenarioLoadGen a(lp);
    const ScenarioLoadGen b(lp);

    ASSERT_EQ(a.totalArrivals(), b.totalArrivals());
    for (std::int64_t i = 0; i < a.totalArrivals(); ++i) {
        const auto& ea = a.schedule()[static_cast<std::size_t>(i)];
        const auto& eb = b.schedule()[static_cast<std::size_t>(i)];
        EXPECT_EQ(ea.tMs, eb.tMs);
        EXPECT_EQ(ea.stream, eb.stream);
        EXPECT_EQ(ea.seq, eb.seq);
        if (i > 0) {
            const auto& prev =
                a.schedule()[static_cast<std::size_t>(i - 1)];
            EXPECT_LE(prev.tMs, ea.tMs);
        }
    }
}

TEST(ScenarioLoadGen, StreamsAreIndependentOfPopulationMix)
{
    // Stream i's arrivals depend only on (seed, i): scenario
    // ingredients on *other* streams never perturb it, which is what
    // makes the tape partition-invariant across shard counts.
    LoadGenParams lp = plainLoad(8, 3000.0);
    lp.burstP = 0.2;
    const ScenarioLoadGen small(lp);
    lp.streams = 32; // same seed, larger fleet.
    const ScenarioLoadGen big(lp);

    std::vector<double> a, b;
    for (const auto& e : small.schedule())
        if (e.stream == 3)
            a.push_back(e.tMs);
    for (const auto& e : big.schedule())
        if (e.stream == 3)
            b.push_back(e.tMs);
    // Phases differ (stagger divides by N); compare with stagger's
    // phase removed.
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i] - small.phaseMs(3),
                         b[i] - big.phaseMs(3));
}

TEST(ScenarioLoadGen, CriticalityIsStableAcrossIngredients)
{
    // Criticality draws from its own RNG: enabling bursts must not
    // reshuffle which vehicles are critical.
    LoadGenParams lp = plainLoad(24, 2000.0);
    const ScenarioLoadGen plain(lp);
    lp.burstP = 0.3;
    lp.stragglerFraction = 0.5;
    const ScenarioLoadGen noisy(lp);
    for (int i = 0; i < lp.streams; ++i) {
        EXPECT_EQ(plain.criticality(i), noisy.criticality(i));
        EXPECT_GE(plain.criticality(i), 0);
        EXPECT_LT(plain.criticality(i), lp.criticalityClasses);
    }
}

TEST(ScenarioLoadGen, HotBlockRaisesArrivalRateInWindow)
{
    LoadGenParams lp = plainLoad(8, 4000.0);
    lp.hotModulus = 4;
    lp.hotResidue = 2;
    lp.hotFactor = 4.0;
    lp.hotStartMs = 1000.0;
    lp.hotEndMs = 3000.0;
    const ScenarioLoadGen load(lp);

    std::int64_t hotInWindow = 0, coldInWindow = 0;
    for (const auto& e : load.schedule()) {
        if (e.tMs < lp.hotStartMs || e.tMs >= lp.hotEndMs)
            continue;
        if (e.stream % 4 == 2)
            ++hotInWindow;
        else
            ++coldInWindow;
    }
    // 2 hot streams at 4x the rate of 6 cold ones: per-stream rate
    // ratio ~4 shows up as 2*4 vs 6*1 arrivals in the window.
    EXPECT_GT(hotInWindow, coldInWindow);
}

// ------------------------------------------------- ownership handoff

StreamState
makeStream(int id)
{
    StreamParams sp;
    pipeline::GovernorParams gp;
    return StreamState(id, sp, gp);
}

TEST(OwnershipToken, HandoffBumpsEpochAndTransfersRights)
{
    StreamState s = makeStream(7);
    EXPECT_EQ(s.owner(), -1);

    const OwnershipToken a = s.acquireOwnership(0);
    EXPECT_TRUE(s.ownershipCurrent(a));
    EXPECT_EQ(s.owner(), 0);

    s.releaseOwnership(a);
    EXPECT_EQ(s.owner(), -1);
    EXPECT_FALSE(s.ownershipCurrent(a)); // released => stale.

    const OwnershipToken b = s.acquireOwnership(3);
    EXPECT_TRUE(s.ownershipCurrent(b));
    EXPECT_FALSE(s.ownershipCurrent(a)); // old copy stays stale.
    EXPECT_EQ(s.owner(), 3);
    EXPECT_GT(b.epoch, a.epoch);
}

TEST(OwnershipTokenDeathTest, AcquireWhileOwnedIsTheft)
{
    StreamState s = makeStream(1);
    (void)s.acquireOwnership(0);
    // A shard may never steal a stream another shard still owns:
    // this is the single-owner assumption made explicit.
    EXPECT_DEATH((void)s.acquireOwnership(1), "already owned");
}

TEST(OwnershipTokenDeathTest, StaleTokenCannotDispatch)
{
    // The double-dispatch race: shard A hands the stream off, but a
    // buggy path keeps its old token and touches the stream again.
    // Without the epoch the touch would silently double-serve the
    // vehicle; with it, the stale token is fatal.
    StreamState s = makeStream(2);
    const OwnershipToken stale = s.acquireOwnership(0);
    s.releaseOwnership(stale);            // handoff...
    (void)s.acquireOwnership(1);          // ...new owner adopted.
    EXPECT_DEATH(s.assertOwnership(stale, "dispatch"), "stale");
}

TEST(OwnershipTokenDeathTest, ReleaseWithForeignTokenDies)
{
    StreamState s = makeStream(3);
    const OwnershipToken t = s.acquireOwnership(0);
    s.releaseOwnership(t);
    EXPECT_DEATH(s.releaseOwnership(t), "stale");
}

TEST(StreamRegistry, AdoptReusesLowestVacantSlot)
{
    StreamRegistry reg;
    StreamParams sp;
    pipeline::GovernorParams gp;
    EXPECT_EQ(reg.addStream(sp, gp), 0);
    EXPECT_EQ(reg.addStream(sp, gp), 1);
    EXPECT_EQ(reg.addStream(sp, gp), 2);

    std::unique_ptr<StreamState> out = reg.extract(1);
    ASSERT_TRUE(out);
    EXPECT_EQ(reg.active(), 2u);
    EXPECT_EQ(reg.size(), 3u); // the hole remains a slot.
    EXPECT_EQ(reg.find(1), nullptr);

    auto incoming = std::make_unique<StreamState>(41, sp, gp);
    EXPECT_EQ(reg.adopt(std::move(incoming)), 1); // lowest hole.
    EXPECT_EQ(reg.find(1)->id, 41);
    auto another = std::make_unique<StreamState>(42, sp, gp);
    EXPECT_EQ(reg.adopt(std::move(another)), 3); // append when full.
    EXPECT_EQ(reg.active(), 4u);
}

// ------------------------------------------------------ fleet helpers

ServeParams
fleetServeParams()
{
    ServeParams sp;
    sp.governor.enabled = true;
    return sp;
}

FleetParams
fleetParams(int shards)
{
    FleetParams fp;
    fp.shards = shards;
    fp.serve = fleetServeParams();
    return fp;
}

// -------------------------------------------- shards=1 equivalence

TEST(ShardedServer, SingleShardReproducesMultiStreamServer)
{
    // A 1-shard fleet is MultiStreamServer::run wearing a fleet
    // coat: same arrival tape, same event order, same RNG draws.
    // Every report field must match bit for bit.
    const int streams = 8;
    const std::int64_t frames = 250;

    ServeParams sp = fleetServeParams();
    sp.streams = streams;
    ModeledBatchEngine engine(ModeledEngineParams{});
    MultiStreamServer server(sp, engine);
    const ServeReport plain = server.run(frames);

    LoadGenParams lp;
    lp.streams = streams;
    lp.framesPerStream = frames;
    lp.periodMs = sp.stream.framePeriodMs;
    const ScenarioLoadGen load(lp);

    FleetParams fp = fleetParams(1);
    ShardedServer fleetServer(fp, load);
    const FleetReport fr = fleetServer.run();

    ASSERT_EQ(fr.shardReports.size(), 1u);
    const ServeReport& shard = fr.shardReports[0];
    EXPECT_EQ(shard.framesArrived, plain.framesArrived);
    EXPECT_EQ(shard.framesAdmitted, plain.framesAdmitted);
    EXPECT_EQ(shard.framesDegraded, plain.framesDegraded);
    EXPECT_EQ(shard.framesCoasted, plain.framesCoasted);
    EXPECT_EQ(shard.framesShed, plain.framesShed);
    EXPECT_EQ(shard.deadlineMisses, plain.deadlineMisses);
    EXPECT_EQ(shard.batches, plain.batches);
    EXPECT_EQ(shard.pressureEscalations, plain.pressureEscalations);
    EXPECT_EQ(shard.admittedLatency.count, plain.admittedLatency.count);
    EXPECT_EQ(shard.admittedLatency.mean, plain.admittedLatency.mean);
    EXPECT_EQ(shard.admittedLatency.p9999, plain.admittedLatency.p9999);
    EXPECT_EQ(shard.admittedLatency.worst, plain.admittedLatency.worst);
    EXPECT_EQ(shard.durationMs, plain.durationMs);
    EXPECT_EQ(shard.meanBatchSize, plain.meanBatchSize);
    EXPECT_EQ(shard.meanBatchWaitMs, plain.meanBatchWaitMs);
    EXPECT_EQ(shard.framesInMode, plain.framesInMode);
    ASSERT_EQ(shard.streamSlo.size(), plain.streamSlo.size());
    for (std::size_t i = 0; i < plain.streamSlo.size(); ++i) {
        EXPECT_EQ(shard.streamSlo[i].p50Ms, plain.streamSlo[i].p50Ms);
        EXPECT_EQ(shard.streamSlo[i].burnRate,
                  plain.streamSlo[i].burnRate);
        EXPECT_EQ(shard.streamSlo[i].total, plain.streamSlo[i].total);
    }

    // Fleet-level aggregates reduce to the single shard's numbers.
    EXPECT_EQ(fr.framesArrived, plain.framesArrived);
    EXPECT_EQ(fr.goodputFps, plain.goodputFps);
    EXPECT_EQ(fr.migrations, 0);
    EXPECT_EQ(fr.fleetEscalations, 0);
}

// ------------------------------------------------------ conservation

LoadGenParams
scenarioLoad(int streams, int shards)
{
    LoadGenParams lp;
    lp.streams = streams;
    lp.horizonMs = 6000.0;
    lp.burstP = 0.05;
    lp.rampAmplitude = 0.2;
    lp.rampPeriodMs = 6000.0;
    lp.stragglerFraction = 0.1;
    lp.hotModulus = shards;
    lp.hotResidue = shards > 1 ? 1 : 0;
    lp.hotFactor = 6.0;
    lp.hotStartMs = 1000.0;
    lp.hotEndMs = 5000.0;
    return lp;
}

TEST(ShardedServer, ConservationAcrossShards)
{
    const LoadGenParams lp = scenarioLoad(24, 3);
    const ScenarioLoadGen load(lp);
    FleetParams fp = fleetParams(3);
    ShardedServer fleetServer(fp, load);
    const FleetReport r = fleetServer.run();

    EXPECT_EQ(r.framesArrived, load.totalArrivals());
    EXPECT_EQ(r.framesAdmitted + r.framesCoasted + r.framesShed,
              r.framesArrived);
    EXPECT_EQ(r.admittedLatency.count,
              static_cast<std::size_t>(r.framesAdmitted));
    std::int64_t injected = 0;
    for (const auto& row : r.shardRows)
        injected += row.arrivalsInjected;
    EXPECT_EQ(injected, load.totalArrivals());
    int residents = 0;
    for (const auto& row : r.shardRows)
        residents += row.streamsFinal;
    EXPECT_EQ(residents, lp.streams);
}

// ---------------------------------------------------- determinism

TEST(ShardedServer, TripleRunBitwiseDeterminism)
{
    const LoadGenParams lp = scenarioLoad(32, 4);
    const ScenarioLoadGen load(lp);
    FleetParams fp = fleetParams(4);
    fp.rebalance.periodMs = 500.0;

    std::vector<std::string> logs, summaries;
    std::int64_t migrations = -1;
    for (int run = 0; run < 3; ++run) {
        ShardedServer fleetServer(fp, load);
        const FleetReport r = fleetServer.run();
        logs.push_back(r.migrationLogString());
        summaries.push_back(r.summaryString());
        migrations = r.migrations;
    }
    EXPECT_EQ(logs[0], logs[1]);
    EXPECT_EQ(logs[1], logs[2]);
    EXPECT_EQ(summaries[0], summaries[1]);
    EXPECT_EQ(summaries[1], summaries[2]);
    // The scenario is built to actually migrate: a determinism check
    // over an empty log would prove nothing.
    EXPECT_GT(migrations, 0);
}

TEST(ShardedServer, ParallelSteppingMatchesSerial)
{
    const LoadGenParams lp = scenarioLoad(24, 3);
    const ScenarioLoadGen load(lp);
    FleetParams fp = fleetParams(3);
    fp.rebalance.periodMs = 500.0;

    ShardedServer serial(fp, load);
    const FleetReport a = serial.run();
    fp.parallel = true;
    ShardedServer parallel(fp, load);
    const FleetReport b = parallel.run();

    EXPECT_EQ(a.summaryString(), b.summaryString());
    EXPECT_EQ(a.migrationLogString(), b.migrationLogString());
}

// ----------------------------------------------------- rebalancing

TEST(ShardedServer, HotShardShedsStreamsToColdShards)
{
    // hotModulus == shard count aims the whole hot block at shard 1
    // under round-robin placement; the rebalancer must detect the
    // burn divergence and drain streams out of it.
    const int shards = 4;
    const LoadGenParams lp = scenarioLoad(32, shards);
    const ScenarioLoadGen load(lp);
    FleetParams fp = fleetParams(shards);
    fp.rebalance.periodMs = 500.0;
    ShardedServer fleetServer(fp, load);
    const FleetReport r = fleetServer.run();

    ASSERT_GT(r.migrations, 0);
    EXPECT_EQ(static_cast<std::int64_t>(r.migrationLog.size()),
              r.migrations);
    std::int64_t outOfHot = 0;
    for (const auto& m : r.migrationLog) {
        EXPECT_NE(m.fromShard, m.toShard);
        EXPECT_GT(m.burnFrom, m.burnTo);
        if (m.fromShard == 1)
            ++outOfHot;
    }
    EXPECT_GT(outOfHot, 0);
    EXPECT_GT(r.shardRows[1].migrationsOut, 0);
    // Registry placements reflect the final homes.
    const FleetRegistry& reg = fleetServer.registry();
    int placed = 0;
    for (int k = 0; k < shards; ++k)
        placed += static_cast<int>(reg.streamsOf(k).size());
    EXPECT_EQ(placed, lp.streams);
}

TEST(ShardedServer, RebalanceDisabledMeansNoMigrations)
{
    const LoadGenParams lp = scenarioLoad(32, 4);
    const ScenarioLoadGen load(lp);
    FleetParams fp = fleetParams(4);
    fp.rebalance.enabled = false;
    ShardedServer fleetServer(fp, load);
    const FleetReport r = fleetServer.run();
    EXPECT_EQ(r.migrations, 0);
    EXPECT_TRUE(r.migrationLogString().empty());
}

// ------------------------------------------- admission + arbitration

TEST(FleetCoordinator, GlobalAdmissionRejectsLowestCriticalityFirst)
{
    LoadGenParams lp = plainLoad(12, 2000.0);
    const ScenarioLoadGen load(lp);
    FleetParams fp = fleetParams(2);
    fp.maxStreamsPerShard = 3; // cap = 6 of 12.
    const FleetCoordinator coord(fp, load);

    EXPECT_EQ(coord.streamsAdmitted(), 6);
    EXPECT_EQ(coord.streamsRejected(), 6);
    const auto& admitted = coord.admitted();
    for (int r = 0; r < lp.streams; ++r) {
        if (admitted[static_cast<std::size_t>(r)])
            continue;
        for (int a = 0; a < lp.streams; ++a) {
            if (!admitted[static_cast<std::size_t>(a)])
                continue;
            // Every rejected stream must lose to every admitted one
            // under the shed order (criticality asc, id desc).
            const bool loses =
                load.criticality(r) < load.criticality(a) ||
                (load.criticality(r) == load.criticality(a) && r > a);
            EXPECT_TRUE(loses) << "rejected " << r << " vs admitted "
                               << a;
        }
    }
}

TEST(ShardedServer, RejectedStreamsAreNeverServed)
{
    LoadGenParams lp = plainLoad(12, 3000.0);
    const ScenarioLoadGen load(lp);
    FleetParams fp = fleetParams(2);
    fp.maxStreamsPerShard = 3;
    ShardedServer fleetServer(fp, load);
    const FleetReport r = fleetServer.run();

    EXPECT_EQ(r.streamsAdmitted, 6);
    std::int64_t admittedTape = 0;
    for (const auto& e : load.schedule())
        if (fleetServer.coordinator()
                .admitted()[static_cast<std::size_t>(e.stream)])
            ++admittedTape;
    EXPECT_EQ(r.framesArrived, admittedTape);
    for (int g = 0; g < lp.streams; ++g) {
        const bool adm = fleetServer.coordinator()
                             .admitted()[static_cast<std::size_t>(g)];
        EXPECT_EQ(fleetServer.registry().placed(g), adm);
        if (!adm) {
            EXPECT_EQ(r.streamSlo[static_cast<std::size_t>(g)].total,
                      0u);
        }
    }
}

TEST(ShardedServer, FleetArbitrationReplacesPerShardPressure)
{
    // Overload every shard: per-server pressure escalation is
    // disabled on multi-shard fleets, so any governor escalation
    // above must come from the fleet coordinator.
    LoadGenParams lp = plainLoad(32, 5000.0);
    lp.periodMs = 30.0; // ~33 fps per stream: far past capacity.
    const ScenarioLoadGen load(lp);
    FleetParams fp = fleetParams(2);
    fp.rebalance.periodMs = 250.0;
    // Admission keeps the backlog near (but under) the deadline;
    // trigger arbitration well below that equilibrium.
    fp.rebalance.shedPressure = 0.2;
    ShardedServer fleetServer(fp, load);
    const FleetReport r = fleetServer.run();

    for (const auto& shard : r.shardReports)
        EXPECT_EQ(shard.pressureEscalations, 0);
    EXPECT_GT(r.fleetEscalations, 0);
}

TEST(FleetCoordinator, PickVictimsOrdersByCriticalityThenSlack)
{
    LoadGenParams lp = plainLoad(4, 1000.0);
    const ScenarioLoadGen load(lp);
    FleetParams fp = fleetParams(2);
    fp.rebalance.maxEscalationsPerEpoch = 2;
    const FleetCoordinator coord(fp, load);

    std::vector<FleetCoordinator::Candidate> cands;
    cands.push_back({10, 0, 0, 2, 90.0});
    cands.push_back({11, 0, 1, 0, 10.0});
    cands.push_back({12, 1, 0, 0, 50.0});
    cands.push_back({13, 1, 1, 1, 99.0});
    const auto victims = coord.pickVictims(std::move(cands));
    ASSERT_EQ(victims.size(), 2u); // capped per epoch.
    EXPECT_EQ(victims[0].stream, 12); // crit 0, most slack.
    EXPECT_EQ(victims[1].stream, 11); // crit 0, less slack.
}

// ------------------------------------------------- measured engines

TEST(ShardedServer, MeasuredEngineFleetServesAcrossShards)
{
    // Two NnBatchEngine replicas stepped in parallel: the policy
    // layers run against real multithreaded kernels sharing the
    // process ThreadPool. This is the fleet TSan target.
    const nn::ModelSpec spec = nn::detectorSpec(32, 0.05);
    nn::Network net = nn::buildNetwork(spec);
    Rng weightRng(7);
    nn::initDetectorWeights(net, weightRng);

    const int streams = 4;
    std::vector<nn::Tensor> inputs;
    Rng inputRng(21);
    for (int s = 0; s < streams; ++s) {
        nn::Tensor t(1, 32, 32);
        for (std::size_t i = 0; i < t.size(); ++i)
            t.data()[i] =
                static_cast<float>(inputRng.uniform(0.0, 1.0));
        inputs.push_back(t);
    }

    LoadGenParams lp;
    lp.streams = streams;
    lp.framesPerStream = 3;
    const ScenarioLoadGen load(lp);

    FleetParams fp = fleetParams(2);
    fp.serve.stream.deadlineMs = 1e6; // generous: everything admitted.
    fp.serve.governor.budgetMs = 1e6;
    fp.parallel = true;
    NnBatchEngine e0(net, inputs, 2);
    NnBatchEngine e1(net, inputs, 2);
    ShardedServer fleetServer(fp, load, {&e0, &e1});
    const FleetReport r = fleetServer.run();

    EXPECT_EQ(r.framesArrived, streams * 3);
    EXPECT_EQ(r.framesAdmitted, streams * 3);
    EXPECT_EQ(r.framesShed, 0);
}

// ----------------------------------------------------- fatal paths

TEST(ShardedServerDeathTest, InjectIntoVacatedSlotDies)
{
    // The race the handoff protocol prevents, end to end: a stale
    // router keeps sending a migrated-away stream's arrivals to its
    // old shard. The vacated slot (and the released token behind
    // it) turns that into a crash instead of a double-dispatch.
    ServeParams sp = fleetServeParams();
    ModeledBatchEngine engine(ModeledEngineParams{});
    MultiStreamServer server(sp, engine,
                             MultiStreamServer::ShardTag{}, 0);
    StreamParams stp;
    auto stream = std::make_unique<StreamState>(
        0, stp, sp.governor, sp.slo);
    const int slot = server.importStream(std::move(stream));
    ASSERT_TRUE(server.migratable(slot));
    std::unique_ptr<StreamState> out = server.exportStream(slot);
    ASSERT_TRUE(out);
    EXPECT_FALSE(server.migratable(slot));
    EXPECT_DEATH(server.injectArrival(slot, 0, 0.0), "vacant");
}

TEST(ShardedServerDeathTest, ExportingABusyStreamDies)
{
    ServeParams sp = fleetServeParams();
    ModeledBatchEngine engine(ModeledEngineParams{});
    MultiStreamServer server(sp, engine,
                             MultiStreamServer::ShardTag{}, 0);
    StreamParams stp;
    auto stream = std::make_unique<StreamState>(
        0, stp, sp.governor, sp.slo);
    const int slot = server.importStream(std::move(stream));
    server.injectArrival(slot, 0, 0.0);
    server.stepUntil(0.0); // admit the frame: it is now in flight.
    // The migration protocol refuses to move a stream mid-frame.
    EXPECT_FALSE(server.migratable(slot));
    EXPECT_DEATH((void)server.exportStream(slot), "not quiescent");
}

} // namespace
