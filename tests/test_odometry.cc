/**
 * @file
 * Tests for the wheel-odometry sensor and its localizer integration:
 * measurement statistics, unicycle integration exactness, bias
 * persistence, and the prediction improvement through turns.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sensors/odometry.hh"
#include "sensors/scenario.hh"
#include "slam/localizer.hh"
#include "slam/mapping.hh"

namespace {

using namespace ad;
using namespace ad::sensors;

TEST(Odometry, CleanSensorRecoversMotion)
{
    OdometryParams params;
    params.wheelScaleBias = 0;
    params.speedNoise = 0;
    params.gyroBias = 0;
    params.gyroNoise = 0;
    WheelOdometry odo(1, params);
    const Pose2 a(0, 0, 0);
    const Pose2 b(2.0, 0, 0.1);
    const auto r = odo.measure(a, b, 0.1);
    EXPECT_NEAR(r.speed, 20.0, 1e-9);
    EXPECT_NEAR(r.yawRate, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(r.dt, 0.1);
}

TEST(Odometry, BiasIsFixedPerUnit)
{
    WheelOdometry odo(7);
    const double bias = odo.scaleBias();
    EXPECT_NEAR(bias, 1.0, 0.05);
    // Same seed -> same unit -> same bias.
    WheelOdometry again(7);
    EXPECT_DOUBLE_EQ(again.scaleBias(), bias);
    // Different unit -> (almost surely) different bias.
    WheelOdometry other(8);
    EXPECT_NE(other.scaleBias(), bias);
}

TEST(Odometry, NoiseAveragesOut)
{
    WheelOdometry odo(3);
    const Pose2 a(0, 0, 0);
    const Pose2 b(1.5, 0, 0);
    double sum = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i)
        sum += odo.measure(a, b, 0.1).speed;
    // Mean approaches trueSpeed * scaleBias.
    EXPECT_NEAR(sum / n, 15.0 * odo.scaleBias(), 0.05);
}

TEST(Odometry, IntegrationMatchesStraightLine)
{
    OdometryReading r;
    r.speed = 10;
    r.yawRate = 0;
    r.dt = 0.5;
    const Pose2 out = integrateOdometry(Pose2(1, 2, 0), r);
    EXPECT_NEAR(out.pos.x, 6.0, 1e-9);
    EXPECT_NEAR(out.pos.y, 2.0, 1e-9);
    EXPECT_NEAR(out.theta, 0.0, 1e-9);
}

TEST(Odometry, IntegrationTurnsWithYawRate)
{
    // Quarter circle: v = r*w; after t = (pi/2)/w the heading turned
    // 90 degrees. Midpoint integration approximates the arc chord.
    OdometryReading r;
    r.speed = 5.0;
    r.yawRate = 0.5;
    Pose2 pose(0, 0, 0);
    const double total = (M_PI / 2) / r.yawRate;
    const int steps = 100;
    r.dt = total / steps;
    for (int i = 0; i < steps; ++i)
        pose = integrateOdometry(pose, r);
    EXPECT_NEAR(pose.theta, M_PI / 2, 1e-6);
    // Circle radius = v/w = 10: end point (10, 10).
    EXPECT_NEAR(pose.pos.x, 10.0, 0.05);
    EXPECT_NEAR(pose.pos.y, 10.0, 0.05);
}

TEST(OdometryLocalizer, PredictionSurvivesSpeedChange)
{
    // Build a short map, then drive with a strong speed change. The
    // constant-velocity model mispredicts after the jump;
    // odometry-fed prediction keeps the narrow search sufficient.
    Rng rng(11);
    sensors::ScenarioParams sp;
    sp.roadLength = 150.0;
    const Scenario sc = makeHighwayScenario(rng, sp);
    Camera camera(Resolution::HHD);
    const slam::PriorMap map = slam::buildPriorMap(sc.world, camera, 1);

    sensors::World drive;
    drive.road() = sc.world.road();
    for (const auto& lm : sc.world.landmarks())
        drive.landmarks().push_back(lm);

    slam::LocalizerParams lp;
    slam::Localizer loc(&map, &camera, lp, 5);
    WheelOdometry odo(21);

    Pose2 prev(20.0, drive.road().laneCenter(1), 0.0);
    loc.reset(prev, {2.0, 0.0});
    Pose2 ego = prev;
    int okCount = 0;
    int relocs = 0;
    for (int i = 0; i < 12; ++i) {
        // Speed alternates hard between 2 and 14 m/s.
        const double speed = (i % 2) ? 14.0 : 2.0;
        prev = ego;
        ego.pos.x += speed * 0.1;
        loc.feedOdometry(odo.measure(prev, ego, 0.1));
        const auto frame = camera.render(drive, ego);
        const auto r = loc.localize(frame.image, 0.1);
        okCount += r.ok;
        relocs += r.relocalized;
        if (r.ok) {
            EXPECT_LT(r.pose.distanceTo(ego), 1.5) << "frame " << i;
        }
    }
    EXPECT_GE(okCount, 10);
    // Odometry keeps the prediction good enough that wide searches
    // stay rare.
    EXPECT_LE(relocs, 2);
}

} // namespace
