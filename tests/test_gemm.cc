/**
 * @file
 * Property tests for the GEMM/GEMV kernels: the blocked implementation
 * must agree with the naive reference over a sweep of shapes, including
 * degenerate and non-square cases, since all DNN compute lowers to it.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/random.hh"
#include "nn/gemm.hh"
#include "nn/kernel_context.hh"

namespace {

using ad::Rng;
using ad::nn::gemm;
using ad::nn::gemmBlockedReference;
using ad::nn::gemmNaive;
using ad::nn::gemv;
using ad::nn::kernelContext;

std::vector<float>
randomMatrix(std::size_t n, Rng& rng)
{
    std::vector<float> m(n);
    for (auto& v : m)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    return m;
}

TEST(Gemm, KnownSmallProduct)
{
    // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
    const std::vector<float> a = {1, 2, 3, 4};
    const std::vector<float> b = {5, 6, 7, 8};
    std::vector<float> c(4, 0.0f);
    gemm(2, 2, 2, a.data(), b.data(), c.data());
    EXPECT_FLOAT_EQ(c[0], 19);
    EXPECT_FLOAT_EQ(c[1], 22);
    EXPECT_FLOAT_EQ(c[2], 43);
    EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(Gemm, AccumulatesIntoC)
{
    const std::vector<float> a = {1, 0, 0, 1};
    const std::vector<float> b = {2, 3, 4, 5};
    std::vector<float> c = {10, 10, 10, 10};
    gemm(2, 2, 2, a.data(), b.data(), c.data());
    EXPECT_FLOAT_EQ(c[0], 12);
    EXPECT_FLOAT_EQ(c[3], 15);
}

TEST(Gemm, IdentityLeavesMatrix)
{
    Rng rng(1);
    const std::size_t n = 17;
    std::vector<float> eye(n * n, 0.0f);
    for (std::size_t i = 0; i < n; ++i)
        eye[i * n + i] = 1.0f;
    const auto b = randomMatrix(n * n, rng);
    std::vector<float> c(n * n, 0.0f);
    gemm(n, n, n, eye.data(), b.data(), c.data());
    for (std::size_t i = 0; i < n * n; ++i)
        EXPECT_FLOAT_EQ(c[i], b[i]);
}

/** Shape sweep: blocked GEMM equals the naive reference. */
class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemmShapeTest, MatchesNaive)
{
    const auto [m, n, k] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 73 + n * 7 + k));
    const auto a = randomMatrix(static_cast<std::size_t>(m) * k, rng);
    const auto b = randomMatrix(static_cast<std::size_t>(k) * n, rng);
    std::vector<float> c1(static_cast<std::size_t>(m) * n, 0.5f);
    std::vector<float> c2 = c1;
    gemm(m, n, k, a.data(), b.data(), c1.data());
    gemmNaive(m, n, k, a.data(), b.data(), c2.data());
    for (std::size_t i = 0; i < c1.size(); ++i)
        ASSERT_NEAR(c1[i], c2[i], 1e-3) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 64, 300),
                      std::make_tuple(64, 1, 300), std::make_tuple(3, 5, 7),
                      std::make_tuple(65, 33, 257),  // crosses block edges
                      std::make_tuple(64, 64, 256),  // exactly block-sized
                      std::make_tuple(128, 10, 512),
                      std::make_tuple(16, 169, 144)));  // conv-like

/**
 * The determinism contract of the parallel kernel layer: the packed
 * kernel produces bitwise-identical C for every thread count, and
 * matches the seed serial kernel bit for bit (same per-element
 * ascending-k accumulation order). Ragged shapes exercise partial
 * micro-tiles and K-block edges.
 */
class GemmDeterminismTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemmDeterminismTest, ParallelBitwiseEqualsSerial)
{
    const auto [m, n, k] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 131 + n * 17 + k));
    std::vector<float> a(static_cast<std::size_t>(m) * k);
    std::vector<float> b(static_cast<std::size_t>(k) * n);
    for (auto& v : a)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& v : b)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));

    std::vector<float> serial(static_cast<std::size_t>(m) * n, 0.25f);
    gemm(m, n, k, a.data(), b.data(), serial.data());

    for (const int threads : {2, 4, 8}) {
        std::vector<float> parallel(static_cast<std::size_t>(m) * n,
                                    0.25f);
        gemm(m, n, k, a.data(), b.data(), parallel.data(),
             kernelContext(threads));
        for (std::size_t i = 0; i < serial.size(); ++i)
            ASSERT_EQ(serial[i], parallel[i])
                << "bitwise divergence at " << i << " with " << threads
                << " threads";
    }
}

TEST_P(GemmDeterminismTest, PackedBitwiseEqualsSeedKernel)
{
    const auto [m, n, k] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 131 + n * 17 + k));
    std::vector<float> a(static_cast<std::size_t>(m) * k);
    std::vector<float> b(static_cast<std::size_t>(k) * n);
    for (auto& v : a)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& v : b)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));

    std::vector<float> packed(static_cast<std::size_t>(m) * n, 0.25f);
    std::vector<float> seed = packed;
    gemm(m, n, k, a.data(), b.data(), packed.data(),
         kernelContext(4));
    gemmBlockedReference(m, n, k, a.data(), b.data(), seed.data());
    for (std::size_t i = 0; i < seed.size(); ++i)
        ASSERT_EQ(seed[i], packed[i]) << "bitwise divergence at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    RaggedShapes, GemmDeterminismTest,
    ::testing::Values(std::make_tuple(65, 33, 257),
                      std::make_tuple(7, 130, 700),
                      std::make_tuple(129, 257, 513),
                      std::make_tuple(1, 8, 256),
                      std::make_tuple(16, 169, 144)));

TEST(Gemv, ParallelBitwiseEqualsSerial)
{
    Rng rng(10);
    const std::size_t m = 301;
    const std::size_t k = 517;
    std::vector<float> a(m * k);
    std::vector<float> x(k);
    for (auto& v : a)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& v : x)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    std::vector<float> serial(m, 0.5f);
    gemv(m, k, a.data(), x.data(), serial.data());
    for (const int threads : {2, 8}) {
        std::vector<float> parallel(m, 0.5f);
        gemv(m, k, a.data(), x.data(), parallel.data(),
             kernelContext(threads));
        for (std::size_t i = 0; i < m; ++i)
            ASSERT_EQ(serial[i], parallel[i]) << "at " << i;
    }
}

TEST(Gemv, MatchesGemmColumnCase)
{
    Rng rng(9);
    const std::size_t m = 37;
    const std::size_t k = 61;
    const auto a = randomMatrix(m * k, rng);
    const auto x = randomMatrix(k, rng);
    std::vector<float> y1(m, 1.0f);
    std::vector<float> y2(m, 1.0f);
    gemv(m, k, a.data(), x.data(), y1.data());
    gemm(m, 1, k, a.data(), x.data(), y2.data());
    for (std::size_t i = 0; i < m; ++i)
        EXPECT_NEAR(y1[i], y2[i], 1e-4);
}

} // namespace
