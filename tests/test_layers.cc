/**
 * @file
 * Tests for the layer zoo: convolution against a direct reference,
 * pooling, activations, fully connected layers, shape propagation and
 * the FLOP/byte profiles the accelerator models rely on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "nn/layers.hh"

namespace {

using namespace ad::nn;
using ad::Rng;

Tensor
randomTensor(int c, int h, int w, Rng& rng)
{
    Tensor t(c, h, w);
    for (int ci = 0; ci < c; ++ci)
        for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x)
                t.at(ci, y, x) = static_cast<float>(rng.uniform(-1, 1));
    return t;
}

/** Direct (definition-based) convolution for validation. */
Tensor
convReference(const Conv2D& conv, const Tensor& in)
{
    const Shape outShape =
        conv.outputShape({in.channels(), in.height(), in.width()});
    Tensor out(outShape.c, outShape.h, outShape.w);
    const int k = conv.kernel();
    for (int oc = 0; oc < outShape.c; ++oc) {
        for (int oy = 0; oy < outShape.h; ++oy) {
            for (int ox = 0; ox < outShape.w; ++ox) {
                float acc = conv.bias()[oc];
                for (int ic = 0; ic < in.channels(); ++ic) {
                    for (int ky = 0; ky < k; ++ky) {
                        for (int kx = 0; kx < k; ++kx) {
                            const int iy = oy * conv.stride() - conv.pad() +
                                           ky;
                            const int ix = ox * conv.stride() - conv.pad() +
                                           kx;
                            if (iy < 0 || iy >= in.height() || ix < 0 ||
                                ix >= in.width())
                                continue;
                            const std::size_t wi =
                                ((static_cast<std::size_t>(oc) *
                                  in.channels() + ic) * k + ky) * k + kx;
                            acc += conv.weights()[wi] * in.at(ic, iy, ix);
                        }
                    }
                }
                out.at(oc, oy, ox) = acc;
            }
        }
    }
    return out;
}

struct ConvCase
{
    int inC, outC, k, stride, pad, h, w;
};

class ConvParamTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvParamTest, MatchesDirectConvolution)
{
    const auto p = GetParam();
    Rng rng(p.inC * 131 + p.outC * 17 + p.k);
    Conv2D conv("c", p.inC, p.outC, p.k, p.stride, p.pad);
    for (auto& w : conv.weights())
        w = static_cast<float>(rng.uniform(-0.5, 0.5));
    for (auto& b : conv.bias())
        b = static_cast<float>(rng.uniform(-0.5, 0.5));
    const Tensor in = randomTensor(p.inC, p.h, p.w, rng);
    const Tensor fast = conv.forward(in);
    const Tensor ref = convReference(conv, in);
    ASSERT_EQ(fast.size(), ref.size());
    for (int c = 0; c < ref.channels(); ++c)
        for (int y = 0; y < ref.height(); ++y)
            for (int x = 0; x < ref.width(); ++x)
                ASSERT_NEAR(fast.at(c, y, x), ref.at(c, y, x), 1e-3)
                    << c << "," << y << "," << x;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvParamTest,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 5, 5},
                      ConvCase{1, 4, 3, 1, 1, 8, 8},
                      ConvCase{3, 8, 3, 1, 1, 13, 17},
                      ConvCase{4, 2, 5, 1, 2, 11, 9},
                      ConvCase{2, 6, 3, 2, 1, 16, 16},
                      ConvCase{8, 8, 1, 1, 0, 7, 7},
                      ConvCase{1, 2, 11, 4, 0, 23, 23}));  // AlexNet-like

TEST(Conv2D, ParallelForwardBitwiseEqualsSerial)
{
    // The kernel-layer determinism contract at the layer level: a
    // parallel context must not change a single output bit.
    Rng rng(77);
    Conv2D conv("c", 8, 16, 3, 1, 1);
    for (auto& w : conv.weights())
        w = static_cast<float>(rng.uniform(-0.5, 0.5));
    for (auto& b : conv.bias())
        b = static_cast<float>(rng.uniform(-0.5, 0.5));
    const Tensor in = randomTensor(8, 29, 31, rng);
    const Tensor serial = conv.forward(in);
    for (const int threads : {2, 4, 8}) {
        const Tensor parallel = conv.forward(in, kernelContext(threads));
        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            ASSERT_EQ(serial.data()[i], parallel.data()[i])
                << "bitwise divergence at " << i << " with " << threads
                << " threads";
    }
}

TEST(FullyConnected, ParallelForwardBitwiseEqualsSerial)
{
    Rng rng(78);
    FullyConnected fc("fc", 257, 131);
    for (auto& w : fc.weights())
        w = static_cast<float>(rng.uniform(-0.5, 0.5));
    for (auto& b : fc.bias())
        b = static_cast<float>(rng.uniform(-0.5, 0.5));
    const Tensor in = randomTensor(257, 1, 1, rng);
    const Tensor serial = fc.forward(in);
    const Tensor parallel = fc.forward(in, kernelContext(4));
    for (std::size_t i = 0; i < serial.size(); ++i)
        ASSERT_EQ(serial.data()[i], parallel.data()[i]) << "at " << i;
}

TEST(Conv2D, OutputShapeArithmetic)
{
    Conv2D conv("c", 3, 16, 3, 1, 1);
    const Shape out = conv.outputShape({3, 32, 48});
    EXPECT_EQ(out.c, 16);
    EXPECT_EQ(out.h, 32);
    EXPECT_EQ(out.w, 48);
    Conv2D strided("s", 3, 8, 3, 2, 1);
    const Shape so = strided.outputShape({3, 32, 32});
    EXPECT_EQ(so.h, 16);
}

TEST(Conv2D, ProfileCountsFlops)
{
    Conv2D conv("c", 2, 4, 3, 1, 1);
    const auto p = conv.profile({2, 10, 10});
    // 2 * outC * inC * k*k * outH * outW = 2*4*2*9*100 = 14400.
    EXPECT_EQ(p.flops, 14400u);
    EXPECT_EQ(p.weightBytes, (4 * 2 * 9 + 4) * sizeof(float));
    EXPECT_EQ(p.kind, LayerKind::Conv);
    EXPECT_EQ(p.inputBytes, 2u * 100 * 4);
    EXPECT_EQ(p.outputBytes, 4u * 100 * 4);
}

TEST(MaxPool, SelectsWindowMaximum)
{
    MaxPool pool("p", 2, 2);
    Tensor in(1, 4, 4);
    float v = 0;
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            in.at(0, y, x) = v++;
    const Tensor out = pool.forward(in);
    EXPECT_EQ(out.height(), 2);
    EXPECT_EQ(out.width(), 2);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 5.0f);
    EXPECT_FLOAT_EQ(out.at(0, 0, 1), 7.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1, 0), 13.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1, 1), 15.0f);
}

TEST(MaxPool, HandlesNegativeValues)
{
    MaxPool pool("p", 2, 2);
    Tensor in(1, 2, 2);
    in.at(0, 0, 0) = -5;
    in.at(0, 0, 1) = -2;
    in.at(0, 1, 0) = -9;
    in.at(0, 1, 1) = -3;
    EXPECT_FLOAT_EQ(pool.forward(in).at(0, 0, 0), -2.0f);
}

TEST(Activation, ReluAndLeaky)
{
    Tensor in(1, 1, 4);
    in.at(0, 0, 0) = -2;
    in.at(0, 0, 1) = 3;
    in.at(0, 0, 2) = 0;
    in.at(0, 0, 3) = -0.5;
    Activation relu("r", 0.0f);
    const Tensor r = relu.forward(in);
    EXPECT_FLOAT_EQ(r.at(0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(r.at(0, 0, 1), 3.0f);
    Activation leaky("l", 0.1f);
    const Tensor l = leaky.forward(in);
    EXPECT_FLOAT_EQ(l.at(0, 0, 0), -0.2f);
    EXPECT_FLOAT_EQ(l.at(0, 0, 3), -0.05f);
    EXPECT_FLOAT_EQ(l.at(0, 0, 1), 3.0f);
}

TEST(FullyConnected, ComputesAffineMap)
{
    FullyConnected fc("f", 3, 2);
    // y = W x + b with W = [[1,2,3],[4,5,6]], b = [0.5, -1].
    fc.weights() = {1, 2, 3, 4, 5, 6};
    fc.bias() = {0.5f, -1.0f};
    Tensor in(3, 1, 1);
    in.at(0, 0, 0) = 1;
    in.at(1, 0, 0) = 2;
    in.at(2, 0, 0) = 3;
    const Tensor out = fc.forward(in);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 14.5f);
    EXPECT_FLOAT_EQ(out.at(1, 0, 0), 31.0f);
}

TEST(FullyConnected, FlattensSpatialInput)
{
    FullyConnected fc("f", 8, 2);
    Tensor in(2, 2, 2);
    in.fill(1.0f);
    fc.weights().assign(16, 0.25f);
    const Tensor out = fc.forward(in);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 2.0f);
    const Shape s = fc.outputShape({2, 2, 2});
    EXPECT_EQ(s.c, 2);
    EXPECT_EQ(s.h, 1);
}

TEST(FullyConnected, ProfileCountsFlopsAndWeights)
{
    FullyConnected fc("f", 100, 50);
    const auto p = fc.profile({100, 1, 1});
    EXPECT_EQ(p.flops, 2u * 100 * 50);
    EXPECT_EQ(p.weightBytes, (100u * 50 + 50) * sizeof(float));
    EXPECT_EQ(p.kind, LayerKind::FullyConnected);
}

TEST(AvgPool, AveragesWindow)
{
    AvgPool pool("p", 2, 2);
    Tensor in(1, 2, 4);
    float v = 0;
    for (int y = 0; y < 2; ++y)
        for (int x = 0; x < 4; ++x)
            in.at(0, y, x) = v++;
    const Tensor out = pool.forward(in);
    EXPECT_EQ(out.width(), 2);
    EXPECT_EQ(out.height(), 1);
    // (0+1+4+5)/4 and (2+3+6+7)/4.
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 2.5f);
    EXPECT_FLOAT_EQ(out.at(0, 0, 1), 4.5f);
}

TEST(AvgPool, GlobalPoolingReducesToScalar)
{
    AvgPool pool("gap", 4, 4);
    Tensor in(2, 4, 4);
    in.fill(3.0f);
    in.at(1, 0, 0) = 19.0f;
    const Tensor out = pool.forward(in);
    EXPECT_EQ(out.height(), 1);
    EXPECT_EQ(out.width(), 1);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 3.0f);
    EXPECT_FLOAT_EQ(out.at(1, 0, 0), 4.0f);
}

TEST(Softmax, NormalizesPerPosition)
{
    Softmax sm("s");
    Tensor in(3, 1, 2);
    in.at(0, 0, 0) = 1.0f;
    in.at(1, 0, 0) = 2.0f;
    in.at(2, 0, 0) = 3.0f;
    in.at(0, 0, 1) = 100.0f; // large values must not overflow
    in.at(1, 0, 1) = 100.0f;
    in.at(2, 0, 1) = 100.0f;
    const Tensor out = sm.forward(in);
    for (int x = 0; x < 2; ++x) {
        float sum = 0;
        for (int c = 0; c < 3; ++c) {
            EXPECT_GT(out.at(c, 0, x), 0.0f);
            sum += out.at(c, 0, x);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
    // Ordering preserved; equal logits -> uniform.
    EXPECT_GT(out.at(2, 0, 0), out.at(1, 0, 0));
    EXPECT_NEAR(out.at(0, 0, 1), 1.0f / 3, 1e-5);
}

TEST(FoldBatchNorm, MatchesExplicitNormalization)
{
    Rng rng(77);
    Conv2D conv("c", 2, 3, 3, 1, 1);
    for (auto& w : conv.weights())
        w = static_cast<float>(rng.uniform(-0.5, 0.5));
    for (auto& b : conv.bias())
        b = static_cast<float>(rng.uniform(-0.5, 0.5));
    const Tensor in = randomTensor(2, 6, 6, rng);
    const Tensor preBn = conv.forward(in);

    BatchNormParams bn;
    for (int c = 0; c < 3; ++c) {
        bn.gamma.push_back(static_cast<float>(rng.uniform(0.5, 2.0)));
        bn.beta.push_back(static_cast<float>(rng.uniform(-1, 1)));
        bn.mean.push_back(static_cast<float>(rng.uniform(-1, 1)));
        bn.variance.push_back(static_cast<float>(rng.uniform(0.1, 2)));
    }

    // Explicit reference: BN applied to the original conv output.
    Tensor expected = preBn;
    for (int c = 0; c < 3; ++c) {
        const float scale =
            bn.gamma[c] / std::sqrt(bn.variance[c] + bn.epsilon);
        for (int y = 0; y < expected.height(); ++y)
            for (int x = 0; x < expected.width(); ++x)
                expected.at(c, y, x) =
                    scale * (preBn.at(c, y, x) - bn.mean[c]) +
                    bn.beta[c];
    }

    foldBatchNorm(conv, bn);
    const Tensor folded = conv.forward(in);
    for (int c = 0; c < 3; ++c)
        for (int y = 0; y < folded.height(); ++y)
            for (int x = 0; x < folded.width(); ++x)
                ASSERT_NEAR(folded.at(c, y, x), expected.at(c, y, x),
                            1e-4);
}

TEST(FoldBatchNorm, RejectsMismatchedSizes)
{
    Conv2D conv("c", 1, 4, 3, 1, 1);
    BatchNormParams bn;
    bn.gamma = {1, 1};
    bn.beta = {0, 0};
    bn.mean = {0, 0};
    bn.variance = {1, 1};
    EXPECT_EXIT(foldBatchNorm(conv, bn), ::testing::ExitedWithCode(1),
                "output channels");
}

TEST(LayerKindNames, AreStable)
{
    EXPECT_STREQ(layerKindName(LayerKind::Conv), "conv");
    EXPECT_STREQ(layerKindName(LayerKind::Pool), "pool");
    EXPECT_STREQ(layerKindName(LayerKind::Activation), "act");
    EXPECT_STREQ(layerKindName(LayerKind::FullyConnected), "fc");
}

} // namespace
