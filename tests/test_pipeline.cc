/**
 * @file
 * Integration tests for the end-to-end pipeline (measured mode) and
 * the modeled-mode system explorer: full scenario drives exercising
 * every engine, the Figure 1 latency composition, the Figure 11/12
 * configuration machinery and the Section 2.4 constraint checker.
 */

#include <gtest/gtest.h>

#include "pipeline/constraints.hh"
#include "pipeline/pipeline.hh"
#include "sensors/scenario.hh"
#include "slam/mapping.hh"

namespace {

using namespace ad;
using namespace ad::pipeline;
using accel::Platform;

PipelineParams
testParams()
{
    PipelineParams p;
    p.detector.inputSize = 160;
    p.detector.width = 0.25;
    p.trackerPool.poolSize = 6;
    p.trackerPool.tracker.cropSize = 32;
    p.trackerPool.tracker.width = 0.1;
    p.motionPlanner.cruiseSpeed = 10.0;
    return p;
}

class PipelineIntegrationTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        rng_ = new Rng(31);
        sensors::ScenarioParams sp;
        sp.roadLength = 150.0;
        sp.vehicles = 3;
        scenario_ = new sensors::Scenario(
            sensors::makeUrbanScenario(*rng_, sp));
        camera_ = new sensors::Camera(sensors::Resolution::HHD);
        slam::MappingParams mp;
        mp.orb.fast.maxKeypoints = 500;
        map_ = new slam::PriorMap(
            slam::buildPriorMap(scenario_->world, *camera_, 1, mp));

        graph_ = new planning::RoadGraph();
        const double y = scenario_->world.road().laneCenter(1);
        int prev = -1;
        for (double x = 0; x <= 150.0; x += 50.0) {
            const int node = graph_->addNode({x, y});
            if (prev >= 0)
                graph_->addBidirectional(prev, node);
            prev = node;
        }
    }

    static void
    TearDownTestSuite()
    {
        delete graph_;
        delete map_;
        delete camera_;
        delete scenario_;
        delete rng_;
        graph_ = nullptr;
        map_ = nullptr;
        camera_ = nullptr;
        scenario_ = nullptr;
        rng_ = nullptr;
    }

    static Rng* rng_;
    static sensors::Scenario* scenario_;
    static sensors::Camera* camera_;
    static slam::PriorMap* map_;
    static planning::RoadGraph* graph_;
};

Rng* PipelineIntegrationTest::rng_ = nullptr;
sensors::Scenario* PipelineIntegrationTest::scenario_ = nullptr;
sensors::Camera* PipelineIntegrationTest::camera_ = nullptr;
slam::PriorMap* PipelineIntegrationTest::map_ = nullptr;
planning::RoadGraph* PipelineIntegrationTest::graph_ = nullptr;

TEST_F(PipelineIntegrationTest, DrivesScenarioEndToEnd)
{
    PipelineParams params = testParams();
    params.laneCenterY = scenario_->world.road().laneCenter(1);
    Pipeline pipeline(map_, camera_, graph_, params);

    sensors::World world = scenario_->world;
    Pose2 ego = scenario_->ego.pose;
    pipeline.reset(ego, {10, 0}, {140, params.laneCenterY});

    int localized = 0;
    int framesWithTracks = 0;
    const int frames = 15;
    for (int i = 0; i < frames; ++i) {
        world.step(0.1);
        ego.pos.x += 1.0;
        const sensors::Frame frame = camera_->render(world, ego);
        const FrameOutput out =
            pipeline.processFrame(frame.image, 0.1, 10.0);
        localized += out.localization.ok;
        framesWithTracks += !out.tracks.empty();
        EXPECT_FALSE(out.trajectory.empty());
        EXPECT_GT(out.latencies.endToEndMs(), 0.0);
    }
    EXPECT_GE(localized, frames * 2 / 3);
    EXPECT_GT(framesWithTracks, 0);
    EXPECT_EQ(pipeline.endToEndLatency().count(),
              static_cast<std::size_t>(frames));
}

TEST_F(PipelineIntegrationTest, LatencyComposesParallelBranches)
{
    StageLatencies lat;
    lat.detMs = 10;
    lat.traMs = 5;
    lat.locMs = 8;
    lat.fusionMs = 0.1;
    lat.motPlanMs = 0.5;
    // DET + TRA = 15 > LOC = 8.
    EXPECT_NEAR(lat.endToEndMs(), 15.6, 1e-9);
    lat.locMs = 40;
    EXPECT_NEAR(lat.endToEndMs(), 40.6, 1e-9);
}

TEST_F(PipelineIntegrationTest, CycleBreakdownIsDnnAndFeDominated)
{
    PipelineParams params = testParams();
    params.laneCenterY = scenario_->world.road().laneCenter(1);
    Pipeline pipeline(map_, camera_, nullptr, params);

    sensors::World world = scenario_->world;
    Pose2 ego = scenario_->ego.pose;
    pipeline.reset(ego, {10, 0}, {140, params.laneCenterY});
    for (int i = 0; i < 8; ++i) {
        world.step(0.1);
        ego.pos.x += 1.0;
        const sensors::Frame frame = camera_->render(world, ego);
        pipeline.processFrame(frame.image, 0.1, 10.0);
    }
    const auto& cycles = pipeline.cycleBreakdown();
    // Figure 7 shape: DNN dominates DET; FE dominates LOC.
    EXPECT_GT(cycles.detDnnMs / (cycles.detDnnMs + cycles.detOtherMs),
              0.7);
    EXPECT_GT(cycles.locFeMs / (cycles.locFeMs + cycles.locOtherMs),
              0.5);
}

TEST_F(PipelineIntegrationTest, DeterministicAcrossRuns)
{
    // Whole-system reproducibility: two pipelines with identical
    // seeds over identical frames produce identical outputs.
    const auto run = [&](std::vector<double>& poses,
                         std::vector<std::size_t>& detCounts) {
        PipelineParams params = testParams();
        params.laneCenterY = scenario_->world.road().laneCenter(1);
        Pipeline pipe(map_, camera_, nullptr, params);
        sensors::World world = scenario_->world;
        Pose2 ego = scenario_->ego.pose;
        pipe.reset(ego, {10, 0}, {140, params.laneCenterY});
        for (int i = 0; i < 5; ++i) {
            world.step(0.1);
            ego.pos.x += 1.0;
            const sensors::Frame frame = camera_->render(world, ego);
            const auto out = pipe.processFrame(frame.image, 0.1, 10.0);
            poses.push_back(out.localization.pose.pos.x);
            poses.push_back(out.localization.pose.pos.y);
            detCounts.push_back(out.detections.size());
        }
    };
    std::vector<double> posesA, posesB;
    std::vector<std::size_t> detsA, detsB;
    run(posesA, detsA);
    run(posesB, detsB);
    ASSERT_EQ(posesA.size(), posesB.size());
    for (std::size_t i = 0; i < posesA.size(); ++i)
        EXPECT_DOUBLE_EQ(posesA[i], posesB[i]) << i;
    EXPECT_EQ(detsA, detsB);
}

TEST(SystemConfig, NameIsReadable)
{
    SystemConfig c;
    c.det = Platform::Gpu;
    c.tra = Platform::Asic;
    c.loc = Platform::Cpu;
    EXPECT_EQ(c.name(), "DET:GPU TRA:ASIC LOC:CPU");
}

TEST(SystemModel, AllConfigsEnumerates64)
{
    const auto configs = SystemModel::allConfigs();
    EXPECT_EQ(configs.size(), 64u);
}

TEST(SystemModel, CpuOnlyMissesConstraintsAcceleratedMeets)
{
    SystemModel model;
    Rng rng(5);

    SystemConfig cpuOnly;
    cpuOnly.det = cpuOnly.tra = cpuOnly.loc = Platform::Cpu;
    const auto cpu = model.assess(cpuOnly, 20000, rng);
    EXPECT_FALSE(cpu.meetsLatencyConstraint);
    // The paper's 9.1 s end-to-end CPU tail.
    EXPECT_NEAR(cpu.tailMs, 9100.0, 600.0);

    SystemConfig best; // Figure 11's 16.1 ms design
    best.det = Platform::Gpu;
    best.tra = Platform::Asic;
    best.loc = Platform::Asic;
    const auto accel = model.assess(best, 20000, rng);
    EXPECT_TRUE(accel.meetsLatencyConstraint);
    EXPECT_NEAR(accel.tailMs, 16.1, 2.5);
}

TEST(SystemModel, MeanOnlyConfigsExist)
{
    // Section 5.2: some configurations meet 100 ms on mean latency
    // but fail at the tail -- e.g. LOC on CPU (mean 40.8, tail 294).
    SystemModel model;
    Rng rng(11);
    SystemConfig c;
    c.det = Platform::Gpu;
    c.tra = Platform::Gpu;
    c.loc = Platform::Cpu;
    const auto a = model.assess(c, 50000, rng);
    EXPECT_TRUE(a.meetsLatencyOnMeanOnly);
}

TEST(SystemModel, GpuConfigBurnsMostPower)
{
    SystemModel model;
    SystemConfig gpu;
    gpu.det = gpu.tra = gpu.loc = Platform::Gpu;
    SystemConfig asic;
    asic.det = asic.tra = asic.loc = Platform::Asic;
    EXPECT_GT(model.computePowerW(gpu), 1000.0); // >1 kW (Section 5.3)
    EXPECT_LT(model.computePowerW(asic), 200.0);
}

TEST(SystemModel, RangeReductionShapesMatchFigure12)
{
    SystemModel model;
    Rng rng(13);
    SystemConfig gpu;
    gpu.det = gpu.tra = gpu.loc = Platform::Gpu;
    const auto g = model.assess(gpu, 1000, rng);
    // All-GPU: >10% range loss (the paper reports up to 12%).
    EXPECT_GT(g.rangeReductionPct, 10.0);

    SystemConfig asic;
    asic.det = asic.tra = asic.loc = Platform::Asic;
    const auto a = model.assess(asic, 1000, rng);
    // ASIC designs stay within ~2-3%.
    EXPECT_LT(a.rangeReductionPct, 3.5);
    EXPECT_LT(a.rangeReductionPct, g.rangeReductionPct / 3);
}

TEST(SystemModel, ResolutionSweepMatchesFigure13)
{
    // FHD: the best GPU/ASIC mix still meets 100 ms; QHD: nothing
    // does.
    SystemModel model;
    Rng rng(17);
    const double kittiPx = 1242.0 * 375;
    const double fhd = 1920.0 * 1080 / kittiPx;
    const double qhd = 2560.0 * 1440 / kittiPx;

    bool anyMeetsFhd = false;
    bool anyMeetsQhd = false;
    for (const auto& c : SystemModel::allConfigs(8, fhd)) {
        if (model.assess(c, 4000, rng).meetsLatencyConstraint)
            anyMeetsFhd = true;
    }
    for (const auto& c : SystemModel::allConfigs(8, qhd)) {
        if (model.assess(c, 4000, rng).meetsLatencyConstraint)
            anyMeetsQhd = true;
    }
    EXPECT_TRUE(anyMeetsFhd);
    EXPECT_FALSE(anyMeetsQhd);
}

TEST(ConstraintChecker, ReportsAllFiveClasses)
{
    SystemModel model;
    Rng rng(19);
    SystemConfig c;
    c.det = Platform::Gpu;
    c.tra = Platform::Asic;
    c.loc = Platform::Asic;
    const auto a = model.assess(c, 5000, rng);
    ConstraintChecker checker;
    const auto verdicts = checker.check(a);
    ASSERT_EQ(verdicts.size(), 5u);
    EXPECT_EQ(verdicts[0].constraint, "performance");
    EXPECT_TRUE(verdicts[0].satisfied);
    EXPECT_EQ(verdicts[4].constraint, "power");
    for (const auto& v : verdicts)
        EXPECT_FALSE(v.detail.empty());
}

TEST(ConstraintChecker, CpuSystemFailsPerformance)
{
    SystemModel model;
    Rng rng(23);
    SystemConfig c;
    c.det = c.tra = c.loc = Platform::Cpu;
    const auto a = model.assess(c, 5000, rng);
    ConstraintChecker checker;
    const auto verdicts = checker.check(a);
    EXPECT_FALSE(verdicts[0].satisfied); // performance
    EXPECT_FALSE(checker.allSatisfied(a));
}

TEST(ConstraintChecker, GpuSystemFailsPowerOnly)
{
    SystemModel model;
    Rng rng(29);
    SystemConfig c;
    c.det = c.tra = c.loc = Platform::Gpu;
    const auto a = model.assess(c, 5000, rng);
    ConstraintChecker checker;
    const auto verdicts = checker.check(a);
    EXPECT_TRUE(verdicts[0].satisfied);  // performance OK
    EXPECT_FALSE(verdicts[4].satisfied); // power: >5% range loss
}

TEST(ConstraintChecker, AcceleratedDesignSatisfiesEverything)
{
    SystemModel model;
    Rng rng(31);
    SystemConfig c; // FPGA LOC + ASIC DET/TRA: low power, low latency
    c.det = Platform::Asic;
    c.tra = Platform::Asic;
    c.loc = Platform::Asic;
    const auto a = model.assess(c, 5000, rng);
    ConstraintChecker checker;
    EXPECT_TRUE(checker.allSatisfied(a))
        << "tail=" << a.tailMs << " range=" << a.rangeReductionPct;
}

} // namespace
