/**
 * @file
 * Integration tests for the end-to-end pipeline (measured mode) and
 * the modeled-mode system explorer: full scenario drives exercising
 * every engine, the Figure 1 latency composition, the Figure 11/12
 * configuration machinery and the Section 2.4 constraint checker.
 * Also the async frame-graph execution mode: serial-vs-async bitwise
 * equivalence, determinism under faults + governor escalation while
 * frames overlap, and flight-recorder event conservation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "obs/flight.hh"
#include "obs/json.hh"
#include "pipeline/constraints.hh"
#include "pipeline/pipeline.hh"
#include "sensors/scenario.hh"
#include "slam/mapping.hh"

namespace {

using namespace ad;
using namespace ad::pipeline;
using accel::Platform;

PipelineParams
testParams()
{
    PipelineParams p;
    p.detector.inputSize = 160;
    p.detector.width = 0.25;
    p.trackerPool.poolSize = 6;
    p.trackerPool.tracker.cropSize = 32;
    p.trackerPool.tracker.width = 0.1;
    p.motionPlanner.cruiseSpeed = 10.0;
    return p;
}

class PipelineIntegrationTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        rng_ = new Rng(31);
        sensors::ScenarioParams sp;
        sp.roadLength = 150.0;
        sp.vehicles = 3;
        scenario_ = new sensors::Scenario(
            sensors::makeUrbanScenario(*rng_, sp));
        camera_ = new sensors::Camera(sensors::Resolution::HHD);
        slam::MappingParams mp;
        mp.orb.fast.maxKeypoints = 500;
        map_ = new slam::PriorMap(
            slam::buildPriorMap(scenario_->world, *camera_, 1, mp));

        graph_ = new planning::RoadGraph();
        const double y = scenario_->world.road().laneCenter(1);
        int prev = -1;
        for (double x = 0; x <= 150.0; x += 50.0) {
            const int node = graph_->addNode({x, y});
            if (prev >= 0)
                graph_->addBidirectional(prev, node);
            prev = node;
        }
    }

    static void
    TearDownTestSuite()
    {
        delete graph_;
        delete map_;
        delete camera_;
        delete scenario_;
        delete rng_;
        graph_ = nullptr;
        map_ = nullptr;
        camera_ = nullptr;
        scenario_ = nullptr;
        rng_ = nullptr;
    }

    static Rng* rng_;
    static sensors::Scenario* scenario_;
    static sensors::Camera* camera_;
    static slam::PriorMap* map_;
    static planning::RoadGraph* graph_;
};

Rng* PipelineIntegrationTest::rng_ = nullptr;
sensors::Scenario* PipelineIntegrationTest::scenario_ = nullptr;
sensors::Camera* PipelineIntegrationTest::camera_ = nullptr;
slam::PriorMap* PipelineIntegrationTest::map_ = nullptr;
planning::RoadGraph* PipelineIntegrationTest::graph_ = nullptr;

TEST_F(PipelineIntegrationTest, DrivesScenarioEndToEnd)
{
    PipelineParams params = testParams();
    params.laneCenterY = scenario_->world.road().laneCenter(1);
    Pipeline pipeline(map_, camera_, graph_, params);

    sensors::World world = scenario_->world;
    Pose2 ego = scenario_->ego.pose;
    pipeline.reset(ego, {10, 0}, {140, params.laneCenterY});

    int localized = 0;
    int framesWithTracks = 0;
    const int frames = 15;
    for (int i = 0; i < frames; ++i) {
        world.step(0.1);
        ego.pos.x += 1.0;
        const sensors::Frame frame = camera_->render(world, ego);
        const FrameOutput out =
            pipeline.processFrame(frame.image, 0.1, 10.0);
        localized += out.localization.ok;
        framesWithTracks += !out.tracks.empty();
        EXPECT_FALSE(out.trajectory.empty());
        EXPECT_GT(out.latencies.endToEndMs(), 0.0);
    }
    EXPECT_GE(localized, frames * 2 / 3);
    EXPECT_GT(framesWithTracks, 0);
    EXPECT_EQ(pipeline.endToEndLatency().count(),
              static_cast<std::size_t>(frames));
}

TEST_F(PipelineIntegrationTest, LatencyComposesParallelBranches)
{
    StageLatencies lat;
    lat.detMs = 10;
    lat.traMs = 5;
    lat.locMs = 8;
    lat.fusionMs = 0.1;
    lat.motPlanMs = 0.5;
    // DET + TRA = 15 > LOC = 8.
    EXPECT_NEAR(lat.endToEndMs(), 15.6, 1e-9);
    lat.locMs = 40;
    EXPECT_NEAR(lat.endToEndMs(), 40.6, 1e-9);
}

TEST_F(PipelineIntegrationTest, CycleBreakdownIsDnnAndFeDominated)
{
    PipelineParams params = testParams();
    params.laneCenterY = scenario_->world.road().laneCenter(1);
    Pipeline pipeline(map_, camera_, nullptr, params);

    sensors::World world = scenario_->world;
    Pose2 ego = scenario_->ego.pose;
    pipeline.reset(ego, {10, 0}, {140, params.laneCenterY});
    for (int i = 0; i < 8; ++i) {
        world.step(0.1);
        ego.pos.x += 1.0;
        const sensors::Frame frame = camera_->render(world, ego);
        pipeline.processFrame(frame.image, 0.1, 10.0);
    }
    const auto& cycles = pipeline.cycleBreakdown();
    // Figure 7 shape: DNN dominates DET; FE dominates LOC.
    EXPECT_GT(cycles.detDnnMs / (cycles.detDnnMs + cycles.detOtherMs),
              0.7);
    EXPECT_GT(cycles.locFeMs / (cycles.locFeMs + cycles.locOtherMs),
              0.5);
}

TEST_F(PipelineIntegrationTest, DeterministicAcrossRuns)
{
    // Whole-system reproducibility: two pipelines with identical
    // seeds over identical frames produce identical outputs.
    const auto run = [&](std::vector<double>& poses,
                         std::vector<std::size_t>& detCounts) {
        PipelineParams params = testParams();
        params.laneCenterY = scenario_->world.road().laneCenter(1);
        Pipeline pipe(map_, camera_, nullptr, params);
        sensors::World world = scenario_->world;
        Pose2 ego = scenario_->ego.pose;
        pipe.reset(ego, {10, 0}, {140, params.laneCenterY});
        for (int i = 0; i < 5; ++i) {
            world.step(0.1);
            ego.pos.x += 1.0;
            const sensors::Frame frame = camera_->render(world, ego);
            const auto out = pipe.processFrame(frame.image, 0.1, 10.0);
            poses.push_back(out.localization.pose.pos.x);
            poses.push_back(out.localization.pose.pos.y);
            detCounts.push_back(out.detections.size());
        }
    };
    std::vector<double> posesA, posesB;
    std::vector<std::size_t> detsA, detsB;
    run(posesA, detsA);
    run(posesB, detsB);
    ASSERT_EQ(posesA.size(), posesB.size());
    for (std::size_t i = 0; i < posesA.size(); ++i)
        EXPECT_DOUBLE_EQ(posesA[i], posesB[i]) << i;
    EXPECT_EQ(detsA, detsB);
}

/**
 * Everything semantically produced by one frame, flattened so two
 * runs can be compared bit for bit (doubles compare equal only when
 * the bits match; no tolerance anywhere).
 */
std::vector<double>
outputSignature(const FrameOutput& out)
{
    std::vector<double> sig;
    sig.push_back(static_cast<double>(out.frameId));
    sig.push_back(static_cast<double>(out.mode));
    sig.push_back(static_cast<double>(out.frameDropped));
    sig.push_back(static_cast<double>(out.detRan));
    sig.push_back(static_cast<double>(out.detFellBack));
    sig.push_back(static_cast<double>(out.locFellBack));
    sig.push_back(static_cast<double>(out.traCoasted));
    sig.push_back(static_cast<double>(out.detections.size()));
    for (const auto& d : out.detections) {
        sig.push_back(d.box.x);
        sig.push_back(d.box.y);
        sig.push_back(d.box.w);
        sig.push_back(d.box.h);
        sig.push_back(d.confidence);
    }
    sig.push_back(static_cast<double>(out.tracks.size()));
    for (const auto& t : out.tracks) {
        sig.push_back(static_cast<double>(t.id));
        sig.push_back(t.box.x);
        sig.push_back(t.box.y);
        sig.push_back(t.velocityPx.x);
        sig.push_back(t.velocityPx.y);
    }
    sig.push_back(static_cast<double>(out.localization.ok));
    sig.push_back(static_cast<double>(out.localization.relocalized));
    sig.push_back(out.localization.pose.pos.x);
    sig.push_back(out.localization.pose.pos.y);
    sig.push_back(out.localization.pose.theta);
    sig.push_back(out.command.steering);
    sig.push_back(out.command.acceleration);
    return sig;
}

/**
 * Drive `frames` frames through one pipeline via the submit/drain
 * interface (which degrades to processFrame when async is off) and
 * return the per-frame signatures in frame order.
 */
std::vector<std::vector<double>>
driveOutputs(const slam::PriorMap* map, const sensors::Camera* camera,
             const sensors::Scenario& scenario,
             const PipelineParams& params, int frames,
             std::vector<OperatingMode>* modes = nullptr)
{
    Pipeline pipe(map, camera, nullptr, params);
    sensors::World world = scenario.world;
    Pose2 ego = scenario.ego.pose;
    pipe.reset(ego, {10, 0}, {140, params.laneCenterY});

    std::vector<FrameOutput> outs;
    for (int i = 0; i < frames; ++i) {
        world.step(0.1);
        ego.pos.x += 1.0;
        const sensors::Frame frame = camera->render(world, ego);
        for (auto& out : pipe.submitFrame(frame.image, 0.1, 10.0))
            outs.push_back(std::move(out));
    }
    for (auto& out : pipe.drainAsync())
        outs.push_back(std::move(out));
    std::sort(outs.begin(), outs.end(),
              [](const FrameOutput& a, const FrameOutput& b) {
                  return a.frameId < b.frameId;
              });

    std::vector<std::vector<double>> sigs;
    for (const FrameOutput& out : outs) {
        sigs.push_back(outputSignature(out));
        if (modes)
            modes->push_back(out.mode);
    }
    return sigs;
}

TEST_F(PipelineIntegrationTest, AsyncMatrixMatchesSerialBitwise)
{
    // The tentpole determinism claim: with the governor off, the
    // async executor produces bitwise-identical outputs to the
    // serial path at every queue depth and kernel thread count --
    // engine state advances in frame order regardless of how stage
    // executions interleave on the virtual timeline.
    const int frames = 6;
    for (const int threads : {1, 2, 8}) {
        PipelineParams params = testParams();
        params.laneCenterY = scenario_->world.road().laneCenter(1);
        params.nnThreads = threads;
        const auto serial =
            driveOutputs(map_, camera_, *scenario_, params, frames);
        ASSERT_EQ(serial.size(), static_cast<std::size_t>(frames));
        for (const int depth : {1, 2, 3}) {
            params.async = true;
            params.asyncDepth = depth;
            const auto async = driveOutputs(map_, camera_, *scenario_,
                                            params, frames);
            EXPECT_EQ(serial, async)
                << "threads " << threads << " depth " << depth;
        }
    }
}

TEST_F(PipelineIntegrationTest, AsyncDepthOneWithGovernorMatchesSerial)
{
    // At depth 1 the commit of frame k precedes the admission of
    // frame k+1, so the governor's plan feedback has zero lag and
    // the async path must reproduce the serial run bit for bit even
    // with faults and the governor active.
    PipelineParams params = testParams();
    params.laneCenterY = scenario_->world.road().laneCenter(1);
    params.faults = FaultInjectorParams::scaledMix(0.5, 7);
    params.governor.enabled = true;
    const auto serial =
        driveOutputs(map_, camera_, *scenario_, params, 8);
    params.async = true;
    params.asyncDepth = 1;
    const auto async =
        driveOutputs(map_, camera_, *scenario_, params, 8);
    EXPECT_EQ(serial, async);
}

TEST_F(PipelineIntegrationTest, AsyncEscalationMidOverlapDeterministic)
{
    // Governor escalation while three frames are in flight: an
    // impossible budget forces NOMINAL -> DEGRADED -> ... while the
    // executor overlaps frames. The run must replay identically
    // (plans are staged at commit and consumed at admission, both in
    // frame order) and must actually escalate.
    PipelineParams params = testParams();
    params.laneCenterY = scenario_->world.road().laneCenter(1);
    params.faults = FaultInjectorParams::scaledMix(0.4, 11);
    params.governor.enabled = true;
    params.governor.budgetMs = 0.5; // every frame misses.
    params.async = true;
    params.asyncDepth = 3;

    std::vector<OperatingMode> modesA, modesB;
    const auto runA = driveOutputs(map_, camera_, *scenario_, params,
                                   10, &modesA);
    const auto runB = driveOutputs(map_, camera_, *scenario_, params,
                                   10, &modesB);
    EXPECT_EQ(runA, runB);
    EXPECT_EQ(modesA, modesB);
    EXPECT_EQ(modesA.front(), OperatingMode::Nominal);
    EXPECT_TRUE(std::find(modesA.begin(), modesA.end(),
                          OperatingMode::Degraded) != modesA.end());
    EXPECT_NE(modesA.back(), OperatingMode::Nominal);
}

/** Per-(kind, name) event counts in one flight dump. */
std::map<std::string, int>
flightEventCounts()
{
    std::string error;
    const auto doc = obs::json::parse(
        obs::flight().dumpJson("test", -1, -1), &error);
    EXPECT_TRUE(doc) << error;
    std::map<std::string, int> counts;
    if (!doc)
        return counts;
    for (const auto& stream :
         doc->find("flight")->find("streams")->asArray())
        for (const auto& ev : stream.find("events")->asArray())
            ++counts[ev.find("kind")->asString() + ":" +
                     ev.find("name")->asString()];
    return counts;
}

TEST_F(PipelineIntegrationTest, AsyncFlightEventsConserved)
{
    // The async path repositions flight spans onto the executor's
    // virtual stage times but must emit exactly the same events per
    // frame as the serial path: same six spans, same e2e metric,
    // same fault notes.
    PipelineParams params = testParams();
    params.laneCenterY = scenario_->world.road().laneCenter(1);
    params.faults = FaultInjectorParams::scaledMix(0.5, 13);

    obs::FlightParams fp;
    fp.capacity = 4096;
    fp.dumpOnMiss = false;
    fp.dumpOnSafeStop = false;
    auto& fl = obs::flight();

    fl.configure(fp);
    fl.setEnabled(true);
    driveOutputs(map_, camera_, *scenario_, params, 8);
    const auto serialCounts = flightEventCounts();

    fl.configure(fp); // clears the rings.
    params.async = true;
    params.asyncDepth = 3;
    driveOutputs(map_, camera_, *scenario_, params, 8);
    const auto asyncCounts = flightEventCounts();
    fl.setEnabled(false);

    EXPECT_FALSE(serialCounts.empty());
    EXPECT_EQ(serialCounts, asyncCounts);
    EXPECT_GE(serialCounts.count("span:FRAME"), 1u);
}

TEST(SystemConfig, NameIsReadable)
{
    SystemConfig c;
    c.det = Platform::Gpu;
    c.tra = Platform::Asic;
    c.loc = Platform::Cpu;
    EXPECT_EQ(c.name(), "DET:GPU TRA:ASIC LOC:CPU");
}

TEST(SystemModel, AllConfigsEnumerates64)
{
    const auto configs = SystemModel::allConfigs();
    EXPECT_EQ(configs.size(), 64u);
}

TEST(SystemModel, CpuOnlyMissesConstraintsAcceleratedMeets)
{
    SystemModel model;
    Rng rng(5);

    SystemConfig cpuOnly;
    cpuOnly.det = cpuOnly.tra = cpuOnly.loc = Platform::Cpu;
    const auto cpu = model.assess(cpuOnly, 20000, rng);
    EXPECT_FALSE(cpu.meetsLatencyConstraint);
    // The paper's 9.1 s end-to-end CPU tail.
    EXPECT_NEAR(cpu.tailMs, 9100.0, 600.0);

    SystemConfig best; // Figure 11's 16.1 ms design
    best.det = Platform::Gpu;
    best.tra = Platform::Asic;
    best.loc = Platform::Asic;
    const auto accel = model.assess(best, 20000, rng);
    EXPECT_TRUE(accel.meetsLatencyConstraint);
    EXPECT_NEAR(accel.tailMs, 16.1, 2.5);
}

TEST(SystemModel, MeanOnlyConfigsExist)
{
    // Section 5.2: some configurations meet 100 ms on mean latency
    // but fail at the tail -- e.g. LOC on CPU (mean 40.8, tail 294).
    SystemModel model;
    Rng rng(11);
    SystemConfig c;
    c.det = Platform::Gpu;
    c.tra = Platform::Gpu;
    c.loc = Platform::Cpu;
    const auto a = model.assess(c, 50000, rng);
    EXPECT_TRUE(a.meetsLatencyOnMeanOnly);
}

TEST(SystemModel, GpuConfigBurnsMostPower)
{
    SystemModel model;
    SystemConfig gpu;
    gpu.det = gpu.tra = gpu.loc = Platform::Gpu;
    SystemConfig asic;
    asic.det = asic.tra = asic.loc = Platform::Asic;
    EXPECT_GT(model.computePowerW(gpu), 1000.0); // >1 kW (Section 5.3)
    EXPECT_LT(model.computePowerW(asic), 200.0);
}

TEST(SystemModel, RangeReductionShapesMatchFigure12)
{
    SystemModel model;
    Rng rng(13);
    SystemConfig gpu;
    gpu.det = gpu.tra = gpu.loc = Platform::Gpu;
    const auto g = model.assess(gpu, 1000, rng);
    // All-GPU: >10% range loss (the paper reports up to 12%).
    EXPECT_GT(g.rangeReductionPct, 10.0);

    SystemConfig asic;
    asic.det = asic.tra = asic.loc = Platform::Asic;
    const auto a = model.assess(asic, 1000, rng);
    // ASIC designs stay within ~2-3%.
    EXPECT_LT(a.rangeReductionPct, 3.5);
    EXPECT_LT(a.rangeReductionPct, g.rangeReductionPct / 3);
}

TEST(SystemModel, ResolutionSweepMatchesFigure13)
{
    // FHD: the best GPU/ASIC mix still meets 100 ms; QHD: nothing
    // does.
    SystemModel model;
    Rng rng(17);
    const double kittiPx = 1242.0 * 375;
    const double fhd = 1920.0 * 1080 / kittiPx;
    const double qhd = 2560.0 * 1440 / kittiPx;

    bool anyMeetsFhd = false;
    bool anyMeetsQhd = false;
    for (const auto& c : SystemModel::allConfigs(8, fhd)) {
        if (model.assess(c, 4000, rng).meetsLatencyConstraint)
            anyMeetsFhd = true;
    }
    for (const auto& c : SystemModel::allConfigs(8, qhd)) {
        if (model.assess(c, 4000, rng).meetsLatencyConstraint)
            anyMeetsQhd = true;
    }
    EXPECT_TRUE(anyMeetsFhd);
    EXPECT_FALSE(anyMeetsQhd);
}

TEST(ConstraintChecker, ReportsAllFiveClasses)
{
    SystemModel model;
    Rng rng(19);
    SystemConfig c;
    c.det = Platform::Gpu;
    c.tra = Platform::Asic;
    c.loc = Platform::Asic;
    const auto a = model.assess(c, 5000, rng);
    ConstraintChecker checker;
    const auto verdicts = checker.check(a);
    ASSERT_EQ(verdicts.size(), 5u);
    EXPECT_EQ(verdicts[0].constraint, "performance");
    EXPECT_TRUE(verdicts[0].satisfied);
    EXPECT_EQ(verdicts[4].constraint, "power");
    for (const auto& v : verdicts)
        EXPECT_FALSE(v.detail.empty());
}

TEST(ConstraintChecker, CpuSystemFailsPerformance)
{
    SystemModel model;
    Rng rng(23);
    SystemConfig c;
    c.det = c.tra = c.loc = Platform::Cpu;
    const auto a = model.assess(c, 5000, rng);
    ConstraintChecker checker;
    const auto verdicts = checker.check(a);
    EXPECT_FALSE(verdicts[0].satisfied); // performance
    EXPECT_FALSE(checker.allSatisfied(a));
}

TEST(ConstraintChecker, GpuSystemFailsPowerOnly)
{
    SystemModel model;
    Rng rng(29);
    SystemConfig c;
    c.det = c.tra = c.loc = Platform::Gpu;
    const auto a = model.assess(c, 5000, rng);
    ConstraintChecker checker;
    const auto verdicts = checker.check(a);
    EXPECT_TRUE(verdicts[0].satisfied);  // performance OK
    EXPECT_FALSE(verdicts[4].satisfied); // power: >5% range loss
}

TEST(ConstraintChecker, AcceleratedDesignSatisfiesEverything)
{
    SystemModel model;
    Rng rng(31);
    SystemConfig c; // FPGA LOC + ASIC DET/TRA: low power, low latency
    c.det = Platform::Asic;
    c.tra = Platform::Asic;
    c.loc = Platform::Asic;
    const auto a = model.assess(c, 5000, rng);
    ConstraintChecker checker;
    EXPECT_TRUE(checker.allSatisfied(a))
        << "tail=" << a.tailMs << " range=" << a.rangeReductionPct;
}

} // namespace
