/**
 * @file
 * Tests for the multi-stream serving layer: freshest-frame ingestion
 * queues, batch-scheduler dispatch triggers (size, window, slack),
 * deadline-aware admission decisions, most-slack-first pressure
 * degradation, and the MultiStreamServer end to end -- conservation
 * invariants, bit-reproducibility, the overload acceptance property
 * (admission + batching holds the admitted tail where the serial
 * baseline cannot), real-NN batched inference, and per-stream labeled
 * metrics.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/random.hh"
#include "nn/kernel_context.hh"
#include "nn/models.hh"
#include "serve/serve.hh"

namespace {

using namespace ad;
using namespace ad::serve;
using pipeline::OperatingMode;

FrameTicket
ticket(int stream, std::int64_t seq, double arrivalMs)
{
    return FrameTicket{stream, seq, arrivalMs};
}

TEST(FrameQueue, FreshestFrameDropPolicy)
{
    FrameQueue q(2);
    EXPECT_FALSE(q.push(ticket(0, 0, 0.0)).has_value());
    EXPECT_FALSE(q.push(ticket(0, 1, 100.0)).has_value());
    EXPECT_EQ(q.size(), 2u);

    // Full: the *oldest* waiter is evicted, the new frame kept.
    const auto evicted = q.push(ticket(0, 2, 200.0));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->seq, 0);
    EXPECT_EQ(q.size(), 2u);

    const auto a = q.pop();
    const auto b = q.pop();
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->seq, 1);
    EXPECT_EQ(b->seq, 2);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(FrameQueue, ZeroDepthNeverQueues)
{
    FrameQueue q(0);
    const auto back = q.push(ticket(3, 7, 50.0));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->stream, 3);
    EXPECT_EQ(back->seq, 7);
    EXPECT_TRUE(q.empty());
}

InferenceRequest
request(int stream, std::int64_t seq, double enqueueMs,
        double deadlineMs, double costScale = 1.0)
{
    InferenceRequest r;
    r.ticket = ticket(stream, seq, enqueueMs);
    r.enqueueMs = enqueueMs;
    r.deadlineMs = deadlineMs;
    r.costScale = costScale;
    return r;
}

TEST(BatchScheduler, FullBatchDispatchesImmediately)
{
    BatchPolicy policy;
    policy.maxBatch = 2;
    policy.maxWaitMs = 50.0;
    BatchScheduler sched(policy);
    sched.enqueue(request(0, 0, 0.0, 1000.0));
    sched.enqueue(request(1, 0, 1.0, 1000.0));

    const auto at = sched.nextDispatchMs(1.0);
    ASSERT_TRUE(at.has_value());
    EXPECT_DOUBLE_EQ(*at, 1.0); // full: no waiting.
    const auto batch = sched.tryDispatch(1.0);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->size(), 2u);
    // FIFO order across streams.
    EXPECT_EQ(batch->items[0].ticket.stream, 0);
    EXPECT_EQ(batch->items[1].ticket.stream, 1);
    EXPECT_EQ(sched.pending(), 0u);
}

TEST(BatchScheduler, WindowBoundsTheWaitOnTheOldestRequest)
{
    BatchPolicy policy;
    policy.maxBatch = 8;
    policy.maxWaitMs = 6.0;
    policy.latestStartSlackMs = 25.0;
    BatchScheduler sched(policy);
    sched.enqueue(request(0, 0, 10.0, 1000.0));

    // Not due before the window expires...
    EXPECT_FALSE(sched.tryDispatch(12.0).has_value());
    const auto at = sched.nextDispatchMs(12.0);
    ASSERT_TRUE(at.has_value());
    EXPECT_DOUBLE_EQ(*at, 16.0); // enqueue + window.
    // ...and due exactly at it.
    const auto batch = sched.tryDispatch(16.0);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->size(), 1u);
}

TEST(BatchScheduler, DeadlineSlackDispatchesEarly)
{
    BatchPolicy policy;
    policy.maxBatch = 8;
    policy.maxWaitMs = 50.0;
    policy.latestStartSlackMs = 30.0;
    BatchScheduler sched(policy);
    sched.enqueue(request(0, 0, 0.0, 1000.0));
    // A tight-deadline request pulls the whole batch forward: it must
    // start by deadline - slack = 40 - 30 = 10, well before the
    // window bound at 50.
    sched.enqueue(request(1, 0, 2.0, 40.0));

    const auto at = sched.nextDispatchMs(5.0);
    ASSERT_TRUE(at.has_value());
    EXPECT_DOUBLE_EQ(*at, 10.0);
    EXPECT_FALSE(sched.tryDispatch(9.0).has_value());
    const auto batch = sched.tryDispatch(10.0);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->size(), 2u);
    EXPECT_DOUBLE_EQ(sched.meanBatchSize(), 2.0);
    // Waits: 10-0 and 10-2, mean 9.
    EXPECT_DOUBLE_EQ(sched.meanWaitMs(), 9.0);
}

TEST(Admission, AdmitsWithSlackShedsUnderBacklog)
{
    StreamRegistry registry;
    registry.addStream(StreamParams{}, pipeline::GovernorParams{});
    AdmissionParams params; // initialCost 15, risk 2.2, headroom 5.
    AdmissionController ctl(params, registry);

    // predicted = 0 + 6 + 15 x 2.2 + 5 = 44 <= 100: admit full-scale.
    const auto ok = ctl.decide(ticket(0, 0, 0.0), 0.0, 0.0, 6.0);
    EXPECT_EQ(ok.action, AdmitAction::Admit);
    EXPECT_DOUBLE_EQ(ok.costScale, 1.0);
    EXPECT_FALSE(ok.degraded);

    // 60 ms of engine backlog pushes the prediction past the budget.
    const auto no = ctl.decide(ticket(0, 1, 0.0), 0.0, 60.0, 6.0);
    EXPECT_EQ(no.action, AdmitAction::Shed);

    // Admission off admits the same frame regardless.
    AdmissionParams off;
    off.enabled = false;
    AdmissionController openCtl(off, registry);
    EXPECT_EQ(openCtl.decide(ticket(0, 2, 0.0), 0.0, 60.0, 6.0).action,
              AdmitAction::Admit);
}

TEST(Admission, RiskFactorInflatesTheCostTest)
{
    StreamRegistry registry;
    registry.addStream(StreamParams{}, pipeline::GovernorParams{});
    // Backlog 60 + window 6 + headroom 5 leaves 29 ms for inference:
    // the mean (15 ms) fits, the risk-inflated worst case does not.
    AdmissionParams meanOnly;
    meanOnly.riskFactor = 1.0;
    AdmissionController meanCtl(meanOnly, registry);
    EXPECT_EQ(meanCtl.decide(ticket(0, 0, 0.0), 0.0, 60.0, 6.0).action,
              AdmitAction::Admit);

    AdmissionParams risky;
    risky.riskFactor = 2.2;
    AdmissionController riskCtl(risky, registry);
    EXPECT_EQ(riskCtl.decide(ticket(0, 0, 0.0), 0.0, 60.0, 6.0).action,
              AdmitAction::Shed);
}

TEST(Admission, GovernorModeMapsToDegradedAndCoast)
{
    StreamRegistry registry;
    registry.addStream(StreamParams{}, pipeline::GovernorParams{});
    StreamState& s = registry.stream(0);
    AdmissionController ctl(AdmissionParams{}, registry);

    s.governor.requestEscalation(0, OperatingMode::Degraded, "test");
    // DEGRADED, detection interval 2: even frames run the half-scale
    // detector (quarter cost), odd frames coast on tracking.
    const auto even = ctl.decide(ticket(0, 0, 0.0), 0.0, 0.0, 0.0);
    EXPECT_EQ(even.action, AdmitAction::Admit);
    EXPECT_TRUE(even.degraded);
    EXPECT_DOUBLE_EQ(even.costScale, 0.25);
    const auto odd = ctl.decide(ticket(0, 1, 0.0), 0.0, 0.0, 0.0);
    EXPECT_EQ(odd.action, AdmitAction::Coast);

    s.governor.requestEscalation(2, OperatingMode::TrackingOnly,
                                 "test");
    // TRACKING_ONLY with the default reseed interval 0: never runs
    // the detector.
    EXPECT_EQ(ctl.decide(ticket(0, 2, 0.0), 0.0, 0.0, 0.0).action,
              AdmitAction::Coast);
}

TEST(Admission, CostEstimateFollowsExecutedBatches)
{
    StreamRegistry registry;
    registry.addStream(StreamParams{}, pipeline::GovernorParams{});
    AdmissionController ctl(AdmissionParams{}, registry);
    EXPECT_DOUBLE_EQ(ctl.expectedCostMs(), 15.0);
    // 20 ms over 2 work units = 10 ms/unit; EWMA alpha 0.2.
    ctl.onBatchExecuted(20.0, 2.0);
    EXPECT_DOUBLE_EQ(ctl.expectedCostMs(), 14.0);
}

TEST(Admission, PressureDegradesTheMostSlackStreamFirst)
{
    StreamRegistry registry;
    registry.addStream(StreamParams{}, pipeline::GovernorParams{});
    registry.addStream(StreamParams{}, pipeline::GovernorParams{});
    AdmissionParams params;
    params.evalPeriodFrames = 1; // evaluate on every arrival.
    AdmissionController ctl(params, registry);

    // Stream 0 skirts its deadline (tail 95 of 100); stream 1 has
    // plenty of slack (tail 10).
    ctl.onCompletion(ticket(0, 0, 0.0), 95.0);
    ctl.onCompletion(ticket(1, 0, 0.0), 10.0);
    EXPECT_EQ(registry.mostSlackStream(OperatingMode::TrackingOnly),
              1);

    // Backlog pressure 0.9 > 0.8: the slack-rich stream pays first.
    ctl.evaluatePressure(0, 90.0);
    EXPECT_EQ(registry.stream(1).governor.mode(),
              OperatingMode::Degraded);
    EXPECT_EQ(registry.stream(0).governor.mode(),
              OperatingMode::Nominal);

    // Sustained pressure walks it to the cap, then turns to the
    // tight stream; at the cap everywhere, no further escalation.
    ctl.evaluatePressure(1, 90.0);
    EXPECT_EQ(registry.stream(1).governor.mode(),
              OperatingMode::TrackingOnly);
    ctl.evaluatePressure(2, 90.0);
    EXPECT_EQ(registry.stream(0).governor.mode(),
              OperatingMode::Degraded);
    ctl.evaluatePressure(3, 90.0);
    EXPECT_EQ(registry.stream(0).governor.mode(),
              OperatingMode::TrackingOnly);
    EXPECT_EQ(ctl.pressureEscalations(), 4);
    ctl.evaluatePressure(4, 90.0);
    EXPECT_EQ(ctl.pressureEscalations(), 4);
    // SAFE_STOP is never admission's to request.
    EXPECT_EQ(registry.stream(0).governor.mode(),
              OperatingMode::TrackingOnly);
    EXPECT_EQ(registry.stream(1).governor.mode(),
              OperatingMode::TrackingOnly);
}

TEST(Admission, BelowPressureThresholdLeavesStreamsAlone)
{
    StreamRegistry registry;
    registry.addStream(StreamParams{}, pipeline::GovernorParams{});
    AdmissionParams params;
    params.evalPeriodFrames = 1;
    AdmissionController ctl(params, registry);
    ctl.evaluatePressure(0, 50.0); // pressure 0.5 <= 0.8.
    EXPECT_EQ(registry.stream(0).governor.mode(),
              OperatingMode::Nominal);
    EXPECT_EQ(ctl.pressureEscalations(), 0);
}

TEST(StreamState, TailEstimatePeaksAndDecays)
{
    StreamRegistry registry;
    registry.addStream(StreamParams{}, pipeline::GovernorParams{});
    StreamState& s = registry.stream(0);
    s.observeCompletion(0, 80.0, 0.9, true);
    EXPECT_DOUBLE_EQ(s.tailEstimateMs, 80.0); // jumps to the peak.
    s.observeCompletion(1, 10.0, 0.9, true);
    EXPECT_DOUBLE_EQ(s.tailEstimateMs, 72.0); // decays geometrically.
    EXPECT_DOUBLE_EQ(s.slackMs(), 28.0);
    EXPECT_EQ(s.servedLatency.count(), 2u);
    // Coasted frames feed the control loop but not the served record.
    s.observeCompletion(2, 2.0, 0.9, false);
    EXPECT_EQ(s.servedLatency.count(), 2u);
    EXPECT_EQ(s.deadline.framesObserved(), 3u);
}

ServeParams
modeledParams(int streams, bool admission)
{
    ServeParams sp;
    sp.streams = streams;
    sp.governor.enabled = true;
    if (!admission) {
        sp.batch.maxBatch = 1;
        sp.batch.maxWaitMs = 0.0;
        sp.admission.enabled = false;
    }
    return sp;
}

ServeReport
runModeled(const ServeParams& sp, std::int64_t frames)
{
    ModeledBatchEngine engine(ModeledEngineParams{});
    MultiStreamServer server(sp, engine);
    return server.run(frames);
}

TEST(MultiStreamServer, ConservationInvariant)
{
    const ServeParams sp = modeledParams(6, true);
    ModeledBatchEngine engine(ModeledEngineParams{});
    MultiStreamServer server(sp, engine);
    const ServeReport r = server.run(200);

    EXPECT_EQ(r.framesArrived, 6 * 200);
    EXPECT_EQ(server.registry().totalArrived(), 6 * 200);
    // Every arrival is exactly one of engine-served, coasted or shed.
    EXPECT_EQ(r.framesAdmitted + r.framesCoasted + r.framesShed,
              r.framesArrived);
    // Every admitted frame completed (the run drains fully).
    std::int64_t completed = 0;
    for (int i = 0; i < sp.streams; ++i)
        completed += server.registry().stream(i).stats.completed;
    EXPECT_EQ(completed, r.framesAdmitted);
    EXPECT_EQ(r.admittedLatency.count,
              static_cast<std::size_t>(r.framesAdmitted));
}

TEST(MultiStreamServer, SameSeedIsBitReproducible)
{
    const ServeParams sp = modeledParams(8, true);
    const ServeReport a = runModeled(sp, 250);
    const ServeReport b = runModeled(sp, 250);
    EXPECT_EQ(a.framesArrived, b.framesArrived);
    EXPECT_EQ(a.framesAdmitted, b.framesAdmitted);
    EXPECT_EQ(a.framesDegraded, b.framesDegraded);
    EXPECT_EQ(a.framesCoasted, b.framesCoasted);
    EXPECT_EQ(a.framesShed, b.framesShed);
    EXPECT_EQ(a.deadlineMisses, b.deadlineMisses);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.pressureEscalations, b.pressureEscalations);
    EXPECT_DOUBLE_EQ(a.admittedLatency.mean, b.admittedLatency.mean);
    EXPECT_DOUBLE_EQ(a.admittedLatency.p9999,
                     b.admittedLatency.p9999);
    EXPECT_DOUBLE_EQ(a.goodputFps, b.goodputFps);
    EXPECT_DOUBLE_EQ(a.durationMs, b.durationMs);
    EXPECT_EQ(a.framesInMode, b.framesInMode);
}

TEST(MultiStreamServer, OverloadAcceptanceProperty)
{
    // ISSUE 4 acceptance at 8 streams: the offered load (80 fps)
    // exceeds the engine's serial capacity (~59 fps), so the
    // unbatched, unshedded baseline blows the p99.99 budget -- while
    // batching + admission holds every admitted frame inside it at
    // strictly higher goodput.
    const double budgetMs = 100.0;
    const ServeReport baseline =
        runModeled(modeledParams(8, false), 400);
    const ServeReport served = runModeled(modeledParams(8, true), 400);

    EXPECT_GT(baseline.admittedLatency.p9999, budgetMs);
    EXPECT_GT(baseline.deadlineMisses, 0);

    EXPECT_LE(served.admittedLatency.p9999, budgetMs);
    EXPECT_EQ(served.deadlineMisses, 0);
    EXPECT_GT(served.goodputFps, baseline.goodputFps);
    EXPECT_GT(served.meanBatchSize, 1.0);
}

TEST(MultiStreamServer, SingleStreamIsUnderloadedAndClean)
{
    const ServeReport r = runModeled(modeledParams(1, true), 300);
    EXPECT_EQ(r.framesArrived, 300);
    EXPECT_EQ(r.framesShed, 0);
    EXPECT_EQ(r.deadlineMisses, 0);
    EXPECT_DOUBLE_EQ(r.meanBatchSize, 1.0);
}

TEST(MultiStreamServer, PublishesPerStreamLabeledMetrics)
{
    const ServeParams sp = modeledParams(3, true);
    ModeledBatchEngine engine(ModeledEngineParams{});
    MultiStreamServer server(sp, engine);
    (void)server.run(50);
    const std::string dump = server.localMetrics().textDump();
    for (int i = 0; i < 3; ++i) {
        const std::string id = std::to_string(i);
        EXPECT_NE(dump.find("serve.frames_arrived{stream=" + id + "}"),
                  std::string::npos);
        EXPECT_NE(dump.find("serve.latency_ms{stream=" + id + "}"),
                  std::string::npos);
    }
    EXPECT_NE(dump.find("serve.slack_ms{stream=0}"),
              std::string::npos);
}

TEST(MultiStreamServer, ReportToStringNamesTheHeadlines)
{
    const ServeReport r = runModeled(modeledParams(2, true), 50);
    const std::string s = r.toString();
    EXPECT_NE(s.find("frames arrived"), std::string::npos);
    EXPECT_NE(s.find("goodput"), std::string::npos);
    EXPECT_NE(s.find("NOMINAL"), std::string::npos);
}

TEST(NnBatchEngine, BatchedInferenceMatchesSerialChecksum)
{
    // The measured engine end to end: four streams, one frame each,
    // arriving together and coalescing into one NN batch. The
    // engine's order-independent checksum must equal the one
    // computed from plain serial forward() calls -- batching is
    // bitwise invisible (determinism contract).
    const nn::ModelSpec spec = nn::detectorSpec(32, 0.05);
    nn::Network net = nn::buildNetwork(spec);
    Rng weightRng(7);
    nn::initDetectorWeights(net, weightRng);

    std::vector<nn::Tensor> inputs;
    Rng inputRng(21);
    for (int s = 0; s < 4; ++s) {
        nn::Tensor t(1, 32, 32);
        for (std::size_t i = 0; i < t.size(); ++i)
            t.data()[i] =
                static_cast<float>(inputRng.uniform(0.0, 1.0));
        inputs.push_back(t);
    }

    std::uint64_t expected = 0;
    for (const auto& in : inputs) {
        const nn::Tensor out =
            net.forward(in, nn::KernelContext::serial());
        double sum = 0.0;
        for (std::size_t i = 0; i < out.size(); ++i)
            sum += out.data()[i];
        std::uint64_t bits = 0;
        std::memcpy(&bits, &sum, sizeof(double));
        expected ^= bits;
    }

    ServeParams sp;
    sp.streams = 4;
    sp.stagger = false;           // all four arrive together...
    sp.batch.maxWaitMs = 5.0;     // ...and coalesce in one window.
    sp.stream.deadlineMs = 1e6;   // generous: everything admitted.
    sp.governor.budgetMs = 1e6;
    sp.governor.enabled = true;
    NnBatchEngine engine(net, inputs, 3);
    MultiStreamServer server(sp, engine);
    const ServeReport r = server.run(1);

    EXPECT_EQ(r.framesArrived, 4);
    EXPECT_EQ(r.framesAdmitted, 4);
    EXPECT_EQ(r.framesShed, 0);
    EXPECT_EQ(r.batches, 1);
    EXPECT_DOUBLE_EQ(r.meanBatchSize, 4.0);

    std::uint64_t got = 0;
    const double checksum = engine.outputChecksum();
    std::memcpy(&got, &checksum, sizeof(double));
    EXPECT_EQ(got, expected);
}

TEST(StreamSlo, BurnRateAndGoodputFromSyntheticCompletions)
{
    SloParams params;
    params.windowFrames = 100;
    params.targetMissRate = 0.01; // 1% allowed misses.
    params.refreshEvery = 1;
    StreamSlo slo(params, 100.0); // budget = deadline = 100 ms.

    for (int i = 0; i < 95; ++i)
        slo.observe(50.0, true);
    for (int i = 0; i < 5; ++i)
        slo.observe(150.0, false); // late, not goodput.

    const SloSnapshot& s = slo.snapshot();
    EXPECT_EQ(s.total, 100u);
    EXPECT_EQ(s.misses, 5u);
    EXPECT_DOUBLE_EQ(s.missRate, 0.05);
    // Window miss rate 0.05 against a 0.01 target: burning 5x.
    EXPECT_DOUBLE_EQ(s.burnRate, 5.0);
    EXPECT_DOUBLE_EQ(s.goodputRatio, 0.95);
    // 100 samples resolve p50 and p99 but not p99.9.
    EXPECT_DOUBLE_EQ(s.p50Ms, 50.0);
    EXPECT_DOUBLE_EQ(s.p99Ms, 150.0);
    EXPECT_DOUBLE_EQ(
        s.p999Ms, WindowedLatencyRecorder::kInsufficientSamples);
}

TEST(StreamSlo, PercentilesGatedOnResolvability)
{
    SloParams params;
    params.windowFrames = 2048;
    params.refreshEvery = 1;
    StreamSlo slo(params, 100.0);

    slo.observe(10.0, true);
    EXPECT_DOUBLE_EQ(
        slo.snapshot().p50Ms,
        WindowedLatencyRecorder::kInsufficientSamples);
    slo.observe(20.0, true);
    // Two samples resolve the median, still no p99.
    EXPECT_DOUBLE_EQ(slo.snapshot().p50Ms, 10.0);
    EXPECT_DOUBLE_EQ(
        slo.snapshot().p99Ms,
        WindowedLatencyRecorder::kInsufficientSamples);
    EXPECT_DOUBLE_EQ(slo.tailMs(),
                     WindowedLatencyRecorder::kInsufficientSamples);
}

TEST(StreamSlo, BudgetDefaultsToDeadlineUnlessOverridden)
{
    SloParams params;
    EXPECT_DOUBLE_EQ(StreamSlo(params, 80.0).budgetMs(), 80.0);
    params.budgetMs = 50.0;
    EXPECT_DOUBLE_EQ(StreamSlo(params, 80.0).budgetMs(), 50.0);
}

TEST(StreamSlo, RefreshCadenceKeepsSnapshotOffTheHotPath)
{
    SloParams params;
    params.refreshEvery = 32;
    StreamSlo slo(params, 100.0);
    for (int i = 0; i < 31; ++i)
        slo.observe(10.0, true);
    // 31 completions: the cached snapshot has not refreshed yet.
    EXPECT_EQ(slo.snapshot().total, 0u);
    slo.observe(10.0, true);
    EXPECT_EQ(slo.snapshot().total, 32u);
    // refresh() recomputes on demand regardless of cadence.
    slo.observe(10.0, true);
    slo.refresh();
    EXPECT_EQ(slo.snapshot().total, 33u);
}

TEST(StreamState, ResolvedSloTailTightensSlack)
{
    StreamRegistry registry;
    registry.addStream(StreamParams{}, pipeline::GovernorParams{});
    StreamState& s = registry.stream(0);
    // A high early peak decayed away: the peak-decay estimate alone
    // would report generous slack...
    s.observeCompletion(0, 90.0, 0.5, true);
    for (int i = 1; i <= 100; ++i)
        s.observeCompletion(i, 85.0, 0.5, true);
    // ...but the window p99 keeps slack honest. Refresh on demand:
    // the default cadence (every 32) last fired at 96 samples, one
    // short of p99 resolvability.
    s.slo.refresh();
    ASSERT_GE(s.slo.snapshot().p99Ms, 85.0);
    EXPECT_LE(s.slackMs(), 100.0 - s.slo.snapshot().p99Ms + 1e-9);
}

TEST(MultiStreamServer, ReportCarriesPerStreamSloSnapshots)
{
    ServeParams sp = modeledParams(4, true);
    sp.slo.refreshEvery = 8;
    ModeledBatchEngine engine(ModeledEngineParams{});
    MultiStreamServer server(sp, engine);
    const ServeReport r = server.run(300);

    ASSERT_EQ(r.streamSlo.size(), 4u);
    for (const auto& s : r.streamSlo) {
        EXPECT_GT(s.total, 0u);
        EXPECT_GE(s.goodputRatio, 0.0);
        EXPECT_LE(s.goodputRatio, 1.0);
        EXPECT_GE(s.burnRate, 0.0);
        EXPECT_LE(s.misses, s.total);
        // 300 completions resolve p50 and p99 (window default 2048).
        EXPECT_GT(s.p50Ms, 0.0);
        EXPECT_GE(s.p99Ms, s.p50Ms);
    }
    // The SLO gauges land in the server-local registry per stream.
    const std::string dump = server.localMetrics().textDump();
    EXPECT_NE(dump.find("serve.slo.p99_ms{stream=0}"),
              std::string::npos);
    EXPECT_NE(dump.find("serve.slo.burn_rate{stream=3}"),
              std::string::npos);
    EXPECT_NE(dump.find("serve.slo.goodput_ratio{stream=1}"),
              std::string::npos);
}

TEST(MultiStreamServer, SloSnapshotsAreBitReproducible)
{
    ServeParams sp = modeledParams(3, true);
    ModeledBatchEngine e1(ModeledEngineParams{});
    ModeledBatchEngine e2(ModeledEngineParams{});
    MultiStreamServer s1(sp, e1);
    MultiStreamServer s2(sp, e2);
    const ServeReport a = s1.run(200);
    const ServeReport b = s2.run(200);
    ASSERT_EQ(a.streamSlo.size(), b.streamSlo.size());
    for (std::size_t i = 0; i < a.streamSlo.size(); ++i) {
        EXPECT_EQ(a.streamSlo[i].total, b.streamSlo[i].total);
        EXPECT_EQ(a.streamSlo[i].misses, b.streamSlo[i].misses);
        EXPECT_DOUBLE_EQ(a.streamSlo[i].p99Ms, b.streamSlo[i].p99Ms);
        EXPECT_DOUBLE_EQ(a.streamSlo[i].burnRate,
                         b.streamSlo[i].burnRate);
        EXPECT_DOUBLE_EQ(a.streamSlo[i].goodputRatio,
                         b.streamSlo[i].goodputRatio);
    }
}

} // namespace
