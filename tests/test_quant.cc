/**
 * @file
 * Tests for the INT8 quantized inference path: quantize/dequantize
 * round-trip bounds, histogram calibration behavior, exactness of the
 * SIMD int8 GEMM/GEMV against the naive reference, bitwise determinism
 * across thread counts, quantized-network accuracy against fp32, and
 * the detector/tracker-level accuracy floor the quant benchmark
 * enforces.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.hh"
#include "detect/yolo.hh"
#include "nn/gemm_int8.hh"
#include "nn/quant.hh"
#include "sensors/camera.hh"
#include "track/goturn.hh"

namespace {

using namespace ad;
using namespace ad::nn;

std::vector<std::int8_t>
randomInt8(std::size_t n, Rng& rng)
{
    std::vector<std::int8_t> v(n);
    for (auto& x : v)
        x = static_cast<std::int8_t>(rng.uniformInt(-127, 127));
    return v;
}

std::vector<std::int16_t>
widen(const std::vector<std::int8_t>& v)
{
    return {v.begin(), v.end()};
}

TEST(Quant, ScaleDegeneratesToOneForEmptyRange)
{
    EXPECT_FLOAT_EQ(quantizeScale(0.0f), 1.0f);
    EXPECT_FLOAT_EQ(quantizeScale(-1.0f), 1.0f);
    EXPECT_FLOAT_EQ(quantizeScale(127.0f), 1.0f);
}

TEST(Quant, RoundTripErrorBoundedByHalfStep)
{
    Rng rng(11);
    const std::size_t n = 4096;
    std::vector<float> x(n);
    float absMax = 0.0f;
    for (auto& v : x) {
        v = static_cast<float>(rng.uniform(-3.0, 3.0));
        absMax = std::max(absMax, std::fabs(v));
    }
    const float scale = quantizeScale(absMax);
    std::vector<std::int8_t> q(n);
    std::vector<float> back(n);
    quantize(x.data(), n, scale, q.data());
    dequantize(q.data(), n, scale, back.data());
    // Round-to-nearest inside the covered range: error <= scale / 2.
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_LE(std::fabs(back[i] - x[i]), scale * 0.5f + 1e-6f)
            << "at " << i;
}

TEST(Quant, QuantizeSaturatesOutOfRangeValues)
{
    const float x[4] = {10.0f, -10.0f, 0.0f, 1.0f};
    std::int8_t q[4];
    quantize(x, 4, quantizeScale(1.0f), q);
    EXPECT_EQ(q[0], 127);
    EXPECT_EQ(q[1], -127);
    EXPECT_EQ(q[2], 0);
    EXPECT_EQ(q[3], 127);
}

TEST(Quant, RequantizeRescalesAccumulators)
{
    const std::int32_t acc[3] = {1000, -1000, 40};
    const float accScale = 0.01f;   // acc values represent 10, -10, 0.4
    const float outScale = 0.1f;    // expect 100, -100, 4
    std::int8_t q[3];
    requantize(acc, 3, accScale, outScale, q);
    EXPECT_EQ(q[0], 100);
    EXPECT_EQ(q[1], -100);
    EXPECT_EQ(q[2], 4);
}

TEST(AbsHistogram, GrowsRangeWithoutLosingMass)
{
    AbsHistogram h(64);
    std::vector<float> small(100, 0.5f);
    h.add(small.data(), small.size());
    const float big = 37.0f;
    h.add(&big, 1);
    EXPECT_EQ(h.count(), 101u);
    EXPECT_FLOAT_EQ(h.absMax(), 37.0f);
    EXPECT_FLOAT_EQ(h.percentileAbs(1.0f), 37.0f);
}

TEST(AbsHistogram, PercentileClipsOutliers)
{
    AbsHistogram h(1024);
    std::vector<float> bulk(999, 1.0f);
    h.add(bulk.data(), bulk.size());
    const float outlier = 100.0f;
    h.add(&outlier, 1);
    // 99.9% of the mass sits at 1.0; the percentile bound must stay
    // near it instead of surrendering the range to the outlier.
    EXPECT_LT(h.percentileAbs(0.999f), 2.0f);
    EXPECT_FLOAT_EQ(h.percentileAbs(1.0f), 100.0f);
}

TEST(GemmInt8, ReportsKnownIsa)
{
    const std::string isa = int8KernelIsa();
    EXPECT_TRUE(isa == "avx512vnni" || isa == "avx2" || isa == "sse2" ||
                isa == "scalar")
        << isa;
}

TEST(GemmInt8, TierListContainsCurrentAndScalar)
{
    const auto tiers = int8KernelIsaTiers();
    ASSERT_FALSE(tiers.empty());
    EXPECT_EQ(tiers.front(), "scalar");
    EXPECT_NE(std::find(tiers.begin(), tiers.end(),
                        std::string(int8KernelIsa())),
              tiers.end());
}

TEST(GemmInt8, RejectsUnknownOrUnavailableForcedIsa)
{
    EXPECT_FALSE(setInt8KernelIsa("avx9000"));
    // Rejection must not disturb the ambient selection.
    const std::string isa = int8KernelIsa();
    EXPECT_TRUE(isa == "avx512vnni" || isa == "avx2" || isa == "sse2" ||
                isa == "scalar")
        << isa;
}

/**
 * The cross-ISA contract (satellite of the VNNI tier): every dispatch
 * tier the host can execute -- scalar, SSE2, AVX2, AVX-512-VNNI --
 * must produce bit-identical GEMM and GEMV results. Integer sums are
 * exact, and the VNNI tier's +128 bias trick is corrected with exact
 * integer math, so equality is required, not approximate.
 */
TEST(GemmInt8, AllAvailableTiersAgreeBitwise)
{
    Rng rng(97);
    const std::tuple<int, int, int> shapes[] = {
        {65, 33, 257}, {64, 64, 256}, {16, 169, 144}, {7, 5, 3}};
    for (const auto& [m, n, k] : shapes) {
        const auto a = randomInt8(
            static_cast<std::size_t>(m) * k, rng);
        const auto b = randomInt8(
            static_cast<std::size_t>(n) * k, rng);
        const auto aw = widen(a);
        const std::size_t mn = static_cast<std::size_t>(m) * n;

        std::vector<std::int32_t> ref(mn, 0);
        gemmInt8Naive(m, n, k, a.data(), b.data(), ref.data());

        std::vector<std::int32_t> refVec(static_cast<std::size_t>(m),
                                         0);
        const auto xw = widen(randomInt8(
            static_cast<std::size_t>(k), rng));
        // gemv reference: scalar dot per row.
        for (int i = 0; i < m; ++i) {
            std::int32_t acc = 0;
            for (int kk = 0; kk < k; ++kk)
                acc += static_cast<std::int32_t>(aw[i * k + kk]) *
                       xw[kk];
            refVec[static_cast<std::size_t>(i)] = acc;
        }

        for (const std::string& tier : int8KernelIsaTiers()) {
            ASSERT_TRUE(setInt8KernelIsa(tier)) << tier;
            ASSERT_STREQ(int8KernelIsa(), tier.c_str());
            std::vector<std::int32_t> got(mn, 0);
            gemmInt8(m, n, k, aw.data(), b.data(), got.data());
            ASSERT_EQ(got, ref)
                << "gemm tier " << tier << " shape " << m << "x" << n
                << "x" << k;
            std::vector<std::int32_t> gotVec(
                static_cast<std::size_t>(m), 0);
            gemvInt8(m, k, aw.data(), xw.data(), gotVec.data());
            ASSERT_EQ(gotVec, refVec)
                << "gemv tier " << tier << " shape " << m << "x" << k;
        }
        ASSERT_TRUE(setInt8KernelIsa(""));
    }
}

/** Shape sweep: the SIMD kernel must match the reference bit for bit. */
class GemmInt8ShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemmInt8ShapeTest, MatchesNaiveExactly)
{
    const auto [m, n, k] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 73 + n * 7 + k));
    const auto a = randomInt8(static_cast<std::size_t>(m) * k, rng);
    const auto b = randomInt8(static_cast<std::size_t>(k) * n, rng);
    const auto aWide = widen(a);
    std::vector<std::int32_t> c1(static_cast<std::size_t>(m) * n, 3);
    std::vector<std::int32_t> c2 = c1;
    gemmInt8(m, n, k, aWide.data(), b.data(), c1.data());
    gemmInt8Naive(m, n, k, a.data(), b.data(), c2.data());
    for (std::size_t i = 0; i < c1.size(); ++i)
        ASSERT_EQ(c1[i], c2[i]) << "at " << i;
}

TEST_P(GemmInt8ShapeTest, BitwiseDeterministicAcrossThreads)
{
    const auto [m, n, k] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 131 + n * 17 + k));
    const auto a = randomInt8(static_cast<std::size_t>(m) * k, rng);
    const auto b = randomInt8(static_cast<std::size_t>(k) * n, rng);
    const auto aWide = widen(a);
    std::vector<std::int32_t> serial(static_cast<std::size_t>(m) * n,
                                     -7);
    gemmInt8(m, n, k, aWide.data(), b.data(), serial.data());
    for (const int threads : {1, 2, 8}) {
        std::vector<std::int32_t> parallel(serial.size(), -7);
        gemmInt8(m, n, k, aWide.data(), b.data(), parallel.data(),
                 kernelContext(threads));
        for (std::size_t i = 0; i < serial.size(); ++i)
            ASSERT_EQ(serial[i], parallel[i])
                << "divergence at " << i << " with " << threads
                << " threads";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmInt8ShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 64, 300),
                      std::make_tuple(64, 1, 300), std::make_tuple(3, 5, 7),
                      std::make_tuple(65, 33, 257), // crosses pad edges
                      std::make_tuple(64, 64, 256), // exactly padded
                      std::make_tuple(128, 10, 512),
                      std::make_tuple(16, 169, 144))); // conv-like

TEST(GemvInt8, MatchesGemmAndParallel)
{
    Rng rng(10);
    const std::size_t m = 301;
    const std::size_t k = 517;
    const auto a = randomInt8(m * k, rng);
    const auto x = randomInt8(k, rng);
    const auto aWide = widen(a);
    const auto xWide = widen(x);

    std::vector<std::int32_t> viaGemm(m, 5);
    gemmInt8(m, 1, k, aWide.data(), x.data(), viaGemm.data());
    std::vector<std::int32_t> serial(m, 5);
    gemvInt8(m, k, aWide.data(), xWide.data(), serial.data());
    for (std::size_t i = 0; i < m; ++i)
        ASSERT_EQ(serial[i], viaGemm[i]) << "at " << i;

    for (const int threads : {2, 8}) {
        std::vector<std::int32_t> parallel(m, 5);
        gemvInt8(m, k, aWide.data(), xWide.data(), parallel.data(),
                 kernelContext(threads));
        for (std::size_t i = 0; i < m; ++i)
            ASSERT_EQ(serial[i], parallel[i]) << "at " << i;
    }
}

/** Random conv with a quantized twin: outputs agree within tolerance. */
TEST(QuantLayers, ConvTracksFp32Reference)
{
    Rng rng(21);
    Conv2D conv("c", 3, 8, 3, 1, 1);
    for (auto& w : conv.weights())
        w = static_cast<float>(rng.uniform(-0.5, 0.5));
    for (auto& b : conv.bias())
        b = static_cast<float>(rng.uniform(-0.1, 0.1));
    Tensor in(3, 17, 19);
    float absMax = 0.0f;
    for (std::size_t i = 0; i < in.size(); ++i) {
        in.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
        absMax = std::max(absMax, std::fabs(in.data()[i]));
    }
    QuantConv2D quant(conv, quantizeScale(absMax));
    const Tensor ref = conv.forward(in);
    const Tensor got = quant.forward(in);
    ASSERT_EQ(ref.size(), got.size());
    double refNorm = 0, errNorm = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        const double e = got.data()[i] - ref.data()[i];
        refNorm += ref.data()[i] * ref.data()[i];
        errNorm += e * e;
    }
    // Documented tolerance: int8 conv within 2% relative L2 error of
    // the fp32 reference at per-channel weight scales.
    EXPECT_LT(std::sqrt(errNorm / refNorm), 0.02);
}

TEST(QuantLayers, QuantConvProfileShrinksWeights)
{
    Conv2D conv("c", 4, 8, 3, 1, 1);
    QuantConv2D quant(conv, 1.0f);
    const Shape in{4, 16, 16};
    EXPECT_EQ(quant.profile(in).flops, conv.profile(in).flops);
    EXPECT_LT(quant.profile(in).weightBytes,
              conv.profile(in).weightBytes);
}

TEST(QuantNetwork, QuantizeReplacesConvAndFcLayers)
{
    Rng rng(31);
    Network net("toy");
    auto& conv = net.add<Conv2D>("conv", 1, 4, 3, 1, 1);
    net.add<Activation>("relu", 0.1f);
    net.add<MaxPool>("pool", 2, 2);
    auto& fc = net.add<FullyConnected>("fc", 4 * 8 * 8, 10);
    for (auto& w : conv.weights())
        w = static_cast<float>(rng.uniform(-0.5, 0.5));
    for (auto& w : fc.weights())
        w = static_cast<float>(rng.uniform(-0.1, 0.1));

    std::vector<Tensor> samples;
    for (int s = 0; s < 2; ++s) {
        Tensor t(1, 16, 16);
        for (std::size_t i = 0; i < t.size(); ++i)
            t.data()[i] = static_cast<float>(rng.uniform(0.0, 1.0));
        samples.push_back(std::move(t));
    }

    Network quantNet("toy");
    auto& qconv = quantNet.add<Conv2D>("conv", 1, 4, 3, 1, 1);
    net.add<Softmax>("sm"); // keep shapes identical below
    quantNet.add<Activation>("relu", 0.1f);
    quantNet.add<MaxPool>("pool", 2, 2);
    auto& qfc = quantNet.add<FullyConnected>("fc", 4 * 8 * 8, 10);
    quantNet.add<Softmax>("sm");
    qconv.weights() = conv.weights();
    qfc.weights() = fc.weights();

    EXPECT_EQ(quantNet.precision(), Precision::Fp32);
    const std::size_t replaced = quantizeNetwork(quantNet, samples);
    EXPECT_EQ(replaced, 2u);
    EXPECT_EQ(quantNet.precision(), Precision::Int8);

    const Tensor ref = net.forward(samples[0]);
    const Tensor got = quantNet.forward(samples[0]);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_NEAR(ref.data()[i], got.data()[i], 0.05) << "at " << i;
}

TEST(QuantNetwork, ForwardBitwiseDeterministicAcrossThreads)
{
    Rng rng(41);
    Network net("toy");
    auto& conv = net.add<Conv2D>("conv", 1, 8, 3, 1, 1);
    net.add<Activation>("relu", 0.1f);
    auto& fc = net.add<FullyConnected>("fc", 8 * 16 * 16, 12);
    for (auto& w : conv.weights())
        w = static_cast<float>(rng.uniform(-0.5, 0.5));
    for (auto& w : fc.weights())
        w = static_cast<float>(rng.uniform(-0.1, 0.1));

    std::vector<Tensor> samples;
    Tensor input(1, 16, 16);
    for (std::size_t i = 0; i < input.size(); ++i)
        input.data()[i] = static_cast<float>(rng.uniform(0.0, 1.0));
    samples.push_back(input);
    quantizeNetwork(net, samples);

    const Tensor serial = net.forward(input);
    for (const int threads : {1, 2, 8}) {
        const Tensor parallel =
            net.forward(input, kernelContext(threads));
        ASSERT_EQ(serial.size(), parallel.size());
        ASSERT_EQ(std::memcmp(serial.data(), parallel.data(),
                              serial.size() * sizeof(float)),
                  0)
            << "int8 forward diverged at " << threads << " threads";
    }
}

/**
 * The detector-level accuracy floor enforced by
 * bench_ext_quant_accuracy: for a rendered scene, every fp32 detection
 * must have an int8 counterpart with IoU >= 0.98 (<= 2% degradation)
 * and vice versa.
 */
TEST(QuantDetector, Int8StaysWithinAccuracyFloor)
{
    sensors::World world;
    sensors::Actor a;
    a.cls = sensors::ObjectClass::Vehicle;
    a.motion = sensors::MotionKind::Stationary;
    a.pose = Pose2(65.0, world.road().laneCenter(1), 0.0);
    world.addActor(a);
    sensors::Camera camera(sensors::Resolution::HHD);
    const auto frame = camera.render(
        world, Pose2(50.0, world.road().laneCenter(1), 0));

    detect::DetectorParams dp;
    dp.inputSize = 160;
    detect::YoloDetector fp32(dp);
    dp.precision = Precision::Int8;
    detect::YoloDetector int8(dp);

    const auto refDets = fp32.detect(frame.image);
    const auto quantDets = int8.detect(frame.image);
    ASSERT_FALSE(refDets.empty());
    ASSERT_EQ(refDets.size(), quantDets.size());
    for (const auto& ref : refDets) {
        double best = 0;
        for (const auto& q : quantDets)
            best = std::max(best, ref.box.iou(q.box));
        EXPECT_GE(best, 0.98);
    }
}

TEST(QuantDetector, DeterministicAcrossThreadCounts)
{
    sensors::World world;
    sensors::Actor a;
    a.cls = sensors::ObjectClass::Vehicle;
    a.motion = sensors::MotionKind::Stationary;
    a.pose = Pose2(62.0, world.road().laneCenter(1), 0.0);
    world.addActor(a);
    sensors::Camera camera(sensors::Resolution::HHD);
    const auto frame = camera.render(
        world, Pose2(50.0, world.road().laneCenter(1), 0));

    detect::DetectorParams dp;
    dp.inputSize = 160;
    dp.precision = Precision::Int8;
    dp.threads = 1;
    detect::YoloDetector serial(dp);
    const auto ref = serial.detect(frame.image);

    for (const int threads : {2, 8}) {
        dp.threads = threads;
        detect::YoloDetector parallel(dp);
        const auto got = parallel.detect(frame.image);
        ASSERT_EQ(ref.size(), got.size()) << threads << " threads";
        for (std::size_t i = 0; i < ref.size(); ++i) {
            EXPECT_DOUBLE_EQ(ref[i].box.x, got[i].box.x);
            EXPECT_DOUBLE_EQ(ref[i].box.y, got[i].box.y);
            EXPECT_DOUBLE_EQ(ref[i].box.w, got[i].box.w);
            EXPECT_DOUBLE_EQ(ref[i].box.h, got[i].box.h);
            EXPECT_DOUBLE_EQ(ref[i].confidence, got[i].confidence);
        }
    }
}

/** TRA: int8 tracker stays within 2 px of the fp32 center estimate. */
TEST(QuantTracker, CenterStaysNearFp32)
{
    sensors::World world;
    sensors::Actor a;
    a.cls = sensors::ObjectClass::Vehicle;
    a.motion = sensors::MotionKind::Stationary;
    a.pose = Pose2(62.0, world.road().laneCenter(1), 0.0);
    world.addActor(a);
    sensors::Camera camera(sensors::Resolution::HHD);
    const auto frame0 = camera.render(
        world, Pose2(50.0, world.road().laneCenter(1), 0));
    const auto frame1 = camera.render(
        world, Pose2(50.5, world.road().laneCenter(1), 0));
    ASSERT_FALSE(frame0.truth.empty());

    track::TrackerParams tp;
    track::GoturnTracker fp32(tp);
    tp.precision = Precision::Int8;
    track::GoturnTracker int8(tp);

    fp32.init(frame0.image, frame0.truth[0].box);
    int8.init(frame0.image, frame0.truth[0].box);
    const BBox refBox = fp32.track(frame1.image);
    const BBox quantBox = int8.track(frame1.image);
    EXPECT_NEAR(refBox.cx(), quantBox.cx(), 2.0);
    EXPECT_NEAR(refBox.cy(), quantBox.cy(), 2.0);
}

} // namespace
