/**
 * @file
 * Tests for the tiled on-disk prior-map store: sharding, query
 * equivalence with the in-memory map, LRU paging behavior, reopening
 * from disk, and the I/O statistics the storage constraint analysis
 * consumes.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "common/random.hh"
#include "slam/tiled_store.hh"

namespace {

using namespace ad;
using namespace ad::slam;

class TiledStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("adtile_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        std::filesystem::remove_all(dir_);

        Rng rng(3);
        for (int i = 0; i < 600; ++i) {
            vision::Descriptor d;
            for (auto& w : d.words)
                w = rng();
            map_.insert({rng.uniform(0.0, 500.0),
                         rng.uniform(-20.0, 20.0)},
                        static_cast<float>(rng.uniform(0, 3)), d);
        }
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    std::filesystem::path dir_;
    PriorMap map_;
};

TEST_F(TiledStoreTest, BuildShardsAllPoints)
{
    TiledMapStore store(dir_.string());
    store.build(map_);
    EXPECT_GT(store.stats().tilesOnDisk, 5u);
    EXPECT_GT(store.stats().bytesOnDisk, map_.size() * 50);
    // Every point is reachable through a full-extent query.
    const auto all = store.queryRadius({250, 0}, 600.0);
    EXPECT_EQ(all.size(), map_.size());
}

TEST_F(TiledStoreTest, QueriesMatchInMemoryMap)
{
    TiledMapStore store(dir_.string());
    store.build(map_);
    Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        const Vec2 center{rng.uniform(0, 500), rng.uniform(-20, 20)};
        const double radius = rng.uniform(5, 80);
        const auto fromStore = store.queryRadius(center, radius);
        const auto fromMap = map_.queryRadius(center, radius);
        EXPECT_EQ(fromStore.size(), fromMap.size())
            << "center (" << center.x << "," << center.y << ") r "
            << radius;
    }
}

TEST_F(TiledStoreTest, DriveThroughPagesTilesSequentially)
{
    TiledStoreParams params;
    // Each 30 m query touches up to 2x2 tiles; any smaller cache
    // thrashes (cyclic LRU access), so provision above the working
    // set -- itself a storage-sizing lesson.
    params.cacheTiles = 6;
    TiledMapStore store(dir_.string(), params);
    store.build(map_);

    // Simulated drive: repeated queries along the road reuse cached
    // tiles between steps -> high hit rate, bounded bytes read.
    for (double x = 10; x < 490; x += 5.0)
        store.queryRadius({x, 0}, 30.0);
    EXPECT_GT(store.stats().hitRate(), 0.6);
    // Bytes paged in are a small multiple of the disk footprint (a
    // tile may be evicted and reloaded at most a few times).
    EXPECT_LT(store.stats().bytesRead, 4 * store.stats().bytesOnDisk);
}

TEST_F(TiledStoreTest, LruEvictionForcesReload)
{
    TiledStoreParams params;
    params.cacheTiles = 1;
    TiledMapStore store(dir_.string(), params);
    store.build(map_);
    // Two far-apart query points ping-pong the single cache slot.
    store.queryRadius({10, 0}, 5.0);
    const auto loadsAfterFirst = store.stats().tileLoads;
    store.queryRadius({480, 0}, 5.0);
    store.queryRadius({10, 0}, 5.0);
    EXPECT_GT(store.stats().tileLoads, loadsAfterFirst + 1);
}

TEST_F(TiledStoreTest, ReopenFindsExistingTiles)
{
    {
        TiledMapStore store(dir_.string());
        store.build(map_);
    }
    TiledMapStore reopened(dir_.string());
    reopened.open();
    EXPECT_GT(reopened.stats().tilesOnDisk, 5u);
    const auto all = reopened.queryRadius({250, 0}, 600.0);
    EXPECT_EQ(all.size(), map_.size());
}

TEST_F(TiledStoreTest, EmptyRegionsQueryCleanly)
{
    TiledMapStore store(dir_.string());
    store.build(map_);
    EXPECT_TRUE(store.queryRadius({-4000, -4000}, 20.0).empty());
}

TEST_F(TiledStoreTest, DropCacheKeepsDiskState)
{
    TiledMapStore store(dir_.string());
    store.build(map_);
    store.queryRadius({250, 0}, 50.0);
    const auto disk = store.stats().bytesOnDisk;
    store.dropCache();
    EXPECT_EQ(store.stats().bytesOnDisk, disk);
    const auto result = store.queryRadius({250, 0}, 50.0);
    EXPECT_FALSE(result.empty());
}

} // namespace
