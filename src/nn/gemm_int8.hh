/**
 * @file
 * Reduced-precision (int8 x int8 -> int32) matrix kernels -- the CPU
 * reproduction of the precision corner of the paper's accelerator
 * study. The ASIC/FPGA designs in Section 4.2 get much of their win
 * from narrow arithmetic; these kernels realize the same trade on the
 * host: 8-bit operands quadruple the values carried per SIMD lane, and
 * the widening multiply-add (pmaddwd) retires two multiply-accumulates
 * per 32-bit lane per instruction, roughly doubling MAC throughput
 * again over fp32 mul+add.
 *
 * Layout contract: operand values are int8-range [-127, 127], but the
 * A (left) operand is passed pre-widened to int16 -- the form the SIMD
 * multiply consumes -- so layers with static weights (conv filters, FC
 * matrices) pay the widening once at quantization time instead of per
 * forward pass. The activation-side operand is packed and widened
 * internally per call, an O(k*n) cost amortized against the O(m*n*k)
 * multiply.
 *
 * Determinism: integer accumulation is exact, so any summation order
 * gives bit-identical int32 results; rows shard across the
 * KernelContext pool as disjoint pure writes. The int8 path is
 * therefore bitwise-deterministic at any thread count by construction,
 * matching the fp32 kernel-layer contract (DESIGN.md, "Quantized
 * inference").
 *
 * Dispatch tiers: scalar -> SSE2 -> AVX2 -> AVX-512-VNNI, picked at
 * runtime from CPUID. The VNNI tier feeds vpdpbusd (u8 x s8, four
 * pairs per int32 lane per instruction) by biasing the signed A
 * operand into u8 (+128) and subtracting 128 * colsum(B) afterwards --
 * an exact integer correction, so every tier is bit-identical to every
 * other. The AD_FORCE_ISA environment variable
 * (scalar/sse2/avx2/avx512vnni) pins the tier for A/B runs and the CI
 * cross-ISA leg; an unknown or unavailable name is a fatal() so a
 * typoed matrix entry cannot silently measure the wrong kernel.
 */

#ifndef AD_NN_GEMM_INT8_HH
#define AD_NN_GEMM_INT8_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/kernel_context.hh"

namespace ad::nn {

/**
 * C += A * B for row-major int8-range matrices, int32 accumulation.
 *
 * @param m rows of A and C.
 * @param n columns of B and C.
 * @param k columns of A / rows of B.
 * @param a m x k, int8-range values pre-widened to int16.
 * @param b k x n int8 matrix (packed/widened internally).
 * @param c m x n int32 accumulator (not cleared).
 * @param ctx kernel execution context (serial by default).
 *
 * Bitwise-deterministic for any ctx: integer sums are exact and each
 * C row is written by exactly one shard.
 */
void gemmInt8(std::size_t m, std::size_t n, std::size_t k,
              const std::int16_t* a, const std::int8_t* b,
              std::int32_t* c,
              const KernelContext& ctx = KernelContext::serial());

/**
 * Reference int8 GEMM (naive triple loop, int32 accumulation) used by
 * the test suite to validate gemmInt8 over random shapes. Exact: the
 * SIMD kernel must match it bit for bit.
 */
void gemmInt8Naive(std::size_t m, std::size_t n, std::size_t k,
                   const std::int8_t* a, const std::int8_t* b,
                   std::int32_t* c);

/**
 * y += A * x for row-major int8-range A (m x k) pre-widened to int16;
 * the quantized fully connected core. x is likewise pre-widened by the
 * caller (one O(k) pass). Rows shard across ctx; exact integer sums
 * make the result bitwise-deterministic for any thread count.
 */
void gemvInt8(std::size_t m, std::size_t k, const std::int16_t* a,
              const std::int16_t* x, std::int32_t* y,
              const KernelContext& ctx = KernelContext::serial());

/**
 * Name of the int8 micro-kernel dispatch tier currently in effect
 * ("avx512vnni", "avx2", "sse2" or "scalar") -- recorded into
 * BENCH_quant.json so the artifact states which ISA produced the
 * measured speedup. Reflects AD_FORCE_ISA / setInt8KernelIsa
 * overrides.
 */
const char* int8KernelIsa();

/**
 * Names of every dispatch tier this host can execute, ordered worst to
 * best ("scalar" first). The tier cross-check test iterates this list
 * and asserts all members produce bit-identical results.
 */
std::vector<std::string> int8KernelIsaTiers();

/**
 * Force the dispatch tier by name for this process; the empty string
 * restores automatic (best-available or AD_FORCE_ISA) selection.
 * Returns false -- changing nothing -- when the name is unknown or
 * the tier is unavailable on this host. Test hook; production
 * overrides use AD_FORCE_ISA so the choice is visible in the
 * environment block of a benchmark log.
 */
bool setInt8KernelIsa(const std::string& name);

} // namespace ad::nn

#endif // AD_NN_GEMM_INT8_HH
