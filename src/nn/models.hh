/**
 * @file
 * Model definitions for the two DNN-based bottleneck engines the paper
 * characterizes: a YOLO-style single-shot grid detector (DET, Redmon &
 * Farhadi) and a GOTURN-style regression tracker (TRA, Held et al.).
 *
 * Models are described by data (ModelSpec) with two consumers:
 *
 *  - specProfile() computes the per-layer FLOP/byte inventory *without
 *    allocating weights*, so the accelerator platform models can reason
 *    about the full-scale networks (tens of millions of parameters)
 *    cheaply; and
 *  - buildNetwork() instantiates an executable Network, optionally at a
 *    reduced width/input size for measured-mode runs on the host CPU.
 *
 * Weight construction: we have no trained checkpoints (and the paper's
 * evaluation never depends on accuracy -- only latency/power), so
 * buildNetwork() installs *constructed* weights: channel 0 of every conv
 * layer computes a running 3x3 box average of the input brightness,
 * making the detection head's objectness channel respond to
 * area-weighted brightness -- bright, large objects on dark road. This
 * keeps the examples functionally end-to-end (the DNN output genuinely
 * drives detection) while the compute profile stays that of the real
 * architecture. See DESIGN.md, "Substitutions".
 */

#ifndef AD_NN_MODELS_HH
#define AD_NN_MODELS_HH

#include <string>
#include <vector>

#include "common/random.hh"
#include "nn/network.hh"

namespace ad::nn {

/** One layer in a declarative model description. */
struct LayerDesc
{
    LayerKind kind = LayerKind::Conv;
    std::string name;
    int out = 0;      ///< Conv: output channels; FC: output features.
    int kernel = 0;   ///< Conv/Pool kernel size.
    int stride = 1;   ///< Conv/Pool stride.
    int pad = 0;      ///< Conv padding.
    float leaky = 0;  ///< Activation slope.
};

/** A declarative network description. */
struct ModelSpec
{
    std::string name;
    Shape input;
    std::vector<LayerDesc> layers;
};

/**
 * YOLOv2-flavored detector backbone + detection head for grayscale
 * input.
 *
 * @param inputSize square network input (paper-scale default 416).
 * @param width channel-width multiplier; 1.0 is paper scale
 *        (~9 GFLOP/frame for grayscale input), smaller values produce
 *        nets that run in milliseconds for tests.
 * @param numClasses detection classes (4: vehicle, bicycle, traffic
 *        sign, pedestrian -- the classes the paper tracks).
 */
ModelSpec detectorSpec(int inputSize = 416, double width = 1.0,
                       int numClasses = 4);

/**
 * GOTURN-style convolutional branch (AlexNet-flavored, applied to both
 * the previous-frame target crop and the current-frame search region).
 *
 * @param cropSize square crop input (paper-scale default 227).
 * @param width channel-width multiplier.
 */
ModelSpec trackerConvSpec(int cropSize = 227, double width = 1.0);

/**
 * GOTURN-style fully connected head: three 4096-wide FC layers over the
 * concatenated branch features, then a 4-way bounding-box regression.
 *
 * @param convOutElements flattened feature count of ONE conv branch
 *        (the head sees twice this after concatenation).
 * @param width multiplier on the 4096 FC width.
 */
ModelSpec trackerFcSpec(int convOutElements, double width = 1.0);

/** Per-layer inventory of a spec without allocating any weights. */
NetworkProfile specProfile(const ModelSpec& spec);

/**
 * Combined profile of the full GOTURN-style tracker: two conv branches
 * plus the FC head. This is the TRA workload the accelerator models see.
 */
NetworkProfile trackerProfile(int cropSize = 227, double width = 1.0);

/** Instantiate an executable network (weights zero-initialized). */
Network buildNetwork(const ModelSpec& spec);

/**
 * Install constructed detector weights: channel 0 carries a cascaded
 * box average of image brightness; the head's objectness output reads
 * channel 0. Remaining channels receive small random weights so the
 * arithmetic is representative.
 */
void initDetectorWeights(Network& net, Rng& rng);

/**
 * Install constructed tracker weights (channel-0 averaging conv branch,
 * small random FC stack). Functional tracking accuracy comes from the
 * NCC refinement in ad_track; the network provides the representative
 * DNN workload.
 */
void initTrackerWeights(Network& net, Rng& rng);

} // namespace ad::nn

#endif // AD_NN_MODELS_HH
