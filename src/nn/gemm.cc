#include "nn/gemm.hh"

#include <algorithm>
#include <vector>

namespace ad::nn {

namespace {

// Micro-kernel register tile: MR C-rows by NR C-columns of fp32
// accumulators live in registers across the whole k loop (8 SSE
// registers at the baseline ISA; the compiler's auto-vectorizer maps
// the unit-stride j loop onto them).
constexpr std::size_t microM = 4;
constexpr std::size_t microN = 8;

// K-block: one packed A block (microM x blockK) stays L1-resident
// while a packed B panel (blockK x microN) streams through it.
constexpr std::size_t blockK = 256;

// Row grain for sharding M across the pool: chunks never get fewer
// rows than this, keeping per-task overhead negligible.
constexpr std::size_t rowGrain = 16;

/**
 * Pack B[kBegin:kEnd, :] into microN-wide panels: panel p holds
 * columns [p*microN, p*microN + microN) as kc consecutive microN-rows,
 * zero-padded past n. Padded lanes multiply against discarded
 * accumulators, so padding never reaches C.
 */
void
packB(std::size_t panelLo, std::size_t panelHi, std::size_t kBegin,
      std::size_t kEnd, std::size_t n, const float* b, float* bPack)
{
    const std::size_t kc = kEnd - kBegin;
    for (std::size_t p = panelLo; p < panelHi; ++p) {
        const std::size_t j0 = p * microN;
        float* dst = bPack + p * kc * microN;
        for (std::size_t kk = kBegin; kk < kEnd; ++kk) {
            const float* src = b + kk * n + j0;
            for (std::size_t j = 0; j < microN; ++j)
                dst[j] = (j0 + j < n) ? src[j] : 0.0f;
            dst += microN;
        }
    }
}

/**
 * Pack A[i0:i0+mr, kBegin:kEnd) column-interleaved: aPack[kk*microM+r]
 * is A(i0+r, kBegin+kk), zero-padded past mr.
 */
void
packA(std::size_t i0, std::size_t mr, std::size_t kBegin, std::size_t kEnd,
      std::size_t k, const float* a, float* aPack)
{
    for (std::size_t kk = kBegin; kk < kEnd; ++kk) {
        float* dst = aPack + (kk - kBegin) * microM;
        for (std::size_t r = 0; r < microM; ++r)
            dst[r] = (r < mr)
                ? a[(i0 + r) * k + kk]
                : 0.0f;
    }
}

/**
 * acc[r][j] += sum_kk aPanel[kk*microM+r] * bPanel[kk*microN+j], kk
 * ascending -- the fixed per-element accumulation order behind the
 * bitwise-determinism guarantee.
 */
inline void
microKernel(std::size_t kc, const float* aPanel, const float* bPanel,
            float acc[microM][microN])
{
    for (std::size_t kk = 0; kk < kc; ++kk) {
        const float* aCol = aPanel + kk * microM;
        const float* bRow = bPanel + kk * microN;
        for (std::size_t r = 0; r < microM; ++r) {
            const float av = aCol[r];
            for (std::size_t j = 0; j < microN; ++j)
                acc[r][j] += av * bRow[j];
        }
    }
}

/** All row-blocks in [rowLo, rowHi) against every packed B panel. */
void
gemmRowRange(std::size_t rowLo, std::size_t rowHi, std::size_t n,
             std::size_t k, std::size_t kBegin, std::size_t kEnd,
             const float* a, const float* bPack, float* c)
{
    const std::size_t kc = kEnd - kBegin;
    const std::size_t panels = (n + microN - 1) / microN;
    static thread_local std::vector<float> aPack;
    aPack.resize(blockK * microM);

    for (std::size_t i0 = rowLo; i0 < rowHi; i0 += microM) {
        const std::size_t mr = std::min(microM, rowHi - i0);
        packA(i0, mr, kBegin, kEnd, k, a, aPack.data());
        for (std::size_t p = 0; p < panels; ++p) {
            const std::size_t j0 = p * microN;
            const std::size_t nr = std::min(microN, n - j0);
            float acc[microM][microN];
            for (std::size_t r = 0; r < microM; ++r)
                for (std::size_t j = 0; j < microN; ++j)
                    acc[r][j] = (r < mr && j < nr)
                        ? c[(i0 + r) * n + j0 + j]
                        : 0.0f;
            microKernel(kc, aPack.data(), bPack + p * kc * microN, acc);
            for (std::size_t r = 0; r < mr; ++r)
                for (std::size_t j = 0; j < nr; ++j)
                    c[(i0 + r) * n + j0 + j] = acc[r][j];
        }
    }
}

} // namespace

void
gemm(std::size_t m, std::size_t n, std::size_t k,
     const float* a, const float* b, float* c, const KernelContext& ctx)
{
    if (m == 0 || n == 0 || k == 0)
        return;

    const std::size_t panels = (n + microN - 1) / microN;
    // The packed B panel belongs to the calling thread; workers only
    // read it, and parallelFor joins before it can be resized again.
    // Shards get the raw pointer: thread_locals are not captured by
    // lambdas, so naming bPack inside one would resolve to the
    // worker's own (empty) instance.
    static thread_local std::vector<float> bPack;

    for (std::size_t k0 = 0; k0 < k; k0 += blockK) {
        const std::size_t kEnd = std::min(k0 + blockK, k);
        const std::size_t kc = kEnd - k0;
        bPack.resize(panels * kc * microN);
        float* bPackData = bPack.data();
        kernelParallelFor(ctx, 0, panels, 8,
                          [&, bPackData](std::size_t lo, std::size_t hi) {
                              packB(lo, hi, k0, kEnd, n, b, bPackData);
                          });
        kernelParallelFor(ctx, 0, m, rowGrain,
                          [&, bPackData](std::size_t lo, std::size_t hi) {
                              gemmRowRange(lo, hi, n, k, k0, kEnd, a,
                                           bPackData, c);
                          });
    }
}

void
gemmBlockedReference(std::size_t m, std::size_t n, std::size_t k,
                     const float* a, const float* b, float* c)
{
    constexpr std::size_t blockM = 64;
    for (std::size_t i0 = 0; i0 < m; i0 += blockM) {
        const std::size_t iEnd = std::min(i0 + blockM, m);
        for (std::size_t k0 = 0; k0 < k; k0 += blockK) {
            const std::size_t kEnd = std::min(k0 + blockK, k);
            for (std::size_t i = i0; i < iEnd; ++i) {
                float* cRow = c + i * n;
                const float* aRow = a + i * k;
                for (std::size_t kk = k0; kk < kEnd; ++kk) {
                    // No zero-skipping: constructed weights are sparse,
                    // and skipping would make measured latency depend on
                    // weight values rather than network shape.
                    const float aVal = aRow[kk];
                    const float* bRow = b + kk * n;
                    for (std::size_t j = 0; j < n; ++j)
                        cRow[j] += aVal * bRow[j];
                }
            }
        }
    }
}

void
gemmNaive(std::size_t m, std::size_t n, std::size_t k,
          const float* a, const float* b, float* c)
{
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            float acc = c[i * n + j];
            for (std::size_t kk = 0; kk < k; ++kk)
                acc += a[i * k + kk] * b[kk * n + j];
            c[i * n + j] = acc;
        }
    }
}

void
gemv(std::size_t m, std::size_t k, const float* a, const float* x,
     float* y, const KernelContext& ctx)
{
    kernelParallelFor(ctx, 0, m, 64,
                      [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i) {
                              const float* row = a + i * k;
                              float acc = 0.0f;
                              for (std::size_t j = 0; j < k; ++j)
                                  acc += row[j] * x[j];
                              y[i] += acc;
                          }
                      });
}

} // namespace ad::nn
