#include "nn/gemm.hh"

#include <algorithm>

namespace ad::nn {

namespace {

// Block sizes chosen so one A-block plus one B-panel fit comfortably in
// L1/L2 on commodity cores.
constexpr std::size_t blockM = 64;
constexpr std::size_t blockK = 256;

} // namespace

void
gemm(std::size_t m, std::size_t n, std::size_t k,
     const float* a, const float* b, float* c)
{
    for (std::size_t i0 = 0; i0 < m; i0 += blockM) {
        const std::size_t iEnd = std::min(i0 + blockM, m);
        for (std::size_t k0 = 0; k0 < k; k0 += blockK) {
            const std::size_t kEnd = std::min(k0 + blockK, k);
            for (std::size_t i = i0; i < iEnd; ++i) {
                float* cRow = c + i * n;
                const float* aRow = a + i * k;
                for (std::size_t kk = k0; kk < kEnd; ++kk) {
                    // No zero-skipping: constructed weights are sparse,
                    // and skipping would make measured latency depend on
                    // weight values rather than network shape.
                    const float aVal = aRow[kk];
                    const float* bRow = b + kk * n;
                    for (std::size_t j = 0; j < n; ++j)
                        cRow[j] += aVal * bRow[j];
                }
            }
        }
    }
}

void
gemmNaive(std::size_t m, std::size_t n, std::size_t k,
          const float* a, const float* b, float* c)
{
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            float acc = c[i * n + j];
            for (std::size_t kk = 0; kk < k; ++kk)
                acc += a[i * k + kk] * b[kk * n + j];
            c[i * n + j] = acc;
        }
    }
}

void
gemv(std::size_t m, std::size_t k, const float* a, const float* x, float* y)
{
    for (std::size_t i = 0; i < m; ++i) {
        const float* row = a + i * k;
        float acc = 0.0f;
        for (std::size_t j = 0; j < k; ++j)
            acc += row[j] * x[j];
        y[i] += acc;
    }
}

} // namespace ad::nn
