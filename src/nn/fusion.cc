#include "nn/fusion.hh"

#include "nn/quant.hh"

namespace ad::nn {

namespace {

/** Fuse the following Activation into layer i if the pair matches. */
bool
tryFuseActivation(Network& net, std::size_t i)
{
    if (i + 1 >= net.layerCount())
        return false;
    const auto* act = dynamic_cast<const Activation*>(&net.layer(i + 1));
    if (!act)
        return false;
    const float slope = act->leakySlope();
    Layer& layer = net.mutableLayer(i);
    if (auto* conv = dynamic_cast<Conv2D*>(&layer))
        conv->fuseActivation(slope);
    else if (auto* qconv = dynamic_cast<QuantConv2D*>(&layer))
        qconv->fuseActivation(slope);
    else if (auto* fc = dynamic_cast<FullyConnected*>(&layer))
        fc->fuseActivation(slope);
    else if (auto* qfc = dynamic_cast<QuantFullyConnected*>(&layer))
        qfc->fuseActivation(slope);
    else
        return false;
    net.removeLayer(i + 1);
    return true;
}

} // namespace

LoweringReport
lowerNetwork(Network& net, const Shape& input, const LoweringOptions& opt)
{
    LoweringReport report;
    Shape s = input;
    for (std::size_t i = 0; i < net.layerCount(); ++i) {
        if (opt.fuseActivations && tryFuseActivation(net, i))
            ++report.fusedActivations;
        Layer& layer = net.mutableLayer(i);
        const Shape out = layer.outputShape(s);
        if (opt.directConv) {
            if (auto* conv = dynamic_cast<Conv2D*>(&layer)) {
                const bool oneByOne = conv->kernel() == 1 &&
                                      conv->stride() == 1 &&
                                      conv->pad() == 0;
                const bool tiny =
                    out.h * out.w <= opt.directConvMaxPixels;
                if (oneByOne || tiny) {
                    conv->setDirectConv(true);
                    ++report.directConvs;
                }
            } else if (auto* qconv =
                           dynamic_cast<QuantConv2D*>(&layer)) {
                // Integer path: only the copy-free 1x1 case wins (no
                // scalar direct kernel; see QuantConv2D::setDirectConv).
                if (qconv->kernel() == 1 && qconv->stride() == 1 &&
                    qconv->pad() == 0) {
                    qconv->setDirectConv(true);
                    ++report.directConvs;
                }
            }
        }
        // Activation preserves shape, so the fused layer's output
        // shape equals the pre-fusion pair's.
        s = out;
    }
    return report;
}

} // namespace ad::nn
