#include "nn/gemm_int8.hh"

#include <atomic>
#include <cstdlib>
#include <vector>

#include "common/logging.hh"
#include "nn/tensor.hh"

#if defined(__x86_64__) || defined(__amd64__)
#define AD_NN_INT8_X86 1
#include <immintrin.h>
#endif

namespace ad::nn {

namespace {

// k is padded to a multiple of 16 so both the 8-wide SSE2 and the
// 16-wide AVX2 inner loops run without a scalar tail; padded lanes are
// zero and contribute nothing to the exact integer sums.
constexpr std::size_t kStep = 16;

// Row grain for sharding M across the pool (same rationale as the
// fp32 kernel: chunks never get fewer rows than this).
constexpr std::size_t rowGrain = 8;

/**
 * One row range of C += A * B^T over padded int16 operands: aPack is
 * m x kPad row-major, bt is n x kPad row-major (B transposed), so
 * every output element is one contiguous dot product.
 */
using RowRangeFn = void (*)(std::size_t rowLo, std::size_t rowHi,
                            std::size_t n, std::size_t kPad,
                            const std::int16_t* aPack,
                            const std::int16_t* bt, std::int32_t* c);

/** Dot product over int8-range int16 operands. */
using DotFn = std::int32_t (*)(const std::int16_t* a,
                               const std::int16_t* b, std::size_t k);

void
rowRangeScalar(std::size_t rowLo, std::size_t rowHi, std::size_t n,
               std::size_t kPad, const std::int16_t* aPack,
               const std::int16_t* bt, std::int32_t* c)
{
    for (std::size_t i = rowLo; i < rowHi; ++i) {
        const std::int16_t* ar = aPack + i * kPad;
        for (std::size_t j = 0; j < n; ++j) {
            const std::int16_t* bc = bt + j * kPad;
            std::int32_t acc = 0;
            for (std::size_t kk = 0; kk < kPad; ++kk)
                acc += static_cast<std::int32_t>(ar[kk]) * bc[kk];
            c[i * n + j] += acc;
        }
    }
}

std::int32_t
dotScalar(const std::int16_t* a, const std::int16_t* b, std::size_t k)
{
    std::int32_t acc = 0;
    for (std::size_t kk = 0; kk < k; ++kk)
        acc += static_cast<std::int32_t>(a[kk]) * b[kk];
    return acc;
}

#if AD_NN_INT8_X86

/** Horizontal sum of four int32 lanes (SSE2). */
inline std::int32_t
hsum128(__m128i v)
{
    __m128i hi = _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2));
    v = _mm_add_epi32(v, hi);
    hi = _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1));
    v = _mm_add_epi32(v, hi);
    return _mm_cvtsi128_si32(v);
}

// The SSE2 micro-kernel: 4 output columns share each A load; pmaddwd
// retires 8 widening MACs per instruction (pairs summed into 4 int32
// lanes). int8-range operands cannot overflow the pairwise int32 sum
// (127 * 127 * 2 << 2^31) and the running sums stay exact for any
// practical k, so the result is bit-identical to the scalar kernel.
void
rowRangeSse2(std::size_t rowLo, std::size_t rowHi, std::size_t n,
             std::size_t kPad, const std::int16_t* aPack,
             const std::int16_t* bt, std::int32_t* c)
{
    for (std::size_t i = rowLo; i < rowHi; ++i) {
        const std::int16_t* ar = aPack + i * kPad;
        std::size_t j = 0;
        for (; j + 4 <= n; j += 4) {
            const std::int16_t* b0 = bt + j * kPad;
            const std::int16_t* b1 = b0 + kPad;
            const std::int16_t* b2 = b1 + kPad;
            const std::int16_t* b3 = b2 + kPad;
            __m128i s0 = _mm_setzero_si128();
            __m128i s1 = s0;
            __m128i s2 = s0;
            __m128i s3 = s0;
            for (std::size_t kk = 0; kk < kPad; kk += 8) {
                const __m128i va = _mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(ar + kk));
                s0 = _mm_add_epi32(
                    s0, _mm_madd_epi16(va, _mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(b0 + kk))));
                s1 = _mm_add_epi32(
                    s1, _mm_madd_epi16(va, _mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(b1 + kk))));
                s2 = _mm_add_epi32(
                    s2, _mm_madd_epi16(va, _mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(b2 + kk))));
                s3 = _mm_add_epi32(
                    s3, _mm_madd_epi16(va, _mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(b3 + kk))));
            }
            c[i * n + j] += hsum128(s0);
            c[i * n + j + 1] += hsum128(s1);
            c[i * n + j + 2] += hsum128(s2);
            c[i * n + j + 3] += hsum128(s3);
        }
        for (; j < n; ++j) {
            const std::int16_t* bc = bt + j * kPad;
            std::int32_t acc = 0;
            for (std::size_t kk = 0; kk < kPad; ++kk)
                acc += static_cast<std::int32_t>(ar[kk]) * bc[kk];
            c[i * n + j] += acc;
        }
    }
}

std::int32_t
dotSse2(const std::int16_t* a, const std::int16_t* b, std::size_t k)
{
    __m128i s = _mm_setzero_si128();
    std::size_t kk = 0;
    for (; kk + 8 <= k; kk += 8) {
        const __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(a + kk));
        const __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + kk));
        s = _mm_add_epi32(s, _mm_madd_epi16(va, vb));
    }
    std::int32_t acc = hsum128(s);
    for (; kk < k; ++kk)
        acc += static_cast<std::int32_t>(a[kk]) * b[kk];
    return acc;
}

// AVX2 variants: 16 int16 lanes per pmaddwd. Compiled with a target
// attribute so the binary stays runnable on baseline x86-64; the
// dispatcher below only selects them when the CPU reports AVX2.
__attribute__((target("avx2"))) void
rowRangeAvx2(std::size_t rowLo, std::size_t rowHi, std::size_t n,
             std::size_t kPad, const std::int16_t* aPack,
             const std::int16_t* bt, std::int32_t* c)
{
    for (std::size_t i = rowLo; i < rowHi; ++i) {
        const std::int16_t* ar = aPack + i * kPad;
        std::size_t j = 0;
        for (; j + 4 <= n; j += 4) {
            const std::int16_t* b0 = bt + j * kPad;
            const std::int16_t* b1 = b0 + kPad;
            const std::int16_t* b2 = b1 + kPad;
            const std::int16_t* b3 = b2 + kPad;
            __m256i s0 = _mm256_setzero_si256();
            __m256i s1 = s0;
            __m256i s2 = s0;
            __m256i s3 = s0;
            for (std::size_t kk = 0; kk < kPad; kk += 16) {
                const __m256i va = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(ar + kk));
                s0 = _mm256_add_epi32(
                    s0, _mm256_madd_epi16(va, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(b0 + kk))));
                s1 = _mm256_add_epi32(
                    s1, _mm256_madd_epi16(va, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(b1 + kk))));
                s2 = _mm256_add_epi32(
                    s2, _mm256_madd_epi16(va, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(b2 + kk))));
                s3 = _mm256_add_epi32(
                    s3, _mm256_madd_epi16(va, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(b3 + kk))));
            }
            const __m128i t0 = _mm_add_epi32(
                _mm256_castsi256_si128(s0),
                _mm256_extracti128_si256(s0, 1));
            const __m128i t1 = _mm_add_epi32(
                _mm256_castsi256_si128(s1),
                _mm256_extracti128_si256(s1, 1));
            const __m128i t2 = _mm_add_epi32(
                _mm256_castsi256_si128(s2),
                _mm256_extracti128_si256(s2, 1));
            const __m128i t3 = _mm_add_epi32(
                _mm256_castsi256_si128(s3),
                _mm256_extracti128_si256(s3, 1));
            c[i * n + j] += hsum128(t0);
            c[i * n + j + 1] += hsum128(t1);
            c[i * n + j + 2] += hsum128(t2);
            c[i * n + j + 3] += hsum128(t3);
        }
        for (; j < n; ++j) {
            const std::int16_t* bc = bt + j * kPad;
            std::int32_t acc = 0;
            for (std::size_t kk = 0; kk < kPad; ++kk)
                acc += static_cast<std::int32_t>(ar[kk]) * bc[kk];
            c[i * n + j] += acc;
        }
    }
}

__attribute__((target("avx2"))) std::int32_t
dotAvx2(const std::int16_t* a, const std::int16_t* b, std::size_t k)
{
    __m256i s = _mm256_setzero_si256();
    std::size_t kk = 0;
    for (; kk + 16 <= k; kk += 16) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + kk));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b + kk));
        s = _mm256_add_epi32(s, _mm256_madd_epi16(va, vb));
    }
    std::int32_t acc = hsum128(_mm_add_epi32(
        _mm256_castsi256_si128(s), _mm256_extracti128_si256(s, 1)));
    for (; kk < k; ++kk)
        acc += static_cast<std::int32_t>(a[kk]) * b[kk];
    return acc;
}

bool
haveAvx2()
{
    static const bool have = __builtin_cpu_supports("avx2");
    return have;
}

bool
haveAvx512Vnni()
{
    static const bool have = __builtin_cpu_supports("avx512f") &&
                             __builtin_cpu_supports("avx512bw") &&
                             __builtin_cpu_supports("avx512vnni");
    return have;
}

// VNNI byte lanes: 64 u8/s8 per zmm, so k pads to a multiple of 64.
constexpr std::size_t kStepVnni = 64;

// _mm512_reduce_add_epi32 expands through _mm512_extracti64x4_epi64,
// whose _mm256_undefined_si256() trips a false-positive
// -Wmaybe-uninitialized in GCC's own header; silence it for the two
// kernels below.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"

// The VNNI micro-kernel consumes the biased-u8 A pack and the s8
// transposed B pack. vpdpbusd multiplies u8 x s8 pairs (each i16
// product fits: 255*127 = 32385, 255*-128 = -32640), sums four of
// them sign-extended into each int32 lane and accumulates without
// saturation -- vpdpbusds, the saturating sibling, would NOT be exact.
// Per element: sum((a+128) * b) = sum(a*b) + 128 * colSum, so
// subtracting 128 * colSum[j] recovers the exact signed dot product.
// Pad lanes hold a=128 (bias of zero) against b=0: no contribution.
__attribute__((target("avx512f,avx512bw,avx512vnni"))) void
rowRangeVnni(std::size_t rowLo, std::size_t rowHi, std::size_t n,
             std::size_t kPad, const std::uint8_t* aPack,
             const std::int8_t* bt, const std::int32_t* colSum,
             std::int32_t* c)
{
    for (std::size_t i = rowLo; i < rowHi; ++i) {
        const std::uint8_t* ar = aPack + i * kPad;
        std::size_t j = 0;
        for (; j + 4 <= n; j += 4) {
            const std::int8_t* b0 = bt + j * kPad;
            const std::int8_t* b1 = b0 + kPad;
            const std::int8_t* b2 = b1 + kPad;
            const std::int8_t* b3 = b2 + kPad;
            __m512i s0 = _mm512_setzero_si512();
            __m512i s1 = s0;
            __m512i s2 = s0;
            __m512i s3 = s0;
            for (std::size_t kk = 0; kk < kPad; kk += kStepVnni) {
                const __m512i va = _mm512_loadu_si512(ar + kk);
                s0 = _mm512_dpbusd_epi32(
                    s0, va, _mm512_loadu_si512(b0 + kk));
                s1 = _mm512_dpbusd_epi32(
                    s1, va, _mm512_loadu_si512(b1 + kk));
                s2 = _mm512_dpbusd_epi32(
                    s2, va, _mm512_loadu_si512(b2 + kk));
                s3 = _mm512_dpbusd_epi32(
                    s3, va, _mm512_loadu_si512(b3 + kk));
            }
            c[i * n + j] +=
                _mm512_reduce_add_epi32(s0) - 128 * colSum[j];
            c[i * n + j + 1] +=
                _mm512_reduce_add_epi32(s1) - 128 * colSum[j + 1];
            c[i * n + j + 2] +=
                _mm512_reduce_add_epi32(s2) - 128 * colSum[j + 2];
            c[i * n + j + 3] +=
                _mm512_reduce_add_epi32(s3) - 128 * colSum[j + 3];
        }
        for (; j < n; ++j) {
            const std::int8_t* bc = bt + j * kPad;
            __m512i s = _mm512_setzero_si512();
            for (std::size_t kk = 0; kk < kPad; kk += kStepVnni)
                s = _mm512_dpbusd_epi32(
                    s, _mm512_loadu_si512(ar + kk),
                    _mm512_loadu_si512(bc + kk));
            c[i * n + j] +=
                _mm512_reduce_add_epi32(s) - 128 * colSum[j];
        }
    }
}

// gemv stays on the pre-widened int16 layout; vpdpwssd retires two
// int16 x int16 MACs per int32 lane per instruction across 32 lanes.
// Exact (non-saturating) accumulation, so bit-identical to scalar.
__attribute__((target("avx512f,avx512bw,avx512vnni"))) std::int32_t
dotVnni(const std::int16_t* a, const std::int16_t* b, std::size_t k)
{
    __m512i s = _mm512_setzero_si512();
    std::size_t kk = 0;
    for (; kk + 32 <= k; kk += 32) {
        const __m512i va = _mm512_loadu_si512(a + kk);
        const __m512i vb = _mm512_loadu_si512(b + kk);
        s = _mm512_dpwssd_epi32(s, va, vb);
    }
    std::int32_t acc = _mm512_reduce_add_epi32(s);
    for (; kk < k; ++kk)
        acc += static_cast<std::int32_t>(a[kk]) * b[kk];
    return acc;
}

#pragma GCC diagnostic pop

#endif // AD_NN_INT8_X86

/** Dispatch tiers, worst to best. */
enum class Int8Tier { Scalar = 0, Sse2, Avx2, Avx512Vnni };

const char*
tierName(Int8Tier t)
{
    switch (t) {
      case Int8Tier::Scalar: return "scalar";
      case Int8Tier::Sse2: return "sse2";
      case Int8Tier::Avx2: return "avx2";
      case Int8Tier::Avx512Vnni: return "avx512vnni";
    }
    return "?";
}

bool
parseTierName(const std::string& name, Int8Tier& out)
{
    for (const Int8Tier t :
         {Int8Tier::Scalar, Int8Tier::Sse2, Int8Tier::Avx2,
          Int8Tier::Avx512Vnni}) {
        if (name == tierName(t)) {
            out = t;
            return true;
        }
    }
    return false;
}

bool
tierAvailable(Int8Tier t)
{
#if AD_NN_INT8_X86
    switch (t) {
      case Int8Tier::Scalar: return true;
      case Int8Tier::Sse2: return true; // x86-64 baseline.
      case Int8Tier::Avx2: return haveAvx2();
      case Int8Tier::Avx512Vnni: return haveAvx512Vnni();
    }
    return false;
#else
    return t == Int8Tier::Scalar;
#endif
}

Int8Tier
bestTier()
{
#if AD_NN_INT8_X86
    if (haveAvx512Vnni())
        return Int8Tier::Avx512Vnni;
    if (haveAvx2())
        return Int8Tier::Avx2;
    return Int8Tier::Sse2;
#else
    return Int8Tier::Scalar;
#endif
}

/**
 * Resolve the ambient tier: AD_FORCE_ISA if set (parsed once; fatal
 * on an unknown name or an unavailable tier so a typoed CI matrix
 * entry cannot silently measure the wrong kernel), else the best the
 * CPU supports.
 */
Int8Tier
ambientTier()
{
    static const Int8Tier tier = [] {
        const char* env = std::getenv("AD_FORCE_ISA");
        if (!env || !*env)
            return bestTier();
        Int8Tier forced;
        if (!parseTierName(env, forced))
            fatal("AD_FORCE_ISA=\"", env,
                  "\": unknown int8 ISA tier (expected scalar, sse2, "
                  "avx2 or avx512vnni)");
        if (!tierAvailable(forced))
            fatal("AD_FORCE_ISA=", env,
                  ": tier not available on this host (best is ",
                  tierName(bestTier()), ")");
        return forced;
    }();
    return tier;
}

// setInt8KernelIsa override; -1 means "no override" (ambient rules).
std::atomic<int> forcedTier{-1};

Int8Tier
currentTier()
{
    const int f = forcedTier.load(std::memory_order_relaxed);
    if (f >= 0)
        return static_cast<Int8Tier>(f);
    return ambientTier();
}

RowRangeFn
rowRangeForTier(Int8Tier t)
{
#if AD_NN_INT8_X86
    switch (t) {
      case Int8Tier::Scalar: return rowRangeScalar;
      case Int8Tier::Sse2: return rowRangeSse2;
      default: return rowRangeAvx2;
    }
#else
    (void)t;
    return rowRangeScalar;
#endif
}

DotFn
dotForTier(Int8Tier t)
{
#if AD_NN_INT8_X86
    switch (t) {
      case Int8Tier::Scalar: return dotScalar;
      case Int8Tier::Sse2: return dotSse2;
      case Int8Tier::Avx2: return dotAvx2;
      case Int8Tier::Avx512Vnni: return dotVnni;
    }
    return dotScalar;
#else
    (void)t;
    return dotScalar;
#endif
}

} // namespace

const char*
int8KernelIsa()
{
    return tierName(currentTier());
}

std::vector<std::string>
int8KernelIsaTiers()
{
    std::vector<std::string> tiers;
    for (const Int8Tier t :
         {Int8Tier::Scalar, Int8Tier::Sse2, Int8Tier::Avx2,
          Int8Tier::Avx512Vnni})
        if (tierAvailable(t))
            tiers.emplace_back(tierName(t));
    return tiers;
}

bool
setInt8KernelIsa(const std::string& name)
{
    if (name.empty()) {
        forcedTier.store(-1, std::memory_order_relaxed);
        return true;
    }
    Int8Tier t;
    if (!parseTierName(name, t) || !tierAvailable(t))
        return false;
    forcedTier.store(static_cast<int>(t), std::memory_order_relaxed);
    return true;
}

void
gemmInt8(std::size_t m, std::size_t n, std::size_t k,
         const std::int16_t* a, const std::int8_t* b, std::int32_t* c,
         const KernelContext& ctx)
{
    if (m == 0 || n == 0 || k == 0)
        return;
    const Int8Tier tier = currentTier();

#if AD_NN_INT8_X86
    if (tier == Int8Tier::Avx512Vnni) {
        // VNNI packing: A biased into u8 (pad lanes 128 = biased
        // zero), B transposed s8 (pad 0), plus per-column sums of B
        // for the exact +128 bias correction.
        const std::size_t kPad =
            (k + kStepVnni - 1) / kStepVnni * kStepVnni;
        static thread_local std::vector<std::uint8_t> aPackU8;
        static thread_local std::vector<std::int8_t> btPackS8;
        static thread_local std::vector<std::int32_t> colSum;
        scratchAssign(aPackU8, m * kPad, std::uint8_t{128});
        scratchAssign(btPackS8, n * kPad, std::int8_t{0});
        scratchAssign(colSum, n, std::int32_t{0});
        std::uint8_t* aData = aPackU8.data();
        std::int8_t* btData = btPackS8.data();
        std::int32_t* sums = colSum.data();

        for (std::size_t i = 0; i < m; ++i)
            for (std::size_t kk = 0; kk < k; ++kk)
                aData[i * kPad + kk] = static_cast<std::uint8_t>(
                    a[i * k + kk] + 128);

        kernelParallelFor(
            ctx, 0, n, 64, [&, btData, sums](std::size_t lo,
                                             std::size_t hi) {
                for (std::size_t j = lo; j < hi; ++j) {
                    std::int32_t s = 0;
                    for (std::size_t kk = 0; kk < k; ++kk) {
                        const std::int8_t v = b[kk * n + j];
                        btData[j * kPad + kk] = v;
                        s += v;
                    }
                    sums[j] = s;
                }
            });

        kernelParallelFor(ctx, 0, m, rowGrain,
                          [=](std::size_t lo, std::size_t hi) {
                              rowRangeVnni(lo, hi, n, kPad, aData,
                                           btData, sums, c);
                          });
        return;
    }
#endif // AD_NN_INT8_X86

    const std::size_t kPad = (k + kStep - 1) / kStep * kStep;

    // Both packed operands belong to the calling thread; workers only
    // read them through raw pointers (thread_locals are not captured
    // by lambdas), and kernelParallelFor joins before the next resize.
    static thread_local std::vector<std::int16_t> aPack;
    static thread_local std::vector<std::int16_t> btPack;
    scratchAssign(aPack, m * kPad, std::int16_t{0});
    scratchAssign(btPack, n * kPad, std::int16_t{0});
    std::int16_t* aData = aPack.data();
    std::int16_t* btData = btPack.data();

    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t kk = 0; kk < k; ++kk)
            aData[i * kPad + kk] = a[i * k + kk];

    // Transpose + widen B so every output element is one contiguous
    // dot product; bt rows are disjoint pure writes, so they shard.
    kernelParallelFor(ctx, 0, n, 64,
                      [&, btData](std::size_t lo, std::size_t hi) {
                          for (std::size_t j = lo; j < hi; ++j)
                              for (std::size_t kk = 0; kk < k; ++kk)
                                  btData[j * kPad + kk] = b[kk * n + j];
                      });

    const RowRangeFn rows = rowRangeForTier(tier);
    kernelParallelFor(ctx, 0, m, rowGrain,
                      [=](std::size_t lo, std::size_t hi) {
                          rows(lo, hi, n, kPad, aData, btData, c);
                      });
}

void
gemmInt8Naive(std::size_t m, std::size_t n, std::size_t k,
              const std::int8_t* a, const std::int8_t* b,
              std::int32_t* c)
{
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            std::int32_t acc = c[i * n + j];
            for (std::size_t kk = 0; kk < k; ++kk)
                acc += static_cast<std::int32_t>(a[i * k + kk]) *
                       b[kk * n + j];
            c[i * n + j] = acc;
        }
    }
}

void
gemvInt8(std::size_t m, std::size_t k, const std::int16_t* a,
         const std::int16_t* x, std::int32_t* y, const KernelContext& ctx)
{
    const DotFn dot = dotForTier(currentTier());
    kernelParallelFor(ctx, 0, m, 64,
                      [=](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i)
                              y[i] += dot(a + i * k, x, k);
                      });
}

} // namespace ad::nn
