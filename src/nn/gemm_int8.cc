#include "nn/gemm_int8.hh"

#include <vector>

#if defined(__x86_64__) || defined(__amd64__)
#define AD_NN_INT8_X86 1
#include <immintrin.h>
#endif

namespace ad::nn {

namespace {

// k is padded to a multiple of 16 so both the 8-wide SSE2 and the
// 16-wide AVX2 inner loops run without a scalar tail; padded lanes are
// zero and contribute nothing to the exact integer sums.
constexpr std::size_t kStep = 16;

// Row grain for sharding M across the pool (same rationale as the
// fp32 kernel: chunks never get fewer rows than this).
constexpr std::size_t rowGrain = 8;

/**
 * One row range of C += A * B^T over padded int16 operands: aPack is
 * m x kPad row-major, bt is n x kPad row-major (B transposed), so
 * every output element is one contiguous dot product.
 */
using RowRangeFn = void (*)(std::size_t rowLo, std::size_t rowHi,
                            std::size_t n, std::size_t kPad,
                            const std::int16_t* aPack,
                            const std::int16_t* bt, std::int32_t* c);

/** Dot product over int8-range int16 operands. */
using DotFn = std::int32_t (*)(const std::int16_t* a,
                               const std::int16_t* b, std::size_t k);

void
rowRangeScalar(std::size_t rowLo, std::size_t rowHi, std::size_t n,
               std::size_t kPad, const std::int16_t* aPack,
               const std::int16_t* bt, std::int32_t* c)
{
    for (std::size_t i = rowLo; i < rowHi; ++i) {
        const std::int16_t* ar = aPack + i * kPad;
        for (std::size_t j = 0; j < n; ++j) {
            const std::int16_t* bc = bt + j * kPad;
            std::int32_t acc = 0;
            for (std::size_t kk = 0; kk < kPad; ++kk)
                acc += static_cast<std::int32_t>(ar[kk]) * bc[kk];
            c[i * n + j] += acc;
        }
    }
}

std::int32_t
dotScalar(const std::int16_t* a, const std::int16_t* b, std::size_t k)
{
    std::int32_t acc = 0;
    for (std::size_t kk = 0; kk < k; ++kk)
        acc += static_cast<std::int32_t>(a[kk]) * b[kk];
    return acc;
}

#if AD_NN_INT8_X86

/** Horizontal sum of four int32 lanes (SSE2). */
inline std::int32_t
hsum128(__m128i v)
{
    __m128i hi = _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2));
    v = _mm_add_epi32(v, hi);
    hi = _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1));
    v = _mm_add_epi32(v, hi);
    return _mm_cvtsi128_si32(v);
}

// The SSE2 micro-kernel: 4 output columns share each A load; pmaddwd
// retires 8 widening MACs per instruction (pairs summed into 4 int32
// lanes). int8-range operands cannot overflow the pairwise int32 sum
// (127 * 127 * 2 << 2^31) and the running sums stay exact for any
// practical k, so the result is bit-identical to the scalar kernel.
void
rowRangeSse2(std::size_t rowLo, std::size_t rowHi, std::size_t n,
             std::size_t kPad, const std::int16_t* aPack,
             const std::int16_t* bt, std::int32_t* c)
{
    for (std::size_t i = rowLo; i < rowHi; ++i) {
        const std::int16_t* ar = aPack + i * kPad;
        std::size_t j = 0;
        for (; j + 4 <= n; j += 4) {
            const std::int16_t* b0 = bt + j * kPad;
            const std::int16_t* b1 = b0 + kPad;
            const std::int16_t* b2 = b1 + kPad;
            const std::int16_t* b3 = b2 + kPad;
            __m128i s0 = _mm_setzero_si128();
            __m128i s1 = s0;
            __m128i s2 = s0;
            __m128i s3 = s0;
            for (std::size_t kk = 0; kk < kPad; kk += 8) {
                const __m128i va = _mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(ar + kk));
                s0 = _mm_add_epi32(
                    s0, _mm_madd_epi16(va, _mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(b0 + kk))));
                s1 = _mm_add_epi32(
                    s1, _mm_madd_epi16(va, _mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(b1 + kk))));
                s2 = _mm_add_epi32(
                    s2, _mm_madd_epi16(va, _mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(b2 + kk))));
                s3 = _mm_add_epi32(
                    s3, _mm_madd_epi16(va, _mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(b3 + kk))));
            }
            c[i * n + j] += hsum128(s0);
            c[i * n + j + 1] += hsum128(s1);
            c[i * n + j + 2] += hsum128(s2);
            c[i * n + j + 3] += hsum128(s3);
        }
        for (; j < n; ++j) {
            const std::int16_t* bc = bt + j * kPad;
            std::int32_t acc = 0;
            for (std::size_t kk = 0; kk < kPad; ++kk)
                acc += static_cast<std::int32_t>(ar[kk]) * bc[kk];
            c[i * n + j] += acc;
        }
    }
}

std::int32_t
dotSse2(const std::int16_t* a, const std::int16_t* b, std::size_t k)
{
    __m128i s = _mm_setzero_si128();
    std::size_t kk = 0;
    for (; kk + 8 <= k; kk += 8) {
        const __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(a + kk));
        const __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + kk));
        s = _mm_add_epi32(s, _mm_madd_epi16(va, vb));
    }
    std::int32_t acc = hsum128(s);
    for (; kk < k; ++kk)
        acc += static_cast<std::int32_t>(a[kk]) * b[kk];
    return acc;
}

// AVX2 variants: 16 int16 lanes per pmaddwd. Compiled with a target
// attribute so the binary stays runnable on baseline x86-64; the
// dispatcher below only selects them when the CPU reports AVX2.
__attribute__((target("avx2"))) void
rowRangeAvx2(std::size_t rowLo, std::size_t rowHi, std::size_t n,
             std::size_t kPad, const std::int16_t* aPack,
             const std::int16_t* bt, std::int32_t* c)
{
    for (std::size_t i = rowLo; i < rowHi; ++i) {
        const std::int16_t* ar = aPack + i * kPad;
        std::size_t j = 0;
        for (; j + 4 <= n; j += 4) {
            const std::int16_t* b0 = bt + j * kPad;
            const std::int16_t* b1 = b0 + kPad;
            const std::int16_t* b2 = b1 + kPad;
            const std::int16_t* b3 = b2 + kPad;
            __m256i s0 = _mm256_setzero_si256();
            __m256i s1 = s0;
            __m256i s2 = s0;
            __m256i s3 = s0;
            for (std::size_t kk = 0; kk < kPad; kk += 16) {
                const __m256i va = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(ar + kk));
                s0 = _mm256_add_epi32(
                    s0, _mm256_madd_epi16(va, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(b0 + kk))));
                s1 = _mm256_add_epi32(
                    s1, _mm256_madd_epi16(va, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(b1 + kk))));
                s2 = _mm256_add_epi32(
                    s2, _mm256_madd_epi16(va, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(b2 + kk))));
                s3 = _mm256_add_epi32(
                    s3, _mm256_madd_epi16(va, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(b3 + kk))));
            }
            const __m128i t0 = _mm_add_epi32(
                _mm256_castsi256_si128(s0),
                _mm256_extracti128_si256(s0, 1));
            const __m128i t1 = _mm_add_epi32(
                _mm256_castsi256_si128(s1),
                _mm256_extracti128_si256(s1, 1));
            const __m128i t2 = _mm_add_epi32(
                _mm256_castsi256_si128(s2),
                _mm256_extracti128_si256(s2, 1));
            const __m128i t3 = _mm_add_epi32(
                _mm256_castsi256_si128(s3),
                _mm256_extracti128_si256(s3, 1));
            c[i * n + j] += hsum128(t0);
            c[i * n + j + 1] += hsum128(t1);
            c[i * n + j + 2] += hsum128(t2);
            c[i * n + j + 3] += hsum128(t3);
        }
        for (; j < n; ++j) {
            const std::int16_t* bc = bt + j * kPad;
            std::int32_t acc = 0;
            for (std::size_t kk = 0; kk < kPad; ++kk)
                acc += static_cast<std::int32_t>(ar[kk]) * bc[kk];
            c[i * n + j] += acc;
        }
    }
}

__attribute__((target("avx2"))) std::int32_t
dotAvx2(const std::int16_t* a, const std::int16_t* b, std::size_t k)
{
    __m256i s = _mm256_setzero_si256();
    std::size_t kk = 0;
    for (; kk + 16 <= k; kk += 16) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + kk));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b + kk));
        s = _mm256_add_epi32(s, _mm256_madd_epi16(va, vb));
    }
    std::int32_t acc = hsum128(_mm_add_epi32(
        _mm256_castsi256_si128(s), _mm256_extracti128_si256(s, 1)));
    for (; kk < k; ++kk)
        acc += static_cast<std::int32_t>(a[kk]) * b[kk];
    return acc;
}

bool
haveAvx2()
{
    static const bool have = __builtin_cpu_supports("avx2");
    return have;
}

#endif // AD_NN_INT8_X86

RowRangeFn
rowRangeKernel()
{
#if AD_NN_INT8_X86
    return haveAvx2() ? rowRangeAvx2 : rowRangeSse2;
#else
    return rowRangeScalar;
#endif
}

DotFn
dotKernel()
{
#if AD_NN_INT8_X86
    return haveAvx2() ? dotAvx2 : dotSse2;
#else
    return dotScalar;
#endif
}

} // namespace

const char*
int8KernelIsa()
{
#if AD_NN_INT8_X86
    return haveAvx2() ? "avx2" : "sse2";
#else
    return "scalar";
#endif
}

void
gemmInt8(std::size_t m, std::size_t n, std::size_t k,
         const std::int16_t* a, const std::int8_t* b, std::int32_t* c,
         const KernelContext& ctx)
{
    if (m == 0 || n == 0 || k == 0)
        return;
    const std::size_t kPad = (k + kStep - 1) / kStep * kStep;

    // Both packed operands belong to the calling thread; workers only
    // read them through raw pointers (thread_locals are not captured
    // by lambdas), and kernelParallelFor joins before the next resize.
    static thread_local std::vector<std::int16_t> aPack;
    static thread_local std::vector<std::int16_t> btPack;
    aPack.assign(m * kPad, 0);
    btPack.assign(n * kPad, 0);
    std::int16_t* aData = aPack.data();
    std::int16_t* btData = btPack.data();

    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t kk = 0; kk < k; ++kk)
            aData[i * kPad + kk] = a[i * k + kk];

    // Transpose + widen B so every output element is one contiguous
    // dot product; bt rows are disjoint pure writes, so they shard.
    kernelParallelFor(ctx, 0, n, 64,
                      [&, btData](std::size_t lo, std::size_t hi) {
                          for (std::size_t j = lo; j < hi; ++j)
                              for (std::size_t kk = 0; kk < k; ++kk)
                                  btData[j * kPad + kk] = b[kk * n + j];
                      });

    const RowRangeFn rows = rowRangeKernel();
    kernelParallelFor(ctx, 0, m, rowGrain,
                      [=](std::size_t lo, std::size_t hi) {
                          rows(lo, hi, n, kPad, aData, btData, c);
                      });
}

void
gemmInt8Naive(std::size_t m, std::size_t n, std::size_t k,
              const std::int8_t* a, const std::int8_t* b,
              std::int32_t* c)
{
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            std::int32_t acc = c[i * n + j];
            for (std::size_t kk = 0; kk < k; ++kk)
                acc += static_cast<std::int32_t>(a[i * k + kk]) *
                       b[kk * n + j];
            c[i * n + j] = acc;
        }
    }
}

void
gemvInt8(std::size_t m, std::size_t k, const std::int16_t* a,
         const std::int16_t* x, std::int32_t* y, const KernelContext& ctx)
{
    const DotFn dot = dotKernel();
    kernelParallelFor(ctx, 0, m, 64,
                      [=](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i)
                              y[i] += dot(a + i * k, x, k);
                      });
}

} // namespace ad::nn
