#include "nn/network.hh"

#include <iomanip>
#include <sstream>

namespace ad::nn {

std::uint64_t
NetworkProfile::totalFlops() const
{
    std::uint64_t sum = 0;
    for (const auto& l : layers)
        sum += l.flops;
    return sum;
}

std::uint64_t
NetworkProfile::totalWeightBytes() const
{
    std::uint64_t sum = 0;
    for (const auto& l : layers)
        sum += l.weightBytes;
    return sum;
}

std::uint64_t
NetworkProfile::totalActivationBytes() const
{
    std::uint64_t sum = 0;
    for (const auto& l : layers)
        sum += l.outputBytes;
    return sum;
}

std::uint64_t
NetworkProfile::flopsOfKind(LayerKind kind) const
{
    std::uint64_t sum = 0;
    for (const auto& l : layers)
        if (l.kind == kind)
            sum += l.flops;
    return sum;
}

std::uint64_t
NetworkProfile::weightBytesOfKind(LayerKind kind) const
{
    std::uint64_t sum = 0;
    for (const auto& l : layers)
        if (l.kind == kind)
            sum += l.weightBytes;
    return sum;
}

std::string
NetworkProfile::toString() const
{
    std::ostringstream oss;
    oss << name << " (input " << inputShape.c << "x" << inputShape.h << "x"
        << inputShape.w << ")\n";
    for (const auto& l : layers) {
        oss << "  " << std::left << std::setw(16) << l.name
            << std::setw(6) << layerKindName(l.kind)
            << " flops=" << l.flops
            << " weights=" << l.weightBytes << "B"
            << " out=" << l.outputBytes << "B\n";
    }
    oss << "  total: " << totalFlops() / 1e9 << " GFLOP, "
        << totalWeightBytes() / 1e6 << " MB weights";
    return oss.str();
}

Tensor
Network::forward(const Tensor& input) const
{
    return forward(input, KernelContext::serial());
}

Tensor
Network::forward(const Tensor& input, const KernelContext& ctx) const
{
    Tensor t = input;
    for (const auto& layer : layers_)
        t = layer->forward(t, ctx);
    return t;
}

Shape
Network::outputShape(const Shape& input) const
{
    Shape s = input;
    for (const auto& layer : layers_)
        s = layer->outputShape(s);
    return s;
}

NetworkProfile
Network::profile(const Shape& input) const
{
    NetworkProfile p;
    p.name = name_;
    p.inputShape = input;
    Shape s = input;
    for (const auto& layer : layers_) {
        p.layers.push_back(layer->profile(s));
        s = layer->outputShape(s);
    }
    return p;
}

} // namespace ad::nn
