#include "nn/network.hh"

#include <iomanip>
#include <sstream>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace ad::nn {

const char*
precisionName(Precision p)
{
    switch (p) {
      case Precision::Fp32: return "fp32";
      case Precision::Int8: return "int8";
    }
    return "?";
}

Precision
parsePrecision(const std::string& text)
{
    if (text == "fp32")
        return Precision::Fp32;
    if (text == "int8")
        return Precision::Int8;
    fatal("unknown precision \"", text, "\" (expected fp32 or int8)");
}

std::uint64_t
NetworkProfile::totalFlops() const
{
    std::uint64_t sum = 0;
    for (const auto& l : layers)
        sum += l.flops;
    return sum;
}

std::uint64_t
NetworkProfile::totalWeightBytes() const
{
    std::uint64_t sum = 0;
    for (const auto& l : layers)
        sum += l.weightBytes;
    return sum;
}

std::uint64_t
NetworkProfile::totalActivationBytes() const
{
    std::uint64_t sum = 0;
    for (const auto& l : layers)
        sum += l.outputBytes;
    return sum;
}

std::uint64_t
NetworkProfile::flopsOfKind(LayerKind kind) const
{
    std::uint64_t sum = 0;
    for (const auto& l : layers)
        if (l.kind == kind)
            sum += l.flops;
    return sum;
}

std::uint64_t
NetworkProfile::weightBytesOfKind(LayerKind kind) const
{
    std::uint64_t sum = 0;
    for (const auto& l : layers)
        if (l.kind == kind)
            sum += l.weightBytes;
    return sum;
}

std::string
NetworkProfile::toString() const
{
    std::ostringstream oss;
    oss << name << " (input " << inputShape.c << "x" << inputShape.h << "x"
        << inputShape.w << ")\n";
    for (const auto& l : layers) {
        oss << "  " << std::left << std::setw(16) << l.name
            << std::setw(6) << layerKindName(l.kind)
            << " flops=" << l.flops
            << " weights=" << l.weightBytes << "B"
            << " out=" << l.outputBytes << "B\n";
    }
    oss << "  total: " << totalFlops() / 1e9 << " GFLOP, "
        << totalWeightBytes() / 1e6 << " MB weights";
    return oss.str();
}

void
Network::replaceLayer(std::size_t i, std::unique_ptr<Layer> layer)
{
    if (i >= layers_.size())
        fatal("Network ", name_, ": replaceLayer index ", i,
              " out of range (", layers_.size(), " layers)");
    if (!layer)
        fatal("Network ", name_, ": replaceLayer with null layer");
    layers_[i] = std::move(layer);
    plan_.reset();
}

Layer&
Network::mutableLayer(std::size_t i)
{
    if (i >= layers_.size())
        fatal("Network ", name_, ": mutableLayer index ", i,
              " out of range (", layers_.size(), " layers)");
    return *layers_[i];
}

void
Network::removeLayer(std::size_t i)
{
    if (i >= layers_.size())
        fatal("Network ", name_, ": removeLayer index ", i,
              " out of range (", layers_.size(), " layers)");
    layers_.erase(layers_.begin() +
                  static_cast<std::ptrdiff_t>(i));
    plan_.reset();
}

void
Network::plan(const Shape& input)
{
    if (layers_.empty())
        fatal("Network ", name_, ": plan() on an empty network");
    auto p = std::make_unique<NetworkPlan>();
    p->inputShape = input;
    Shape s = input;
    for (const auto& layer : layers_) {
        s = layer->outputShape(s);
        p->shapes.push_back(s);
    }

    // Intermediates: outputs of layers 0..n-2. Each is written at step
    // i and consumed at step i+1 (sequential chain), so its live
    // interval is [i, i+1]. The final layer writes the dedicated
    // output tensor instead.
    const std::size_t n = layers_.size();
    std::vector<ValueInterval> values;
    for (std::size_t i = 0; i + 1 < n; ++i)
        values.push_back({i, i + 1,
                          p->shapes[i].elements() * sizeof(float)});
    const ArenaPlan arena = planArena(values);
    p->offset.resize(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        p->offset[i] = arena.offset[i] / sizeof(float);
    p->arenaBytes = arena.totalBytes;
    p->arenaValues = values.size();
    p->arena.assign(arena.totalBytes / sizeof(float), 0.0f);
    const Shape& out = p->shapes.back();
    p->output = Tensor(out.c, out.h, out.w);
    plan_ = std::move(p);

    // Warm-up pass: drives every layer's scratch vectors to their
    // high-water capacity so steady-state frames allocate nothing.
    Tensor warm(input.c, input.h, input.w);
    (void)forwardArena(warm, KernelContext::serial());

    if (obs::metricsEnabled()) {
        auto& reg = obs::metrics();
        reg.gauge("nn." + name_ + ".arena_bytes")
            .set(static_cast<double>(plan_->arenaBytes));
        reg.gauge("nn." + name_ + ".arena_values")
            .set(static_cast<double>(plan_->arenaValues));
    }
}

std::size_t
Network::arenaBytes() const
{
    return plan_ ? plan_->arenaBytes : 0;
}

const Tensor&
Network::forwardArena(const Tensor& input, const KernelContext& ctx)
{
    if (!plan_)
        fatal("Network ", name_,
              ": forwardArena without a plan (call plan() first)");
    NetworkPlan& p = *plan_;
    if (input.channels() != p.inputShape.c ||
        input.height() != p.inputShape.h ||
        input.width() != p.inputShape.w)
        fatal("Network ", name_, ": forwardArena input ",
              input.channels(), "x", input.height(), "x",
              input.width(), " does not match planned shape ",
              p.inputShape.c, "x", p.inputShape.h, "x",
              p.inputShape.w);
    const std::size_t n = layers_.size();
    const float* cur = input.data();
    Shape curShape = p.inputShape;
    const bool spans = obs::tracer().nnLayerSpans();
    for (std::size_t i = 0; i < n; ++i) {
        float* out = (i + 1 == n) ? p.output.data()
                                  : p.arena.data() + p.offset[i];
        if (spans) {
            obs::TraceSpan span(obs::tracer(),
                                name_ + "/" + layers_[i]->name(),
                                "nn");
            layers_[i]->forwardInto(cur, curShape, out, p.scratch,
                                    ctx);
        } else {
            layers_[i]->forwardInto(cur, curShape, out, p.scratch,
                                    ctx);
        }
        cur = out;
        curShape = p.shapes[i];
    }
    return p.output;
}

Tensor
Network::forward(const Tensor& input) const
{
    return forward(input, KernelContext::serial());
}

Tensor
Network::forward(const Tensor& input, const KernelContext& ctx) const
{
    Tensor t = input;
    // Per-layer spans are opt-in (obs.trace_nn): they multiply the
    // event count by the layer count, so the common tracing path pays
    // only this one predictable branch.
    if (obs::tracer().nnLayerSpans()) {
        for (const auto& layer : layers_) {
            obs::TraceSpan span(obs::tracer(),
                               name_ + "/" + layer->name(), "nn");
            t = layer->forward(t, ctx);
        }
        return t;
    }
    for (const auto& layer : layers_)
        t = layer->forward(t, ctx);
    return t;
}

std::vector<Tensor>
Network::forwardBatch(const std::vector<Tensor>& inputs,
                      const KernelContext& ctx) const
{
    std::vector<Tensor> outputs(inputs.size());
    if (inputs.empty())
        return outputs;
    if (obs::metricsEnabled()) {
        auto& reg = obs::metrics();
        reg.counter("nn." + name_ + ".batch_calls").add();
        reg.counter("nn." + name_ + ".batch_items")
            .add(inputs.size());
    }
    if (!ctx.parallel() || inputs.size() == 1) {
        for (std::size_t i = 0; i < inputs.size(); ++i)
            outputs[i] = forward(inputs[i], ctx);
        return outputs;
    }
    // Batch-level parallelism: one pool fan-out for the whole batch
    // beats one per layer, and each item runs the serial kernels,
    // which the determinism contract makes bitwise-identical to any
    // other execution of the same input.
    kernelParallelFor(ctx, 0, inputs.size(), 1,
                      [&](std::size_t b0, std::size_t b1) {
                          for (std::size_t b = b0; b < b1; ++b)
                              outputs[b] = forward(
                                  inputs[b],
                                  KernelContext::serial());
                      });
    return outputs;
}

void
profileToMetrics(const NetworkProfile& profile, obs::MetricRegistry& reg)
{
    const std::string base = "nn." + profile.name;
    reg.gauge(base + ".total_flops")
        .set(static_cast<double>(profile.totalFlops()));
    reg.gauge(base + ".total_weight_bytes")
        .set(static_cast<double>(profile.totalWeightBytes()));
    reg.gauge(base + ".total_activation_bytes")
        .set(static_cast<double>(profile.totalActivationBytes()));
    for (const auto& l : profile.layers) {
        const std::string layerBase = base + ".layer." + l.name;
        reg.gauge(layerBase + ".flops")
            .set(static_cast<double>(l.flops));
        reg.gauge(layerBase + ".weight_bytes")
            .set(static_cast<double>(l.weightBytes));
        reg.gauge(layerBase + ".output_bytes")
            .set(static_cast<double>(l.outputBytes));
    }
}

Shape
Network::outputShape(const Shape& input) const
{
    Shape s = input;
    for (const auto& layer : layers_)
        s = layer->outputShape(s);
    return s;
}

NetworkProfile
Network::profile(const Shape& input) const
{
    NetworkProfile p;
    p.name = name_;
    p.inputShape = input;
    Shape s = input;
    for (const auto& layer : layers_) {
        p.layers.push_back(layer->profile(s));
        s = layer->outputShape(s);
    }
    return p;
}

} // namespace ad::nn
