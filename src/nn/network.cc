#include "nn/network.hh"

#include <iomanip>
#include <sstream>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace ad::nn {

const char*
precisionName(Precision p)
{
    switch (p) {
      case Precision::Fp32: return "fp32";
      case Precision::Int8: return "int8";
    }
    return "?";
}

Precision
parsePrecision(const std::string& text)
{
    if (text == "fp32")
        return Precision::Fp32;
    if (text == "int8")
        return Precision::Int8;
    fatal("unknown precision \"", text, "\" (expected fp32 or int8)");
}

std::uint64_t
NetworkProfile::totalFlops() const
{
    std::uint64_t sum = 0;
    for (const auto& l : layers)
        sum += l.flops;
    return sum;
}

std::uint64_t
NetworkProfile::totalWeightBytes() const
{
    std::uint64_t sum = 0;
    for (const auto& l : layers)
        sum += l.weightBytes;
    return sum;
}

std::uint64_t
NetworkProfile::totalActivationBytes() const
{
    std::uint64_t sum = 0;
    for (const auto& l : layers)
        sum += l.outputBytes;
    return sum;
}

std::uint64_t
NetworkProfile::flopsOfKind(LayerKind kind) const
{
    std::uint64_t sum = 0;
    for (const auto& l : layers)
        if (l.kind == kind)
            sum += l.flops;
    return sum;
}

std::uint64_t
NetworkProfile::weightBytesOfKind(LayerKind kind) const
{
    std::uint64_t sum = 0;
    for (const auto& l : layers)
        if (l.kind == kind)
            sum += l.weightBytes;
    return sum;
}

std::string
NetworkProfile::toString() const
{
    std::ostringstream oss;
    oss << name << " (input " << inputShape.c << "x" << inputShape.h << "x"
        << inputShape.w << ")\n";
    for (const auto& l : layers) {
        oss << "  " << std::left << std::setw(16) << l.name
            << std::setw(6) << layerKindName(l.kind)
            << " flops=" << l.flops
            << " weights=" << l.weightBytes << "B"
            << " out=" << l.outputBytes << "B\n";
    }
    oss << "  total: " << totalFlops() / 1e9 << " GFLOP, "
        << totalWeightBytes() / 1e6 << " MB weights";
    return oss.str();
}

void
Network::replaceLayer(std::size_t i, std::unique_ptr<Layer> layer)
{
    if (i >= layers_.size())
        fatal("Network ", name_, ": replaceLayer index ", i,
              " out of range (", layers_.size(), " layers)");
    if (!layer)
        fatal("Network ", name_, ": replaceLayer with null layer");
    layers_[i] = std::move(layer);
}

Tensor
Network::forward(const Tensor& input) const
{
    return forward(input, KernelContext::serial());
}

Tensor
Network::forward(const Tensor& input, const KernelContext& ctx) const
{
    Tensor t = input;
    // Per-layer spans are opt-in (obs.trace_nn): they multiply the
    // event count by the layer count, so the common tracing path pays
    // only this one predictable branch.
    if (obs::tracer().nnLayerSpans()) {
        for (const auto& layer : layers_) {
            obs::TraceSpan span(obs::tracer(),
                               name_ + "/" + layer->name(), "nn");
            t = layer->forward(t, ctx);
        }
        return t;
    }
    for (const auto& layer : layers_)
        t = layer->forward(t, ctx);
    return t;
}

std::vector<Tensor>
Network::forwardBatch(const std::vector<Tensor>& inputs,
                      const KernelContext& ctx) const
{
    std::vector<Tensor> outputs(inputs.size());
    if (inputs.empty())
        return outputs;
    if (obs::metricsEnabled()) {
        auto& reg = obs::metrics();
        reg.counter("nn." + name_ + ".batch_calls").add();
        reg.counter("nn." + name_ + ".batch_items")
            .add(inputs.size());
    }
    if (!ctx.parallel() || inputs.size() == 1) {
        for (std::size_t i = 0; i < inputs.size(); ++i)
            outputs[i] = forward(inputs[i], ctx);
        return outputs;
    }
    // Batch-level parallelism: one pool fan-out for the whole batch
    // beats one per layer, and each item runs the serial kernels,
    // which the determinism contract makes bitwise-identical to any
    // other execution of the same input.
    kernelParallelFor(ctx, 0, inputs.size(), 1,
                      [&](std::size_t b0, std::size_t b1) {
                          for (std::size_t b = b0; b < b1; ++b)
                              outputs[b] = forward(
                                  inputs[b],
                                  KernelContext::serial());
                      });
    return outputs;
}

void
profileToMetrics(const NetworkProfile& profile, obs::MetricRegistry& reg)
{
    const std::string base = "nn." + profile.name;
    reg.gauge(base + ".total_flops")
        .set(static_cast<double>(profile.totalFlops()));
    reg.gauge(base + ".total_weight_bytes")
        .set(static_cast<double>(profile.totalWeightBytes()));
    reg.gauge(base + ".total_activation_bytes")
        .set(static_cast<double>(profile.totalActivationBytes()));
    for (const auto& l : profile.layers) {
        const std::string layerBase = base + ".layer." + l.name;
        reg.gauge(layerBase + ".flops")
            .set(static_cast<double>(l.flops));
        reg.gauge(layerBase + ".weight_bytes")
            .set(static_cast<double>(l.weightBytes));
        reg.gauge(layerBase + ".output_bytes")
            .set(static_cast<double>(l.outputBytes));
    }
}

Shape
Network::outputShape(const Shape& input) const
{
    Shape s = input;
    for (const auto& layer : layers_)
        s = layer->outputShape(s);
    return s;
}

NetworkProfile
Network::profile(const Shape& input) const
{
    NetworkProfile p;
    p.name = name_;
    p.inputShape = input;
    Shape s = input;
    for (const auto& layer : layers_) {
        p.layers.push_back(layer->profile(s));
        s = layer->outputShape(s);
    }
    return p;
}

} // namespace ad::nn
