/**
 * @file
 * Sequential network container and executor for the DNN inference
 * engine. Besides forward execution, the network produces a
 * NetworkProfile -- the per-layer FLOP/byte inventory that the
 * accelerator platform models (GPU roofline, FPGA layer-by-layer
 * schedule, CNN/FC ASICs) consume to predict latency and power.
 */

#ifndef AD_NN_NETWORK_HH
#define AD_NN_NETWORK_HH

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.hh"
#include "nn/planner.hh"

namespace ad::obs {
class MetricRegistry;
}

namespace ad::nn {

/**
 * Numeric mode of a network or pipeline stage. Fp32 is the seed
 * behavior; Int8 means conv/FC layers were swapped for their quantized
 * counterparts (quant.hh).
 */
enum class Precision { Fp32, Int8 };

/** Short lowercase name ("fp32" / "int8"). */
const char* precisionName(Precision p);

/**
 * Parse a precision knob value ("fp32" / "int8"); fatal() on anything
 * else so a typoed config fails loudly instead of silently running the
 * wrong numeric mode.
 */
Precision parsePrecision(const std::string& text);

/** Aggregated compute/memory inventory of a whole network. */
struct NetworkProfile
{
    std::string name;
    Shape inputShape;
    std::vector<LayerProfile> layers;

    /** Total FLOPs over all layers. */
    std::uint64_t totalFlops() const;
    /** Total parameter bytes. */
    std::uint64_t totalWeightBytes() const;
    /** Total activation bytes written. */
    std::uint64_t totalActivationBytes() const;
    /** FLOPs restricted to one layer kind. */
    std::uint64_t flopsOfKind(LayerKind kind) const;
    /** Weight bytes restricted to one layer kind. */
    std::uint64_t weightBytesOfKind(LayerKind kind) const;
    /** Multi-line human-readable table. */
    std::string toString() const;
};

/**
 * A feed-forward network: an owned sequence of layers applied in order.
 * The YOLO-style detector and GOTURN-style tracker backbones are both
 * expressible as sequences (the tracker's two branches share one
 * backbone applied twice; see models.hh).
 */
class Network
{
  public:
    /** @param name diagnostic name ("det-yolo", "tra-goturn-conv", ...). */
    explicit Network(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    /** Append a layer; returns a reference for weight construction. */
    template <typename L, typename... Args>
    L&
    add(Args&&... args)
    {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L& ref = *layer;
        layers_.push_back(std::move(layer));
        return ref;
    }

    std::size_t layerCount() const { return layers_.size(); }
    const Layer& layer(std::size_t i) const { return *layers_[i]; }

    /**
     * Mutable layer access for lowering passes (nn/fusion.hh) that
     * rewrite layers in place (fused activations, direct-conv marks).
     */
    Layer& mutableLayer(std::size_t i);

    /**
     * Swap layer i for a replacement with identical input/output
     * shapes -- the hook quantizeNetwork (quant.hh) uses to lower
     * conv/FC layers to int8 in place. fatal() on out-of-range i or a
     * null layer. Drops any existing plan (offsets would be stale).
     */
    void replaceLayer(std::size_t i, std::unique_ptr<Layer> layer);

    /**
     * Remove layer i -- the hook the fusion pass uses to delete an
     * Activation folded into its predecessor. fatal() on out-of-range
     * i. Drops any existing plan.
     */
    void removeLayer(std::size_t i);

    /** Numeric mode this network currently runs in. */
    Precision precision() const { return precision_; }
    /** Record the numeric mode (set by quantizeNetwork). */
    void setPrecision(Precision p) { precision_ = p; }

    /** Run all layers in order, serially. */
    Tensor forward(const Tensor& input) const;

    /**
     * Run all layers in order under a kernel context; parallel
     * contexts shard the conv/FC kernels over the pool with
     * bitwise-identical results to the serial path.
     */
    Tensor forward(const Tensor& input, const KernelContext& ctx) const;

    /**
     * Run a batch of independent inputs through the network -- the
     * cross-stream batched path of the serving layer (ad_serve).
     *
     * Under a parallel context the batch items are sharded across
     * the pool and each item executes with serial kernels, so the
     * whole batch costs one parallelFor instead of one per layer.
     * By the kernel determinism contract, outputs[i] is
     * bitwise-identical to forward(inputs[i]) for every batch size
     * and thread count -- batching is a throughput decision, never
     * a numerics decision.
     */
    std::vector<Tensor> forwardBatch(const std::vector<Tensor>& inputs,
                                     const KernelContext& ctx) const;

    /** Static shape propagation through all layers. */
    Shape outputShape(const Shape& input) const;

    /** Per-layer compute/memory inventory for the given input shape. */
    NetworkProfile profile(const Shape& input) const;

    /**
     * The plan/arena phase (the `nn.arena` knob): propagate shapes for
     * `input`, place every intermediate tensor into one reused arena
     * via the liveness planner (nn/planner.hh), preallocate the output
     * tensor and run one warm-up forward so all scratch buffers reach
     * their high-water marks. After plan(), forwardArena() performs
     * zero heap allocations per frame. Publishes
     * "nn.<name>.arena_bytes" / "nn.<name>.arena_values" gauges when
     * metrics are enabled. Call after any structural lowering
     * (quantizeNetwork, lowerNetwork); structural edits drop the plan.
     */
    void plan(const Shape& input);

    /** True once plan() has run (and no structural edit followed). */
    bool planned() const { return plan_ != nullptr; }

    /** Drop the plan, restoring the allocating forward-only state. */
    void unplan() { plan_.reset(); }

    /** Peak arena bytes of the current plan (0 when unplanned). */
    std::size_t arenaBytes() const;

    /**
     * Planned forward pass: run all layers through their forwardInto
     * path with intermediates in the arena; returns a reference to the
     * plan's output tensor (valid until the next forwardArena or
     * plan/unplan call -- copy it before running the network again on
     * data you still need). Bitwise-identical to forward() at any
     * thread count: both paths execute the same layer code on the same
     * values. fatal() when no plan exists or the input shape differs
     * from the planned one. Not reentrant: one forwardArena per
     * network at a time (the pipeline's engines each own their
     * networks, so this is the existing calling discipline).
     */
    const Tensor& forwardArena(const Tensor& input,
                               const KernelContext& ctx);

    /** Serial-context convenience overload. */
    const Tensor&
    forwardArena(const Tensor& input)
    {
        return forwardArena(input, KernelContext::serial());
    }

  private:
    std::string name_;
    std::vector<std::unique_ptr<Layer>> layers_;
    Precision precision_ = Precision::Fp32;
    std::unique_ptr<NetworkPlan> plan_;
};

/**
 * Publish a network's per-layer FLOP/byte inventory as metric gauges
 * ("nn.<net>.layer.<name>.flops", ... plus totals) so a --metrics dump
 * carries the compute footprint next to the measured latencies.
 */
void profileToMetrics(const NetworkProfile& profile,
                      obs::MetricRegistry& reg);

} // namespace ad::nn

#endif // AD_NN_NETWORK_HH
