#include "nn/quant.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "nn/gemm_int8.hh"

namespace ad::nn {

namespace {

constexpr int kQmax = 127;

/** clamp(round(x / scale)) into int8 range, stored as T. */
template <typename T>
void
quantizeTo(const float* x, std::size_t n, float scale, T* q)
{
    const float inv = 1.0f / scale;
    for (std::size_t i = 0; i < n; ++i) {
        const long v = std::lround(x[i] * inv);
        q[i] = static_cast<T>(
            std::clamp<long>(v, -kQmax, kQmax));
    }
}

/**
 * int8 twin of the fp32 im2col in layers.cc: unfold kernel-sized
 * patches of a quantized CHW input into an (inC * k * k) x (outH *
 * outW) matrix. Rows are independent pure writes and shard across the
 * kernel context; padding contributes exact zeros.
 */
void
im2colInt8(const std::int8_t* in, int inC, int inH, int inW, int kernel,
           int stride, int pad, int outH, int outW,
           std::vector<std::int8_t>& cols, const KernelContext& ctx)
{
    const std::size_t rows =
        static_cast<std::size_t>(inC) * kernel * kernel;
    scratchAssign(cols, rows * outH * outW, std::int8_t{0});
    std::int8_t* colsData = cols.data();
    kernelParallelFor(ctx, 0, rows, 4, [&, colsData](std::size_t lo,
                                                     std::size_t hi) {
        for (std::size_t rowIdx = lo; rowIdx < hi; ++rowIdx) {
            const int kx = static_cast<int>(rowIdx % kernel);
            const int ky = static_cast<int>(rowIdx / kernel % kernel);
            const int c = static_cast<int>(rowIdx / kernel / kernel);
            const std::int8_t* plane =
                in + static_cast<std::size_t>(c) * inH * inW;
            std::int8_t* dst = colsData +
                rowIdx * static_cast<std::size_t>(outH) * outW;
            for (int oy = 0; oy < outH; ++oy) {
                const int iy = oy * stride - pad + ky;
                if (iy < 0 || iy >= inH) {
                    dst += outW;
                    continue;
                }
                const std::int8_t* srcRow = plane +
                    static_cast<std::size_t>(iy) * inW;
                for (int ox = 0; ox < outW; ++ox) {
                    const int ix = ox * stride - pad + kx;
                    *dst++ = (ix < 0 || ix >= inW)
                                 ? static_cast<std::int8_t>(0)
                                 : srcRow[ix];
                }
            }
        }
    });
}

/** absmax over a span (0 for empty). */
float
absMaxOf(const float* x, std::size_t n)
{
    float m = 0.0f;
    for (std::size_t i = 0; i < n; ++i)
        m = std::max(m, std::fabs(x[i]));
    return m;
}

/**
 * Quantize one weight row symmetrically: derive the per-channel scale
 * from the row's absmax and store the int8-range values pre-widened to
 * int16 (the form gemmInt8/gemvInt8 consume).
 */
float
quantizeWeightRow(const float* w, std::size_t n, std::int16_t* q)
{
    const float scale = quantizeScale(absMaxOf(w, n));
    quantizeTo(w, n, scale, q);
    return scale;
}

} // namespace

AbsHistogram::AbsHistogram(int bins)
{
    if (bins <= 0)
        fatal("AbsHistogram: bin count must be positive, got ", bins);
    bins_.assign(static_cast<std::size_t>(bins), 0);
}

void
AbsHistogram::grow(float needed)
{
    while (range_ < needed) {
        range_ *= 2.0f;
        // Merge adjacent bin pairs into the lower half so recorded
        // mass keeps its magnitude; the upper half opens up for the
        // new range.
        const std::size_t half = bins_.size() / 2;
        for (std::size_t i = 0; i < half; ++i)
            bins_[i] = bins_[2 * i] + bins_[2 * i + 1];
        std::fill(bins_.begin() + static_cast<std::ptrdiff_t>(half),
                  bins_.end(), std::uint64_t{0});
    }
}

void
AbsHistogram::add(const float* data, std::size_t n)
{
    const auto bins = static_cast<float>(bins_.size());
    for (std::size_t i = 0; i < n; ++i) {
        const float a = std::fabs(data[i]);
        if (a > range_)
            grow(a);
        const auto idx = std::min(
            bins_.size() - 1,
            static_cast<std::size_t>(a / range_ * bins));
        ++bins_[idx];
        absMax_ = std::max(absMax_, a);
    }
    count_ += n;
}

float
AbsHistogram::percentileAbs(float fraction) const
{
    if (count_ == 0 || fraction >= 1.0f)
        return absMax_;
    // Half-sample tolerance: counts are integers, so a target within
    // half a sample of a bin's cumulative mass counts as covered
    // (otherwise float fraction representation error can push the
    // bound into the next occupied bin).
    const double target = static_cast<double>(fraction) *
                              static_cast<double>(count_) -
                          0.5;
    double cumulative = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        cumulative += static_cast<double>(bins_[i]);
        if (cumulative >= target) {
            const float edge = range_ *
                static_cast<float>(i + 1) /
                static_cast<float>(bins_.size());
            // The bin edge can overshoot the true maximum; never hand
            // out more range than was actually observed.
            return std::min(edge, absMax_);
        }
    }
    return absMax_;
}

float
quantizeScale(float absMax)
{
    return absMax > 0.0f ? absMax / static_cast<float>(kQmax) : 1.0f;
}

void
quantize(const float* x, std::size_t n, float scale, std::int8_t* q)
{
    quantizeTo(x, n, scale, q);
}

void
dequantize(const std::int8_t* q, std::size_t n, float scale, float* x)
{
    for (std::size_t i = 0; i < n; ++i)
        x[i] = static_cast<float>(q[i]) * scale;
}

void
requantize(const std::int32_t* acc, std::size_t n, float accScale,
           float outScale, std::int8_t* q)
{
    const float rescale = accScale / outScale;
    for (std::size_t i = 0; i < n; ++i) {
        const long v =
            std::lround(static_cast<float>(acc[i]) * rescale);
        q[i] = static_cast<std::int8_t>(
            std::clamp<long>(v, -kQmax, kQmax));
    }
}

QuantConv2D::QuantConv2D(const Conv2D& conv, float inputScale)
    : Layer(conv.name()), inChannels_(conv.inChannels()),
      outChannels_(conv.outChannels()), kernel_(conv.kernel()),
      stride_(conv.stride()), pad_(conv.pad()), inputScale_(inputScale),
      bias_(conv.bias())
{
    if (inputScale <= 0.0f)
        fatal("QuantConv2D ", name(), ": input scale must be positive");
    const std::size_t filterSize =
        static_cast<std::size_t>(inChannels_) * kernel_ * kernel_;
    weights_.assign(static_cast<std::size_t>(outChannels_) * filterSize,
                    0);
    weightScale_.assign(static_cast<std::size_t>(outChannels_), 1.0f);
    for (int oc = 0; oc < outChannels_; ++oc)
        weightScale_[static_cast<std::size_t>(oc)] = quantizeWeightRow(
            conv.weights().data() + static_cast<std::size_t>(oc) *
                filterSize,
            filterSize,
            weights_.data() + static_cast<std::size_t>(oc) * filterSize);
}

Shape
QuantConv2D::outputShape(const Shape& in) const
{
    if (in.c != inChannels_)
        panic("QuantConv2D ", name(), ": expected ", inChannels_,
              " input channels, got ", in.c);
    const int oh = (in.h + 2 * pad_ - kernel_) / stride_ + 1;
    const int ow = (in.w + 2 * pad_ - kernel_) / stride_ + 1;
    if (oh <= 0 || ow <= 0)
        panic("QuantConv2D ", name(), ": input ", in.h, "x", in.w,
              " too small for kernel");
    return {outChannels_, oh, ow};
}

Tensor
QuantConv2D::forwardImpl(const Tensor& in, const KernelContext& ctx) const
{
    const Shape out = outputShape({in.channels(), in.height(),
                                   in.width()});
    Tensor result(out.c, out.h, out.w);
    forwardInto(in.data(), {in.channels(), in.height(), in.width()},
                result.data(), threadScratch(), ctx);
    return result;
}

void
QuantConv2D::forwardInto(const float* in, const Shape& inShape,
                         float* out, ForwardScratch& scratch,
                         const KernelContext& ctx) const
{
    const Shape os = outputShape(inShape);

    // Quantize the activation at the calibrated per-tensor scale, then
    // run the integer pipeline: int8 im2col -> int8 GEMM -> exact
    // int32 accumulators. All buffers belong to the calling thread;
    // workers only touch them through kernelParallelFor shards.
    scratchResize(scratch.qin, inShape.elements());
    quantizeTo(in, inShape.elements(), inputScale_, scratch.qin.data());

    const auto m = static_cast<std::size_t>(outChannels_);
    const std::size_t k =
        static_cast<std::size_t>(inChannels_) * kernel_ * kernel_;
    const auto n = static_cast<std::size_t>(os.h) *
                   static_cast<std::size_t>(os.w);
    const std::int8_t* cols;
    if (direct_ && kernel_ == 1 && stride_ == 1 && pad_ == 0) {
        // 1x1/s1/p0: the unfolded matrix equals the quantized input
        // (inC x (h*w)); hand it to gemmInt8 as-is. Identical integer
        // operands, bit-identical accumulators.
        cols = scratch.qin.data();
    } else {
        im2colInt8(scratch.qin.data(), inShape.c, inShape.h, inShape.w,
                   kernel_, stride_, pad_, os.h, os.w, scratch.qcols,
                   ctx);
        cols = scratch.qcols.data();
    }
    scratchAssign(scratch.acc, m * n, std::int32_t{0});
    gemmInt8(m, n, k, weights_.data(), cols, scratch.acc.data(), ctx);

    // Dequantize with the combined scale and add the fp32 bias (plus
    // the fused activation when lowered); one multiply-add per output
    // element, the whole cost of keeping the float-Tensor interface.
    const float slope = fusedSlope_;
    for (int oc = 0; oc < os.c; ++oc) {
        const float scale =
            inputScale_ * weightScale_[static_cast<std::size_t>(oc)];
        const float b = bias_[static_cast<std::size_t>(oc)];
        const std::int32_t* accRow =
            scratch.acc.data() + static_cast<std::size_t>(oc) * n;
        float* plane = out + static_cast<std::size_t>(oc) * n;
        if (!fusedAct_) {
            for (std::size_t i = 0; i < n; ++i)
                plane[i] = static_cast<float>(accRow[i]) * scale + b;
        } else {
            for (std::size_t i = 0; i < n; ++i) {
                const float v = static_cast<float>(accRow[i]) * scale + b;
                plane[i] = v > 0.0f ? v : slope * v;
            }
        }
    }
}

void
QuantConv2D::fuseActivation(float leakySlope)
{
    if (fusedAct_)
        fatal("QuantConv2D ", name(), ": activation already fused");
    fusedAct_ = true;
    fusedSlope_ = leakySlope;
    rename(name() + "+act");
}

LayerProfile
QuantConv2D::profile(const Shape& in) const
{
    const Shape out = outputShape(in);
    LayerProfile p;
    p.name = name();
    p.kind = kind();
    p.flops = 2ULL * outChannels_ * inChannels_ * kernel_ * kernel_ *
              out.h * out.w;
    if (fusedAct_)
        p.flops += out.elements();
    p.weightBytes = weights_.size() * sizeof(std::int8_t) +
                    (weightScale_.size() + bias_.size()) * sizeof(float);
    p.inputBytes = in.bytes();
    p.outputBytes = out.bytes();
    return p;
}

QuantFullyConnected::QuantFullyConnected(const FullyConnected& fc,
                                         float inputScale)
    : Layer(fc.name()), inFeatures_(fc.inFeatures()),
      outFeatures_(fc.outFeatures()), inputScale_(inputScale),
      bias_(fc.bias())
{
    if (inputScale <= 0.0f)
        fatal("QuantFullyConnected ", name(),
              ": input scale must be positive");
    const auto in = static_cast<std::size_t>(inFeatures_);
    weights_.assign(static_cast<std::size_t>(outFeatures_) * in, 0);
    weightScale_.assign(static_cast<std::size_t>(outFeatures_), 1.0f);
    for (int o = 0; o < outFeatures_; ++o)
        weightScale_[static_cast<std::size_t>(o)] = quantizeWeightRow(
            fc.weights().data() + static_cast<std::size_t>(o) * in, in,
            weights_.data() + static_cast<std::size_t>(o) * in);
}

Shape
QuantFullyConnected::outputShape(const Shape& in) const
{
    if (static_cast<int>(in.elements()) != inFeatures_)
        panic("QuantFullyConnected ", name(), ": expected ", inFeatures_,
              " inputs, got ", in.elements());
    return {outFeatures_, 1, 1};
}

Tensor
QuantFullyConnected::forwardImpl(const Tensor& in,
                                 const KernelContext& ctx) const
{
    outputShape({in.channels(), in.height(), in.width()});
    Tensor out(outFeatures_, 1, 1);
    forwardInto(in.data(), {in.channels(), in.height(), in.width()},
                out.data(), threadScratch(), ctx);
    return out;
}

void
QuantFullyConnected::forwardInto(const float* in, const Shape& inShape,
                                 float* out, ForwardScratch& scratch,
                                 const KernelContext& ctx) const
{
    outputShape(inShape);
    // The activation vector is widened to int16 during quantization
    // (gemvInt8 wants both operands pre-widened -- widening rows per
    // call would double the FC cost).
    scratchResize(scratch.qx, static_cast<std::size_t>(inFeatures_));
    quantizeTo(in, static_cast<std::size_t>(inFeatures_), inputScale_,
               scratch.qx.data());
    scratchAssign(scratch.acc, static_cast<std::size_t>(outFeatures_),
                  std::int32_t{0});
    gemvInt8(static_cast<std::size_t>(outFeatures_),
             static_cast<std::size_t>(inFeatures_), weights_.data(),
             scratch.qx.data(), scratch.acc.data(), ctx);

    const float slope = fusedSlope_;
    for (int o = 0; o < outFeatures_; ++o) {
        const auto i = static_cast<std::size_t>(o);
        const float v = static_cast<float>(scratch.acc[i]) *
                            (inputScale_ * weightScale_[i]) +
                        bias_[i];
        out[i] = (!fusedAct_ || v > 0.0f) ? v : slope * v;
    }
}

void
QuantFullyConnected::fuseActivation(float leakySlope)
{
    if (fusedAct_)
        fatal("QuantFullyConnected ", name(),
              ": activation already fused");
    fusedAct_ = true;
    fusedSlope_ = leakySlope;
    rename(name() + "+act");
}

LayerProfile
QuantFullyConnected::profile(const Shape& in) const
{
    const Shape out = outputShape(in);
    LayerProfile p;
    p.name = name();
    p.kind = kind();
    p.flops = 2ULL * inFeatures_ * outFeatures_;
    if (fusedAct_)
        p.flops += out.elements();
    p.weightBytes = weights_.size() * sizeof(std::int8_t) +
                    (weightScale_.size() + bias_.size()) * sizeof(float);
    p.inputBytes = in.bytes();
    p.outputBytes = out.bytes();
    return p;
}

NetworkCalibration
calibrateNetwork(const Network& net, const std::vector<Tensor>& samples,
                 const QuantizationParams& params)
{
    if (samples.empty())
        fatal("calibrateNetwork: need at least one sample input");
    const std::size_t n = net.layerCount();
    std::vector<AbsHistogram> hist(
        n, AbsHistogram(params.histogramBins));
    for (const Tensor& sample : samples) {
        Tensor t = sample;
        for (std::size_t i = 0; i < n; ++i) {
            hist[i].add(t);
            t = net.layer(i).forward(t);
        }
    }
    NetworkCalibration cal;
    cal.inputScale.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        cal.inputScale[i] = quantizeScale(
            hist[i].percentileAbs(params.percentile));
    return cal;
}

std::size_t
quantizeNetwork(Network& net, const NetworkCalibration& cal)
{
    if (cal.inputScale.size() != net.layerCount())
        fatal("quantizeNetwork: calibration covers ",
              cal.inputScale.size(), " layers but network ", net.name(),
              " has ", net.layerCount());
    std::size_t replaced = 0;
    for (std::size_t i = 0; i < net.layerCount(); ++i) {
        const Layer& layer = net.layer(i);
        if (const auto* conv = dynamic_cast<const Conv2D*>(&layer)) {
            net.replaceLayer(i, std::make_unique<QuantConv2D>(
                                    *conv, cal.inputScale[i]));
            ++replaced;
        } else if (const auto* fc =
                       dynamic_cast<const FullyConnected*>(&layer)) {
            net.replaceLayer(i, std::make_unique<QuantFullyConnected>(
                                    *fc, cal.inputScale[i]));
            ++replaced;
        }
    }
    net.setPrecision(Precision::Int8);
    return replaced;
}

std::size_t
quantizeNetwork(Network& net, const std::vector<Tensor>& samples,
                const QuantizationParams& params)
{
    return quantizeNetwork(net, calibrateNetwork(net, samples, params));
}

} // namespace ad::nn
