/**
 * @file
 * Liveness-based static memory planner for the inference engine. A
 * sequential network's intermediate tensors have trivially known
 * lifetimes -- layer i's output is born at step i and dies after layer
 * i+1 consumes it -- so all of them can be assigned offsets into ONE
 * arena sized once at network build. The forward pass then writes every
 * intermediate into preplanned arena storage and performs zero heap
 * allocations per frame (the property BENCH_quant.json asserts through
 * allocEventCount()).
 *
 * This is the software twin of the paper's accelerator observation
 * (Section 4.2): the FPGA/ASIC designs stream activations through
 * fixed on-chip buffers, never a heap. On the host the same discipline
 * removes allocator traffic and reuses hot cache lines across layers.
 *
 * planArena() is the pure planning core (exposed for property tests);
 * NetworkPlan is the materialized per-network state Network::plan()
 * builds and Network::forwardArena() executes against.
 */

#ifndef AD_NN_PLANNER_HH
#define AD_NN_PLANNER_HH

#include <cstddef>
#include <vector>

#include "nn/layers.hh"
#include "nn/tensor.hh"

namespace ad::nn {

/**
 * One value (intermediate tensor) to place: live over the inclusive
 * step interval [start, end], occupying `bytes` bytes.
 */
struct ValueInterval
{
    std::size_t start = 0;
    std::size_t end = 0;
    std::size_t bytes = 0;
};

/** Arena layout produced by planArena. */
struct ArenaPlan
{
    /** Byte offset per value, parallel to the input vector. */
    std::vector<std::size_t> offset;
    /** Total arena size in bytes (aligned). */
    std::size_t totalBytes = 0;
};

/**
 * Greedy first-fit interval placement: process values by decreasing
 * size and give each the lowest aligned offset that does not overlap
 * any already-placed value whose live interval intersects its own.
 * Values that are never simultaneously live may share bytes -- that is
 * the whole point. Deterministic (ties broken by index), O(v^2) in the
 * value count, which is tiny for sequential networks.
 *
 * @param values    live intervals with sizes.
 * @param alignment offset alignment in bytes; must be a positive
 *                  multiple of sizeof(float). Default 64 (one cache
 *                  line, and enough for any SIMD width in the tree).
 */
ArenaPlan planArena(const std::vector<ValueInterval>& values,
                    std::size_t alignment = 64);

/**
 * Materialized execution plan of one Network (built by
 * Network::plan()): per-layer output shapes, arena offsets for the
 * intermediates, the arena itself, the preallocated output tensor and
 * the shared layer scratch. Everything the planned forward path
 * touches lives here, allocated once.
 */
struct NetworkPlan
{
    Shape inputShape;
    std::vector<Shape> shapes;        ///< output shape of each layer.
    std::vector<std::size_t> offset;  ///< float offset per intermediate.
    std::size_t arenaBytes = 0;       ///< peak arena footprint.
    std::size_t arenaValues = 0;      ///< intermediates placed.
    std::vector<float> arena;         ///< the reused storage.
    Tensor output;                    ///< final layer output storage.
    ForwardScratch scratch;           ///< shared layer scratch.
};

} // namespace ad::nn

#endif // AD_NN_PLANNER_HH
