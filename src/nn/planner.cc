#include "nn/planner.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace ad::nn {

namespace {

std::size_t
alignUp(std::size_t v, std::size_t alignment)
{
    return (v + alignment - 1) / alignment * alignment;
}

} // namespace

ArenaPlan
planArena(const std::vector<ValueInterval>& values, std::size_t alignment)
{
    if (alignment == 0 || alignment % sizeof(float) != 0)
        fatal("planArena: alignment must be a positive multiple of ",
              sizeof(float), ", got ", alignment);
    ArenaPlan plan;
    plan.offset.assign(values.size(), 0);

    // Largest-first placement; ties broken by index so the plan is a
    // pure function of its input.
    std::vector<std::size_t> order(values.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (values[a].bytes != values[b].bytes)
                      return values[a].bytes > values[b].bytes;
                  return a < b;
              });

    std::vector<std::size_t> placed;
    placed.reserve(values.size());
    for (const std::size_t idx : order) {
        const ValueInterval& v = values[idx];
        if (v.bytes == 0) {
            placed.push_back(idx);
            continue;
        }
        // Byte ranges of already-placed values whose live interval
        // intersects this one; only those constrain the offset.
        std::vector<std::pair<std::size_t, std::size_t>> busy;
        for (const std::size_t p : placed) {
            const ValueInterval& o = values[p];
            if (o.bytes == 0)
                continue;
            if (o.start <= v.end && v.start <= o.end)
                busy.emplace_back(plan.offset[p],
                                  plan.offset[p] + o.bytes);
        }
        std::sort(busy.begin(), busy.end());
        std::size_t candidate = 0;
        for (const auto& [lo, hi] : busy) {
            if (candidate + v.bytes <= lo)
                break;
            candidate = std::max(candidate, alignUp(hi, alignment));
        }
        plan.offset[idx] = candidate;
        plan.totalBytes =
            std::max(plan.totalBytes, candidate + v.bytes);
        placed.push_back(idx);
    }
    plan.totalBytes = alignUp(plan.totalBytes, alignment);
    return plan;
}

} // namespace ad::nn
