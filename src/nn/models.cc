#include "nn/models.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ad::nn {

namespace {

/** Apply the width multiplier with a floor of 4 channels. */
int
scaled(int channels, double width)
{
    return std::max(4, static_cast<int>(std::lround(channels * width)));
}

void
addConvBlock(ModelSpec& spec, const std::string& name, int out, int kernel,
             int stride, int pad)
{
    spec.layers.push_back({LayerKind::Conv, name, out, kernel, stride, pad,
                           0.0f});
    spec.layers.push_back({LayerKind::Activation, name + "-act", 0, 0, 1, 0,
                           0.1f});
}

void
addPool(ModelSpec& spec, const std::string& name)
{
    spec.layers.push_back({LayerKind::Pool, name, 0, 2, 2, 0, 0.0f});
}

/** Shape propagation for a LayerDesc without building a Layer. */
Shape
descOutputShape(const LayerDesc& d, const Shape& in)
{
    switch (d.kind) {
      case LayerKind::Conv:
        return {d.out, (in.h + 2 * d.pad - d.kernel) / d.stride + 1,
                (in.w + 2 * d.pad - d.kernel) / d.stride + 1};
      case LayerKind::Pool:
        return {in.c, (in.h - d.kernel) / d.stride + 1,
                (in.w - d.kernel) / d.stride + 1};
      case LayerKind::Activation:
        return in;
      case LayerKind::FullyConnected:
        return {d.out, 1, 1};
    }
    panic("descOutputShape: bad kind");
}

LayerProfile
descProfile(const LayerDesc& d, const Shape& in)
{
    const Shape out = descOutputShape(d, in);
    LayerProfile p;
    p.name = d.name;
    p.kind = d.kind;
    p.inputBytes = in.bytes();
    p.outputBytes = out.bytes();
    switch (d.kind) {
      case LayerKind::Conv:
        p.flops = 2ULL * d.out * in.c * d.kernel * d.kernel * out.h * out.w;
        p.weightBytes =
            (static_cast<std::uint64_t>(d.out) * in.c * d.kernel * d.kernel +
             d.out) * sizeof(float);
        break;
      case LayerKind::Pool:
        p.flops = static_cast<std::uint64_t>(out.elements()) * d.kernel *
                  d.kernel;
        break;
      case LayerKind::Activation:
        p.flops = in.elements();
        break;
      case LayerKind::FullyConnected:
        p.flops = 2ULL * in.elements() * d.out;
        p.weightBytes =
            (static_cast<std::uint64_t>(in.elements()) * d.out + d.out) *
            sizeof(float);
        break;
    }
    return p;
}

} // namespace

ModelSpec
detectorSpec(int inputSize, double width, int numClasses)
{
    if (inputSize % 32 != 0)
        fatal("detectorSpec: input size ", inputSize,
              " must be a multiple of 32 (five 2x poolings)");
    ModelSpec spec;
    spec.name = "det-yolo";
    spec.input = {1, inputSize, inputSize};

    // Darknet-flavored backbone: channel ramp with 2x pools, 1x1
    // bottlenecks in the deeper stages.
    addConvBlock(spec, "conv1", scaled(16, width), 3, 1, 1);
    addPool(spec, "pool1");
    addConvBlock(spec, "conv2", scaled(32, width), 3, 1, 1);
    addPool(spec, "pool2");
    addConvBlock(spec, "conv3", scaled(64, width), 3, 1, 1);
    addConvBlock(spec, "conv3b", scaled(32, width), 1, 1, 0);
    addConvBlock(spec, "conv3c", scaled(64, width), 3, 1, 1);
    addPool(spec, "pool3");
    addConvBlock(spec, "conv4", scaled(128, width), 3, 1, 1);
    addConvBlock(spec, "conv4b", scaled(64, width), 1, 1, 0);
    addConvBlock(spec, "conv4c", scaled(128, width), 3, 1, 1);
    addPool(spec, "pool4");
    addConvBlock(spec, "conv5", scaled(256, width), 3, 1, 1);
    addConvBlock(spec, "conv5b", scaled(128, width), 1, 1, 0);
    addConvBlock(spec, "conv5c", scaled(256, width), 3, 1, 1);
    addPool(spec, "pool5");
    addConvBlock(spec, "conv6", scaled(512, width), 3, 1, 1);
    addConvBlock(spec, "conv6b", scaled(256, width), 1, 1, 0);
    addConvBlock(spec, "conv6c", scaled(512, width), 3, 1, 1);

    // Detection head: 1x1 conv to (objectness + 4 box + classes) per
    // grid cell. No activation: decode applies its own threshold.
    spec.layers.push_back({LayerKind::Conv, "head", 5 + numClasses, 1, 1, 0,
                           0.0f});
    return spec;
}

ModelSpec
trackerConvSpec(int cropSize, double width)
{
    if (cropSize < 15)
        fatal("trackerConvSpec: crop size ", cropSize,
              " too small for the 11x11 stride-4 stem");
    ModelSpec spec;
    spec.name = "tra-goturn-conv";
    spec.input = {1, cropSize, cropSize};
    // AlexNet-flavored branch (GOTURN uses CaffeNet conv1-5). Track
    // the spatial extent so pools are only emitted where they fit --
    // reduced test-scale crops otherwise shrink below the window.
    int h = (cropSize - 11) / 4 + 1;
    addConvBlock(spec, "conv1", scaled(96, width), 11, 4, 0);
    if (h >= 2) {
        addPool(spec, "pool1");
        h = (h - 2) / 2 + 1;
    }
    addConvBlock(spec, "conv2", scaled(256, width), 5, 1, 2);
    if (h >= 2) {
        addPool(spec, "pool2");
        h = (h - 2) / 2 + 1;
    }
    addConvBlock(spec, "conv3", scaled(384, width), 3, 1, 1);
    addConvBlock(spec, "conv4", scaled(384, width), 3, 1, 1);
    addConvBlock(spec, "conv5", scaled(256, width), 3, 1, 1);
    if (h >= 2)
        addPool(spec, "pool5");
    return spec;
}

ModelSpec
trackerFcSpec(int convOutElements, double width)
{
    ModelSpec spec;
    spec.name = "tra-goturn-fc";
    const int concat = 2 * convOutElements;
    spec.input = {concat, 1, 1};
    const int wide = scaled(4096, width);
    spec.layers.push_back({LayerKind::FullyConnected, "fc6", wide});
    spec.layers.push_back({LayerKind::Activation, "fc6-act", 0, 0, 1, 0,
                           0.0f});
    spec.layers.push_back({LayerKind::FullyConnected, "fc7", wide});
    spec.layers.push_back({LayerKind::Activation, "fc7-act", 0, 0, 1, 0,
                           0.0f});
    spec.layers.push_back({LayerKind::FullyConnected, "fc8", wide});
    spec.layers.push_back({LayerKind::Activation, "fc8-act", 0, 0, 1, 0,
                           0.0f});
    spec.layers.push_back({LayerKind::FullyConnected, "bbox", 4});
    return spec;
}

NetworkProfile
specProfile(const ModelSpec& spec)
{
    NetworkProfile p;
    p.name = spec.name;
    p.inputShape = spec.input;
    Shape s = spec.input;
    for (const auto& d : spec.layers) {
        p.layers.push_back(descProfile(d, s));
        s = descOutputShape(d, s);
    }
    return p;
}

NetworkProfile
trackerProfile(int cropSize, double width)
{
    const ModelSpec conv = trackerConvSpec(cropSize, width);
    const NetworkProfile convProfile = specProfile(conv);

    Shape convOut = conv.input;
    for (const auto& d : conv.layers)
        convOut = descOutputShape(d, convOut);

    const ModelSpec fc =
        trackerFcSpec(static_cast<int>(convOut.elements()), width);
    const NetworkProfile fcProfile = specProfile(fc);

    NetworkProfile p;
    p.name = "tra-goturn";
    p.inputShape = conv.input;
    // Two branches (target + search region), then the FC head.
    for (int branch = 0; branch < 2; ++branch) {
        for (auto l : convProfile.layers) {
            l.name += branch == 0 ? "-tgt" : "-srch";
            p.layers.push_back(l);
        }
    }
    for (const auto& l : fcProfile.layers)
        p.layers.push_back(l);
    return p;
}

Network
buildNetwork(const ModelSpec& spec)
{
    Network net(spec.name);
    Shape s = spec.input;
    for (const auto& d : spec.layers) {
        switch (d.kind) {
          case LayerKind::Conv:
            net.add<Conv2D>(d.name, s.c, d.out, d.kernel, d.stride, d.pad);
            break;
          case LayerKind::Pool:
            net.add<MaxPool>(d.name, d.kernel, d.stride);
            break;
          case LayerKind::Activation:
            net.add<Activation>(d.name, d.leaky);
            break;
          case LayerKind::FullyConnected:
            net.add<FullyConnected>(d.name,
                                    static_cast<int>(s.elements()), d.out);
            break;
        }
        s = descOutputShape(d, s);
    }
    return net;
}

namespace {

/** Fill a weight vector with small random values. */
void
randomize(std::vector<float>& w, Rng& rng, float stddev)
{
    for (auto& v : w)
        v = static_cast<float>(rng.normal(0.0, stddev));
}

/**
 * Make channel 0 of a conv layer the kxk box average of input channel 0,
 * and give all other filters small random weights. The early box
 * averages suppress pixel noise and thin structures (lane markings)
 * relative to area-filling objects.
 */
void
makeAveragingConv(Conv2D& conv, Rng& rng, float noise)
{
    randomize(conv.weights(), rng, noise);
    const int k = conv.kernel();
    const float avg = 1.0f / static_cast<float>(k * k);
    // Zero channel-0 cross terms so the brightness channel stays pure.
    for (int ic = 0; ic < conv.inChannels(); ++ic)
        for (int ky = 0; ky < k; ++ky)
            for (int kx = 0; kx < k; ++kx)
                conv.setWeight(0, ic, ky, kx, ic == 0 ? avg : 0.0f);
    conv.bias()[0] = 0.0f;
}

/**
 * Make channel 0 of a conv layer pass input channel 0 through unchanged
 * (center tap = 1). Combined with the interleaved max pools, channel 0
 * at the output grid becomes the maximum smoothed brightness within
 * each cell -- immune to the border attenuation repeated zero-padded
 * averaging would cause.
 */
void
makeIdentityConv(Conv2D& conv, Rng& rng, float noise)
{
    randomize(conv.weights(), rng, noise);
    const int k = conv.kernel();
    const int center = k / 2;
    for (int ic = 0; ic < conv.inChannels(); ++ic)
        for (int ky = 0; ky < k; ++ky)
            for (int kx = 0; kx < k; ++kx)
                conv.setWeight(0, ic, ky, kx,
                               (ic == 0 && ky == center && kx == center)
                                   ? 1.0f : 0.0f);
    conv.bias()[0] = 0.0f;
}

} // namespace

void
initDetectorWeights(Network& net, Rng& rng)
{
    const std::size_t n = net.layerCount();
    int convIndex = 0;
    for (std::size_t i = 0; i < n; ++i) {
        // Safe: we built the network, layer kinds identify the types.
        auto* layer = const_cast<Layer*>(&net.layer(i));
        if (layer->kind() != LayerKind::Conv)
            continue;
        auto& conv = static_cast<Conv2D&>(*layer);
        ++convIndex;
        if (conv.name() == "head") {
            // Objectness (output 0) reads the brightness channel; box
            // and class outputs get small random weights (decode
            // derives geometry from the objectness map instead).
            randomize(conv.weights(), rng, 0.01f);
            for (int ic = 0; ic < conv.inChannels(); ++ic)
                conv.setWeight(0, ic, 0, 0, ic == 0 ? 1.0f : 0.0f);
            conv.bias()[0] = 0.0f;
        } else if (convIndex <= 2) {
            // Two early smoothing stages knock down noise and thin
            // lane markings before the max pools take over.
            makeAveragingConv(conv, rng, 0.01f);
        } else {
            makeIdentityConv(conv, rng, 0.01f);
        }
    }
}

void
initTrackerWeights(Network& net, Rng& rng)
{
    const std::size_t n = net.layerCount();
    for (std::size_t i = 0; i < n; ++i) {
        auto* layer = const_cast<Layer*>(&net.layer(i));
        if (layer->kind() == LayerKind::Conv) {
            makeAveragingConv(static_cast<Conv2D&>(*layer), rng, 0.01f);
        } else if (layer->kind() == LayerKind::FullyConnected) {
            auto& fc = static_cast<FullyConnected&>(*layer);
            // Scale by fan-in so activations stay bounded through the
            // 4096-wide stack.
            const float stddev =
                0.5f / std::sqrt(static_cast<float>(fc.inFeatures()));
            randomize(fc.weights(), rng, stddev);
        }
    }
}

} // namespace ad::nn
