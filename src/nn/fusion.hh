/**
 * @file
 * Graph-lowering pass for the inference engine: walk a built (and
 * possibly quantized) Network and (a) fuse each conv/FC + following
 * ReLU/LeakyReLU pair into a single layer whose GEMM epilogue applies
 * the activation before the output store, and (b) mark convolutions
 * whose im2col unfold is pure overhead (1x1/stride-1/pad-0 -- the
 * unfold is a copy -- plus, opt-in via directConvMaxPixels, tiny
 * fp32 spatial outputs) to run direct.
 *
 * BatchNorm is already folded into conv weights at model build
 * (foldBatchNorm, layers.hh), so Conv2D+BN+LeakyReLU chains arrive
 * here as Conv2D+Activation and leave as one fused layer.
 *
 * The pass is a pure optimization: every lowered network computes
 * bit-identical outputs to the unfused reference at any thread count
 * (each fused epilogue performs the same scalar float operations in
 * the same order as the separate layers; see the fuseActivation docs).
 * The unfused path stays available behind the `nn.fuse` knob for A/B
 * testing.
 *
 * Run order matters: quantize first (calibration indexes the unlowered
 * layer list), then lowerNetwork, then Network::plan.
 */

#ifndef AD_NN_FUSION_HH
#define AD_NN_FUSION_HH

#include "nn/network.hh"

namespace ad::nn {

/** Knobs for the lowering pass. */
struct LoweringOptions
{
    /** Fold conv/FC + activation pairs into fused layers. */
    bool fuseActivations = true;
    /** Mark unfold-free convolutions (1x1 and small outputs). */
    bool directConv = true;
    /**
     * Largest output pixel count (h*w) lowered to the scalar direct
     * loop for non-1x1 fp32 convs. Default 0: disabled. Measured on
     * this host (bench_micro_kernels BM_ConvSmallSpatial), the packed
     * GEMM on the unfolded matrix beats the scalar loop even at 2x2
     * outputs -- the unfold is cheap next to losing vectorization --
     * so only the copy-free 1x1 case is marked by default.
     */
    int directConvMaxPixels = 0;
};

/** What the pass did, for logs/benches/tests. */
struct LoweringReport
{
    std::size_t fusedActivations = 0;
    std::size_t directConvs = 0;
};

/**
 * Lower `net` in place for the given input shape. Idempotent in
 * effect: already-fused layers are never re-fused (their follower is
 * no longer an Activation).
 */
LoweringReport lowerNetwork(Network& net, const Shape& input,
                            const LoweringOptions& opt = {});

} // namespace ad::nn

#endif // AD_NN_FUSION_HH
