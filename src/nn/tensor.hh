/**
 * @file
 * Dense float tensor in CHW layout (batch size is always 1: the
 * autonomous-driving pipeline processes one frame at a time, and the
 * paper's latency constraint precludes batching). This is the data type
 * flowing through the from-scratch DNN inference engine used by the
 * object-detection (YOLO-style) and object-tracking (GOTURN-style)
 * engines.
 */

#ifndef AD_NN_TENSOR_HH
#define AD_NN_TENSOR_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/image.hh"

namespace ad::nn {

/**
 * Process-wide count of forward-path allocation events: tensor
 * materializations plus scratch-buffer growth (scratchAssign /
 * scratchResize below). The arena/fusion acceptance bar reads this
 * before and after a frame to assert the planned forward path
 * (Network::forwardArena) performs zero heap allocations after the
 * build/plan phase. Monotonic; relaxed atomic, so cheap enough to
 * leave always-on.
 */
std::uint64_t allocEventCount();

namespace detail {
/** Record one forward-path allocation event (see allocEventCount). */
void noteAllocEvent();
} // namespace detail

/**
 * vector::assign that counts as an allocation event only when the
 * vector must grow. Layer scratch buffers use this so steady-state
 * frames (capacity already high-watermarked by the plan warm-up) are
 * provably allocation-free under the allocEventCount metric.
 */
template <typename T>
void
scratchAssign(std::vector<T>& v, std::size_t n, T fill)
{
    if (v.capacity() < n)
        detail::noteAllocEvent();
    v.assign(n, fill);
}

/** vector::resize twin of scratchAssign (no refill of existing lanes). */
template <typename T>
void
scratchResize(std::vector<T>& v, std::size_t n)
{
    if (v.capacity() < n)
        detail::noteAllocEvent();
    v.resize(n);
}

/** Channel-major (CHW) float tensor with value semantics. */
class Tensor
{
  public:
    Tensor() = default;

    /** Allocate a c x h x w tensor zero-filled. */
    Tensor(int c, int h, int w);

    int channels() const { return c_; }
    int height() const { return h_; }
    int width() const { return w_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    /** Bytes occupied by the payload (fp32). */
    std::size_t bytes() const { return data_.size() * sizeof(float); }

    float at(int c, int y, int x) const { return data_[idx(c, y, x)]; }
    float& at(int c, int y, int x) { return data_[idx(c, y, x)]; }

    const float* data() const { return data_.data(); }
    float* data() { return data_.data(); }

    /** Pointer to the start of one channel plane. */
    const float* channel(int c) const { return data_.data() + plane(c); }
    float* channel(int c) { return data_.data() + plane(c); }

    void fill(float value);

    /** "c x h x w" for diagnostics. */
    std::string shapeString() const;

    /**
     * Build a 1 x h x w tensor from a grayscale image, normalizing
     * pixels to [0, 1] -- the network input path of DET and TRA.
     */
    static Tensor fromImage(const Image& img);

    /**
     * In-place fromImage: overwrite this tensor with the normalized
     * image, reusing the existing payload when capacity suffices --
     * the allocation-free per-frame input path of the planned
     * detector/tracker engines.
     */
    void assignFromImage(const Image& img);

    /**
     * Build a 2c x h x w tensor by stacking two tensors channel-wise;
     * the GOTURN-style tracker concatenates target and search-region
     * features before its fully connected stack.
     */
    static Tensor concatChannels(const Tensor& a, const Tensor& b);

    /**
     * In-place concatChannels: overwrite this tensor with the stack of
     * a and b, reusing the existing payload when the shape already
     * matches -- the allocation-free path the planned tracker uses to
     * rebuild its FC input every frame.
     */
    void assignConcat(const Tensor& a, const Tensor& b);

  private:
    std::size_t plane(int c) const
    {
        return static_cast<std::size_t>(c) * h_ * w_;
    }
    std::size_t idx(int c, int y, int x) const
    {
        return plane(c) + static_cast<std::size_t>(y) * w_ + x;
    }

    int c_ = 0;
    int h_ = 0;
    int w_ = 0;
    std::vector<float> data_;
};

} // namespace ad::nn

#endif // AD_NN_TENSOR_HH
