/**
 * @file
 * Post-training INT8 quantization for the inference engine: symmetric
 * per-channel weight quantization, histogram-based activation
 * calibration with percentile clipping, and drop-in quantized
 * conv/FC layers that run on the int8 kernels (gemm_int8.hh).
 *
 * Scheme (DESIGN.md "Quantized inference"): all quantization is
 * symmetric with the int8 range restricted to [-127, 127], so a tensor
 * is represented as q = clamp(round(x / s), -127, 127) for one positive
 * scale s and dequantized as x' = q * s. Weights use one scale per
 * output channel (absmax / 127 over the channel's filter); activations
 * use one scale per tensor, chosen during a calibration pass that feeds
 * seeded sample inputs through the fp32 network and clips each layer's
 * input distribution at a percentile of |x| (outliers cost range for
 * the whole tensor; clipping them trades rare saturation for finer
 * resolution everywhere else).
 *
 * A quantized layer keeps the float-Tensor Layer interface: it
 * quantizes its input internally, accumulates in int32, and
 * dequantizes straight to fp32 with the combined scale
 * sIn * sW[channel], adding the fp32 bias. Interleaved pool/activation
 * layers therefore run unmodified, and a quantized network is
 * bitwise-deterministic at any thread count because the integer
 * accumulation is exact (see gemm_int8.hh).
 */

#ifndef AD_NN_QUANT_HH
#define AD_NN_QUANT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layers.hh"
#include "nn/network.hh"

namespace ad::nn {

/** Knobs for the calibration pass. */
struct QuantizationParams
{
    /** Histogram resolution for activation range tracking. */
    int histogramBins = 1024;
    /**
     * Fraction of |x| mass kept inside the representable range; the
     * default clips the top 0.1% of activation magnitudes.
     */
    float percentile = 0.999f;
};

/**
 * Streaming histogram over |x| with a fixed bin count and a range that
 * grows by powers of two: when a sample exceeds the current range the
 * range doubles and adjacent bin pairs merge, so early samples are
 * never lost and memory stays constant. Used by calibration to pick
 * percentile-clipped activation scales.
 */
class AbsHistogram
{
  public:
    explicit AbsHistogram(int bins = 1024);

    /** Record |x| for every element. */
    void add(const float* data, std::size_t n);
    void add(const Tensor& t) { add(t.data(), t.size()); }

    /** Largest |x| seen (0 if empty). */
    float absMax() const { return absMax_; }
    /** Total samples recorded. */
    std::uint64_t count() const { return count_; }

    /**
     * Smallest magnitude bound that covers at least `fraction` of the
     * recorded mass (upper edge of the covering bin). fraction >= 1 or
     * an empty histogram returns absMax().
     */
    float percentileAbs(float fraction) const;

  private:
    void grow(float needed);

    std::vector<std::uint64_t> bins_;
    float range_ = 1.0f; ///< current upper edge of the last bin.
    float absMax_ = 0.0f;
    std::uint64_t count_ = 0;
};

/**
 * Symmetric scale mapping [-absMax, absMax] onto [-127, 127];
 * absMax <= 0 degenerates to 1 so all-zero tensors quantize to zero
 * instead of dividing by zero.
 */
float quantizeScale(float absMax);

/** q = clamp(round(x / scale), -127, 127) elementwise. */
void quantize(const float* x, std::size_t n, float scale, std::int8_t* q);

/** x' = q * scale elementwise. */
void dequantize(const std::int8_t* q, std::size_t n, float scale,
                float* x);

/**
 * Re-express int32 accumulators (at scale accScale) as int8 at
 * outScale: q = clamp(round(acc * accScale / outScale), -127, 127).
 * The layer stack dequantizes to fp32 between layers instead, but the
 * helper is the primitive a fused int8->int8 chain would use and is
 * covered by the round-trip tests.
 */
void requantize(const std::int32_t* acc, std::size_t n, float accScale,
                float outScale, std::int8_t* q);

/**
 * Conv2D lowered to the int8 path: weights quantized per output
 * channel (stored pre-widened to int16 for the SIMD kernel), input
 * quantized per-tensor at the calibrated scale, int8 im2col, exact
 * int32 accumulation, dequantize + fp32 bias on the way out.
 */
class QuantConv2D : public Layer
{
  public:
    /**
     * @param conv fp32 layer to quantize (weights copied, not shared).
     * @param inputScale calibrated activation scale for this layer's
     *        input tensor.
     */
    QuantConv2D(const Conv2D& conv, float inputScale);

    LayerKind kind() const override { return LayerKind::Conv; }
    Shape outputShape(const Shape& in) const override;
    /**
     * Footprint with weightBytes at int8 width -- the reduced
     * parameter traffic is exactly what the accelerator models charge
     * for in the quantized configurations.
     */
    LayerProfile profile(const Shape& in) const override;

    float inputScale() const { return inputScale_; }
    /** Per-output-channel weight scales. */
    const std::vector<float>& weightScale() const { return weightScale_; }

    int kernel() const { return kernel_; }
    int stride() const { return stride_; }
    int pad() const { return pad_; }

    /**
     * Fold a following ReLU/LeakyReLU into the dequantize epilogue
     * (see Conv2D::fuseActivation). The dequant pass always computes
     * `acc * scale + bias` -- fused or not -- so applying the
     * activation right after that expression is bitwise-identical to a
     * separate Activation layer. Renames the layer "<name>+act".
     */
    void fuseActivation(float leakySlope);
    bool hasFusedActivation() const { return fusedAct_; }
    float fusedSlope() const { return fusedSlope_; }

    /**
     * Skip the int8 im2col for 1x1/stride-1/pad-0 geometry: the
     * quantized input planes feed gemmInt8 directly (the unfold would
     * be a pure copy). Other geometries keep the unfold -- the integer
     * path has no scalar direct kernel because integer sums are exact
     * in any order anyway, so there is nothing to keep bitwise-safe,
     * only the copy to skip.
     */
    void setDirectConv(bool on) { direct_ = on; }
    bool directConv() const { return direct_; }

    void forwardInto(const float* in, const Shape& inShape, float* out,
                     ForwardScratch& scratch,
                     const KernelContext& ctx) const override;

  protected:
    Tensor forwardImpl(const Tensor& in,
                       const KernelContext& ctx) const override;

  private:
    int inChannels_;
    int outChannels_;
    int kernel_;
    int stride_;
    int pad_;
    float inputScale_;
    bool fusedAct_ = false;
    float fusedSlope_ = 0.0f;
    bool direct_ = false;
    std::vector<std::int16_t> weights_; ///< int8-range, pre-widened.
    std::vector<float> weightScale_;    ///< per output channel.
    std::vector<float> bias_;           ///< fp32, added after dequant.
};

/**
 * FullyConnected lowered to the int8 path: per-output-row weight
 * scales, per-tensor input scale, gemvInt8 core, fp32 bias after
 * dequantization.
 */
class QuantFullyConnected : public Layer
{
  public:
    QuantFullyConnected(const FullyConnected& fc, float inputScale);

    LayerKind kind() const override { return LayerKind::FullyConnected; }
    Shape outputShape(const Shape& in) const override;
    /** Footprint with weightBytes at int8 width (see QuantConv2D). */
    LayerProfile profile(const Shape& in) const override;

    float inputScale() const { return inputScale_; }
    const std::vector<float>& weightScale() const { return weightScale_; }

    /**
     * Fold a following ReLU/LeakyReLU into the dequantize pass (see
     * QuantConv2D::fuseActivation). Renames the layer "<name>+act".
     */
    void fuseActivation(float leakySlope);
    bool hasFusedActivation() const { return fusedAct_; }
    float fusedSlope() const { return fusedSlope_; }

    void forwardInto(const float* in, const Shape& inShape, float* out,
                     ForwardScratch& scratch,
                     const KernelContext& ctx) const override;

  protected:
    Tensor forwardImpl(const Tensor& in,
                       const KernelContext& ctx) const override;

  private:
    int inFeatures_;
    int outFeatures_;
    float inputScale_;
    bool fusedAct_ = false;
    float fusedSlope_ = 0.0f;
    std::vector<std::int16_t> weights_; ///< int8-range, pre-widened.
    std::vector<float> weightScale_;    ///< per output feature.
    std::vector<float> bias_;
};

/** Calibrated per-layer activation scales for one network. */
struct NetworkCalibration
{
    /**
     * inputScale[i] is the quantization scale for layer i's input
     * tensor; meaningful only where layer i is conv or FC.
     */
    std::vector<float> inputScale;
};

/**
 * Run the calibration pass: feed each sample through the fp32 network
 * layer by layer (serially -- calibration is offline, determinism over
 * speed), record every layer's input magnitudes into per-layer
 * histograms, and derive percentile-clipped scales.
 */
NetworkCalibration calibrateNetwork(const Network& net,
                                    const std::vector<Tensor>& samples,
                                    const QuantizationParams& params = {});

/**
 * Swap every conv/FC layer of `net` for its quantized counterpart
 * using the calibrated scales, and mark the network Precision::Int8.
 * Pool/activation/softmax layers are untouched (they run fp32 on the
 * dequantized tensors). Returns the number of layers replaced.
 * fatal() if the calibration was taken on a different layer count.
 */
std::size_t quantizeNetwork(Network& net, const NetworkCalibration& cal);

/**
 * Convenience wrapper: calibrate on `samples` and quantize in place.
 * Returns the number of layers replaced.
 */
std::size_t quantizeNetwork(Network& net,
                            const std::vector<Tensor>& samples,
                            const QuantizationParams& params = {});

} // namespace ad::nn

#endif // AD_NN_QUANT_HH
