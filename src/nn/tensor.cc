#include "nn/tensor.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace ad::nn {

Tensor::Tensor(int c, int h, int w) : c_(c), h_(h), w_(w)
{
    if (c < 0 || h < 0 || w < 0)
        panic("Tensor: negative shape ", c, "x", h, "x", w);
    data_.assign(static_cast<std::size_t>(c) * h * w, 0.0f);
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

std::string
Tensor::shapeString() const
{
    std::ostringstream oss;
    oss << c_ << "x" << h_ << "x" << w_;
    return oss.str();
}

Tensor
Tensor::fromImage(const Image& img)
{
    Tensor t(1, img.height(), img.width());
    float* dst = t.data();
    const std::uint8_t* src = img.data();
    const std::size_t n = img.size();
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<float>(src[i]) * (1.0f / 255.0f);
    return t;
}

Tensor
Tensor::concatChannels(const Tensor& a, const Tensor& b)
{
    if (a.height() != b.height() || a.width() != b.width())
        panic("concatChannels: spatial mismatch ", a.shapeString(), " vs ",
              b.shapeString());
    Tensor out(a.channels() + b.channels(), a.height(), a.width());
    std::copy(a.data(), a.data() + a.size(), out.data());
    std::copy(b.data(), b.data() + b.size(), out.data() + a.size());
    return out;
}

} // namespace ad::nn
