#include "nn/tensor.hh"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "common/logging.hh"

namespace ad::nn {

namespace {

std::atomic<std::uint64_t> allocEvents{0};

} // namespace

std::uint64_t
allocEventCount()
{
    return allocEvents.load(std::memory_order_relaxed);
}

void
detail::noteAllocEvent()
{
    allocEvents.fetch_add(1, std::memory_order_relaxed);
}

Tensor::Tensor(int c, int h, int w) : c_(c), h_(h), w_(w)
{
    if (c < 0 || h < 0 || w < 0)
        panic("Tensor: negative shape ", c, "x", h, "x", w);
    const std::size_t n = static_cast<std::size_t>(c) * h * w;
    if (n > 0)
        detail::noteAllocEvent();
    data_.assign(n, 0.0f);
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

std::string
Tensor::shapeString() const
{
    std::ostringstream oss;
    oss << c_ << "x" << h_ << "x" << w_;
    return oss.str();
}

Tensor
Tensor::fromImage(const Image& img)
{
    Tensor t(1, img.height(), img.width());
    float* dst = t.data();
    const std::uint8_t* src = img.data();
    const std::size_t n = img.size();
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<float>(src[i]) * (1.0f / 255.0f);
    return t;
}

void
Tensor::assignFromImage(const Image& img)
{
    c_ = 1;
    h_ = img.height();
    w_ = img.width();
    const std::size_t n = img.size();
    if (data_.capacity() < n)
        detail::noteAllocEvent();
    data_.resize(n);
    float* dst = data_.data();
    const std::uint8_t* src = img.data();
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<float>(src[i]) * (1.0f / 255.0f);
}

Tensor
Tensor::concatChannels(const Tensor& a, const Tensor& b)
{
    if (a.height() != b.height() || a.width() != b.width())
        panic("concatChannels: spatial mismatch ", a.shapeString(), " vs ",
              b.shapeString());
    Tensor out(a.channels() + b.channels(), a.height(), a.width());
    std::copy(a.data(), a.data() + a.size(), out.data());
    std::copy(b.data(), b.data() + b.size(), out.data() + a.size());
    return out;
}

void
Tensor::assignConcat(const Tensor& a, const Tensor& b)
{
    if (a.height() != b.height() || a.width() != b.width())
        panic("assignConcat: spatial mismatch ", a.shapeString(), " vs ",
              b.shapeString());
    c_ = a.channels() + b.channels();
    h_ = a.height();
    w_ = a.width();
    const std::size_t n = a.size() + b.size();
    if (data_.capacity() < n)
        detail::noteAllocEvent();
    data_.resize(n);
    std::copy(a.data(), a.data() + a.size(), data_.data());
    std::copy(b.data(), b.data() + b.size(), data_.data() + a.size());
}

} // namespace ad::nn
