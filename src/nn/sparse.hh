/**
 * @file
 * Sparse fully connected execution, in the style of the EIE inference
 * engine the paper adopts for the tracker's FC stack (Han et al.,
 * reference [23]). GOTURN's three 4096-wide FC layers carry ~436 MB
 * of fp32 weights -- the reason TRA is transfer-bound on the FPGA --
 * and EIE's answer is pruning + compressed storage: most weights are
 * near zero, so a CSR representation shrinks both the footprint and
 * the multiply count.
 *
 * SparseFullyConnected prunes a dense layer at a magnitude threshold
 * and executes the compressed form; its LayerProfile reports the
 * compressed FLOPs/bytes, which the accelerator models then convert
 * into the latency savings the paper's ASIC numbers embody.
 */

#ifndef AD_NN_SPARSE_HH
#define AD_NN_SPARSE_HH

#include "nn/layers.hh"

namespace ad::nn {

/**
 * CSR-compressed fully connected layer.
 */
class SparseFullyConnected : public Layer
{
  public:
    /**
     * Compress a dense FC layer by magnitude pruning.
     *
     * @param name layer name.
     * @param dense source layer (unchanged).
     * @param threshold weights with |w| <= threshold are dropped.
     */
    SparseFullyConnected(std::string name, const FullyConnected& dense,
                         float threshold);

    LayerKind kind() const override { return LayerKind::FullyConnected; }
    Shape outputShape(const Shape& in) const override;
    LayerProfile profile(const Shape& in) const override;

    int inFeatures() const { return inFeatures_; }
    int outFeatures() const { return outFeatures_; }

    /** Retained weights / original weights, in (0, 1]. */
    double density() const;

    /** Number of retained (nonzero) weights. */
    std::size_t nonZeros() const { return values_.size(); }

    /**
     * Compressed parameter bytes: CSR values (fp32) + column indices
     * (4 B) + row offsets + bias. (EIE additionally quantizes to 4-bit
     * indices and shared weights; we keep fp32 for numerical
     * comparability with the dense path.)
     */
    std::uint64_t compressedBytes() const;

  protected:
    Tensor forwardImpl(const Tensor& in,
                       const KernelContext& ctx) const override;

  private:
    int inFeatures_;
    int outFeatures_;
    std::vector<float> values_;        ///< nonzero weights.
    std::vector<std::uint32_t> cols_;  ///< column of each value.
    std::vector<std::uint32_t> rowPtr_; ///< CSR row offsets.
    std::vector<float> bias_;
};

/**
 * Relative output error of pruning a dense layer at the threshold,
 * measured on a probe input: ||dense(x) - sparse(x)|| / ||dense(x)||.
 * Used by tests and the compression ablation.
 */
double pruningError(const FullyConnected& dense, float threshold,
                    const Tensor& probe);

} // namespace ad::nn

#endif // AD_NN_SPARSE_HH
