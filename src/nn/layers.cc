#include "nn/layers.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "nn/gemm.hh"

namespace ad::nn {

const char*
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv: return "conv";
      case LayerKind::Pool: return "pool";
      case LayerKind::Activation: return "act";
      case LayerKind::FullyConnected: return "fc";
    }
    return "?";
}

namespace {

/**
 * im2col: unfold kernel-sized patches of the input into columns so the
 * convolution becomes one GEMM. Output is (inC * k * k) x (outH * outW),
 * row-major. The (c, ky, kx) rows are independent pure writes, so they
 * shard across the kernel context with bitwise-deterministic results.
 */
void
im2col(const float* in, int inC, int inH, int inW, int kernel,
       int stride, int pad, int outH, int outW, std::vector<float>& cols,
       const KernelContext& ctx)
{
    const std::size_t rows =
        static_cast<std::size_t>(inC) * kernel * kernel;
    scratchAssign(cols, rows * outH * outW, 0.0f);
    kernelParallelFor(ctx, 0, rows, 4, [&](std::size_t lo,
                                           std::size_t hi) {
        for (std::size_t rowIdx = lo; rowIdx < hi; ++rowIdx) {
            const int kx = static_cast<int>(rowIdx % kernel);
            const int ky = static_cast<int>(rowIdx / kernel % kernel);
            const int c = static_cast<int>(rowIdx / kernel / kernel);
            const float* plane =
                in + static_cast<std::size_t>(c) * inH * inW;
            float* dst = cols.data() +
                rowIdx * static_cast<std::size_t>(outH) * outW;
            for (int oy = 0; oy < outH; ++oy) {
                const int iy = oy * stride - pad + ky;
                if (iy < 0 || iy >= inH) {
                    dst += outW;
                    continue;
                }
                const float* srcRow = plane +
                    static_cast<std::size_t>(iy) * inW;
                for (int ox = 0; ox < outW; ++ox) {
                    const int ix = ox * stride - pad + kx;
                    *dst++ = (ix < 0 || ix >= inW) ? 0.0f : srcRow[ix];
                }
            }
        }
    });
}

int
convOutDim(int in, int kernel, int stride, int pad)
{
    return (in + 2 * pad - kernel) / stride + 1;
}

} // namespace

ForwardScratch&
threadScratch()
{
    static thread_local ForwardScratch scratch;
    return scratch;
}

void
Layer::forwardInto(const float* in, const Shape& inShape, float* out,
                   ForwardScratch&, const KernelContext& ctx) const
{
    // Allocating fallback for layers without a raw-pointer override:
    // round-trip through the Tensor interface. Correct inside a
    // planned network, just not allocation-free.
    Tensor t(inShape.c, inShape.h, inShape.w);
    std::copy(in, in + inShape.elements(), t.data());
    const Tensor r = forwardImpl(t, ctx);
    std::copy(r.data(), r.data() + r.size(), out);
}

Conv2D::Conv2D(std::string name, int inChannels, int outChannels,
               int kernel, int stride, int pad)
    : Layer(std::move(name)), inChannels_(inChannels),
      outChannels_(outChannels), kernel_(kernel), stride_(stride), pad_(pad)
{
    if (inChannels <= 0 || outChannels <= 0 || kernel <= 0 || stride <= 0 ||
        pad < 0)
        panic("Conv2D ", this->name(), ": invalid geometry");
    weights_.assign(static_cast<std::size_t>(outChannels) * inChannels *
                    kernel * kernel, 0.0f);
    bias_.assign(outChannels, 0.0f);
}

Shape
Conv2D::outputShape(const Shape& in) const
{
    if (in.c != inChannels_)
        panic("Conv2D ", name(), ": expected ", inChannels_,
              " input channels, got ", in.c);
    const int oh = convOutDim(in.h, kernel_, stride_, pad_);
    const int ow = convOutDim(in.w, kernel_, stride_, pad_);
    if (oh <= 0 || ow <= 0)
        panic("Conv2D ", name(), ": input ", in.h, "x", in.w,
              " too small for kernel");
    return {outChannels_, oh, ow};
}

Tensor
Conv2D::forwardImpl(const Tensor& in, const KernelContext& ctx) const
{
    const Shape out = outputShape({in.channels(), in.height(), in.width()});
    Tensor result(out.c, out.h, out.w);
    forwardInto(in.data(), {in.channels(), in.height(), in.width()},
                result.data(), threadScratch(), ctx);
    return result;
}

/**
 * Direct convolution without the im2col unfold: each output channel's
 * plane is one shard, and every output element accumulates its taps in
 * exactly im2col's (c, ky, kx) row order -- padded taps contribute an
 * explicit `w * 0.0f` term, the same operation GEMM performs on the
 * zero entries of the unfolded matrix -- so the float sum chain, and
 * therefore the result, is bit-identical to the im2col + GEMM path.
 */
void
Conv2D::directRun(const float* in, const Shape& inShape,
                  const Shape& outShape, float* out,
                  const KernelContext& ctx) const
{
    const int inH = inShape.h;
    const int inW = inShape.w;
    const int outH = outShape.h;
    const int outW = outShape.w;
    const std::size_t n =
        static_cast<std::size_t>(outH) * static_cast<std::size_t>(outW);
    const std::size_t filterSize =
        static_cast<std::size_t>(inChannels_) * kernel_ * kernel_;
    kernelParallelFor(ctx, 0, static_cast<std::size_t>(outChannels_), 1,
                      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t oc = lo; oc < hi; ++oc) {
            const float* w = weights_.data() + oc * filterSize;
            float* plane = out + oc * n;
            for (int oy = 0; oy < outH; ++oy) {
                for (int ox = 0; ox < outW; ++ox) {
                    float acc = plane[static_cast<std::size_t>(oy) * outW +
                                      ox];
                    const float* wp = w;
                    for (int c = 0; c < inChannels_; ++c) {
                        const float* src = in +
                            static_cast<std::size_t>(c) * inH * inW;
                        for (int ky = 0; ky < kernel_; ++ky) {
                            const int iy = oy * stride_ - pad_ + ky;
                            const float* row =
                                (iy < 0 || iy >= inH)
                                    ? nullptr
                                    : src + static_cast<std::size_t>(iy) *
                                          inW;
                            for (int kx = 0; kx < kernel_; ++kx, ++wp) {
                                const int ix = ox * stride_ - pad_ + kx;
                                const float v =
                                    (!row || ix < 0 || ix >= inW)
                                        ? 0.0f
                                        : row[ix];
                                acc += *wp * v;
                            }
                        }
                    }
                    plane[static_cast<std::size_t>(oy) * outW + ox] = acc;
                }
            }
        }
    });
}

/**
 * Bias (+ optionally fused activation) pass. The zero-bias skip of the
 * unfused path is preserved exactly: adding 0.0f is not a no-op in
 * IEEE float (it flips -0.0 to +0.0), so the fused epilogue must make
 * the same skip decision to stay bitwise-identical.
 */
void
Conv2D::epilogue(float* out, const Shape& outShape) const
{
    const std::size_t n = static_cast<std::size_t>(outShape.h) *
                          static_cast<std::size_t>(outShape.w);
    const float slope = fusedSlope_;
    for (int oc = 0; oc < outShape.c; ++oc) {
        const float b = bias_[static_cast<std::size_t>(oc)];
        float* plane = out + static_cast<std::size_t>(oc) * n;
        if (!fusedAct_) {
            if (b == 0.0f)
                continue;
            for (std::size_t i = 0; i < n; ++i)
                plane[i] += b;
        } else if (b != 0.0f) {
            for (std::size_t i = 0; i < n; ++i) {
                const float v = plane[i] + b;
                plane[i] = v > 0.0f ? v : slope * v;
            }
        } else {
            for (std::size_t i = 0; i < n; ++i) {
                const float v = plane[i];
                plane[i] = v > 0.0f ? v : slope * v;
            }
        }
    }
}

void
Conv2D::forwardInto(const float* in, const Shape& inShape, float* out,
                    ForwardScratch& scratch,
                    const KernelContext& ctx) const
{
    const Shape out_ = outputShape(inShape);
    const std::size_t m = outChannels_;
    const std::size_t k = static_cast<std::size_t>(inChannels_) * kernel_ *
                          kernel_;
    const std::size_t n = static_cast<std::size_t>(out_.h) * out_.w;
    std::fill(out, out + out_.elements(), 0.0f);

    if (direct_ && kernel_ == 1 && stride_ == 1 && pad_ == 0) {
        // 1x1/s1/p0: the im2col matrix IS the input (inC x (h*w)),
        // so GEMM consumes the input planes directly -- identical
        // operands, identical result, no unfold traffic at all.
        gemm(m, n, k, weights_.data(), in, out, ctx);
    } else if (direct_) {
        directRun(in, inShape, out_, out, ctx);
    } else {
        im2col(in, inShape.c, inShape.h, inShape.w, kernel_, stride_,
               pad_, out_.h, out_.w, scratch.cols, ctx);
        gemm(m, n, k, weights_.data(), scratch.cols.data(), out, ctx);
    }
    epilogue(out, out_);
}

void
Conv2D::fuseActivation(float leakySlope)
{
    if (fusedAct_)
        fatal("Conv2D ", name(), ": activation already fused");
    fusedAct_ = true;
    fusedSlope_ = leakySlope;
    rename(name() + "+act");
}

LayerProfile
Conv2D::profile(const Shape& in) const
{
    const Shape out = outputShape(in);
    LayerProfile p;
    p.name = name();
    p.kind = kind();
    p.flops = 2ULL * outChannels_ * inChannels_ * kernel_ * kernel_ *
              out.h * out.w;
    if (fusedAct_)
        p.flops += out.elements();
    p.weightBytes = (weights_.size() + bias_.size()) * sizeof(float);
    p.inputBytes = in.bytes();
    p.outputBytes = out.bytes();
    return p;
}

void
Conv2D::setWeight(int oc, int ic, int ky, int kx, float value)
{
    const std::size_t i =
        ((static_cast<std::size_t>(oc) * inChannels_ + ic) * kernel_ + ky) *
        kernel_ + kx;
    weights_[i] = value;
}

void
foldBatchNorm(Conv2D& conv, const BatchNormParams& bn)
{
    const auto oc = static_cast<std::size_t>(conv.outChannels());
    if (bn.gamma.size() != oc || bn.beta.size() != oc ||
        bn.mean.size() != oc || bn.variance.size() != oc)
        fatal("foldBatchNorm: parameter sizes must equal ",
              conv.outChannels(), " output channels");
    const std::size_t filterSize =
        static_cast<std::size_t>(conv.inChannels()) * conv.kernel() *
        conv.kernel();
    for (std::size_t c = 0; c < oc; ++c) {
        const float scale =
            bn.gamma[c] / std::sqrt(bn.variance[c] + bn.epsilon);
        float* w = conv.weights().data() + c * filterSize;
        for (std::size_t i = 0; i < filterSize; ++i)
            w[i] *= scale;
        conv.bias()[c] =
            scale * (conv.bias()[c] - bn.mean[c]) + bn.beta[c];
    }
}

MaxPool::MaxPool(std::string name, int kernel, int stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride)
{
    if (kernel <= 0 || stride <= 0)
        panic("MaxPool ", this->name(), ": invalid geometry");
}

Shape
MaxPool::outputShape(const Shape& in) const
{
    // Guard before dividing: (in - kernel) / stride truncates toward
    // zero for negative values, which would "round" an undersized
    // input up to a 1x1 output.
    if (in.h < kernel_ || in.w < kernel_)
        panic("MaxPool ", name(), ": input ", in.h, "x", in.w,
              " too small");
    return {in.c, (in.h - kernel_) / stride_ + 1,
            (in.w - kernel_) / stride_ + 1};
}

Tensor
MaxPool::forwardImpl(const Tensor& in, const KernelContext& ctx) const
{
    const Shape out = outputShape({in.channels(), in.height(), in.width()});
    Tensor result(out.c, out.h, out.w);
    forwardInto(in.data(), {in.channels(), in.height(), in.width()},
                result.data(), threadScratch(), ctx);
    return result;
}

void
MaxPool::forwardInto(const float* in, const Shape& inShape, float* out,
                     ForwardScratch&, const KernelContext&) const
{
    const Shape os = outputShape(inShape);
    for (int c = 0; c < os.c; ++c) {
        const float* src =
            in + static_cast<std::size_t>(c) * inShape.h * inShape.w;
        float* dst = out + static_cast<std::size_t>(c) * os.h * os.w;
        for (int oy = 0; oy < os.h; ++oy) {
            for (int ox = 0; ox < os.w; ++ox) {
                float best = -INFINITY;
                for (int ky = 0; ky < kernel_; ++ky) {
                    const float* row = src +
                        static_cast<std::size_t>(oy * stride_ + ky) *
                        inShape.w + ox * stride_;
                    for (int kx = 0; kx < kernel_; ++kx)
                        best = std::max(best, row[kx]);
                }
                dst[static_cast<std::size_t>(oy) * os.w + ox] = best;
            }
        }
    }
}

LayerProfile
MaxPool::profile(const Shape& in) const
{
    const Shape out = outputShape(in);
    LayerProfile p;
    p.name = name();
    p.kind = kind();
    // One comparison per window element, counted as one op.
    p.flops = static_cast<std::uint64_t>(out.elements()) * kernel_ * kernel_;
    p.weightBytes = 0;
    p.inputBytes = in.bytes();
    p.outputBytes = out.bytes();
    return p;
}

AvgPool::AvgPool(std::string name, int kernel, int stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride)
{
    if (kernel <= 0 || stride <= 0)
        panic("AvgPool ", this->name(), ": invalid geometry");
}

Shape
AvgPool::outputShape(const Shape& in) const
{
    // See MaxPool::outputShape: guard before the truncating division.
    if (in.h < kernel_ || in.w < kernel_)
        panic("AvgPool ", name(), ": input ", in.h, "x", in.w,
              " too small");
    return {in.c, (in.h - kernel_) / stride_ + 1,
            (in.w - kernel_) / stride_ + 1};
}

Tensor
AvgPool::forwardImpl(const Tensor& in, const KernelContext& ctx) const
{
    const Shape out = outputShape({in.channels(), in.height(), in.width()});
    Tensor result(out.c, out.h, out.w);
    forwardInto(in.data(), {in.channels(), in.height(), in.width()},
                result.data(), threadScratch(), ctx);
    return result;
}

void
AvgPool::forwardInto(const float* in, const Shape& inShape, float* out,
                     ForwardScratch&, const KernelContext&) const
{
    const Shape os = outputShape(inShape);
    const float norm = 1.0f / static_cast<float>(kernel_ * kernel_);
    for (int c = 0; c < os.c; ++c) {
        const float* src =
            in + static_cast<std::size_t>(c) * inShape.h * inShape.w;
        float* dst = out + static_cast<std::size_t>(c) * os.h * os.w;
        for (int oy = 0; oy < os.h; ++oy) {
            for (int ox = 0; ox < os.w; ++ox) {
                float sum = 0;
                for (int ky = 0; ky < kernel_; ++ky) {
                    const float* row = src +
                        static_cast<std::size_t>(oy * stride_ + ky) *
                        inShape.w + ox * stride_;
                    for (int kx = 0; kx < kernel_; ++kx)
                        sum += row[kx];
                }
                dst[static_cast<std::size_t>(oy) * os.w + ox] =
                    sum * norm;
            }
        }
    }
}

LayerProfile
AvgPool::profile(const Shape& in) const
{
    const Shape out = outputShape(in);
    LayerProfile p;
    p.name = name();
    p.kind = kind();
    p.flops = static_cast<std::uint64_t>(out.elements()) * kernel_ *
              kernel_;
    p.inputBytes = in.bytes();
    p.outputBytes = out.bytes();
    return p;
}

Softmax::Softmax(std::string name) : Layer(std::move(name))
{
}

Tensor
Softmax::forwardImpl(const Tensor& in, const KernelContext& ctx) const
{
    Tensor out(in.channels(), in.height(), in.width());
    forwardInto(in.data(), {in.channels(), in.height(), in.width()},
                out.data(), threadScratch(), ctx);
    return out;
}

void
Softmax::forwardInto(const float* in, const Shape& inShape, float* out,
                     ForwardScratch&, const KernelContext&) const
{
    // Per spatial position, normalize across channels (YOLO applies
    // softmax over class channels per grid cell).
    const int c = inShape.c;
    const std::size_t plane =
        static_cast<std::size_t>(inShape.h) * inShape.w;
    for (int y = 0; y < inShape.h; ++y) {
        for (int x = 0; x < inShape.w; ++x) {
            const std::size_t at =
                static_cast<std::size_t>(y) * inShape.w + x;
            float maxV = in[at];
            for (int ci = 1; ci < c; ++ci)
                maxV = std::max(maxV, in[ci * plane + at]);
            float sum = 0;
            for (int ci = 0; ci < c; ++ci) {
                const float e = std::exp(in[ci * plane + at] - maxV);
                out[ci * plane + at] = e;
                sum += e;
            }
            for (int ci = 0; ci < c; ++ci)
                out[ci * plane + at] /= sum;
        }
    }
}

LayerProfile
Softmax::profile(const Shape& in) const
{
    LayerProfile p;
    p.name = name();
    p.kind = kind();
    // exp + two passes per element, counted as ~4 ops each.
    p.flops = in.elements() * 4;
    p.inputBytes = in.bytes();
    p.outputBytes = in.bytes();
    return p;
}

Activation::Activation(std::string name, float leakySlope)
    : Layer(std::move(name)), leakySlope_(leakySlope)
{
}

Tensor
Activation::forwardImpl(const Tensor& in, const KernelContext& ctx) const
{
    Tensor out = in;
    forwardInto(in.data(), {in.channels(), in.height(), in.width()},
                out.data(), threadScratch(), ctx);
    return out;
}

void
Activation::forwardInto(const float* in, const Shape& inShape,
                        float* out, ForwardScratch&,
                        const KernelContext&) const
{
    const std::size_t n = inShape.elements();
    const float slope = leakySlope_;
    for (std::size_t i = 0; i < n; ++i)
        out[i] = in[i] > 0.0f ? in[i] : slope * in[i];
}

LayerProfile
Activation::profile(const Shape& in) const
{
    LayerProfile p;
    p.name = name();
    p.kind = kind();
    p.flops = in.elements();
    p.weightBytes = 0;
    p.inputBytes = in.bytes();
    p.outputBytes = in.bytes();
    return p;
}

FullyConnected::FullyConnected(std::string name, int inFeatures,
                               int outFeatures)
    : Layer(std::move(name)), inFeatures_(inFeatures),
      outFeatures_(outFeatures)
{
    if (inFeatures <= 0 || outFeatures <= 0)
        panic("FullyConnected ", this->name(), ": invalid geometry");
    weights_.assign(static_cast<std::size_t>(outFeatures) * inFeatures,
                    0.0f);
    bias_.assign(outFeatures, 0.0f);
}

Shape
FullyConnected::outputShape(const Shape& in) const
{
    if (static_cast<int>(in.elements()) != inFeatures_)
        panic("FullyConnected ", name(), ": expected ", inFeatures_,
              " inputs, got ", in.elements());
    return {outFeatures_, 1, 1};
}

Tensor
FullyConnected::forwardImpl(const Tensor& in,
                            const KernelContext& ctx) const
{
    outputShape({in.channels(), in.height(), in.width()});
    Tensor out(outFeatures_, 1, 1);
    forwardInto(in.data(), {in.channels(), in.height(), in.width()},
                out.data(), threadScratch(), ctx);
    return out;
}

void
FullyConnected::forwardInto(const float* in, const Shape& inShape,
                            float* out, ForwardScratch&,
                            const KernelContext& ctx) const
{
    outputShape(inShape);
    std::copy(bias_.begin(), bias_.end(), out);
    gemv(outFeatures_, inFeatures_, weights_.data(), in, out, ctx);
    if (fusedAct_) {
        const float slope = fusedSlope_;
        for (int o = 0; o < outFeatures_; ++o) {
            const float v = out[o];
            out[o] = v > 0.0f ? v : slope * v;
        }
    }
}

void
FullyConnected::fuseActivation(float leakySlope)
{
    if (fusedAct_)
        fatal("FullyConnected ", name(), ": activation already fused");
    fusedAct_ = true;
    fusedSlope_ = leakySlope;
    rename(name() + "+act");
}

LayerProfile
FullyConnected::profile(const Shape& in) const
{
    const Shape out = outputShape(in);
    LayerProfile p;
    p.name = name();
    p.kind = kind();
    p.flops = 2ULL * inFeatures_ * outFeatures_;
    if (fusedAct_)
        p.flops += out.elements();
    p.weightBytes = (weights_.size() + bias_.size()) * sizeof(float);
    p.inputBytes = in.bytes();
    p.outputBytes = out.bytes();
    return p;
}

} // namespace ad::nn
