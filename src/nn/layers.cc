#include "nn/layers.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "nn/gemm.hh"

namespace ad::nn {

const char*
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv: return "conv";
      case LayerKind::Pool: return "pool";
      case LayerKind::Activation: return "act";
      case LayerKind::FullyConnected: return "fc";
    }
    return "?";
}

namespace {

/**
 * im2col: unfold kernel-sized patches of the input into columns so the
 * convolution becomes one GEMM. Output is (inC * k * k) x (outH * outW),
 * row-major. The (c, ky, kx) rows are independent pure writes, so they
 * shard across the kernel context with bitwise-deterministic results.
 */
void
im2col(const Tensor& in, int kernel, int stride, int pad, int outH,
       int outW, std::vector<float>& cols, const KernelContext& ctx)
{
    const int inC = in.channels();
    const int inH = in.height();
    const int inW = in.width();
    const std::size_t rows =
        static_cast<std::size_t>(inC) * kernel * kernel;
    cols.assign(rows * outH * outW, 0.0f);
    kernelParallelFor(ctx, 0, rows, 4, [&](std::size_t lo,
                                           std::size_t hi) {
        for (std::size_t rowIdx = lo; rowIdx < hi; ++rowIdx) {
            const int kx = static_cast<int>(rowIdx % kernel);
            const int ky = static_cast<int>(rowIdx / kernel % kernel);
            const int c = static_cast<int>(rowIdx / kernel / kernel);
            const float* plane = in.channel(c);
            float* dst = cols.data() +
                rowIdx * static_cast<std::size_t>(outH) * outW;
            for (int oy = 0; oy < outH; ++oy) {
                const int iy = oy * stride - pad + ky;
                if (iy < 0 || iy >= inH) {
                    dst += outW;
                    continue;
                }
                const float* srcRow = plane +
                    static_cast<std::size_t>(iy) * inW;
                for (int ox = 0; ox < outW; ++ox) {
                    const int ix = ox * stride - pad + kx;
                    *dst++ = (ix < 0 || ix >= inW) ? 0.0f : srcRow[ix];
                }
            }
        }
    });
}

int
convOutDim(int in, int kernel, int stride, int pad)
{
    return (in + 2 * pad - kernel) / stride + 1;
}

} // namespace

Conv2D::Conv2D(std::string name, int inChannels, int outChannels,
               int kernel, int stride, int pad)
    : Layer(std::move(name)), inChannels_(inChannels),
      outChannels_(outChannels), kernel_(kernel), stride_(stride), pad_(pad)
{
    if (inChannels <= 0 || outChannels <= 0 || kernel <= 0 || stride <= 0 ||
        pad < 0)
        panic("Conv2D ", this->name(), ": invalid geometry");
    weights_.assign(static_cast<std::size_t>(outChannels) * inChannels *
                    kernel * kernel, 0.0f);
    bias_.assign(outChannels, 0.0f);
}

Shape
Conv2D::outputShape(const Shape& in) const
{
    if (in.c != inChannels_)
        panic("Conv2D ", name(), ": expected ", inChannels_,
              " input channels, got ", in.c);
    const int oh = convOutDim(in.h, kernel_, stride_, pad_);
    const int ow = convOutDim(in.w, kernel_, stride_, pad_);
    if (oh <= 0 || ow <= 0)
        panic("Conv2D ", name(), ": input ", in.h, "x", in.w,
              " too small for kernel");
    return {outChannels_, oh, ow};
}

Tensor
Conv2D::forwardImpl(const Tensor& in, const KernelContext& ctx) const
{
    const Shape out = outputShape({in.channels(), in.height(), in.width()});
    Tensor result(out.c, out.h, out.w);

    static thread_local std::vector<float> cols;
    im2col(in, kernel_, stride_, pad_, out.h, out.w, cols, ctx);

    const std::size_t m = outChannels_;
    const std::size_t k = static_cast<std::size_t>(inChannels_) * kernel_ *
                          kernel_;
    const std::size_t n = static_cast<std::size_t>(out.h) * out.w;
    gemm(m, n, k, weights_.data(), cols.data(), result.data(), ctx);

    for (int oc = 0; oc < out.c; ++oc) {
        const float b = bias_[oc];
        if (b == 0.0f)
            continue;
        float* plane = result.channel(oc);
        for (std::size_t i = 0; i < n; ++i)
            plane[i] += b;
    }
    return result;
}

LayerProfile
Conv2D::profile(const Shape& in) const
{
    const Shape out = outputShape(in);
    LayerProfile p;
    p.name = name();
    p.kind = kind();
    p.flops = 2ULL * outChannels_ * inChannels_ * kernel_ * kernel_ *
              out.h * out.w;
    p.weightBytes = (weights_.size() + bias_.size()) * sizeof(float);
    p.inputBytes = in.bytes();
    p.outputBytes = out.bytes();
    return p;
}

void
Conv2D::setWeight(int oc, int ic, int ky, int kx, float value)
{
    const std::size_t i =
        ((static_cast<std::size_t>(oc) * inChannels_ + ic) * kernel_ + ky) *
        kernel_ + kx;
    weights_[i] = value;
}

void
foldBatchNorm(Conv2D& conv, const BatchNormParams& bn)
{
    const auto oc = static_cast<std::size_t>(conv.outChannels());
    if (bn.gamma.size() != oc || bn.beta.size() != oc ||
        bn.mean.size() != oc || bn.variance.size() != oc)
        fatal("foldBatchNorm: parameter sizes must equal ",
              conv.outChannels(), " output channels");
    const std::size_t filterSize =
        static_cast<std::size_t>(conv.inChannels()) * conv.kernel() *
        conv.kernel();
    for (std::size_t c = 0; c < oc; ++c) {
        const float scale =
            bn.gamma[c] / std::sqrt(bn.variance[c] + bn.epsilon);
        float* w = conv.weights().data() + c * filterSize;
        for (std::size_t i = 0; i < filterSize; ++i)
            w[i] *= scale;
        conv.bias()[c] =
            scale * (conv.bias()[c] - bn.mean[c]) + bn.beta[c];
    }
}

MaxPool::MaxPool(std::string name, int kernel, int stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride)
{
    if (kernel <= 0 || stride <= 0)
        panic("MaxPool ", this->name(), ": invalid geometry");
}

Shape
MaxPool::outputShape(const Shape& in) const
{
    // Guard before dividing: (in - kernel) / stride truncates toward
    // zero for negative values, which would "round" an undersized
    // input up to a 1x1 output.
    if (in.h < kernel_ || in.w < kernel_)
        panic("MaxPool ", name(), ": input ", in.h, "x", in.w,
              " too small");
    return {in.c, (in.h - kernel_) / stride_ + 1,
            (in.w - kernel_) / stride_ + 1};
}

Tensor
MaxPool::forwardImpl(const Tensor& in, const KernelContext&) const
{
    const Shape out = outputShape({in.channels(), in.height(), in.width()});
    Tensor result(out.c, out.h, out.w);
    for (int c = 0; c < out.c; ++c) {
        const float* src = in.channel(c);
        float* dst = result.channel(c);
        for (int oy = 0; oy < out.h; ++oy) {
            for (int ox = 0; ox < out.w; ++ox) {
                float best = -INFINITY;
                for (int ky = 0; ky < kernel_; ++ky) {
                    const float* row = src +
                        static_cast<std::size_t>(oy * stride_ + ky) *
                        in.width() + ox * stride_;
                    for (int kx = 0; kx < kernel_; ++kx)
                        best = std::max(best, row[kx]);
                }
                dst[static_cast<std::size_t>(oy) * out.w + ox] = best;
            }
        }
    }
    return result;
}

LayerProfile
MaxPool::profile(const Shape& in) const
{
    const Shape out = outputShape(in);
    LayerProfile p;
    p.name = name();
    p.kind = kind();
    // One comparison per window element, counted as one op.
    p.flops = static_cast<std::uint64_t>(out.elements()) * kernel_ * kernel_;
    p.weightBytes = 0;
    p.inputBytes = in.bytes();
    p.outputBytes = out.bytes();
    return p;
}

AvgPool::AvgPool(std::string name, int kernel, int stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride)
{
    if (kernel <= 0 || stride <= 0)
        panic("AvgPool ", this->name(), ": invalid geometry");
}

Shape
AvgPool::outputShape(const Shape& in) const
{
    // See MaxPool::outputShape: guard before the truncating division.
    if (in.h < kernel_ || in.w < kernel_)
        panic("AvgPool ", name(), ": input ", in.h, "x", in.w,
              " too small");
    return {in.c, (in.h - kernel_) / stride_ + 1,
            (in.w - kernel_) / stride_ + 1};
}

Tensor
AvgPool::forwardImpl(const Tensor& in, const KernelContext&) const
{
    const Shape out = outputShape({in.channels(), in.height(), in.width()});
    Tensor result(out.c, out.h, out.w);
    const float norm = 1.0f / static_cast<float>(kernel_ * kernel_);
    for (int c = 0; c < out.c; ++c) {
        const float* src = in.channel(c);
        float* dst = result.channel(c);
        for (int oy = 0; oy < out.h; ++oy) {
            for (int ox = 0; ox < out.w; ++ox) {
                float sum = 0;
                for (int ky = 0; ky < kernel_; ++ky) {
                    const float* row = src +
                        static_cast<std::size_t>(oy * stride_ + ky) *
                        in.width() + ox * stride_;
                    for (int kx = 0; kx < kernel_; ++kx)
                        sum += row[kx];
                }
                dst[static_cast<std::size_t>(oy) * out.w + ox] =
                    sum * norm;
            }
        }
    }
    return result;
}

LayerProfile
AvgPool::profile(const Shape& in) const
{
    const Shape out = outputShape(in);
    LayerProfile p;
    p.name = name();
    p.kind = kind();
    p.flops = static_cast<std::uint64_t>(out.elements()) * kernel_ *
              kernel_;
    p.inputBytes = in.bytes();
    p.outputBytes = out.bytes();
    return p;
}

Softmax::Softmax(std::string name) : Layer(std::move(name))
{
}

Tensor
Softmax::forwardImpl(const Tensor& in, const KernelContext&) const
{
    // Per spatial position, normalize across channels (YOLO applies
    // softmax over class channels per grid cell).
    Tensor out(in.channels(), in.height(), in.width());
    const int c = in.channels();
    for (int y = 0; y < in.height(); ++y) {
        for (int x = 0; x < in.width(); ++x) {
            float maxV = in.at(0, y, x);
            for (int ci = 1; ci < c; ++ci)
                maxV = std::max(maxV, in.at(ci, y, x));
            float sum = 0;
            for (int ci = 0; ci < c; ++ci) {
                const float e = std::exp(in.at(ci, y, x) - maxV);
                out.at(ci, y, x) = e;
                sum += e;
            }
            for (int ci = 0; ci < c; ++ci)
                out.at(ci, y, x) /= sum;
        }
    }
    return out;
}

LayerProfile
Softmax::profile(const Shape& in) const
{
    LayerProfile p;
    p.name = name();
    p.kind = kind();
    // exp + two passes per element, counted as ~4 ops each.
    p.flops = in.elements() * 4;
    p.inputBytes = in.bytes();
    p.outputBytes = in.bytes();
    return p;
}

Activation::Activation(std::string name, float leakySlope)
    : Layer(std::move(name)), leakySlope_(leakySlope)
{
}

Tensor
Activation::forwardImpl(const Tensor& in, const KernelContext&) const
{
    Tensor out = in;
    float* data = out.data();
    const std::size_t n = out.size();
    const float slope = leakySlope_;
    for (std::size_t i = 0; i < n; ++i)
        data[i] = data[i] > 0.0f ? data[i] : slope * data[i];
    return out;
}

LayerProfile
Activation::profile(const Shape& in) const
{
    LayerProfile p;
    p.name = name();
    p.kind = kind();
    p.flops = in.elements();
    p.weightBytes = 0;
    p.inputBytes = in.bytes();
    p.outputBytes = in.bytes();
    return p;
}

FullyConnected::FullyConnected(std::string name, int inFeatures,
                               int outFeatures)
    : Layer(std::move(name)), inFeatures_(inFeatures),
      outFeatures_(outFeatures)
{
    if (inFeatures <= 0 || outFeatures <= 0)
        panic("FullyConnected ", this->name(), ": invalid geometry");
    weights_.assign(static_cast<std::size_t>(outFeatures) * inFeatures,
                    0.0f);
    bias_.assign(outFeatures, 0.0f);
}

Shape
FullyConnected::outputShape(const Shape& in) const
{
    if (static_cast<int>(in.elements()) != inFeatures_)
        panic("FullyConnected ", name(), ": expected ", inFeatures_,
              " inputs, got ", in.elements());
    return {outFeatures_, 1, 1};
}

Tensor
FullyConnected::forwardImpl(const Tensor& in,
                            const KernelContext& ctx) const
{
    outputShape({in.channels(), in.height(), in.width()});
    Tensor out(outFeatures_, 1, 1);
    std::copy(bias_.begin(), bias_.end(), out.data());
    gemv(outFeatures_, inFeatures_, weights_.data(), in.data(), out.data(),
         ctx);
    return out;
}

LayerProfile
FullyConnected::profile(const Shape& in) const
{
    const Shape out = outputShape(in);
    LayerProfile p;
    p.name = name();
    p.kind = kind();
    p.flops = 2ULL * inFeatures_ * outFeatures_;
    p.weightBytes = (weights_.size() + bias_.size()) * sizeof(float);
    p.inputBytes = in.bytes();
    p.outputBytes = out.bytes();
    return p;
}

} // namespace ad::nn
