#include "nn/kernel_context.hh"

#include <thread>

#include "common/parallel_for.hh"
#include "common/thread_pool.hh"

namespace ad::nn {

const KernelContext&
KernelContext::serial()
{
    static const KernelContext ctx;
    return ctx;
}

int
resolveKernelThreads(int requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

KernelContext
kernelContext(int threads)
{
    const int resolved = resolveKernelThreads(threads);
    if (resolved <= 1)
        return {};
    KernelContext ctx;
    ctx.pool = &sharedWorkerPool();
    ctx.maxThreads = static_cast<std::size_t>(resolved);
    return ctx;
}

void
kernelParallelFor(const KernelContext& ctx, std::size_t begin,
                  std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn)
{
    if (!ctx.parallel()) {
        if (end > begin)
            fn(begin, end);
        return;
    }
    parallelFor(ctx.pool, begin, end, grain, fn, ctx.maxThreads);
}

} // namespace ad::nn
