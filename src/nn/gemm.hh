/**
 * @file
 * Single-precision matrix multiplication kernels. Convolution lowers to
 * GEMM via im2col (the same scheme cuDNN-era CPU backends used), so this
 * kernel carries essentially all DNN compute in measured mode -- the
 * paper finds the DNN portion is 99%+ of DET and TRA cycles, making this
 * the hottest loop in the repository.
 *
 * The production kernel packs B into register-tile-width panels, runs a
 * 4x8 register-accumulating micro-kernel, and shards output rows across
 * the shared ThreadPool via a KernelContext (see DESIGN.md, "Parallel
 * NN kernel layer"). Every output element accumulates in ascending-k
 * order regardless of blocking, packing or thread count, so results are
 * bitwise-deterministic -- a hard requirement since the benchmarks
 * reproduce paper figures.
 */

#ifndef AD_NN_GEMM_HH
#define AD_NN_GEMM_HH

#include <cstddef>

#include "nn/kernel_context.hh"

namespace ad::nn {

/**
 * C += A * B for row-major matrices, packed micro-kernel execution,
 * sharded over ctx when it is parallel.
 *
 * @param m rows of A and C.
 * @param n columns of B and C.
 * @param k columns of A / rows of B.
 * @param a m x k matrix.
 * @param b k x n matrix.
 * @param c m x n accumulator (not cleared).
 * @param ctx kernel execution context (serial by default).
 *
 * Bitwise-deterministic: each C element is accumulated in ascending-k
 * order whatever the thread count, so any ctx produces the identical
 * result, which also equals gemmBlockedReference / gemmNaive up to
 * their own (same) summation order.
 */
void gemm(std::size_t m, std::size_t n, std::size_t k,
          const float* a, const float* b, float* c,
          const KernelContext& ctx = KernelContext::serial());

/**
 * The pre-parallel blocked i-k-j kernel (the seed implementation),
 * kept as the performance baseline for bench_micro_kernels and as a
 * bitwise reference for the packed kernel's determinism tests.
 */
void gemmBlockedReference(std::size_t m, std::size_t n, std::size_t k,
                          const float* a, const float* b, float* c);

/**
 * Reference implementation (naive triple loop) used by the test suite
 * to validate gemm() over random shapes.
 */
void gemmNaive(std::size_t m, std::size_t n, std::size_t k,
               const float* a, const float* b, float* c);

/**
 * y += A * x for row-major A (m x k); the fully connected layer core.
 * Rows shard across ctx; each row's reduction order is fixed, so the
 * result is bitwise-deterministic for any thread count.
 */
void gemv(std::size_t m, std::size_t k, const float* a, const float* x,
          float* y, const KernelContext& ctx = KernelContext::serial());

} // namespace ad::nn

#endif // AD_NN_GEMM_HH
