/**
 * @file
 * Single-precision matrix multiplication kernel. Convolution lowers to
 * GEMM via im2col (the same scheme cuDNN-era CPU backends used), so this
 * kernel carries essentially all DNN compute in measured mode -- the
 * paper finds the DNN portion is 99%+ of DET and TRA cycles, making this
 * the hottest loop in the repository.
 */

#ifndef AD_NN_GEMM_HH
#define AD_NN_GEMM_HH

#include <cstddef>

namespace ad::nn {

/**
 * C += A * B for row-major matrices.
 *
 * @param m rows of A and C.
 * @param n columns of B and C.
 * @param k columns of A / rows of B.
 * @param a m x k matrix.
 * @param b k x n matrix.
 * @param c m x n accumulator (not cleared).
 *
 * Blocked i-k-j loop order with unit-stride inner loops; no explicit
 * SIMD so the compiler's auto-vectorizer applies.
 */
void gemm(std::size_t m, std::size_t n, std::size_t k,
          const float* a, const float* b, float* c);

/**
 * Reference implementation (naive triple loop) used by the test suite
 * to validate gemm() over random shapes.
 */
void gemmNaive(std::size_t m, std::size_t n, std::size_t k,
               const float* a, const float* b, float* c);

/** y += A * x for row-major A (m x k); the fully connected layer core. */
void gemv(std::size_t m, std::size_t k, const float* a, const float* x,
          float* y);

} // namespace ad::nn

#endif // AD_NN_GEMM_HH
