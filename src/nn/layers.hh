/**
 * @file
 * Layer zoo for the from-scratch DNN inference engine: convolution
 * (im2col + GEMM), max pooling, ReLU/LeakyReLU activations and fully
 * connected layers -- exactly the layer types the paper's FPGA design
 * supports ("all the types of layers used in DET and TRA, including
 * convolutional layers, pooling layers, ReLu layers and fully connected
 * layers", Section 4.2.2).
 *
 * Every layer reports its compute/memory footprint (FLOPs, weight bytes,
 * activation bytes); the accelerator platform models consume those
 * profiles to predict latency and power on GPU/FPGA/ASIC targets.
 */

#ifndef AD_NN_LAYERS_HH
#define AD_NN_LAYERS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/kernel_context.hh"
#include "nn/tensor.hh"

namespace ad::nn {

/** Coarse layer category, used by the accelerator models. */
enum class LayerKind { Conv, Pool, Activation, FullyConnected };

/** Batch-normalization parameters for one channel set. */
struct BatchNormParams
{
    std::vector<float> gamma;   ///< scale.
    std::vector<float> beta;    ///< shift.
    std::vector<float> mean;    ///< running mean.
    std::vector<float> variance; ///< running variance.
    float epsilon = 1e-5f;
};

/** Convert a LayerKind to a short lowercase name. */
const char* layerKindName(LayerKind kind);

/** Static compute/memory footprint of one layer at a given input. */
struct LayerProfile
{
    std::string name;
    LayerKind kind = LayerKind::Conv;
    std::uint64_t flops = 0;       ///< multiply+add counted separately.
    std::uint64_t weightBytes = 0; ///< parameter footprint (fp32).
    std::uint64_t inputBytes = 0;  ///< activation read.
    std::uint64_t outputBytes = 0; ///< activation written.
};

/** Shape of a CHW tensor, used for static shape propagation. */
struct Shape
{
    int c = 0;
    int h = 0;
    int w = 0;

    std::size_t elements() const
    {
        return static_cast<std::size_t>(c) * h * w;
    }
    std::size_t bytes() const { return elements() * sizeof(float); }
    bool operator==(const Shape&) const = default;
};

/**
 * Reusable scratch buffers for the raw-pointer execution path
 * (Layer::forwardInto). One instance serves a whole sequential network:
 * layers execute one at a time, so they can share buffers, and all
 * growth is counted through scratchAssign/scratchResize -- after the
 * plan warm-up pass has high-watermarked every buffer, steady-state
 * frames touch the heap zero times.
 */
struct ForwardScratch
{
    std::vector<float> cols;        ///< fp32 im2col matrix.
    std::vector<std::int8_t> qin;   ///< quantized input tensor.
    std::vector<std::int8_t> qcols; ///< int8 im2col matrix.
    std::vector<std::int16_t> qx;   ///< pre-widened FC activation.
    std::vector<std::int32_t> acc;  ///< int32 GEMM/GEMV accumulators.
};

/**
 * The shared thread-local ForwardScratch behind the legacy Tensor
 * forward path: forwardImpl routes through forwardInto using this
 * instance, so both paths execute identical code (and are therefore
 * bitwise-identical by construction).
 */
ForwardScratch& threadScratch();

/**
 * Abstract network layer. Layers are stateless with respect to
 * invocation (weights are fixed after construction), so one layer object
 * can be reused across frames.
 */
class Layer
{
  public:
    explicit Layer(std::string name) : name_(std::move(name)) {}
    virtual ~Layer() = default;

    Layer(const Layer&) = delete;
    Layer& operator=(const Layer&) = delete;

    const std::string& name() const { return name_; }

    /** Layer category for accelerator mapping. */
    virtual LayerKind kind() const = 0;

    /** Output shape for the given input shape; fatal() on mismatch. */
    virtual Shape outputShape(const Shape& in) const = 0;

    /**
     * Allocation-free execution path used by the planned/arena forward
     * (nn/planner.hh): read the input at `in` with shape `inShape` and
     * write the output to `out`, which the caller sized to
     * outputShape(inShape) and which may alias arena storage (in and
     * out never alias each other). Scratch comes from `scratch` and
     * only grows on first use. Results are bitwise-identical to
     * forward(). The base implementation falls back to forwardImpl
     * through temporary tensors (allocating), so exotic layers stay
     * correct inside a planned network without their own override.
     */
    virtual void forwardInto(const float* in, const Shape& inShape,
                             float* out, ForwardScratch& scratch,
                             const KernelContext& ctx) const;

    /** Execute the layer serially (the exact pre-parallel behavior). */
    Tensor
    forward(const Tensor& in) const
    {
        return forwardImpl(in, KernelContext::serial());
    }

    /**
     * Execute the layer under a kernel context. Parallel contexts
     * shard compute-heavy layers (conv, FC) across the pool; results
     * are bitwise-identical to serial execution for any thread count.
     */
    Tensor
    forward(const Tensor& in, const KernelContext& ctx) const
    {
        return forwardImpl(in, ctx);
    }

    /** Compute/memory footprint for the given input shape. */
    virtual LayerProfile profile(const Shape& in) const = 0;

  protected:
    /** Layer execution; ctx is serial unless the caller opted in. */
    virtual Tensor forwardImpl(const Tensor& in,
                               const KernelContext& ctx) const = 0;

    /**
     * Rename the layer; the fusion pass (nn/fusion.hh) appends "+act"
     * when it folds a following Activation into this layer so traces
     * and profiles name the fused stage honestly.
     */
    void rename(std::string name) { name_ = std::move(name); }

  private:
    std::string name_;
};

/**
 * 2D convolution with square kernel, symmetric zero padding and fused
 * optional bias. Lowered to GEMM through im2col.
 */
class Conv2D : public Layer
{
  public:
    /**
     * @param name layer name (unique within a network).
     * @param inChannels input channel count.
     * @param outChannels output channel count (number of filters).
     * @param kernel square kernel size.
     * @param stride spatial stride.
     * @param pad symmetric zero padding.
     */
    Conv2D(std::string name, int inChannels, int outChannels, int kernel,
           int stride, int pad);

    LayerKind kind() const override { return LayerKind::Conv; }
    Shape outputShape(const Shape& in) const override;
    LayerProfile profile(const Shape& in) const override;

    int inChannels() const { return inChannels_; }
    int outChannels() const { return outChannels_; }
    int kernel() const { return kernel_; }
    int stride() const { return stride_; }
    int pad() const { return pad_; }

    /** Mutable weight access: [outC][inC][ky][kx] flattened. */
    std::vector<float>& weights() { return weights_; }
    const std::vector<float>& weights() const { return weights_; }
    std::vector<float>& bias() { return bias_; }
    const std::vector<float>& bias() const { return bias_; }

    /** Set the weight for one (outC, inC, ky, kx) tap. */
    void setWeight(int oc, int ic, int ky, int kx, float value);

    /**
     * Fold a following ReLU/LeakyReLU into this layer's epilogue (the
     * fusion lowering, nn/fusion.hh): the activation is applied in the
     * bias pass right before the output store, so the separate
     * Activation layer -- and its full tensor read/write -- disappears.
     * Bitwise-identical to running the Activation afterwards: the
     * epilogue performs the same scalar operations in the same order.
     * Renames the layer "<name>+act".
     */
    void fuseActivation(float leakySlope);
    bool hasFusedActivation() const { return fusedAct_; }
    float fusedSlope() const { return fusedSlope_; }

    /**
     * Skip im2col: 1x1/stride-1/pad-0 convs feed the input planes to
     * GEMM directly (the unfold would be a pure copy), and other
     * geometries run a scalar direct loop that accumulates taps in
     * im2col's (c, ky, kx) order with padded taps as explicit zero
     * multiplies -- either way the result is bitwise-identical to the
     * im2col path. Set by the lowering pass where skipping the unfold
     * wins (1x1 always; small outputs where GEMM cannot amortize the
     * unfold).
     */
    void setDirectConv(bool on) { direct_ = on; }
    bool directConv() const { return direct_; }

    void forwardInto(const float* in, const Shape& inShape, float* out,
                     ForwardScratch& scratch,
                     const KernelContext& ctx) const override;

  protected:
    Tensor forwardImpl(const Tensor& in,
                       const KernelContext& ctx) const override;

  private:
    void directRun(const float* in, const Shape& inShape,
                   const Shape& outShape, float* out,
                   const KernelContext& ctx) const;
    void epilogue(float* out, const Shape& outShape) const;

    int inChannels_;
    int outChannels_;
    int kernel_;
    int stride_;
    int pad_;
    bool fusedAct_ = false;
    float fusedSlope_ = 0.0f;
    bool direct_ = false;
    std::vector<float> weights_; ///< outC x (inC * k * k), row-major.
    std::vector<float> bias_;    ///< outC.
};

/**
 * Fold batch normalization into the preceding convolution: at
 * inference, BN(conv(x)) is an affine map per output channel, so the
 * scale folds into the filter weights and the shift into the bias.
 * This is why the inference engine (like the paper's FPGA design,
 * which lists only conv/pool/ReLU/FC) carries no BatchNorm layer.
 *
 * @param conv convolution whose weights/bias are rewritten in place.
 * @param bn per-output-channel statistics (sizes must match).
 */
void foldBatchNorm(Conv2D& conv, const BatchNormParams& bn);

/** Max pooling with square window. */
class MaxPool : public Layer
{
  public:
    MaxPool(std::string name, int kernel, int stride);

    LayerKind kind() const override { return LayerKind::Pool; }
    Shape outputShape(const Shape& in) const override;
    LayerProfile profile(const Shape& in) const override;

    int kernel() const { return kernel_; }
    int stride() const { return stride_; }

    void forwardInto(const float* in, const Shape& inShape, float* out,
                     ForwardScratch& scratch,
                     const KernelContext& ctx) const override;

  protected:
    Tensor forwardImpl(const Tensor& in,
                       const KernelContext& ctx) const override;

  private:
    int kernel_;
    int stride_;
};

/** Average pooling with square window. */
class AvgPool : public Layer
{
  public:
    AvgPool(std::string name, int kernel, int stride);

    LayerKind kind() const override { return LayerKind::Pool; }
    Shape outputShape(const Shape& in) const override;
    LayerProfile profile(const Shape& in) const override;

    int kernel() const { return kernel_; }
    int stride() const { return stride_; }

    void forwardInto(const float* in, const Shape& inShape, float* out,
                     ForwardScratch& scratch,
                     const KernelContext& ctx) const override;

  protected:
    Tensor forwardImpl(const Tensor& in,
                       const KernelContext& ctx) const override;

  private:
    int kernel_;
    int stride_;
};

/**
 * Channel-wise softmax over a (C, 1, 1) or flattened input -- the
 * classifier head normalization (YOLO applies it to class scores).
 */
class Softmax : public Layer
{
  public:
    explicit Softmax(std::string name);

    LayerKind kind() const override { return LayerKind::Activation; }
    Shape outputShape(const Shape& in) const override { return in; }
    LayerProfile profile(const Shape& in) const override;

    void forwardInto(const float* in, const Shape& inShape, float* out,
                     ForwardScratch& scratch,
                     const KernelContext& ctx) const override;

  protected:
    Tensor forwardImpl(const Tensor& in,
                       const KernelContext& ctx) const override;
};

/** Pointwise activation: ReLU or LeakyReLU(slope). */
class Activation : public Layer
{
  public:
    /** @param leakySlope 0 for plain ReLU, e.g.\ 0.1 for YOLO's leaky. */
    Activation(std::string name, float leakySlope);

    LayerKind kind() const override { return LayerKind::Activation; }
    Shape outputShape(const Shape& in) const override { return in; }
    LayerProfile profile(const Shape& in) const override;

    float leakySlope() const { return leakySlope_; }

    void forwardInto(const float* in, const Shape& inShape, float* out,
                     ForwardScratch& scratch,
                     const KernelContext& ctx) const override;

  protected:
    Tensor forwardImpl(const Tensor& in,
                       const KernelContext& ctx) const override;

  private:
    float leakySlope_;
};

/**
 * Fully connected layer; flattens its input implicitly. The GOTURN-style
 * tracker's 4096-wide FC stack dominates its parameter footprint, which
 * is why the paper maps TRA to the EIE-style FC ASIC.
 */
class FullyConnected : public Layer
{
  public:
    FullyConnected(std::string name, int inFeatures, int outFeatures);

    LayerKind kind() const override { return LayerKind::FullyConnected; }
    Shape outputShape(const Shape& in) const override;
    LayerProfile profile(const Shape& in) const override;

    int inFeatures() const { return inFeatures_; }
    int outFeatures() const { return outFeatures_; }

    std::vector<float>& weights() { return weights_; }
    const std::vector<float>& weights() const { return weights_; }
    std::vector<float>& bias() { return bias_; }
    const std::vector<float>& bias() const { return bias_; }

    /**
     * Fold a following ReLU/LeakyReLU into the output pass after the
     * GEMV (see Conv2D::fuseActivation; same bitwise-identity
     * argument). Renames the layer "<name>+act".
     */
    void fuseActivation(float leakySlope);
    bool hasFusedActivation() const { return fusedAct_; }
    float fusedSlope() const { return fusedSlope_; }

    void forwardInto(const float* in, const Shape& inShape, float* out,
                     ForwardScratch& scratch,
                     const KernelContext& ctx) const override;

  protected:
    Tensor forwardImpl(const Tensor& in,
                       const KernelContext& ctx) const override;

  private:
    int inFeatures_;
    int outFeatures_;
    bool fusedAct_ = false;
    float fusedSlope_ = 0.0f;
    std::vector<float> weights_; ///< out x in, row-major.
    std::vector<float> bias_;    ///< out.
};

} // namespace ad::nn

#endif // AD_NN_LAYERS_HH
