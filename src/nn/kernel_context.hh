/**
 * @file
 * Execution context for the NN kernel layer: which ThreadPool (if any)
 * a kernel may shard onto and how many threads it may occupy. The
 * context is threaded through Network/Layer::forward so the DET, TRA
 * and LOC engines opt into multicore kernels with one config knob
 * (`nn.threads`) while every existing single-threaded call site keeps
 * its exact old behavior and, by the parallelFor determinism contract,
 * its exact old numerics.
 */

#ifndef AD_NN_KERNEL_CONTEXT_HH
#define AD_NN_KERNEL_CONTEXT_HH

#include <cstddef>
#include <functional>

namespace ad {
class ThreadPool;
}

namespace ad::nn {

/**
 * Kernel execution context. Default-constructed means serial -- the
 * exact pre-parallel behavior, bit for bit.
 */
struct KernelContext
{
    ThreadPool* pool = nullptr;   ///< null = serial execution.
    std::size_t maxThreads = 1;   ///< cap on concurrent shards.

    /** True when kernels may actually fan out. */
    bool parallel() const { return pool != nullptr && maxThreads > 1; }

    /** The serial context (also what default construction yields). */
    static const KernelContext& serial();
};

/**
 * Resolve an `nn.threads`-style request: values <= 0 mean "hardware
 * concurrency" (the knob's default), anything else passes through.
 */
int resolveKernelThreads(int requested);

/**
 * Context for the given thread count, backed by the process-wide
 * shared worker pool (common/parallel_for.hh). resolveKernelThreads is
 * applied first; a resolved count of 1 yields the serial context.
 */
KernelContext kernelContext(int threads);

/**
 * parallelFor over [begin, end) under the context's pool and thread
 * cap; inline when the context is serial. Same determinism contract as
 * ad::parallelFor.
 */
void kernelParallelFor(
    const KernelContext& ctx, std::size_t begin, std::size_t end,
    std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn);

} // namespace ad::nn

#endif // AD_NN_KERNEL_CONTEXT_HH
