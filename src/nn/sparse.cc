#include "nn/sparse.hh"

#include <cmath>

#include "common/logging.hh"

namespace ad::nn {

SparseFullyConnected::SparseFullyConnected(std::string name,
                                           const FullyConnected& dense,
                                           float threshold)
    : Layer(std::move(name)), inFeatures_(dense.inFeatures()),
      outFeatures_(dense.outFeatures()), bias_(dense.bias())
{
    if (threshold < 0)
        fatal("SparseFullyConnected: threshold must be non-negative");
    const auto& w = dense.weights();
    rowPtr_.reserve(outFeatures_ + 1);
    rowPtr_.push_back(0);
    for (int r = 0; r < outFeatures_; ++r) {
        const float* row =
            w.data() + static_cast<std::size_t>(r) * inFeatures_;
        for (int c = 0; c < inFeatures_; ++c) {
            if (std::fabs(row[c]) > threshold) {
                values_.push_back(row[c]);
                cols_.push_back(static_cast<std::uint32_t>(c));
            }
        }
        rowPtr_.push_back(static_cast<std::uint32_t>(values_.size()));
    }
}

Shape
SparseFullyConnected::outputShape(const Shape& in) const
{
    if (static_cast<int>(in.elements()) != inFeatures_)
        panic("SparseFullyConnected ", name(), ": expected ",
              inFeatures_, " inputs, got ", in.elements());
    return {outFeatures_, 1, 1};
}

Tensor
SparseFullyConnected::forwardImpl(const Tensor& in,
                                  const KernelContext& ctx) const
{
    outputShape({in.channels(), in.height(), in.width()});
    Tensor out(outFeatures_, 1, 1);
    const float* x = in.data();
    float* y = out.data();
    // CSR rows write disjoint outputs and each row reduces in index
    // order, so sharding over rows keeps results bitwise-serial.
    kernelParallelFor(
        ctx, 0, static_cast<std::size_t>(outFeatures_), 64,
        [&](std::size_t lo, std::size_t hi) {
            for (std::size_t r = lo; r < hi; ++r) {
                float acc = bias_[r];
                const std::uint32_t end = rowPtr_[r + 1];
                for (std::uint32_t i = rowPtr_[r]; i < end; ++i)
                    acc += values_[i] * x[cols_[i]];
                y[r] = acc;
            }
        });
    return out;
}

LayerProfile
SparseFullyConnected::profile(const Shape& in) const
{
    const Shape out = outputShape(in);
    LayerProfile p;
    p.name = name();
    p.kind = kind();
    p.flops = 2ULL * values_.size();
    p.weightBytes = compressedBytes();
    p.inputBytes = in.bytes();
    p.outputBytes = out.bytes();
    return p;
}

double
SparseFullyConnected::density() const
{
    const double total =
        static_cast<double>(inFeatures_) * outFeatures_;
    return total > 0 ? values_.size() / total : 0.0;
}

std::uint64_t
SparseFullyConnected::compressedBytes() const
{
    return values_.size() * (sizeof(float) + sizeof(std::uint32_t)) +
           rowPtr_.size() * sizeof(std::uint32_t) +
           bias_.size() * sizeof(float);
}

double
pruningError(const FullyConnected& dense, float threshold,
             const Tensor& probe)
{
    const Tensor exact = dense.forward(probe);
    const SparseFullyConnected sparse("probe", dense, threshold);
    const Tensor approx = sparse.forward(probe);
    double num = 0;
    double den = 0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
        const double d = exact.data()[i] - approx.data()[i];
        num += d * d;
        den += exact.data()[i] * static_cast<double>(exact.data()[i]);
    }
    if (den <= 0)
        return num > 0 ? 1.0 : 0.0;
    return std::sqrt(num / den);
}

} // namespace ad::nn
