/**
 * @file
 * Map-service tile model and compressed wire codec.
 *
 * The paper's storage constraint (Section 2.4.3: a US-scale prior map
 * is ~41 TB) means tiles move -- vehicle to disk, server to vehicle --
 * far more often than they are rebuilt, so the map service ships them
 * in a compressed encoding. The codec here exploits the structure
 * appearance gives a tile: landmarks mapped under the same conditions
 * share most of their descriptor bits with a per-tile *anchor*, so
 * each descriptor is stored as a sparse byte-level delta from the
 * anchor (a 32-bit presence mask plus only the differing bytes).
 * Round-trip is exact by construction -- decode(encode(t)) == t down
 * to every descriptor bit -- which the codec tests pin; compression is
 * a size win, never an accuracy trade.
 *
 * Versioning lives beside the payload: every tile carries a
 * monotonically increasing version stamp, bumped by the server each
 * time a crowd-sourced delta merge touches the tile, so readers can
 * tell a stale cached copy from the current epoch.
 */

#ifndef AD_MAPSERVE_TILE_CODEC_HH
#define AD_MAPSERVE_TILE_CODEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "vision/brief.hh"

namespace ad::mapserve {

/** Integer tile coordinate in the world tile grid. */
struct TileId
{
    std::int32_t x = 0; ///< tile column (floor(posX / tileSize)).
    std::int32_t y = 0; ///< tile row (floor(posY / tileSize)).

    /** Lexicographic (x, y) order for map keys. */
    bool operator<(const TileId& o) const
    {
        return x != o.x ? x < o.x : y < o.y;
    }

    /** Exact coordinate equality. */
    bool operator==(const TileId&) const = default;

    /** Canonical "x,y" rendering (version log, test diagnostics). */
    std::string toString() const;
};

/** One landmark inside a tile, positions relative to the tile origin. */
struct TilePoint
{
    std::int32_t id = 0;  ///< landmark id, unique within the tile.
    float dx = 0.0f;      ///< x offset from the tile origin (m).
    float dy = 0.0f;      ///< y offset from the tile origin (m).
    float height = 0.0f;  ///< feature height above ground (m).
    vision::Descriptor desc; ///< 256-bit rBRIEF descriptor.

    /** Field-wise equality, descriptor bits included. */
    bool operator==(const TilePoint&) const = default;
};

/** One prior-map tile: identity, version stamp and landmark payload. */
struct Tile
{
    TileId id;                ///< grid coordinate.
    std::uint64_t version = 0; ///< merge generation (server-stamped).
    /**
     * Appearance stamp: the illumination state the tile's descriptors
     * were captured under (0 = mapping-time baseline). Crowd-sourced
     * delta updates refresh descriptors toward the live appearance
     * and move this stamp with them.
     */
    float appearance = 0.0f;
    std::vector<TilePoint> points; ///< landmarks, ascending id.

    /** Field-wise equality over identity, stamps and payload. */
    bool operator==(const Tile&) const = default;
};

/**
 * Encode a tile's payload (appearance + points) into the compressed
 * wire format. Identity and version travel outside the payload (the
 * server stamps them on the response). Descriptors are packed as
 * sparse byte deltas against the first point's descriptor (the
 * anchor); a tile with zero points encodes to a bare header.
 */
std::vector<std::uint8_t> encodeTile(const Tile& tile);

/**
 * Decode a payload produced by encodeTile. Exact inverse: the
 * returned tile compares equal (bitwise descriptors included) to the
 * encoded one with `id` and `version` filled from the arguments.
 * Fatal on a truncated or corrupt buffer -- the transport is assumed
 * reliable; corruption is a bug, not an operating condition.
 */
Tile decodeTile(TileId id, std::uint64_t version,
                const std::vector<std::uint8_t>& bytes);

/**
 * Uncompressed payload size of a tile (the bytes a raw fixed-width
 * encoding would ship: 48 per point plus the header). The bench's
 * compression-ratio figure is rawTileBytes / encoded size.
 */
std::size_t rawTileBytes(const Tile& tile);

/**
 * Order-sensitive FNV-1a checksum over the tile's canonical payload
 * (version, appearance, every point field and descriptor word). Two
 * tiles agree on the checksum iff a run produced identical content --
 * the version-stamp log embeds it so log equality certifies merged
 * *content*, not just merge counts.
 */
std::uint64_t tileChecksum(const Tile& tile);

/**
 * One crowd-sourced descriptor refresh: a vehicle re-observed a
 * mapped landmark under the current appearance and pushes the fresh
 * descriptor. The (vehicle, seq) pair orders updates from one
 * vehicle; the server's merge sorts on (tile, point, tMs, vehicle,
 * seq) so the merged result is independent of arrival order.
 */
struct DeltaUpdate
{
    TileId tile;              ///< tile the landmark lives in.
    std::int32_t pointId = 0; ///< landmark id within the tile.
    std::int32_t vehicle = -1; ///< reporting vehicle (stream id).
    std::int64_t seq = 0;     ///< per-vehicle push sequence number.
    double tMs = 0.0;         ///< observation time (virtual ms).
    float appearance = 0.0f;  ///< appearance the refresh was seen at.
    vision::Descriptor desc;  ///< the refreshed descriptor.
};

} // namespace ad::mapserve

#endif // AD_MAPSERVE_TILE_CODEC_HH
