/**
 * @file
 * Deterministic synthetic tile world for the map service.
 *
 * The map service needs a country-scale prior map to serve without
 * carrying one: WorldModel materializes any tile of a toroidal
 * `worldTiles` x `worldTiles` grid on demand from pure hash functions
 * of (seed, tile, point), so a 4096-tile world costs nothing until a
 * vehicle drives into it and two processes with the same seed see the
 * identical map -- the property every determinism bar in
 * BENCH_map.json leans on.
 *
 * Appearance is the second axis: the world carries an *illumination
 * state* `a` in [0, 1], and each landmark descriptor owns `driftBits`
 * appearance-sensitive bit slots, each with a hash-derived threshold
 * u_k -- slot k is flipped iff u_k < a. Two observations of the same
 * landmark at appearances a1 < a2 therefore differ in exactly the
 * slots whose thresholds fall in (a1, a2], making the Hamming error
 * between a stored tile and the live world proportional to the
 * appearance gap -- the drift signal the crowd-sourced delta updates
 * exist to close.
 */

#ifndef AD_MAPSERVE_WORLD_HH
#define AD_MAPSERVE_WORLD_HH

#include <cstdint>

#include "mapserve/tile_codec.hh"

namespace ad::mapserve {

/** Synthetic-world knobs (`mapserve.world-*`, `mapserve.tile-size-m`). */
struct WorldParams
{
    int worldTiles = 64;      ///< grid edge in tiles (toroidal).
    double tileSizeM = 50.0;  ///< tile edge length (m).
    int pointsPerTile = 24;   ///< landmarks per tile.
    /**
     * Appearance-sensitive bit slots per descriptor. Bounds the
     * Hamming error illumination drift can induce and therefore the
     * error the update path can repair.
     */
    int driftBits = 96;
    std::uint64_t seed = 41;  ///< world generation seed.
};

/**
 * The deterministic world: every query is a pure function of the
 * seed, so tiles need no storage and no two calls can disagree.
 */
class WorldModel
{
  public:
    /** Validates and captures the parameters (fatal on nonsense). */
    explicit WorldModel(const WorldParams& params);

    /** The generation parameters. */
    const WorldParams& params() const { return params_; }

    /** World edge length in meters (worldTiles x tileSizeM). */
    double extentM() const;

    /** Total tiles in the world grid. */
    std::int64_t tileCount() const;

    /** Tile under a world position, wrapping into the torus. */
    TileId tileFor(double x, double y) const;

    /** Wrap a coordinate into [0, extentM). */
    double wrap(double x) const;

    /**
     * Materialize a tile as captured at illumination `appearance`:
     * landmark ids, positions and heights are appearance-invariant;
     * descriptors carry the drift mask of `appearance`. Version is 0
     * (the server stamps versions, not the world).
     */
    Tile tileAt(TileId id, float appearance) const;

    /**
     * The descriptor a vehicle observes live for landmark
     * `pointIndex` of `id` at illumination `appearance`.
     */
    vision::Descriptor observed(TileId id, int pointIndex,
                                float appearance) const;

    /**
     * Mean Hamming distance (bits) between a stored tile's
     * descriptors and live observations at `appearance` -- the
     * localization-relevant appearance error of the stored copy.
     * Points are matched by index; 0 for an empty tile.
     */
    double meanHammingBits(const Tile& tile, float appearance) const;

  private:
    WorldParams params_;
};

} // namespace ad::mapserve

#endif // AD_MAPSERVE_WORLD_HH
