#include "mapserve/sim.hh"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/parallel_for.hh"
#include "obs/flight.hh"

namespace ad::mapserve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** SplitMix64 finalizer (vehicle placement hashing). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

double
uniformOf(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void
appendLine(std::string& out, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

void
appendLine(std::string& out, const char* fmt, ...)
{
    char line[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(line, sizeof(line), fmt, args);
    va_end(args);
    out += line;
}

void
appendSummary(std::string& out, const char* name,
              const LatencySummary& s)
{
    appendLine(out,
               "%s count=%zu mean=%.6f p50=%.6f p99=%.6f "
               "p9999=%.6f\n",
               name, s.count, s.mean, s.p50, s.p99, s.p9999);
}

} // namespace

MapServeSimParams
MapServeSimParams::fromConfig(const Config& cfg)
{
    MapServeSimParams p;
    p.world.worldTiles =
        cfg.getInt("mapserve.world-tiles", p.world.worldTiles);
    p.world.tileSizeM =
        cfg.getDouble("mapserve.tile-size-m", p.world.tileSizeM);
    p.world.pointsPerTile = cfg.getInt("mapserve.points-per-tile",
                                       p.world.pointsPerTile);
    p.world.driftBits =
        cfg.getInt("mapserve.drift-bits", p.world.driftBits);
    p.world.seed = static_cast<std::uint64_t>(cfg.getInt(
        "mapserve.world-seed", static_cast<int>(p.world.seed)));
    p.server = TileServerParams::fromConfig(cfg);
    p.client = MapClientParams::fromConfig(cfg);
    p.driftPerMin =
        cfg.getDouble("mapserve.drift-per-min", p.driftPerMin);
    p.updateThresholdBits = cfg.getDouble(
        "mapserve.update-threshold-bits", p.updateThresholdBits);
    p.updates = cfg.getBool("mapserve.updates", p.updates);
    p.warmupMs = cfg.getDouble("mapserve.warmup-ms", p.warmupMs);
    p.decodeThreads =
        cfg.getInt("mapserve.decode-threads", p.decodeThreads);
    p.seed = static_cast<std::uint64_t>(
        cfg.getInt("mapserve.seed", static_cast<int>(p.seed)));
    return p;
}

std::vector<std::string>
MapServeSimParams::knownConfigKeys()
{
    return {"mapserve.world-tiles",
            "mapserve.tile-size-m",
            "mapserve.points-per-tile",
            "mapserve.drift-bits",
            "mapserve.world-seed",
            "mapserve.drift-per-min",
            "mapserve.update-threshold-bits",
            "mapserve.updates",
            "mapserve.warmup-ms",
            "mapserve.decode-threads",
            "mapserve.seed"};
}

std::string
MapServeReport::summaryString() const
{
    std::string out;
    appendLine(out,
               "vehicles=%d frames=%lld warm=%lld stalled=%lld "
               "coasted=%lld steady=%lld cold=%lld\n",
               vehicles, static_cast<long long>(frames),
               static_cast<long long>(framesWarm),
               static_cast<long long>(framesStalled),
               static_cast<long long>(framesCoasted),
               static_cast<long long>(steadyStalls),
               static_cast<long long>(coldStarts));
    appendLine(out,
               "prefetch issued=%lld shed=%lld late=%lld "
               "stale reads=%lld refreshes=%lld pushes=%lld\n",
               static_cast<long long>(prefetchIssued),
               static_cast<long long>(prefetchShed),
               static_cast<long long>(prefetchLate),
               static_cast<long long>(staleReads),
               static_cast<long long>(staleRefreshes),
               static_cast<long long>(updatesPushed));
    appendLine(out,
               "server submitted=%lld served=%lld batches=%lld "
               "shed=%lld evicted=%lld hits=%lld misses=%lld\n",
               static_cast<long long>(server.submitted),
               static_cast<long long>(server.served),
               static_cast<long long>(server.batches),
               static_cast<long long>(server.admissionShed),
               static_cast<long long>(server.queueEvictions),
               static_cast<long long>(server.cacheHits),
               static_cast<long long>(server.cacheMisses));
    appendLine(out,
               "merge epochs=%lld tiles=%lld updates=%lld "
               "bytes=%lld raw=%lld ratio=%.6f\n",
               static_cast<long long>(server.mergeEpochs),
               static_cast<long long>(server.tilesMerged),
               static_cast<long long>(server.updatesMerged),
               static_cast<long long>(server.bytesServed),
               static_cast<long long>(server.rawBytes),
               compressionRatio);
    appendSummary(out, "fetch", fetchLatency);
    appendSummary(out, "demand", demandLatency);
    appendSummary(out, "stall", stallMs);
    appendLine(out, "err peak=%.4f final=%.4f epochs=", peakErrBits,
               finalErrBits);
    for (const double e : epochErrBits)
        appendLine(out, "%.4f,", e);
    appendLine(out, "\nduration=%.3f hitRate=%.6f\n", durationMs,
               prefetchHitRate);
    return out;
}

std::string
MapServeReport::toString() const
{
    std::string out;
    appendLine(out,
               "map-serve: %d vehicles, %lld frames over %.0f ms\n",
               vehicles, static_cast<long long>(frames), durationMs);
    appendLine(out,
               "  frames: %lld warm (%.2f%%), %lld stalled "
               "(%lld cold starts, %lld steady), %lld coasted\n",
               static_cast<long long>(framesWarm),
               100.0 * prefetchHitRate,
               static_cast<long long>(framesStalled),
               static_cast<long long>(coldStarts),
               static_cast<long long>(steadyStalls),
               static_cast<long long>(framesCoasted));
    appendLine(out,
               "  prefetch: %lld issued, %lld shed, %lld late; "
               "stale: %lld reads, %lld refreshes\n",
               static_cast<long long>(prefetchIssued),
               static_cast<long long>(prefetchShed),
               static_cast<long long>(prefetchLate),
               static_cast<long long>(staleReads),
               static_cast<long long>(staleRefreshes));
    appendLine(out,
               "  server: %lld served / %lld batches, cache "
               "%lld/%lld hits, %.2fx compression\n",
               static_cast<long long>(server.served),
               static_cast<long long>(server.batches),
               static_cast<long long>(server.cacheHits),
               static_cast<long long>(server.cacheHits +
                                      server.cacheMisses),
               compressionRatio);
    appendLine(out,
               "  updates: %lld pushed, %lld merged over %lld "
               "epochs (%lld tile versions)\n",
               static_cast<long long>(updatesPushed),
               static_cast<long long>(server.updatesMerged),
               static_cast<long long>(server.mergeEpochs),
               static_cast<long long>(server.tilesMerged));
    out += "  fetch   " + fetchLatency.toString();
    out += "\n  demand  " + demandLatency.toString();
    out += "\n  stall   " + stallMs.toString();
    appendLine(out, "\n  appearance err: peak %.2f bits, final %.2f "
                    "bits over %zu epochs\n",
               peakErrBits, finalErrBits, epochErrBits.size());
    return out;
}

MapServeSim::MapServeSim(const MapServeSimParams& params,
                         const fleet::ScenarioLoadGen& load)
    : params_(params), load_(load), world_(params.world),
      server_(params.server, world_)
{
    const int vehicles = load_.params().streams;
    if (vehicles < 1)
        fatal("MapServeSim: need at least one vehicle");
    clients_.reserve(static_cast<std::size_t>(vehicles));
    x0_.resize(static_cast<std::size_t>(vehicles));
    y0_.resize(static_cast<std::size_t>(vehicles));
    speed_.resize(static_cast<std::size_t>(vehicles));
    stalledUntil_.assign(static_cast<std::size_t>(vehicles), 0.0);
    stallStartMs_.assign(static_cast<std::size_t>(vehicles), 0.0);
    hadWarmFrame_.assign(static_cast<std::size_t>(vehicles), false);
    reqSeq_.assign(static_cast<std::size_t>(vehicles), 0);
    updSeq_.assign(static_cast<std::size_t>(vehicles), 0);
    for (int v = 0; v < vehicles; ++v) {
        clients_.emplace_back(params_.client);
        // Lane placement: a hash of (seed, vehicle) -- independent
        // of the tape and of every other vehicle.
        const std::uint64_t h =
            mix64(params_.seed ^
                  (0x9e3779b97f4a7c15ull *
                   (static_cast<std::uint64_t>(v) + 1)));
        x0_[static_cast<std::size_t>(v)] =
            uniformOf(h) * world_.extentM();
        y0_[static_cast<std::size_t>(v)] =
            uniformOf(mix64(h)) * world_.extentM();
        speed_[static_cast<std::size_t>(v)] = load_.speedMps(v);
    }
    if (params_.decodeThreads > 0)
        decodePool_ = std::make_unique<ThreadPool>(
            static_cast<std::size_t>(params_.decodeThreads));
    pendingDispatchMs_ = kInf;
    report_.vehicles = vehicles;
}

double
MapServeSim::appearanceAt(double now) const
{
    return std::min(1.0, params_.driftPerMin * now / 60000.0);
}

MapServeReport
MapServeSim::run()
{
    const auto& tape = load_.schedule();
    for (const fleet::ArrivalEvent& a : tape)
        events_.push(
            Event{a.tMs, Event::Kind::Arrival, a.stream, a.seq});
    if (!tape.empty()) {
        const double lastMs = tape.back().tMs;
        std::int64_t k = 1;
        for (double t = params_.server.mergePeriodMs;
             t <= lastMs + params_.server.mergePeriodMs;
             t += params_.server.mergePeriodMs)
            events_.push(Event{t, Event::Kind::Merge, -1, k++});
    }

    while (!events_.empty()) {
        const Event ev = events_.top();
        events_.pop();
        lastEventMs_ = ev.timeMs;
        switch (ev.kind) {
        case Event::Kind::Merge:
            onMerge(ev.timeMs);
            break;
        case Event::Kind::BatchDone:
            onBatchDone(static_cast<std::size_t>(ev.seq), ev.timeMs);
            scheduleDispatch(ev.timeMs);
            break;
        case Event::Kind::Arrival:
            onArrival(ev.vehicle, ev.seq, ev.timeMs);
            scheduleDispatch(ev.timeMs);
            break;
        case Event::Kind::Dispatch: {
            pendingDispatchMs_ = kInf;
            auto batch = server_.dispatch(ev.timeMs);
            if (batch) {
                const auto index = inFlightBatches_.size();
                const double doneMs = batch->doneMs;
                inFlightBatches_.push_back(std::move(*batch));
                events_.push(
                    Event{doneMs, Event::Kind::BatchDone, -1,
                          static_cast<std::int64_t>(index)});
            }
            scheduleDispatch(ev.timeMs);
            break;
        }
        }
    }
    flushEpochError();

    report_.durationMs = lastEventMs_;
    report_.fetchLatency = fetchRec_.summary();
    report_.demandLatency = demandRec_.summary();
    report_.stallMs = stallRec_.summary();
    report_.server = server_.stats();
    for (const MapClient& c : clients_) {
        report_.clients.hits += c.stats().hits;
        report_.clients.evictions += c.stats().evictions;
        report_.clients.installs += c.stats().installs;
    }
    const std::int64_t looked =
        report_.framesWarm + report_.framesStalled;
    report_.prefetchHitRate =
        looked > 0 ? static_cast<double>(report_.framesWarm) /
                         static_cast<double>(looked)
                   : 0.0;
    report_.compressionRatio =
        report_.server.bytesServed > 0
            ? static_cast<double>(report_.server.rawBytes) /
                  static_cast<double>(report_.server.bytesServed)
            : 0.0;
    for (const double e : report_.epochErrBits)
        report_.peakErrBits = std::max(report_.peakErrBits, e);
    report_.finalErrBits = report_.epochErrBits.empty()
                               ? 0.0
                               : report_.epochErrBits.back();
    report_.versionLog = server_.versionLog();

    local_.counter("mapserve.frames")
        .add(static_cast<std::uint64_t>(report_.frames));
    local_.counter("mapserve.frames.stalled")
        .add(static_cast<std::uint64_t>(report_.framesStalled));
    local_.counter("mapserve.prefetch.issued")
        .add(static_cast<std::uint64_t>(report_.prefetchIssued));
    local_.counter("mapserve.prefetch.shed")
        .add(static_cast<std::uint64_t>(report_.prefetchShed));
    local_.counter("mapserve.updates.pushed")
        .add(static_cast<std::uint64_t>(report_.updatesPushed));
    local_.counter("mapserve.server.served")
        .add(static_cast<std::uint64_t>(report_.server.served));
    local_.counter("mapserve.server.cache-hits")
        .add(static_cast<std::uint64_t>(report_.server.cacheHits));
    local_.histogram("mapserve.fetch-ms").mergeFrom(fetchRec_);
    if (obs::MetricRegistry::instance().enabled())
        obs::MetricRegistry::instance().merge(local_);
    return report_;
}

void
MapServeSim::scheduleDispatch(double now)
{
    const double at = server_.nextDispatchMs(now);
    if (!(at < pendingDispatchMs_))
        return;
    pendingDispatchMs_ = at;
    events_.push(Event{at, Event::Kind::Dispatch, -1, 0});
}

void
MapServeSim::submitFetch(int v, TileId tile, bool prefetch,
                         double now, double deadlineMs)
{
    TileRequest request;
    request.vehicle = v;
    request.seq = reqSeq_[static_cast<std::size_t>(v)]++;
    request.tile = tile;
    request.prefetch = prefetch;
    request.arrivalMs = now;
    request.deadlineMs = deadlineMs;
    TileRequest evicted;
    bool hadEviction = false;
    const SubmitOutcome outcome =
        server_.submit(request, now, &evicted, &hadEviction);
    // A freshest-drop eviction silently removed an earlier request
    // of this vehicle: clear its in-flight mark so the tile can be
    // re-requested (the prefetch-miss fallback path).
    if (hadEviction)
        clients_[static_cast<std::size_t>(evicted.vehicle)]
            .clearInFlight(evicted.tile);
    if (outcome == SubmitOutcome::Queued) {
        clients_[static_cast<std::size_t>(v)].markInFlight(tile);
        if (prefetch)
            ++report_.prefetchIssued;
    } else if (prefetch) {
        ++report_.prefetchShed;
    }
}

void
MapServeSim::prefetchPath(int v, TileId current, double x,
                          double now)
{
    if (!params_.client.prefetch)
        return;
    const auto vi = static_cast<std::size_t>(v);
    MapClient& client = clients_[vi];
    // Warm every tile under the predicted path, not just the
    // endpoint: at high speed the horizon spans more than one
    // boundary and skipping the intermediate tile would stall
    // there. Half-tile steps cannot miss a crossing.
    const double aheadM =
        speed_[vi] * params_.client.horizonMs / 1000.0;
    const double step = params_.world.tileSizeM * 0.5;
    // Sample from the horizon endpoint downward so a horizon
    // shorter than one step still prefetches (the slowest vehicle
    // must not lose its lookahead to sampling granularity).
    for (double d = aheadM; d > 0.0; d -= step) {
        const TileId ahead = world_.tileFor(x + d, y0_[vi]);
        if (ahead == current || client.peek(ahead) != nullptr ||
            client.inFlight(ahead))
            continue;
        // Deadline: when the vehicle actually reaches the tile.
        const double needMs = now + d / speed_[vi] * 1000.0;
        submitFetch(v, ahead, /*prefetch=*/true, now, needMs);
    }
}

void
MapServeSim::pushRefresh(int v, TileId tile, float appearance,
                         double now)
{
    const int points = world_.params().pointsPerTile;
    for (int i = 0; i < points; ++i) {
        DeltaUpdate u;
        u.tile = tile;
        u.pointId = i;
        u.vehicle = v;
        u.seq = updSeq_[static_cast<std::size_t>(v)]++;
        u.tMs = now;
        u.appearance = appearance;
        u.desc = world_.observed(tile, i, appearance);
        server_.pushUpdate(u);
        ++report_.updatesPushed;
    }
    clients_[static_cast<std::size_t>(v)].notePushed(tile,
                                                    appearance);
}

void
MapServeSim::onArrival(int v, std::int64_t seq, double now)
{
    ++report_.frames;
    const auto vi = static_cast<std::size_t>(v);
    if (stalledUntil_[vi] > now) {
        ++report_.framesCoasted;
        return;
    }
    const double x =
        world_.wrap(x0_[vi] + speed_[vi] * now / 1000.0);
    const double y = y0_[vi];
    const float a = static_cast<float>(appearanceAt(now));
    const TileId tile = world_.tileFor(x, y);
    MapClient& client = clients_[vi];

    const Tile* entry = client.find(tile);
    if (entry != nullptr) {
        ++report_.framesWarm;
        hadWarmFrame_[vi] = true;
        // Staleness: the server merged a newer epoch of this tile.
        // The stale copy still localizes (bounded staleness) but a
        // background refresh brings the vehicle onto the new epoch.
        const std::uint64_t serverVersion = server_.tileVersion(tile);
        if (serverVersion > entry->version) {
            ++report_.staleReads;
            if (!client.inFlight(tile)) {
                submitFetch(v, tile, /*prefetch=*/true, now,
                            now + params_.client.horizonMs);
                ++report_.staleRefreshes;
            }
        }
        const double errBits = world_.meanHammingBits(*entry, a);
        epochErrSum_ += errBits;
        ++epochErrCount_;
        if (params_.updates &&
            errBits > params_.updateThresholdBits) {
            // One refresh burst per appearance step: re-push only
            // once live appearance has moved another threshold's
            // worth past the last report.
            const float last = client.lastPushed(tile);
            const double stepGap =
                params_.updateThresholdBits /
                static_cast<double>(world_.params().driftBits);
            if (last < 0.0f ||
                static_cast<double>(a - last) > stepGap)
                pushRefresh(v, tile, a, now);
        }
    } else {
        // Cold tile: localization blocks on a demand fetch and the
        // vehicle coasts until it lands.
        ++report_.framesStalled;
        // Steady-state only after the warmup window and the
        // vehicle's first warm frame: the first acquisition -- and
        // any crossing still congested by the fleet-wide cold
        // start -- is the cold-start transient.
        if (hadWarmFrame_[vi] && now >= params_.warmupMs)
            ++report_.steadyStalls;
        else
            ++report_.coldStarts;
        if (client.inFlight(tile))
            ++report_.prefetchLate;
        auto& flight = obs::FlightRecorder::instance();
        if (flight.enabled())
            flight.recordTileStall(v, seq, now, tile.x, tile.y);
        stallStartMs_[vi] = now;
        stalledUntil_[vi] = kInf;
        submitFetch(v, tile, /*prefetch=*/false, now, now);
        // The vehicle keeps moving while it coasts on the demand
        // fetch: warm the path ahead in the same breath so a
        // boundary crossed during the stall lands on a tile that
        // rode the same batch instead of stalling again.
        prefetchPath(v, tile, x, now);
        return;
    }

    if (params_.client.prefetch)
        prefetchPath(v, tile, x, now);
}

void
MapServeSim::onBatchDone(std::size_t index, double now)
{
    BatchResult& batch = inFlightBatches_[index];
    const std::size_t n = batch.served.size();
    std::vector<Tile> decoded(n);
    const auto decodeRange = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            decoded[i] = decodeTile(batch.served[i].request.tile,
                                    batch.served[i].version,
                                    batch.served[i].payload);
    };
    if (decodePool_ != nullptr && n > 1)
        parallelFor(decodePool_.get(), 0, n, 1, decodeRange);
    else
        decodeRange(0, n);

    for (std::size_t i = 0; i < n; ++i) {
        const ServedTile& served = batch.served[i];
        const int v = served.request.vehicle;
        const auto vi = static_cast<std::size_t>(v);
        const double latency = now - served.request.arrivalMs;
        fetchRec_.record(latency);
        if (!served.request.prefetch)
            demandRec_.record(latency);
        clients_[vi].install(std::move(decoded[i]));
        if (!served.request.prefetch && stalledUntil_[vi] > now) {
            stalledUntil_[vi] = now;
            stallRec_.record(now - stallStartMs_[vi]);
        }
    }
    batch = BatchResult{}; // free served payloads eagerly.
}

void
MapServeSim::onMerge(double now)
{
    flushEpochError();
    server_.merge(now);
}

void
MapServeSim::flushEpochError()
{
    if (epochErrCount_ > 0)
        report_.epochErrBits.push_back(
            epochErrSum_ / static_cast<double>(epochErrCount_));
    epochErrSum_ = 0.0;
    epochErrCount_ = 0;
}

} // namespace ad::mapserve
