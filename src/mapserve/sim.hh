/**
 * @file
 * Fleet / map-service co-simulation on one virtual clock.
 *
 * MapServeSim closes the loop the tentpole asks for: the fleet
 * loadgen's arrival tape drives per-vehicle localization frames,
 * each frame needs the prior-map tile under the vehicle's pose, and
 * the shared TileServer is the only place tiles come from. One
 * discrete-event loop orders everything -- frame arrivals, backend
 * batch completions, dispatch checks and merge epochs -- with a
 * total (time, kind, vehicle, seq) order, so a run is a pure
 * function of its seeds: the triple-run determinism bar in
 * BENCH_map.json compares this sim's canonical summary and the
 * server's version-stamp log bit for bit.
 *
 * Per frame the vehicle advances along its lane at its tape speed,
 * looks up the tile under its pose in the on-board MapClient cache
 * and either localizes (warm) or *stalls* (cold): the frame blocks
 * on a demand fetch and subsequent frames coast until it lands --
 * exactly the cold-tile LOC stall the pose-driven prefetcher
 * exists to eliminate. The prefetcher extrapolates the pose
 * `horizonMs` ahead along the velocity vector and warms the
 * predicted tile before the vehicle arrives; steady-state stalls
 * (after each vehicle's unavoidable first acquisition) are the
 * headline zero-bar.
 *
 * Appearance drift closes the update loop: the world's illumination
 * state ramps with virtual time, warm-tile localization error grows
 * with the gap between stored and live appearance, and vehicles
 * crossing an error threshold push crowd-sourced descriptor
 * refreshes that the server merges at epoch boundaries. Stale
 * readers notice the version bump on their next hit and re-fetch in
 * the background -- error converges instead of ratcheting.
 *
 * Batch decode optionally shards across a thread pool
 * (`mapserve.decode-threads`): decodeTile writes disjoint
 * preallocated slots, installs replay serially in batch order, so
 * the parallel path is bitwise-identical to the serial one at any
 * thread count -- the test_mapserve TSan case.
 */

#ifndef AD_MAPSERVE_SIM_HH
#define AD_MAPSERVE_SIM_HH

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "fleet/loadgen.hh"
#include "mapserve/client.hh"
#include "mapserve/server.hh"
#include "mapserve/world.hh"
#include "obs/metrics.hh"

namespace ad::mapserve {

/** Co-simulation knobs (`mapserve.*` minus server/client scopes). */
struct MapServeSimParams
{
    WorldParams world;        ///< synthetic world generation.
    TileServerParams server;  ///< shared map-server knobs.
    MapClientParams client;   ///< per-vehicle client knobs.
    /**
     * Illumination drift rate: appearance units per virtual minute
     * (clamped at 1.0). 0 freezes appearance -- no update traffic.
     */
    double driftPerMin = 0.0;
    /**
     * Mean per-tile Hamming error (bits) above which a vehicle
     * pushes crowd-sourced descriptor refreshes for the tile.
     */
    double updateThresholdBits = 6.0;
    bool updates = true;      ///< enable the crowd-sourced push path.
    /**
     * Steady-state accounting begins here: a stall before this
     * virtual time (or before the vehicle's first warm frame)
     * counts as cold-start transient, not steady-state failure --
     * at fleet scale the t=0 joint cold start of every vehicle
     * congests the backend in a way no deployment ever sees.
     */
    double warmupMs = 5000.0;
    /**
     * Batch-decode worker threads (0 = decode serially on the event
     * loop). Any value yields bitwise-identical results.
     */
    int decodeThreads = 0;
    std::uint64_t seed = 47;  ///< vehicle placement seed.

    /** Read every sim-scope `mapserve.*` knob (defaults from *this);
        nested world/server/client params are read by their own
        fromConfig. */
    static MapServeSimParams fromConfig(const Config& cfg);

    /** Sim-scope key registry (docs/CONFIG.md gate). */
    static std::vector<std::string> knownConfigKeys();
};

/** Aggregate outcome of one co-simulation run. */
struct MapServeReport
{
    int vehicles = 0;             ///< streams in the tape.
    std::int64_t frames = 0;      ///< localization frames arrived.
    std::int64_t framesWarm = 0;  ///< tile cached: localized.
    std::int64_t framesStalled = 0; ///< cold tile: blocked on fetch.
    std::int64_t framesCoasted = 0; ///< arrived while stalled.
    /** Stalls after the vehicle's first *warm* frame, i.e.\ in
        steady-state operation -- the prefetch bar drives this to
        zero. */
    std::int64_t steadyStalls = 0;
    /** Cold-start transient: the unavoidable first acquisition plus
        any boundary crossed while still draining it. */
    std::int64_t coldStarts = 0;
    std::int64_t prefetchIssued = 0; ///< speculative fetches queued.
    std::int64_t prefetchShed = 0;   ///< admission-shed prefetches.
    /** Stalls with the tile's prefetch already on the wire (the
        prefetch was right but late). */
    std::int64_t prefetchLate = 0;
    std::int64_t staleReads = 0;  ///< warm hits older than the server.
    std::int64_t staleRefreshes = 0; ///< background re-fetches issued.
    std::int64_t updatesPushed = 0;  ///< descriptor refreshes pushed.
    LatencySummary fetchLatency;  ///< submit -> delivery, all fetches.
    LatencySummary demandLatency; ///< demand fetches only.
    LatencySummary stallMs;       ///< stall begin -> unblock.
    double durationMs = 0.0;      ///< virtual span of the run.
    double prefetchHitRate = 0.0; ///< warm / (warm + stalled).
    double compressionRatio = 0.0; ///< raw bytes / wire bytes.
    /** Mean warm-tile appearance error per merge epoch (bits) --
        the convergence curve under drift. */
    std::vector<double> epochErrBits;
    double peakErrBits = 0.0;     ///< worst epoch mean error.
    double finalErrBits = 0.0;    ///< last epoch mean error.
    TileServerStats server;       ///< server-side counters.
    MapClientStats clients;       ///< client counters, fleet-summed.
    std::string versionLog;       ///< the server's merge log.

    /** Canonical machine-readable digest: every counter and latency
        quantile in fixed formatting. Two runs are *the same run*
        iff their summary strings and version logs match bytewise --
        the determinism bars compare exactly these. */
    std::string summaryString() const;

    /** Multi-line human-readable summary. */
    std::string toString() const;
};

/**
 * The co-simulation. Construction captures the tape; run() plays it
 * to quiescence and builds the report. One-shot: construct a fresh
 * sim per run.
 */
class MapServeSim
{
  public:
    /** @param load arrival tape + per-stream speeds (outlives us). */
    MapServeSim(const MapServeSimParams& params,
                const fleet::ScenarioLoadGen& load);

    /** Play the full tape to quiescence and build the report. */
    MapServeReport run();

    /** The server (post-run inspection in tests). */
    const TileServer& server() const { return server_; }

    /** Vehicle `v`'s client (post-run inspection in tests). */
    const MapClient& client(int v) const
    {
        return clients_[static_cast<std::size_t>(v)];
    }

  private:
    /** One discrete event, ordered by (time, kind, vehicle, seq). */
    struct Event
    {
        enum class Kind
        {
            Merge = 0,      ///< delta-merge epoch boundary.
            BatchDone = 1,  ///< backend batch delivery.
            Arrival = 2,    ///< localization frame.
            Dispatch = 3    ///< batch-formation check.
        };

        double timeMs = 0.0;
        Kind kind = Kind::Arrival;
        int vehicle = -1;
        std::int64_t seq = -1; ///< frame seq / in-flight batch index.

        bool
        operator>(const Event& o) const
        {
            if (timeMs != o.timeMs)
                return timeMs > o.timeMs;
            if (kind != o.kind)
                return static_cast<int>(kind) >
                       static_cast<int>(o.kind);
            if (vehicle != o.vehicle)
                return vehicle > o.vehicle;
            return seq > o.seq;
        }
    };

    void onArrival(int v, std::int64_t seq, double now);
    void onBatchDone(std::size_t index, double now);
    void onMerge(double now);
    void scheduleDispatch(double now);
    void submitFetch(int v, TileId tile, bool prefetch, double now,
                     double deadlineMs);
    /** Warm every tile under the pose predicted over the horizon. */
    void prefetchPath(int v, TileId current, double x, double now);
    void pushRefresh(int v, TileId tile, float appearance,
                     double now);
    double appearanceAt(double now) const;
    void flushEpochError();

    MapServeSimParams params_;
    const fleet::ScenarioLoadGen& load_;
    WorldModel world_;
    TileServer server_;
    std::vector<MapClient> clients_;
    std::unique_ptr<ThreadPool> decodePool_;

    std::priority_queue<Event, std::vector<Event>,
                        std::greater<Event>>
        events_;
    std::vector<BatchResult> inFlightBatches_;
    double pendingDispatchMs_ = 0.0; ///< +inf when none scheduled.

    // Per-vehicle motion and stall state.
    std::vector<double> x0_, y0_, speed_;
    std::vector<double> stalledUntil_, stallStartMs_;
    std::vector<bool> hadWarmFrame_;
    std::vector<std::int64_t> reqSeq_, updSeq_;

    // Accounting.
    MapServeReport report_;
    LatencyRecorder fetchRec_, demandRec_, stallRec_;
    double epochErrSum_ = 0.0;
    std::int64_t epochErrCount_ = 0;
    double lastEventMs_ = 0.0;
    obs::MetricRegistry local_;
};

} // namespace ad::mapserve

#endif // AD_MAPSERVE_SIM_HH
