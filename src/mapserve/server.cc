#include "mapserve/server.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/config.hh"
#include "common/logging.hh"

namespace ad::mapserve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Cross-vehicle dispatch order: demand fetches before prefetches,
    then earliest deadline, then (vehicle, seq) as the total-order
    tie break every determinism bar needs. */
bool
dispatchBefore(const TileRequest& a, const TileRequest& b)
{
    if (a.prefetch != b.prefetch)
        return !a.prefetch;
    if (a.deadlineMs != b.deadlineMs)
        return a.deadlineMs < b.deadlineMs;
    if (a.vehicle != b.vehicle)
        return a.vehicle < b.vehicle;
    return a.seq < b.seq;
}

/** Canonical merge-application order (arrival-order independent). */
bool
mergeBefore(const DeltaUpdate& a, const DeltaUpdate& b)
{
    if (!(a.tile == b.tile))
        return a.tile < b.tile;
    if (a.pointId != b.pointId)
        return a.pointId < b.pointId;
    if (a.tMs != b.tMs)
        return a.tMs < b.tMs;
    if (a.vehicle != b.vehicle)
        return a.vehicle < b.vehicle;
    return a.seq < b.seq;
}

} // namespace

TileServerParams
TileServerParams::fromConfig(const Config& cfg)
{
    TileServerParams p;
    p.queueDepth =
        cfg.getInt("mapserve.server.queue-depth", p.queueDepth);
    p.batchMax = cfg.getInt("mapserve.server.batch-max", p.batchMax);
    p.windowMs =
        cfg.getDouble("mapserve.server.window-ms", p.windowMs);
    p.admission =
        cfg.getBool("mapserve.server.admission", p.admission);
    p.cacheTiles = static_cast<std::size_t>(cfg.getInt(
        "mapserve.server.cache-tiles",
        static_cast<int>(p.cacheTiles)));
    p.fixedMs = cfg.getDouble("mapserve.server.fixed-ms", p.fixedMs);
    p.hitMs = cfg.getDouble("mapserve.server.hit-ms", p.hitMs);
    p.missMs = cfg.getDouble("mapserve.server.miss-ms", p.missMs);
    p.jitterSigma =
        cfg.getDouble("mapserve.server.jitter-sigma", p.jitterSigma);
    p.mergePeriodMs = cfg.getDouble("mapserve.server.merge-period-ms",
                                    p.mergePeriodMs);
    p.seed = static_cast<std::uint64_t>(
        cfg.getInt("mapserve.server.seed", static_cast<int>(p.seed)));
    return p;
}

std::vector<std::string>
TileServerParams::knownConfigKeys()
{
    return {"mapserve.server.queue-depth",
            "mapserve.server.batch-max",
            "mapserve.server.window-ms",
            "mapserve.server.admission",
            "mapserve.server.cache-tiles",
            "mapserve.server.fixed-ms",
            "mapserve.server.hit-ms",
            "mapserve.server.miss-ms",
            "mapserve.server.jitter-sigma",
            "mapserve.server.merge-period-ms",
            "mapserve.server.seed"};
}

TileServer::TileServer(const TileServerParams& params,
                       const WorldModel& world)
    : params_(params), world_(world), jitterRng_(params.seed)
{
    if (params_.queueDepth < 1)
        fatal("TileServer: queue-depth must be >= 1");
    if (params_.batchMax < 1)
        fatal("TileServer: batch-max must be >= 1");
    if (params_.windowMs < 0.0 || params_.fixedMs < 0.0 ||
        params_.hitMs < 0.0 || params_.missMs < 0.0)
        fatal("TileServer: costs must be non-negative");
}

SubmitOutcome
TileServer::submit(const TileRequest& request, double nowMs,
                   TileRequest* evicted, bool* hadEviction)
{
    if (hadEviction != nullptr)
        *hadEviction = false;
    ++stats_.submitted;
    if (request.prefetch)
        ++stats_.prefetches;
    else
        ++stats_.demand;

    if (request.vehicle < 0)
        fatal("TileServer::submit: negative vehicle id");
    if (static_cast<std::size_t>(request.vehicle) >= queues_.size())
        queues_.resize(static_cast<std::size_t>(request.vehicle) + 1);

    // Deadline-aware admission: shed a prefetch whose *pessimistic*
    // completion estimate (current backlog, every queued request a
    // backend miss) lands after the vehicle needs the tile. Demand
    // requests always enter -- someone is stalled on them.
    if (request.prefetch && params_.admission) {
        const double backlog =
            std::max(0.0, engineFreeAtMs_ - nowMs);
        const double predicted =
            nowMs + backlog + params_.fixedMs +
            static_cast<double>(queued_ + 1) * params_.missMs;
        if (predicted > request.deadlineMs) {
            ++stats_.admissionShed;
            return SubmitOutcome::Shed;
        }
    }

    auto& queue = queues_[static_cast<std::size_t>(request.vehicle)];
    if (static_cast<int>(queue.size()) >= params_.queueDepth) {
        // Freshest-request drop: the vehicle keeps requests for
        // where it is going, sheds the one for where it has been.
        // Prefer the oldest queued prefetch (a demand fetch has a
        // vehicle stalled on it).
        auto victim = queue.begin();
        for (auto it = queue.begin(); it != queue.end(); ++it) {
            if (it->prefetch) {
                victim = it;
                break;
            }
        }
        if (evicted != nullptr)
            *evicted = *victim;
        if (hadEviction != nullptr)
            *hadEviction = true;
        queuedArrivals_.erase(
            queuedArrivals_.find(victim->arrivalMs));
        if (!victim->prefetch)
            --demandQueued_;
        queue.erase(victim);
        --queued_;
        ++stats_.queueEvictions;
    }
    queue.push_back(request);
    if (!request.prefetch)
        ++demandQueued_;
    queuedArrivals_.insert(request.arrivalMs);
    ++queued_;
    return SubmitOutcome::Queued;
}

double
TileServer::nextDispatchMs(double nowMs) const
{
    if (queued_ == 0)
        return kInf;
    const double base = std::max(nowMs, engineFreeAtMs_);
    if (demandQueued_ > 0 ||
        queued_ >= static_cast<std::size_t>(params_.batchMax))
        return base;
    // Pure-prefetch backlog: wait out the batching window from the
    // oldest queued arrival to pick up co-riders.
    return std::max(base, *queuedArrivals_.begin() + params_.windowMs);
}

std::optional<BatchResult>
TileServer::dispatch(double nowMs)
{
    if (queued_ == 0 || engineFreeAtMs_ > nowMs)
        return std::nullopt;
    if (demandQueued_ == 0 &&
        queued_ < static_cast<std::size_t>(params_.batchMax) &&
        *queuedArrivals_.begin() + params_.windowMs > nowMs)
        return std::nullopt;

    // Form the batch: every queued request is a candidate; demand
    // first, then earliest deadline.
    std::vector<TileRequest> candidates;
    candidates.reserve(queued_);
    for (const auto& queue : queues_)
        candidates.insert(candidates.end(), queue.begin(),
                          queue.end());
    std::sort(candidates.begin(), candidates.end(), dispatchBefore);
    if (candidates.size() > static_cast<std::size_t>(params_.batchMax))
        candidates.resize(static_cast<std::size_t>(params_.batchMax));

    for (const TileRequest& r : candidates) {
        auto& queue = queues_[static_cast<std::size_t>(r.vehicle)];
        for (auto it = queue.begin(); it != queue.end(); ++it) {
            if (it->seq == r.seq) {
                queuedArrivals_.erase(
                    queuedArrivals_.find(it->arrivalMs));
                if (!it->prefetch)
                    --demandQueued_;
                queue.erase(it);
                --queued_;
                break;
            }
        }
    }

    BatchResult batch;
    batch.startMs = nowMs;
    double cost = params_.fixedMs;
    batch.served.reserve(candidates.size());
    for (const TileRequest& r : candidates) {
        double tileCost = 0.0;
        batch.served.push_back(serveOne(r, &tileCost));
        cost += tileCost;
    }
    if (params_.jitterSigma > 0.0) {
        const double s = params_.jitterSigma;
        cost *= jitterRng_.lognormal(-0.5 * s * s, s);
    }
    engineFreeAtMs_ = nowMs + cost;
    batch.doneMs = engineFreeAtMs_;
    ++stats_.batches;
    stats_.served += static_cast<std::int64_t>(batch.served.size());
    return batch;
}

ServedTile
TileServer::serveOne(const TileRequest& request, double* costMs)
{
    ServedTile out;
    out.request = request;
    out.version = tileVersion(request.tile);

    auto it = cache_.find(request.tile);
    if (it != cache_.end() && it->second.version == out.version) {
        out.cacheHit = true;
        out.payload = it->second.payload;
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
        *costMs = params_.hitMs;
        ++stats_.cacheHits;
    } else {
        out.payload = encodeTile(authoritative(request.tile));
        *costMs = params_.missMs;
        ++stats_.cacheMisses;
        cacheInsert(request.tile, out.payload, out.version);
    }
    stats_.bytesServed +=
        static_cast<std::int64_t>(out.payload.size());
    stats_.rawBytes += static_cast<std::int64_t>(
        rawTileBytes(authoritative(request.tile)));
    return out;
}

void
TileServer::cacheInsert(TileId id, std::vector<std::uint8_t> payload,
                        std::uint64_t version)
{
    if (params_.cacheTiles == 0)
        return;
    auto it = cache_.find(id);
    if (it != cache_.end()) {
        it->second.payload = std::move(payload);
        it->second.version = version;
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
        return;
    }
    lru_.push_front(id);
    cache_[id] = CacheEntry{std::move(payload), version, lru_.begin()};
    if (cache_.size() > params_.cacheTiles) {
        cache_.erase(lru_.back());
        lru_.pop_back();
    }
}

void
TileServer::pushUpdate(const DeltaUpdate& update)
{
    pendingUpdates_.push_back(update);
    ++stats_.updatesReceived;
}

void
TileServer::merge(double nowMs)
{
    ++stats_.mergeEpochs;
    ++mergeEpoch_;
    if (pendingUpdates_.empty())
        return;
    std::sort(pendingUpdates_.begin(), pendingUpdates_.end(),
              mergeBefore);

    std::size_t i = 0;
    while (i < pendingUpdates_.size()) {
        const TileId id = pendingUpdates_[i].tile;
        Tile tile = authoritative(id);
        std::int64_t applied = 0;
        for (; i < pendingUpdates_.size() &&
               pendingUpdates_[i].tile == id;
             ++i) {
            const DeltaUpdate& u = pendingUpdates_[i];
            for (TilePoint& p : tile.points) {
                if (p.id == u.pointId) {
                    p.desc = u.desc;
                    tile.appearance = u.appearance;
                    ++applied;
                    break;
                }
            }
        }
        if (applied == 0)
            continue;
        tile.version += 1;
        // Merged tiles invalidate their cache entry; the next fetch
        // re-encodes and re-caches the new epoch.
        auto cit = cache_.find(id);
        if (cit != cache_.end()) {
            lru_.erase(cit->second.lruIt);
            cache_.erase(cit);
        }
        char line[160];
        std::snprintf(line, sizeof(line),
                      "epoch=%lld t=%.3f tile=%s v=%llu updates=%lld "
                      "checksum=%016llx\n",
                      static_cast<long long>(mergeEpoch_), nowMs,
                      id.toString().c_str(),
                      static_cast<unsigned long long>(tile.version),
                      static_cast<long long>(applied),
                      static_cast<unsigned long long>(
                          tileChecksum(tile)));
        versionLog_ += line;
        stats_.updatesMerged += applied;
        ++stats_.tilesMerged;
        dirty_[id] = std::move(tile);
    }
    pendingUpdates_.clear();
}

std::uint64_t
TileServer::tileVersion(TileId tile) const
{
    const auto it = dirty_.find(tile);
    return it == dirty_.end() ? 0 : it->second.version;
}

Tile
TileServer::authoritative(TileId tile) const
{
    const auto it = dirty_.find(tile);
    if (it != dirty_.end())
        return it->second;
    return world_.tileAt(tile, 0.0f);
}

} // namespace ad::mapserve
