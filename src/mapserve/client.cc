#include "mapserve/client.hh"

#include "common/config.hh"
#include "common/logging.hh"

namespace ad::mapserve {

MapClientParams
MapClientParams::fromConfig(const Config& cfg)
{
    MapClientParams p;
    p.cacheTiles = static_cast<std::size_t>(cfg.getInt(
        "mapserve.client.cache-tiles",
        static_cast<int>(p.cacheTiles)));
    p.prefetch = cfg.getBool("mapserve.client.prefetch", p.prefetch);
    p.horizonMs =
        cfg.getDouble("mapserve.client.horizon-ms", p.horizonMs);
    return p;
}

std::vector<std::string>
MapClientParams::knownConfigKeys()
{
    return {"mapserve.client.cache-tiles", "mapserve.client.prefetch",
            "mapserve.client.horizon-ms"};
}

MapClient::MapClient(const MapClientParams& params) : params_(params)
{
    if (params_.cacheTiles < 1)
        fatal("MapClient: cache-tiles must be >= 1");
}

const Tile*
MapClient::find(TileId id)
{
    auto it = cache_.find(id);
    if (it == cache_.end())
        return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second.lruIt);
    ++stats_.hits;
    return &it->second.tile;
}

const Tile*
MapClient::peek(TileId id) const
{
    const auto it = cache_.find(id);
    return it == cache_.end() ? nullptr : &it->second.tile;
}

void
MapClient::install(Tile&& tile)
{
    inFlight_.erase(tile.id);
    ++stats_.installs;
    auto it = cache_.find(tile.id);
    if (it != cache_.end()) {
        it->second.tile = std::move(tile);
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
        return;
    }
    const TileId id = tile.id;
    lru_.push_front(id);
    cache_[id] = Entry{std::move(tile), lru_.begin()};
    if (cache_.size() > params_.cacheTiles) {
        cache_.erase(lru_.back());
        lru_.pop_back();
        ++stats_.evictions;
    }
}

float
MapClient::lastPushed(TileId id) const
{
    const auto it = pushed_.find(id);
    return it == pushed_.end() ? -1.0f : it->second;
}

} // namespace ad::mapserve
